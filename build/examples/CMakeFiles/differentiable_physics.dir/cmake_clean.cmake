file(REMOVE_RECURSE
  "CMakeFiles/differentiable_physics.dir/differentiable_physics.cpp.o"
  "CMakeFiles/differentiable_physics.dir/differentiable_physics.cpp.o.d"
  "differentiable_physics"
  "differentiable_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differentiable_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
