
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/differentiable_physics.cpp" "examples/CMakeFiles/differentiable_physics.dir/differentiable_physics.cpp.o" "gcc" "examples/CMakeFiles/differentiable_physics.dir/differentiable_physics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sil/CMakeFiles/s4tf_sil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
