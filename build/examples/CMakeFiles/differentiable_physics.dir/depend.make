# Empty dependencies file for differentiable_physics.
# This may be replaced when dependencies are built.
