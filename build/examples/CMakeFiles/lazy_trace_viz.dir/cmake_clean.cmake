file(REMOVE_RECURSE
  "CMakeFiles/lazy_trace_viz.dir/lazy_trace_viz.cpp.o"
  "CMakeFiles/lazy_trace_viz.dir/lazy_trace_viz.cpp.o.d"
  "lazy_trace_viz"
  "lazy_trace_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_trace_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
