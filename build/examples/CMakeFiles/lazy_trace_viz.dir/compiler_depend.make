# Empty compiler generated dependencies file for lazy_trace_viz.
# This may be replaced when dependencies are built.
