# Empty dependencies file for mobile_spline.
# This may be replaced when dependencies are built.
