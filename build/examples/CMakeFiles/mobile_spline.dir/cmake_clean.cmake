file(REMOVE_RECURSE
  "CMakeFiles/mobile_spline.dir/mobile_spline.cpp.o"
  "CMakeFiles/mobile_spline.dir/mobile_spline.cpp.o.d"
  "mobile_spline"
  "mobile_spline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
