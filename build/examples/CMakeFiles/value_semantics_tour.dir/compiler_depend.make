# Empty compiler generated dependencies file for value_semantics_tour.
# This may be replaced when dependencies are built.
