file(REMOVE_RECURSE
  "CMakeFiles/value_semantics_tour.dir/value_semantics_tour.cpp.o"
  "CMakeFiles/value_semantics_tour.dir/value_semantics_tour.cpp.o.d"
  "value_semantics_tour"
  "value_semantics_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_semantics_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
