file(REMOVE_RECURSE
  "CMakeFiles/rl_bandit.dir/rl_bandit.cpp.o"
  "CMakeFiles/rl_bandit.dir/rl_bandit.cpp.o.d"
  "rl_bandit"
  "rl_bandit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_bandit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
