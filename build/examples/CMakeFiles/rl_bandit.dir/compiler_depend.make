# Empty compiler generated dependencies file for rl_bandit.
# This may be replaced when dependencies are built.
