# CMake generated Testfile for 
# Source directory: /root/repo/tests/vs
# Build directory: /root/repo/build/tests/vs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vs/s4tf_vs_test[1]_include.cmake")
