file(REMOVE_RECURSE
  "CMakeFiles/s4tf_vs_test.dir/cow_array_test.cpp.o"
  "CMakeFiles/s4tf_vs_test.dir/cow_array_test.cpp.o.d"
  "s4tf_vs_test"
  "s4tf_vs_test.pdb"
  "s4tf_vs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_vs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
