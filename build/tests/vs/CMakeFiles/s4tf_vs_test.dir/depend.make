# Empty dependencies file for s4tf_vs_test.
# This may be replaced when dependencies are built.
