# CMake generated Testfile for 
# Source directory: /root/repo/tests/eager
# Build directory: /root/repo/build/tests/eager
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/eager/s4tf_eager_test[1]_include.cmake")
