# Empty dependencies file for s4tf_integration_test.
# This may be replaced when dependencies are built.
