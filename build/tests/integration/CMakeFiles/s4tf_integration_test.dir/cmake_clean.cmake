file(REMOVE_RECURSE
  "CMakeFiles/s4tf_integration_test.dir/cross_backend_test.cpp.o"
  "CMakeFiles/s4tf_integration_test.dir/cross_backend_test.cpp.o.d"
  "CMakeFiles/s4tf_integration_test.dir/data_parallel_test.cpp.o"
  "CMakeFiles/s4tf_integration_test.dir/data_parallel_test.cpp.o.d"
  "CMakeFiles/s4tf_integration_test.dir/edge_cases_test.cpp.o"
  "CMakeFiles/s4tf_integration_test.dir/edge_cases_test.cpp.o.d"
  "s4tf_integration_test"
  "s4tf_integration_test.pdb"
  "s4tf_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
