
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/cross_backend_test.cpp" "tests/integration/CMakeFiles/s4tf_integration_test.dir/cross_backend_test.cpp.o" "gcc" "tests/integration/CMakeFiles/s4tf_integration_test.dir/cross_backend_test.cpp.o.d"
  "/root/repo/tests/integration/data_parallel_test.cpp" "tests/integration/CMakeFiles/s4tf_integration_test.dir/data_parallel_test.cpp.o" "gcc" "tests/integration/CMakeFiles/s4tf_integration_test.dir/data_parallel_test.cpp.o.d"
  "/root/repo/tests/integration/edge_cases_test.cpp" "tests/integration/CMakeFiles/s4tf_integration_test.dir/edge_cases_test.cpp.o" "gcc" "tests/integration/CMakeFiles/s4tf_integration_test.dir/edge_cases_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ad/CMakeFiles/s4tf_ad.dir/DependInfo.cmake"
  "/root/repo/build/src/eager/CMakeFiles/s4tf_eager.dir/DependInfo.cmake"
  "/root/repo/build/src/lazy/CMakeFiles/s4tf_lazy.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/s4tf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/xla/CMakeFiles/s4tf_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/s4tf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/s4tf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/vs/CMakeFiles/s4tf_vs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
