file(REMOVE_RECURSE
  "CMakeFiles/s4tf_tensor_test.dir/kernels_test.cpp.o"
  "CMakeFiles/s4tf_tensor_test.dir/kernels_test.cpp.o.d"
  "CMakeFiles/s4tf_tensor_test.dir/op_test.cpp.o"
  "CMakeFiles/s4tf_tensor_test.dir/op_test.cpp.o.d"
  "CMakeFiles/s4tf_tensor_test.dir/ops_extra_test.cpp.o"
  "CMakeFiles/s4tf_tensor_test.dir/ops_extra_test.cpp.o.d"
  "CMakeFiles/s4tf_tensor_test.dir/shape_test.cpp.o"
  "CMakeFiles/s4tf_tensor_test.dir/shape_test.cpp.o.d"
  "CMakeFiles/s4tf_tensor_test.dir/tensor_test.cpp.o"
  "CMakeFiles/s4tf_tensor_test.dir/tensor_test.cpp.o.d"
  "s4tf_tensor_test"
  "s4tf_tensor_test.pdb"
  "s4tf_tensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
