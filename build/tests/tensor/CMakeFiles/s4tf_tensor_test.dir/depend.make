# Empty dependencies file for s4tf_tensor_test.
# This may be replaced when dependencies are built.
