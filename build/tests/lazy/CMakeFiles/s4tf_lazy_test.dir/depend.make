# Empty dependencies file for s4tf_lazy_test.
# This may be replaced when dependencies are built.
