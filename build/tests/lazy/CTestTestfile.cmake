# CMake generated Testfile for 
# Source directory: /root/repo/tests/lazy
# Build directory: /root/repo/build/tests/lazy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lazy/s4tf_lazy_test[1]_include.cmake")
