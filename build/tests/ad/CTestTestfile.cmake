# CMake generated Testfile for 
# Source directory: /root/repo/tests/ad
# Build directory: /root/repo/build/tests/ad
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ad/s4tf_ad_test[1]_include.cmake")
