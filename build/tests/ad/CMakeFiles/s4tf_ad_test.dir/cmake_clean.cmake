file(REMOVE_RECURSE
  "CMakeFiles/s4tf_ad_test.dir/dual_test.cpp.o"
  "CMakeFiles/s4tf_ad_test.dir/dual_test.cpp.o.d"
  "CMakeFiles/s4tf_ad_test.dir/operators_test.cpp.o"
  "CMakeFiles/s4tf_ad_test.dir/operators_test.cpp.o.d"
  "CMakeFiles/s4tf_ad_test.dir/subscript_pullback_test.cpp.o"
  "CMakeFiles/s4tf_ad_test.dir/subscript_pullback_test.cpp.o.d"
  "CMakeFiles/s4tf_ad_test.dir/tape_test.cpp.o"
  "CMakeFiles/s4tf_ad_test.dir/tape_test.cpp.o.d"
  "s4tf_ad_test"
  "s4tf_ad_test.pdb"
  "s4tf_ad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_ad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
