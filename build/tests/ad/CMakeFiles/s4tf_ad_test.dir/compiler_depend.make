# Empty compiler generated dependencies file for s4tf_ad_test.
# This may be replaced when dependencies are built.
