file(REMOVE_RECURSE
  "CMakeFiles/s4tf_support_test.dir/error_test.cpp.o"
  "CMakeFiles/s4tf_support_test.dir/error_test.cpp.o.d"
  "CMakeFiles/s4tf_support_test.dir/hashing_test.cpp.o"
  "CMakeFiles/s4tf_support_test.dir/hashing_test.cpp.o.d"
  "CMakeFiles/s4tf_support_test.dir/rng_test.cpp.o"
  "CMakeFiles/s4tf_support_test.dir/rng_test.cpp.o.d"
  "CMakeFiles/s4tf_support_test.dir/strings_test.cpp.o"
  "CMakeFiles/s4tf_support_test.dir/strings_test.cpp.o.d"
  "CMakeFiles/s4tf_support_test.dir/threadpool_test.cpp.o"
  "CMakeFiles/s4tf_support_test.dir/threadpool_test.cpp.o.d"
  "s4tf_support_test"
  "s4tf_support_test.pdb"
  "s4tf_support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
