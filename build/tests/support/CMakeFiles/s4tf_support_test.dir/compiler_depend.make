# Empty compiler generated dependencies file for s4tf_support_test.
# This may be replaced when dependencies are built.
