# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("vs")
subdirs("tensor")
subdirs("ad")
subdirs("sil")
subdirs("device")
subdirs("eager")
subdirs("xla")
subdirs("lazy")
subdirs("nn")
subdirs("frameworks")
subdirs("integration")
