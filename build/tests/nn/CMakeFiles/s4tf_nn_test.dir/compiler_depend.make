# Empty compiler generated dependencies file for s4tf_nn_test.
# This may be replaced when dependencies are built.
