file(REMOVE_RECURSE
  "CMakeFiles/s4tf_nn_test.dir/autoencoder_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/autoencoder_test.cpp.o.d"
  "CMakeFiles/s4tf_nn_test.dir/checkpoint_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/checkpoint_test.cpp.o.d"
  "CMakeFiles/s4tf_nn_test.dir/layers_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/layers_test.cpp.o.d"
  "CMakeFiles/s4tf_nn_test.dir/models_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/models_test.cpp.o.d"
  "CMakeFiles/s4tf_nn_test.dir/optimizers_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/optimizers_test.cpp.o.d"
  "CMakeFiles/s4tf_nn_test.dir/training_test.cpp.o"
  "CMakeFiles/s4tf_nn_test.dir/training_test.cpp.o.d"
  "s4tf_nn_test"
  "s4tf_nn_test.pdb"
  "s4tf_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
