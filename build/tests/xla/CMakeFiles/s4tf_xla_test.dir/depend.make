# Empty dependencies file for s4tf_xla_test.
# This may be replaced when dependencies are built.
