file(REMOVE_RECURSE
  "CMakeFiles/s4tf_xla_test.dir/compiler_test.cpp.o"
  "CMakeFiles/s4tf_xla_test.dir/compiler_test.cpp.o.d"
  "CMakeFiles/s4tf_xla_test.dir/hlo_test.cpp.o"
  "CMakeFiles/s4tf_xla_test.dir/hlo_test.cpp.o.d"
  "CMakeFiles/s4tf_xla_test.dir/simplify_test.cpp.o"
  "CMakeFiles/s4tf_xla_test.dir/simplify_test.cpp.o.d"
  "s4tf_xla_test"
  "s4tf_xla_test.pdb"
  "s4tf_xla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_xla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
