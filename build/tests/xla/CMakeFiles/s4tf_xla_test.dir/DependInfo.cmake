
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xla/compiler_test.cpp" "tests/xla/CMakeFiles/s4tf_xla_test.dir/compiler_test.cpp.o" "gcc" "tests/xla/CMakeFiles/s4tf_xla_test.dir/compiler_test.cpp.o.d"
  "/root/repo/tests/xla/hlo_test.cpp" "tests/xla/CMakeFiles/s4tf_xla_test.dir/hlo_test.cpp.o" "gcc" "tests/xla/CMakeFiles/s4tf_xla_test.dir/hlo_test.cpp.o.d"
  "/root/repo/tests/xla/simplify_test.cpp" "tests/xla/CMakeFiles/s4tf_xla_test.dir/simplify_test.cpp.o" "gcc" "tests/xla/CMakeFiles/s4tf_xla_test.dir/simplify_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xla/CMakeFiles/s4tf_xla.dir/DependInfo.cmake"
  "/root/repo/build/src/lazy/CMakeFiles/s4tf_lazy.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/s4tf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/s4tf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/vs/CMakeFiles/s4tf_vs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
