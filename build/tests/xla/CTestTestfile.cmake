# CMake generated Testfile for 
# Source directory: /root/repo/tests/xla
# Build directory: /root/repo/build/tests/xla
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/xla/s4tf_xla_test[1]_include.cmake")
