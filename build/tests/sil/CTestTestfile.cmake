# CMake generated Testfile for 
# Source directory: /root/repo/tests/sil
# Build directory: /root/repo/build/tests/sil
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sil/s4tf_sil_test[1]_include.cmake")
