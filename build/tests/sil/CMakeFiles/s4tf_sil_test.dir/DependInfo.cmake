
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sil/activity_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/activity_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/activity_test.cpp.o.d"
  "/root/repo/tests/sil/autodiff_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/autodiff_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/autodiff_test.cpp.o.d"
  "/root/repo/tests/sil/inlining_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/inlining_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/inlining_test.cpp.o.d"
  "/root/repo/tests/sil/interpreter_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/interpreter_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/interpreter_test.cpp.o.d"
  "/root/repo/tests/sil/ir_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/ir_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/ir_test.cpp.o.d"
  "/root/repo/tests/sil/passes_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/passes_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/passes_test.cpp.o.d"
  "/root/repo/tests/sil/random_programs_test.cpp" "tests/sil/CMakeFiles/s4tf_sil_test.dir/random_programs_test.cpp.o" "gcc" "tests/sil/CMakeFiles/s4tf_sil_test.dir/random_programs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sil/CMakeFiles/s4tf_sil.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
