file(REMOVE_RECURSE
  "CMakeFiles/s4tf_sil_test.dir/activity_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/activity_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/autodiff_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/autodiff_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/inlining_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/inlining_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/interpreter_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/interpreter_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/ir_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/ir_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/passes_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/passes_test.cpp.o.d"
  "CMakeFiles/s4tf_sil_test.dir/random_programs_test.cpp.o"
  "CMakeFiles/s4tf_sil_test.dir/random_programs_test.cpp.o.d"
  "s4tf_sil_test"
  "s4tf_sil_test.pdb"
  "s4tf_sil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_sil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
