# Empty dependencies file for s4tf_sil_test.
# This may be replaced when dependencies are built.
