# CMake generated Testfile for 
# Source directory: /root/repo/tests/frameworks
# Build directory: /root/repo/build/tests/frameworks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/frameworks/s4tf_frameworks_test[1]_include.cmake")
