# Empty dependencies file for s4tf_frameworks_test.
# This may be replaced when dependencies are built.
