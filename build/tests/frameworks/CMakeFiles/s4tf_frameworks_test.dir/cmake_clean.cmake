file(REMOVE_RECURSE
  "CMakeFiles/s4tf_frameworks_test.dir/mobile_test.cpp.o"
  "CMakeFiles/s4tf_frameworks_test.dir/mobile_test.cpp.o.d"
  "CMakeFiles/s4tf_frameworks_test.dir/staged_test.cpp.o"
  "CMakeFiles/s4tf_frameworks_test.dir/staged_test.cpp.o.d"
  "s4tf_frameworks_test"
  "s4tf_frameworks_test.pdb"
  "s4tf_frameworks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_frameworks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
