file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_mobile_spline.dir/bench_table4_mobile_spline.cpp.o"
  "CMakeFiles/bench_table4_mobile_spline.dir/bench_table4_mobile_spline.cpp.o.d"
  "bench_table4_mobile_spline"
  "bench_table4_mobile_spline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_mobile_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
