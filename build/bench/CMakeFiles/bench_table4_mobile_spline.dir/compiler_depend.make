# Empty compiler generated dependencies file for bench_table4_mobile_spline.
# This may be replaced when dependencies are built.
