# Empty compiler generated dependencies file for bench_table3_gpu_resnet56.
# This may be replaced when dependencies are built.
