file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gpu_resnet56.dir/bench_table3_gpu_resnet56.cpp.o"
  "CMakeFiles/bench_table3_gpu_resnet56.dir/bench_table3_gpu_resnet56.cpp.o.d"
  "bench_table3_gpu_resnet56"
  "bench_table3_gpu_resnet56.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gpu_resnet56.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
