
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_cow.cpp" "bench/CMakeFiles/bench_ablation_cow.dir/bench_ablation_cow.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_cow.dir/bench_ablation_cow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/s4tf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/vs/CMakeFiles/s4tf_vs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
