# Empty dependencies file for bench_fig9_subscript_pullback.
# This may be replaced when dependencies are built.
