file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_subscript_pullback.dir/bench_fig9_subscript_pullback.cpp.o"
  "CMakeFiles/bench_fig9_subscript_pullback.dir/bench_fig9_subscript_pullback.cpp.o.d"
  "bench_fig9_subscript_pullback"
  "bench_fig9_subscript_pullback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_subscript_pullback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
