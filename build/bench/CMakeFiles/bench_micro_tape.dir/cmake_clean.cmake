file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tape.dir/bench_micro_tape.cpp.o"
  "CMakeFiles/bench_micro_tape.dir/bench_micro_tape.cpp.o.d"
  "bench_micro_tape"
  "bench_micro_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
