# Empty dependencies file for bench_micro_tape.
# This may be replaced when dependencies are built.
