file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_frameworks_tpu.dir/bench_table2_frameworks_tpu.cpp.o"
  "CMakeFiles/bench_table2_frameworks_tpu.dir/bench_table2_frameworks_tpu.cpp.o.d"
  "bench_table2_frameworks_tpu"
  "bench_table2_frameworks_tpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_frameworks_tpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
