# Empty compiler generated dependencies file for bench_table2_frameworks_tpu.
# This may be replaced when dependencies are built.
