# Empty compiler generated dependencies file for s4tf_device.
# This may be replaced when dependencies are built.
