file(REMOVE_RECURSE
  "libs4tf_device.a"
)
