file(REMOVE_RECURSE
  "CMakeFiles/s4tf_device.dir/cost_model.cpp.o"
  "CMakeFiles/s4tf_device.dir/cost_model.cpp.o.d"
  "libs4tf_device.a"
  "libs4tf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
