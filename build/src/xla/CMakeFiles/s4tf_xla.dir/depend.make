# Empty dependencies file for s4tf_xla.
# This may be replaced when dependencies are built.
