file(REMOVE_RECURSE
  "CMakeFiles/s4tf_xla.dir/compiler.cpp.o"
  "CMakeFiles/s4tf_xla.dir/compiler.cpp.o.d"
  "CMakeFiles/s4tf_xla.dir/hlo.cpp.o"
  "CMakeFiles/s4tf_xla.dir/hlo.cpp.o.d"
  "libs4tf_xla.a"
  "libs4tf_xla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_xla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
