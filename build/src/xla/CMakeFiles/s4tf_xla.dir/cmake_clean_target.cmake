file(REMOVE_RECURSE
  "libs4tf_xla.a"
)
