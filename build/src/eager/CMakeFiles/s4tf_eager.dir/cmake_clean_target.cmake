file(REMOVE_RECURSE
  "libs4tf_eager.a"
)
