# Empty compiler generated dependencies file for s4tf_eager.
# This may be replaced when dependencies are built.
