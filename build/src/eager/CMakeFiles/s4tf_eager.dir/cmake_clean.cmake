file(REMOVE_RECURSE
  "CMakeFiles/s4tf_eager.dir/eager_backend.cpp.o"
  "CMakeFiles/s4tf_eager.dir/eager_backend.cpp.o.d"
  "libs4tf_eager.a"
  "libs4tf_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
