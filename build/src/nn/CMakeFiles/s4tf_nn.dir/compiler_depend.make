# Empty compiler generated dependencies file for s4tf_nn.
# This may be replaced when dependencies are built.
