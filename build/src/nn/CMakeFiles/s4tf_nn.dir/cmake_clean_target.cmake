file(REMOVE_RECURSE
  "libs4tf_nn.a"
)
