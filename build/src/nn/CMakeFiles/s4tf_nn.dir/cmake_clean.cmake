file(REMOVE_RECURSE
  "CMakeFiles/s4tf_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/s4tf_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/s4tf_nn.dir/datasets.cpp.o"
  "CMakeFiles/s4tf_nn.dir/datasets.cpp.o.d"
  "CMakeFiles/s4tf_nn.dir/layers.cpp.o"
  "CMakeFiles/s4tf_nn.dir/layers.cpp.o.d"
  "CMakeFiles/s4tf_nn.dir/losses.cpp.o"
  "CMakeFiles/s4tf_nn.dir/losses.cpp.o.d"
  "CMakeFiles/s4tf_nn.dir/models/resnet.cpp.o"
  "CMakeFiles/s4tf_nn.dir/models/resnet.cpp.o.d"
  "CMakeFiles/s4tf_nn.dir/models/spline.cpp.o"
  "CMakeFiles/s4tf_nn.dir/models/spline.cpp.o.d"
  "libs4tf_nn.a"
  "libs4tf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
