file(REMOVE_RECURSE
  "libs4tf_ad.a"
)
