# Empty compiler generated dependencies file for s4tf_ad.
# This may be replaced when dependencies are built.
