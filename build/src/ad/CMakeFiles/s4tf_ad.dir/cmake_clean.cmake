file(REMOVE_RECURSE
  "CMakeFiles/s4tf_ad.dir/tape.cpp.o"
  "CMakeFiles/s4tf_ad.dir/tape.cpp.o.d"
  "libs4tf_ad.a"
  "libs4tf_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
