# Empty dependencies file for s4tf_lazy.
# This may be replaced when dependencies are built.
