file(REMOVE_RECURSE
  "CMakeFiles/s4tf_lazy.dir/lazy_tensor.cpp.o"
  "CMakeFiles/s4tf_lazy.dir/lazy_tensor.cpp.o.d"
  "libs4tf_lazy.a"
  "libs4tf_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
