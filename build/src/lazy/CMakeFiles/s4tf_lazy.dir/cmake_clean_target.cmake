file(REMOVE_RECURSE
  "libs4tf_lazy.a"
)
