file(REMOVE_RECURSE
  "CMakeFiles/s4tf_vs.dir/cow_stats.cpp.o"
  "CMakeFiles/s4tf_vs.dir/cow_stats.cpp.o.d"
  "libs4tf_vs.a"
  "libs4tf_vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_vs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
