# Empty compiler generated dependencies file for s4tf_vs.
# This may be replaced when dependencies are built.
