file(REMOVE_RECURSE
  "libs4tf_vs.a"
)
