# Empty dependencies file for s4tf_support.
# This may be replaced when dependencies are built.
