file(REMOVE_RECURSE
  "libs4tf_support.a"
)
