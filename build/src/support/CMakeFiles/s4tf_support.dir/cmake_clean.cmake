file(REMOVE_RECURSE
  "CMakeFiles/s4tf_support.dir/error.cpp.o"
  "CMakeFiles/s4tf_support.dir/error.cpp.o.d"
  "CMakeFiles/s4tf_support.dir/logging.cpp.o"
  "CMakeFiles/s4tf_support.dir/logging.cpp.o.d"
  "CMakeFiles/s4tf_support.dir/memory_meter.cpp.o"
  "CMakeFiles/s4tf_support.dir/memory_meter.cpp.o.d"
  "CMakeFiles/s4tf_support.dir/rng.cpp.o"
  "CMakeFiles/s4tf_support.dir/rng.cpp.o.d"
  "CMakeFiles/s4tf_support.dir/threadpool.cpp.o"
  "CMakeFiles/s4tf_support.dir/threadpool.cpp.o.d"
  "libs4tf_support.a"
  "libs4tf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
