# Empty compiler generated dependencies file for s4tf_sil.
# This may be replaced when dependencies are built.
