file(REMOVE_RECURSE
  "libs4tf_sil.a"
)
