
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sil/activity.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/activity.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/activity.cpp.o.d"
  "/root/repo/src/sil/autodiff.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/autodiff.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/autodiff.cpp.o.d"
  "/root/repo/src/sil/diff_check.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/diff_check.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/diff_check.cpp.o.d"
  "/root/repo/src/sil/interpreter.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/interpreter.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/interpreter.cpp.o.d"
  "/root/repo/src/sil/ir.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/ir.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/ir.cpp.o.d"
  "/root/repo/src/sil/passes.cpp" "src/sil/CMakeFiles/s4tf_sil.dir/passes.cpp.o" "gcc" "src/sil/CMakeFiles/s4tf_sil.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/s4tf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
