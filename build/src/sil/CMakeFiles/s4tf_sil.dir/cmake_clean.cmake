file(REMOVE_RECURSE
  "CMakeFiles/s4tf_sil.dir/activity.cpp.o"
  "CMakeFiles/s4tf_sil.dir/activity.cpp.o.d"
  "CMakeFiles/s4tf_sil.dir/autodiff.cpp.o"
  "CMakeFiles/s4tf_sil.dir/autodiff.cpp.o.d"
  "CMakeFiles/s4tf_sil.dir/diff_check.cpp.o"
  "CMakeFiles/s4tf_sil.dir/diff_check.cpp.o.d"
  "CMakeFiles/s4tf_sil.dir/interpreter.cpp.o"
  "CMakeFiles/s4tf_sil.dir/interpreter.cpp.o.d"
  "CMakeFiles/s4tf_sil.dir/ir.cpp.o"
  "CMakeFiles/s4tf_sil.dir/ir.cpp.o.d"
  "CMakeFiles/s4tf_sil.dir/passes.cpp.o"
  "CMakeFiles/s4tf_sil.dir/passes.cpp.o.d"
  "libs4tf_sil.a"
  "libs4tf_sil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_sil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
