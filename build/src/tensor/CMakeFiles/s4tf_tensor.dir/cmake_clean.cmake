file(REMOVE_RECURSE
  "CMakeFiles/s4tf_tensor.dir/kernels.cpp.o"
  "CMakeFiles/s4tf_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/s4tf_tensor.dir/op.cpp.o"
  "CMakeFiles/s4tf_tensor.dir/op.cpp.o.d"
  "CMakeFiles/s4tf_tensor.dir/ops.cpp.o"
  "CMakeFiles/s4tf_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/s4tf_tensor.dir/shape.cpp.o"
  "CMakeFiles/s4tf_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/s4tf_tensor.dir/tensor.cpp.o"
  "CMakeFiles/s4tf_tensor.dir/tensor.cpp.o.d"
  "libs4tf_tensor.a"
  "libs4tf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
