file(REMOVE_RECURSE
  "libs4tf_tensor.a"
)
