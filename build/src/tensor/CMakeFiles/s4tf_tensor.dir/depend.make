# Empty dependencies file for s4tf_tensor.
# This may be replaced when dependencies are built.
