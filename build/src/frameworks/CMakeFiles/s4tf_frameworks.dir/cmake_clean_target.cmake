file(REMOVE_RECURSE
  "libs4tf_frameworks.a"
)
