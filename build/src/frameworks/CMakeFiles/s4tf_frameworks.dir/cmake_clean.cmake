file(REMOVE_RECURSE
  "CMakeFiles/s4tf_frameworks.dir/mobile.cpp.o"
  "CMakeFiles/s4tf_frameworks.dir/mobile.cpp.o.d"
  "libs4tf_frameworks.a"
  "libs4tf_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4tf_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
