# Empty compiler generated dependencies file for s4tf_frameworks.
# This may be replaced when dependencies are built.
