#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json baselines at the repo root.
#
# Usage: tools/refresh_bench_artifacts.sh [--check] [build-dir]
#
# Runs every bench harness in artifact-only mode (S4TF_BENCH_ARTIFACT_ONLY=1
# skips the google-benchmark timing sweeps; the deterministic artifact
# workload still runs) and writes the artifacts into the repo root via
# S4TF_BENCH_OUT_DIR. The deterministic sections (config/counters/values/
# text) are thread-count and machine independent, so the gate in CI
# exact-diffs them; wall_ms/noisy sections are refreshed too but only
# warn on drift. Commit the resulting BENCH_*.json files together with the
# change that moved them. See EXPERIMENTS.md ("Bench artifacts").
#
# --check: regenerate into a temporary directory instead and run
# bench_compare against the committed baselines, leaving the repo root
# untouched — the local equivalent of CI's bench-artifacts job. Exit is
# non-zero on any deterministic diff.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
check_mode=0
if [[ "${1:-}" == "--check" ]]; then
  check_mode=1
  shift
fi
build_dir="${1:-$repo_root/build}"

benches=(
  bench_table1_tpu_scaling
  bench_table2_frameworks_tpu
  bench_table3_gpu_resnet56
  bench_table4_mobile_spline
  bench_fig4_lenet_trace
  bench_fig9_subscript_pullback
  bench_micro_kernels
  bench_micro_tape
  bench_ablation_fusion
  bench_ablation_trace_cache
  bench_ablation_passes
  bench_ablation_cow
  bench_autotune
  bench_serve
  bench_guard
)

out_dir="$repo_root"
if [[ "$check_mode" == 1 ]]; then
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
fi

for bench in "${benches[@]}"; do
  binary="$build_dir/bench/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "missing bench binary: $binary (build the 'bench' targets first)" >&2
    exit 1
  fi
  echo "== $bench"
  S4TF_BENCH_ARTIFACT_ONLY=1 S4TF_BENCH_OUT_DIR="$out_dir" \
    "$binary" > /dev/null
done

if [[ "$check_mode" == 1 ]]; then
  "$build_dir/bench/bench_compare" "$repo_root" "$out_dir"
  echo "check passed: fresh artifacts match the committed baselines"
else
  echo "refreshed $(ls "$repo_root"/BENCH_*.json | wc -l) artifacts in $repo_root"
fi
