#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json baselines at the repo root.
#
# Usage: tools/refresh_bench_artifacts.sh [build-dir]
#
# Runs every bench harness in artifact-only mode (S4TF_BENCH_ARTIFACT_ONLY=1
# skips the google-benchmark timing sweeps; the deterministic artifact
# workload still runs) and writes the artifacts into the repo root via
# S4TF_BENCH_OUT_DIR. The deterministic sections (config/counters/values/
# text) are thread-count and machine independent, so the gate in CI
# exact-diffs them; wall_ms/noisy sections are refreshed too but only
# warn on drift. Commit the resulting BENCH_*.json files together with the
# change that moved them. See EXPERIMENTS.md ("Bench artifacts").
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

benches=(
  bench_table1_tpu_scaling
  bench_table2_frameworks_tpu
  bench_table3_gpu_resnet56
  bench_table4_mobile_spline
  bench_fig4_lenet_trace
  bench_fig9_subscript_pullback
  bench_micro_kernels
  bench_micro_tape
  bench_ablation_fusion
  bench_ablation_trace_cache
  bench_ablation_passes
  bench_ablation_cow
  bench_autotune
  bench_serve
  bench_guard
)

for bench in "${benches[@]}"; do
  binary="$build_dir/bench/$bench"
  if [[ ! -x "$binary" ]]; then
    echo "missing bench binary: $binary (build the 'bench' targets first)" >&2
    exit 1
  fi
  echo "== $bench"
  S4TF_BENCH_ARTIFACT_ONLY=1 S4TF_BENCH_OUT_DIR="$repo_root" \
    "$binary" > /dev/null
done

echo "refreshed $(ls "$repo_root"/BENCH_*.json | wc -l) artifacts in $repo_root"
