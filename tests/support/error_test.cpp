#include "support/error.h"

#include <gtest/gtest.h>

namespace s4tf {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(S4TF_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsInternalError) {
  EXPECT_THROW(S4TF_CHECK(false) << "boom", InternalError);
}

TEST(CheckTest, MessageIncludesExpressionAndPayload) {
  try {
    S4TF_CHECK(2 > 3) << "custom payload " << 42;
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("custom payload 42"), std::string::npos);
  }
}

TEST(CheckTest, ComparisonMacrosIncludeValues) {
  try {
    const int a = 5, b = 9;
    S4TF_CHECK_EQ(a, b);
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5"), std::string::npos);
    EXPECT_NE(what.find("9"), std::string::npos);
  }
}

TEST(CheckTest, AllComparisonMacrosBehave) {
  EXPECT_NO_THROW(S4TF_CHECK_EQ(1, 1));
  EXPECT_NO_THROW(S4TF_CHECK_NE(1, 2));
  EXPECT_NO_THROW(S4TF_CHECK_LT(1, 2));
  EXPECT_NO_THROW(S4TF_CHECK_LE(2, 2));
  EXPECT_NO_THROW(S4TF_CHECK_GT(3, 2));
  EXPECT_NO_THROW(S4TF_CHECK_GE(3, 3));
  EXPECT_THROW(S4TF_CHECK_NE(1, 1), InternalError);
  EXPECT_THROW(S4TF_CHECK_LT(2, 1), InternalError);
  EXPECT_THROW(S4TF_CHECK_GT(1, 2), InternalError);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_NE(s.ToString().find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(StatusTest, ValueOrDieThrowsOnError) {
  EXPECT_NO_THROW(Status::Ok().ValueOrDie());
  EXPECT_THROW(Status::Internal("x").ValueOrDie(), InternalError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(v.value(), InternalError);
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::OutOfRange("oops"); };
  auto outer = [&]() -> Status {
    S4TF_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace s4tf
