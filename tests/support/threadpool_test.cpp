#include "support/threadpool.h"

#include <atomic>
#include <gtest/gtest.h>

#include "support/sim_clock.h"
#include "support/memory_meter.h"

namespace s4tf {
namespace {

TEST(DispatchQueueTest, RunsTasksInSubmissionOrder) {
  DispatchQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    queue.Submit([i, &order] { order.push_back(i); });
  }
  queue.Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(DispatchQueueTest, DrainBlocksUntilAllComplete) {
  DispatchQueue queue;
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    queue.Submit([&done] { ++done; });
  }
  queue.Drain();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(DispatchQueueTest, SubmitReturnsBeforeTaskRuns) {
  DispatchQueue queue;
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  queue.Submit([&] {
    while (!release.load()) {
    }
    ran = true;
  });
  // The worker is blocked in the first task; host thread runs ahead.
  EXPECT_FALSE(ran.load());
  release = true;
  queue.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0);
  clock.Advance(1500);
  EXPECT_EQ(clock.now_ns(), 1500);
  clock.AdvanceSeconds(1e-6);
  EXPECT_EQ(clock.now_ns(), 2500);
  clock.AdvanceTo(2000);  // in the past: no-op
  EXPECT_EQ(clock.now_ns(), 2500);
  clock.AdvanceTo(10000);
  EXPECT_EQ(clock.now_ns(), 10000);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0);
}

TEST(MemoryMeterTest, TracksCurrentAndPeak) {
  MemoryMeter meter;
  meter.Allocate(100);
  meter.Allocate(50);
  EXPECT_EQ(meter.current_bytes(), 150);
  EXPECT_EQ(meter.peak_bytes(), 150);
  meter.Free(120);
  EXPECT_EQ(meter.current_bytes(), 30);
  EXPECT_EQ(meter.peak_bytes(), 150);
  meter.ResetPeak();
  EXPECT_EQ(meter.peak_bytes(), 30);
  meter.Allocate(10);
  EXPECT_EQ(meter.peak_bytes(), 40);
  EXPECT_EQ(meter.allocation_count(), 3);
}

TEST(MemoryMeterTest, HumanBytesFormats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MB");
}

}  // namespace
}  // namespace s4tf
