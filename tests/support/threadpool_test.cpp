#include "support/threadpool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

#include "support/sim_clock.h"
#include "support/memory_meter.h"

namespace s4tf {
namespace {

TEST(DispatchQueueTest, RunsTasksInSubmissionOrder) {
  DispatchQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    queue.Submit([i, &order] { order.push_back(i); });
  }
  queue.Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(DispatchQueueTest, DrainBlocksUntilAllComplete) {
  DispatchQueue queue;
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    queue.Submit([&done] { ++done; });
  }
  queue.Drain();
  EXPECT_EQ(done.load(), 20);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(DispatchQueueTest, SubmitReturnsBeforeTaskRuns) {
  DispatchQueue queue;
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  queue.Submit([&] {
    while (!release.load()) {
    }
    ran = true;
  });
  // The worker is blocked in the first task; host thread runs ahead.
  EXPECT_FALSE(ran.load());
  release = true;
  queue.Drain();
  EXPECT_TRUE(ran.load());
}

// Regression: the resolver used atoi(), which silently read "4x" as 4 and
// "x4"/garbage as 0 (falling through to a bogus pool size). The strict
// parser accepts only a complete integer in [1, 4096].
TEST(ParseThreadCountTest, AcceptsCompletePositiveIntegers) {
  int count = 0;
  EXPECT_TRUE(internal::ParseThreadCount("1", &count));
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(internal::ParseThreadCount("8", &count));
  EXPECT_EQ(count, 8);
  EXPECT_TRUE(internal::ParseThreadCount("4096", &count));
  EXPECT_EQ(count, 4096);
  // strtol semantics: leading whitespace is tolerated.
  EXPECT_TRUE(internal::ParseThreadCount("  16", &count));
  EXPECT_EQ(count, 16);
}

TEST(ParseThreadCountTest, RejectsTrailingGarbage) {
  int count = -1;
  EXPECT_FALSE(internal::ParseThreadCount("4x", &count));
  EXPECT_FALSE(internal::ParseThreadCount("4 ", &count));
  EXPECT_FALSE(internal::ParseThreadCount("4.5", &count));
  EXPECT_FALSE(internal::ParseThreadCount("0x4", &count));
}

TEST(ParseThreadCountTest, RejectsNonNumbersAndEmpty) {
  int count = -1;
  EXPECT_FALSE(internal::ParseThreadCount("", &count));
  EXPECT_FALSE(internal::ParseThreadCount("x4", &count));
  EXPECT_FALSE(internal::ParseThreadCount("threads", &count));
  EXPECT_FALSE(internal::ParseThreadCount("   ", &count));
}

TEST(ParseThreadCountTest, RejectsNonPositiveAndOutOfRange) {
  int count = -1;
  EXPECT_FALSE(internal::ParseThreadCount("0", &count));
  EXPECT_FALSE(internal::ParseThreadCount("-2", &count));
  EXPECT_FALSE(internal::ParseThreadCount("4097", &count));
  EXPECT_FALSE(internal::ParseThreadCount("99999999999999999999", &count));
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForHandlesZeroAndOne) {
  ThreadPool pool(2);
  int count = 0;
  pool.ParallelFor(0, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(DispatchQueueTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    DispatchQueue queue;
    // The first task blocks the worker so the rest are still queued when
    // the destructor runs; shutdown must execute them anyway.
    queue.Submit([&] {
      while (!release.load()) {
      }
      ++ran;
    });
    for (int i = 0; i < 20; ++i) {
      queue.Submit([&ran] { ++ran; });
    }
    release = true;
  }
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::int64_t i) {
                                  if (i == 37) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must survive a throwing body and stay usable.
  std::atomic<int> count{0};
  pool.ParallelFor(50, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  // With 2 workers and 4 outer shards, inner ParallelFor calls run while
  // every worker is busy; the calling thread must make progress alone.
  pool.ParallelFor(4, [&](std::int64_t) {
    pool.ParallelFor(8, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, ParallelForRangeCoversEveryIndexOnce) {
  ThreadPool pool(4);
  // 100 not divisible by 7: the last block must be the 2-wide remainder.
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelForRange(100, 7, [&](std::int64_t begin, std::int64_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 7);
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRangeSmallerThanGrainRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::int64_t> covered{0};
  pool.ParallelForRange(5, 100, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    covered += end - begin;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 5);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(covered.load(), 5);
}

TEST(ThreadPoolTest, ParallelForRangeClampsBadGrainAndEmptyRange) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10);
  pool.ParallelForRange(10, 0, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  int calls = 0;
  pool.ParallelForRange(0, 4, [&](std::int64_t, std::int64_t) { ++calls; });
  pool.ParallelForRange(-3, 4, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(GlobalPoolTest, SetterOverridesThreadCount) {
  SetIntraOpThreads(3);
  EXPECT_EQ(IntraOpThreads(), 3);
  SetIntraOpThreads(0);  // back to env/hardware default
  EXPECT_GE(IntraOpThreads(), 1);
}

TEST(GlobalPoolTest, FreeParallelForRangeCoversRange) {
  SetIntraOpThreads(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelForRange(64, 5, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      ++hits[static_cast<std::size_t>(i)];
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Single-threaded mode runs inline as one block.
  SetIntraOpThreads(1);
  int calls = 0;
  ParallelForRange(64, 5, [&](std::int64_t begin, std::int64_t end) {
    ++calls;
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 64);
  });
  EXPECT_EQ(calls, 1);
  SetIntraOpThreads(0);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0);
  clock.Advance(1500);
  EXPECT_EQ(clock.now_ns(), 1500);
  clock.AdvanceSeconds(1e-6);
  EXPECT_EQ(clock.now_ns(), 2500);
  clock.AdvanceTo(2000);  // in the past: no-op
  EXPECT_EQ(clock.now_ns(), 2500);
  clock.AdvanceTo(10000);
  EXPECT_EQ(clock.now_ns(), 10000);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0);
}

TEST(MemoryMeterTest, TracksCurrentAndPeak) {
  MemoryMeter meter;
  meter.Allocate(100);
  meter.Allocate(50);
  EXPECT_EQ(meter.current_bytes(), 150);
  EXPECT_EQ(meter.peak_bytes(), 150);
  meter.Free(120);
  EXPECT_EQ(meter.current_bytes(), 30);
  EXPECT_EQ(meter.peak_bytes(), 150);
  meter.ResetPeak();
  EXPECT_EQ(meter.peak_bytes(), 30);
  meter.Allocate(10);
  EXPECT_EQ(meter.peak_bytes(), 40);
  EXPECT_EQ(meter.allocation_count(), 3);
}

TEST(MemoryMeterTest, HumanBytesFormats) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 << 20), "3.0 MB");
}

}  // namespace
}  // namespace s4tf
