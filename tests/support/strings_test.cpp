#include "support/strings.h"

#include <gtest/gtest.h>

#include "support/logging.h"

namespace s4tf {
namespace {

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5, ", ok=", true),
            "x=42, y=1.5, ok=1");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  const std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(StrJoin(xs, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ", "), "");
  EXPECT_EQ(StrJoin(std::vector<std::string>{"a"}, "-"), "a");
}

TEST(LoggingTest, LevelGateIsRespected) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the gate are cheap no-ops (nothing observable to
  // assert beyond not crashing, but the gate accessor must round-trip).
  S4TF_LOG(Debug) << "suppressed";
  S4TF_LOG(Info) << "suppressed";
  SetLogLevel(previous);
  EXPECT_EQ(GetLogLevel(), previous);
}

}  // namespace
}  // namespace s4tf
