#include "support/hashing.h"

#include <gtest/gtest.h>

namespace s4tf {
namespace {

TEST(HashingTest, StableAcrossCalls) {
  EXPECT_EQ(HashString("lenet-forward"), HashString("lenet-forward"));
}

TEST(HashingTest, DistinguishesStrings) {
  EXPECT_NE(HashString("conv2d"), HashString("conv2e"));
  EXPECT_NE(HashString(""), HashString(" "));
}

TEST(HashingTest, SeedChangesResult) {
  EXPECT_NE(HashString("x"), HashString("x", 12345));
}

TEST(HashingTest, HashCombineOrderSensitive) {
  const std::uint64_t a = HashCombine(HashCombine(1, 2), 3);
  const std::uint64_t b = HashCombine(HashCombine(1, 3), 2);
  EXPECT_NE(a, b);
}

TEST(HashingTest, HashValueTrivialTypes) {
  EXPECT_EQ(HashValue(42), HashValue(42));
  EXPECT_NE(HashValue(42), HashValue(43));
  EXPECT_EQ(HashValue(1.5f), HashValue(1.5f));
}

TEST(HashingTest, HashSpanSensitiveToLengthAndContent) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {1, 2, 3, 0};
  const std::vector<int> c = {1, 2, 4};
  EXPECT_EQ(HashSpan(a), HashSpan(a));
  EXPECT_NE(HashSpan(a), HashSpan(b));
  EXPECT_NE(HashSpan(a), HashSpan(c));
}

}  // namespace
}  // namespace s4tf
