#include "support/rng.h"

#include <cmath>
#include <gtest/gtest.h>

namespace s4tf {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(13);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) seen[rng.NextBelow(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Split();
  // The split stream should not replay the parent's outputs.
  Rng parent(23);
  parent.Next();  // advance past the Split draw
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (b.Next() == parent.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, FillUniformWithinBounds) {
  Rng rng(29);
  float buf[256];
  rng.FillUniform(buf, 256, -1.5f, 2.5f);
  for (float x : buf) {
    EXPECT_GE(x, -1.5f);
    EXPECT_LT(x, 2.5f);
  }
}

TEST(RngTest, FillGaussianHonorsMeanAndStddev) {
  Rng rng(31);
  std::vector<float> buf(20000);
  rng.FillGaussian(buf.data(), buf.size(), 3.0f, 0.5f);
  double sum = 0.0, sum_sq = 0.0;
  for (float x : buf) {
    sum += x;
    sum_sq += static_cast<double>(x) * x;
  }
  const double mean = sum / static_cast<double>(buf.size());
  const double var = sum_sq / static_cast<double>(buf.size()) - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(RngTest, SaveAndLoadStateResumeTheExactStream) {
  Rng rng(101);
  for (int i = 0; i < 37; ++i) rng.Next();
  // An odd number of gaussians leaves the Box-Muller cache populated —
  // the state words must carry it, or the resumed stream shifts by one.
  for (int i = 0; i < 3; ++i) rng.NextGaussian();

  const auto words = rng.SaveState();
  Rng resumed(0);
  resumed.LoadState(words);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(resumed.NextGaussian(), rng.NextGaussian()) << "draw " << i;
    ASSERT_EQ(resumed.Next(), rng.Next()) << "draw " << i;
  }
}

TEST(RngTest, LoadedStateIsIndependentOfDonorsLaterDraws) {
  Rng donor(7);
  donor.NextGaussian();
  const auto words = donor.SaveState();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(donor.Next());

  donor.LoadState(words);  // rewind
  for (int i = 0; i < 10; ++i) EXPECT_EQ(donor.Next(), expected[i]);
}

}  // namespace
}  // namespace s4tf
