#include "support/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace s4tf {
namespace {

TEST(Crc32Test, KnownAnswerForCheckString) {
  // The CRC-32/IEEE check value: CRC("123456789") == 0xCBF43926.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, std::strlen(check)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, IncrementalUpdatesMatchOneShot) {
  const std::string data = "crash-consistent checkpoints need checksums";
  const std::uint32_t one_shot = Crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = kCrc32Init;
    state = Crc32Update(state, data.data(), split);
    state = Crc32Update(state, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Final(state), one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesTheChecksum) {
  std::string data(256, '\0');
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 37 + 11);
  }
  const std::uint32_t clean = Crc32(data.data(), data.size());
  for (const std::size_t offset : {std::size_t{0}, data.size() / 2,
                                   data.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[offset] = static_cast<char>(flipped[offset] ^ (1 << bit));
      EXPECT_NE(Crc32(flipped.data(), flipped.size()), clean)
          << "offset " << offset << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace s4tf
