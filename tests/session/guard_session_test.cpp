// Guard rollback-and-skip acceptance tests: a seeded numeric corruption
// (NaN / Inf / bit flip, replicated or ZeRO-sharded, overlap on or off)
// is detected by the training guard, rolled back to the newest durable
// checkpoint, and the poisoned batch skipped — finishing with weights
// bitwise-equal to a clean run that never saw that batch. Plus the
// recovery-interaction matrix (numeric rollback x replica death x
// corrupt-newest-checkpoint in one run) and the injectable-sleep
// regression test.
#include "nn/session.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/training.h"
#include "obs/metrics.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path("/tmp") / ("s4tf_guard_session_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

constexpr int kGlobalBatch = 24;

SessionOptions BaseOptions(int replicas, const std::string& dir) {
  SessionOptions options;
  options.replicas = replicas;
  options.checkpoint_dir = dir;
  options.checkpoint_every_steps = 2;
  options.recovery_backoff = std::chrono::milliseconds(1);
  // Recovery grids should not burn wall-clock time sleeping.
  options.sleep_fn = [](std::chrono::milliseconds) {};
  return options;
}

struct RunResult {
  SessionReport report;
  std::vector<std::vector<float>> params;
  Status status = Status::Ok();
};

// Runs a session from the fixed initialization. `skip_batch` >= 0 builds
// the clean-detour reference: the batch schedule a recovered run is
// specified to reproduce (every index below the poisoned step unchanged,
// everything at or above it shifted up by one — the poisoned batch
// simply never exists).
RunResult RunSession(SessionOptions options, std::int64_t total_steps,
                     std::int64_t skip_batch = -1) {
  const auto dataset = SyntheticImageDataset::Mnist(48, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
  Rng data_rng(11);
  TrainingSession<LeNet, SGD<LeNet>> session(model, sgd, std::move(options),
                                             &data_rng);
  auto report = session.Run(total_steps, [&](std::int64_t step) {
    const std::int64_t batch_index =
        (skip_batch >= 0 && step >= skip_batch) ? step + 1 : step;
    return dataset.Batch(static_cast<int>(batch_index), kGlobalBatch,
                         NaiveDevice());
  });
  RunResult result;
  if (report.ok()) {
    result.report = *report;
  } else {
    result.status = report.status();
  }
  result.params = Parameters(model);
  return result;
}

void UseFastFailureDetection(SessionOptions& options) {
  options.replica.collective.recv_timeout = std::chrono::milliseconds(150);
  options.replica.collective.max_retries = 2;
}

class GuardSessionTest : public ::testing::Test {
 protected:
  ~GuardSessionTest() override { SetIntraOpThreads(0); }
};

TEST_F(GuardSessionTest, RollbackAndSkipMatchesCleanDetourForEveryKindAndMode) {
  // The acceptance grid: corruption kind x replicated/sharded x overlap.
  // Rank 1's buffers are struck at step 3; the session must detect, roll
  // back to the step-2 checkpoint, skip batch 3, and finish bitwise-equal
  // to the clean detour (5 training steps over batches {0,1,2,4,5}).
  SetIntraOpThreads(2);
  const std::int64_t kTotal = 6;
  const RunResult detour = RunSession(
      BaseOptions(2, TempDir("detour")), kTotal - 1, /*skip_batch=*/3);
  ASSERT_TRUE(detour.status.ok()) << detour.status.ToString();

  for (const dist::CorruptKind kind :
       {dist::CorruptKind::kNaN, dist::CorruptKind::kInf,
        dist::CorruptKind::kBitflip}) {
    for (const bool sharded : {false, true}) {
      for (const bool overlap : {false, true}) {
        const std::string tag =
            "kind " + std::to_string(static_cast<int>(kind)) + "_sharded" +
            std::to_string(sharded) + "_overlap" + std::to_string(overlap);
        const obs::MetricsSnapshot before =
            obs::MetricsRegistry::Global().Snapshot();
        SessionOptions options = BaseOptions(2, TempDir(tag));
        options.replica.sharded = sharded;
        options.replica.overlap = overlap;
        options.replica.guard.enabled = true;
        options.corrupt_rank = 1;
        options.corrupt_at_step = 3;
        options.corrupt_kind = kind;
        const RunResult poisoned = RunSession(options, kTotal);
        ASSERT_TRUE(poisoned.status.ok())
            << tag << ": " << poisoned.status.ToString();
        EXPECT_EQ(poisoned.report.steps_completed, kTotal) << tag;
        EXPECT_EQ(poisoned.report.rollbacks, 1) << tag;
        EXPECT_EQ(poisoned.report.steps_skipped, 1) << tag;
        EXPECT_EQ(poisoned.report.recoveries, 1) << tag;
        EXPECT_EQ(poisoned.report.world_size, 2) << tag;  // nobody died
        ASSERT_EQ(poisoned.params, detour.params) << tag;

        // Exact counter equalities: one trip, one rollback, one skipped
        // step, one injected strike.
        const auto delta = obs::MetricsRegistry::Global()
                               .Snapshot()
                               .CounterDeltaSince(before);
        EXPECT_EQ(delta.at("nn.guard.trips"), 1) << tag;
        EXPECT_EQ(delta.at("nn.guard.rollbacks"), 1) << tag;
        EXPECT_EQ(delta.at("nn.guard.skipped_steps"), 1) << tag;
        EXPECT_EQ(delta.at("dist.fault.corruptions"), 1) << tag;
        EXPECT_EQ(delta.at("nn.session.recoveries"), 1) << tag;
        EXPECT_EQ(delta.count("nn.session.world_shrinks")
                      ? delta.at("nn.session.world_shrinks")
                      : 0,
                  0)
            << tag;
      }
    }
  }
}

TEST_F(GuardSessionTest, WorldOneBitflipRollsBackViaSelfCheck) {
  // A world of 1 has no quorum: the pre-vs-post self-check must still
  // catch the flip and drive the same rollback-and-skip, replicated and
  // sharded alike.
  SetIntraOpThreads(1);
  const std::int64_t kTotal = 5;
  const RunResult detour = RunSession(
      BaseOptions(1, TempDir("w1_detour")), kTotal - 1, /*skip_batch=*/3);
  ASSERT_TRUE(detour.status.ok()) << detour.status.ToString();
  for (const bool sharded : {false, true}) {
    SessionOptions options =
        BaseOptions(1, TempDir("w1_s" + std::to_string(sharded)));
    options.replica.sharded = sharded;
    options.replica.guard.enabled = true;
    options.corrupt_rank = 0;
    options.corrupt_at_step = 3;
    options.corrupt_kind = dist::CorruptKind::kBitflip;
    const RunResult poisoned = RunSession(options, kTotal);
    ASSERT_TRUE(poisoned.status.ok()) << poisoned.status.ToString();
    EXPECT_EQ(poisoned.report.rollbacks, 1);
    EXPECT_EQ(poisoned.report.steps_skipped, 1);
    ASSERT_EQ(poisoned.params, detour.params) << "sharded " << sharded;
  }
}

TEST_F(GuardSessionTest, GuardOnCleanRunIsBitwiseEqualToGuardOff) {
  // The zero-overhead-when-clean contract at the session level: enabling
  // the guard on a healthy run changes nothing but the scan counters.
  SetIntraOpThreads(2);
  const std::int64_t kTotal = 4;
  const RunResult off = RunSession(BaseOptions(2, TempDir("off")), kTotal);
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  SessionOptions guarded = BaseOptions(2, TempDir("on"));
  guarded.replica.guard.enabled = true;
  const RunResult on = RunSession(guarded, kTotal);
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  ASSERT_EQ(on.params, off.params);
  ASSERT_EQ(on.report.last_loss, off.report.last_loss);
  EXPECT_EQ(on.report.rollbacks, 0);
  EXPECT_EQ(on.report.steps_skipped, 0);

  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.count("nn.guard.trips") ? delta.at("nn.guard.trips") : 0,
            0);
  EXPECT_GT(delta.at("nn.guard.scans"), 0);
}

TEST_F(GuardSessionTest, CorruptionWithoutGuardPoisonsTheRunSilently) {
  // The failure mode the guard exists for: with the guard off, a NaN
  // strike sails through the all-reduce and the session "succeeds" —
  // no recovery, and the weights are permanently poisoned (the loss
  // itself may stay finite when pooling/ReLU drops the NaN activation,
  // which is exactly why a loss-only check is not enough).
  SetIntraOpThreads(2);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  SessionOptions options = BaseOptions(2, TempDir("unguarded"));
  options.corrupt_rank = 1;
  options.corrupt_at_step = 2;
  options.corrupt_kind = dist::CorruptKind::kNaN;
  const RunResult result = RunSession(options, /*total_steps=*/4);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.report.rollbacks, 0);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("dist.fault.corruptions"), 1);
  bool poisoned = false;
  for (const auto& param : result.params) {
    for (const float v : param) {
      if (!std::isfinite(v)) poisoned = true;
    }
  }
  EXPECT_TRUE(poisoned);
}

TEST_F(GuardSessionTest,
       RollbackComposesWithReplicaDeathAndCorruptCheckpoint) {
  // The recovery-interaction matrix, all in ONE run per cell: a NaN
  // strike at step 3 (rollback-and-skip), then the newest checkpoint is
  // garbled before step 5 (forcing the fallback path), then rank
  // world-1 dies at step 5 (elastic shrink). With every durable file
  // invalid the session falls back to its Run-entry baseline and
  // replays from step 0 at the shrunk world, still skipping batch 3 —
  // so the reference is simply the clean detour at world-1 replicas.
  const std::int64_t kTotal = 8;
  for (const int world : {2, 4}) {
    for (const bool sharded : {false, true}) {
      for (const bool overlap : {false, true}) {
        SetIntraOpThreads(2);
        const std::string tag = "matrix_w" + std::to_string(world) +
                                "_s" + std::to_string(sharded) + "_o" +
                                std::to_string(overlap);
        const RunResult detour =
            RunSession(BaseOptions(world - 1, TempDir(tag + "_ref")),
                       kTotal - 1, /*skip_batch=*/3);
        ASSERT_TRUE(detour.status.ok()) << detour.status.ToString();

        const obs::MetricsSnapshot before =
            obs::MetricsRegistry::Global().Snapshot();
        const std::string dir = TempDir(tag);
        SessionOptions options = BaseOptions(world, dir);
        UseFastFailureDetection(options);
        options.replica.sharded = sharded;
        options.replica.overlap = overlap;
        options.replica.guard.enabled = true;
        options.corrupt_rank = world - 1;
        options.corrupt_at_step = 3;
        options.corrupt_kind = dist::CorruptKind::kNaN;
        options.kill_rank = world - 1;
        options.kill_at_step = 5;

        // Garble every checkpoint written so far when step 5's batch is
        // first requested: the death recovery then finds no valid
        // durable state (counting crc_failures) and falls back to the
        // Run-entry baseline.
        const auto dataset = SyntheticImageDataset::Mnist(48, 17);
        Rng init_rng(5);
        LeNet model(init_rng);
        SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
        Rng data_rng(11);
        TrainingSession<LeNet, SGD<LeNet>> session(
            model, sgd, std::move(options), &data_rng);
        bool garbled = false;
        auto report = session.Run(kTotal, [&](std::int64_t step) {
          if (step == 5 && !garbled) {
            garbled = true;
            for (const auto& entry : fs::directory_iterator(dir)) {
              std::string bytes;
              {
                std::ifstream in(entry.path(), std::ios::binary);
                bytes.assign(std::istreambuf_iterator<char>(in), {});
              }
              bytes[bytes.size() / 2] ^= 0x40;
              std::ofstream out(entry.path(),
                                std::ios::binary | std::ios::trunc);
              out.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
            }
          }
          return dataset.Batch(static_cast<int>(step), kGlobalBatch,
                               NaiveDevice());
        });
        ASSERT_TRUE(report.ok()) << tag << ": " << report.status().ToString();
        EXPECT_TRUE(garbled) << tag;
        EXPECT_EQ(report->steps_completed, kTotal) << tag;
        EXPECT_EQ(report->rollbacks, 1) << tag;
        EXPECT_EQ(report->steps_skipped, 1) << tag;
        EXPECT_EQ(report->recoveries, 2) << tag;  // rollback + death
        EXPECT_EQ(report->world_size, world - 1) << tag;
        ASSERT_EQ(Parameters(model), detour.params) << tag;

        const auto delta = obs::MetricsRegistry::Global()
                               .Snapshot()
                               .CounterDeltaSince(before);
        EXPECT_EQ(delta.at("nn.guard.rollbacks"), 1) << tag;
        EXPECT_EQ(delta.at("nn.session.world_shrinks"), 1) << tag;
        EXPECT_GT(delta.at("nn.session.crc_failures"), 0) << tag;
        // The re-walked prefix re-marks batch 3 skipped on every pass
        // over it, so skipped_steps counts passes, not distinct steps;
        // the distinct count is pinned by report.steps_skipped above.
        EXPECT_GE(delta.at("nn.guard.skipped_steps"), 1) << tag;
      }
    }
  }
}

TEST_F(GuardSessionTest, InjectedSleepReceivesTheExactBackoffLadder) {
  // The sleep hook changes how time passes, never the ladder: the
  // recorder must observe base * multiplier^attempt per recovery, and
  // nn.session.backoff_ms must equal the sum of the scheduled delays.
  SetIntraOpThreads(2);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<std::int64_t> recorded;
  SessionOptions options = BaseOptions(2, TempDir("sleep_hook"));
  UseFastFailureDetection(options);
  options.recovery_backoff = std::chrono::milliseconds(7);
  options.backoff_multiplier = 2.0;
  options.sleep_fn = [&recorded](std::chrono::milliseconds delay) {
    recorded.push_back(delay.count());
  };
  options.replica.guard.enabled = true;
  options.corrupt_rank = 1;
  options.corrupt_at_step = 2;  // first recovery: rollback-and-skip
  options.corrupt_kind = dist::CorruptKind::kInf;
  options.kill_rank = 1;
  options.kill_at_step = 4;  // second recovery: elastic shrink
  const RunResult result = RunSession(options, /*total_steps=*/6);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.report.recoveries, 2);
  ASSERT_EQ(recorded, (std::vector<std::int64_t>{7, 14}));
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.session.backoff_ms"), 21);
}

TEST_F(GuardSessionTest, BackoffLadderIsIdenticalWithAndWithoutTheHook) {
  // Regression pin for the refactor that introduced the hook: the
  // scheduled-delay semantics (and thus the backoff_ms counter) must be
  // identical whether the session really sleeps or a test absorbs it.
  SetIntraOpThreads(2);
  const auto run = [](bool hook, std::int64_t& backoff_ms) {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    SessionOptions options =
        BaseOptions(2, TempDir(hook ? "ladder_hook" : "ladder_real"));
    UseFastFailureDetection(options);
    options.recovery_backoff = std::chrono::milliseconds(3);
    if (hook) {
      options.sleep_fn = [](std::chrono::milliseconds) {};
    } else {
      options.sleep_fn = nullptr;  // really sleep (3ms: cheap enough)
    }
    options.replica.guard.enabled = true;
    options.corrupt_rank = 0;
    options.corrupt_at_step = 2;
    options.corrupt_kind = dist::CorruptKind::kNaN;
    const RunResult result = RunSession(options, /*total_steps=*/4);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    const auto delta = obs::MetricsRegistry::Global()
                           .Snapshot()
                           .CounterDeltaSince(before);
    backoff_ms = delta.at("nn.session.backoff_ms");
  };
  std::int64_t with_hook = -1;
  std::int64_t without_hook = -2;
  run(true, with_hook);
  run(false, without_hook);
  EXPECT_EQ(with_hook, 3);
  EXPECT_EQ(with_hook, without_hook);
}

TEST_F(GuardSessionTest, ExhaustedBudgetOnRepeatedCorruptionFailsLoudly) {
  // Guard recoveries draw from the same budget as elastic recovery:
  // max_recoveries = 0 turns the first trip into a loud failure that
  // names the corruption.
  SetIntraOpThreads(2);
  SessionOptions options = BaseOptions(2, TempDir("guard_budget"));
  options.replica.guard.enabled = true;
  options.corrupt_rank = 0;
  options.corrupt_at_step = 1;
  options.corrupt_kind = dist::CorruptKind::kNaN;
  options.max_recoveries = 0;
  const RunResult result = RunSession(options, /*total_steps=*/4);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("recovery budget"),
            std::string::npos)
      << result.status.ToString();
  EXPECT_NE(result.status.message().find("gradient corruption"),
            std::string::npos)
      << result.status.ToString();
}

}  // namespace
}  // namespace s4tf::nn
