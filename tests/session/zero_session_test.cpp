// Resilient sessions under ZeRO sharding: kill-and-resume and elastic
// replica-death recovery walk the identical trajectory with sharded
// optimizer state, and the checkpoints a sharded session writes are
// byte-identical to a replicated session's (gather-on-step keeps the
// caller's optimizer holding the full state).
#include "nn/session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/training.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path("/tmp") / ("s4tf_zero_session_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

constexpr int kGlobalBatch = 24;

SessionOptions BaseOptions(int replicas, const std::string& dir,
                           bool sharded) {
  SessionOptions options;
  options.replicas = replicas;
  options.replica.sharded = sharded;
  options.checkpoint_dir = dir;
  options.checkpoint_every_steps = 2;
  options.recovery_backoff = std::chrono::milliseconds(1);
  return options;
}

struct RunResult {
  SessionReport report;
  std::vector<std::vector<float>> params;
  Status status = Status::Ok();
};

// Adam, so optimizer state (m, v, step) must survive sharding, gather
// back for checkpoints, and re-seed the shard optimizers after recovery.
RunResult RunSession(SessionOptions options, std::int64_t total_steps) {
  const auto dataset = SyntheticImageDataset::Mnist(48, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  Adam<LeNet> adam(0.01f);
  Rng data_rng(11);
  TrainingSession<LeNet, Adam<LeNet>> session(model, adam,
                                              std::move(options), &data_rng);
  auto report = session.Run(total_steps, [&](std::int64_t step) {
    return dataset.Batch(static_cast<int>(step), kGlobalBatch,
                         NaiveDevice());
  });
  RunResult result;
  if (report.ok()) {
    result.report = *report;
  } else {
    result.status = report.status();
  }
  result.params = Parameters(model);
  return result;
}

class ZeroSessionTest : public ::testing::Test {
 protected:
  ~ZeroSessionTest() override { SetIntraOpThreads(0); }
};

TEST_F(ZeroSessionTest, ShardedCheckpointsAreByteIdenticalToReplicated) {
  // The checkpoint-compatibility acceptance criterion: the durable files
  // a sharded session writes are byte-for-byte the replicated session's.
  SetIntraOpThreads(1);
  const std::int64_t kTotal = 4;
  for (const int world : {1, 2, 4}) {
    const std::string rep_dir =
        TempDir("rep_w" + std::to_string(world));
    const std::string shard_dir =
        TempDir("shard_w" + std::to_string(world));
    const RunResult replicated =
        RunSession(BaseOptions(world, rep_dir, /*sharded=*/false), kTotal);
    ASSERT_TRUE(replicated.status.ok()) << replicated.status.ToString();
    const RunResult sharded =
        RunSession(BaseOptions(world, shard_dir, /*sharded=*/true), kTotal);
    ASSERT_TRUE(sharded.status.ok()) << sharded.status.ToString();
    ASSERT_EQ(sharded.params, replicated.params) << "world " << world;
    for (const std::int64_t step : {2, 4}) {
      const std::string rep_file =
          CheckpointStore::PathForStep(rep_dir, step);
      const std::string shard_file =
          CheckpointStore::PathForStep(shard_dir, step);
      ASSERT_TRUE(fs::exists(rep_file)) << rep_file;
      ASSERT_TRUE(fs::exists(shard_file)) << shard_file;
      const std::string rep_bytes = FileBytes(rep_file);
      ASSERT_FALSE(rep_bytes.empty());
      ASSERT_EQ(FileBytes(shard_file), rep_bytes)
          << "world " << world << " step " << step;
    }
  }
}

TEST_F(ZeroSessionTest, KillAndResumeBitIdenticalUnderSharding) {
  // A sharded session aborted between checkpoints and resumed finishes
  // with weights bit-equal to an uninterrupted sharded run — which the
  // test above pins to the replicated run.
  const std::int64_t kTotal = 6;
  for (const int world : {1, 2, 4}) {
    SetIntraOpThreads(1);
    const std::string clean_dir =
        TempDir("clean_w" + std::to_string(world));
    const RunResult clean =
        RunSession(BaseOptions(world, clean_dir, /*sharded=*/true), kTotal);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(clean.report.steps_completed, kTotal);

    for (const int threads : {1, 2}) {
      SetIntraOpThreads(threads);
      const std::string dir = TempDir("resume_w" + std::to_string(world) +
                                      "_t" + std::to_string(threads));
      SessionOptions crashing = BaseOptions(world, dir, /*sharded=*/true);
      crashing.abort_at_step = 3;
      const RunResult aborted = RunSession(crashing, kTotal);
      ASSERT_TRUE(aborted.status.ok()) << aborted.status.ToString();
      EXPECT_TRUE(aborted.report.aborted);

      const RunResult resumed =
          RunSession(BaseOptions(world, dir, /*sharded=*/true), kTotal);
      ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
      EXPECT_TRUE(resumed.report.resumed);
      EXPECT_EQ(resumed.report.steps_completed, kTotal);
      ASSERT_EQ(resumed.params, clean.params)
          << "world " << world << " threads " << threads;
    }
  }
}

TEST_F(ZeroSessionTest, ReplicaDeathUnderShardingShrinksWorldAndRecovers) {
  // Elastic recovery with sharded state: rank 2 of 4 dies mid-step, the
  // session shrinks to world 3 (the shard plan re-partitions over the
  // survivors), restores the last checkpoint, and reproduces the
  // explicit head-then-tail reference exactly.
  SetIntraOpThreads(2);
  const std::int64_t kTotal = 6;

  const std::string ref_dir = TempDir("death_reference");
  const RunResult head =
      RunSession(BaseOptions(4, ref_dir, /*sharded=*/true), /*total=*/2);
  ASSERT_TRUE(head.status.ok()) << head.status.ToString();
  const RunResult reference =
      RunSession(BaseOptions(3, ref_dir, /*sharded=*/true), kTotal);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_TRUE(reference.report.resumed);

  const std::string dir = TempDir("death_elastic");
  SessionOptions dying = BaseOptions(4, dir, /*sharded=*/true);
  dying.replica.collective.recv_timeout = std::chrono::milliseconds(150);
  dying.replica.collective.max_retries = 2;
  dying.kill_rank = 2;
  dying.kill_at_step = 3;
  const RunResult survived = RunSession(dying, kTotal);
  ASSERT_TRUE(survived.status.ok()) << survived.status.ToString();
  EXPECT_EQ(survived.report.recoveries, 1);
  EXPECT_EQ(survived.report.world_size, 3);
  EXPECT_EQ(survived.report.steps_completed, kTotal);
  ASSERT_EQ(survived.params, reference.params);
}

}  // namespace
}  // namespace s4tf::nn
