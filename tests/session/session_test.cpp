// Resilient-session acceptance tests: kill-and-resume walks the identical
// weight trajectory as an uninterrupted run, replica death shrinks the
// world and continues from the last durable checkpoint, and an exhausted
// recovery budget fails loudly — never a hang.
#include "nn/session.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "eager/eager_backend.h"
#include "lazy/lazy_tensor.h"
#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/training.h"
#include "obs/metrics.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

// s4tf_eager and s4tf_lazy are static libraries whose replica-device
// factories register from a file-scope initializer; odr-using one symbol
// from each pulls the object file (and its registrar) into this binary.
void TouchBackends() {
  static EagerBackend eager;
  static LazyBackend lazy;
  (void)eager.device();
  (void)lazy.device();
}

namespace fs = std::filesystem;

// A fresh, empty checkpoint directory under /tmp, unique per name.
std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path("/tmp") / ("s4tf_session_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

// Batches are a pure function of the step index — the resume-determinism
// precondition. Global batch 24 divides every world size in 1..4.
constexpr int kGlobalBatch = 24;

SessionOptions BaseOptions(int replicas, const std::string& dir,
                           DeviceKind kind = DeviceKind::kNaive) {
  SessionOptions options;
  options.replicas = replicas;
  options.replica.device_kind = kind;
  options.checkpoint_dir = dir;
  options.checkpoint_every_steps = 2;
  options.recovery_backoff = std::chrono::milliseconds(1);
  return options;
}

// Runs a full session from a fixed initialization. Each call builds a
// fresh model/optimizer/RNG from the same seeds — exactly what re-running
// the training program after a crash does.
struct RunResult {
  SessionReport report;
  std::vector<std::vector<float>> params;
  Status status = Status::Ok();
};

RunResult RunSession(SessionOptions options, std::int64_t total_steps) {
  const auto dataset = SyntheticImageDataset::Mnist(48, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
  Rng data_rng(11);
  TrainingSession<LeNet, SGD<LeNet>> session(model, sgd, std::move(options),
                                             &data_rng);
  auto report = session.Run(total_steps, [&](std::int64_t step) {
    return dataset.Batch(static_cast<int>(step), kGlobalBatch,
                         NaiveDevice());
  });
  RunResult result;
  if (report.ok()) {
    result.report = *report;
  } else {
    result.status = report.status();
  }
  result.params = Parameters(model);
  return result;
}

class TrainingSessionTest : public ::testing::Test {
 protected:
  ~TrainingSessionTest() override { SetIntraOpThreads(0); }
};

TEST_F(TrainingSessionTest, KillAndResumeBitIdenticalAcrossWorldsAndThreads) {
  // The acceptance grid: for every world size x intra-op thread count, a
  // session aborted mid-run (simulated kill between checkpoints) and then
  // resumed from its durable checkpoint finishes with weights bit-equal
  // to a run that was never interrupted.
  const std::int64_t kTotal = 6;
  for (const int world : {1, 2, 4}) {
    SetIntraOpThreads(1);
    const std::string clean_dir =
        TempDir("clean_w" + std::to_string(world));
    const RunResult clean = RunSession(BaseOptions(world, clean_dir), kTotal);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(clean.report.steps_completed, kTotal);

    for (const int threads : {1, 2, 4}) {
      SetIntraOpThreads(threads);
      const std::string dir = TempDir("resume_w" + std::to_string(world) +
                                      "_t" + std::to_string(threads));
      // First process: dies before step 3 (checkpoints exist at step 2).
      SessionOptions crashing = BaseOptions(world, dir);
      crashing.abort_at_step = 3;
      const RunResult aborted = RunSession(crashing, kTotal);
      ASSERT_TRUE(aborted.status.ok()) << aborted.status.ToString();
      EXPECT_TRUE(aborted.report.aborted);
      EXPECT_EQ(aborted.report.steps_completed, 3);

      // Second process: same program, fresh objects, resumes and finishes.
      const RunResult resumed = RunSession(BaseOptions(world, dir), kTotal);
      ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
      EXPECT_TRUE(resumed.report.resumed);
      EXPECT_EQ(resumed.report.steps_completed, kTotal);
      ASSERT_EQ(resumed.params, clean.params)
          << "world " << world << " threads " << threads;
      ASSERT_EQ(resumed.report.last_loss, clean.report.last_loss)
          << "world " << world << " threads " << threads;
    }
  }
}

TEST_F(TrainingSessionTest, KillAndResumeBitIdenticalOnEveryBackend) {
  // Same contract on the eager and lazy backends (naive is covered by the
  // grid above), at a fixed world/thread point.
  TouchBackends();
  SetIntraOpThreads(2);
  const std::int64_t kTotal = 5;
  for (const DeviceKind kind : {DeviceKind::kEager, DeviceKind::kLazy}) {
    const std::string tag = DeviceKindName(kind);
    const std::string clean_dir = TempDir("clean_" + tag);
    const RunResult clean =
        RunSession(BaseOptions(2, clean_dir, kind), kTotal);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();

    const std::string dir = TempDir("resume_" + tag);
    SessionOptions crashing = BaseOptions(2, dir, kind);
    crashing.abort_at_step = 3;
    const RunResult aborted = RunSession(crashing, kTotal);
    ASSERT_TRUE(aborted.status.ok()) << aborted.status.ToString();
    ASSERT_TRUE(aborted.report.aborted);

    const RunResult resumed = RunSession(BaseOptions(2, dir, kind), kTotal);
    ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
    ASSERT_EQ(resumed.params, clean.params) << "backend " << tag;
  }
}

// Short receive budgets so a replica death is detected in well under a
// second: each peer fails after (1 + 2) * 150ms on its first missing
// chunk.
void UseFastFailureDetection(SessionOptions& options) {
  options.replica.collective.recv_timeout = std::chrono::milliseconds(150);
  options.replica.collective.max_retries = 2;
}

TEST_F(TrainingSessionTest, ReplicaDeathShrinksWorldAndResumesFromCheckpoint) {
  SetIntraOpThreads(2);
  const std::int64_t kTotal = 6;

  // Reference: a clean world-4 run up to the last checkpoint before the
  // death (step 2), then an explicit resume of the tail at world 3 — the
  // exact trajectory elastic recovery is specified to reproduce.
  const std::string ref_dir = TempDir("death_reference");
  const RunResult head = RunSession(BaseOptions(4, ref_dir), /*total=*/2);
  ASSERT_TRUE(head.status.ok()) << head.status.ToString();
  const RunResult reference = RunSession(BaseOptions(3, ref_dir), kTotal);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_TRUE(reference.report.resumed);

  // The real thing: world 4, rank 2 dies entering step 3; the session
  // must shrink to 3, restore the step-2 checkpoint, and finish.
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const std::string dir = TempDir("death_elastic");
  SessionOptions dying = BaseOptions(4, dir);
  UseFastFailureDetection(dying);
  dying.kill_rank = 2;
  dying.kill_at_step = 3;
  const RunResult survived = RunSession(dying, kTotal);
  ASSERT_TRUE(survived.status.ok()) << survived.status.ToString();
  EXPECT_EQ(survived.report.recoveries, 1);
  EXPECT_EQ(survived.report.world_size, 3);
  EXPECT_EQ(survived.report.steps_completed, kTotal);
  ASSERT_EQ(survived.params, reference.params);

  // Run-twice determinism of the whole failure + recovery trajectory.
  const std::string dir2 = TempDir("death_elastic_again");
  SessionOptions dying2 = BaseOptions(4, dir2);
  UseFastFailureDetection(dying2);
  dying2.kill_rank = 2;
  dying2.kill_at_step = 3;
  const RunResult again = RunSession(dying2, kTotal);
  ASSERT_TRUE(again.status.ok()) << again.status.ToString();
  ASSERT_EQ(again.params, survived.params);

  // The whole episode is observable.
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.session.recoveries"), 2);
  EXPECT_EQ(delta.at("nn.session.world_shrinks"), 2);
  EXPECT_EQ(delta.at("dist.fault.replica_deaths"), 2);
  EXPECT_GT(delta.at("nn.session.backoff_ms"), 0);
  EXPECT_GT(delta.at("nn.session.checkpoints_written"), 0);
}

TEST_F(TrainingSessionTest, ExhaustedRecoveryBudgetFailsLoudly) {
  SetIntraOpThreads(2);
  const std::string dir = TempDir("budget");
  SessionOptions options = BaseOptions(2, dir);
  UseFastFailureDetection(options);
  options.kill_rank = 1;
  options.kill_at_step = 1;
  options.max_recoveries = 0;  // no budget: the first failure is final
  const RunResult result = RunSession(options, /*total=*/4);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("recovery budget"),
            std::string::npos)
      << result.status.ToString();
}

TEST_F(TrainingSessionTest, ShrinkBelowMinReplicasFailsLoudly) {
  SetIntraOpThreads(2);
  const std::string dir = TempDir("min_replicas");
  SessionOptions options = BaseOptions(2, dir);
  UseFastFailureDetection(options);
  options.kill_rank = 0;
  options.kill_at_step = 1;
  options.min_replicas = 2;  // dying would shrink below the floor
  const RunResult result = RunSession(options, /*total=*/4);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status.message().find("min_replicas"), std::string::npos)
      << result.status.ToString();
}

TEST_F(TrainingSessionTest, RecoveryWithoutDurableStoreRestartsFromBaseline) {
  // No checkpoint_dir: recovery falls back to the state captured at Run
  // entry — still deterministic, just more recomputation.
  SetIntraOpThreads(2);
  SessionOptions options = BaseOptions(3, /*dir=*/"");
  UseFastFailureDetection(options);
  options.kill_rank = 1;
  options.kill_at_step = 2;
  const RunResult survived = RunSession(options, /*total=*/4);
  ASSERT_TRUE(survived.status.ok()) << survived.status.ToString();
  EXPECT_EQ(survived.report.recoveries, 1);
  EXPECT_EQ(survived.report.world_size, 2);

  // Reference: the full run at world 2 from the same initialization.
  const RunResult reference = RunSession(BaseOptions(2, ""), /*total=*/4);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  ASSERT_EQ(survived.params, reference.params);
}

TEST_F(TrainingSessionTest, IndivisibleGlobalBatchIsACleanError) {
  SetIntraOpThreads(1);
  const auto dataset = SyntheticImageDataset::Mnist(48, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  SGD<LeNet> sgd(0.1f);
  TrainingSession<LeNet, SGD<LeNet>> session(model, sgd,
                                             BaseOptions(4, ""));
  const auto report = session.Run(2, [&](std::int64_t step) {
    return dataset.Batch(static_cast<int>(step), 10, NaiveDevice());
  });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TrainingSessionTest, CheckpointStoreRotatesAndSkipsCorruptFiles) {
  SetIntraOpThreads(1);
  const std::string dir = TempDir("store");
  CheckpointStore store(dir, /*keep=*/2);

  Rng rng(3);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f, 0.9f);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (std::int64_t step = 1; step <= 5; ++step) {
    TrainingState state = CaptureTrainingState(model, sgd, step, 0);
    ASSERT_TRUE(store.Save(state).ok());
  }
  // Rotation kept exactly the newest two.
  EXPECT_EQ(store.ListSteps(), (std::vector<std::int64_t>{4, 5}));
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.session.checkpoints_written"), 5);
  EXPECT_EQ(delta.at("nn.session.checkpoints_discarded"), 3);

  // Corrupt the newest file: LoadLatest falls back to its predecessor.
  {
    const std::string newest = CheckpointStore::PathForStep(dir, 5);
    std::string bytes;
    {
      std::ifstream in(newest, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const auto latest = store.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->step, 4);

  // Nothing valid left -> NotFound, never a throw or a hang.
  fs::remove(CheckpointStore::PathForStep(dir, 4));
  const auto none = store.LoadLatest();
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace s4tf::nn
