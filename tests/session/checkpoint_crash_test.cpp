// Crash-consistency and adversarial-input tests for the v2 checkpoint
// format: a simulated crash at any point of the save leaves a loadable
// file, truncation at every boundary and bit flips anywhere are rejected
// with a clean Status, and legacy v1 files still load.
#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "support/crc32.h"

namespace s4tf::nn {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& name) {
  const fs::path dir = fs::path("/tmp") / ("s4tf_ckpt_crash_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small but fully populated TrainingState: momentum SGD after one
// update, RNG mid-stream, non-zero counters.
TrainingState SampleState(std::uint64_t seed = 7) {
  Rng rng(seed);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f, 0.9f);
  typename LeNet::TangentVector grads{};
  // Materialize velocity slots with a synthetic all-ones gradient.
  model.VisitWithTangent(grads, [&](Tensor& p, Tensor& g) {
    g = Tensor::FromVector(p.shape(),
                           std::vector<float>(
                               static_cast<std::size_t>(p.NumElements()),
                               1.0f),
                           p.device());
  });
  sgd.Update(model, grads);
  Rng data_rng(seed + 1);
  (void)data_rng.NextGaussian();  // populate the gaussian cache word
  return CaptureTrainingState(model, sgd, /*step=*/12, /*epoch=*/2,
                              &data_rng);
}

bool StatesBitEqual(const TrainingState& a, const TrainingState& b) {
  if (a.step != b.step || a.epoch != b.epoch) return false;
  if (a.rng_state != b.rng_state) return false;
  if (a.model.entries.size() != b.model.entries.size()) return false;
  for (std::size_t i = 0; i < a.model.entries.size(); ++i) {
    if (a.model.entries[i].shape != b.model.entries[i].shape) return false;
    if (a.model.entries[i].values != b.model.entries[i].values) return false;
  }
  if (a.optimizer.scalars != b.optimizer.scalars) return false;
  if (a.optimizer.tensors.size() != b.optimizer.tensors.size()) return false;
  for (std::size_t i = 0; i < a.optimizer.tensors.size(); ++i) {
    const auto& x = a.optimizer.tensors[i];
    const auto& y = b.optimizer.tensors[i];
    if (x.name != y.name || x.shape != y.shape || x.values != y.values) {
      return false;
    }
  }
  return true;
}

TEST(CheckpointCrashTest, CrashBetweenTempWriteAndRenameKeepsOldFile) {
  const std::string dir = TempDir("crash_window");
  const std::string path = dir + "/state.s4tf";

  const TrainingState old_state = SampleState(1);
  ASSERT_TRUE(SaveTrainingState(old_state, path).ok());

  // Simulated crash: the new state's bytes are fully written and fsynced
  // to the temp path, but the process dies before the atomic rename.
  const TrainingState new_state = SampleState(2);
  const std::string bytes = internal::EncodeTrainingState(new_state);
  const std::string temp = internal::TempPathFor(path);
  ASSERT_TRUE(internal::WriteFileDurable(bytes, temp).ok());

  auto loaded = LoadTrainingState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(StatesBitEqual(*loaded, old_state))
      << "torn save must leave the previous complete checkpoint";

  // The "restarted process" finishing the commit yields the new state.
  ASSERT_TRUE(internal::CommitCheckpointFile(temp, path).ok());
  auto after = LoadTrainingState(path);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(StatesBitEqual(*after, new_state));
}

TEST(CheckpointCrashTest, CrashBeforeAnyRenameLeavesNoVisibleFile) {
  const std::string dir = TempDir("crash_first_save");
  const std::string path = dir + "/state.s4tf";
  const std::string bytes =
      internal::EncodeTrainingState(SampleState(3));
  ASSERT_TRUE(
      internal::WriteFileDurable(bytes, internal::TempPathFor(path)).ok());
  // No rename happened: the final path does not exist, and loading it is
  // a clean NotFound-style failure, not a partial parse.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(LoadTrainingState(path).ok());
}

TEST(CheckpointCrashTest, TruncationAtEveryBoundaryIsRejectedCleanly) {
  const std::string dir = TempDir("torn");
  const std::string path = dir + "/state.s4tf";
  const TrainingState state = SampleState(4);
  ASSERT_TRUE(SaveTrainingState(state, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  const std::string torn = dir + "/torn.s4tf";
  for (std::size_t len = 0; len < bytes.size(); len += 64) {
    WriteFileBytes(torn, bytes.substr(0, len));
    const auto truncated = LoadTrainingState(torn);
    EXPECT_FALSE(truncated.ok()) << "prefix of " << len << " bytes parsed";
    const auto as_checkpoint = LoadCheckpoint(torn);
    EXPECT_FALSE(as_checkpoint.ok()) << "prefix of " << len << " bytes";
  }
}

TEST(CheckpointCrashTest, EveryCorruptedRegionFailsTheCrc) {
  const std::string dir = TempDir("bitflip");
  const std::string path = dir + "/state.s4tf";
  ASSERT_TRUE(SaveTrainingState(SampleState(5), path).ok());
  const std::string bytes = ReadFileBytes(path);

  // Flip one bit in a spread of offsets covering the header, the section
  // framing, tensor payloads, and both CRC footers.
  const std::string corrupt = dir + "/corrupt.s4tf";
  std::vector<std::size_t> offsets = {12,
                                      20,
                                      bytes.size() / 4,
                                      bytes.size() / 2,
                                      bytes.size() - 5,
                                      bytes.size() - 1};
  for (const std::size_t offset : offsets) {
    std::string flipped = bytes;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x10);
    WriteFileBytes(corrupt, flipped);
    EXPECT_FALSE(LoadTrainingState(corrupt).ok())
        << "bit flip at offset " << offset << " went undetected";
  }
}

TEST(CheckpointCrashTest, TrailingGarbageAfterFooterIsRejected) {
  const std::string dir = TempDir("trailing");
  const std::string path = dir + "/state.s4tf";
  ASSERT_TRUE(SaveTrainingState(SampleState(6), path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes += "extra";
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(LoadTrainingState(path).ok());
  EXPECT_FALSE(LoadCheckpoint(path).ok());
}

TEST(CheckpointCrashTest, HugeDeclaredShapeIsRejectedWithoutAllocating) {
  // A forged v1 header declaring one tensor of 2^60 elements in a tiny
  // file: the parser must bound the resize by the file size and fail.
  std::string bytes;
  bytes += "S4TFCKPT";
  const std::uint32_t version = 1, entries = 1, rank = 1;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&entries), 4);
  bytes.append(reinterpret_cast<const char*>(&rank), 4);
  const std::int64_t dim = std::int64_t{1} << 60;
  bytes.append(reinterpret_cast<const char*>(&dim), 8);
  bytes.append(16, '\0');  // far fewer payload bytes than declared

  const std::string dir = TempDir("huge");
  const std::string path = dir + "/huge.s4tf";
  WriteFileBytes(path, bytes);
  const auto loaded = LoadCheckpoint(path);
  ASSERT_FALSE(loaded.ok());
}

TEST(CheckpointCrashTest, LegacyV1FilesStillLoad) {
  // A hand-written v1 file (pre-CRC format): one 2x2 tensor.
  std::string bytes;
  bytes += "S4TFCKPT";
  const std::uint32_t version = 1, entries = 1, rank = 2;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&entries), 4);
  bytes.append(reinterpret_cast<const char*>(&rank), 4);
  const std::int64_t dims[2] = {2, 2};
  bytes.append(reinterpret_cast<const char*>(dims), 16);
  const float values[4] = {1.5f, -2.0f, 0.25f, 8.0f};
  bytes.append(reinterpret_cast<const char*>(values), 16);

  const std::string dir = TempDir("v1");
  const std::string path = dir + "/legacy.s4tf";
  WriteFileBytes(path, bytes);
  const auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->entries.size(), 1u);
  EXPECT_EQ(loaded->entries[0].shape, Shape({2, 2}));
  EXPECT_EQ(loaded->entries[0].values,
            (std::vector<float>{1.5f, -2.0f, 0.25f, 8.0f}));
}

TEST(CheckpointCrashTest, UnwritablePathFailsWithStatusNotThrow) {
  const TrainingState state = SampleState(8);
  const Status missing_dir =
      SaveTrainingState(state, "/tmp/s4tf_no_such_dir_xyz/state.s4tf");
  EXPECT_FALSE(missing_dir.ok());

  // A path whose parent is a regular file is equally unwritable.
  const std::string dir = TempDir("unwritable");
  WriteFileBytes(dir + "/blocker", "x");
  const Status under_file =
      SaveTrainingState(state, dir + "/blocker/state.s4tf");
  EXPECT_FALSE(under_file.ok());
}

TEST(CheckpointCrashTest, TrainingStateRoundTripsBitExactly) {
  const std::string dir = TempDir("roundtrip");
  const std::string path = dir + "/state.s4tf";
  const TrainingState state = SampleState(9);
  ASSERT_TRUE(SaveTrainingState(state, path).ok());
  const auto loaded = LoadTrainingState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(StatesBitEqual(*loaded, state));

  // Restoring into fresh objects reproduces the exact training state:
  // both continuations then walk identical trajectories.
  Rng fresh_rng(999);
  LeNet fresh(fresh_rng);
  SGD<LeNet> fresh_sgd(0.1f, 0.9f);
  Rng restored_data_rng(1);
  ASSERT_TRUE(
      RestoreTrainingState(fresh, fresh_sgd, *loaded, &restored_data_rng)
          .ok());
  const TrainingState recaptured = CaptureTrainingState(
      fresh, fresh_sgd, loaded->step, loaded->epoch, &restored_data_rng);
  EXPECT_TRUE(StatesBitEqual(recaptured, state));
}

TEST(CheckpointCrashTest, AdamStateRoundTripsThroughVisitState) {
  Rng rng(21);
  LeNet model(rng);
  Adam<LeNet> adam(1e-3f);
  typename LeNet::TangentVector grads{};
  model.VisitWithTangent(grads, [&](Tensor& p, Tensor& g) {
    g = Tensor::FromVector(p.shape(),
                           std::vector<float>(
                               static_cast<std::size_t>(p.NumElements()),
                               0.5f),
                           p.device());
  });
  adam.Update(model, grads);  // populates step, m, v

  const std::string dir = TempDir("adam");
  const std::string path = dir + "/adam.s4tf";
  const TrainingState state = CaptureTrainingState(model, adam, 1, 0);
  ASSERT_TRUE(SaveTrainingState(state, path).ok());
  const auto loaded = LoadTrainingState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  Rng rng2(22);
  LeNet restored_model(rng2);
  Adam<LeNet> restored_adam(1e-3f);
  ASSERT_TRUE(
      RestoreTrainingState(restored_model, restored_adam, *loaded).ok());

  // Continue both optimizers one more step: bias correction (the step
  // scalar) and both moments must have survived the round trip.
  adam.Update(model, grads);
  restored_adam.Update(restored_model, grads);
  std::vector<std::vector<float>> a, b;
  model.VisitParameters([&](const Tensor& p) { a.push_back(p.ToVector()); });
  restored_model.VisitParameters(
      [&](const Tensor& p) { b.push_back(p.ToVector()); });
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace s4tf::nn
