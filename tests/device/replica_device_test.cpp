#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace s4tf {
namespace {

TEST(ReplicaDeviceTest, NaiveOrdinalZeroIsTheDefaultDevice) {
  const Device dev = Device::ForReplica(DeviceKind::kNaive, 0);
  EXPECT_EQ(dev, NaiveDevice());
  EXPECT_EQ(dev.name(), "cpu:naive");
}

TEST(ReplicaDeviceTest, DistinctOrdinalsAreDistinctDevices) {
  const Device a = Device::ForReplica(DeviceKind::kNaive, 1);
  const Device b = Device::ForReplica(DeviceKind::kNaive, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, NaiveDevice());
  EXPECT_EQ(a.ordinal(), 1);
  EXPECT_EQ(a.kind(), DeviceKind::kNaive);
  EXPECT_EQ(a.name(), "cpu:naive:1");
  // Same ordinal twice -> the same device.
  EXPECT_EQ(a, Device::ForReplica(DeviceKind::kNaive, 1));
}

TEST(ReplicaDeviceTest, CrossReplicaTensorMixingFailsLoudly) {
  const Device a = Device::ForReplica(DeviceKind::kNaive, 1);
  const Device b = Device::ForReplica(DeviceKind::kNaive, 2);
  const Tensor x = Tensor::Full(Shape({2}), 1.0f, a);
  const Tensor y = Tensor::Full(Shape({2}), 2.0f, b);
  EXPECT_THROW(x + y, InternalError);
  // Moving onto a shared device makes the op legal again.
  const Tensor sum = x + y.To(a);
  EXPECT_EQ(sum.ToVector(), (std::vector<float>{3.0f, 3.0f}));
}

TEST(ReplicaDeviceTest, ComposesWithWithDeviceScoping) {
  const Device replica = Device::ForReplica(DeviceKind::kNaive, 3);
  WithDevice(replica, [&] {
    EXPECT_EQ(Device::Current(), replica);
    // Implicitly-placed tensors land on the scoped replica device.
    const Tensor t = Tensor::Full(Shape({1}), 1.0f);
    EXPECT_EQ(t.device(), replica);
    return 0;
  });
  EXPECT_EQ(Device::Current(), NaiveDevice());
}

}  // namespace
}  // namespace s4tf
