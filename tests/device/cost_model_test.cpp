#include "device/cost_model.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "device/sim_accelerator.h"

namespace s4tf {
namespace {

TEST(CostModelTest, RooflineTakesMaxOfComputeAndMemory) {
  AcceleratorSpec spec;
  spec.peak_flops = 1e9;
  spec.memory_bandwidth = 1e9;
  // Compute bound: 1e9 flops over 8 bytes.
  EXPECT_DOUBLE_EQ(KernelSeconds(spec, 1'000'000'000, 8), 1.0);
  // Memory bound: 8 flops over 1e9 bytes.
  EXPECT_DOUBLE_EQ(KernelSeconds(spec, 8, 1'000'000'000), 1.0);
}

TEST(CostModelTest, OpBytesCountsInputsAndOutput) {
  EXPECT_EQ(OpBytes({Shape({10}), Shape({10})}, Shape({10})), 3 * 10 * 4);
  EXPECT_EQ(OpBytes({}, Shape({2, 2})), 16);
}

TEST(CostModelTest, AllReduceScalesWithReplicas) {
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  const std::int64_t bytes = 100 << 20;  // 100 MB of gradients
  EXPECT_DOUBLE_EQ(AllReduceSeconds(spec, bytes, 1), 0.0);
  const double t16 = AllReduceSeconds(spec, bytes, 16);
  const double t32 = AllReduceSeconds(spec, bytes, 32);
  const double t128 = AllReduceSeconds(spec, bytes, 128);
  EXPECT_GT(t16, 0.0);
  EXPECT_GT(t32, t16);
  EXPECT_GT(t128, t32);
  // Ring algorithm: volume term saturates at 2x bytes/bandwidth, so the
  // 128-replica time is far less than 8x the 16-replica time.
  EXPECT_LT(t128, 2.0 * t16);
}

TEST(CostModelTest, OverlappedExposedCommunicationPipelineModel) {
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  const std::int64_t bytes = 8 << 20;
  const std::int64_t bucket = 1 << 20;  // 8 buckets
  // One replica communicates nothing.
  EXPECT_DOUBLE_EQ(
      OverlappedExposedAllReduceSeconds(spec, bytes, bucket, 1, 1.0), 0.0);
  // A single bucket (bucket >= bytes) degenerates to the synchronous
  // time: the whole transfer starts only after the backward pass ends.
  // (NEAR, not DOUBLE_EQ: computing (backward + comm) - backward loses a
  // few low bits of comm when backward dominates.)
  EXPECT_NEAR(OverlappedExposedAllReduceSeconds(spec, bytes, bytes, 16, 1.0),
              AllReduceSeconds(spec, bytes, 16), 1e-12);
  // Zero backward time: nothing to hide behind — exposed time is the
  // per-bucket synchronous sum.
  double sync_sum = 0.0;
  for (std::int64_t off = 0; off < bytes; off += bucket) {
    sync_sum += AllReduceSeconds(
        spec, std::min<std::int64_t>(bucket, bytes - off), 16);
  }
  EXPECT_DOUBLE_EQ(
      OverlappedExposedAllReduceSeconds(spec, bytes, bucket, 16, 0.0),
      sync_sum);
  // With >= 2 buckets and real backward time, early buckets hide behind
  // compute: strictly less exposed than the synchronous schedule, but
  // the last bucket can never be hidden, so it stays positive.
  const double backward = sync_sum;  // comparable magnitudes
  const double exposed =
      OverlappedExposedAllReduceSeconds(spec, bytes, bucket, 16, backward);
  EXPECT_LT(exposed, sync_sum);
  EXPECT_GT(exposed, 0.0);
}

TEST(CostModelTest, AllReduceIsExactlyReduceScatterPlusAllGather) {
  // The collective identity the ZeRO step leans on: the all-reduce's two
  // phases, priced separately, sum back to the whole — exactly, at every
  // scale.
  for (const AcceleratorSpec& spec :
       {AcceleratorSpec::TpuV3Core(), AcceleratorSpec::Gtx1080()}) {
    for (const std::int64_t bytes : {std::int64_t{1} << 10,
                                     std::int64_t{100} << 20}) {
      for (const int replicas : {1, 2, 8, 64, 256}) {
        EXPECT_DOUBLE_EQ(ReduceScatterSeconds(spec, bytes, replicas) +
                             AllGatherSeconds(spec, bytes, replicas),
                         AllReduceSeconds(spec, bytes, replicas))
            << spec.name << " bytes " << bytes << " replicas " << replicas;
      }
    }
  }
}

TEST(CostModelTest, HierarchicalFlatTopologyIsBitIdenticalToRing) {
  // replicas_per_host <= 1 must charge exactly the classic flat ring —
  // this is what keeps every pre-topology bench artifact byte-stable.
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  const std::int64_t bytes = 100 << 20;
  for (const int rph : {0, 1}) {
    const CommTopology topology{rph};
    for (const int replicas : {1, 2, 16, 64, 256}) {
      EXPECT_EQ(HierarchicalAllReduceSeconds(spec, bytes, replicas, topology),
                AllReduceSeconds(spec, bytes, replicas))
          << "rph " << rph << " replicas " << replicas;
    }
  }
}

TEST(CostModelTest, HierarchicalBeatsFlatRingAtScale) {
  // At world 64-256 the flat ring's 2(N-1) latency hops dominate; the
  // intra-host tree + inter-host ring wins, and the gap widens with N.
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  const std::int64_t bytes = 4 << 20;  // LeNet-scale gradients
  const CommTopology topology{/*replicas_per_host=*/8};
  double prev_ratio = 1.0;
  for (const int replicas : {64, 128, 256}) {
    const double flat = AllReduceSeconds(spec, bytes, replicas);
    const double hier =
        HierarchicalAllReduceSeconds(spec, bytes, replicas, topology);
    EXPECT_GT(hier, 0.0);
    EXPECT_LT(hier, flat) << "replicas " << replicas;
    const double ratio = flat / hier;
    EXPECT_GE(ratio, prev_ratio) << "replicas " << replicas;
    prev_ratio = ratio;
  }
  // Everything on one host: no inter-host ring at all, just the local
  // tree twice (AllReduceSeconds over 1 host is 0).
  const CommTopology one_host{/*replicas_per_host=*/8};
  const int rounds = 3;  // ceil(log2(8))
  const double intra = rounds * (spec.intra_host_latency +
                                 static_cast<double>(bytes) /
                                     spec.intra_host_bandwidth);
  EXPECT_DOUBLE_EQ(HierarchicalAllReduceSeconds(spec, bytes, 8, one_host),
                   2.0 * intra);
}

TEST(CostModelTest, HardwareSpecsAreOrdered) {
  // TPU core beats GTX 1080 beats mobile CPU on peak compute.
  EXPECT_GT(AcceleratorSpec::TpuV3Core().peak_flops,
            AcceleratorSpec::Gtx1080().peak_flops);
  EXPECT_GT(AcceleratorSpec::Gtx1080().peak_flops,
            AcceleratorSpec::MobileCpu().peak_flops);
}

TEST(SimAcceleratorTest, ChargesLaunchPlusRoofline) {
  AcceleratorSpec spec;
  spec.peak_flops = 1e9;
  spec.memory_bandwidth = 1e12;
  spec.kernel_launch_overhead = 1e-3;
  SimAccelerator accel(spec);
  accel.ChargeKernel(1'000'000, 8);  // 1ms compute + 1ms launch
  EXPECT_NEAR(accel.elapsed_seconds(), 2e-3, 1e-9);
  EXPECT_EQ(accel.kernels_launched(), 1);
}

TEST(SimAcceleratorTest, FusionSavesLaunchesAndTraffic) {
  AcceleratorSpec spec;
  spec.peak_flops = 1e15;  // compute free
  spec.memory_bandwidth = 1e9;
  spec.kernel_launch_overhead = 1e-3;
  SimAccelerator unfused(spec);
  SimAccelerator fused(spec);
  // Ten chained elementwise ops over 1 MB: unfused pays 10 launches and
  // 2 MB traffic each; fused pays one launch and 2 MB total.
  for (int i = 0; i < 10; ++i) unfused.ChargeKernel(0, 2 << 20);
  fused.ChargeFusedKernel(0, 2 << 20);
  EXPECT_GT(unfused.elapsed_seconds(), 5.0 * fused.elapsed_seconds());
}

TEST(SimAcceleratorTest, ShardedChargesComposeToTheAllReduceCharge) {
  SimAccelerator sharded(AcceleratorSpec::TpuV3Core());
  sharded.ChargeReduceScatter(1 << 20, 8);
  sharded.ChargeAllGather(1 << 20, 8);
  SimAccelerator monolithic(AcceleratorSpec::TpuV3Core());
  monolithic.ChargeAllReduce(1 << 20, 8);
  EXPECT_DOUBLE_EQ(sharded.elapsed_seconds(), monolithic.elapsed_seconds());

  // The topology-aware overload with a flat topology charges the same
  // clock as the classic overload; a hierarchical one charges less at
  // world 64.
  SimAccelerator flat(AcceleratorSpec::TpuV3Core());
  flat.ChargeAllReduce(1 << 20, 64);
  SimAccelerator flat_topo(AcceleratorSpec::TpuV3Core());
  flat_topo.ChargeAllReduce(1 << 20, 64, CommTopology{});
  EXPECT_DOUBLE_EQ(flat_topo.elapsed_seconds(), flat.elapsed_seconds());
  SimAccelerator hier(AcceleratorSpec::TpuV3Core());
  hier.ChargeAllReduce(1 << 20, 64, CommTopology{/*replicas_per_host=*/8});
  EXPECT_LT(hier.elapsed_seconds(), flat.elapsed_seconds());
  EXPECT_GT(hier.elapsed_seconds(), 0.0);
}

TEST(SimAcceleratorTest, ResetClearsClockAndCounters) {
  SimAccelerator accel(AcceleratorSpec::Gtx1080());
  accel.ChargeKernel(1000, 1000);
  accel.ChargeAllReduce(1 << 20, 8);
  accel.ChargeStall(0.5);
  EXPECT_GT(accel.elapsed_seconds(), 0.0);
  accel.Reset();
  EXPECT_EQ(accel.elapsed_seconds(), 0.0);
  EXPECT_EQ(accel.kernels_launched(), 0);
}

}  // namespace
}  // namespace s4tf
