// Tests for the bench-reporting library: BENCH_*.json schema round-trip,
// bit-identical deterministic sections across intra-op thread counts,
// MetricsDelta snapshot semantics, TablePrinter bounds safety, and the
// bench_compare regression gate (library + CLI) against injected
// regressions.
#include "bench/report.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <variant>
#include <vector>

#include "bench/compare.h"
#include "obs/metrics.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/threadpool.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace s4tf::bench {
namespace {

json::JsonValue Parsed(const std::string& text) {
  json::JsonValue value;
  std::string error;
  EXPECT_TRUE(json::ParseJson(text, &value, &error)) << error;
  return value;
}

// A fully-populated report covering every section of the schema.
BenchReport MakeSampleReport() {
  BenchReport report("sample");
  report.SetConfig("world", static_cast<std::int64_t>(4));
  report.SetConfig("backend", std::string("lazy"));
  report.SetConfig("overlap", true);
  report.SetConfig("learning_rate", 0.1);
  BenchRow& row = report.AddRow("step/1");
  row.SetCounter("tensor.kernel.dispatches", 128);
  row.SetCounter("xla.cache.hits", 7);
  row.SetValue("cost.step_seconds", 0.1 + 0.2);  // 0.30000000000000004
  row.SetText("shape_holds", "YES");
  WallStats wall;
  wall.AddSample(10.0);
  wall.AddSample(12.0);
  wall.AddSample(11.0);
  row.SetWall("train_step", wall);
  row.SetNoisy("peak_bytes", 4096.0);
  report.AddRow("verdicts").SetText("overlap_wins", "NO");
  return report;
}

TEST(BenchReportSchemaTest, FullArtifactRoundTripsThroughJsonParser) {
  const BenchReport report = MakeSampleReport();
  const json::JsonValue root = Parsed(report.ToJson());

  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("schema_version").number(), 1.0);
  EXPECT_EQ(root.at("bench").str(), "sample");

  // env carries provenance: a git describe string and the thread count.
  ASSERT_TRUE(root.has("env"));
  EXPECT_FALSE(root.at("env").at("git").str().empty());
  EXPECT_GE(root.at("env").at("threads").number(), 1.0);

  const json::JsonValue& config = root.at("config");
  EXPECT_EQ(config.at("world").number(), 4.0);
  EXPECT_EQ(config.at("backend").str(), "lazy");
  EXPECT_EQ(std::get<bool>(config.at("overlap").value), true);
  EXPECT_EQ(config.at("learning_rate").number(), 0.1);

  const auto& rows = root.at("rows").array();
  ASSERT_EQ(rows.size(), 2u);
  const json::JsonValue& row = rows[0];
  EXPECT_EQ(row.at("label").str(), "step/1");
  EXPECT_EQ(row.at("counters").at("tensor.kernel.dispatches").number(),
            128.0);
  EXPECT_EQ(row.at("counters").at("xla.cache.hits").number(), 7.0);
  // %.17g must round-trip the double bit-for-bit (0.1 + 0.2 != 0.3).
  EXPECT_EQ(row.at("values").at("cost.step_seconds").number(), 0.1 + 0.2);
  EXPECT_EQ(row.at("text").at("shape_holds").str(), "YES");
  const json::JsonValue& wall = row.at("wall_ms").at("train_step");
  EXPECT_DOUBLE_EQ(wall.at("mean").number(), 11.0);
  EXPECT_EQ(wall.at("min").number(), 10.0);
  EXPECT_EQ(wall.at("max").number(), 12.0);
  EXPECT_EQ(wall.at("reps").number(), 3.0);
  EXPECT_EQ(row.at("noisy").at("peak_bytes").number(), 4096.0);
  EXPECT_EQ(rows[1].at("label").str(), "verdicts");
}

TEST(BenchReportSchemaTest, DeterministicJsonOmitsMachineDependentSections) {
  const BenchReport report = MakeSampleReport();
  const json::JsonValue root = Parsed(report.DeterministicJson());
  EXPECT_FALSE(root.has("env"));
  const auto& rows = root.at("rows").array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].has("wall_ms"));
  EXPECT_FALSE(rows[0].has("noisy"));
  // The deterministic sections survive untouched.
  EXPECT_EQ(rows[0].at("counters").at("tensor.kernel.dispatches").number(),
            128.0);
  EXPECT_EQ(rows[0].at("values").at("cost.step_seconds").number(), 0.1 + 0.2);
  EXPECT_EQ(rows[0].at("text").at("shape_holds").str(), "YES");
}

// The core artifact contract: the deterministic serialization of a real
// counter-instrumented workload is byte-identical for any intra-op thread
// count (S4TF_NUM_THREADS equivalent).
std::string DeterministicArtifactForWorkload() {
  Rng rng(11);
  std::vector<float> values(256 * 256);
  rng.FillUniform(values.data(), values.size(), -1.0f, 1.0f);
  const Literal a = Literal::FromVector(Shape({256, 256}), values);

  BenchReport report("thread_invariance");
  report.SetConfig("n", static_cast<std::int64_t>(256));
  MetricsDelta counters;
  const Literal out = EvalOpLiteral(OpKind::kMatMul, {a, a}, {});
  counters.Capture();
  double checksum = 0.0;
  for (float v : out.data) checksum += static_cast<double>(v);
  BenchRow& row = report.AddRow("matmul");
  row.SetCounters(counters);
  row.SetValue("checksum", checksum);
  return report.DeterministicJson();
}

TEST(BenchReportDeterminismTest, ArtifactBitIdenticalAcrossThreadCounts) {
  SetIntraOpThreads(1);
  const std::string one_thread = DeterministicArtifactForWorkload();
  SetIntraOpThreads(2);
  const std::string two_threads = DeterministicArtifactForWorkload();
  SetIntraOpThreads(4);
  const std::string four_threads = DeterministicArtifactForWorkload();
  SetIntraOpThreads(0);  // restore default
  EXPECT_EQ(one_thread, two_threads);
  EXPECT_EQ(one_thread, four_threads);
  // And reruns at the same setting are trivially identical too.
  SetIntraOpThreads(1);
  EXPECT_EQ(one_thread, DeterministicArtifactForWorkload());
  SetIntraOpThreads(0);
}

// --- MetricsDelta snapshot semantics (regression: Counter() used to walk
// the registry on EVERY read and Summary() snapshotted four times,
// skewing dispatch-heavy windows and tearing multi-counter read-outs).

TEST(MetricsDeltaTest, CaptureFreezesTheWindow) {
  obs::Counter* counter = obs::GetCounter("bench.test.capture_freeze");
  MetricsDelta delta;
  counter->Add(5);
  delta.Capture();
  counter->Add(100);  // after the window: must be invisible
  EXPECT_EQ(delta.Counter("bench.test.capture_freeze"), 5);
  EXPECT_EQ(delta.AllDeltas().at("bench.test.capture_freeze"), 5);
}

TEST(MetricsDeltaTest, UncapturedReadsSeeLiveRegistry) {
  obs::Counter* counter = obs::GetCounter("bench.test.live_reads");
  MetricsDelta delta;
  counter->Add(3);
  EXPECT_EQ(delta.Counter("bench.test.live_reads"), 3);
  counter->Add(4);
  EXPECT_EQ(delta.Counter("bench.test.live_reads"), 7);
}

TEST(MetricsDeltaTest, ResetRestartsWindowAndDropsCapture) {
  obs::Counter* counter = obs::GetCounter("bench.test.reset");
  MetricsDelta delta;
  counter->Add(9);
  delta.Capture();
  delta.Reset();
  EXPECT_EQ(delta.Counter("bench.test.reset"), 0);
  counter->Add(2);
  EXPECT_EQ(delta.Counter("bench.test.reset"), 2);
}

TEST(MetricsDeltaTest, AllDeltasSkipsThreadDependentShardCounters) {
  obs::Counter* shards = obs::GetCounter("bench.test.pool.shards");
  obs::Counter* work = obs::GetCounter("bench.test.pool.work");
  MetricsDelta delta;
  shards->Add(4);
  work->Add(1);
  delta.Capture();
  const auto deltas = delta.AllDeltas();
  EXPECT_EQ(deltas.count("bench.test.pool.shards"), 0u);
  EXPECT_EQ(deltas.at("bench.test.pool.work"), 1);
}

// --- TablePrinter bounds safety (regression: PrintRow indexed widths_[i]
// for every cell, reading out of bounds when a row had more cells than
// the configured widths).

TEST(TablePrinterTest, OverflowCellsPrintWithoutOutOfBoundsAccess) {
  TablePrinter table({"A", "B"}, {4, 4});
  table.PrintHeader();
  table.PrintRow({"1", "2"});
  table.PrintRow({"1", "2", "overflow", "more"});  // must not crash
  table.PrintRow({"1"});  // fewer cells than widths is fine too
  table.PrintRule();
}

// --- CompareReports: the CI regression gate. -------------------------------

TEST(BenchCompareTest, IdenticalArtifactsPass) {
  const std::string text = MakeSampleReport().ToJson();
  const CompareResult result =
      CompareReports(Parsed(text), Parsed(text));
  EXPECT_TRUE(result.regressions.empty()) << result.regressions[0];
  EXPECT_TRUE(result.warnings.empty());
  EXPECT_TRUE(result.ok({}));
}

TEST(BenchCompareTest, EnvDifferencesAreIgnored) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  std::string fresh_text = MakeSampleReport().ToJson();
  // Different provenance: another commit, another thread count.
  const std::size_t pos = fresh_text.find("\"env\"");
  ASSERT_NE(pos, std::string::npos);
  fresh_text.replace(fresh_text.find("\"threads\":"), 12, "\"threads\": 9");
  const CompareResult result = CompareReports(baseline, Parsed(fresh_text));
  EXPECT_TRUE(result.regressions.empty());
}

TEST(BenchCompareTest, CounterRegressionFails) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  // Inject: 128 dispatches became 130.
  std::string text = MakeSampleReport().ToJson();
  const std::string needle = "\"tensor.kernel.dispatches\": 128";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"tensor.kernel.dispatches\": 130");
  const CompareResult result = CompareReports(baseline, Parsed(text));
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_NE(result.regressions[0].find("tensor.kernel.dispatches"),
            std::string::npos);
  EXPECT_FALSE(result.ok({}));
}

TEST(BenchCompareTest, CostModelValueRegressionFails) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  std::string text = MakeSampleReport().ToJson();
  const std::string needle = "\"cost.step_seconds\": ";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + needle.size(), "1");  // any exact change must fail
  const CompareResult result = CompareReports(baseline, Parsed(text));
  ASSERT_FALSE(result.regressions.empty());
  EXPECT_NE(result.regressions[0].find("cost.step_seconds"),
            std::string::npos);
}

TEST(BenchCompareTest, MissingAndRelabeledRowsFail) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  BenchReport missing("sample");
  missing.SetConfig("world", static_cast<std::int64_t>(4));
  missing.SetConfig("backend", std::string("lazy"));
  missing.SetConfig("overlap", true);
  missing.SetConfig("learning_rate", 0.1);
  missing.AddRow("step/1").SetCounter("tensor.kernel.dispatches", 128);
  // "verdicts" row dropped entirely.
  EXPECT_FALSE(
      CompareReports(baseline, Parsed(missing.ToJson())).regressions.empty());

  std::string relabeled = MakeSampleReport().ToJson();
  const std::size_t pos = relabeled.find("\"step/1\"");
  ASSERT_NE(pos, std::string::npos);
  relabeled.replace(pos, 8, "\"step/9\"");
  EXPECT_FALSE(
      CompareReports(baseline, Parsed(relabeled)).regressions.empty());
}

TEST(BenchCompareTest, BenchNameAndSchemaVersionMustMatch) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  std::string renamed = MakeSampleReport().ToJson();
  const std::size_t pos = renamed.find("\"bench\": \"sample\"");
  ASSERT_NE(pos, std::string::npos);
  renamed.replace(pos, 17, "\"bench\": \"other\"");
  EXPECT_FALSE(CompareReports(baseline, Parsed(renamed)).regressions.empty());
}

TEST(BenchCompareTest, WallClockDriftOnlyWarns) {
  const json::JsonValue baseline = Parsed(MakeSampleReport().ToJson());
  BenchReport fresh = MakeSampleReport();
  std::string text = fresh.ToJson();
  // 11ms mean became 110ms: way past the 50% noise bound.
  const std::string needle = "\"mean\": 11.000";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"mean\": 110.00");
  const CompareResult result = CompareReports(baseline, Parsed(text));
  EXPECT_TRUE(result.regressions.empty());
  ASSERT_FALSE(result.warnings.empty());
  EXPECT_NE(result.warnings[0].find("train_step"), std::string::npos);
  EXPECT_TRUE(result.ok({}));  // warn-only by default
  CompareOptions strict;
  strict.fail_on_wall = true;
  EXPECT_FALSE(result.ok(strict));  // --strict-wall escalates
}

TEST(BenchCompareTest, SubNoiseFloorWallDriftIsIgnored) {
  BenchReport base("sample");
  WallStats tiny;
  tiny.AddSample(0.01);
  base.AddRow("r").SetWall("blip", tiny);
  const json::JsonValue baseline = Parsed(base.ToJson());
  BenchReport fresh("sample");
  WallStats still_tiny;
  still_tiny.AddSample(0.04);  // 4x drift but far below wall_floor_ms
  fresh.AddRow("r").SetWall("blip", still_tiny);
  const CompareResult result = CompareReports(baseline, Parsed(fresh.ToJson()));
  EXPECT_TRUE(result.warnings.empty());
}

// --- Artifact I/O. ---------------------------------------------------------

TEST(BenchReportWriteTest, WriteToUnwritablePathReturnsFalse) {
  ::testing::internal::CaptureStderr();
  const bool ok = MakeSampleReport().WriteTo(
      ::testing::TempDir() + "s4tf_bench_no_such_dir/BENCH_sample.json");
  const std::string stderr_text = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(ok);
  EXPECT_NE(stderr_text.find("cannot open"), std::string::npos);
}

TEST(BenchReportWriteTest, WriteHonorsOutDirEnvAndEmitsValidJson) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("S4TF_BENCH_OUT_DIR", dir.c_str(), 1), 0);
  const bool ok = MakeSampleReport().Write();
  unsetenv("S4TF_BENCH_OUT_DIR");
  ASSERT_TRUE(ok);
  const std::string path = dir + (dir.back() == '/' ? "" : "/") +
                           "BENCH_sample.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const json::JsonValue root = Parsed(text);
  EXPECT_EQ(root.at("bench").str(), "sample");
  std::remove(path.c_str());
}

// --- The bench_compare CLI end-to-end: an injected counter regression
// must flip the exit code (the CI gate's contract).

TEST(BenchCompareCliTest, InjectedCounterRegressionFlipsExitCode) {
#ifndef S4TF_BENCH_COMPARE_BINARY
  GTEST_SKIP() << "bench_compare binary path not configured";
#else
  const std::string base_dir = ::testing::TempDir() + "s4tf_cmp_base";
  const std::string fresh_dir = ::testing::TempDir() + "s4tf_cmp_fresh";
  ASSERT_EQ(::mkdir(base_dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  ASSERT_EQ(::mkdir(fresh_dir.c_str(), 0755) == 0 || errno == EEXIST, true);

  const BenchReport report = MakeSampleReport();
  ASSERT_TRUE(report.WriteTo(base_dir + "/BENCH_sample.json"));
  ASSERT_TRUE(report.WriteTo(fresh_dir + "/BENCH_sample.json"));

  const std::string command = std::string(S4TF_BENCH_COMPARE_BINARY) + " " +
                              base_dir + " " + fresh_dir +
                              " > /dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0) << "identical artifacts must pass";

  // Inject the regression into the fresh copy.
  std::string text = report.ToJson();
  const std::string needle = "\"tensor.kernel.dispatches\": 128";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"tensor.kernel.dispatches\": 131");
  std::ofstream(fresh_dir + "/BENCH_sample.json") << text;
  EXPECT_NE(std::system(command.c_str()), 0)
      << "injected counter regression must fail the gate";

  std::remove((base_dir + "/BENCH_sample.json").c_str());
  std::remove((fresh_dir + "/BENCH_sample.json").c_str());
#endif
}

}  // namespace
}  // namespace s4tf::bench
