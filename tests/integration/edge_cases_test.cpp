// Edge-case and failure-injection coverage across the stack.
#include <atomic>
#include <cmath>
#include <gtest/gtest.h>
#include <thread>

#include "ad/operators.h"
#include "eager/eager_backend.h"
#include "lazy/lazy_tensor.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

// --- Degenerate shapes.

TEST(EdgeCaseTest, ZeroElementTensors) {
  const Tensor empty = Tensor::Zeros(Shape({0, 3}));
  EXPECT_EQ(empty.NumElements(), 0);
  const Tensor doubled = empty * 2.0f;
  EXPECT_EQ(doubled.shape(), Shape({0, 3}));
  EXPECT_TRUE(doubled.ToVector().empty());
  // Reducing an empty axis still works (sum of nothing is zero).
  EXPECT_EQ(ReduceSum(empty).ScalarValue(), 0.0f);
}

TEST(EdgeCaseTest, SingleElementEverything) {
  const Tensor one = Tensor::Full(Shape({1, 1}), 3.0f);
  EXPECT_EQ(MatMul(one, one).ScalarValue(), 9.0f);
  EXPECT_EQ(Softmax(one).ToVector(), (std::vector<float>{1.0f}));
  EXPECT_EQ(Transposed(one).shape(), Shape({1, 1}));
}

TEST(EdgeCaseTest, ScalarBroadcastEverywhere) {
  const Tensor scalar = Tensor(2.0f);
  const Tensor mat = Tensor::Ones(Shape({3, 4}));
  EXPECT_EQ((scalar * mat).shape(), Shape({3, 4}));
  EXPECT_EQ((mat + scalar).At({2, 3}), 3.0f);
  EXPECT_EQ(Maximum(scalar, mat).At({0, 0}), 2.0f);
}

TEST(EdgeCaseTest, DeepReshapeChainSharesOneBuffer) {
  vs::CowStatsScope stats;
  Tensor t = Tensor::Ones(Shape({24}));
  const auto base_allocs = stats.delta().buffer_allocations;
  t = Reshape(t, Shape({2, 12}));
  t = Reshape(t, Shape({4, 6}));
  t = Reshape(t, Shape({2, 3, 4}));
  t = Reshape(t, Shape({24}));
  // Reshape is O(1): no new data buffers beyond the original.
  EXPECT_EQ(stats.delta().buffer_allocations, base_allocs);
  EXPECT_EQ(t.ToVector(), std::vector<float>(24, 1.0f));
}

// --- Gradient edge cases.

TEST(EdgeCaseTest, GradientThroughZeroElementBranchIsZero) {
  const Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  const auto [value, grad] = ad::ValueWithGradient(x, [](const Tensor& t) {
    const Tensor empty = Slice(t, {0}, {0});  // zero-length slice
    return ReduceSum(Square(t)) + ReduceSum(empty);
  });
  EXPECT_EQ(value.ScalarValue(), 30.0f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{2, 4, 6, 8}));
}

TEST(EdgeCaseTest, ReluGradientAtExactlyZero) {
  // Subgradient convention: d/dx relu(0) == 0 (Greater(0,0) == 0).
  const Tensor x = Tensor::FromVector(Shape({3}), {-1.0f, 0.0f, 1.0f});
  const Tensor grad =
      ad::GradientAt(x, [](const Tensor& t) { return ReduceSum(Relu(t)); });
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{0, 0, 1}));
}

TEST(EdgeCaseTest, NestedGradientScopesAreIndependent) {
  // A gradient computed inside another gradient's function sees its own
  // tape only (inner RecorderScope shadows the outer one).
  const Tensor x = Tensor::FromVector(Shape({2}), {2.0f, 3.0f});
  const auto [value, grad] = ad::ValueWithGradient(x, [](const Tensor& t) {
    // Inner, independent gradient of y -> sum(y^2) at a constant point.
    const Tensor inner_point = Tensor::FromVector(Shape({2}), {1.0f, 1.0f},
                                                  t.device());
    const Tensor inner_grad = ad::GradientAt(
        inner_point, [](const Tensor& y) { return ReduceSum(Square(y)); });
    // Use the inner gradient (a constant w.r.t. t) in the outer loss.
    return ReduceSum(t * inner_grad);  // = sum(t * 2)
  });
  EXPECT_EQ(value.ScalarValue(), 10.0f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{2, 2}));
}

TEST(EdgeCaseTest, WatchingTheSameTensorTwiceIsHarmless) {
  ad::GradientTape tape;
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  tape.Watch(x);
  tape.Watch(x);  // re-watch: new node, same semantics
  Tensor loss;
  {
    RecorderScope scope(&tape);
    loss = ReduceSum(Square(x));
  }
  const auto grads = tape.ComputeGradients(loss);
  EXPECT_EQ(tape.GradientFor(grads, x).ToVector(),
            (std::vector<float>{2, 4}));
}

// --- Lazy device edge cases.

TEST(EdgeCaseTest, DiamondTraceDeduplicatesViaCse) {
  // The same subexpression reached through two paths compiles once.
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::Ones(Shape({64}), lazy);
  const Tensor shared = Exp(x * 0.5f);
  const Tensor left = shared + 1.0f;
  const Tensor right = shared * 2.0f;
  const Tensor result = left + right;
  EXPECT_NEAR(result.At({0}),
              (std::exp(0.5f) + 1.0f) + 2.0f * std::exp(0.5f), 1e-5f);
}

TEST(EdgeCaseTest, ObservingTwiceComputesOnce) {
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor y = Exp(Tensor::Ones(Shape({8}), lazy));
  (void)y.ToVector();
  const auto kernels = backend.kernels_launched();
  (void)y.ToVector();  // cached literal, no recompute
  (void)y.At({3});
  EXPECT_EQ(backend.kernels_launched(), kernels);
}

TEST(EdgeCaseTest, MixedMaterializedAndPendingTraces) {
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor a = Tensor::Ones(Shape({4}), lazy) * 2.0f;
  (void)a.ToVector();  // a is now a cached leaf
  const Tensor b = a + 1.0f;
  const Tensor c = b * a;  // mixes cached leaf with pending nodes
  EXPECT_EQ(c.ToVector(), std::vector<float>(4, 6.0f));
}

TEST(EdgeCaseTest, BarrierWithNothingPendingIsANoOp) {
  LazyBackend backend;
  LazyTensorBarrier(backend.device());
  EXPECT_EQ(backend.kernels_launched(), 0);
  EXPECT_EQ(backend.cache_misses(), 0);
}

TEST(EdgeCaseTest, HugeUnrolledTraceStillCompiles) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  for (int i = 0; i < 2000; ++i) x = x * 1.0005f;
  EXPECT_NEAR(x.At({0}), std::pow(1.0005f, 2000.0f), 0.05f);
  EXPECT_EQ(backend.ops_traced(), 2000);
}

// --- Eager device edge cases.

TEST(EdgeCaseTest, EagerResultsConsumedFromAnotherThread) {
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Full(Shape({16}), 1.0f, eager);
  for (int i = 0; i < 32; ++i) x = x + 0.5f;
  std::atomic<float> observed{0.0f};
  std::thread consumer([&] { observed = x.At({7}); });
  consumer.join();
  EXPECT_FLOAT_EQ(observed.load(), 17.0f);
}

TEST(EdgeCaseTest, ManySmallEagerProgramsInterleaved) {
  EagerBackend backend;
  const Device eager = backend.device();
  float total = 0.0f;
  for (int round = 0; round < 20; ++round) {
    Tensor a = Tensor::Full(Shape({4}), static_cast<float>(round), eager);
    Tensor b = Relu(a - 5.0f);
    total += ReduceSum(b).ScalarValue();  // observe mid-stream every round
  }
  // sum over rounds of 4*max(round-5, 0) = 4 * (1+2+...+14).
  EXPECT_FLOAT_EQ(total, 4.0f * 105.0f);
}

// --- Recorder hook contract.

TEST(EdgeCaseTest, NoRecordScopeSuppressesNestedRecording) {
  ad::GradientTape tape;
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  tape.Watch(x);
  {
    RecorderScope scope(&tape);
    {
      NoRecordScope off;
      Tensor hidden = Square(x);  // not recorded
      (void)hidden;
      EXPECT_EQ(GetRecorder(), nullptr);
    }
    EXPECT_EQ(GetRecorder(), &tape);
  }
  EXPECT_EQ(tape.num_nodes(), 1);  // only the watch node
}

}  // namespace
}  // namespace s4tf
