#include "nn/replica_group.h"

#include <cmath>
#include <gtest/gtest.h>

#include "nn/data_parallel.h"
#include "nn/models/lenet.h"
#include "nn/training.h"

namespace s4tf::nn {
namespace {

TEST(DataParallelTest, EquivalentToLargeBatchStep) {
  // The Table 1 claim's mathematical core: K synchronous replicas on
  // shards of size n == one step at batch K*n (identical weights after).
  const auto dataset = SyntheticImageDataset::Mnist(32, 21);
  const LabeledBatch big = dataset.Batch(0, 16, NaiveDevice());

  Rng rng1(3);
  LeNet single(rng1);
  SGD<LeNet> sgd_single(0.1f);
  const float single_loss = TrainStep(single, sgd_single, [&](const LeNet& m) {
    return SoftmaxCrossEntropy(m(big.images), big.one_hot);
  });

  Rng rng2(3);
  LeNet parallel(rng2);
  SGD<LeNet> sgd_parallel(0.1f);
  ReplicaGroup group(4);
  const float parallel_loss =
      group.TrainStep(parallel, sgd_parallel, ShardBatch(big, 4));

  EXPECT_NEAR(single_loss, parallel_loss, 1e-5f);
  // Weights agree parameter by parameter.
  std::vector<std::vector<float>> expected;
  single.VisitParameters(
      [&](const Tensor& p) { expected.push_back(p.ToVector()); });
  std::size_t index = 0;
  parallel.VisitParameters([&](const Tensor& p) {
    const auto got = p.ToVector();
    const auto& want = expected[index++];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 2e-5f * std::max(1.0f, std::fabs(want[i])));
    }
  });
}

TEST(DataParallelTest, ShardCountDoesNotChangeTrainingTrajectory) {
  const auto dataset = SyntheticImageDataset::Mnist(64, 22);
  auto train = [&](int shards) {
    Rng rng(9);
    LeNet model(rng);
    SGD<LeNet> sgd(0.05f);
    ReplicaGroup group(shards);
    float loss = 0.0f;
    for (int step = 0; step < 3; ++step) {
      const LabeledBatch big = dataset.Batch(step, 16, NaiveDevice());
      loss = group.TrainStep(model, sgd, ShardBatch(big, shards));
    }
    return loss;
  };
  const float with_2 = train(2);
  const float with_8 = train(8);
  EXPECT_NEAR(with_2, with_8, 1e-4f);
}

TEST(DataParallelTest, SingleShardDegeneratesToTrainStep) {
  const auto dataset = SyntheticImageDataset::Mnist(16, 23);
  const LabeledBatch batch = dataset.Batch(0, 8, NaiveDevice());
  Rng rng1(4);
  LeNet a(rng1);
  SGD<LeNet> sgd_a(0.1f);
  const float la = TrainStep(a, sgd_a, [&](const LeNet& m) {
    return SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
  });
  Rng rng2(4);
  LeNet b(rng2);
  SGD<LeNet> sgd_b(0.1f);
  ReplicaGroup group(1);
  const float lb = group.TrainStep(b, sgd_b, {batch});
  EXPECT_FLOAT_EQ(la, lb);
}

TEST(DataParallelTest, SequentialReferenceGroupTrains) {
  // Migrated off the [[deprecated]] DataParallelTrainStep wrapper (the
  // one remaining — deliberately suppressed — wrapper test lives in
  // tests/dist/replica_group_test.cpp): the sequential-reference
  // ReplicaGroup is the wrapper's implementation, so this pins the same
  // behaviour through the supported API.
  const auto dataset = SyntheticImageDataset::Mnist(16, 23);
  const LabeledBatch batch = dataset.Batch(0, 8, NaiveDevice());
  Rng rng(4);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f);
  ReplicaGroupOptions options;
  options.sequential = true;
  ReplicaGroup group(2, options);
  const float loss = group.TrainStep(model, sgd, ShardBatch(batch, 2));
  EXPECT_TRUE(std::isfinite(loss));
}

}  // namespace
}  // namespace s4tf::nn
