// Cross-backend equivalence: the platform's central illusion (§3.3).
//
// "As long as the user's program does not observe the contents of a
// Tensor, the code cannot distinguish when a Tensor operation is actually
// executed." Operationally: the SAME program must produce the SAME numbers
// on the naive, eager, and lazy devices, whether the lazy JIT fuses or
// not, and the gradient tape must agree everywhere.
//
// These tests generate random tensor programs (a device-independent op
// plan drawn from a seeded PRNG), execute them on every backend, and
// compare results — hundreds of distinct programs across the parameterized
// sweep.
#include <cmath>
#include <gtest/gtest.h>

#include "ad/operators.h"
#include "eager/eager_backend.h"
#include "lazy/lazy_tensor.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

// A device-independent plan: input literals plus a sequence of op
// applications referring to earlier values by index.
struct PlanStep {
  OpKind kind;
  OpAttrs attrs;
  std::vector<int> operands;  // indices into the value list
};

struct Plan {
  std::vector<Literal> inputs;
  std::vector<PlanStep> steps;
};

// Shapes used by the generator, grouped so binary ops can pick compatible
// operands. Positive-domain hazards (log, sqrt of negatives) are excluded
// from the op pool.
Plan GeneratePlan(std::uint64_t seed, int num_steps) {
  Rng rng(seed);
  Plan plan;
  const Shape shapes[] = {Shape({}), Shape({4}), Shape({2, 3}),
                          Shape({3, 4})};
  // Track the shape of each value (inputs + step results).
  std::vector<Shape> value_shapes;

  const auto add_input = [&](const Shape& shape) {
    std::vector<float> values(static_cast<std::size_t>(shape.NumElements()));
    rng.FillUniform(values.data(), values.size(), -1.0f, 1.0f);
    plan.inputs.push_back(Literal::FromVector(shape, std::move(values)));
    value_shapes.push_back(shape);
  };
  for (const Shape& shape : shapes) add_input(shape);
  add_input(Shape({2, 3}));  // a second [2,3] so binaries have pairs
  add_input(Shape({4}));

  const auto pick_value = [&]() {
    return static_cast<int>(rng.NextBelow(value_shapes.size()));
  };
  const auto pick_with_shape = [&](const Shape& shape) -> int {
    // Uniform over candidates; falls back to -1 when none.
    std::vector<int> candidates;
    for (std::size_t i = 0; i < value_shapes.size(); ++i) {
      if (value_shapes[i] == shape) candidates.push_back(static_cast<int>(i));
    }
    if (candidates.empty()) return -1;
    return candidates[rng.NextBelow(candidates.size())];
  };

  const OpKind unary_pool[] = {OpKind::kNeg,     OpKind::kTanh,
                               OpKind::kRelu,    OpKind::kSigmoid,
                               OpKind::kAbs,     OpKind::kSquare,
                               OpKind::kSoftmax, OpKind::kLogSoftmax};
  const OpKind binary_pool[] = {OpKind::kAdd, OpKind::kSub, OpKind::kMul,
                                OpKind::kMaximum, OpKind::kMinimum};

  for (int s = 0; s < num_steps; ++s) {
    PlanStep step;
    const std::uint64_t category = rng.NextBelow(10);
    if (category < 3) {  // unary
      step.kind = unary_pool[rng.NextBelow(std::size(unary_pool))];
      step.operands = {pick_value()};
      if ((step.kind == OpKind::kSoftmax ||
           step.kind == OpKind::kLogSoftmax) &&
          value_shapes[static_cast<std::size_t>(step.operands[0])].rank() ==
              0) {
        step.kind = OpKind::kTanh;  // softmax needs rank >= 1
      }
    } else if (category < 6) {  // binary with equal shapes or vs scalar
      step.kind = binary_pool[rng.NextBelow(std::size(binary_pool))];
      const int a = pick_value();
      const int b = rng.NextBelow(2) == 0
                        ? pick_with_shape(
                              value_shapes[static_cast<std::size_t>(a)])
                        : pick_with_shape(Shape({}));
      step.operands = {a, b < 0 ? a : b};
    } else if (category < 8) {  // scalar-attribute op
      step.kind = rng.NextBelow(2) == 0 ? OpKind::kMulScalar
                                        : OpKind::kAddScalar;
      step.attrs.scalar = static_cast<float>(rng.Uniform(-1.5, 1.5));
      step.operands = {pick_value()};
    } else if (category == 8) {  // matmul [2,3] x [3,4]
      const int a = pick_with_shape(Shape({2, 3}));
      const int b = pick_with_shape(Shape({3, 4}));
      if (a < 0 || b < 0) {
        step.kind = OpKind::kTanh;
        step.operands = {pick_value()};
      } else {
        step.kind = OpKind::kMatMul;
        step.operands = {a, b};
      }
    } else {  // reduction
      step.kind = rng.NextBelow(2) == 0 ? OpKind::kReduceSum
                                        : OpKind::kReduceMean;
      step.operands = {pick_value()};
    }
    // Infer and record the result shape.
    std::vector<Shape> operand_shapes;
    for (int op : step.operands) {
      operand_shapes.push_back(value_shapes[static_cast<std::size_t>(op)]);
    }
    value_shapes.push_back(InferShape(step.kind, operand_shapes, step.attrs));
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

// Executes the plan on `device`, reducing every produced value into one
// scalar "program checksum" (tanh-compressed so magnitudes stay finite).
Tensor ExecutePlan(const Plan& plan, const Device& device) {
  std::vector<Tensor> values;
  values.reserve(plan.inputs.size() + plan.steps.size());
  for (const Literal& input : plan.inputs) {
    values.push_back(Tensor::FromLiteral(input, device));
  }
  Tensor checksum = Tensor::Zeros(Shape({}), device);
  for (const PlanStep& step : plan.steps) {
    std::vector<Tensor> operands;
    for (int op : step.operands) {
      operands.push_back(values[static_cast<std::size_t>(op)]);
    }
    Tensor result = ApplyOp(step.kind, std::move(operands), step.attrs);
    checksum = Tanh(checksum + ReduceMean(result));
    values.push_back(std::move(result));
  }
  return checksum;
}

class CrossBackendTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossBackendTest, AllBackendsComputeIdenticalResults) {
  const Plan plan = GeneratePlan(GetParam(), /*num_steps=*/40);

  const float naive = ExecutePlan(plan, NaiveDevice()).ScalarValue();

  EagerBackend eager;
  const float eager_result =
      ExecutePlan(plan, eager.device()).ScalarValue();

  LazyBackend lazy;
  const float lazy_result = ExecutePlan(plan, lazy.device()).ScalarValue();

  LazyOptions unfused_options;
  unfused_options.compile.enable_fusion = false;
  unfused_options.compile.enable_algebraic_simplify = false;
  unfused_options.compile.enable_cse = false;
  LazyBackend unfused(unfused_options);
  const float unfused_result =
      ExecutePlan(plan, unfused.device()).ScalarValue();

  EXPECT_FLOAT_EQ(naive, eager_result);
  EXPECT_FLOAT_EQ(naive, lazy_result);
  EXPECT_FLOAT_EQ(naive, unfused_result);
  EXPECT_TRUE(std::isfinite(naive));
}

TEST_P(CrossBackendTest, GradientsAgreeAcrossBackends) {
  const Plan plan = GeneratePlan(GetParam() ^ 0xabcdef, /*num_steps=*/25);

  const auto grad_on = [&](const Device& device) {
    // Differentiate the checksum w.r.t. the first [2,3] input.
    Tensor x = Tensor::FromLiteral(plan.inputs[2], device);
    const auto [value, grad] =
        ad::ValueWithGradient(x, [&](const Tensor& watched) {
          Plan patched = plan;
          std::vector<Tensor> values;
          for (std::size_t i = 0; i < patched.inputs.size(); ++i) {
            values.push_back(i == 2 ? watched
                                    : Tensor::FromLiteral(patched.inputs[i],
                                                          device));
          }
          Tensor checksum = Tensor::Zeros(Shape({}), device);
          for (const PlanStep& step : patched.steps) {
            std::vector<Tensor> operands;
            for (int op : step.operands) {
              operands.push_back(values[static_cast<std::size_t>(op)]);
            }
            Tensor result = ApplyOp(step.kind, std::move(operands),
                                    step.attrs);
            checksum = Tanh(checksum + ReduceMean(result));
            values.push_back(std::move(result));
          }
          return checksum;
        });
    (void)value;
    return grad.ToVector();
  };

  const auto naive_grad = grad_on(NaiveDevice());
  LazyBackend lazy;
  const auto lazy_grad = grad_on(lazy.device());
  ASSERT_EQ(naive_grad.size(), lazy_grad.size());
  for (std::size_t i = 0; i < naive_grad.size(); ++i) {
    EXPECT_NEAR(naive_grad[i], lazy_grad[i],
                1e-5f * std::max(1.0f, std::fabs(naive_grad[i])))
        << "grad[" << i << "]";
  }
}

TEST_P(CrossBackendTest, RetracedPlanHitsProgramCache) {
  const Plan plan = GeneratePlan(GetParam() ^ 0x55aa, /*num_steps=*/20);
  LazyBackend lazy;
  const float first = ExecutePlan(plan, lazy.device()).ScalarValue();
  const float second = ExecutePlan(plan, lazy.device()).ScalarValue();
  EXPECT_FLOAT_EQ(first, second);
  EXPECT_EQ(lazy.cache_misses(), 1);
  EXPECT_GE(lazy.cache_hits(), 1);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, CrossBackendTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u, 13u, 14u, 15u,
                                           16u));

}  // namespace
}  // namespace s4tf
