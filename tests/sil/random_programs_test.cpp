// Property sweep: randomly generated mini-SIL programs (straight line,
// branches, loops, calls) must satisfy, for every wrt-argument:
//   * the synthesized VJP's value == the interpreter's value,
//   * the VJP gradient == central finite differences,
//   * the JVP directional derivative == <gradient, direction>,
//   * the optimizer pipeline preserves both value and gradient.
#include <cmath>
#include <gtest/gtest.h>

#include "sil/autodiff.h"
#include "sil/interpreter.h"
#include "sil/passes.h"
#include "support/rng.h"

namespace s4tf::sil {
namespace {

// Generates a random single-block differentiable function of `num_args`
// arguments with `num_insts` instructions, using smooth total-domain ops.
Function GenerateStraightLine(std::uint64_t seed, int num_args,
                              int num_insts) {
  Rng rng(seed);
  FunctionBuilder b("random", num_args);
  std::vector<ValueId> values;
  for (int i = 0; i < num_args; ++i) values.push_back(b.Arg(i));
  values.push_back(b.Const(rng.Uniform(-1.5, 1.5)));

  const auto pick = [&] {
    return values[rng.NextBelow(values.size())];
  };
  for (int i = 0; i < num_insts; ++i) {
    const std::uint64_t which = rng.NextBelow(8);
    ValueId v;
    switch (which) {
      case 0: v = b.Emit(InstKind::kAdd, {pick(), pick()}); break;
      case 1: v = b.Emit(InstKind::kSub, {pick(), pick()}); break;
      case 2: v = b.Emit(InstKind::kMul, {pick(), pick()}); break;
      case 3: v = b.Emit(InstKind::kSin, {pick()}); break;
      case 4: v = b.Emit(InstKind::kCos, {pick()}); break;
      case 5: v = b.Emit(InstKind::kTanh, {pick()}); break;
      case 6: v = b.Emit(InstKind::kNeg, {pick()}); break;
      default:
        // tanh keeps magnitudes bounded so exp stays finite.
        v = b.Emit(InstKind::kExp, {b.Emit(InstKind::kTanh, {pick()})});
        break;
    }
    values.push_back(v);
  }
  b.Return(values.back());
  return std::move(b).Build();
}

// Wraps the straight-line body in a data-dependent branch and a short
// loop, exercising the control-flow records.
Module GenerateStructured(std::uint64_t seed) {
  Module m;
  m.AddFunction(GenerateStraightLine(seed, 2, 10));

  FunctionBuilder b("structured", 2);
  const ValueId x = b.Arg(0);
  const ValueId y = b.Arg(1);
  // if (x > y) h = random(x, y) else h = random(y, x)
  const int join = b.CreateBlock(1);
  const ValueId gt = b.Emit(InstKind::kCmpGT, {x, y});
  const int then_block = b.CreateBlock(0);
  const int else_block = b.CreateBlock(0);
  b.CondBranch(gt, then_block, {}, else_block, {});
  b.SetInsertionPoint(then_block);
  b.Branch(join, {b.Call("random", {x, y})});
  b.SetInsertionPoint(else_block);
  b.Branch(join, {b.Call("random", {y, x})});
  // Loop: three rounds of h = tanh(h + x).
  b.SetInsertionPoint(join);
  const ValueId h = b.BlockArg(join, 0);
  const int header = b.CreateBlock(2);
  const int body = b.CreateBlock(2);
  const int exit = b.CreateBlock(1);
  const ValueId zero = b.Const(0.0);
  b.Branch(header, {h, zero});
  b.SetInsertionPoint(header);
  const ValueId acc = b.BlockArg(header, 0);
  const ValueId i = b.BlockArg(header, 1);
  const ValueId limit = b.Const(3.0);
  b.CondBranch(b.Emit(InstKind::kCmpLT, {i, limit}), body, {acc, i}, exit,
               {acc});
  b.SetInsertionPoint(body);
  const ValueId acc2 = b.BlockArg(body, 0);
  const ValueId i2 = b.BlockArg(body, 1);
  const ValueId one = b.Const(1.0);
  const ValueId next =
      b.Emit(InstKind::kTanh, {b.Emit(InstKind::kAdd, {acc2, x})});
  b.Branch(header, {next, b.Emit(InstKind::kAdd, {i2, one})});
  b.SetInsertionPoint(exit);
  b.Return(b.BlockArg(exit, 0));
  m.AddFunction(std::move(b).Build());
  return m;
}

double Numeric(const Module& m, const std::string& fn,
               std::vector<double> args, std::size_t index) {
  const double eps = 1e-6;
  auto plus = args, minus = args;
  plus[index] += eps;
  minus[index] -= eps;
  return (Interpret(m, fn, plus).value() - Interpret(m, fn, minus).value()) /
         (2 * eps);
}

class RandomSilTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSilTest, StraightLineGradientsMatchFiniteDifferences) {
  Module m;
  m.AddFunction(GenerateStraightLine(GetParam(), 3, 20));
  auto vjp = SynthesizeVJP(m, "random").value();
  Rng rng(GetParam() ^ 0xf00d);
  for (int trial = 0; trial < 3; ++trial) {
    const std::vector<double> at = {rng.Uniform(-1.2, 1.2),
                                    rng.Uniform(-1.2, 1.2),
                                    rng.Uniform(-1.2, 1.2)};
    const auto run = vjp.Run(at).value();
    EXPECT_NEAR(run.value, Interpret(m, "random", at).value(), 1e-12);
    const auto grads = run.pullback(1.0);
    for (std::size_t i = 0; i < at.size(); ++i) {
      const double numeric = Numeric(m, "random", at, i);
      EXPECT_NEAR(grads[i], numeric,
                  1e-4 * std::max(1.0, std::fabs(numeric)))
          << "arg " << i;
    }
  }
}

TEST_P(RandomSilTest, StructuredProgramsWithBranchesLoopsAndCalls) {
  const Module m = GenerateStructured(GetParam());
  auto vjp = SynthesizeVJP(m, "structured").value();
  auto jvp = SynthesizeJVP(m, "structured").value();
  Rng rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 3; ++trial) {
    // Keep away from the branch boundary x == y.
    double x = rng.Uniform(-1.0, 1.0);
    double y = rng.Uniform(-1.0, 1.0);
    if (std::fabs(x - y) < 0.05) y += 0.2;
    const std::vector<double> at = {x, y};

    const auto run = vjp.Run(at).value();
    const auto grads = run.pullback(1.0);
    for (std::size_t i = 0; i < 2; ++i) {
      const double numeric = Numeric(m, "structured", at, i);
      EXPECT_NEAR(grads[i], numeric,
                  1e-4 * std::max(1.0, std::fabs(numeric)))
          << "arg " << i;
    }
    // Forward/reverse consistency.
    const std::vector<double> dir = {0.3, -0.9};
    const auto forward = jvp.Run(at, dir).value();
    EXPECT_NEAR(forward.tangent, grads[0] * dir[0] + grads[1] * dir[1],
                1e-9);
  }
}

TEST_P(RandomSilTest, OptimizationPreservesValueAndGradient) {
  Module m;
  m.AddFunction(GenerateStraightLine(GetParam() ^ 0x1234, 2, 24));
  const std::vector<double> at = {0.7, -0.4};
  const double value = Interpret(m, "random", at).value();
  const auto grads = SilGradient(m, "random", at).value();

  Function& fn = *m.FindFunction("random");
  OptimizeFunction(fn);
  EXPECT_TRUE(VerifyFunction(fn).ok());
  EXPECT_NEAR(Interpret(m, "random", at).value(), value, 1e-12);
  const auto grads_opt = SilGradient(m, "random", at).value();
  EXPECT_NEAR(grads_opt[0], grads[0], 1e-12);
  EXPECT_NEAR(grads_opt[1], grads[1], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSilTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 110u));

}  // namespace
}  // namespace s4tf::sil
