#include "sil/ir.h"

#include <gtest/gtest.h>

namespace s4tf::sil {
namespace {

Function BuildSquarePlusOne() {
  FunctionBuilder b("square_plus_one", 1);
  const ValueId x = b.Arg(0);
  const ValueId sq = b.Emit(InstKind::kMul, {x, x});
  const ValueId one = b.Const(1.0);
  b.Return(b.Emit(InstKind::kAdd, {sq, one}));
  return std::move(b).Build();
}

TEST(IrBuilderTest, BuildsVerifiedFunction) {
  const Function fn = BuildSquarePlusOne();
  EXPECT_EQ(fn.num_args, 1);
  EXPECT_EQ(fn.blocks.size(), 1u);
  EXPECT_EQ(fn.InstructionCount(), 3);
  EXPECT_TRUE(VerifyFunction(fn).ok());
}

TEST(IrBuilderTest, ValueIdsAreSequential) {
  FunctionBuilder b("f", 2);
  EXPECT_EQ(b.Arg(0), 0);
  EXPECT_EQ(b.Arg(1), 1);
  const ValueId c = b.Const(3.0);
  EXPECT_EQ(c, 2);
  const ValueId s = b.Emit(InstKind::kAdd, {b.Arg(0), c});
  EXPECT_EQ(s, 3);
  b.Return(s);
  const Function fn = std::move(b).Build();
  EXPECT_EQ(fn.num_values, 4);
}

TEST(IrBuilderTest, MultiBlockWithArguments) {
  // abs(x): bb0: cond_br (x > 0) bb1(x) else bb1(-x); bb1(a): return a.
  FunctionBuilder b("abs", 1);
  const ValueId x = b.Arg(0);
  const int join = b.CreateBlock(1);
  const ValueId zero = b.Const(0.0);
  const ValueId is_pos = b.Emit(InstKind::kCmpGT, {x, zero});
  const ValueId neg = b.Emit(InstKind::kNeg, {x});
  b.CondBranch(is_pos, join, {x}, join, {neg});
  b.SetInsertionPoint(join);
  b.Return(b.BlockArg(join, 0));
  const Function fn = std::move(b).Build();
  EXPECT_EQ(fn.blocks.size(), 2u);
  EXPECT_EQ(fn.blocks[1].arg_ids.size(), 1u);
  EXPECT_TRUE(VerifyFunction(fn).ok());
}

TEST(IrVerifierTest, RejectsUnterminatedBlock) {
  Function fn;
  fn.name = "bad";
  fn.num_args = 1;
  fn.num_values = 1;
  fn.blocks.emplace_back();
  const Status s = VerifyFunction(fn);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unterminated"), std::string::npos);
}

TEST(IrVerifierTest, RejectsOutOfRangeOperand) {
  Function fn;
  fn.name = "bad";
  fn.num_args = 1;
  fn.num_values = 2;
  BasicBlock bb;
  Instruction inst;
  inst.kind = InstKind::kNeg;
  inst.operands = {99};
  inst.result = 1;
  bb.insts.push_back(inst);
  bb.terminator.kind = Terminator::Kind::kReturn;
  bb.terminator.value = 1;
  fn.blocks.push_back(bb);
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

TEST(IrVerifierTest, RejectsDuplicateDefinition) {
  Function fn;
  fn.name = "bad";
  fn.num_args = 0;
  fn.num_values = 1;
  BasicBlock bb;
  Instruction c1;
  c1.kind = InstKind::kConst;
  c1.result = 0;
  bb.insts.push_back(c1);
  bb.insts.push_back(c1);  // same result id twice
  bb.terminator.kind = Terminator::Kind::kReturn;
  bb.terminator.value = 0;
  fn.blocks.push_back(bb);
  EXPECT_FALSE(VerifyFunction(fn).ok());
}

TEST(IrVerifierTest, RejectsBranchArgMismatch) {
  FunctionBuilder b("bad_branch", 1);
  const int target = b.CreateBlock(2);  // expects 2 args
  b.SetInsertionPoint(target);
  b.Return(b.BlockArg(target, 0));
  b.SetInsertionPoint(0);
  b.Branch(target, {b.Arg(0)});  // passes only 1
  // Build() dies on the verifier; construct manually to check the status.
  EXPECT_THROW(std::move(b).Build(), InternalError);
}

TEST(ModuleTest, AddAndFind) {
  Module m;
  m.AddFunction(BuildSquarePlusOne());
  EXPECT_NE(m.FindFunction("square_plus_one"), nullptr);
  EXPECT_EQ(m.FindFunction("nope"), nullptr);
  EXPECT_THROW(m.AddFunction(BuildSquarePlusOne()), InternalError);
}

TEST(ModuleTest, VerifyModuleResolvesCalls) {
  Module m;
  m.AddFunction(BuildSquarePlusOne());
  FunctionBuilder b("caller", 1);
  b.Return(b.Call("square_plus_one", {b.Arg(0)}));
  m.AddFunction(std::move(b).Build());
  EXPECT_TRUE(VerifyModule(m).ok());

  Module bad;
  FunctionBuilder b2("caller", 1);
  b2.Return(b2.Call("missing", {b2.Arg(0)}));
  bad.AddFunction(std::move(b2).Build());
  EXPECT_FALSE(VerifyModule(bad).ok());
}

TEST(ModuleTest, VerifyModuleChecksCallArity) {
  Module m;
  m.AddFunction(BuildSquarePlusOne());
  FunctionBuilder b("caller", 2);
  b.Return(b.Call("square_plus_one", {b.Arg(0), b.Arg(1)}));
  m.AddFunction(std::move(b).Build());
  const Status s = VerifyModule(m);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("arity"), std::string::npos);
}

TEST(IrPrintTest, DumpsReadableSil) {
  const std::string text = PrintFunction(BuildSquarePlusOne());
  EXPECT_NE(text.find("func @square_plus_one(%0)"), std::string::npos);
  EXPECT_NE(text.find("mul %0, %0"), std::string::npos);
  EXPECT_NE(text.find("return %3"), std::string::npos);
}

}  // namespace
}  // namespace s4tf::sil
