#include "sil/passes.h"

#include <cmath>
#include <gtest/gtest.h>

#include "sil/autodiff.h"
#include "sil/interpreter.h"
#include "sil_testlib.h"

namespace s4tf::sil {
namespace {

TEST(DcePassTest, RemovesDeadChain) {
  FunctionBuilder b("dead_chain", 1);
  const ValueId x = b.Arg(0);
  ValueId dead = b.Emit(InstKind::kExp, {x});
  for (int i = 0; i < 5; ++i) dead = b.Emit(InstKind::kSin, {dead});
  b.Return(b.Emit(InstKind::kMul, {x, x}));
  Function fn = std::move(b).Build();
  EXPECT_EQ(fn.InstructionCount(), 7);
  const PassResult r = RunDCE(fn);
  EXPECT_EQ(r.removed_instructions, 6);
  EXPECT_EQ(fn.InstructionCount(), 1);
  EXPECT_TRUE(VerifyFunction(fn).ok());
}

TEST(DcePassTest, KeepsEverythingLive) {
  Function fn = testing::SinMulExp();
  const PassResult r = RunDCE(fn);
  EXPECT_EQ(r.removed_instructions, 0);
}

TEST(DcePassTest, PreservesSemantics) {
  FunctionBuilder b("mixed", 2);
  const ValueId x = b.Arg(0);
  const ValueId y = b.Arg(1);
  (void)b.Emit(InstKind::kExp, {y});  // dead
  const ValueId live = b.Emit(InstKind::kMul, {x, y});
  (void)b.Emit(InstKind::kTanh, {x});  // dead
  b.Return(live);
  Function fn = std::move(b).Build();
  Module before;
  before.AddFunction(fn);
  RunDCE(fn);
  Module after;
  after.AddFunction(fn);
  for (double x0 : {-1.0, 0.5, 2.0}) {
    EXPECT_DOUBLE_EQ(Interpret(before, "mixed", {x0, 3.0}).value(),
                     Interpret(after, "mixed", {x0, 3.0}).value());
  }
}

TEST(ConstFoldTest, FoldsConstantExpressions) {
  FunctionBuilder b("folds", 1);
  const ValueId two = b.Const(2.0);
  const ValueId three = b.Const(3.0);
  const ValueId six = b.Emit(InstKind::kMul, {two, three});
  const ValueId twelve = b.Emit(InstKind::kAdd, {six, six});
  b.Return(b.Emit(InstKind::kMul, {b.Arg(0), twelve}));
  Function fn = std::move(b).Build();
  const PassResult r = RunConstantFolding(fn);
  EXPECT_EQ(r.folded_constants, 2);  // six, twelve
  Module m;
  m.AddFunction(fn);
  EXPECT_DOUBLE_EQ(Interpret(m, "folds", {2.0}).value(), 24.0);
}

TEST(ConstFoldTest, DoesNotTouchVariedOps) {
  Function fn = testing::SquarePlusOne();
  const PassResult r = RunConstantFolding(fn);
  EXPECT_EQ(r.folded_constants, 0);
}

TEST(CsePassTest, DeduplicatesWithinBlock) {
  FunctionBuilder b("dupes", 1);
  const ValueId x = b.Arg(0);
  const ValueId a = b.Emit(InstKind::kSin, {x});
  const ValueId b1 = b.Emit(InstKind::kSin, {x});  // duplicate
  const ValueId sum = b.Emit(InstKind::kAdd, {a, b1});
  b.Return(sum);
  Function fn = std::move(b).Build();
  const PassResult r = RunCSE(fn);
  EXPECT_EQ(r.deduplicated, 1);
  Module m;
  m.AddFunction(fn);
  EXPECT_NEAR(Interpret(m, "dupes", {0.5}).value(), 2 * std::sin(0.5), 1e-12);
}

TEST(CsePassTest, ChainsConvergeUnderOptimize) {
  FunctionBuilder b("chain_dupes", 1);
  const ValueId x = b.Arg(0);
  const ValueId s1 = b.Emit(InstKind::kSin, {x});
  const ValueId s2 = b.Emit(InstKind::kSin, {x});
  const ValueId e1 = b.Emit(InstKind::kExp, {s1});
  const ValueId e2 = b.Emit(InstKind::kExp, {s2});  // dup after s2->s1
  b.Return(b.Emit(InstKind::kAdd, {e1, e2}));
  Function fn = std::move(b).Build();
  OptimizeFunction(fn);
  EXPECT_EQ(fn.InstructionCount(), 3);  // sin, exp, add
}

TEST(OptimizePipelineTest, PreservesSemanticsOnControlFlow) {
  Function fn = testing::PowViaLoop(4);
  Module before;
  before.AddFunction(fn);
  OptimizeFunction(fn);
  EXPECT_TRUE(VerifyFunction(fn).ok());
  Module after;
  after.AddFunction(fn);
  for (double x0 : {0.5, 1.0, 2.0}) {
    EXPECT_DOUBLE_EQ(Interpret(before, "pow_loop", {x0}).value(),
                     Interpret(after, "pow_loop", {x0}).value());
  }
}

TEST(OptimizePipelineTest, AdOutputIsOptimizableLikeRegularCode) {
  // The paper's claim: AD-generated code is amenable to the same
  // optimizations. Differentiate a function whose primal contains dead and
  // duplicate computation, then check (a) the gradient is unchanged by
  // optimizing the primal first, (b) passes fire on the primal.
  FunctionBuilder b("messy", 1);
  const ValueId x = b.Arg(0);
  (void)b.Emit(InstKind::kExp, {x});               // dead
  const ValueId s1 = b.Emit(InstKind::kSin, {x});
  const ValueId s2 = b.Emit(InstKind::kSin, {x});  // duplicate
  const ValueId c1 = b.Const(2.0);
  const ValueId c2 = b.Const(3.0);
  const ValueId c6 = b.Emit(InstKind::kMul, {c1, c2});  // foldable
  const ValueId p = b.Emit(InstKind::kMul, {s1, s2});
  b.Return(b.Emit(InstKind::kMul, {p, c6}));
  Function messy = std::move(b).Build();

  Module unoptimized;
  unoptimized.AddFunction(messy);
  const auto g_before = SilGradient(unoptimized, "messy", {0.8}).value();

  Function optimized = messy;
  const PassResult r = OptimizeFunction(optimized);
  EXPECT_GT(r.removed_instructions, 0);
  EXPECT_GT(r.deduplicated + r.folded_constants, 0);
  Module opt;
  opt.AddFunction(optimized);
  const auto g_after = SilGradient(opt, "messy", {0.8}).value();
  EXPECT_NEAR(g_before[0], g_after[0], 1e-12);

  // The optimized primal produces a smaller adjoint, too.
  auto vjp_messy = SynthesizeVJP(unoptimized, "messy").value();
  auto vjp_opt = SynthesizeVJP(opt, "messy").value();
  int messy_adjoint = 0, opt_adjoint = 0;
  for (int c : vjp_messy.AdjointInstructionCounts()) messy_adjoint += c;
  for (int c : vjp_opt.AdjointInstructionCounts()) opt_adjoint += c;
  EXPECT_LT(opt_adjoint, messy_adjoint);
}

}  // namespace
}  // namespace s4tf::sil
