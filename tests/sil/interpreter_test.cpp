#include "sil/interpreter.h"

#include <cmath>
#include <gtest/gtest.h>

#include "sil_testlib.h"

namespace s4tf::sil {
namespace {

using testing::AbsViaBranch;
using testing::CallModule;
using testing::PowViaLoop;
using testing::SinMulExp;
using testing::SquarePlusOne;

TEST(InterpreterTest, StraightLine) {
  Module m;
  m.AddFunction(SquarePlusOne());
  EXPECT_DOUBLE_EQ(Interpret(m, "square_plus_one", {3.0}).value(), 10.0);
  EXPECT_DOUBLE_EQ(Interpret(m, "square_plus_one", {-2.0}).value(), 5.0);
}

TEST(InterpreterTest, Transcendentals) {
  Module m;
  m.AddFunction(SinMulExp());
  const double x = 0.7, y = 1.3;
  EXPECT_NEAR(Interpret(m, "sin_mul_exp", {x, y}).value(),
              std::sin(x) * y + std::exp(x / y), 1e-12);
}

TEST(InterpreterTest, BranchingFollowsCondition) {
  Module m;
  m.AddFunction(AbsViaBranch());
  EXPECT_DOUBLE_EQ(Interpret(m, "abs_branch", {4.5}).value(), 4.5);
  EXPECT_DOUBLE_EQ(Interpret(m, "abs_branch", {-4.5}).value(), 4.5);
  EXPECT_DOUBLE_EQ(Interpret(m, "abs_branch", {0.0}).value(), -0.0);
}

TEST(InterpreterTest, LoopComputesPower) {
  Module m;
  m.AddFunction(PowViaLoop(5));
  EXPECT_DOUBLE_EQ(Interpret(m, "pow_loop", {2.0}).value(), 32.0);
  EXPECT_DOUBLE_EQ(Interpret(m, "pow_loop", {1.5}).value(),
                   std::pow(1.5, 5));
}

TEST(InterpreterTest, ZeroIterationLoop) {
  Module m;
  m.AddFunction(PowViaLoop(0));
  EXPECT_DOUBLE_EQ(Interpret(m, "pow_loop", {7.0}).value(), 1.0);
}

TEST(InterpreterTest, CallsResolveThroughModule) {
  const Module m = CallModule();
  const double x = 0.9;
  const double expected = (std::sin(x) * std::sin(x) + 1.0) * x;
  EXPECT_NEAR(Interpret(m, "user", {x}).value(), expected, 1e-12);
}

TEST(InterpreterTest, MissingFunctionIsNotFound) {
  Module m;
  const auto result = Interpret(m, "ghost", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterTest, ArgCountMismatchRejected) {
  Module m;
  m.AddFunction(SquarePlusOne());
  EXPECT_EQ(Interpret(m, "square_plus_one", {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(InterpreterTest, InfiniteLoopHitsStepLimit) {
  FunctionBuilder b("spin", 0);
  b.Branch(0);  // bb0 branches to itself forever
  Module m;
  m.AddFunction(std::move(b).Build());
  InterpreterOptions options;
  options.max_steps = 1000;
  // A self-loop with no instructions never increments steps; add one.
  FunctionBuilder b2("spin2", 0);
  const int loop = b2.CreateBlock(0);
  b2.Branch(loop);
  b2.SetInsertionPoint(loop);
  b2.Const(1.0);
  b2.Branch(loop);
  m.AddFunction(std::move(b2).Build());
  EXPECT_EQ(Interpret(m, "spin2", {}, options).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace s4tf::sil
