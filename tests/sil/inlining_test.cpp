#include <cmath>
#include <gtest/gtest.h>

#include "sil/autodiff.h"
#include "sil/interpreter.h"
#include "sil/passes.h"
#include "sil_testlib.h"

namespace s4tf::sil {
namespace {

TEST(InliningTest, StraightLineCallee) {
  Module m = testing::CallModule();  // user(x) = square_plus_one(sin x) * x
  const double before = Interpret(m, "user", {0.8}).value();
  const int inlined = RunInlining(m, "user");
  EXPECT_EQ(inlined, 1);
  const Function* user = m.FindFunction("user");
  // No calls remain.
  for (const BasicBlock& bb : user->blocks) {
    for (const Instruction& inst : bb.insts) {
      EXPECT_NE(inst.kind, InstKind::kCall);
    }
  }
  EXPECT_DOUBLE_EQ(Interpret(m, "user", {0.8}).value(), before);
}

TEST(InliningTest, SemanticsPreservedAcrossInputs) {
  Module m = testing::CallModule();
  Module inlined = testing::CallModule();
  RunInlining(inlined, "user");
  for (double x : {-2.0, -0.3, 0.0, 0.5, 1.9}) {
    EXPECT_NEAR(Interpret(m, "user", {x}).value(),
                Interpret(inlined, "user", {x}).value(), 1e-12)
        << "x=" << x;
  }
}

TEST(InliningTest, CalleeWithControlFlow) {
  // caller(x) = abs_branch(x) * 2 — the callee's cond_br and block
  // argument must be spliced correctly.
  Module m;
  m.AddFunction(testing::AbsViaBranch());
  FunctionBuilder b("caller", 1);
  const ValueId h = b.Call("abs_branch", {b.Arg(0)});
  const ValueId two = b.Const(2.0);
  b.Return(b.Emit(InstKind::kMul, {h, two}));
  m.AddFunction(std::move(b).Build());

  EXPECT_EQ(RunInlining(m, "caller"), 1);
  EXPECT_DOUBLE_EQ(Interpret(m, "caller", {-3.5}).value(), 7.0);
  EXPECT_DOUBLE_EQ(Interpret(m, "caller", {3.5}).value(), 7.0);
}

TEST(InliningTest, CalleeWithLoop) {
  Module m;
  m.AddFunction(testing::PowViaLoop(4));
  FunctionBuilder b("caller", 1);
  const ValueId p = b.Call("pow_loop", {b.Arg(0)});
  b.Return(b.Emit(InstKind::kAdd, {p, p}));
  m.AddFunction(std::move(b).Build());

  EXPECT_EQ(RunInlining(m, "caller"), 1);
  EXPECT_DOUBLE_EQ(Interpret(m, "caller", {2.0}).value(), 32.0);
}

TEST(InliningTest, MultipleCallSites) {
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  FunctionBuilder b("caller", 2);
  const ValueId a = b.Call("square_plus_one", {b.Arg(0)});
  const ValueId c = b.Call("square_plus_one", {b.Arg(1)});
  b.Return(b.Emit(InstKind::kMul, {a, c}));
  m.AddFunction(std::move(b).Build());

  EXPECT_EQ(RunInlining(m, "caller"), 2);
  // (2^2+1) * (3^2+1) = 50.
  EXPECT_DOUBLE_EQ(Interpret(m, "caller", {2.0, 3.0}).value(), 50.0);
}

TEST(InliningTest, NestedCallsInlineTransitively) {
  // outer -> middle -> square_plus_one. Inlining outer pulls in middle's
  // call, which the next iteration inlines too.
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  {
    FunctionBuilder b("middle", 1);
    const ValueId h = b.Call("square_plus_one", {b.Arg(0)});
    b.Return(b.Emit(InstKind::kNeg, {h}));
    m.AddFunction(std::move(b).Build());
  }
  {
    FunctionBuilder b("outer", 1);
    b.Return(b.Call("middle", {b.Arg(0)}));
    m.AddFunction(std::move(b).Build());
  }
  EXPECT_EQ(RunInlining(m, "outer"), 2);
  EXPECT_DOUBLE_EQ(Interpret(m, "outer", {3.0}).value(), -10.0);
}

TEST(InliningTest, RecursionIsRefused) {
  Module m;
  FunctionBuilder b("self_call", 1);
  b.Return(b.Call("self_call", {b.Arg(0)}));
  m.AddFunction(std::move(b).Build());
  EXPECT_EQ(RunInlining(m, "self_call"), 0);
}

TEST(InliningTest, InlinedFunctionStillDifferentiates) {
  // The AD transformation must work identically on the inlined body
  // (fewer callee derivatives to capture, same gradients).
  Module m = testing::CallModule();
  const auto g_call = SilGradient(m, "user", {0.7}).value();
  RunInlining(m, "user");
  OptimizeFunction(*m.FindFunction("user"));
  const auto g_inline = SilGradient(m, "user", {0.7}).value();
  EXPECT_NEAR(g_call[0], g_inline[0], 1e-12);
}

TEST(InliningTest, FollowedByOptimizationShrinksCode) {
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  FunctionBuilder b("caller", 1);
  const ValueId a = b.Call("square_plus_one", {b.Arg(0)});
  const ValueId c = b.Call("square_plus_one", {b.Arg(0)});  // same arg!
  b.Return(b.Emit(InstKind::kAdd, {a, c}));
  m.AddFunction(std::move(b).Build());
  RunInlining(m, "caller");
  Function* caller = m.FindFunction("caller");
  const auto before = caller->InstructionCount();
  OptimizeFunction(*caller);
  // CSE alone cannot merge across the block splits, but constant folding
  // merges the duplicated `1.0` constants at minimum.
  EXPECT_LE(caller->InstructionCount(), before);
  EXPECT_DOUBLE_EQ(Interpret(m, "caller", {2.0}).value(), 10.0);
}

}  // namespace
}  // namespace s4tf::sil
