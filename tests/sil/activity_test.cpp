#include "sil/activity.h"

#include <gtest/gtest.h>

#include "sil/diff_check.h"
#include "sil_testlib.h"

namespace s4tf::sil {
namespace {

TEST(ActivityTest, StraightLineAllActive) {
  Module m;
  const Function& fn = m.AddFunction(testing::SquarePlusOne());
  const ActivityInfo info = AnalyzeActivity(m, fn);
  // x, x*x and the sum are varied & useful; the constant 1 is useful only.
  EXPECT_TRUE(info.IsActiveValue(0));  // x
  EXPECT_TRUE(info.IsActiveValue(1));  // x*x
  EXPECT_TRUE(info.IsActiveValue(3));  // sum
  EXPECT_FALSE(info.varied[2]);        // const 1 is not varied
  EXPECT_TRUE(info.useful[2]);         // but it is useful
}

TEST(ActivityTest, DeadComputationIsNotUseful) {
  FunctionBuilder b("with_dead", 1);
  const ValueId x = b.Arg(0);
  const ValueId dead = b.Emit(InstKind::kExp, {x});  // never used
  (void)dead;
  b.Return(b.Emit(InstKind::kMul, {x, x}));
  Module m;
  const Function& fn = m.AddFunction(std::move(b).Build());
  const ActivityInfo info = AnalyzeActivity(m, fn);
  EXPECT_TRUE(info.varied[1]);   // exp(x) depends on x
  EXPECT_FALSE(info.useful[1]);  // but contributes nothing
  EXPECT_FALSE(info.IsActiveValue(1));
}

TEST(ActivityTest, ConstantChainIsNotVaried) {
  FunctionBuilder b("const_chain", 1);
  const ValueId c = b.Const(2.0);
  const ValueId c2 = b.Emit(InstKind::kMul, {c, c});
  b.Return(b.Emit(InstKind::kAdd, {b.Arg(0), c2}));
  Module m;
  const Function& fn = m.AddFunction(std::move(b).Build());
  const ActivityInfo info = AnalyzeActivity(m, fn);
  EXPECT_FALSE(info.varied[1]);  // c
  EXPECT_FALSE(info.varied[2]);  // c*c
  EXPECT_TRUE(info.useful[2]);
  EXPECT_TRUE(info.IsActiveValue(0));
}

TEST(ActivityTest, WrtSubsetRestrictsVariedness) {
  Module m;
  const Function& fn = m.AddFunction(testing::SinMulExp());
  // wrt x only: y is not varied.
  const ActivityInfo info = AnalyzeActivity(m, fn, {0});
  EXPECT_TRUE(info.varied[0]);
  EXPECT_FALSE(info.varied[1]);
  // sin(x) (value 2) is varied; the product sin(x)*y too.
  EXPECT_TRUE(info.varied[2]);
  EXPECT_TRUE(info.varied[3]);
}

TEST(ActivityTest, VariednessFlowsThroughBlockArguments) {
  Module m;
  const Function& fn = m.AddFunction(testing::AbsViaBranch());
  const ActivityInfo info = AnalyzeActivity(m, fn);
  // The join block's argument receives x or -x: varied and useful.
  const ValueId join_arg = fn.blocks[1].arg_ids[0];
  EXPECT_TRUE(info.IsActiveValue(join_arg));
}

TEST(ActivityTest, LoopFixpointMarksCarriedValues) {
  Module m;
  const Function& fn = m.AddFunction(testing::PowViaLoop(3));
  const ActivityInfo info = AnalyzeActivity(m, fn);
  // The accumulator block-arg is varied (via acc*x) and useful (returned);
  // the loop counter is neither varied nor useful as data.
  const ValueId header_acc = fn.blocks[1].arg_ids[0];
  const ValueId header_i = fn.blocks[1].arg_ids[1];
  EXPECT_TRUE(info.IsActiveValue(header_acc));
  EXPECT_FALSE(info.varied[static_cast<std::size_t>(header_i)]);
}

TEST(DiffCheckTest, CleanFunctionPasses) {
  Module m;
  const Function& fn = m.AddFunction(testing::SinMulExp());
  const DiffCheckResult result = CheckDifferentiability(m, fn);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.error_count(), 0);
  EXPECT_EQ(result.warning_count(), 0);
}

TEST(DiffCheckTest, ActiveFloorIsAnError) {
  Module m;
  const Function& fn = m.AddFunction(testing::FloorTimesX());
  const DiffCheckResult result = CheckDifferentiability(m, fn);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.error_count(), 1);
  EXPECT_NE(result.diagnostics[0].message.find("floor"), std::string::npos);
}

TEST(DiffCheckTest, InactiveFloorIsFine) {
  // floor of a constant: not varied, so no derivative needed.
  FunctionBuilder b("const_floor", 1);
  const ValueId c = b.Const(2.7);
  const ValueId f = b.Emit(InstKind::kFloor, {c});
  b.Return(b.Emit(InstKind::kMul, {b.Arg(0), f}));
  Module m;
  const Function& fn = m.AddFunction(std::move(b).Build());
  EXPECT_TRUE(CheckDifferentiability(m, fn).ok());
}

TEST(DiffCheckTest, DeadFloorIsFine) {
  // floor(x) computed but unused: varied but not useful.
  FunctionBuilder b("dead_floor", 1);
  const ValueId x = b.Arg(0);
  (void)b.Emit(InstKind::kFloor, {x});
  b.Return(b.Emit(InstKind::kMul, {x, x}));
  Module m;
  const Function& fn = m.AddFunction(std::move(b).Build());
  EXPECT_TRUE(CheckDifferentiability(m, fn).ok());
}

TEST(DiffCheckTest, WarnsWhenResultIgnoresInputs) {
  // The paper's example: the result does not depend on differentiable
  // arguments.
  Module m;
  const Function& fn = m.AddFunction(testing::IgnoresSecondArg());
  const DiffCheckResult result = CheckDifferentiability(m, fn, {1});
  EXPECT_TRUE(result.ok());  // a warning, not an error
  ASSERT_EQ(result.warning_count(), 1);
  EXPECT_NE(result.diagnostics[0].message.find("does not depend"),
            std::string::npos);
}

TEST(DiffCheckTest, CallToNonDifferentiableCalleeIsAnError) {
  Module m;
  m.AddFunction(testing::FloorTimesX());
  FunctionBuilder b("caller", 1);
  b.Return(b.Call("floor_times_x", {b.Arg(0)}));
  const Function& fn = m.AddFunction(std::move(b).Build());
  const DiffCheckResult result = CheckDifferentiability(m, fn);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.diagnostics[0].message.find("floor_times_x"),
            std::string::npos);
}

TEST(DiffCheckTest, CustomDerivativeTerminatesRecursion) {
  // Same program, but floor_times_x has a registered custom derivative:
  // the base case suppresses the error (§2.1).
  Module m;
  m.AddFunction(testing::FloorTimesX());
  FunctionBuilder b("caller", 1);
  b.Return(b.Call("floor_times_x", {b.Arg(0)}));
  const Function& fn = m.AddFunction(std::move(b).Build());
  CustomDerivativeSet custom;
  custom.Add("floor_times_x");
  EXPECT_TRUE(CheckDifferentiability(m, fn, {}, custom).ok());
}

TEST(DiffCheckTest, UnknownCalleeIsAnError) {
  Module m;
  FunctionBuilder b("caller", 1);
  b.Return(b.Call("missing_fn", {b.Arg(0)}));
  const Function& fn = m.AddFunction(std::move(b).Build());
  EXPECT_FALSE(CheckDifferentiability(m, fn).ok());
}

TEST(DiffCheckTest, ComparisonsAsControlAreFine) {
  Module m;
  const Function& fn = m.AddFunction(testing::AbsViaBranch());
  EXPECT_TRUE(CheckDifferentiability(m, fn).ok());
}

}  // namespace
}  // namespace s4tf::sil
