#include "sil/autodiff.h"

#include <cmath>
#include <gtest/gtest.h>

#include "sil/interpreter.h"
#include "sil_testlib.h"

namespace s4tf::sil {
namespace {

// Central-difference reference.
double Numeric(const Module& m, const std::string& fn,
               std::vector<double> args, std::size_t index,
               double eps = 1e-6) {
  auto plus = args, minus = args;
  plus[index] += eps;
  minus[index] -= eps;
  return (Interpret(m, fn, plus).value() - Interpret(m, fn, minus).value()) /
         (2 * eps);
}

TEST(SilVjpTest, StraightLineGradient) {
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  const auto grads = SilGradient(m, "square_plus_one", {3.0}).value();
  EXPECT_DOUBLE_EQ(grads[0], 6.0);
}

TEST(SilVjpTest, MultiArgGradientMatchesFiniteDifferences) {
  Module m;
  m.AddFunction(testing::SinMulExp());
  const std::vector<double> at = {0.7, 1.3};
  const auto grads = SilGradient(m, "sin_mul_exp", at).value();
  EXPECT_NEAR(grads[0], Numeric(m, "sin_mul_exp", at, 0), 1e-5);
  EXPECT_NEAR(grads[1], Numeric(m, "sin_mul_exp", at, 1), 1e-5);
}

TEST(SilVjpTest, PullbackIsFirstClassAndLinear) {
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  auto vjp = SynthesizeVJP(m, "square_plus_one").value();
  auto result = vjp.Run({2.0}).value();
  EXPECT_DOUBLE_EQ(result.value, 5.0);
  EXPECT_DOUBLE_EQ(result.pullback(1.0)[0], 4.0);
  EXPECT_DOUBLE_EQ(result.pullback(3.0)[0], 12.0);  // reusable + linear
}

TEST(SilVjpTest, ControlFlowFollowsTakenBranch) {
  Module m;
  m.AddFunction(testing::AbsViaBranch());
  EXPECT_DOUBLE_EQ(SilGradient(m, "abs_branch", {2.5}).value()[0], 1.0);
  EXPECT_DOUBLE_EQ(SilGradient(m, "abs_branch", {-2.5}).value()[0], -1.0);
}

TEST(SilVjpTest, LoopGradientMatchesPowerRule) {
  // d/dx x^n = n x^(n-1); exercises per-iteration block records.
  for (int n : {0, 1, 2, 5, 9}) {
    Module m;
    m.AddFunction(testing::PowViaLoop(n));
    const double x = 1.37;
    const auto grads = SilGradient(m, "pow_loop", {x}).value();
    EXPECT_NEAR(grads[0], n * std::pow(x, n - 1), 1e-9) << "n=" << n;
  }
}

TEST(SilVjpTest, CallsAreRecursivelyTransformed) {
  const Module m = testing::CallModule();
  const double x = 0.9;
  const auto grads = SilGradient(m, "user", {x}).value();
  EXPECT_NEAR(grads[0], Numeric(m, "user", {x}, 0), 1e-5);
}

TEST(SilVjpTest, NonDifferentiableFunctionRejectedBeforeExecution) {
  Module m;
  m.AddFunction(testing::FloorTimesX());
  const auto vjp = SynthesizeVJP(m, "floor_times_x");
  EXPECT_FALSE(vjp.ok());
  EXPECT_EQ(vjp.status().code(), StatusCode::kInvalidArgument);
}

TEST(SilVjpTest, CustomDerivativeUsedAsBaseCase) {
  // floor_times_x gets a (mathematically chosen) custom derivative:
  // treat f(x) = floor(x)*x as having derivative floor(x) a.e.
  Module m;
  m.AddFunction(testing::FloorTimesX());
  FunctionBuilder b("caller", 1);
  const ValueId h = b.Call("floor_times_x", {b.Arg(0)});
  b.Return(b.Emit(InstKind::kMul, {h, h}));
  m.AddFunction(std::move(b).Build());

  DerivativeRegistry registry;
  registry.Register(
      "floor_times_x",
      CustomScalarDerivative{
          .vjp =
              [](const std::vector<double>& args) {
                const double x = args[0];
                const double value = std::floor(x) * x;
                return std::make_pair(
                    value, std::function<std::vector<double>(double)>(
                               [x](double seed) {
                                 return std::vector<double>{
                                     seed * std::floor(x)};
                               }));
              },
          .jvp =
              [](const std::vector<double>& args,
                 const std::vector<double>& dargs) {
                return std::make_pair(std::floor(args[0]) * args[0],
                                      std::floor(args[0]) * dargs[0]);
              }});

  const double x = 2.6;  // floor = 2; f = 5.2; caller = f^2
  const auto grads = SilGradient(m, "caller", {x}, registry).value();
  // d/dx f^2 = 2 f * f' = 2 * 5.2 * 2 = 20.8.
  EXPECT_NEAR(grads[0], 20.8, 1e-9);
}

TEST(SilVjpTest, WrtSubsetReturnsOnlyRequestedGradients) {
  Module m;
  m.AddFunction(testing::SinMulExp());
  auto vjp = SynthesizeVJP(m, "sin_mul_exp", {1}).value();
  auto result = vjp.Run({0.7, 1.3}).value();
  const auto grads = result.pullback(1.0);
  ASSERT_EQ(grads.size(), 1u);
  EXPECT_NEAR(grads[0], Numeric(m, "sin_mul_exp", {0.7, 1.3}, 1), 1e-5);
}

TEST(SilVjpTest, ActivityPruningShrinksAdjointCode) {
  // A function with a large dead subgraph: the synthesized adjoint must
  // not contain derivative instructions for it.
  FunctionBuilder b("mostly_dead", 1);
  const ValueId x = b.Arg(0);
  ValueId dead = b.Emit(InstKind::kExp, {x});
  for (int i = 0; i < 10; ++i) dead = b.Emit(InstKind::kSin, {dead});
  b.Return(b.Emit(InstKind::kMul, {x, x}));
  Module m;
  m.AddFunction(std::move(b).Build());
  auto vjp = SynthesizeVJP(m, "mostly_dead").value();
  const auto counts = vjp.AdjointInstructionCounts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0], 1);  // only the mul is active
}

TEST(SilJvpTest, ForwardModeMatchesReverse) {
  Module m;
  m.AddFunction(testing::SinMulExp());
  auto jvp = SynthesizeJVP(m, "sin_mul_exp").value();
  auto vjp = SynthesizeVJP(m, "sin_mul_exp").value();
  const std::vector<double> at = {0.4, 2.1};
  const std::vector<double> dir = {0.6, -0.8};
  const auto forward = jvp.Run(at, dir).value();
  const auto reverse = vjp.Run(at).value();
  const auto grads = reverse.pullback(1.0);
  EXPECT_NEAR(forward.value, reverse.value, 1e-12);
  EXPECT_NEAR(forward.tangent, grads[0] * dir[0] + grads[1] * dir[1], 1e-9);
}

TEST(SilJvpTest, LoopsAndBranches) {
  Module m;
  m.AddFunction(testing::PowViaLoop(4));
  auto jvp = SynthesizeJVP(m, "pow_loop").value();
  const auto result = jvp.Run({1.2}, {1.0}).value();
  EXPECT_NEAR(result.value, std::pow(1.2, 4), 1e-12);
  EXPECT_NEAR(result.tangent, 4 * std::pow(1.2, 3), 1e-9);
}

TEST(SilJvpTest, CallsRecursive) {
  const Module m = testing::CallModule();
  auto jvp = SynthesizeJVP(m, "user").value();
  const double x = 1.1;
  const auto result = jvp.Run({x}, {1.0}).value();
  EXPECT_NEAR(result.tangent, Numeric(m, "user", {x}, 0), 1e-5);
}

TEST(SilJvpTest, RejectsNonDifferentiable) {
  Module m;
  m.AddFunction(testing::FloorTimesX());
  EXPECT_FALSE(SynthesizeJVP(m, "floor_times_x").ok());
}

TEST(SilJvpTest, DirectionSizeChecked) {
  Module m;
  m.AddFunction(testing::SinMulExp());
  auto jvp = SynthesizeJVP(m, "sin_mul_exp").value();
  EXPECT_FALSE(jvp.Run({1.0, 2.0}, {1.0}).ok());
}

// Property sweep: VJP gradients match finite differences across a grid of
// evaluation points for every test program.
struct SilGradCase {
  const char* fn;
  int arity;
};

class SilGradSweepTest : public ::testing::TestWithParam<SilGradCase> {};

TEST_P(SilGradSweepTest, MatchesFiniteDifferences) {
  Module m;
  m.AddFunction(testing::SquarePlusOne());
  m.AddFunction(testing::SinMulExp());
  m.AddFunction(testing::AbsViaBranch());
  m.AddFunction(testing::PowViaLoop(3));
  FunctionBuilder b("user", 1);
  const ValueId x = b.Arg(0);
  const ValueId s = b.Emit(InstKind::kSin, {x});
  const ValueId h = b.Call("square_plus_one", {s});
  b.Return(b.Emit(InstKind::kMul, {h, x}));
  m.AddFunction(std::move(b).Build());

  const auto& c = GetParam();
  const double points[] = {-1.7, -0.6, 0.4, 1.3, 2.2};
  for (double p0 : points) {
    std::vector<double> at = {p0};
    if (c.arity == 2) at.push_back(p0 * 0.5 + 1.1);
    const auto grads = SilGradient(m, c.fn, at).value();
    for (int i = 0; i < c.arity; ++i) {
      EXPECT_NEAR(grads[static_cast<std::size_t>(i)],
                  Numeric(m, c.fn, at, static_cast<std::size_t>(i)), 1e-4)
          << c.fn << " arg " << i << " at " << p0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SilGradSweepTest,
    ::testing::Values(SilGradCase{"square_plus_one", 1},
                      SilGradCase{"sin_mul_exp", 2},
                      SilGradCase{"abs_branch", 1},
                      SilGradCase{"pow_loop", 1}, SilGradCase{"user", 1}),
    [](const ::testing::TestParamInfo<SilGradCase>& info) {
      return info.param.fn;
    });

}  // namespace
}  // namespace s4tf::sil
