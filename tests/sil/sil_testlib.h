// Shared mini-SIL test programs.
#pragma once

#include "sil/ir.h"

namespace s4tf::sil::testing {

// f(x) = x^2 + 1
inline Function SquarePlusOne() {
  FunctionBuilder b("square_plus_one", 1);
  const ValueId x = b.Arg(0);
  const ValueId sq = b.Emit(InstKind::kMul, {x, x});
  const ValueId one = b.Const(1.0);
  b.Return(b.Emit(InstKind::kAdd, {sq, one}));
  return std::move(b).Build();
}

// f(x, y) = sin(x) * y + exp(x / y)
inline Function SinMulExp() {
  FunctionBuilder b("sin_mul_exp", 2);
  const ValueId x = b.Arg(0);
  const ValueId y = b.Arg(1);
  const ValueId s = b.Emit(InstKind::kSin, {x});
  const ValueId sy = b.Emit(InstKind::kMul, {s, y});
  const ValueId q = b.Emit(InstKind::kDiv, {x, y});
  const ValueId e = b.Emit(InstKind::kExp, {q});
  b.Return(b.Emit(InstKind::kAdd, {sy, e}));
  return std::move(b).Build();
}

// abs(x) via control flow and a block argument join.
inline Function AbsViaBranch() {
  FunctionBuilder b("abs_branch", 1);
  const ValueId x = b.Arg(0);
  const int join = b.CreateBlock(1);
  const ValueId zero = b.Const(0.0);
  const ValueId pos = b.Emit(InstKind::kCmpGT, {x, zero});
  const ValueId neg = b.Emit(InstKind::kNeg, {x});
  b.CondBranch(pos, join, {x}, join, {neg});
  b.SetInsertionPoint(join);
  b.Return(b.BlockArg(join, 0));
  return std::move(b).Build();
}

// pow(x, n) for fixed integer n via a loop:
//   bb0:       br bb1(1.0, 0.0)
//   bb1(acc,i): cond_br (i < n) bb2(acc,i) bb3(acc)
//   bb2(acc,i): acc' = acc * x; i' = i + 1; br bb1(acc', i')
//   bb3(acc):  return acc
inline Function PowViaLoop(int n) {
  FunctionBuilder b("pow_loop", 1);
  const ValueId x = b.Arg(0);
  const int header = b.CreateBlock(2);
  const int body = b.CreateBlock(2);
  const int exit = b.CreateBlock(1);

  const ValueId one = b.Const(1.0);
  const ValueId zero = b.Const(0.0);
  b.Branch(header, {one, zero});

  b.SetInsertionPoint(header);
  const ValueId acc = b.BlockArg(header, 0);
  const ValueId i = b.BlockArg(header, 1);
  const ValueId limit = b.Const(static_cast<double>(n));
  const ValueId cont = b.Emit(InstKind::kCmpLT, {i, limit});
  b.CondBranch(cont, body, {acc, i}, exit, {acc});

  b.SetInsertionPoint(body);
  const ValueId acc2 = b.BlockArg(body, 0);
  const ValueId i2 = b.BlockArg(body, 1);
  const ValueId next_acc = b.Emit(InstKind::kMul, {acc2, x});
  const ValueId step = b.Const(1.0);
  const ValueId next_i = b.Emit(InstKind::kAdd, {i2, step});
  b.Branch(header, {next_acc, next_i});

  b.SetInsertionPoint(exit);
  b.Return(b.BlockArg(exit, 0));
  return std::move(b).Build();
}

// g(x) = floor(x) * x — non-differentiable through floor.
inline Function FloorTimesX() {
  FunctionBuilder b("floor_times_x", 1);
  const ValueId x = b.Arg(0);
  const ValueId f = b.Emit(InstKind::kFloor, {x});
  b.Return(b.Emit(InstKind::kMul, {f, x}));
  return std::move(b).Build();
}

// h(x, y) = x * 2 (y unused); return depends only on arg 0.
inline Function IgnoresSecondArg() {
  FunctionBuilder b("ignores_y", 2);
  const ValueId two = b.Const(2.0);
  b.Return(b.Emit(InstKind::kMul, {b.Arg(0), two}));
  return std::move(b).Build();
}

// A module with helper(x) = x^2 + 1 and user(x) = helper(sin(x)) * x.
inline Module CallModule() {
  Module m;
  m.AddFunction(SquarePlusOne());
  FunctionBuilder b("user", 1);
  const ValueId x = b.Arg(0);
  const ValueId s = b.Emit(InstKind::kSin, {x});
  const ValueId h = b.Call("square_plus_one", {s});
  b.Return(b.Emit(InstKind::kMul, {h, x}));
  m.AddFunction(std::move(b).Build());
  return m;
}

}  // namespace s4tf::sil::testing
