#include "eager/eager_backend.h"

#include <cmath>
#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace s4tf {
namespace {

TEST(EagerBackendTest, ProducesSameResultsAsNaive) {
  EagerBackend backend;
  const Device eager = backend.device();
  Rng rng(5);
  const Tensor a_cpu = Tensor::RandomUniform(Shape({4, 4}), rng, -1, 1);
  const Tensor b_cpu = Tensor::RandomUniform(Shape({4, 4}), rng, -1, 1);
  const Tensor naive = Relu(MatMul(a_cpu, b_cpu) * 2.0f + 1.0f);

  const Tensor a = a_cpu.To(eager);
  const Tensor b = b_cpu.To(eager);
  const Tensor result = Relu(MatMul(a, b) * 2.0f + 1.0f);
  EXPECT_EQ(result.device().kind(), DeviceKind::kEager);
  EXPECT_EQ(result.ToVector(), naive.ToVector());
}

TEST(EagerBackendTest, DispatchReturnsBeforeExecution) {
  // "Control is returned to the user's program before the kernel
  // finishes": enqueue a chain and observe pending work before syncing.
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Full(Shape({64, 64}), 1.0f, eager);
  float expected = 1.0f;
  for (int i = 0; i < 50; ++i) {
    x = x * 1.01f + 0.001f;  // two ops per iteration
    expected = expected * 1.01f + 0.001f;
  }
  EXPECT_EQ(backend.ops_dispatched(), 100);
  backend.Sync(eager);
  EXPECT_EQ(backend.pending_ops(), 0u);
  EXPECT_NEAR(x.At({0, 0}), expected, 0.01f);
}

TEST(EagerBackendTest, ObservationBlocksUntilReady) {
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Full(Shape({8}), 2.0f, eager);
  Tensor y = Square(x) + 1.0f;
  // ToVector must return the correct value regardless of queue state.
  EXPECT_EQ(y.ToVector(), std::vector<float>(8, 5.0f));
}

TEST(EagerBackendTest, HostTimeChargedPerOp) {
  EagerOptions options;
  options.dispatch_overhead_seconds = 1e-3;
  EagerBackend backend(options);
  const Device eager = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), eager);
  for (int i = 0; i < 10; ++i) x = x + 1.0f;
  backend.Sync(eager);
  EXPECT_NEAR(backend.host_seconds(), 10e-3, 1e-9);
  EXPECT_GT(backend.device_seconds(), 0.0);
}

TEST(EagerBackendTest, NoFusionMeansOneKernelPerOp) {
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Ones(Shape({16}), eager);
  for (int i = 0; i < 7; ++i) x = Relu(x * 2.0f);
  backend.Sync(eager);
  EXPECT_EQ(backend.ops_dispatched(), 14);
  EXPECT_GE(backend.device_seconds(),
            14 * backend.device_seconds() / 15);  // all 14 launched
}

TEST(EagerBackendTest, ConstantsAreImmediatelyReady) {
  EagerBackend backend;
  const Device eager = backend.device();
  const Tensor c = Tensor::Full(Shape({3}), 7.0f, eager);
  auto* impl = dynamic_cast<EagerImpl*>(c.impl().get());
  ASSERT_NE(impl, nullptr);
  EXPECT_TRUE(impl->buffer()->ready());
  EXPECT_EQ(backend.ops_dispatched(), 0);
}

TEST(EagerBackendTest, ResetStatsDrainsAndZeroes) {
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), eager);
  x = x + x;
  backend.ResetStats();
  EXPECT_EQ(backend.ops_dispatched(), 0);
  EXPECT_EQ(backend.host_seconds(), 0.0);
  EXPECT_EQ(backend.device_seconds(), 0.0);
}

TEST(EagerBackendTest, PipelineDepthWatermarkTracksRunAhead) {
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Full(Shape({256, 256}), 1.0f, eager);
  // Big matmuls keep the worker busy while the host enqueues ahead.
  for (int i = 0; i < 8; ++i) x = MatMul(x, x) * 1e-3f;
  backend.Sync(eager);
  EXPECT_GE(backend.max_pipeline_depth(), 2u);  // host ran ahead
  backend.ResetStats();
  EXPECT_EQ(backend.max_pipeline_depth(), 0u);
}

TEST(EagerBackendTest, DeepPipelineKeepsFifoCorrectness) {
  // A long dependency chain through the async queue must retire in order.
  EagerBackend backend;
  const Device eager = backend.device();
  Tensor x = Tensor::Full(Shape({1}), 0.0f, eager);
  for (int i = 0; i < 200; ++i) x = x + 1.0f;
  EXPECT_EQ(x.ScalarValue(), 200.0f);
}

TEST(EagerBackendTest, ForReplicaMintsDistinctWorkingDevices) {
  // The replica factory (registered by this library) hands out one
  // backend per ordinal; same ordinal -> same device, different
  // ordinals -> un-mixable devices that still compute.
  const Device r0 = Device::ForReplica(DeviceKind::kEager, 0);
  const Device r1 = Device::ForReplica(DeviceKind::kEager, 1);
  EXPECT_EQ(r0, Device::ForReplica(DeviceKind::kEager, 0));
  EXPECT_NE(r0, r1);
  EXPECT_EQ(r0.kind(), DeviceKind::kEager);
  EXPECT_EQ(r1.ordinal(), 1);
  const Tensor x = Tensor::Full(Shape({3}), 2.0f, r1);
  EXPECT_EQ((x + x).ToVector(), (std::vector<float>{4.0f, 4.0f, 4.0f}));
}

}  // namespace
}  // namespace s4tf
