#include <cmath>
#include <gtest/gtest.h>
#include <limits>

#include "ad/operators.h"
#include "support/threadpool.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

TEST(StackSplitTest, StackAddsLeadingAxis) {
  const Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor b = Tensor::FromVector(Shape({2}), {3, 4});
  const Tensor c = Tensor::FromVector(Shape({2}), {5, 6});
  const Tensor stacked = Stack({a, b, c});
  EXPECT_EQ(stacked.shape(), Shape({3, 2}));
  EXPECT_EQ(stacked.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(StackSplitTest, StackOfScalars) {
  const Tensor stacked = Stack({Tensor(1.0f), Tensor(2.0f)});
  EXPECT_EQ(stacked.shape(), Shape({2}));
}

TEST(StackSplitTest, StackRejectsMismatchedShapes) {
  EXPECT_THROW(Stack({Tensor::Zeros(Shape({2})), Tensor::Zeros(Shape({3}))}),
               InternalError);
}

TEST(StackSplitTest, SplitRoundTripsConcat) {
  Rng rng(1);
  const Tensor x = Tensor::RandomUniform(Shape({4, 6}), rng, -1, 1);
  const auto pieces = Split(x, 3, 1);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].shape(), Shape({4, 2}));
  EXPECT_EQ(Concat(pieces, 1).ToVector(), x.ToVector());
}

TEST(StackSplitTest, SplitAlongLeadingAxis) {
  const Tensor x = Tensor::FromVector(Shape({4, 2}),
                                      {1, 2, 3, 4, 5, 6, 7, 8});
  const auto halves = Split(x, 2, 0);
  EXPECT_EQ(halves[0].ToVector(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(halves[1].ToVector(), (std::vector<float>{5, 6, 7, 8}));
}

TEST(StackSplitTest, SplitRejectsUnevenDivision) {
  EXPECT_THROW(Split(Tensor::Zeros(Shape({5, 2})), 2, 0), InternalError);
}

TEST(StackSplitTest, GradientsFlowThroughStackAndSplit) {
  const Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  const auto [value, grad] = ad::ValueWithGradient(x, [](const Tensor& t) {
    const auto halves = Split(t, 2, 0);
    const Tensor restacked = Stack({halves[1], halves[0]});  // swap order
    return ReduceSum(Square(restacked) * 2.0f);
  });
  EXPECT_NEAR(value.ScalarValue(), 2.0f * (1 + 4 + 9 + 16), 1e-5);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{4, 8, 12, 16}));
}

TEST(ScalarOperatorTest, FloatMinusTensorStaysOnDevice) {
  const Tensor t = Tensor::FromVector(Shape({3}), {1, 2, 3});
  EXPECT_EQ((10.0f - t).ToVector(), (std::vector<float>{9, 8, 7}));
}

TEST(ScalarOperatorTest, FloatDividedByTensor) {
  const Tensor t = Tensor::FromVector(Shape({3}), {1, 2, 4});
  EXPECT_EQ((8.0f / t).ToVector(), (std::vector<float>{8, 4, 2}));
}

TEST(DebugStringTest, RendersShapeDeviceAndValues) {
  const Tensor t = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const std::string s = ToDebugString(t, 4);
  EXPECT_NE(s.find("Tensor[2, 3]"), std::string::npos);
  EXPECT_NE(s.find("cpu:naive"), std::string::npos);
  EXPECT_NE(s.find("[1, 2, 3, 4, ...]"), std::string::npos);
  // Small tensors show everything, no ellipsis.
  const std::string full = ToDebugString(Tensor(7.0f));
  EXPECT_NE(full.find("[7]"), std::string::npos);
  EXPECT_EQ(full.find("..."), std::string::npos);
}

TEST(AllFiniteTest, CatchesNaNAndInfAnywhereInTheBuffer) {
  Rng rng(7);
  Tensor t = Tensor::RandomNormal(Shape({31, 17}), rng);
  EXPECT_TRUE(AllFinite(t));
  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    std::vector<float> data = t.ToVector();
    data[data.size() - 1] = bad;
    EXPECT_FALSE(AllFinite(Tensor::FromVector(t.shape(), data)));
    data[data.size() - 1] = 1.0f;
    data[0] = bad;
    EXPECT_FALSE(AllFinite(Tensor::FromVector(t.shape(), data)));
  }
  EXPECT_TRUE(AllFinite(Tensor(0.0f)));
}

TEST(AllFiniteTest, VerdictIsIdenticalForEveryThreadCount) {
  // AllFiniteSpan scans with ParallelForRange; the AND-fold is
  // commutative, so the verdict is the same for any intra-op pool size.
  std::vector<float> data(10000, 0.5f);
  data[9973] = std::numeric_limits<float>::quiet_NaN();
  const Tensor poisoned = Tensor::FromVector(Shape({10000}), data);
  data[9973] = 0.5f;
  const Tensor clean = Tensor::FromVector(Shape({10000}), data);
  for (const int threads : {1, 2, 4}) {
    SetIntraOpThreads(threads);
    EXPECT_FALSE(AllFinite(poisoned)) << "threads " << threads;
    EXPECT_TRUE(AllFinite(clean)) << "threads " << threads;
  }
  SetIntraOpThreads(0);
}

TEST(AllCloseTest, NonFiniteValuesNeverCompareClose) {
  const Tensor a = Tensor::FromVector(Shape({2}), {1.0f, 2.0f});
  EXPECT_TRUE(AllClose(a, a));
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Inf vs Inf used to slip through the |x - y| tolerance test as
  // NaN > atol == false; AllClose now routes both sides through
  // AllFinite, so any non-finite input is a mismatch.
  EXPECT_FALSE(AllClose(Tensor::FromVector(Shape({2}), {1.0f, inf}),
                        Tensor::FromVector(Shape({2}), {1.0f, inf})));
  EXPECT_FALSE(AllClose(Tensor::FromVector(Shape({2}), {1.0f, nan}),
                        Tensor::FromVector(Shape({2}), {1.0f, nan})));
  EXPECT_FALSE(AllClose(Tensor::FromVector(Shape({2}), {1.0f, 2.0f}),
                        Tensor::FromVector(Shape({2}), {1.0f, inf})));
}

TEST(ScalarOperatorTest, GradOfFloatMinusTensor) {
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor grad = ad::GradientAt(
      x, [](const Tensor& t) { return ReduceSum(Square(3.0f - t)); });
  // d/dx (3-x)^2 = -2(3-x).
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{-4, -2}));
}

}  // namespace
}  // namespace s4tf
