#include <cmath>
#include <gtest/gtest.h>

#include "ad/operators.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

TEST(StackSplitTest, StackAddsLeadingAxis) {
  const Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor b = Tensor::FromVector(Shape({2}), {3, 4});
  const Tensor c = Tensor::FromVector(Shape({2}), {5, 6});
  const Tensor stacked = Stack({a, b, c});
  EXPECT_EQ(stacked.shape(), Shape({3, 2}));
  EXPECT_EQ(stacked.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(StackSplitTest, StackOfScalars) {
  const Tensor stacked = Stack({Tensor(1.0f), Tensor(2.0f)});
  EXPECT_EQ(stacked.shape(), Shape({2}));
}

TEST(StackSplitTest, StackRejectsMismatchedShapes) {
  EXPECT_THROW(Stack({Tensor::Zeros(Shape({2})), Tensor::Zeros(Shape({3}))}),
               InternalError);
}

TEST(StackSplitTest, SplitRoundTripsConcat) {
  Rng rng(1);
  const Tensor x = Tensor::RandomUniform(Shape({4, 6}), rng, -1, 1);
  const auto pieces = Split(x, 3, 1);
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].shape(), Shape({4, 2}));
  EXPECT_EQ(Concat(pieces, 1).ToVector(), x.ToVector());
}

TEST(StackSplitTest, SplitAlongLeadingAxis) {
  const Tensor x = Tensor::FromVector(Shape({4, 2}),
                                      {1, 2, 3, 4, 5, 6, 7, 8});
  const auto halves = Split(x, 2, 0);
  EXPECT_EQ(halves[0].ToVector(), (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(halves[1].ToVector(), (std::vector<float>{5, 6, 7, 8}));
}

TEST(StackSplitTest, SplitRejectsUnevenDivision) {
  EXPECT_THROW(Split(Tensor::Zeros(Shape({5, 2})), 2, 0), InternalError);
}

TEST(StackSplitTest, GradientsFlowThroughStackAndSplit) {
  const Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  const auto [value, grad] = ad::ValueWithGradient(x, [](const Tensor& t) {
    const auto halves = Split(t, 2, 0);
    const Tensor restacked = Stack({halves[1], halves[0]});  // swap order
    return ReduceSum(Square(restacked) * 2.0f);
  });
  EXPECT_NEAR(value.ScalarValue(), 2.0f * (1 + 4 + 9 + 16), 1e-5);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{4, 8, 12, 16}));
}

TEST(ScalarOperatorTest, FloatMinusTensorStaysOnDevice) {
  const Tensor t = Tensor::FromVector(Shape({3}), {1, 2, 3});
  EXPECT_EQ((10.0f - t).ToVector(), (std::vector<float>{9, 8, 7}));
}

TEST(ScalarOperatorTest, FloatDividedByTensor) {
  const Tensor t = Tensor::FromVector(Shape({3}), {1, 2, 4});
  EXPECT_EQ((8.0f / t).ToVector(), (std::vector<float>{8, 4, 2}));
}

TEST(DebugStringTest, RendersShapeDeviceAndValues) {
  const Tensor t = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const std::string s = ToDebugString(t, 4);
  EXPECT_NE(s.find("Tensor[2, 3]"), std::string::npos);
  EXPECT_NE(s.find("cpu:naive"), std::string::npos);
  EXPECT_NE(s.find("[1, 2, 3, 4, ...]"), std::string::npos);
  // Small tensors show everything, no ellipsis.
  const std::string full = ToDebugString(Tensor(7.0f));
  EXPECT_NE(full.find("[7]"), std::string::npos);
  EXPECT_EQ(full.find("..."), std::string::npos);
}

TEST(ScalarOperatorTest, GradOfFloatMinusTensor) {
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor grad = ad::GradientAt(
      x, [](const Tensor& t) { return ReduceSum(Square(3.0f - t)); });
  // d/dx (3-x)^2 = -2(3-x).
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{-4, -2}));
}

}  // namespace
}  // namespace s4tf
