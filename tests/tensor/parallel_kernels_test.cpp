// Bit-exact determinism of the parallel CPU kernels: every kernel shards
// only disjoint output slices, so its result must be identical — not just
// close — for any intra-op thread count.
#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace s4tf {
namespace {

Literal RandomLiteral(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<std::size_t>(shape.NumElements()));
  rng.FillUniform(values.data(), values.size(), -1.0f, 1.0f);
  return Literal::FromVector(shape, std::move(values));
}

// Evaluates `kind` with 1 thread and with 4, expecting bitwise-equal
// results (vector<float> operator== is exact; inputs are finite so there
// are no NaN comparisons to worry about).
void ExpectThreadCountInvariant(OpKind kind,
                                const std::vector<Literal>& inputs,
                                const OpAttrs& attrs = {}) {
  SetIntraOpParallelism(1);
  const std::vector<float> serial =
      EvalOpLiteral(kind, inputs, attrs).data.ToVector();
  SetIntraOpParallelism(4);
  const std::vector<float> parallel =
      EvalOpLiteral(kind, inputs, attrs).data.ToVector();
  SetIntraOpParallelism(0);
  EXPECT_EQ(serial, parallel) << "op " << OpName(kind);
}

TEST(ParallelKernelsTest, MatMulBitIdentical) {
  // Odd sizes so row shards don't divide evenly.
  const Literal a = RandomLiteral(Shape({37, 53}), 1);
  const Literal b = RandomLiteral(Shape({53, 29}), 2);
  ExpectThreadCountInvariant(OpKind::kMatMul, {a, b});
}

TEST(ParallelKernelsTest, Conv2DForwardAndGradsBitIdentical) {
  const Shape in_shape({3, 9, 11, 5});
  const Shape filter_shape({3, 3, 5, 7});
  const Literal input = RandomLiteral(in_shape, 3);
  const Literal filter = RandomLiteral(filter_shape, 4);
  OpAttrs attrs;
  attrs.padding = Padding::kSame;
  attrs.stride_h = attrs.stride_w = 2;
  ExpectThreadCountInvariant(OpKind::kConv2D, {input, filter}, attrs);

  const Shape out_shape =
      InferShape(OpKind::kConv2D, {in_shape, filter_shape}, attrs);
  const Literal grad_out = RandomLiteral(out_shape, 5);

  OpAttrs grad_in_attrs = attrs;
  grad_in_attrs.shape = in_shape.dims();
  ExpectThreadCountInvariant(OpKind::kConv2DBackpropInput,
                             {grad_out, filter}, grad_in_attrs);

  OpAttrs grad_filter_attrs = attrs;
  grad_filter_attrs.shape = filter_shape.dims();
  ExpectThreadCountInvariant(OpKind::kConv2DBackpropFilter,
                             {input, grad_out}, grad_filter_attrs);
}

TEST(ParallelKernelsTest, PoolingForwardAndGradsBitIdentical) {
  const Shape in_shape({3, 10, 10, 6});
  const Literal input = RandomLiteral(in_shape, 6);
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 3;
  attrs.stride_h = attrs.stride_w = 2;
  attrs.padding = Padding::kSame;  // overlapping windows + edge clipping
  ExpectThreadCountInvariant(OpKind::kMaxPool2D, {input}, attrs);
  ExpectThreadCountInvariant(OpKind::kAvgPool2D, {input}, attrs);

  const Shape out_shape = InferShape(OpKind::kMaxPool2D, {in_shape}, attrs);
  const Literal grad_out = RandomLiteral(out_shape, 7);
  ExpectThreadCountInvariant(OpKind::kMaxPool2DGrad, {input, grad_out},
                             attrs);
  OpAttrs avg_attrs = attrs;
  avg_attrs.shape = in_shape.dims();
  ExpectThreadCountInvariant(OpKind::kAvgPool2DGrad, {grad_out}, avg_attrs);
}

TEST(ParallelKernelsTest, ElementwiseAndSoftmaxBitIdentical) {
  const Literal x = RandomLiteral(Shape({33, 517}), 8);
  ExpectThreadCountInvariant(OpKind::kExp, {x});
  ExpectThreadCountInvariant(OpKind::kSigmoid, {x});
  ExpectThreadCountInvariant(OpKind::kSoftmax, {x});
  ExpectThreadCountInvariant(OpKind::kLogSoftmax, {x});

  const Literal y = RandomLiteral(Shape({33, 517}), 9);
  ExpectThreadCountInvariant(OpKind::kMul, {x, y});
  // Broadcast path exercises the seeded-odometer range iteration.
  const Literal row = RandomLiteral(Shape({517}), 10);
  ExpectThreadCountInvariant(OpKind::kAdd, {x, row});
  const Literal col = RandomLiteral(Shape({33, 1}), 11);
  ExpectThreadCountInvariant(OpKind::kDiv, {x, col});
}

}  // namespace
}  // namespace s4tf
