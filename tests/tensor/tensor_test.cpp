#include "tensor/tensor.h"

#include <cmath>
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "vs/cow_stats.h"

namespace s4tf {
namespace {

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.shape(), Shape({}));
  EXPECT_EQ(t.ScalarValue(), 0.0f);
}

TEST(TensorTest, ScalarLiteral) {
  Tensor t = 2.5f;
  EXPECT_EQ(t.ScalarValue(), 2.5f);
}

TEST(TensorTest, FactoriesProduceExpectedValues) {
  EXPECT_EQ(Tensor::Zeros(Shape({2, 2})).ToVector(),
            (std::vector<float>{0, 0, 0, 0}));
  EXPECT_EQ(Tensor::Ones(Shape({3})).ToVector(),
            (std::vector<float>{1, 1, 1}));
  EXPECT_EQ(Tensor::Full(Shape({2}), 7.0f).ToVector(),
            (std::vector<float>{7, 7}));
  EXPECT_EQ(Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4}).At({1, 0}), 3.0f);
}

TEST(TensorTest, RandomFactoriesAreDeterministic) {
  Rng a(3), b(3);
  const Tensor x = Tensor::RandomNormal(Shape({16}), a);
  const Tensor y = Tensor::RandomNormal(Shape({16}), b);
  EXPECT_EQ(x.ToVector(), y.ToVector());
}

TEST(TensorTest, GlorotUniformRespectsFanLimit) {
  Rng rng(4);
  const Tensor w = Tensor::GlorotUniform(Shape({100, 50}), rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  for (float v : w.ToVector()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(TensorTest, CopyIsO1AndValueSemantic) {
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3});
  vs::CowStatsScope stats;
  Tensor y = x;  // shares the impl
  EXPECT_EQ(stats.delta().buffer_allocations, 0);
  x.SetAt({0}, 99.0f);
  EXPECT_EQ(x.At({0}), 99.0f);
  EXPECT_EQ(y.At({0}), 1.0f);  // mutation invisible through y
}

TEST(TensorTest, SetAtOnUniqueTensorIsInPlace) {
  Tensor x = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  vs::CowStatsScope stats;
  x.SetAt({2}, 30.0f);
  EXPECT_EQ(stats.delta().deep_copies, 0);
  EXPECT_EQ(x.At({2}), 30.0f);
}

TEST(TensorTest, InPlaceAxpyFastPathWhenUnique) {
  Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3});
  const Tensor g = Tensor::FromVector(Shape({3}), {10, 10, 10});
  EXPECT_TRUE(x.InPlaceAxpy(-0.5f, g));
  EXPECT_EQ(x.ToVector(), (std::vector<float>{-4, -3, -2}));
}

TEST(TensorTest, InPlaceAxpyPreservesValueSemanticsWhenShared) {
  Tensor x = Tensor::FromVector(Shape({2}), {1, 1});
  Tensor y = x;  // impl shared
  const Tensor g = Tensor::FromVector(Shape({2}), {1, 1});
  EXPECT_FALSE(x.InPlaceAxpy(1.0f, g));  // fast path declined
  EXPECT_EQ(x.ToVector(), (std::vector<float>{2, 2}));
  EXPECT_EQ(y.ToVector(), (std::vector<float>{1, 1}));
}

TEST(TensorTest, AtChecksBounds) {
  const Tensor t = Tensor::Zeros(Shape({2, 2}));
  EXPECT_THROW(t.At({2, 0}), InternalError);
}

TEST(TensorTest, ScalarValueRejectsNonScalar) {
  EXPECT_THROW(Tensor::Zeros(Shape({2})).ScalarValue(), InternalError);
}

TEST(TensorTest, CrossDeviceOpRejected) {
  // Two distinct backend instances count as different devices.
  const Tensor a = Tensor::Zeros(Shape({2}));
  Device other(DeviceKind::kNaive, 1, &NaiveBackend(), "cpu:other");
  const Tensor b = Tensor::Zeros(Shape({2}), other);
  EXPECT_THROW(a + b, InternalError);
  // Transfer fixes it.
  const Tensor b_moved = b.To(a.device());
  EXPECT_NO_THROW(a + b_moved);
}

TEST(TensorOpsTest, ArithmeticOperators) {
  const Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  const Tensor b = Tensor::FromVector(Shape({3}), {4, 5, 6});
  EXPECT_EQ((a + b).ToVector(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ((b - a).ToVector(), (std::vector<float>{3, 3, 3}));
  EXPECT_EQ((a * b).ToVector(), (std::vector<float>{4, 10, 18}));
  EXPECT_EQ((b / a).ToVector(), (std::vector<float>{4, 2.5, 2}));
  EXPECT_EQ((-a).ToVector(), (std::vector<float>{-1, -2, -3}));
  EXPECT_EQ((a + 1.0f).ToVector(), (std::vector<float>{2, 3, 4}));
  EXPECT_EQ((2.0f * a).ToVector(), (std::vector<float>{2, 4, 6}));
  EXPECT_EQ((a / 2.0f).ToVector(), (std::vector<float>{0.5, 1, 1.5}));
}

TEST(TensorOpsTest, CompoundAssignmentRebinds) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor snapshot = a;
  a += Tensor::FromVector(Shape({2}), {10, 10});
  EXPECT_EQ(a.ToVector(), (std::vector<float>{11, 12}));
  EXPECT_EQ(snapshot.ToVector(), (std::vector<float>{1, 2}));
}

TEST(TensorOpsTest, MatMulAndTranspose) {
  const Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor at = Transposed(a);
  EXPECT_EQ(at.shape(), Shape({3, 2}));
  const Tensor prod = MatMul(a, at);
  EXPECT_EQ(prod.ToVector(), (std::vector<float>{14, 32, 32, 77}));
}

TEST(TensorOpsTest, FlattenBatch) {
  const Tensor x = Tensor::Zeros(Shape({4, 2, 3}));
  EXPECT_EQ(FlattenBatch(x).shape(), Shape({4, 6}));
}

TEST(TensorOpsTest, ReductionsAndSoftmax) {
  const Tensor x = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  EXPECT_EQ(ReduceSum(x).ScalarValue(), 10.0f);
  EXPECT_EQ(ReduceMean(x).ScalarValue(), 2.5f);
  EXPECT_EQ(ReduceMax(x).ScalarValue(), 4.0f);
  const Tensor sm = Softmax(x);
  const auto v = sm.ToVector();
  EXPECT_NEAR(v[0] + v[1], 1.0f, 1e-6);
  EXPECT_NEAR(v[2] + v[3], 1.0f, 1e-6);
}

TEST(TensorOpsTest, AllCloseToleratesSmallDiffs) {
  const Tensor a = Tensor::FromVector(Shape({2}), {1.0f, 2.0f});
  const Tensor b = Tensor::FromVector(Shape({2}), {1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  const Tensor c = Tensor::FromVector(Shape({2}), {1.1f, 2.0f});
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Tensor::Zeros(Shape({3}))));
}

TEST(DeviceTest, DefaultIsNaive) {
  EXPECT_EQ(Device::Current().kind(), DeviceKind::kNaive);
  EXPECT_EQ(Device::Current().name(), "cpu:naive");
}

TEST(DeviceTest, WithDeviceScopes) {
  Device other(DeviceKind::kNaive, 7, &NaiveBackend(), "cpu:scoped");
  WithDevice(other, [&] {
    EXPECT_EQ(Device::Current().ordinal(), 7);
    Device inner(DeviceKind::kNaive, 8, &NaiveBackend(), "cpu:inner");
    WithDevice(inner, [&] {
      EXPECT_EQ(Device::Current().ordinal(), 8);
      return 0;
    });
    EXPECT_EQ(Device::Current().ordinal(), 7);
    return 0;
  });
  EXPECT_EQ(Device::Current().ordinal(), 0);
}

TEST(DeviceTest, TensorCreationUsesScopedDevice) {
  Device other(DeviceKind::kNaive, 3, &NaiveBackend(), "cpu:three");
  WithDevice(other, [&] {
    const Tensor t = Tensor::Zeros(Shape({1}));
    EXPECT_EQ(t.device().ordinal(), 3);
    return 0;
  });
}

}  // namespace
}  // namespace s4tf
