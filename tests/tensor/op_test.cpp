#include "tensor/op.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "support/error.h"

namespace s4tf {
namespace {

TEST(OpTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int k = 0; k < static_cast<int>(OpKind::kNumOps); ++k) {
    const std::string name = OpName(static_cast<OpKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate op name " << name;
  }
}

TEST(OpTest, ArityMatchesVocabulary) {
  EXPECT_EQ(OpArity(OpKind::kConstant), 0);
  EXPECT_EQ(OpArity(OpKind::kExp), 1);
  EXPECT_EQ(OpArity(OpKind::kAdd), 2);
  EXPECT_EQ(OpArity(OpKind::kSelect), 3);
  EXPECT_EQ(OpArity(OpKind::kConcat), -1);
}

TEST(OpTest, ElementwiseClassification) {
  EXPECT_TRUE(IsElementwise(OpKind::kAdd));
  EXPECT_TRUE(IsElementwise(OpKind::kRelu));
  EXPECT_TRUE(IsElementwise(OpKind::kSelect));
  EXPECT_FALSE(IsElementwise(OpKind::kMatMul));
  EXPECT_FALSE(IsElementwise(OpKind::kReduceSum));
  EXPECT_FALSE(IsElementwise(OpKind::kReshape));
  EXPECT_FALSE(IsElementwise(OpKind::kSoftmax));
}

TEST(InferShapeTest, ElementwiseBroadcasts) {
  EXPECT_EQ(InferShape(OpKind::kAdd, {Shape({2, 1}), Shape({1, 3})}, {}),
            Shape({2, 3}));
  EXPECT_EQ(InferShape(OpKind::kMul, {Shape({4}), Shape({})}, {}),
            Shape({4}));
}

TEST(InferShapeTest, MatMul) {
  EXPECT_EQ(InferShape(OpKind::kMatMul, {Shape({3, 4}), Shape({4, 5})}, {}),
            Shape({3, 5}));
  EXPECT_THROW(
      InferShape(OpKind::kMatMul, {Shape({3, 4}), Shape({5, 6})}, {}),
      InternalError);
  EXPECT_THROW(
      InferShape(OpKind::kMatMul, {Shape({3, 4, 5}), Shape({5, 6})}, {}),
      InternalError);
}

TEST(InferShapeTest, ReshapeChecksElementCount) {
  OpAttrs attrs;
  attrs.shape = {6};
  EXPECT_EQ(InferShape(OpKind::kReshape, {Shape({2, 3})}, attrs), Shape({6}));
  attrs.shape = {7};
  EXPECT_THROW(InferShape(OpKind::kReshape, {Shape({2, 3})}, attrs),
               InternalError);
}

TEST(InferShapeTest, TransposePermutes) {
  OpAttrs attrs;
  attrs.axes = {2, 0, 1};
  EXPECT_EQ(InferShape(OpKind::kTranspose, {Shape({2, 3, 4})}, attrs),
            Shape({4, 2, 3}));
  attrs.axes = {0, 0, 1};  // duplicate
  EXPECT_THROW(InferShape(OpKind::kTranspose, {Shape({2, 3, 4})}, attrs),
               InternalError);
}

TEST(InferShapeTest, ReduceRespectsAxesAndKeepDims) {
  OpAttrs attrs;
  attrs.axes = {1};
  EXPECT_EQ(InferShape(OpKind::kReduceSum, {Shape({2, 3, 4})}, attrs),
            Shape({2, 4}));
  attrs.keep_dims = true;
  EXPECT_EQ(InferShape(OpKind::kReduceSum, {Shape({2, 3, 4})}, attrs),
            Shape({2, 1, 4}));
  attrs = OpAttrs{};  // all axes
  EXPECT_EQ(InferShape(OpKind::kReduceMean, {Shape({2, 3})}, attrs),
            Shape({}));
}

struct ConvCase {
  Shape input, filter;
  std::int64_t stride;
  Padding padding;
  Shape expected;
};

class ConvShapeTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeTest, InfersOutput) {
  const auto& c = GetParam();
  OpAttrs attrs;
  attrs.stride_h = attrs.stride_w = c.stride;
  attrs.padding = c.padding;
  EXPECT_EQ(InferShape(OpKind::kConv2D, {c.input, c.filter}, attrs),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvShapeTest,
    ::testing::Values(
        // LeNet conv1: 28x28x1, 5x5x1x6, SAME -> 28x28x6.
        ConvCase{Shape({1, 28, 28, 1}), Shape({5, 5, 1, 6}), 1,
                 Padding::kSame, Shape({1, 28, 28, 6})},
        // LeNet conv2: 14x14x6, 5x5x6x16, VALID -> 10x10x16.
        ConvCase{Shape({1, 14, 14, 6}), Shape({5, 5, 6, 16}), 1,
                 Padding::kValid, Shape({1, 10, 10, 16})},
        // ResNet stem-ish: stride 2 SAME halves spatial dims (ceil).
        ConvCase{Shape({4, 32, 32, 3}), Shape({3, 3, 3, 16}), 2,
                 Padding::kSame, Shape({4, 16, 16, 16})},
        ConvCase{Shape({2, 7, 7, 8}), Shape({7, 7, 8, 32}), 1,
                 Padding::kValid, Shape({2, 1, 1, 32})}));

TEST(InferShapeTest, ConvChannelMismatchRejected) {
  OpAttrs attrs;
  EXPECT_THROW(InferShape(OpKind::kConv2D,
                          {Shape({1, 8, 8, 3}), Shape({3, 3, 4, 8})}, attrs),
               InternalError);
}

TEST(InferShapeTest, PoolGeometry) {
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 2;
  attrs.stride_h = attrs.stride_w = 2;
  EXPECT_EQ(InferShape(OpKind::kAvgPool2D, {Shape({1, 28, 28, 6})}, attrs),
            Shape({1, 14, 14, 6}));
  EXPECT_EQ(InferShape(OpKind::kMaxPool2D, {Shape({1, 10, 10, 16})}, attrs),
            Shape({1, 5, 5, 16}));
}

TEST(InferShapeTest, SliceAndPad) {
  OpAttrs slice;
  slice.starts = {1, 2};
  slice.shape = {2, 3};
  EXPECT_EQ(InferShape(OpKind::kSlice, {Shape({4, 6})}, slice), Shape({2, 3}));
  slice.starts = {3, 2};
  EXPECT_THROW(InferShape(OpKind::kSlice, {Shape({4, 6})}, slice),
               InternalError);

  OpAttrs pad;
  pad.pads = {1, 2, 0, 3};
  EXPECT_EQ(InferShape(OpKind::kPad, {Shape({4, 6})}, pad), Shape({7, 9}));
}

TEST(InferShapeTest, ConcatSumsAxis) {
  OpAttrs attrs;
  attrs.axis = 1;
  EXPECT_EQ(InferShape(OpKind::kConcat,
                       {Shape({2, 3}), Shape({2, 5}), Shape({2, 1})}, attrs),
            Shape({2, 9}));
  EXPECT_THROW(InferShape(OpKind::kConcat, {Shape({2, 3}), Shape({3, 3})},
                          attrs),
               InternalError);
}

TEST(InferShapeTest, ArityMismatchRejected) {
  EXPECT_THROW(InferShape(OpKind::kAdd, {Shape({2})}, {}), InternalError);
  EXPECT_THROW(InferShape(OpKind::kExp, {Shape({2}), Shape({2})}, {}),
               InternalError);
}

TEST(OpFlopsTest, MatMulAndConvDominate) {
  EXPECT_EQ(OpFlops(OpKind::kMatMul, {Shape({2, 3}), Shape({3, 4})},
                    Shape({2, 4}), {}),
            2 * 2 * 3 * 4);
  OpAttrs attrs;
  const Shape in({1, 8, 8, 3});
  const Shape filt({3, 3, 3, 16});
  const Shape out = InferShape(OpKind::kConv2D, {in, filt}, attrs);
  EXPECT_EQ(OpFlops(OpKind::kConv2D, {in, filt}, out, attrs),
            2 * out.NumElements() * 3 * 3 * 3);
  EXPECT_EQ(OpFlops(OpKind::kAdd, {Shape({5}), Shape({5})}, Shape({5}), {}),
            5);
  EXPECT_EQ(OpFlops(OpKind::kReshape, {Shape({5})}, Shape({5}), {}), 0);
}

TEST(OpAttrsTest, HashDiscriminates) {
  OpAttrs a;
  OpAttrs b;
  EXPECT_EQ(a.Hash(0), b.Hash(0));
  b.scalar = 1.0f;
  EXPECT_NE(a.Hash(0), b.Hash(0));
  OpAttrs c;
  c.axes = {1};
  OpAttrs d;
  d.shape = {1};
  EXPECT_NE(c.Hash(0), d.Hash(0));  // same payload, different field
  OpAttrs e;
  e.stride_h = 2;
  OpAttrs f;
  f.stride_w = 2;
  EXPECT_NE(e.Hash(0), f.Hash(0));
}

}  // namespace
}  // namespace s4tf
