#include "tensor/shape.h"

#include <gtest/gtest.h>

#include "support/error.h"

namespace s4tf {
namespace {

TEST(ShapeTest, ScalarBasics) {
  Shape s({});
  EXPECT_EQ(s.rank(), 0);
  EXPECT_TRUE(s.IsScalar());
  EXPECT_EQ(s.NumElements(), 1);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, DimsAndNumElements) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, ZeroDimGivesZeroElements) {
  Shape s({3, 0, 2});
  EXPECT_EQ(s.NumElements(), 0);
}

TEST(ShapeTest, RowMajorStrides) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.Strides(), (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(ShapeTest, OffsetAndIndexRoundTrip) {
  Shape s({2, 3, 4});
  for (std::int64_t off = 0; off < s.NumElements(); ++off) {
    EXPECT_EQ(s.OffsetOf(s.IndexOf(off)), off);
  }
  EXPECT_EQ(s.OffsetOf({1, 2, 3}), 23);
}

TEST(ShapeTest, OffsetOfOutOfRangeThrows) {
  Shape s({2, 2});
  EXPECT_THROW(s.OffsetOf({2, 0}), InternalError);
  EXPECT_THROW(s.OffsetOf({0}), InternalError);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, NegativeDimRejected) {
  EXPECT_THROW(Shape({2, -1}), InternalError);
}

struct BroadcastCase {
  Shape a, b;
  bool compatible;
  Shape result;  // valid when compatible
};

class BroadcastTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastTest, CompatibilityAndResult) {
  const auto& c = GetParam();
  EXPECT_EQ(AreBroadcastCompatible(c.a, c.b), c.compatible);
  EXPECT_EQ(AreBroadcastCompatible(c.b, c.a), c.compatible);
  if (c.compatible) {
    EXPECT_EQ(BroadcastShapes(c.a, c.b), c.result);
    EXPECT_EQ(BroadcastShapes(c.b, c.a), c.result);
  } else {
    EXPECT_THROW(BroadcastShapes(c.a, c.b), InternalError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NumpyRules, BroadcastTest,
    ::testing::Values(
        BroadcastCase{Shape({2, 3}), Shape({2, 3}), true, Shape({2, 3})},
        BroadcastCase{Shape({2, 3}), Shape({3}), true, Shape({2, 3})},
        BroadcastCase{Shape({2, 1}), Shape({1, 5}), true, Shape({2, 5})},
        BroadcastCase{Shape({}), Shape({4, 7}), true, Shape({4, 7})},
        BroadcastCase{Shape({1}), Shape({3, 1}), true, Shape({3, 1})},
        BroadcastCase{Shape({8, 1, 6, 1}), Shape({7, 1, 5}), true,
                      Shape({8, 7, 6, 5})},
        BroadcastCase{Shape({2, 3}), Shape({2, 4}), false, Shape({})},
        BroadcastCase{Shape({3}), Shape({4}), false, Shape({})},
        // Zero-sized axes: size-1 stretches down to zero (NumPy rule).
        BroadcastCase{Shape({0, 3}), Shape({1, 3}), true, Shape({0, 3})},
        BroadcastCase{Shape({0}), Shape({}), true, Shape({0})},
        BroadcastCase{Shape({0}), Shape({3}), false, Shape({})}));

TEST(BroadcastReductionAxesTest, IdentifiesSummedAxes) {
  EXPECT_EQ(BroadcastReductionAxes(Shape({2, 3}), Shape({2, 3})),
            (std::vector<std::int64_t>{}));
  EXPECT_EQ(BroadcastReductionAxes(Shape({2, 3}), Shape({3})),
            (std::vector<std::int64_t>{0}));
  EXPECT_EQ(BroadcastReductionAxes(Shape({2, 3}), Shape({1, 3})),
            (std::vector<std::int64_t>{0}));
  EXPECT_EQ(BroadcastReductionAxes(Shape({4, 2, 3}), Shape({2, 1})),
            (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(BroadcastReductionAxes(Shape({2, 3}), Shape({})),
            (std::vector<std::int64_t>{0, 1}));
}

TEST(HashShapeTest, StableAndDiscriminating) {
  EXPECT_EQ(HashShape(Shape({2, 3}), 0), HashShape(Shape({2, 3}), 0));
  EXPECT_NE(HashShape(Shape({2, 3}), 0), HashShape(Shape({3, 2}), 0));
  // [2,3] vs [2,3,1]: rank participates.
  EXPECT_NE(HashShape(Shape({2, 3}), 0), HashShape(Shape({2, 3, 1}), 0));
  // [6] vs [2,3]: same element count, different shape.
  EXPECT_NE(HashShape(Shape({6}), 0), HashShape(Shape({2, 3}), 0));
}

}  // namespace
}  // namespace s4tf
