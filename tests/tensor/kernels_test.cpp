#include "tensor/kernels.h"

#include <cmath>
#include <gtest/gtest.h>

#include "support/rng.h"

namespace s4tf {
namespace {

Literal L(const Shape& s, std::vector<float> v) {
  return Literal::FromVector(s, std::move(v));
}

std::vector<float> Eval(OpKind kind, const std::vector<Literal>& inputs,
                        const OpAttrs& attrs = {}) {
  return EvalOpLiteral(kind, inputs, attrs).data.ToVector();
}

TEST(KernelsTest, UnaryElementwise) {
  const Literal x = L(Shape({4}), {-1.0f, 0.0f, 1.0f, 2.0f});
  EXPECT_EQ(Eval(OpKind::kNeg, {x}), (std::vector<float>{1, 0, -1, -2}));
  EXPECT_EQ(Eval(OpKind::kRelu, {x}), (std::vector<float>{0, 0, 1, 2}));
  EXPECT_EQ(Eval(OpKind::kSquare, {x}), (std::vector<float>{1, 0, 1, 4}));
  EXPECT_EQ(Eval(OpKind::kAbs, {x}), (std::vector<float>{1, 0, 1, 2}));
  const auto e = Eval(OpKind::kExp, {x});
  EXPECT_NEAR(e[0], std::exp(-1.0f), 1e-6);
  EXPECT_NEAR(e[3], std::exp(2.0f), 1e-5);
  const auto t = Eval(OpKind::kTanh, {x});
  EXPECT_NEAR(t[3], std::tanh(2.0f), 1e-6);
  const auto s = Eval(OpKind::kSigmoid, {x});
  EXPECT_NEAR(s[1], 0.5f, 1e-6);
}

TEST(KernelsTest, ScalarAttrOps) {
  const Literal x = L(Shape({3}), {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(Eval(OpKind::kAddScalar, {x}, OpAttrs{.scalar = 10.0f}),
            (std::vector<float>{11, 12, 13}));
  EXPECT_EQ(Eval(OpKind::kMulScalar, {x}, OpAttrs{.scalar = -2.0f}),
            (std::vector<float>{-2, -4, -6}));
  const auto p = Eval(OpKind::kPowScalar, {x}, OpAttrs{.scalar = 2.0f});
  EXPECT_EQ(p, (std::vector<float>{1, 4, 9}));
  const auto lr = Eval(OpKind::kLeakyRelu, {L(Shape({2}), {-4.0f, 4.0f})},
                       OpAttrs{.scalar = 0.25f});
  EXPECT_EQ(lr, (std::vector<float>{-1, 4}));
}

TEST(KernelsTest, BinarySameShape) {
  const Literal a = L(Shape({2, 2}), {1, 2, 3, 4});
  const Literal b = L(Shape({2, 2}), {10, 20, 30, 40});
  EXPECT_EQ(Eval(OpKind::kAdd, {a, b}), (std::vector<float>{11, 22, 33, 44}));
  EXPECT_EQ(Eval(OpKind::kSub, {b, a}), (std::vector<float>{9, 18, 27, 36}));
  EXPECT_EQ(Eval(OpKind::kMul, {a, b}),
            (std::vector<float>{10, 40, 90, 160}));
  EXPECT_EQ(Eval(OpKind::kDiv, {b, a}), (std::vector<float>{10, 10, 10, 10}));
  EXPECT_EQ(Eval(OpKind::kMaximum, {a, b}), b.data.ToVector());
  EXPECT_EQ(Eval(OpKind::kMinimum, {a, b}), a.data.ToVector());
  EXPECT_EQ(Eval(OpKind::kGreater, {a, b}), (std::vector<float>{0, 0, 0, 0}));
  EXPECT_EQ(Eval(OpKind::kGreater, {b, a}), (std::vector<float>{1, 1, 1, 1}));
}

TEST(KernelsTest, BinaryBroadcastRowAndColumn) {
  const Literal m = L(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Literal row = L(Shape({3}), {10, 20, 30});
  const Literal col = L(Shape({2, 1}), {100, 200});
  EXPECT_EQ(Eval(OpKind::kAdd, {m, row}),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
  EXPECT_EQ(Eval(OpKind::kAdd, {m, col}),
            (std::vector<float>{101, 102, 103, 204, 205, 206}));
  // Scalar against matrix.
  EXPECT_EQ(Eval(OpKind::kMul, {m, Literal::Scalar(2.0f)}),
            (std::vector<float>{2, 4, 6, 8, 10, 12}));
  // Column against row: outer sum.
  EXPECT_EQ(Eval(OpKind::kAdd, {col, row}),
            (std::vector<float>{110, 120, 130, 210, 220, 230}));
}

TEST(KernelsTest, SelectPicksByCondition) {
  const Literal c = L(Shape({4}), {1, 0, 1, 0});
  const Literal a = L(Shape({4}), {1, 2, 3, 4});
  const Literal b = L(Shape({4}), {-1, -2, -3, -4});
  EXPECT_EQ(Eval(OpKind::kSelect, {c, a, b}),
            (std::vector<float>{1, -2, 3, -4}));
}

TEST(KernelsTest, ReshapeSharesBuffer) {
  const Literal x = L(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Literal y =
      EvalOpLiteral(OpKind::kReshape, {x}, OpAttrs{.shape = {3, 2}});
  EXPECT_EQ(y.shape, Shape({3, 2}));
  EXPECT_TRUE(y.data.SharesStorageWith(x.data));  // O(1) reshape
}

TEST(KernelsTest, Transpose2D) {
  const Literal x = L(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Eval(OpKind::kTranspose, {x}, OpAttrs{.axes = {1, 0}}),
            (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(KernelsTest, Transpose3DArbitraryPerm) {
  // x[i][j][k] = 100i + 10j + k over [2,3,4].
  std::vector<float> v;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 4; ++k) v.push_back(100.f * i + 10.f * j + k);
  const Literal x = L(Shape({2, 3, 4}), v);
  const Literal y =
      EvalOpLiteral(OpKind::kTranspose, {x}, OpAttrs{.axes = {2, 0, 1}});
  EXPECT_EQ(y.shape, Shape({4, 2, 3}));
  // y[k][i][j] == x[i][j][k]
  for (int k = 0; k < 4; ++k)
    for (int i = 0; i < 2; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_EQ(y.data[static_cast<std::size_t>((k * 2 + i) * 3 + j)],
                  100.f * i + 10.f * j + k);
}

TEST(KernelsTest, BroadcastToMaterializes) {
  const Literal x = L(Shape({2, 1}), {5, 7});
  EXPECT_EQ(Eval(OpKind::kBroadcastTo, {x}, OpAttrs{.shape = {2, 3}}),
            (std::vector<float>{5, 5, 5, 7, 7, 7}));
}

TEST(KernelsTest, SlicePadRoundTrip) {
  const Literal x = L(Shape({3, 4}), {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const Literal s = EvalOpLiteral(
      OpKind::kSlice, {x}, OpAttrs{.shape = {2, 2}, .starts = {1, 1}});
  EXPECT_EQ(s.data.ToVector(), (std::vector<float>{5, 6, 9, 10}));
  const Literal p = EvalOpLiteral(
      OpKind::kPad, {s}, OpAttrs{.pads = {1, 0, 1, 1}, .scalar = -1.0f});
  EXPECT_EQ(p.shape, Shape({3, 4}));
  EXPECT_EQ(p.data.ToVector(),
            (std::vector<float>{-1, -1, -1, -1, -1, 5, 6, -1, -1, 9, 10, -1}));
}

TEST(KernelsTest, ConcatAlongEachAxis) {
  const Literal a = L(Shape({1, 2}), {1, 2});
  const Literal b = L(Shape({2, 2}), {3, 4, 5, 6});
  const Literal r0 = EvalOpLiteral(OpKind::kConcat, {a, b},
                                   OpAttrs{.axis = 0});
  EXPECT_EQ(r0.data.ToVector(), (std::vector<float>{1, 2, 3, 4, 5, 6}));

  const Literal c = L(Shape({2, 1}), {7, 8});
  const Literal r1 = EvalOpLiteral(OpKind::kConcat, {b, c},
                                   OpAttrs{.axis = 1});
  EXPECT_EQ(r1.shape, Shape({2, 3}));
  EXPECT_EQ(r1.data.ToVector(), (std::vector<float>{3, 4, 7, 5, 6, 8}));
}

TEST(KernelsTest, Reductions) {
  const Literal x = L(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Eval(OpKind::kReduceSum, {x}), (std::vector<float>{21}));
  EXPECT_EQ(Eval(OpKind::kReduceSum, {x}, OpAttrs{.axes = {0}}),
            (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(Eval(OpKind::kReduceSum, {x}, OpAttrs{.axes = {1}}),
            (std::vector<float>{6, 15}));
  EXPECT_EQ(Eval(OpKind::kReduceMean, {x}, OpAttrs{.axes = {1}}),
            (std::vector<float>{2, 5}));
  EXPECT_EQ(Eval(OpKind::kReduceMax, {x}, OpAttrs{.axes = {0}}),
            (std::vector<float>{4, 5, 6}));
  // keep_dims preserves rank.
  const Literal k = EvalOpLiteral(
      OpKind::kReduceSum, {x}, OpAttrs{.axes = {1}, .keep_dims = true});
  EXPECT_EQ(k.shape, Shape({2, 1}));
}

TEST(KernelsTest, ReduceMultipleAxes) {
  std::vector<float> v(24);
  for (int i = 0; i < 24; ++i) v[static_cast<std::size_t>(i)] = 1.0f;
  const Literal x = L(Shape({2, 3, 4}), v);
  EXPECT_EQ(Eval(OpKind::kReduceSum, {x}, OpAttrs{.axes = {0, 2}}),
            (std::vector<float>{8, 8, 8}));
}

TEST(KernelsTest, ArgMax) {
  const Literal x = L(Shape({2, 4}), {1, 9, 3, 4, 8, 2, 8, 1});
  EXPECT_EQ(Eval(OpKind::kArgMax, {x}, OpAttrs{.axis = 1}),
            (std::vector<float>{1, 0}));  // ties -> first index
  EXPECT_EQ(Eval(OpKind::kArgMax, {x}, OpAttrs{.axis = 0}),
            (std::vector<float>{1, 0, 1, 0}));
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  const Literal x = L(Shape({2, 3}), {1, 2, 3, 1000, 1000, 1000});
  const auto y = Eval(OpKind::kSoftmax, {x});
  EXPECT_NEAR(y[0] + y[1] + y[2], 1.0f, 1e-6);
  EXPECT_NEAR(y[3], 1.0f / 3, 1e-6);  // numerically stable at 1000
  EXPECT_GT(y[2], y[1]);
  const auto ls = Eval(OpKind::kLogSoftmax, {x});
  EXPECT_NEAR(std::exp(ls[0]), y[0], 1e-6);
}

TEST(KernelsTest, MatMulSmallKnown) {
  const Literal a = L(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Literal b = L(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  EXPECT_EQ(Eval(OpKind::kMatMul, {a, b}),
            (std::vector<float>{58, 64, 139, 154}));
}

TEST(KernelsTest, MatMulIdentity) {
  Rng rng(5);
  std::vector<float> v(9);
  rng.FillUniform(v.data(), 9, -1, 1);
  const Literal a = L(Shape({3, 3}), v);
  const Literal eye = L(Shape({3, 3}), {1, 0, 0, 0, 1, 0, 0, 0, 1});
  EXPECT_EQ(Eval(OpKind::kMatMul, {a, eye}), v);
  EXPECT_EQ(Eval(OpKind::kMatMul, {eye, a}), v);
}

TEST(KernelsTest, Conv2DIdentityKernel) {
  // 1x1 kernel with weight 1 is identity.
  std::vector<float> v(16);
  for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = i;
  const Literal x = L(Shape({1, 4, 4, 1}), v);
  const Literal k1 = L(Shape({1, 1, 1, 1}), {1});
  EXPECT_EQ(Eval(OpKind::kConv2D, {x, k1}), v);
}

TEST(KernelsTest, Conv2DBoxFilterValid) {
  // 2x2 all-ones filter on a 3x3 ramp, VALID: each output = sum of window.
  const Literal x = L(Shape({1, 3, 3, 1}), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Literal k = L(Shape({2, 2, 1, 1}), {1, 1, 1, 1});
  EXPECT_EQ(Eval(OpKind::kConv2D, {x, k}),
            (std::vector<float>{12, 16, 24, 28}));
}

TEST(KernelsTest, Conv2DSamePaddingKeepsSize) {
  const Literal x = L(Shape({1, 3, 3, 1}), {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Literal k = L(Shape({3, 3, 1, 1}), {0, 0, 0, 0, 1, 0, 0, 0, 0});
  // Center-tap 3x3 SAME conv is identity.
  const Literal y =
      EvalOpLiteral(OpKind::kConv2D, {x, k}, OpAttrs{.padding = Padding::kSame});
  EXPECT_EQ(y.shape, Shape({1, 3, 3, 1}));
  EXPECT_EQ(y.data.ToVector(), x.data.ToVector());
}

TEST(KernelsTest, Conv2DMultiChannel) {
  // 2 input channels, 1x1 filter summing channels with weights (2, 3).
  const Literal x = L(Shape({1, 1, 2, 2}), {1, 10, 2, 20});
  const Literal k = L(Shape({1, 1, 2, 1}), {2, 3});
  EXPECT_EQ(Eval(OpKind::kConv2D, {x, k}), (std::vector<float>{32, 64}));
}

TEST(KernelsTest, AvgAndMaxPool) {
  const Literal x =
      L(Shape({1, 4, 4, 1}),
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 2;
  attrs.stride_h = attrs.stride_w = 2;
  EXPECT_EQ(Eval(OpKind::kAvgPool2D, {x}, attrs),
            (std::vector<float>{3.5, 5.5, 11.5, 13.5}));
  EXPECT_EQ(Eval(OpKind::kMaxPool2D, {x}, attrs),
            (std::vector<float>{6, 8, 14, 16}));
}

TEST(KernelsTest, AvgPoolGradDistributesEvenly) {
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 2;
  attrs.stride_h = attrs.stride_w = 2;
  attrs.shape = {1, 4, 4, 1};
  const Literal g = L(Shape({1, 2, 2, 1}), {4, 8, 12, 16});
  const auto r = Eval(OpKind::kAvgPool2DGrad, {g}, attrs);
  // Each input in a window receives grad/4.
  EXPECT_EQ(r, (std::vector<float>{1, 1, 2, 2, 1, 1, 2, 2, 3, 3, 4, 4, 3, 3,
                                   4, 4}));
}

TEST(KernelsTest, MaxPoolGradRoutesToArgmax) {
  const Literal x =
      L(Shape({1, 2, 2, 1}), {1, 9, 3, 4});
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 2;
  attrs.stride_h = attrs.stride_w = 2;
  const Literal g = L(Shape({1, 1, 1, 1}), {5});
  EXPECT_EQ(Eval(OpKind::kMaxPool2DGrad, {x, g}, attrs),
            (std::vector<float>{0, 5, 0, 0}));
}

// Property: Conv2DBackpropInput/Filter are the true adjoints of Conv2D:
// <conv(x, f), g> == <x, conv_bp_input(g, f)> == <f, conv_bp_filter(x, g)>.
struct ConvAdjointCase {
  Shape input, filter;
  std::int64_t stride;
  Padding padding;
};

class ConvAdjointTest : public ::testing::TestWithParam<ConvAdjointCase> {};

float Dot(const Literal& a, const Literal& b) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    acc += a.data[static_cast<std::size_t>(i)] *
           b.data[static_cast<std::size_t>(i)];
  }
  return acc;
}

TEST_P(ConvAdjointTest, AdjointIdentity) {
  const auto& c = GetParam();
  Rng rng(99);
  std::vector<float> xv(static_cast<std::size_t>(c.input.NumElements()));
  std::vector<float> fv(static_cast<std::size_t>(c.filter.NumElements()));
  rng.FillUniform(xv.data(), xv.size(), -1, 1);
  rng.FillUniform(fv.data(), fv.size(), -1, 1);
  const Literal x = L(c.input, xv);
  const Literal f = L(c.filter, fv);
  OpAttrs attrs;
  attrs.stride_h = attrs.stride_w = c.stride;
  attrs.padding = c.padding;
  const Literal y = EvalOpLiteral(OpKind::kConv2D, {x, f}, attrs);
  std::vector<float> gv(static_cast<std::size_t>(y.shape.NumElements()));
  rng.FillUniform(gv.data(), gv.size(), -1, 1);
  const Literal g = L(y.shape, gv);

  OpAttrs in_attrs = attrs;
  in_attrs.shape = c.input.dims();
  const Literal gx =
      EvalOpLiteral(OpKind::kConv2DBackpropInput, {g, f}, in_attrs);
  OpAttrs f_attrs = attrs;
  f_attrs.shape = c.filter.dims();
  const Literal gf =
      EvalOpLiteral(OpKind::kConv2DBackpropFilter, {x, g}, f_attrs);

  const float lhs = Dot(y, g);
  EXPECT_NEAR(lhs, Dot(x, gx), 1e-3 * std::max(1.0f, std::fabs(lhs)));
  EXPECT_NEAR(lhs, Dot(f, gf), 1e-3 * std::max(1.0f, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvAdjointTest,
    ::testing::Values(
        ConvAdjointCase{Shape({1, 5, 5, 1}), Shape({3, 3, 1, 2}), 1,
                        Padding::kValid},
        ConvAdjointCase{Shape({2, 6, 6, 3}), Shape({3, 3, 3, 4}), 1,
                        Padding::kSame},
        ConvAdjointCase{Shape({1, 8, 8, 2}), Shape({3, 3, 2, 2}), 2,
                        Padding::kSame},
        ConvAdjointCase{Shape({2, 7, 5, 2}), Shape({2, 3, 2, 3}), 1,
                        Padding::kValid},
        ConvAdjointCase{Shape({1, 9, 9, 1}), Shape({5, 5, 1, 6}), 2,
                        Padding::kValid}));

TEST(KernelsTest, CrossReplicaSumIsIdentityOnOneReplica) {
  const Literal x = L(Shape({3}), {1, 2, 3});
  EXPECT_EQ(Eval(OpKind::kCrossReplicaSum, {x}), x.data.ToVector());
}

}  // namespace
}  // namespace s4tf
