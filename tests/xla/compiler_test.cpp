#include "xla/compiler.h"

#include <cmath>
#include <gtest/gtest.h>

namespace s4tf::xla {
namespace {

// relu(a*b + c) elementwise over [64].
HloModule ElementwiseChain() {
  HloModule m("chain");
  const HloId a = m.AddParameter(Shape({64}), 0);
  const HloId b = m.AddParameter(Shape({64}), 1);
  const HloId c = m.AddParameter(Shape({64}), 2);
  const HloId mul = m.AddInstruction(OpKind::kMul, {a, b});
  const HloId add = m.AddInstruction(OpKind::kAdd, {mul, c});
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {add}));
  return m;
}

TEST(HloCseTest, DeduplicatesIdenticalSubexpressions) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({8}), 0);
  const HloId s1 = m.AddInstruction(OpKind::kSquare, {p});
  const HloId s2 = m.AddInstruction(OpKind::kSquare, {p});
  const HloId e1 = m.AddInstruction(OpKind::kExp, {s1});
  const HloId e2 = m.AddInstruction(OpKind::kExp, {s2});
  m.AddRoot(m.AddInstruction(OpKind::kAdd, {e1, e2}));
  const std::int64_t before = m.instruction_count();
  int eliminated = 0;
  // Iterate: chains dedupe one level per pass.
  for (int i = 0; i < 4; ++i) eliminated += RunHloCse(m);
  EXPECT_EQ(eliminated, 2);
  EXPECT_EQ(m.instruction_count(), before - 2);
  // Semantics preserved: exp(x^2)*2.
  const auto out = Compile(m).executable->Run({Literal::Full(Shape({8}), 2.f)});
  EXPECT_NEAR(out[0].data[0], 2 * std::exp(4.0f), 1e-2);
}

TEST(HloDceTest, DropsUnreachableInstructions) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({4}), 0);
  const HloId live = m.AddInstruction(OpKind::kRelu, {p});
  const HloId dead = m.AddInstruction(OpKind::kExp, {p});
  (void)m.AddInstruction(OpKind::kTanh, {dead});  // dead chain
  m.AddRoot(live);
  EXPECT_EQ(RunHloDce(m), 2);
  EXPECT_EQ(m.instruction_count(), 2);
}

TEST(FusionTest, ChainsFuseIntoOneGroup) {
  const HloModule m = ElementwiseChain();
  const auto groups = ComputeFusionGroups(m);
  // mul (3), add (4), relu (5) share a group.
  EXPECT_EQ(groups[3], groups[4]);
  EXPECT_EQ(groups[4], groups[5]);
}

TEST(FusionTest, MultiUseProducerIsNotFused) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({8}), 0);
  const HloId shared = m.AddInstruction(OpKind::kSquare, {p});
  const HloId u1 = m.AddInstruction(OpKind::kRelu, {shared});
  const HloId u2 = m.AddInstruction(OpKind::kTanh, {shared});
  m.AddRoot(u1);
  m.AddRoot(u2);
  const auto groups = ComputeFusionGroups(m);
  EXPECT_NE(groups[static_cast<std::size_t>(shared)],
            groups[static_cast<std::size_t>(u1)]);
  EXPECT_NE(groups[static_cast<std::size_t>(shared)],
            groups[static_cast<std::size_t>(u2)]);
}

TEST(FusionTest, NonElementwiseBreaksFusion) {
  HloModule m;
  const HloId a = m.AddParameter(Shape({4, 4}), 0);
  const HloId doubled = m.AddInstruction(OpKind::kMulScalar, {a},
                                         OpAttrs{.scalar = 2.0f});
  const HloId mm = m.AddInstruction(OpKind::kMatMul, {doubled, doubled});
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {mm}));
  const auto groups = ComputeFusionGroups(m);
  EXPECT_NE(groups[static_cast<std::size_t>(doubled)],
            groups[static_cast<std::size_t>(mm)]);
  EXPECT_NE(groups[static_cast<std::size_t>(mm)], groups[3]);
}

TEST(CompileTest, FusionReducesKernelCount) {
  CompileOptions fused_opts;
  CompileOptions unfused_opts;
  unfused_opts.enable_fusion = false;
  const auto fused = Compile(ElementwiseChain(), fused_opts);
  const auto unfused = Compile(ElementwiseChain(), unfused_opts);
  EXPECT_EQ(fused.executable->kernel_count(), 1);
  EXPECT_EQ(unfused.executable->kernel_count(), 3);
}

TEST(CompileTest, FusedAndUnfusedProduceIdenticalResults) {
  CompileOptions unfused_opts;
  unfused_opts.enable_fusion = false;
  const auto fused = Compile(ElementwiseChain());
  const auto unfused = Compile(ElementwiseChain(), unfused_opts);
  std::vector<Literal> params = {Literal::Full(Shape({64}), 0.5f),
                                 Literal::Full(Shape({64}), -3.0f),
                                 Literal::Full(Shape({64}), 2.0f)};
  const auto a = fused.executable->Run(params);
  const auto b = unfused.executable->Run(params);
  EXPECT_EQ(a[0].data.ToVector(), b[0].data.ToVector());
}

TEST(CompileTest, FusedExecutionIsCheaperOnAccelerator) {
  const auto fused = Compile(ElementwiseChain());
  CompileOptions unfused_opts;
  unfused_opts.enable_fusion = false;
  const auto unfused = Compile(ElementwiseChain(), unfused_opts);
  std::vector<Literal> params = {Literal::Full(Shape({64}), 1.f),
                                 Literal::Full(Shape({64}), 1.f),
                                 Literal::Full(Shape({64}), 1.f)};
  SimAccelerator a1(AcceleratorSpec::Gtx1080());
  SimAccelerator a2(AcceleratorSpec::Gtx1080());
  fused.executable->Run(params, &a1);
  unfused.executable->Run(params, &a2);
  EXPECT_LT(a1.elapsed_seconds(), a2.elapsed_seconds());
}

TEST(CompileTest, CompileCostScalesWithProgramSize) {
  HloModule small;
  HloId v = small.AddParameter(Shape({4}), 0);
  small.AddRoot(small.AddInstruction(OpKind::kRelu, {v}));
  HloModule big;
  v = big.AddParameter(Shape({4}), 0);
  for (int i = 0; i < 100; ++i) v = big.AddInstruction(OpKind::kTanh, {v});
  big.AddRoot(v);
  EXPECT_GT(Compile(big).compile_seconds, Compile(small).compile_seconds);
}

TEST(CompileCacheTest, HitsOnIdenticalStructure) {
  CompileCache cache;
  double cost1 = 0.0, cost2 = 0.0;
  const auto e1 = cache.GetOrCompile(ElementwiseChain(), &cost1);
  const auto e2 = cache.GetOrCompile(ElementwiseChain(), &cost2);
  EXPECT_EQ(e1.get(), e2.get());
  EXPECT_GT(cost1, 0.0);
  EXPECT_EQ(cost2, 0.0);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(CompileCacheTest, ShapeChangeMisses) {
  CompileCache cache;
  auto build = [](std::int64_t n) {
    HloModule m;
    const HloId p = m.AddParameter(Shape({n}), 0);
    m.AddRoot(m.AddInstruction(OpKind::kRelu, {p}));
    return m;
  };
  cache.GetOrCompile(build(8));
  cache.GetOrCompile(build(16));
  cache.GetOrCompile(build(8));
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.size(), 2u);
}

// Regression test for the documented Clear() semantics: dropping the
// compiled programs must also zero the hit/miss/compile-time statistics,
// so counter-based ablations that Clear() between runs start from a clean
// slate instead of inheriting the previous run's totals.
TEST(CompileCacheTest, ClearResetsStatisticsWithPrograms) {
  CompileCache cache;
  cache.GetOrCompile(ElementwiseChain());
  cache.GetOrCompile(ElementwiseChain());
  ASSERT_EQ(cache.misses(), 1);
  ASSERT_EQ(cache.hits(), 1);
  ASSERT_GT(cache.total_compile_seconds(), 0.0);
  ASSERT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.total_compile_seconds(), 0.0);
  EXPECT_EQ(cache.size(), 0u);

  // A post-Clear run observes exactly its own traffic: the same program
  // is a fresh miss (it was evicted), then a hit.
  cache.GetOrCompile(ElementwiseChain());
  cache.GetOrCompile(ElementwiseChain());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ExecutableTest, ParameterCountChecked) {
  const auto compiled = Compile(ElementwiseChain());
  EXPECT_THROW(compiled.executable->Run({Literal::Full(Shape({64}), 1.f)}),
               InternalError);
}

TEST(ExecutableTest, MatMulProgramComputesCorrectly) {
  HloModule m;
  const HloId a = m.AddParameter(Shape({2, 3}), 0);
  const HloId b = m.AddParameter(Shape({3, 2}), 1);
  m.AddRoot(m.AddInstruction(OpKind::kMatMul, {a, b}));
  const auto compiled = Compile(std::move(m));
  const auto out = compiled.executable->Run(
      {Literal::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6}),
       Literal::FromVector(Shape({3, 2}), {7, 8, 9, 10, 11, 12})});
  EXPECT_EQ(out[0].data.ToVector(), (std::vector<float>{58, 64, 139, 154}));
}

}  // namespace
}  // namespace s4tf::xla
