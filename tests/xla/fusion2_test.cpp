// Compiler-depth suite: epilogue fusion into MatMul/Conv2D, the
// liveness-based buffer-reuse planner, and the tiled inner loops.
//
// The load-bearing contract under test is bit-determinism: an
// epilogue-fused program must produce results byte-identical to its
// unfused twin for ANY intra-op thread count, because the fused kernels
// evaluate the exact same float expressions in the exact same order —
// only the trips through memory change. Everything else (kernel counts,
// byte counters, arena footprints) is the deterministic perf signal.
#include "xla/compiler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "lazy/lazy_tensor.h"
#include "obs/metrics.h"
#include "support/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/ad/gradient_check.h"

namespace s4tf::xla {
namespace {

Literal RandomLiteral(const Shape& shape, std::uint64_t seed,
                      float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> values(static_cast<std::size_t>(shape.NumElements()));
  rng.FillUniform(values.data(), values.size(), lo, hi);
  return Literal::FromVector(shape, std::move(values));
}

// relu(matmul(a, b) + bias): the canonical dense-layer epilogue chain.
// ids: a=0, b=1, bias=2, matmul=3, add=4, relu=5 (root).
HloModule MatMulBiasRelu(std::int64_t m = 5, std::int64_t k = 7,
                         std::int64_t n = 66) {
  HloModule mod("matmul_bias_relu");
  const HloId a = mod.AddParameter(Shape({m, k}), 0);
  const HloId b = mod.AddParameter(Shape({k, n}), 1);
  const HloId bias = mod.AddParameter(Shape({n}), 2);
  const HloId mm = mod.AddInstruction(OpKind::kMatMul, {a, b});
  const HloId add = mod.AddInstruction(OpKind::kAdd, {mm, bias});
  mod.AddRoot(mod.AddInstruction(OpKind::kRelu, {add}));
  return mod;
}

// relu(conv2d(x, f) + bias) over NHWC.
HloModule ConvBiasRelu() {
  HloModule mod("conv_bias_relu");
  const HloId x = mod.AddParameter(Shape({2, 5, 6, 3}), 0);
  const HloId f = mod.AddParameter(Shape({3, 3, 3, 66}), 1);
  const HloId bias = mod.AddParameter(Shape({66}), 2);
  OpAttrs attrs;
  attrs.stride_h = 1;
  attrs.stride_w = 1;
  attrs.padding = Padding::kSame;
  const HloId conv = mod.AddInstruction(OpKind::kConv2D, {x, f}, attrs);
  const HloId add = mod.AddInstruction(OpKind::kAdd, {conv, bias});
  mod.AddRoot(mod.AddInstruction(OpKind::kRelu, {add}));
  return mod;
}

std::vector<Literal> MatMulBiasReluInputs(std::int64_t m = 5,
                                          std::int64_t k = 7,
                                          std::int64_t n = 66) {
  return {RandomLiteral(Shape({m, k}), 11), RandomLiteral(Shape({k, n}), 12),
          RandomLiteral(Shape({n}), 13)};
}

CompileOptions Unfused() {
  CompileOptions options;
  options.enable_fusion = false;
  return options;
}

CompileOptions NoEpilogue() {
  CompileOptions options;
  options.enable_epilogue_fusion = false;
  return options;
}

std::int64_t DeltaOf(const std::map<std::string, std::int64_t>& delta,
                     const std::string& name) {
  auto it = delta.find(name);
  return it == delta.end() ? 0 : it->second;
}

// --- Epilogue chain analysis. ----------------------------------------------

TEST(EpilogueChainTest, MatMulBiasReluFormsOneChain) {
  const HloModule m = MatMulBiasRelu();
  const auto chains = ComputeEpilogueChains(m);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchor, 3);
  EXPECT_EQ(chains[0].ops, (std::vector<HloId>{4, 5}));
  EXPECT_EQ(chains[0].result(), 5);
}

TEST(EpilogueChainTest, ResidualAndScaleExtendTheChain) {
  // relu(residual + matmul(a, b) * 0.5): a commuted full-shape add plus a
  // scalar-attr scale, both folding into the anchor.
  HloModule m("residual");
  const HloId a = m.AddParameter(Shape({4, 8}), 0);
  const HloId b = m.AddParameter(Shape({8, 16}), 1);
  const HloId res = m.AddParameter(Shape({4, 16}), 2);
  const HloId mm = m.AddInstruction(OpKind::kMatMul, {a, b});
  const HloId scale =
      m.AddInstruction(OpKind::kMulScalar, {mm}, OpAttrs{.scalar = 0.5f});
  const HloId add = m.AddInstruction(OpKind::kAdd, {res, scale});  // commuted
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {add}));
  const auto chains = ComputeEpilogueChains(m);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchor, mm);
  EXPECT_EQ(chains[0].ops, (std::vector<HloId>{scale, add, add + 1}));

  // And the whole thing executes as one kernel with correct numerics.
  const auto fused = Compile(m).executable;
  EXPECT_EQ(fused->kernel_count(), 1);
  EXPECT_EQ(fused->epilogue_folded_ops(), 3);
  const std::vector<Literal> inputs = {RandomLiteral(Shape({4, 8}), 21),
                                       RandomLiteral(Shape({8, 16}), 22),
                                       RandomLiteral(Shape({4, 16}), 23)};
  const auto unfused = Compile(m, Unfused()).executable;
  EXPECT_EQ(fused->Run(inputs)[0].data.ToVector(),
            unfused->Run(inputs)[0].data.ToVector());
}

TEST(EpilogueChainTest, MultiUseValueEndsTheChainButStillMaterializes) {
  // The add feeds both the relu and a second root. It can still be the
  // chain RESULT (results materialize), but the chain must stop there —
  // the relu reads the materialized add like any other consumer.
  HloModule m("multi_use");
  const HloId a = m.AddParameter(Shape({4, 4}), 0);
  const HloId mm = m.AddInstruction(OpKind::kMatMul, {a, a});
  const HloId add = m.AddInstruction(OpKind::kAdd, {mm, a});
  const HloId relu = m.AddInstruction(OpKind::kRelu, {add});
  m.AddRoot(relu);
  m.AddRoot(add);
  const auto chains = ComputeEpilogueChains(m);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchor, mm);
  EXPECT_EQ(chains[0].ops, (std::vector<HloId>{add}));
  // Both roots come out right: the multi-use add really materialized.
  const std::vector<Literal> inputs = {RandomLiteral(Shape({4, 4}), 33)};
  const auto fused_out = Compile(m).executable->Run(inputs);
  const auto unfused_out = Compile(m, Unfused()).executable->Run(inputs);
  ASSERT_EQ(fused_out.size(), 2u);
  EXPECT_EQ(fused_out[0].data.ToVector(), unfused_out[0].data.ToVector());
  EXPECT_EQ(fused_out[1].data.ToVector(), unfused_out[1].data.ToVector());
}

TEST(EpilogueChainTest, ChainStopsAtShapeChange) {
  // reduce_sum changes shape; the chain ends at the relu before it.
  HloModule m("shape_change");
  const HloId a = m.AddParameter(Shape({4, 4}), 0);
  const HloId mm = m.AddInstruction(OpKind::kMatMul, {a, a});
  const HloId relu = m.AddInstruction(OpKind::kRelu, {mm});
  m.AddRoot(m.AddInstruction(OpKind::kReduceSum, {relu}));
  const auto chains = ComputeEpilogueChains(m);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].ops, (std::vector<HloId>{relu}));
}

TEST(EpilogueChainTest, TwoAnchorsMeetingAtOneAddDoNotBothFold) {
  // add(mm1, mm2): whichever chain claims the add, the OTHER matmul's
  // output must still materialize — a chain may not reference a folded
  // (never-materialized) value as its external operand.
  HloModule m("two_anchors");
  const HloId a = m.AddParameter(Shape({4, 4}), 0);
  const HloId b = m.AddParameter(Shape({4, 4}), 1);
  const HloId mm1 = m.AddInstruction(OpKind::kMatMul, {a, b});
  const HloId mm2 = m.AddInstruction(OpKind::kMatMul, {b, a});
  m.AddRoot(m.AddInstruction(OpKind::kAdd, {mm1, mm2}));
  const auto chains = ComputeEpilogueChains(m);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].anchor, mm1);  // id order: mm1 wins the add
  const std::vector<Literal> inputs = {RandomLiteral(Shape({4, 4}), 31),
                                       RandomLiteral(Shape({4, 4}), 32)};
  EXPECT_EQ(Compile(m).executable->Run(inputs)[0].data.ToVector(),
            Compile(m, Unfused()).executable->Run(inputs)[0].data.ToVector());
}

// --- Fused execution: kernel counts, counters, bitwise equality. -----------

TEST(EpilogueExecTest, FusedProgramIsOneKernelInsteadOfThree) {
  const HloModule m = MatMulBiasRelu();
  const auto fused = Compile(m).executable;
  const auto unfused = Compile(m, Unfused()).executable;
  EXPECT_EQ(fused->kernel_count(), 1);
  EXPECT_EQ(fused->epilogue_folded_ops(), 2);
  EXPECT_EQ(unfused->kernel_count(), 3);
  EXPECT_EQ(unfused->epilogue_folded_ops(), 0);
}

TEST(EpilogueExecTest, FusedMatchesUnfusedBitwiseForAnyThreadCount) {
  const HloModule m = MatMulBiasRelu();
  const auto fused = Compile(m).executable;
  const auto unfused = Compile(m, Unfused()).executable;
  const auto inputs = MatMulBiasReluInputs();
  SetIntraOpParallelism(1);
  const std::vector<float> reference =
      unfused->Run(inputs)[0].data.ToVector();
  for (int threads : {1, 2, 4}) {
    SetIntraOpParallelism(threads);
    EXPECT_EQ(fused->Run(inputs)[0].data.ToVector(), reference)
        << "fused, threads=" << threads;
    EXPECT_EQ(unfused->Run(inputs)[0].data.ToVector(), reference)
        << "unfused, threads=" << threads;
  }
  SetIntraOpParallelism(0);
}

TEST(EpilogueExecTest, ConvBiasReluFusedBitwise) {
  const HloModule m = ConvBiasRelu();
  const auto fused = Compile(m).executable;
  const auto unfused = Compile(m, Unfused()).executable;
  EXPECT_EQ(fused->kernel_count(), 1);
  const std::vector<Literal> inputs = {
      RandomLiteral(Shape({2, 5, 6, 3}), 41),
      RandomLiteral(Shape({3, 3, 3, 66}), 42),
      RandomLiteral(Shape({66}), 43)};
  SetIntraOpParallelism(1);
  const std::vector<float> reference =
      unfused->Run(inputs)[0].data.ToVector();
  for (int threads : {1, 2, 4}) {
    SetIntraOpParallelism(threads);
    EXPECT_EQ(fused->Run(inputs)[0].data.ToVector(), reference)
        << "threads=" << threads;
  }
  SetIntraOpParallelism(0);
}

TEST(EpilogueExecTest, FusedDispatchAndByteCountersShrink) {
  // Satellite: tensor.kernel.bytes must reflect that the fused kernel
  // only touches external operands — bias + output once instead of the
  // matmul result spilling and reloading through two elementwise ops.
  const std::int64_t m = 5, k = 7, n = 66;
  const HloModule mod = MatMulBiasRelu(m, k, n);
  const auto inputs = MatMulBiasReluInputs(m, k, n);
  const auto fused = Compile(mod).executable;
  const auto unfused = Compile(mod, Unfused()).executable;

  const auto before_fused = obs::MetricsRegistry::Global().Snapshot();
  (void)fused->Run(inputs);
  const auto fused_delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before_fused);
  const auto before_unfused = obs::MetricsRegistry::Global().Snapshot();
  (void)unfused->Run(inputs);
  const auto unfused_delta = obs::MetricsRegistry::Global()
                                 .Snapshot()
                                 .CounterDeltaSince(before_unfused);

  EXPECT_EQ(DeltaOf(fused_delta, "tensor.kernel.dispatches"), 1);
  EXPECT_EQ(DeltaOf(fused_delta, "tensor.kernel.dispatch.fused_epilogue"), 1);
  EXPECT_EQ(DeltaOf(fused_delta, "tensor.kernel.fused.epilogue_ops"), 2);
  EXPECT_EQ(DeltaOf(unfused_delta, "tensor.kernel.dispatches"), 3);
  EXPECT_EQ(DeltaOf(unfused_delta, "tensor.kernel.dispatch.fused_epilogue"),
            0);

  // Exact byte accounting (4 bytes/element). Fused: a + b + bias + out.
  // Unfused adds the matmul result spilling once and reloading twice.
  const std::int64_t out = m * n;
  const std::int64_t fused_bytes = 4 * (m * k + k * n + n + out);
  const std::int64_t unfused_bytes =
      4 * ((m * k + k * n + out) + (out + n + out) + (out + out));
  EXPECT_EQ(DeltaOf(fused_delta, "tensor.kernel.bytes"), fused_bytes);
  EXPECT_EQ(DeltaOf(unfused_delta, "tensor.kernel.bytes"), unfused_bytes);
  EXPECT_LT(fused_bytes, unfused_bytes);
}

TEST(EpilogueExecTest, FusedKernelChargesLessDeviceTime) {
  const HloModule m = MatMulBiasRelu();
  SimAccelerator fused_acc(AcceleratorSpec::TpuV3Core());
  SimAccelerator unfused_acc(AcceleratorSpec::TpuV3Core());
  Compile(m).executable->ChargeTo(fused_acc);
  Compile(m, Unfused()).executable->ChargeTo(unfused_acc);
  EXPECT_LT(fused_acc.elapsed_seconds(), unfused_acc.elapsed_seconds());
  EXPECT_EQ(fused_acc.kernels_launched(), 1);
  EXPECT_EQ(unfused_acc.kernels_launched(), 3);
}

// --- External-bytes accounting (the double-count fix). ---------------------

TEST(ExternalBytesTest, SharedInputCountedOncePerFusedGroup) {
  // Both links of the fused elementwise group read parameter c; the
  // group's external traffic must count c once, not twice.
  HloModule m("shared_input");
  const HloId p = m.AddParameter(Shape({64}), 0);
  const HloId c = m.AddParameter(Shape({64}), 1);
  const HloId e = m.AddInstruction(OpKind::kExp, {p});
  const HloId mul = m.AddInstruction(OpKind::kMul, {e, c});
  m.AddRoot(m.AddInstruction(OpKind::kAdd, {mul, c}));
  CompileOptions options;
  options.enable_epilogue_fusion = false;  // plain elementwise group
  const auto exe = Compile(m, options).executable;
  ASSERT_EQ(exe->kernel_count(), 1);
  // Externals: p, c (deduped) in; the root out. 3 * 64 floats.
  EXPECT_EQ(exe->kernels()[0].external_bytes, 3 * 64 * 4);
}

TEST(ExternalBytesTest, SingletonKernelsKeepPerOccurrenceBytes) {
  // With fusion off every kernel is a singleton and keeps the legacy
  // roofline accounting: add(e, e) reads its operand twice.
  HloModule m("singleton");
  const HloId p = m.AddParameter(Shape({64}), 0);
  const HloId e = m.AddInstruction(OpKind::kExp, {p});
  m.AddRoot(m.AddInstruction(OpKind::kAdd, {e, e}));
  const auto exe = Compile(m, Unfused()).executable;
  ASSERT_EQ(exe->kernel_count(), 2);
  EXPECT_EQ(exe->kernels()[1].external_bytes, 3 * 64 * 4);  // e + e + out
}

// --- Deterministic partitions. ---------------------------------------------

TEST(DeterminismTest, PipelineTwiceYieldsIdenticalPartitions) {
  // CSE -> DCE -> fusion run twice over the same trace must produce
  // identical, canonical fused-kernel partitions.
  auto build = [] {
    HloModule m("dup_trace");
    const HloId a = m.AddParameter(Shape({4, 8}), 0);
    const HloId b = m.AddParameter(Shape({8, 66}), 1);
    const HloId bias = m.AddParameter(Shape({66}), 2);
    const HloId mm1 = m.AddInstruction(OpKind::kMatMul, {a, b});
    const HloId mm2 = m.AddInstruction(OpKind::kMatMul, {a, b});  // CSE bait
    const HloId add = m.AddInstruction(OpKind::kAdd, {mm1, bias});
    (void)m.AddInstruction(OpKind::kExp, {mm2});  // DCE bait
    m.AddRoot(m.AddInstruction(OpKind::kRelu, {add}));
    return m;
  };
  const auto first = Compile(build()).executable;
  const auto second = Compile(build()).executable;
  ASSERT_EQ(first->kernel_count(), second->kernel_count());
  for (std::int64_t i = 0; i < first->kernel_count(); ++i) {
    EXPECT_EQ(first->kernels()[i].instructions,
              second->kernels()[i].instructions);
    EXPECT_EQ(first->kernels()[i].external_bytes,
              second->kernels()[i].external_bytes);
  }
}

TEST(DeterminismTest, GroupIdsAreCanonicalizedToMinMember) {
  const HloModule m = MatMulBiasRelu();
  const auto groups = ComputeFusionGroups(m, ComputeEpilogueChains(m));
  // matmul=3, add=4, relu=5 all carry the minimum member id.
  EXPECT_EQ(groups[3], 3);
  EXPECT_EQ(groups[4], 3);
  EXPECT_EQ(groups[5], 3);
}

// --- Pass gating (legacy byte-identity). -----------------------------------

TEST(PassGatingTest, FusionOffDisablesEpiloguesAndArena) {
  const HloModule m = MatMulBiasRelu();
  const auto exe = Compile(m, Unfused()).executable;
  EXPECT_EQ(exe->kernel_count(), 3);  // one singleton per non-param op
  for (const FusedKernel& k : exe->kernels()) {
    EXPECT_EQ(k.instructions.size(), 1u);
  }
  EXPECT_EQ(exe->epilogue_folded_ops(), 0);
  EXPECT_EQ(exe->arena_peak_bytes(), 0);
  EXPECT_EQ(exe->arena_unreused_bytes(), 0);
  EXPECT_EQ(exe->arena_charge_bytes(), 0);
}

TEST(PassGatingTest, EpilogueOffStillFusesElementwise) {
  const HloModule m = MatMulBiasRelu();
  const auto exe = Compile(m, NoEpilogue()).executable;
  // add + relu fuse as a plain elementwise group; the matmul stays alone.
  EXPECT_EQ(exe->kernel_count(), 2);
  EXPECT_EQ(exe->epilogue_folded_ops(), 0);
  EXPECT_GT(exe->arena_charge_bytes(), 0);  // arena still applies
  const auto inputs = MatMulBiasReluInputs();
  EXPECT_EQ(exe->Run(inputs)[0].data.ToVector(),
            Compile(m).executable->Run(inputs)[0].data.ToVector());
}

// --- Buffer-reuse planner. -------------------------------------------------

TEST(BufferPlanTest, ChainOfMatMulsReusesSlots) {
  // m3(m2(m1(p,p),p),p): three 64x64 intermediates, but only two are ever
  // live at once, so the arena peaks at 2 slots.
  HloModule m("matmul_chain");
  const HloId p = m.AddParameter(Shape({64, 64}), 0);
  const HloId m1 = m.AddInstruction(OpKind::kMatMul, {p, p});
  const HloId m2 = m.AddInstruction(OpKind::kMatMul, {m1, p});
  m.AddRoot(m.AddInstruction(OpKind::kMatMul, {m2, p}));
  const BufferPlan plan = PlanBuffers(m, {});
  const std::int64_t value_bytes = 64 * 64 * 4;
  EXPECT_EQ(plan.unreused_bytes, 3 * value_bytes);
  EXPECT_EQ(plan.peak_arena_bytes, 2 * value_bytes);
  EXPECT_EQ(plan.arena_slots, 2);
  // m1 dies at m2, m2 dies at the root; the root itself is never
  // released.
  ASSERT_EQ(plan.release_after.size(), m.instructions().size());
  EXPECT_EQ(plan.release_after[static_cast<std::size_t>(m2)],
            (std::vector<HloId>{m1}));

  // Releasing buffers mid-run must not perturb the numerics.
  const std::vector<Literal> inputs = {RandomLiteral(Shape({64, 64}), 51)};
  const auto reuse = Compile(m).executable;
  EXPECT_EQ(reuse->arena_charge_bytes(), 2 * value_bytes);
  CompileOptions no_reuse;
  no_reuse.enable_buffer_reuse = false;
  const auto keep = Compile(m, no_reuse).executable;
  EXPECT_EQ(keep->arena_charge_bytes(), 3 * value_bytes);
  EXPECT_EQ(reuse->Run(inputs)[0].data.ToVector(),
            keep->Run(inputs)[0].data.ToVector());

  // And the smaller footprint is cheaper on the simulated device.
  SimAccelerator reuse_acc(AcceleratorSpec::TpuV3Core());
  SimAccelerator keep_acc(AcceleratorSpec::TpuV3Core());
  reuse->ChargeTo(reuse_acc);
  keep->ChargeTo(keep_acc);
  EXPECT_LT(reuse_acc.elapsed_seconds(), keep_acc.elapsed_seconds());
}

TEST(BufferPlanTest, ChainMembersExecuteAtResultSite) {
  // The epilogue chain's bias operand stays live until the chain RESULT
  // executes, not until the (skipped) add's own position.
  const HloModule m = MatMulBiasRelu();
  const auto chains = ComputeEpilogueChains(m);
  const BufferPlan plan = PlanBuffers(m, chains);
  // Only the chain result (relu, id 5) defines a value; anchor and add
  // are folded, parameters are not arena values.
  EXPECT_EQ(plan.unreused_bytes, 5 * 66 * 4);
  EXPECT_EQ(plan.peak_arena_bytes, 5 * 66 * 4);
  EXPECT_EQ(plan.arena_slots, 1);
}

TEST(BufferPlanTest, ArenaGaugeTracksCompiledCharge) {
  const HloModule m = MatMulBiasRelu();
  const auto exe = Compile(m).executable;
  EXPECT_EQ(obs::GetGauge("xla.arena.peak_bytes")->value(),
            exe->arena_charge_bytes());
}

// --- Tiled kernels vs. a straightforward serial reference. -----------------

void ReferenceMatMul(const std::vector<float>& a, const std::vector<float>& b,
                     std::vector<float>& out, std::int64_t m, std::int64_t k,
                     std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = a[static_cast<std::size_t>(i * k + kk)];
        if (av == 0.0f) continue;  // the kernels' sparsity skip, verbatim
        acc += av * b[static_cast<std::size_t>(kk * n + j)];
      }
      out[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
}

TEST(TiledKernelTest, MatMulBitwiseMatchesReferenceAcrossShapes) {
  // Shapes straddle the 64-wide register tile: under, exactly at, one
  // over, and a degenerate m=1/k=1. Zeros exercise the skip path.
  struct Case {
    std::int64_t m, k, n;
  };
  for (const Case& c : {Case{3, 5, 63}, Case{4, 7, 64}, Case{5, 9, 65},
                        Case{1, 1, 130}, Case{7, 16, 127}}) {
    Literal a = RandomLiteral(Shape({c.m, c.k}), 61 + c.n);
    const Literal b = RandomLiteral(Shape({c.k, c.n}), 62 + c.n);
    // Sprinkle exact zeros into a.
    {
      std::vector<float> av = a.data.ToVector();
      for (std::size_t i = 0; i < av.size(); i += 3) av[i] = 0.0f;
      a = Literal::FromVector(a.shape, std::move(av));
    }
    std::vector<float> expected(
        static_cast<std::size_t>(c.m * c.n));
    ReferenceMatMul(a.data.ToVector(), b.data.ToVector(), expected, c.m, c.k,
                    c.n);
    for (int threads : {1, 2, 4}) {
      SetIntraOpParallelism(threads);
      const Literal out = EvalOpLiteral(OpKind::kMatMul, {a, b}, {});
      EXPECT_EQ(out.data.ToVector(), expected)
          << "m=" << c.m << " k=" << c.k << " n=" << c.n
          << " threads=" << threads;
    }
    SetIntraOpParallelism(0);
  }
}

TEST(TiledKernelTest, Conv2DBitwiseAcrossThreadCountsAndTileEdges) {
  // out_c = 5 (single partial tile) and 70 (full tile + partial).
  for (const std::int64_t out_c : {std::int64_t{5}, std::int64_t{70}}) {
    const Literal input = RandomLiteral(Shape({2, 6, 7, 3}), 71);
    const Literal filter =
        RandomLiteral(Shape({3, 3, 3, out_c}), 72 + out_c);
    OpAttrs attrs;
    attrs.stride_h = 1;
    attrs.stride_w = 1;
    attrs.padding = Padding::kSame;
    SetIntraOpParallelism(1);
    const std::vector<float> serial =
        EvalOpLiteral(OpKind::kConv2D, {input, filter}, attrs)
            .data.ToVector();
    for (int threads : {2, 4}) {
      SetIntraOpParallelism(threads);
      EXPECT_EQ(
          EvalOpLiteral(OpKind::kConv2D, {input, filter}, attrs)
              .data.ToVector(),
          serial)
          << "out_c=" << out_c << " threads=" << threads;
    }
    SetIntraOpParallelism(0);
  }
}

// --- Finite-difference gradients through epilogue-fused programs. ----------

TEST(EpilogueGradientTest, MatMulBiasReluOnLazyBackend) {
  // Positive inputs keep every pre-activation away from the ReLU kink so
  // central differences are well-conditioned.
  LazyBackend backend;
  const Device lazy = backend.device();
  Rng rng(81);
  const Tensor w =
      Tensor::RandomUniform(Shape({3, 4}), rng, 0.5f, 1.5f).To(lazy);
  const Tensor bias =
      Tensor::RandomUniform(Shape({4}), rng, 0.1f, 0.5f).To(lazy);
  const Tensor x =
      Tensor::RandomUniform(Shape({2, 3}), rng, 0.5f, 1.5f).To(lazy);
  ad::testing::CheckInputGradient(
      [&](const Tensor& t) { return ReduceSum(Relu(MatMul(t, w) + bias)); },
      x);
}

TEST(EpilogueGradientTest, ConvBiasReluOnLazyBackend) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Rng rng(82);
  const Tensor filter =
      Tensor::RandomUniform(Shape({2, 2, 2, 3}), rng, 0.2f, 0.8f).To(lazy);
  const Tensor bias =
      Tensor::RandomUniform(Shape({3}), rng, 0.1f, 0.4f).To(lazy);
  const Tensor x =
      Tensor::RandomUniform(Shape({1, 4, 4, 2}), rng, 0.5f, 1.5f).To(lazy);
  ad::testing::CheckInputGradient(
      [&](const Tensor& t) {
        return ReduceSum(Relu(Conv2D(t, filter) + bias));
      },
      x);
}

}  // namespace
}  // namespace s4tf::xla
