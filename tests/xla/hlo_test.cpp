#include "xla/hlo.h"

#include <gtest/gtest.h>

namespace s4tf::xla {
namespace {

HloModule SimpleModule() {
  HloModule m("simple");
  const HloId p0 = m.AddParameter(Shape({2, 3}), 0);
  const HloId p1 = m.AddParameter(Shape({2, 3}), 1);
  const HloId sum = m.AddInstruction(OpKind::kAdd, {p0, p1});
  const HloId act = m.AddInstruction(OpKind::kRelu, {sum});
  m.AddRoot(act);
  return m;
}

TEST(HloModuleTest, BuildsAndInfersShapes) {
  const HloModule m = SimpleModule();
  EXPECT_EQ(m.instruction_count(), 4);
  EXPECT_EQ(m.num_parameters(), 2);
  EXPECT_EQ(m.instruction(2).shape, Shape({2, 3}));
  EXPECT_EQ(m.roots().size(), 1u);
}

TEST(HloModuleTest, RejectsForwardReferences) {
  HloModule m;
  EXPECT_THROW(m.AddInstruction(OpKind::kRelu, {5}), InternalError);
}

TEST(HloModuleTest, UseCounts) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({4}), 0);
  const HloId sq = m.AddInstruction(OpKind::kMul, {p, p});
  m.AddRoot(sq);
  const auto uses = m.UseCounts();
  EXPECT_EQ(uses[static_cast<std::size_t>(p)], 2);
  EXPECT_EQ(uses[static_cast<std::size_t>(sq)], 1);  // root
}

TEST(HloModuleTest, FingerprintStableAndStructural) {
  EXPECT_EQ(SimpleModule().Fingerprint(), SimpleModule().Fingerprint());
}

TEST(HloModuleTest, FingerprintIgnoresConstantValues) {
  // The XLA-program cache must hit when only the data changed (§3.4).
  auto build = [](float value) {
    HloModule m;
    const HloId c = m.AddConstant(Literal::Full(Shape({8}), value));
    const HloId p = m.AddParameter(Shape({8}), 0);
    m.AddRoot(m.AddInstruction(OpKind::kMul, {c, p}));
    return m;
  };
  EXPECT_EQ(build(1.0f).Fingerprint(), build(2.0f).Fingerprint());
}

TEST(HloModuleTest, FingerprintSensitiveToShapes) {
  // Shape changes trigger recompilation (§3.4).
  auto build = [](std::int64_t n) {
    HloModule m;
    const HloId p = m.AddParameter(Shape({n}), 0);
    m.AddRoot(m.AddInstruction(OpKind::kRelu, {p}));
    return m;
  };
  EXPECT_NE(build(8).Fingerprint(), build(16).Fingerprint());
}

TEST(HloModuleTest, FingerprintSensitiveToOpsAndAttrs) {
  auto base = [] {
    HloModule m;
    const HloId p = m.AddParameter(Shape({8}), 0);
    m.AddRoot(m.AddInstruction(OpKind::kMulScalar, {p},
                               OpAttrs{.scalar = 2.0f}));
    return m;
  };
  HloModule other;
  const HloId p = other.AddParameter(Shape({8}), 0);
  other.AddRoot(other.AddInstruction(OpKind::kMulScalar, {p},
                                     OpAttrs{.scalar = 3.0f}));
  EXPECT_NE(base().Fingerprint(), other.Fingerprint());
}

TEST(HloModuleTest, ToStringIsReadable) {
  const std::string text = SimpleModule().ToString();
  EXPECT_NE(text.find("param(0)"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("relu"), std::string::npos);
  EXPECT_NE(text.find("roots: %3"), std::string::npos);
}

}  // namespace
}  // namespace s4tf::xla
