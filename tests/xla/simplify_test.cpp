#include <cmath>
#include <gtest/gtest.h>

#include "lazy/lazy_tensor.h"
#include "tensor/ops.h"
#include "xla/compiler.h"

namespace s4tf::xla {
namespace {

TEST(AlgebraicSimplifyTest, RemovesScalarIdentities) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({8}), 0);
  const HloId a = m.AddInstruction(OpKind::kMulScalar, {p},
                                   OpAttrs{.scalar = 1.0f});
  const HloId b = m.AddInstruction(OpKind::kAddScalar, {a},
                                   OpAttrs{.scalar = 0.0f});
  const HloId c = m.AddInstruction(OpKind::kPowScalar, {b},
                                   OpAttrs{.scalar = 1.0f});
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {c}));
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 3);
  EXPECT_EQ(m.instruction_count(), 2);  // param + relu
}

TEST(AlgebraicSimplifyTest, LeavesRealWorkAlone) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({8}), 0);
  const HloId a = m.AddInstruction(OpKind::kMulScalar, {p},
                                   OpAttrs{.scalar = 2.0f});
  m.AddRoot(m.AddInstruction(OpKind::kAddScalar, {a},
                             OpAttrs{.scalar = -1.0f}));
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 0);
  EXPECT_EQ(m.instruction_count(), 3);
}

TEST(AlgebraicSimplifyTest, DoubleNegation) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({4}), 0);
  const HloId n1 = m.AddInstruction(OpKind::kNeg, {p});
  const HloId n2 = m.AddInstruction(OpKind::kNeg, {n1});
  m.AddRoot(m.AddInstruction(OpKind::kExp, {n2}));
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 1);
  RunHloDce(m);
  EXPECT_EQ(m.instruction_count(), 2);  // param + exp
}

TEST(AlgebraicSimplifyTest, TrivialReshapeAndBroadcast) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({2, 3}), 0);
  const HloId r = m.AddInstruction(OpKind::kReshape, {p},
                                   OpAttrs{.shape = {2, 3}});
  const HloId bcast = m.AddInstruction(OpKind::kBroadcastTo, {r},
                                       OpAttrs{.shape = {2, 3}});
  m.AddRoot(bcast);
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 2);
}

TEST(AlgebraicSimplifyTest, NontrivialReshapeKept) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({2, 3}), 0);
  m.AddRoot(m.AddInstruction(OpKind::kReshape, {p},
                             OpAttrs{.shape = {6}}));
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 0);
}

TEST(AlgebraicSimplifyTest, InverseTransposePair) {
  HloModule m;
  const HloId p = m.AddParameter(Shape({2, 3, 4}), 0);
  const HloId t1 = m.AddInstruction(OpKind::kTranspose, {p},
                                    OpAttrs{.axes = {2, 0, 1}});
  const HloId t2 = m.AddInstruction(OpKind::kTranspose, {t1},
                                    OpAttrs{.axes = {1, 2, 0}});
  m.AddRoot(t2);
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 1);
  // Non-inverse pair survives.
  HloModule m2;
  const HloId q = m2.AddParameter(Shape({2, 3, 4}), 0);
  const HloId u1 = m2.AddInstruction(OpKind::kTranspose, {q},
                                     OpAttrs{.axes = {2, 0, 1}});
  m2.AddRoot(m2.AddInstruction(OpKind::kTranspose, {u1},
                               OpAttrs{.axes = {2, 0, 1}}));
  EXPECT_EQ(RunHloAlgebraicSimplify(m2), 0);
}

TEST(AlgebraicSimplifyTest, ChainsResolveThroughBypassedInstructions) {
  // neg(neg(mul_scalar(x, 1))) collapses fully in one pass.
  HloModule m;
  const HloId p = m.AddParameter(Shape({4}), 0);
  const HloId id = m.AddInstruction(OpKind::kMulScalar, {p},
                                    OpAttrs{.scalar = 1.0f});
  const HloId n1 = m.AddInstruction(OpKind::kNeg, {id});
  const HloId n2 = m.AddInstruction(OpKind::kNeg, {n1});
  m.AddRoot(n2);
  EXPECT_EQ(RunHloAlgebraicSimplify(m), 2);
  // Result preserved.
  const auto compiled = Compile(std::move(m));
  const auto out = compiled.executable->Run(
      {Literal::FromVector(Shape({4}), {1, -2, 3, -4})});
  EXPECT_EQ(out[0].data.ToVector(), (std::vector<float>{1, -2, 3, -4}));
}

TEST(AlgebraicSimplifyTest, PreservesSemanticsInsideFullPipeline) {
  // A program salted with identities must compile to the same results
  // with and without the simplifier.
  auto build = [] {
    HloModule m;
    const HloId p = m.AddParameter(Shape({16}), 0);
    const HloId x1 = m.AddInstruction(OpKind::kMulScalar, {p},
                                      OpAttrs{.scalar = 1.0f});
    const HloId x2 = m.AddInstruction(OpKind::kTanh, {x1});
    const HloId x3 = m.AddInstruction(OpKind::kAddScalar, {x2},
                                      OpAttrs{.scalar = 0.0f});
    const HloId x4 = m.AddInstruction(OpKind::kNeg, {x3});
    const HloId x5 = m.AddInstruction(OpKind::kNeg, {x4});
    m.AddRoot(m.AddInstruction(OpKind::kSquare, {x5}));
    return m;
  };
  CompileOptions no_simplify;
  no_simplify.enable_algebraic_simplify = false;
  const auto a = Compile(build());
  const auto b = Compile(build(), no_simplify);
  EXPECT_LT(a.executable->module().instruction_count(),
            b.executable->module().instruction_count());
  const std::vector<Literal> params = {
      Literal::FromVector(Shape({16}), std::vector<float>(16, 0.37f))};
  EXPECT_EQ(a.executable->Run(params)[0].data.ToVector(),
            b.executable->Run(params)[0].data.ToVector());
}

TEST(AutoFlushTest, CutsRunawayTraces) {
  // The §3.4 future-work feature: with a threshold set, an unobserved
  // loop's trace is cut and compiled in bounded chunks automatically.
  LazyOptions options;
  options.auto_flush_threshold = 25;
  LazyBackend backend(options);
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({8}), lazy);
  for (int i = 0; i < 100; ++i) x = x * 1.001f;  // never observed
  // The window closes as the Nth op is recorded (not one op late), so
  // 100 ops at threshold 25 is exactly 4 flushes.
  EXPECT_EQ(backend.auto_flushes(), 4);
  EXPECT_GT(backend.kernels_launched(), 0);  // chunks really executed
  // And the value is still right once observed.
  EXPECT_NEAR(x.At({0}), std::pow(1.001f, 100.0f), 1e-3f);
}

TEST(AutoFlushTest, FlushesOnExactlyTheThresholdOp) {
  // Regression: the threshold check used to run *before* recording, so a
  // trace of exactly `threshold` ops never flushed (off by one), and the
  // op that finally tripped it was left out of the flushed program.
  LazyOptions options;
  options.auto_flush_threshold = 5;
  LazyBackend backend(options);
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  for (int i = 0; i < 4; ++i) x = x + 1.0f;
  EXPECT_EQ(backend.auto_flushes(), 0);  // 4 ops: window still open
  x = x + 1.0f;                          // 5th op trips the threshold...
  EXPECT_EQ(backend.auto_flushes(), 1);
  // ...and is part of the flushed program: observing x afterwards reads
  // the materialized literal without launching anything new.
  const std::int64_t launched = backend.kernels_launched();
  EXPECT_GT(launched, 0);
  EXPECT_EQ(x.At({0}), 6.0f);
  EXPECT_EQ(backend.kernels_launched(), launched);
}

TEST(AutoFlushTest, ExplicitBarrierRestartsTheWindow) {
  // Regression: LazyTensorBarrier() used to leave ops_since_flush_
  // counting, so the next few recorded ops triggered a redundant second
  // flush of an almost-empty trace. Any cut restarts the window.
  LazyOptions options;
  options.auto_flush_threshold = 5;
  LazyBackend backend(options);
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  for (int i = 0; i < 3; ++i) x = x + 1.0f;
  backend.Barrier();  // explicit cut at 3 ops
  EXPECT_EQ(backend.auto_flushes(), 0);
  for (int i = 0; i < 4; ++i) x = x + 1.0f;
  // 4 ops since the barrier: a full fresh window, no double flush.
  EXPECT_EQ(backend.auto_flushes(), 0);
  x = x + 1.0f;  // 5th op since the barrier
  EXPECT_EQ(backend.auto_flushes(), 1);
  EXPECT_EQ(x.At({0}), 9.0f);
}

TEST(AutoFlushTest, DisabledByDefault) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({8}), lazy);
  for (int i = 0; i < 100; ++i) x = x * 1.001f;
  EXPECT_EQ(backend.auto_flushes(), 0);
  EXPECT_EQ(backend.kernels_launched(), 0);  // pure recording
}

}  // namespace
}  // namespace s4tf::xla
