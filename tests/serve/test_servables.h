// Instrumented stub servables for server/simulator tests: fully
// deterministic cost models and controllable execution so tests can pin
// exact schedules (simulator) or force specific runtime states
// (threaded server: a worker parked inside RunBatch, a batch that
// throws).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "serve/servable.h"

namespace s4tf::serve {

// Scalar-sample servable: out[i] = in[i] + 1. Constant modeled cost per
// batch regardless of size (the pure "one launch per batch" regime where
// batching pays maximally). Pads to powers of two when pad_max > 0.
class FixedCostServable final : public Servable {
 public:
  explicit FixedCostServable(double batch_cost_seconds, int pad_max = 0)
      : sample_shape_({1}),
        batch_cost_seconds_(batch_cost_seconds),
        pad_max_(pad_max) {}

  const char* name() const override { return "fixed-cost"; }
  const Shape& sample_shape() const override { return sample_shape_; }
  int PaddedBatch(int batch) const override {
    return pad_max_ > 0 ? PaddedBatchSize(batch, pad_max_) : batch;
  }
  Literal RunBatch(const Literal& batch) override {
    run_batches_.fetch_add(1);
    std::vector<float> out(batch.data.data(),
                           batch.data.data() + batch.size());
    for (float& v : out) v += 1.0f;
    return Literal::FromVector(batch.shape, std::move(out));
  }
  double CostSeconds(int padded_batch) override {
    (void)padded_batch;
    return batch_cost_seconds_;
  }

  std::int64_t run_batches() const { return run_batches_.load(); }

 private:
  Shape sample_shape_;
  double batch_cost_seconds_;
  int pad_max_;
  std::atomic<std::int64_t> run_batches_{0};
};

// Parks every RunBatch call on a condition variable until Release(): lets
// a test hold a worker busy while it fills (and overflows) the queue.
class BlockingServable final : public Servable {
 public:
  BlockingServable() : sample_shape_({1}) {}

  const char* name() const override { return "blocking"; }
  const Shape& sample_shape() const override { return sample_shape_; }
  int PaddedBatch(int batch) const override { return batch; }
  Literal RunBatch(const Literal& batch) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      entered_++;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return batch;
  }
  double CostSeconds(int padded_batch) override {
    (void)padded_batch;
    return 1e-6;
  }

  // Blocks until `n` RunBatch calls are parked inside the servable.
  void WaitForEntered(int n) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [this, n] { return entered_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }

 private:
  Shape sample_shape_;
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  int entered_ = 0;
  bool released_ = false;
};

// Every batch fails. The server must fail every member with a clean
// Status::Internal and keep running.
class ThrowingServable final : public Servable {
 public:
  ThrowingServable() : sample_shape_({1}) {}

  const char* name() const override { return "throwing"; }
  const Shape& sample_shape() const override { return sample_shape_; }
  int PaddedBatch(int batch) const override { return batch; }
  Literal RunBatch(const Literal& batch) override {
    (void)batch;
    throw std::runtime_error("injected servable failure");
  }
  double CostSeconds(int padded_batch) override {
    (void)padded_batch;
    return 1e-6;
  }

 private:
  Shape sample_shape_;
};

}  // namespace s4tf::serve
