// Servable-layer determinism suite: batched serving must be bit-identical
// to sequential single-sample inference, across batch sizes, intra-op
// thread counts, and execution backends; and the XLA serving path must be
// compile-once/run-many (counter-pinned).
#include "serve/servable.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "eager/eager_backend.h"
#include "nn/datasets.h"
#include "nn/models/spline.h"
#include "obs/metrics.h"
#include "serve/batch.h"
#include "serve/mlp.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace s4tf::serve {
namespace {

constexpr int kIn = 6;
constexpr int kHidden = 10;
constexpr int kOut = 4;

MlpModel TestModel(std::uint64_t seed = 7) {
  Rng rng(seed);
  return MlpModel::Create(kIn, kHidden, kOut, rng);
}

std::vector<Literal> TestSamples(const MlpModel& model, int n,
                                 std::uint64_t seed = 11) {
  Rng rng(seed);
  std::vector<Literal> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> data(static_cast<std::size_t>(model.input_size));
    rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
    samples.push_back(Literal::FromVector(model.sample_shape(),
                                          std::move(data)));
  }
  return samples;
}

bool BitIdentical(const Literal& a, const Literal& b) {
  if (!(a.shape == b.shape)) return false;
  return std::memcmp(a.data.data(), b.data.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

// Restores the default intra-op pool size when a sweep finishes.
struct IntraOpGuard {
  ~IntraOpGuard() { SetIntraOpThreads(0); }
};

// Runs `samples` through the servable in batches of `batch` and asserts
// every output row is bit-identical to the model's single-sample
// reference path.
void ExpectBatchedMatchesReference(Servable& servable, const MlpModel& model,
                                   const std::vector<Literal>& samples,
                                   int batch) {
  for (std::size_t start = 0; start < samples.size();
       start += static_cast<std::size_t>(batch)) {
    std::vector<const Literal*> window;
    for (std::size_t i = start;
         i < samples.size() && i < start + static_cast<std::size_t>(batch);
         ++i) {
      window.push_back(&samples[i]);
    }
    const int padded = servable.PaddedBatch(static_cast<int>(window.size()));
    const Literal out = servable.RunBatch(
        AssembleBatch(window, servable.sample_shape(), padded));
    for (std::size_t i = 0; i < window.size(); ++i) {
      const Literal expected = model.ReferenceForward(*window[i]);
      const Literal got = SliceSample(out, static_cast<int>(i));
      EXPECT_TRUE(BitIdentical(expected, got))
          << "batch=" << batch << " sample=" << start + i;
    }
  }
}

TEST(BatchTest, PaddedBatchSizePowersOfTwo) {
  EXPECT_EQ(PaddedBatchSize(1, 8), 1);
  EXPECT_EQ(PaddedBatchSize(2, 8), 2);
  EXPECT_EQ(PaddedBatchSize(3, 8), 4);
  EXPECT_EQ(PaddedBatchSize(4, 8), 4);
  EXPECT_EQ(PaddedBatchSize(5, 8), 8);
  EXPECT_EQ(PaddedBatchSize(8, 8), 8);
  EXPECT_EQ(PaddedBatchSize(1, 1), 1);
  EXPECT_EQ(PaddedBatchSize(3, 4), 4);
}

TEST(BatchTest, AssembleAndSliceRoundTrip) {
  const Shape sample_shape({3});
  const Literal a = Literal::FromVector(sample_shape, {1, 2, 3});
  const Literal b = Literal::FromVector(sample_shape, {4, 5, 6});
  const Literal batch = AssembleBatch({&a, &b}, sample_shape, 4);
  EXPECT_EQ(batch.shape, Shape({4, 3}));
  EXPECT_TRUE(BitIdentical(SliceSample(batch, 0), a));
  EXPECT_TRUE(BitIdentical(SliceSample(batch, 1), b));
  // Padding rows are zero.
  EXPECT_TRUE(BitIdentical(SliceSample(batch, 2), Literal::Zeros(sample_shape)));
  EXPECT_TRUE(BitIdentical(SliceSample(batch, 3), Literal::Zeros(sample_shape)));
}

// The tentpole property: the compiled (lazy-traced, XLA-cached) serving
// path produces bit-identical outputs for every batch size x intra-op
// thread count combination.
TEST(ServableDeterminismTest, XlaBatchedBitIdenticalAcrossBatchAndThreads) {
  const MlpModel model = TestModel();
  const std::vector<Literal> samples = TestSamples(model, 16);
  XlaServable servable("mlp", model.Fn(), model.sample_shape());
  IntraOpGuard guard;
  for (int threads : {1, 2, 4}) {
    SetIntraOpThreads(threads);
    for (int batch : {1, 2, 4, 8}) {
      ExpectBatchedMatchesReference(servable, model, samples, batch);
    }
  }
}

TEST(ServableDeterminismTest, EagerServableBitIdentical) {
  const MlpModel model = TestModel();
  const std::vector<Literal> samples = TestSamples(model, 8);
  EagerBackend backend;
  TensorFnServable servable("mlp-eager", model.Fn(), model.sample_shape(),
                            backend.device());
  IntraOpGuard guard;
  for (int threads : {1, 2, 4}) {
    SetIntraOpThreads(threads);
    for (int batch : {1, 2, 4, 8}) {
      ExpectBatchedMatchesReference(servable, model, samples, batch);
    }
  }
}

TEST(ServableDeterminismTest, NaiveServableBitIdentical) {
  const MlpModel model = TestModel();
  const std::vector<Literal> samples = TestSamples(model, 8);
  TensorFnServable servable("mlp-naive", model.Fn(), model.sample_shape(),
                            NaiveDevice());
  for (int batch : {1, 3, 8}) {
    ExpectBatchedMatchesReference(servable, model, samples, batch);
  }
}

// The paper's amortize-the-JIT claim applied across requests: after
// Warmup, steady-state traffic records exactly 0 new compiles while every
// batch invocation is a cache hit.
TEST(XlaServableTest, SteadyStateZeroNewCompiles) {
  const MlpModel model = TestModel();
  const std::vector<Literal> samples = TestSamples(model, 8);
  XlaServable servable("mlp", model.Fn(), model.sample_shape());
  servable.Warmup();
  // Cold start: one compile per padded batch shape {1, 2, 4, 8}.
  EXPECT_EQ(servable.compiles(), 4);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const std::int64_t hits_before = servable.executable_hits();
  int batches = 0;
  for (int round = 0; round < 3; ++round) {
    for (int batch : {1, 2, 4, 8, 3, 5}) {
      std::vector<const Literal*> window;
      for (int i = 0; i < batch; ++i) {
        window.push_back(&samples[static_cast<std::size_t>(i)]);
      }
      const int padded = servable.PaddedBatch(batch);
      servable.RunBatch(
          AssembleBatch(window, servable.sample_shape(), padded));
      batches++;
    }
  }
  const auto delta = obs::MetricsRegistry::Global().Snapshot()
                         .CounterDeltaSince(before);
  const auto misses = delta.find("xla.cache.misses");
  EXPECT_EQ(servable.compiles(), 4) << "steady state must not compile";
  EXPECT_EQ(misses == delta.end() ? 0 : misses->second, 0);
  // Every batch went through the cache and hit.
  EXPECT_EQ(servable.executable_hits() - hits_before, batches);
}

TEST(XlaServableTest, ColdCompilesOncePerPaddedShape) {
  const MlpModel model = TestModel();
  const std::vector<Literal> samples = TestSamples(model, 8);
  XlaServable servable("mlp", model.Fn(), model.sample_shape());
  for (int batch : {1, 8, 8, 2, 8}) {
    std::vector<const Literal*> window;
    for (int i = 0; i < batch; ++i) {
      window.push_back(&samples[static_cast<std::size_t>(i)]);
    }
    servable.RunBatch(AssembleBatch(window, servable.sample_shape(),
                                    servable.PaddedBatch(batch)));
  }
  // Three distinct padded shapes were served: {1, 8, 2}.
  EXPECT_EQ(servable.compiles(), 3);
}

// --- The mobile interpreter as a served executable (paper Table 4's
// deployment format behind the request API). ---

struct SplineSetup {
  Literal basis;
  std::vector<float> targets;
  int knots = 12;
};

SplineSetup MakeSplineSetup() {
  const nn::SplineData data = nn::MakeGlobalSplineData(96, 321);
  SplineSetup s;
  s.basis = nn::BuildSplineBasis(data.xs, s.knots).ToLiteral();
  s.targets = data.targets.ToVector();
  return s;
}

std::vector<std::vector<float>> ControlVectors(int n, int knots) {
  Rng rng(99);
  std::vector<std::vector<float>> vs(static_cast<std::size_t>(n));
  for (auto& v : vs) {
    v.resize(static_cast<std::size_t>(knots));
    rng.FillUniform(v.data(), v.size(), -1.0f, 1.0f);
  }
  return vs;
}

TEST(SplineServableTest, LossBitwiseMatchesDirectInterpreter) {
  const SplineSetup setup = MakeSplineSetup();
  auto served_runtime = frameworks::MakeS4tfMobileRuntime();
  served_runtime->Initialize(setup.basis, setup.targets);
  SplineServable servable("spline-loss", std::move(served_runtime),
                          setup.knots, SplineSignal::kLoss);

  auto direct = frameworks::MakeS4tfMobileRuntime();
  direct->Initialize(setup.basis, setup.targets);

  const auto controls = ControlVectors(6, setup.knots);
  std::vector<Literal> samples;
  for (const auto& c : controls) {
    samples.push_back(Literal::FromVector(Shape({setup.knots}),
                                          std::vector<float>(c)));
  }
  std::vector<const Literal*> ptrs;
  for (const Literal& s : samples) ptrs.push_back(&s);
  const Literal out = servable.RunBatch(
      AssembleBatch(ptrs, servable.sample_shape(),
                    servable.PaddedBatch(static_cast<int>(ptrs.size()))));
  ASSERT_EQ(out.shape, Shape({6, 1}));
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const float direct_loss = direct->Loss(controls[i]);
    EXPECT_EQ(std::memcmp(&direct_loss, out.data.data() + i, sizeof(float)),
              0)
        << "row " << i;
  }
}

TEST(SplineServableTest, GradientBitwiseMatchesDirectInterpreter) {
  const SplineSetup setup = MakeSplineSetup();
  auto served_runtime = frameworks::MakeS4tfMobileRuntime();
  served_runtime->Initialize(setup.basis, setup.targets);
  SplineServable servable("spline-grad", std::move(served_runtime),
                          setup.knots, SplineSignal::kGradient);

  auto direct = frameworks::MakeS4tfMobileRuntime();
  direct->Initialize(setup.basis, setup.targets);

  const auto controls = ControlVectors(4, setup.knots);
  std::vector<Literal> samples;
  for (const auto& c : controls) {
    samples.push_back(Literal::FromVector(Shape({setup.knots}),
                                          std::vector<float>(c)));
  }
  std::vector<const Literal*> ptrs;
  for (const Literal& s : samples) ptrs.push_back(&s);
  const Literal out = servable.RunBatch(
      AssembleBatch(ptrs, servable.sample_shape(),
                    servable.PaddedBatch(static_cast<int>(ptrs.size()))));
  ASSERT_EQ(out.shape, Shape({4, setup.knots}));
  for (std::size_t i = 0; i < controls.size(); ++i) {
    const std::vector<float> grad = direct->Gradient(controls[i]);
    const Literal row = SliceSample(out, static_cast<int>(i));
    ASSERT_EQ(static_cast<std::size_t>(row.size()), grad.size());
    EXPECT_EQ(std::memcmp(grad.data(), row.data.data(),
                          grad.size() * sizeof(float)),
              0)
        << "row " << i;
  }
}

}  // namespace
}  // namespace s4tf::serve
