// Threaded serving runtime tests: liveness, output correctness, admission
// control, and clean failure semantics under real concurrency (these run
// under TSAN in CI via the `serve` ctest label).
#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/mlp.h"
#include "support/rng.h"
#include "tests/serve/test_servables.h"

namespace s4tf::serve {
namespace {

Literal ScalarSample(float value) {
  return Literal::FromVector(Shape({1}), {value});
}

TEST(ServerTest, ServesAllRequestsBitIdenticalToReference) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);
  XlaServable servable("mlp", model.Fn(), model.sample_shape());
  servable.Warmup();

  BatchingOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.batch_timeout_ns = 100'000;
  Server server(servable, options);

  std::vector<Literal> samples;
  std::vector<std::shared_ptr<ServeFuture>> futures;
  Rng sample_rng(11);
  for (int i = 0; i < 32; ++i) {
    std::vector<float> data(6);
    sample_rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
    samples.push_back(
        Literal::FromVector(model.sample_shape(), std::move(data)));
    futures.push_back(server.Submit(samples.back()));
  }
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)]->Wait().ok())
        << "request " << i;
    const Literal expected =
        model.ReferenceForward(samples[static_cast<std::size_t>(i)]);
    const Literal& got = futures[static_cast<std::size_t>(i)]->output();
    ASSERT_EQ(expected.shape, got.shape);
    EXPECT_EQ(std::memcmp(expected.data.data(), got.data.data(),
                          static_cast<std::size_t>(expected.size()) *
                              sizeof(float)),
              0)
        << "request " << i;
  }
  server.Shutdown();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 32);
  EXPECT_EQ(stats.accepted, 32);
  EXPECT_EQ(stats.responses, 32);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.failed, 0);
}

TEST(ServerTest, ConcurrentClientsAllServed) {
  FixedCostServable servable(1e-6);
  BatchingOptions options;
  options.num_workers = 4;
  options.max_batch = 8;
  options.max_queue = 4096;
  Server server(servable, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 32;
  std::vector<std::thread> clients;
  std::mutex results_mutex;
  int wrong = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::shared_ptr<ServeFuture>> futures;
      for (int i = 0; i < kPerClient; ++i) {
        futures.push_back(
            server.Submit(ScalarSample(static_cast<float>(c * 1000 + i))));
      }
      int bad = 0;
      for (int i = 0; i < kPerClient; ++i) {
        const auto& f = futures[static_cast<std::size_t>(i)];
        if (!f->Wait().ok()) {
          bad++;
          continue;
        }
        // FixedCostServable computes in + 1.
        const float expected = static_cast<float>(c * 1000 + i) + 1.0f;
        if (f->output().data.data()[0] != expected) bad++;
      }
      std::lock_guard<std::mutex> lock(results_mutex);
      wrong += bad;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong, 0);
  server.Shutdown();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.accepted, kClients * kPerClient);
  EXPECT_EQ(stats.responses, kClients * kPerClient);
}

TEST(ServerTest, SheddingBoundedQueueCleanStatuses) {
  BlockingServable servable;
  BatchingOptions options;
  options.num_workers = 1;
  options.max_batch = 1;
  options.batch_timeout_ns = 0;  // dispatch immediately
  options.max_queue = 2;
  Server server(servable, options);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  // First request occupies the single worker inside RunBatch...
  auto in_service = server.Submit(ScalarSample(0));
  servable.WaitForEntered(1);
  // ...two more fill the bounded queue...
  auto queued1 = server.Submit(ScalarSample(1));
  auto queued2 = server.Submit(ScalarSample(2));
  // ...and everything beyond sheds instantly with a clean status (no
  // hanging, no torn batches: the shed futures are already done).
  std::vector<std::shared_ptr<ServeFuture>> shed;
  for (int i = 0; i < 5; ++i) {
    shed.push_back(server.Submit(ScalarSample(static_cast<float>(3 + i))));
  }
  for (const auto& f : shed) {
    EXPECT_TRUE(f->done());
    const Status& status = f->Wait();
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  }

  servable.Release();
  EXPECT_TRUE(in_service->Wait().ok());
  EXPECT_TRUE(queued1->Wait().ok());
  EXPECT_TRUE(queued2->Wait().ok());
  server.Shutdown();

  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.shed, 5);
  EXPECT_EQ(stats.responses, 3);
  EXPECT_EQ(stats.accepted + stats.shed, stats.submitted);

  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("serve.requests"), 8);
  EXPECT_EQ(delta.at("serve.shed"), 5);
  EXPECT_EQ(delta.at("serve.responses"), 3);
}

TEST(ServerTest, SubmitAfterShutdownRejectsCleanly) {
  FixedCostServable servable(1e-6);
  Server server(servable, BatchingOptions{});
  server.Shutdown();
  auto future = server.Submit(ScalarSample(1));
  EXPECT_TRUE(future->done());
  EXPECT_EQ(future->Wait().code(), StatusCode::kFailedPrecondition);
}

TEST(ServerTest, ShutdownDrainsAcceptedRequests) {
  FixedCostServable servable(1e-6);
  BatchingOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  // A long coalescing window: shutdown must flush partial batches instead
  // of waiting it out (and must never drop an accepted request).
  options.batch_timeout_ns = 2'000'000'000;
  options.max_queue = 64;
  Server server(servable, options);

  std::vector<std::shared_ptr<ServeFuture>> futures;
  for (int i = 0; i < 11; ++i) {
    futures.push_back(server.Submit(ScalarSample(static_cast<float>(i))));
  }
  server.Shutdown();
  for (int i = 0; i < 11; ++i) {
    const auto& f = futures[static_cast<std::size_t>(i)];
    ASSERT_TRUE(f->Wait().ok()) << "request " << i;
    EXPECT_EQ(f->output().data.data()[0], static_cast<float>(i) + 1.0f);
  }
  EXPECT_EQ(server.stats().responses, 11);
}

TEST(ServerTest, FailedBatchFailsEveryMemberCleanly) {
  ThrowingServable servable;
  BatchingOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.batch_timeout_ns = 50'000;
  Server server(servable, options);

  std::vector<std::shared_ptr<ServeFuture>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.Submit(ScalarSample(static_cast<float>(i))));
  }
  for (const auto& f : futures) {
    const Status& status = f->Wait();
    EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  }
  server.Shutdown();
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.accepted, 8);
  EXPECT_EQ(stats.failed, 8);
  EXPECT_EQ(stats.responses, 0);
}

// Racing cold-start: many workers hammering an unwarmed XlaServable must
// compile each padded shape exactly once (the serving-pool version of the
// CompileCache race audit in compile_cache_race_test.cpp).
TEST(ServerTest, WorkerPoolColdCacheCompilesOncePerShape) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);
  XlaServable servable("mlp", model.Fn(), model.sample_shape());

  BatchingOptions options;
  options.num_workers = 4;
  options.max_batch = 4;
  options.batch_timeout_ns = 20'000;
  options.max_queue = 256;
  Server server(servable, options);

  std::vector<std::shared_ptr<ServeFuture>> futures;
  Rng sample_rng(13);
  for (int i = 0; i < 64; ++i) {
    std::vector<float> data(6);
    sample_rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
    futures.push_back(server.Submit(
        Literal::FromVector(model.sample_shape(), std::move(data))));
  }
  for (const auto& f : futures) ASSERT_TRUE(f->Wait().ok());
  server.Shutdown();

  // Batch composition is schedule-dependent, but padded sizes are drawn
  // from {1, 2, 4}: at most 3 compiles, never one per batch.
  EXPECT_GE(servable.compiles(), 1);
  EXPECT_LE(servable.compiles(), 3);
  EXPECT_EQ(server.stats().responses, 64);
}

}  // namespace
}  // namespace s4tf::serve
