// Deterministic overload suite: the open-loop serving simulation must be
// bit-reproducible — exact counter equalities for shed/batch/queue-depth
// under seeded bursts above capacity, pinned hand-computed schedules for
// fixed arrival processes, and (with numerics on) outputs bit-identical
// to the single-sample reference.
#include "serve/simulator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "serve/mlp.h"
#include "support/rng.h"
#include "tests/serve/test_servables.h"

namespace s4tf::serve {
namespace {

TEST(ArrivalsTest, FixedGapArrivals) {
  ArrivalProcess process;
  process.num_requests = 4;
  process.fixed_interarrival_ns = 1000;
  const std::vector<std::int64_t> arrivals = GenerateArrivals(process);
  EXPECT_EQ(arrivals, (std::vector<std::int64_t>{0, 1000, 2000, 3000}));
}

TEST(ArrivalsTest, SeededExponentialArrivalsReproducible) {
  ArrivalProcess process;
  process.seed = 42;
  process.num_requests = 256;
  process.mean_interarrival_ns = 50'000;
  const auto a = GenerateArrivals(process);
  const auto b = GenerateArrivals(process);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 256u);
  EXPECT_EQ(a.front(), 0);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);

  ArrivalProcess other = process;
  other.seed = 43;
  EXPECT_NE(GenerateArrivals(other), a);
}

// Overload run reused by several tests: service is 10x slower than
// arrivals with a queue of 2, so most of the burst must shed.
//
// Hand-computed schedule (1 worker, max_batch 1, timeout 0, cost 10us,
// gap 1us, 20 requests):
//   r0 dispatches at 0 (done 10us); r1, r2 queue; r3..r9 shed.
//   10us: r1 dispatches (done 20us), r10 arrives into the queue;
//         r11..r19 shed. 20us: r2 (done 30us). 30us: r10 (done 40us).
// => completed {r0, r1, r2, r10}, shed 16, batches 4, makespan 40us,
//    latencies {10, 19, 28, 30}us.
SimResult RunPinnedOverload(Servable& servable) {
  ArrivalProcess process;
  process.num_requests = 20;
  process.fixed_interarrival_ns = 1000;
  SimOptions options;
  options.batching.max_batch = 1;
  options.batching.batch_timeout_ns = 0;
  options.batching.max_queue = 2;
  options.batching.num_workers = 1;
  return SimulateServing(servable, GenerateArrivals(process), options);
}

TEST(SimulatorTest, OverloadShedsDeterministicallyPinnedSchedule) {
  FixedCostServable servable(10e-6);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const SimResult result = RunPinnedOverload(servable);

  EXPECT_EQ(result.completed, 4);
  EXPECT_EQ(result.shed, 16);
  EXPECT_EQ(result.batches, 4);
  EXPECT_EQ(result.batch_samples, 4);
  EXPECT_EQ(result.padded_samples, 0);
  EXPECT_EQ(result.max_queue_depth, 2);
  EXPECT_EQ(result.makespan_ns, 40'000);
  // Sorted latencies {10, 19, 28, 30}us: p50 = index 1, p99 = index 2.
  EXPECT_EQ(result.p50_ms, 0.019);
  EXPECT_EQ(result.p99_ms, 0.028);
  EXPECT_EQ(result.throughput_rps, 4.0 / 40e-6);

  // The exact counter equalities the overload contract promises.
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("serve.requests"), 20);
  EXPECT_EQ(delta.at("serve.shed"), 16);
  EXPECT_EQ(delta.at("serve.accepted"), 4);
  EXPECT_EQ(delta.at("serve.responses"), 4);
  EXPECT_EQ(delta.at("serve.batches"), 4);
}

TEST(SimulatorTest, ShedRequestsGetCleanUnavailableStatus) {
  FixedCostServable servable(10e-6);
  const SimResult result = RunPinnedOverload(servable);
  int ok = 0, unavailable = 0;
  for (const SimRequestResult& rr : result.requests) {
    if (rr.status.ok()) {
      ok++;
      EXPECT_GE(rr.completion_ns, 0);
    } else {
      // Every shed request carries exactly Status::Unavailable — never a
      // hang (all 20 have a terminal status) and never a torn batch.
      EXPECT_EQ(rr.status.code(), StatusCode::kUnavailable)
          << rr.status.ToString();
      unavailable++;
      EXPECT_EQ(rr.completion_ns, -1);
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(unavailable, 16);
}

TEST(SimulatorTest, RerunBitStableUnderSeededBurstyOverload) {
  // Poisson-like bursts at 2x the service rate with a bounded queue: the
  // regime where threaded timing would scatter — the simulation must not.
  auto run = [] {
    FixedCostServable servable(40e-6, /*pad_max=*/8);
    ArrivalProcess process;
    process.seed = 1234;
    process.num_requests = 512;
    process.mean_interarrival_ns = 1'250;
    SimOptions options;
    options.batching.max_batch = 8;
    options.batching.batch_timeout_ns = 10'000;
    options.batching.max_queue = 16;
    options.batching.num_workers = 2;
    return SimulateServing(servable, GenerateArrivals(process), options);
  };
  const SimResult a = run();
  const SimResult b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.batch_samples, b.batch_samples);
  EXPECT_EQ(a.padded_samples, b.padded_samples);
  EXPECT_EQ(a.max_queue_depth, b.max_queue_depth);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  // Bit equality, not near-equality: these are doubles derived from
  // integer nanoseconds.
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].arrival_ns, b.requests[i].arrival_ns);
    EXPECT_EQ(a.requests[i].completion_ns, b.requests[i].completion_ns);
    EXPECT_EQ(a.requests[i].status.code(), b.requests[i].status.code());
  }
  // Overload actually happened (otherwise this pins nothing).
  EXPECT_GT(a.shed, 0);
  EXPECT_LT(a.completed, 512);
  EXPECT_EQ(a.completed + a.shed, 512);
}

TEST(SimulatorTest, BurstCoalescesIntoFullBatches) {
  FixedCostServable servable(10e-6);
  ArrivalProcess process;
  process.num_requests = 32;
  process.fixed_interarrival_ns = 0;  // one instantaneous burst
  SimOptions options;
  options.batching.max_batch = 8;
  options.batching.batch_timeout_ns = 100'000;
  options.batching.max_queue = 64;
  options.batching.num_workers = 1;
  const SimResult result =
      SimulateServing(servable, GenerateArrivals(process), options);
  EXPECT_EQ(result.completed, 32);
  EXPECT_EQ(result.batches, 4);  // 32 requests / max_batch 8
  EXPECT_EQ(result.batch_samples, 32);
  EXPECT_EQ(result.padded_samples, 0);
  EXPECT_EQ(result.max_queue_depth, 32);
  EXPECT_EQ(result.makespan_ns, 40'000);  // 4 sequential batches x 10us
}

TEST(SimulatorTest, TimeoutFlushesPartialPaddedBatch) {
  FixedCostServable servable(10e-6, /*pad_max=*/8);
  ArrivalProcess process;
  process.num_requests = 3;
  process.fixed_interarrival_ns = 0;
  SimOptions options;
  options.batching.max_batch = 8;
  options.batching.batch_timeout_ns = 5'000;
  options.batching.num_workers = 1;
  const SimResult result =
      SimulateServing(servable, GenerateArrivals(process), options);
  // 3 requests never fill the batch; the timeout flushes them at 5us as
  // one batch of 3 padded to 4.
  EXPECT_EQ(result.batches, 1);
  EXPECT_EQ(result.batch_samples, 3);
  EXPECT_EQ(result.padded_samples, 1);
  EXPECT_EQ(result.completed, 3);
  EXPECT_EQ(result.makespan_ns, 15'000);  // 5us timeout + 10us service
  for (const SimRequestResult& rr : result.requests) {
    EXPECT_EQ(rr.completion_ns, 15'000);
  }
}

TEST(SimulatorTest, NumericsBitIdenticalToReferenceAcrossBatchSizes) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);

  // Fixed request samples shared by every configuration.
  constexpr int kRequests = 24;
  std::vector<Literal> samples;
  Rng sample_rng(21);
  for (int i = 0; i < kRequests; ++i) {
    std::vector<float> data(6);
    sample_rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
    samples.push_back(
        Literal::FromVector(model.sample_shape(), std::move(data)));
  }

  for (int max_batch : {1, 4, 8}) {
    XlaServableOptions xla_options;
    xla_options.max_batch = max_batch;
    XlaServable servable("mlp", model.Fn(), model.sample_shape(),
                         xla_options);
    ArrivalProcess process;
    process.seed = 5;
    process.num_requests = kRequests;
    process.mean_interarrival_ns = 30'000;
    SimOptions options;
    options.batching.max_batch = max_batch;
    options.batching.batch_timeout_ns = 50'000;
    options.batching.max_queue = kRequests;  // nothing sheds
    options.batching.num_workers = 2;
    options.execute_numerics = true;
    options.make_sample = [&samples](int index) {
      return samples[static_cast<std::size_t>(index)];
    };
    const SimResult result =
        SimulateServing(servable, GenerateArrivals(process), options);
    ASSERT_EQ(result.completed, kRequests) << "max_batch=" << max_batch;
    for (int i = 0; i < kRequests; ++i) {
      const SimRequestResult& rr =
          result.requests[static_cast<std::size_t>(i)];
      ASSERT_TRUE(rr.status.ok());
      const Literal expected =
          model.ReferenceForward(samples[static_cast<std::size_t>(i)]);
      ASSERT_EQ(expected.shape, rr.output.shape);
      EXPECT_EQ(std::memcmp(expected.data.data(), rr.output.data.data(),
                            static_cast<std::size_t>(expected.size()) *
                                sizeof(float)),
                0)
          << "max_batch=" << max_batch << " request=" << i;
    }
  }
}

TEST(SimulatorTest, QueueDepthHighWaterPinned) {
  FixedCostServable servable(100e-6);
  ArrivalProcess process;
  process.num_requests = 10;
  process.fixed_interarrival_ns = 1000;
  SimOptions options;
  options.batching.max_batch = 1;
  options.batching.batch_timeout_ns = 0;
  options.batching.max_queue = 6;
  options.batching.num_workers = 1;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const std::int64_t gauge_before =
      before.gauges.count("serve.queue_depth")
          ? before.gauges.at("serve.queue_depth")
          : 0;
  const SimResult result =
      SimulateServing(servable, GenerateArrivals(process), options);
  // r0 in service at t=0; r1..r6 fill the queue to its bound of 6; the
  // 100us service time means no completion frees space before r7..r9
  // arrive, so all three shed.
  EXPECT_EQ(result.max_queue_depth, 6);
  EXPECT_EQ(result.shed, 3);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.gauges.at("serve.queue_depth"), 6);
  EXPECT_GE(after.gauges.at("serve.queue_depth"), gauge_before);
}

}  // namespace
}  // namespace s4tf::serve
