// Concurrency audit for xla::CompileCache::GetOrCompile under a serving
// worker pool: N workers racing on a cold cache must compile exactly once
// per distinct program (counter-backed; the serve suite runs under TSAN
// in CI, so the lock discipline is checked too).
#include "xla/compiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "lazy/lazy_tensor.h"
#include "serve/mlp.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace s4tf::serve {
namespace {

// Traces the test MLP at one batch size and returns the lowered module.
xla::HloModule TraceMlp(const MlpModel& model, int batch) {
  LazyBackend backend;
  const Tensor input =
      Tensor::Zeros(Shape({batch, model.input_size}), backend.device());
  const Tensor output = model.Fn()(input);
  auto* impl = dynamic_cast<LazyImpl*>(output.impl().get());
  std::vector<std::shared_ptr<LazyNode>> leaves;
  return LowerTrace({impl->node()}, &leaves);
}

TEST(CompileCacheRaceTest, RacingWorkersCompileExactlyOnce) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);
  const xla::HloModule module = TraceMlp(model, 8);

  xla::CompileCache cache;
  constexpr int kCalls = 32;
  std::vector<std::shared_ptr<xla::Executable>> executables(kCalls);
  ThreadPool pool(8);
  pool.ParallelFor(kCalls, [&](std::int64_t i) {
    executables[static_cast<std::size_t>(i)] = cache.GetOrCompile(module);
  });

  // Exactly one compile; every other call was a hit on the same object.
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), kCalls - 1);
  EXPECT_EQ(cache.size(), 1u);
  for (int i = 1; i < kCalls; ++i) {
    EXPECT_EQ(executables[static_cast<std::size_t>(i)], executables[0]);
  }
}

TEST(CompileCacheRaceTest, DistinctShapesCompileIndependentlyUnderRace) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);
  const xla::HloModule batch1 = TraceMlp(model, 1);
  const xla::HloModule batch8 = TraceMlp(model, 8);

  xla::CompileCache cache;
  constexpr int kCalls = 32;
  std::vector<std::shared_ptr<xla::Executable>> executables(kCalls);
  ThreadPool pool(8);
  pool.ParallelFor(kCalls, [&](std::int64_t i) {
    const xla::HloModule& module = (i % 2 == 0) ? batch1 : batch8;
    executables[static_cast<std::size_t>(i)] = cache.GetOrCompile(module);
  });

  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), kCalls - 2);
  EXPECT_EQ(cache.size(), 2u);
  // Each parity class resolved to one executable, and they differ.
  for (int i = 2; i < kCalls; ++i) {
    EXPECT_EQ(executables[static_cast<std::size_t>(i)],
              executables[static_cast<std::size_t>(i % 2)]);
  }
  EXPECT_NE(executables[0], executables[1]);
}

// Re-tracing the same model at the same shape with fresh literal data must
// fingerprint-hit (constants are excluded from the fingerprint): this is
// what makes per-request re-traces free in steady state.
TEST(CompileCacheRaceTest, RetracedModuleHitsCache) {
  Rng rng(7);
  const MlpModel model = MlpModel::Create(6, 10, 4, rng);
  xla::CompileCache cache;
  const auto first = cache.GetOrCompile(TraceMlp(model, 4));
  const auto second = cache.GetOrCompile(TraceMlp(model, 4));
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace s4tf::serve
