#include "frameworks/mobile.h"

#include <cmath>
#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/models/spline.h"

namespace s4tf::frameworks {
namespace {

struct SplineSetup {
  Literal basis;
  std::vector<float> targets;
  std::vector<float> initial;
};

SplineSetup MakeSetup(int samples = 128, int knots = 12) {
  const nn::SplineData data = nn::MakeGlobalSplineData(samples, 321);
  SplineSetup s{nn::BuildSplineBasis(data.xs, knots).ToLiteral(),
          data.targets.ToVector(),
          std::vector<float>(static_cast<std::size_t>(knots), 0.0f)};
  return s;
}

class RuntimeParityTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<SplineRuntime> Make(const std::string& which) {
    if (which == "tf-mobile") return MakeTfMobileLikeRuntime();
    if (which == "tflite") return MakeTfLiteLikeRuntime();
    if (which == "tflite-fused") return MakeTfLiteFusedRuntime();
    return MakeS4tfMobileRuntime();
  }
};

TEST_P(RuntimeParityTest, LossAndGradientMatchReference) {
  const SplineSetup setup = MakeSetup();
  auto runtime = Make(GetParam());
  runtime->Initialize(setup.basis, setup.targets);
  auto reference = MakeS4tfMobileRuntime();
  reference->Initialize(setup.basis, setup.targets);

  std::vector<float> c(setup.initial.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = 0.1f * static_cast<float>(i) - 0.3f;
  }
  // The paper verified all frameworks' control points match within 1.5%;
  // our runtimes share kernels, so loss/gradients agree to float noise.
  EXPECT_NEAR(runtime->Loss(c), reference->Loss(c),
              1e-4f * (1.0f + reference->Loss(c)));
  const auto g1 = runtime->Gradient(c);
  const auto g2 = reference->Gradient(c);
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g2[i], 1e-4f) << "grad[" << i << "]";
  }
}

TEST_P(RuntimeParityTest, BacktrackingFitConverges) {
  const SplineSetup setup = MakeSetup();
  auto runtime = Make(GetParam());
  runtime->Initialize(setup.basis, setup.targets);
  const FitResult result =
      BacktrackingFit(*runtime, setup.initial, /*max_iterations=*/60);
  EXPECT_LT(result.final_loss, 0.01f);
  EXPECT_GT(result.iterations, 1);
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, RuntimeParityTest,
                         ::testing::Values("tf-mobile", "tflite",
                                           "tflite-fused", "s4tf"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RuntimeAgreementTest, FittedControlPointsMatchWithin1Point5Percent) {
  // The paper's cross-framework validation: "the results of all three
  // frameworks were verified to produce control point values that matched
  // within 1.5% of each other."
  const SplineSetup setup = MakeSetup();
  std::vector<std::vector<float>> fits;
  for (auto make : {MakeTfMobileLikeRuntime, MakeTfLiteLikeRuntime,
                    MakeTfLiteFusedRuntime, MakeS4tfMobileRuntime}) {
    auto runtime = make();
    runtime->Initialize(setup.basis, setup.targets);
    fits.push_back(BacktrackingFit(*runtime, setup.initial, 60).control_points);
  }
  for (std::size_t r = 1; r < fits.size(); ++r) {
    for (std::size_t i = 0; i < fits[0].size(); ++i) {
      const float reference = fits[0][i];
      const float tolerance =
          0.015f * std::max(1.0f, std::fabs(reference));
      EXPECT_NEAR(fits[r][i], reference, tolerance)
          << "runtime " << r << " control point " << i;
    }
  }
}

TEST(RuntimeMemoryTest, TfMobileRetainsFarMoreThanTfLite) {
  const SplineSetup setup = MakeSetup(512, 16);
  MemoryMeter& meter = MemoryMeter::Global();

  auto measure = [&](std::unique_ptr<SplineRuntime> runtime) {
    const std::int64_t before = meter.current_bytes();
    meter.ResetPeak();
    runtime->Initialize(setup.basis, setup.targets);
    BacktrackingFit(*runtime, setup.initial, 30);
    const std::int64_t peak = meter.peak_bytes() - before;
    return peak;
  };

  const std::int64_t tf_mobile = measure(MakeTfMobileLikeRuntime());
  const std::int64_t tflite = measure(MakeTfLiteLikeRuntime());
  const std::int64_t fused = measure(MakeTfLiteFusedRuntime());
  EXPECT_GT(tf_mobile, 4 * tflite);  // retained graph outputs dominate
  EXPECT_LE(fused, tflite);
}

TEST(BinaryFootprintTest, ModeledSizesMatchPaperOrdering) {
  const auto footprints = ModeledBinaryFootprints();
  ASSERT_EQ(footprints.size(), 4u);
  const auto total = [&](const std::string& name) -> std::int64_t {
    for (const auto& f : footprints) {
      if (f.platform == name) return f.total();
    }
    return -1;
  };
  // TF Mobile (6.2 MB) > S4TF (3.6 MB) > TFLite (1.8 MB) in the paper.
  EXPECT_GT(total("tf-mobile-like"), total("s4tf"));
  EXPECT_GT(total("s4tf"), total("tflite-like"));
  EXPECT_EQ(total("tflite-like"), total("tflite-fused-like"));
}

TEST(BacktrackingFitTest, StopsAtToleranceOnFlatLandscape) {
  auto runtime = MakeTfLiteFusedRuntime();
  // Constant-zero targets with zero start: gradient is exactly zero.
  Literal basis = nn::BuildSplineBasis({0.0f, 0.5f, 1.0f}, 3).ToLiteral();
  runtime->Initialize(basis, {0.0f, 0.0f, 0.0f});
  const FitResult result =
      BacktrackingFit(*runtime, {0.0f, 0.0f, 0.0f}, 50);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_NEAR(result.final_loss, 0.0f, 1e-8f);
}

}  // namespace
}  // namespace s4tf::frameworks
