#include "frameworks/staged.h"

#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/models/lenet.h"
#include "frameworks/profiles.h"

namespace s4tf::frameworks {
namespace {

TEST(StagedTrainStepTest, MatchesDirectTrainingLossTrajectory) {
  // Graph-mode staged execution must compute the exact same training
  // trajectory as the direct (naive-device) tape loop.
  const auto dataset = nn::SyntheticImageDataset::Mnist(32, 99);
  const float lr = 0.05f;

  // Reference: direct training on the naive device.
  Rng rng1(7);
  nn::LeNet reference(rng1);
  nn::SGD<nn::LeNet> sgd(lr);
  std::vector<float> reference_losses;
  for (int step = 0; step < 3; ++step) {
    const auto batch = dataset.Batch(step, 8, NaiveDevice());
    reference_losses.push_back(nn::TrainStep(
        reference, sgd, [&batch](const nn::LeNet& m) {
          return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
        }));
  }

  // Staged: compile once, re-run with fresh batches.
  Rng rng2(7);
  const nn::LeNet model(rng2);
  StagedOptions options;
  options.learning_rate = lr;
  StagedTrainStep<nn::LeNet> staged(model, Shape({8, 28, 28, 1}), 10,
                                    options);
  for (int step = 0; step < 3; ++step) {
    const auto batch = dataset.Batch(step, 8, NaiveDevice());
    const float loss =
        staged.Run(batch.images.ToLiteral(), batch.one_hot.ToLiteral());
    EXPECT_NEAR(loss, reference_losses[static_cast<std::size_t>(step)], 1e-3f)
        << "step " << step;
  }
}

TEST(StagedTrainStepTest, CompilesExactlyOnce) {
  Rng rng(8);
  const nn::LeNet model(rng);
  StagedTrainStep<nn::LeNet> staged(model, Shape({4, 28, 28, 1}), 10);
  const double compile_cost = staged.compile_seconds();
  EXPECT_GT(compile_cost, 0.0);
  const auto dataset = nn::SyntheticImageDataset::Mnist(16, 3);
  for (int step = 0; step < 4; ++step) {
    const auto batch = dataset.Batch(step, 4, NaiveDevice());
    staged.Run(batch.images.ToLiteral(), batch.one_hot.ToLiteral());
  }
  EXPECT_EQ(staged.compile_seconds(), compile_cost);  // no recompiles
  EXPECT_EQ(staged.steps(), 4);
}

TEST(StagedTrainStepTest, HostCostIsPerStepNotPerOp) {
  Rng rng(9);
  const nn::LeNet model(rng);
  StagedOptions options;
  options.session_overhead_seconds = 1e-3;
  StagedTrainStep<nn::LeNet> staged(model, Shape({4, 28, 28, 1}), 10,
                                    options);
  const auto dataset = nn::SyntheticImageDataset::Mnist(16, 3);
  for (int step = 0; step < 5; ++step) {
    const auto batch = dataset.Batch(step, 4, NaiveDevice());
    staged.Run(batch.images.ToLiteral(), batch.one_hot.ToLiteral());
  }
  EXPECT_NEAR(staged.host_seconds(), 5e-3, 1e-9);
  // The program has hundreds of instructions; per-op pricing would cost
  // orders of magnitude more host time.
  EXPECT_GT(staged.program_size(), 100);
}

TEST(StagedTrainStepTest, WeightsEvolve) {
  Rng rng(10);
  const nn::LeNet model(rng);
  StagedTrainStep<nn::LeNet> staged(model, Shape({4, 28, 28, 1}), 10);
  const auto before = staged.weights()[0].data.ToVector();
  const auto dataset = nn::SyntheticImageDataset::Mnist(16, 4);
  const auto batch = dataset.Batch(0, 4, NaiveDevice());
  staged.Run(batch.images.ToLiteral(), batch.one_hot.ToLiteral());
  EXPECT_NE(staged.weights()[0].data.ToVector(), before);
}

TEST(ProfilesTest, Table3OrderingConstants) {
  // The host-cost constants must preserve the paper's structure: S4TF
  // eager has the heaviest per-op path; PyTorch the lightest; lazy traces
  // cheaper than eager dispatches.
  EXPECT_GT(S4tfEagerProfile().per_op_host_seconds,
            S4tfLazyProfile().per_op_host_seconds);
  EXPECT_GT(S4tfEagerProfile().per_op_host_seconds,
            PyTorchLikeProfile().per_op_host_seconds);
  EXPECT_FALSE(PyTorchLikeProfile().fusion);
  EXPECT_TRUE(S4tfLazyProfile().fusion);
  EXPECT_EQ(TensorFlowGraphProfile().strategy,
            ExecutionStrategy::kStagedGraph);
}

TEST(ProfilesTest, Table2EfficiencyOrdering) {
  EXPECT_GT(Table2TensorFlowProfile().device_efficiency,
            Table2JaxFlaxProfile().device_efficiency);
  EXPECT_NEAR(Table2JaxFlaxProfile().device_efficiency,
              Table2S4tfProfile().device_efficiency, 0.1);
}

}  // namespace
}  // namespace s4tf::frameworks
