// Concurrency hammer for the metrics registry and tracer. The assertions
// are deliberately simple (sums add up, nothing crashes); the real check
// is running this under ThreadSanitizer, which the CI tsan job does via
// the "obs" ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/threadpool.h"

namespace s4tf::obs {
namespace {

class RegistryHammerTest : public ::testing::Test {
 protected:
  void SetUp() override { SetIntraOpThreads(4); }
  void TearDown() override { SetIntraOpThreads(0); }
};

TEST_F(RegistryHammerTest, ConcurrentRegistrationAndIncrement) {
  constexpr std::int64_t kIters = 2000;
  constexpr int kNames = 8;
  // Every shard resolves a rotating name (racing registration of the same
  // instrument from several workers) and bumps it.
  ParallelForRange(kIters, /*grain=*/1, [](std::int64_t begin,
                                           std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      Counter* counter = GetCounter("test.hammer.counter." +
                                    std::to_string(i % kNames));
      counter->Increment();
    }
  });
  std::int64_t total = 0;
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (int n = 0; n < kNames; ++n) {
    total += snapshot.counter("test.hammer.counter." + std::to_string(n));
  }
  // >= because ctest may run this binary's tests repeatedly in-process;
  // the first run contributes exactly kIters.
  EXPECT_GE(total, kIters);
  EXPECT_EQ(total % kIters, 0);
}

TEST_F(RegistryHammerTest, SnapshotsMidFlightSeeConsistentValues) {
  Counter* counter = GetCounter("test.hammer.mid_flight");
  const std::int64_t start = counter->value();
  constexpr std::int64_t kIters = 4000;
  std::atomic<bool> done{false};
  // Snapshot continuously from the main thread while workers increment.
  std::thread snapshotter([&] {
    std::int64_t last = start;
    while (!done.load(std::memory_order_acquire)) {
      const std::int64_t seen =
          MetricsRegistry::Global().Snapshot().counter(
              "test.hammer.mid_flight");
      EXPECT_GE(seen, last);  // monotone under concurrent increments
      EXPECT_LE(seen, start + kIters);
      last = seen;
    }
  });
  ParallelForRange(kIters, /*grain=*/16,
                   [&](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       counter->Increment();
                     }
                   });
  done.store(true, std::memory_order_release);
  snapshotter.join();
  EXPECT_EQ(counter->value(), start + kIters);
}

TEST_F(RegistryHammerTest, GaugesAndHistogramsFromWorkers) {
  Gauge* gauge = GetGauge("test.hammer.gauge");
  Histogram* histogram = GetHistogram("test.hammer.histogram");
  const std::int64_t start_count = histogram->count();
  constexpr std::int64_t kIters = 2000;
  ParallelForRange(kIters, /*grain=*/4,
                   [&](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       gauge->SetMax(i);
                       histogram->Record(static_cast<double>(i % 64) * 1e-6);
                     }
                   });
  EXPECT_EQ(gauge->value(), kIters - 1);
  EXPECT_EQ(histogram->count(), start_count + kIters);
}

TEST_F(RegistryHammerTest, TracerRecordsFromWorkersWithoutTearing) {
  const std::string path = ::testing::TempDir() + "s4tf_hammer_trace.json";
  Tracer::Global().Start(path);
  constexpr std::int64_t kIters = 512;
  ParallelForRange(kIters, /*grain=*/8,
                   [](std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       TraceSpan span("hammer_span", "test", "index", i);
                     }
                   });
  // +1 per-shard span emitted by ParallelForRange itself, so >= kIters.
  EXPECT_GE(Tracer::Global().Stop(), kIters);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s4tf::obs
