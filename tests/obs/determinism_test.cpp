#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "support/rng.h"
#include "support/threadpool.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

// The determinism contract (DESIGN.md): every counter is bit-identical
// across intra-op thread counts, except names ending in ".shards" (shard
// counts legitimately depend on pool size). Gauges and wall-clock
// histograms are excluded — only counters carry the contract.

bool EndsWithShards(const std::string& name) {
  constexpr const char kSuffix[] = ".shards";
  constexpr std::size_t kLen = sizeof(kSuffix) - 1;
  return name.size() >= kLen &&
         name.compare(name.size() - kLen, kLen, kSuffix) == 0;
}

// A fixed workload big enough that the kernels actually shard across the
// pool: matmul, elementwise chain, reduction — all on the default
// (naive) device so every op goes through EvalOpLiteral.
void RunWorkload() {
  Rng rng(1234);
  const Tensor a = Tensor::RandomUniform(Shape({64, 96}), rng, -1, 1);
  const Tensor b = Tensor::RandomUniform(Shape({96, 48}), rng, -1, 1);
  Tensor c = MatMul(a, b);
  c = Relu(c) + c * 0.5f;
  const float value = ReduceSum(Square(c)).ScalarValue();
  ASSERT_TRUE(std::isfinite(value));
}

// Runs the workload under `num_threads` and returns the counter delta it
// produced, with the exempt ".shards" names removed.
std::map<std::string, std::int64_t> CountersUnder(int num_threads) {
  SetIntraOpThreads(num_threads);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  RunWorkload();
  auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  for (auto it = delta.begin(); it != delta.end();) {
    it = EndsWithShards(it->first) ? delta.erase(it) : std::next(it);
  }
  return delta;
}

class CounterDeterminismTest : public ::testing::Test {
 protected:
  ~CounterDeterminismTest() override { SetIntraOpThreads(0); }
};

TEST_F(CounterDeterminismTest, BitIdenticalAcrossOneTwoFourThreads) {
  const auto one = CountersUnder(1);
  const auto two = CountersUnder(2);
  const auto four = CountersUnder(4);

  // The workload must have moved the needle at all for this to mean
  // anything.
  ASSERT_GT(one.count("tensor.kernel.dispatches"), 0u);
  EXPECT_GT(one.at("tensor.kernel.dispatches"), 0);

  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST_F(CounterDeterminismTest, RegionCountInvariantButShardsMayVary) {
  SetIntraOpThreads(1);
  const obs::MetricsSnapshot before1 =
      obs::MetricsRegistry::Global().Snapshot();
  RunWorkload();
  const auto delta1 =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before1);

  SetIntraOpThreads(4);
  const obs::MetricsSnapshot before4 =
      obs::MetricsRegistry::Global().Snapshot();
  RunWorkload();
  const auto delta4 =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before4);

  // One region per ParallelForRange call — invariant.
  ASSERT_GT(delta1.count("support.parallel_for.regions"), 0u);
  EXPECT_EQ(delta1.at("support.parallel_for.regions"),
            delta4.at("support.parallel_for.regions"));
  // Shard counts depend on pool size: with more threads at least as many
  // shards are claimed as with one.
  const auto shards_of = [](const std::map<std::string, std::int64_t>& d) {
    auto it = d.find("support.parallel_for.shards");
    return it == d.end() ? std::int64_t{0} : it->second;
  };
  EXPECT_GE(shards_of(delta4), shards_of(delta1));
}

TEST_F(CounterDeterminismTest, RepeatedIdenticalRunsProduceIdenticalDeltas) {
  const auto first = CountersUnder(2);
  const auto second = CountersUnder(2);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace s4tf
