#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace s4tf::obs {
namespace {

// The registry is process-global (shared with the instrumented library
// code linked into this binary), so every test uses names under "test."
// that nothing else touches, and asserts on deltas, never absolutes.

TEST(CounterTest, AddAndIncrementAccumulate) {
  Counter* counter = GetCounter("test.metrics.basic_counter");
  const std::int64_t start = counter->value();
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), start + 42);
}

TEST(CounterTest, SameNameYieldsSamePointer) {
  EXPECT_EQ(GetCounter("test.metrics.aliased"),
            GetCounter("test.metrics.aliased"));
  EXPECT_NE(GetCounter("test.metrics.aliased"),
            GetCounter("test.metrics.aliased2"));
}

TEST(GaugeTest, SetAndSetMax) {
  Gauge* gauge = GetGauge("test.metrics.gauge");
  gauge->Set(10);
  EXPECT_EQ(gauge->value(), 10);
  gauge->SetMax(5);  // lower: no change
  EXPECT_EQ(gauge->value(), 10);
  gauge->SetMax(25);
  EXPECT_EQ(gauge->value(), 25);
}

TEST(HistogramTest, CountTotalsAndBuckets) {
  Histogram* histogram = GetHistogram("test.metrics.latency");
  const std::int64_t start_count = histogram->count();
  histogram->Record(0.0);      // 0us -> bucket 0
  histogram->Record(3e-6);     // 3us
  histogram->Record(100e-6);   // 100us
  EXPECT_EQ(histogram->count(), start_count + 3);
  EXPECT_GE(histogram->total_micros(), 103);
  EXPECT_GE(histogram->max_micros(), 100);
  std::int64_t bucket_sum = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    bucket_sum += histogram->bucket(b);
  }
  EXPECT_EQ(bucket_sum, histogram->count());
}

TEST(SnapshotTest, DeltaSeesExactlyWhatMoved) {
  Counter* moved = GetCounter("test.metrics.delta_moved");
  Counter* still = GetCounter("test.metrics.delta_still");
  (void)still;
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  moved->Add(7);
  const auto delta =
      MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  ASSERT_EQ(delta.count("test.metrics.delta_moved"), 1u);
  EXPECT_EQ(delta.at("test.metrics.delta_moved"), 7);
  EXPECT_EQ(delta.count("test.metrics.delta_still"), 0u);
}

TEST(SnapshotTest, CounterAccessorTreatsAbsentAsZero) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("test.metrics.never_registered"), 0);
}

TEST(TextSummaryTest, ListsNonZeroAndOmitsZero) {
  GetCounter("test.metrics.summary_nonzero")->Add(3);
  Counter* zero = GetCounter("test.metrics.summary_zero");
  (void)zero;
  const std::string summary = MetricsRegistry::Global().TextSummary();
  EXPECT_NE(summary.find("== s4tf metrics =="), std::string::npos);
  EXPECT_NE(summary.find("test.metrics.summary_nonzero"), std::string::npos);
  // Note: other tests may have bumped counters; only assert the zero one
  // stays hidden (it was just created and never incremented).
  EXPECT_EQ(summary.find("test.metrics.summary_zero"), std::string::npos);
}

TEST(RegistryTest, PointersSurviveReset) {
  Counter* counter = GetCounter("test.metrics.reset_survivor");
  counter->Add(5);
  // Reset() is destructive to every instrument in the process. That is
  // fine here: all assertions in this suite are delta- or pointer-based.
  MetricsRegistry::Global().Reset();
  EXPECT_EQ(counter->value(), 0);
  counter->Increment();
  EXPECT_EQ(counter->value(), 1);
  EXPECT_EQ(counter, GetCounter("test.metrics.reset_survivor"));
}

}  // namespace
}  // namespace s4tf::obs
