#include "obs/trace.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "tests/obs/json_mini.h"

namespace s4tf::obs {
namespace {

using testing::JsonValue;
using testing::ParseJson;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "s4tf_" + name + ".json";
}

struct ParsedEvent {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  int tid = 0;
};

// Parses `path`, validating the envelope and per-event schema along the
// way; returns the events in file order.
std::vector<ParsedEvent> ParseTraceFile(const std::string& path) {
  const std::string text = ReadWholeFile(path);
  EXPECT_FALSE(text.empty()) << "trace file missing or empty: " << path;
  JsonValue root;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &root, &error)) << error;
  EXPECT_TRUE(root.is_object());
  EXPECT_TRUE(root.has("traceEvents"));
  std::vector<ParsedEvent> events;
  for (const JsonValue& event : root.at("traceEvents").array()) {
    EXPECT_TRUE(event.is_object());
    EXPECT_EQ(event.at("ph").str(), "X");  // complete events only
    EXPECT_TRUE(event.at("ts").is_number());
    EXPECT_TRUE(event.at("dur").is_number());
    EXPECT_GE(event.at("dur").number(), 0.0);
    ParsedEvent parsed;
    parsed.name = event.at("name").str();
    parsed.ts = event.at("ts").number();
    parsed.dur = event.at("dur").number();
    parsed.tid = static_cast<int>(event.at("tid").number());
    events.push_back(parsed);
  }
  return events;
}

void ExpectMonotonicTimestamps(const std::vector<ParsedEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts)
        << "event " << i << " (" << events[i].name
        << ") starts before its predecessor";
  }
}

// RAII spans on one thread can only produce properly nested intervals:
// walking events in start order with a stack, every event must either be
// contained in the enclosing open span or start after it ended.
void ExpectBalancedNesting(const std::vector<ParsedEvent>& events) {
  constexpr double kEps = 2e-3;  // file rounds to 3 decimals
  std::map<int, std::vector<const ParsedEvent*>> stacks;
  for (const ParsedEvent& event : events) {
    auto& stack = stacks[event.tid];
    while (!stack.empty() &&
           stack.back()->ts + stack.back()->dur <= event.ts + kEps) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(event.ts + event.dur,
                stack.back()->ts + stack.back()->dur + kEps)
          << "span '" << event.name << "' overlaps but is not nested in '"
          << stack.back()->name << "'";
    }
    stack.push_back(&event);
  }
}

TEST(TraceTest, DisabledTracerCostsNothingAndRecordsNothing) {
  // No Start(): spans must be inert no-ops.
  EXPECT_FALSE(Tracer::Global().enabled());
  { TraceSpan span("should_not_appear", "test"); }
  EXPECT_EQ(Tracer::Global().Stop(), 0);
}

TEST(TraceTest, NestedSpansEmitBalancedMonotonicJson) {
  const std::string path = TempPath("nested");
  Tracer::Global().Start(path);
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
      { TraceSpan leaf("leaf", "test", "items", 7); }
    }
    { TraceSpan sibling("sibling", "test"); }
  }
  const std::int64_t written = Tracer::Global().Stop();
  EXPECT_EQ(written, 4);

  const std::vector<ParsedEvent> events = ParseTraceFile(path);
  ASSERT_EQ(events.size(), 4u);
  ExpectMonotonicTimestamps(events);
  ExpectBalancedNesting(events);
  // Sort order puts parents before children: outer first.
  EXPECT_EQ(events[0].name, "outer");
  std::remove(path.c_str());
}

TEST(TraceTest, SpanArgumentsAreEmitted) {
  const std::string path = TempPath("args");
  Tracer::Global().Start(path);
  { TraceSpan span("sized_work", "test", "items", 12345); }
  Tracer::Global().Stop();

  const std::string text = ReadWholeFile(path);
  JsonValue root;
  ASSERT_TRUE(ParseJson(text, &root));
  const auto& events = root.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_TRUE(events[0].has("args"));
  EXPECT_EQ(events[0].at("args").at("items").number(), 12345.0);
  EXPECT_EQ(events[0].at("cat").str(), "test");
  std::remove(path.c_str());
}

TEST(TraceTest, EventsFromMultipleThreadsCarryDistinctTids) {
  const std::string path = TempPath("threads");
  Tracer::Global().Start(path);
  {
    TraceSpan main_span("main_thread", "test");
    std::vector<std::thread> threads;
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([] { TraceSpan span("worker", "test"); });
    }
    for (auto& t : threads) t.join();
  }
  Tracer::Global().Stop();

  const std::vector<ParsedEvent> events = ParseTraceFile(path);
  ASSERT_EQ(events.size(), 3u);
  ExpectMonotonicTimestamps(events);
  ExpectBalancedNesting(events);
  std::set<int> tids;
  for (const auto& event : events) tids.insert(event.tid);
  EXPECT_GE(tids.size(), 3u);  // main + 2 workers
  std::remove(path.c_str());
}

TEST(TraceTest, NameEscapingProducesParseableJson) {
  const std::string path = TempPath("escape");
  Tracer::Global().Start(path);
  {
    TraceEvent event;
    event.name = "quote\" backslash\\ newline\n";
    event.category = "test";
    event.ts_us = 1.0;
    event.dur_us = 1.0;
    Tracer::Global().Record(event);
  }
  Tracer::Global().Stop();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(ReadWholeFile(path), &root, &error)) << error;
  EXPECT_EQ(root.at("traceEvents").array()[0].at("name").str(),
            "quote\" backslash\\ newline\n");
  std::remove(path.c_str());
}

// Regression: WriteFile used to ignore every fprintf/fputs/fclose result,
// silently producing empty or truncated traces on unwritable paths or
// full disks. It must now report on stderr, bump the
// "obs.trace.write_errors" counter, and never leave a partial file.
TEST(TraceWriteErrorTest, UnwritableDirectoryCountsErrorAndLeavesNoFile) {
  Counter* errors = GetCounter("obs.trace.write_errors");
  const std::int64_t before = errors->value();
  const std::string path =
      ::testing::TempDir() + "s4tf_no_such_dir/trace.json";
  Tracer::Global().Start(path);
  { TraceSpan span("doomed", "test"); }
  Tracer::Global().Stop();
  EXPECT_EQ(errors->value(), before + 1);
  struct stat st;
  EXPECT_NE(::stat(path.c_str(), &st), 0) << "no file may be created";
}

TEST(TraceWriteErrorTest, DeviceFullSurfacesFlushErrorAndKeepsNode) {
  // /dev/full: fopen succeeds, the buffered writes appear to succeed, and
  // only the fclose() flush fails with ENOSPC — the disk-full shape the
  // old void WriteFile() swallowed entirely.
  struct stat st;
  if (::stat("/dev/full", &st) != 0 || !S_ISCHR(st.st_mode)) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Counter* errors = GetCounter("obs.trace.write_errors");
  const std::int64_t before = errors->value();
  Tracer::Global().Start("/dev/full");
  { TraceSpan span("doomed", "test"); }
  Tracer::Global().Stop();
  EXPECT_EQ(errors->value(), before + 1);
  // The partial-file cleanup must only unlink regular files, never the
  // device node it was pointed at.
  ASSERT_EQ(::stat("/dev/full", &st), 0);
  EXPECT_TRUE(S_ISCHR(st.st_mode));
}

// --- Acceptance criterion: S4TF_TRACE=<path> against the real LeNet
// example produces a valid Chrome-trace JSON with balanced spans and
// monotonically ordered timestamps.
TEST(TraceEndToEndTest, LenetExampleEmitsValidChromeTrace) {
#ifndef S4TF_LENET_BINARY
  GTEST_SKIP() << "example binary path not configured";
#else
  const std::string path = TempPath("lenet_e2e");
  const std::string command = std::string("S4TF_TRACE=") + path + " " +
                              S4TF_LENET_BINARY + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(command.c_str()), 0) << command;

  const std::vector<ParsedEvent> events = ParseTraceFile(path);
  // A real training run dispatches thousands of kernels.
  EXPECT_GT(events.size(), 100u);
  ExpectMonotonicTimestamps(events);
  ExpectBalancedNesting(events);
  // Spot-check the layers that must appear: conv kernels from the model's
  // forward pass and shard spans from the intra-op pool.
  bool saw_conv = false, saw_matmul = false;
  for (const auto& event : events) {
    if (event.name == "conv2d") saw_conv = true;
    if (event.name == "matmul") saw_matmul = true;
  }
  EXPECT_TRUE(saw_conv);
  EXPECT_TRUE(saw_matmul);
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace s4tf::obs
