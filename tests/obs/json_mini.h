// Compatibility shim: the mini JSON parser grew up and moved to
// src/support/json.h so non-test code (bench_compare, the bench report
// writer's round-trip checks) can use it. Tests keep including this
// header and the s4tf::obs::testing spelling.
#pragma once

#include "support/json.h"

namespace s4tf::obs::testing {

using JsonValue = ::s4tf::json::JsonValue;
using JsonArray = ::s4tf::json::JsonArray;
using JsonObject = ::s4tf::json::JsonObject;
using ::s4tf::json::ParseJson;

}  // namespace s4tf::obs::testing
