#include "lazy/lazy_tensor.h"

#include <gtest/gtest.h>

#include "ad/operators.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

TEST(LazyTensorTest, NothingExecutesUntilObservation) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({32}), lazy);
  Tensor y = Relu(x * 2.0f + 1.0f);
  EXPECT_EQ(backend.ops_traced(), 3);
  EXPECT_EQ(backend.kernels_launched(), 0);  // recorded, not run
  EXPECT_EQ(y.ToVector(), std::vector<float>(32, 3.0f));  // observation
  EXPECT_GT(backend.kernels_launched(), 0);
}

TEST(LazyTensorTest, IllusionOfEagerExecution) {
  // The same program on naive and lazy devices is indistinguishable by
  // results ("the code cannot distinguish when a Tensor operation is
  // actually executed").
  Rng rng(11);
  const Tensor a_cpu = Tensor::RandomUniform(Shape({6, 6}), rng, -1, 1);
  const Tensor naive =
      Softmax(MatMul(a_cpu, Transposed(a_cpu)) * 0.5f);

  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor a = a_cpu.To(lazy);
  const Tensor result = Softmax(MatMul(a, Transposed(a)) * 0.5f);
  EXPECT_EQ(result.ToVector(), naive.ToVector());
}

TEST(LazyTensorTest, TraceCacheHitsOnRetraceWithFreshData) {
  // Each training iteration re-traces; the XLA-program cache must hit
  // because leaf data enters as parameters (§3.4).
  LazyBackend backend;
  const Device lazy = backend.device();
  for (int step = 0; step < 5; ++step) {
    Rng rng(static_cast<std::uint64_t>(step + 1));
    const Tensor x =
        Tensor::RandomUniform(Shape({16}), rng, 0, 1).To(lazy);
    const Tensor y = ReduceSum(Square(x) * 3.0f);
    (void)y.ScalarValue();
  }
  EXPECT_EQ(backend.cache_misses(), 1);
  EXPECT_EQ(backend.cache_hits(), 4);
}

TEST(LazyTensorTest, ShapeChangeTriggersRecompilation) {
  LazyBackend backend;
  const Device lazy = backend.device();
  for (std::int64_t n : {8, 16, 8, 16, 8}) {
    const Tensor x = Tensor::Ones(Shape({n}), lazy);
    (void)ReduceSum(x * 2.0f).ScalarValue();
  }
  EXPECT_EQ(backend.cache_misses(), 2);  // one program per shape
  EXPECT_EQ(backend.cache_hits(), 3);
}

TEST(LazyTensorTest, BarrierCutsTraceAndMaterializesPending) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({8}), lazy);
  Tensor y = x * 3.0f;
  Tensor z = y + 1.0f;
  EXPECT_EQ(backend.kernels_launched(), 0);
  LazyTensorBarrier(lazy);
  EXPECT_GT(backend.kernels_launched(), 0);
  // After the barrier the values are cached; observing launches nothing.
  const auto launched = backend.kernels_launched();
  EXPECT_EQ(z.ToVector(), std::vector<float>(8, 4.0f));
  EXPECT_EQ(backend.kernels_launched(), launched);
}

TEST(LazyTensorTest, MaterializedNodeActsAsLeafForLaterTraces) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  Tensor y = x * 2.0f;
  (void)y.ToVector();  // materialize y
  Tensor z = y + 1.0f;  // new trace rooted at cached y
  EXPECT_EQ(z.ToVector(), std::vector<float>(4, 3.0f));
}

TEST(LazyTensorTest, ControlFlowIsUnrolledIntoTrace) {
  // A host loop of 10 adds produces a 10-op trace (§3.4 "we fully unroll
  // any control flow").
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  for (int i = 0; i < 10; ++i) x = x + 1.0f;
  const auto counts = SummarizeTrace({x});
  int add_scalar = 0;
  for (const auto& c : counts) {
    if (c.kind == OpKind::kAddScalar) add_scalar = c.count;
  }
  EXPECT_EQ(add_scalar, 10);
  EXPECT_EQ(x.ToVector(), std::vector<float>(4, 11.0f));
}

TEST(LazyTensorTest, DotExportContainsAllOps) {
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::Ones(Shape({4}), lazy);
  const Tensor y = Relu(x * 2.0f);
  const std::string dot = TraceToDot({y});
  EXPECT_NE(dot.find("digraph LazyTrace"), std::string::npos);
  EXPECT_NE(dot.find("relu"), std::string::npos);
  EXPECT_NE(dot.find("mul_scalar"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(LazyTensorTest, FusionReducesKernelsVsEagerOpByOp) {
  // 20 chained elementwise ops: lazy+XLA fuses to ~1 kernel.
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({1024}), lazy);
  for (int i = 0; i < 20; ++i) x = Tanh(x * 0.9f);
  (void)x.ToVector();
  EXPECT_LE(backend.kernels_launched(), 2);
  EXPECT_EQ(backend.ops_traced(), 40);
}

TEST(LazyTensorTest, GradientTapeComposesWithLazyDevice) {
  // The tape pullbacks are ordinary Tensor ops, so the whole backward pass
  // lands in the same trace and is fused/compiled too.
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3}, lazy);
  const auto [value, grad] = ad::ValueWithGradient(
      x, [](const Tensor& t) { return ReduceSum(Square(t)); });
  EXPECT_EQ(value.ScalarValue(), 14.0f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{2, 4, 6}));
  EXPECT_EQ(grad.device().kind(), DeviceKind::kLazy);
}

TEST(LazyTensorTest, TracingOverheadChargedPerOpEachIteration) {
  LazyOptions options;
  options.trace_overhead_seconds_per_op = 1e-3;
  LazyBackend backend(options);
  const Device lazy = backend.device();
  for (int step = 0; step < 3; ++step) {
    Tensor x = Tensor::Ones(Shape({4}), lazy);
    x = x * 2.0f + 1.0f;
    (void)x.ToVector();
  }
  // 2 ops per step, 3 steps.
  EXPECT_NEAR(backend.host_seconds(), 6e-3, 1e-9);
}

TEST(LazyTensorTest, CompileCostPaidOnceOnly) {
  LazyBackend backend;
  const Device lazy = backend.device();
  double after_first = 0.0;
  for (int step = 0; step < 4; ++step) {
    Tensor x = Tensor::Ones(Shape({64}), lazy);
    (void)ReduceSum(Exp(x)).ScalarValue();
    if (step == 0) after_first = backend.compile_seconds();
  }
  EXPECT_GT(after_first, 0.0);
  EXPECT_EQ(backend.compile_seconds(), after_first);
}

}  // namespace
}  // namespace s4tf
