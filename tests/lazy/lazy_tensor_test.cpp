#include "lazy/lazy_tensor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "ad/operators.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace s4tf {
namespace {

// CounterDeltaSince omits zero deltas; absent means "didn't move".
std::int64_t DeltaOf(const std::map<std::string, std::int64_t>& delta,
                     const std::string& name) {
  auto it = delta.find(name);
  return it == delta.end() ? 0 : it->second;
}

// One hand-rolled SGD training step on the lazy device: forward, tape
// gradient, parameter update, barrier. `seed` varies the leaf data so
// repeated steps exercise the "fresh data, same program" path.
void RunTrainingStep(const Device& lazy, Tensor& w, std::uint64_t seed,
                     std::int64_t batch) {
  Rng rng(seed);
  const Tensor x =
      Tensor::RandomUniform(Shape({batch, 4}), rng, -1, 1).To(lazy);
  const Tensor target =
      Tensor::RandomUniform(Shape({batch, 2}), rng, -1, 1).To(lazy);
  const auto [loss, grad] = ad::ValueWithGradient(w, [&](const Tensor& p) {
    return ReduceSum(Square(MatMul(x, p) - target));
  });
  (void)loss;
  w = w - grad * 0.01f;
  LazyTensorBarrier(lazy);
}

TEST(LazyTensorTest, NothingExecutesUntilObservation) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({32}), lazy);
  Tensor y = Relu(x * 2.0f + 1.0f);
  EXPECT_EQ(backend.ops_traced(), 3);
  EXPECT_EQ(backend.kernels_launched(), 0);  // recorded, not run
  EXPECT_EQ(y.ToVector(), std::vector<float>(32, 3.0f));  // observation
  EXPECT_GT(backend.kernels_launched(), 0);
}

TEST(LazyTensorTest, IllusionOfEagerExecution) {
  // The same program on naive and lazy devices is indistinguishable by
  // results ("the code cannot distinguish when a Tensor operation is
  // actually executed").
  Rng rng(11);
  const Tensor a_cpu = Tensor::RandomUniform(Shape({6, 6}), rng, -1, 1);
  const Tensor naive =
      Softmax(MatMul(a_cpu, Transposed(a_cpu)) * 0.5f);

  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor a = a_cpu.To(lazy);
  const Tensor result = Softmax(MatMul(a, Transposed(a)) * 0.5f);
  EXPECT_EQ(result.ToVector(), naive.ToVector());
}

TEST(LazyTensorTest, TraceCacheHitsOnRetraceWithFreshData) {
  // Each training iteration re-traces; the XLA-program cache must hit
  // because leaf data enters as parameters (§3.4).
  LazyBackend backend;
  const Device lazy = backend.device();
  for (int step = 0; step < 5; ++step) {
    Rng rng(static_cast<std::uint64_t>(step + 1));
    const Tensor x =
        Tensor::RandomUniform(Shape({16}), rng, 0, 1).To(lazy);
    const Tensor y = ReduceSum(Square(x) * 3.0f);
    (void)y.ScalarValue();
  }
  EXPECT_EQ(backend.cache_misses(), 1);
  EXPECT_EQ(backend.cache_hits(), 4);
}

TEST(LazyTensorTest, ShapeChangeTriggersRecompilation) {
  LazyBackend backend;
  const Device lazy = backend.device();
  for (std::int64_t n : {8, 16, 8, 16, 8}) {
    const Tensor x = Tensor::Ones(Shape({n}), lazy);
    (void)ReduceSum(x * 2.0f).ScalarValue();
  }
  EXPECT_EQ(backend.cache_misses(), 2);  // one program per shape
  EXPECT_EQ(backend.cache_hits(), 3);
}

TEST(LazyTensorTest, BarrierCutsTraceAndMaterializesPending) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({8}), lazy);
  Tensor y = x * 3.0f;
  Tensor z = y + 1.0f;
  EXPECT_EQ(backend.kernels_launched(), 0);
  LazyTensorBarrier(lazy);
  EXPECT_GT(backend.kernels_launched(), 0);
  // After the barrier the values are cached; observing launches nothing.
  const auto launched = backend.kernels_launched();
  EXPECT_EQ(z.ToVector(), std::vector<float>(8, 4.0f));
  EXPECT_EQ(backend.kernels_launched(), launched);
}

TEST(LazyTensorTest, MaterializedNodeActsAsLeafForLaterTraces) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  Tensor y = x * 2.0f;
  (void)y.ToVector();  // materialize y
  Tensor z = y + 1.0f;  // new trace rooted at cached y
  EXPECT_EQ(z.ToVector(), std::vector<float>(4, 3.0f));
}

TEST(LazyTensorTest, ControlFlowIsUnrolledIntoTrace) {
  // A host loop of 10 adds produces a 10-op trace (§3.4 "we fully unroll
  // any control flow").
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  for (int i = 0; i < 10; ++i) x = x + 1.0f;
  const auto counts = SummarizeTrace({x});
  int add_scalar = 0;
  for (const auto& c : counts) {
    if (c.kind == OpKind::kAddScalar) add_scalar = c.count;
  }
  EXPECT_EQ(add_scalar, 10);
  EXPECT_EQ(x.ToVector(), std::vector<float>(4, 11.0f));
}

TEST(LazyTensorTest, DotExportContainsAllOps) {
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::Ones(Shape({4}), lazy);
  const Tensor y = Relu(x * 2.0f);
  const std::string dot = TraceToDot({y});
  EXPECT_NE(dot.find("digraph LazyTrace"), std::string::npos);
  EXPECT_NE(dot.find("relu"), std::string::npos);
  EXPECT_NE(dot.find("mul_scalar"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(LazyTensorTest, FusionReducesKernelsVsEagerOpByOp) {
  // 20 chained elementwise ops: lazy+XLA fuses to ~1 kernel.
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({1024}), lazy);
  for (int i = 0; i < 20; ++i) x = Tanh(x * 0.9f);
  (void)x.ToVector();
  EXPECT_LE(backend.kernels_launched(), 2);
  EXPECT_EQ(backend.ops_traced(), 40);
}

TEST(LazyTensorTest, GradientTapeComposesWithLazyDevice) {
  // The tape pullbacks are ordinary Tensor ops, so the whole backward pass
  // lands in the same trace and is fused/compiled too.
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3}, lazy);
  const auto [value, grad] = ad::ValueWithGradient(
      x, [](const Tensor& t) { return ReduceSum(Square(t)); });
  EXPECT_EQ(value.ScalarValue(), 14.0f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{2, 4, 6}));
  EXPECT_EQ(grad.device().kind(), DeviceKind::kLazy);
}

TEST(LazyTensorTest, TracingOverheadChargedPerOpEachIteration) {
  LazyOptions options;
  options.trace_overhead_seconds_per_op = 1e-3;
  LazyBackend backend(options);
  const Device lazy = backend.device();
  for (int step = 0; step < 3; ++step) {
    Tensor x = Tensor::Ones(Shape({4}), lazy);
    x = x * 2.0f + 1.0f;
    (void)x.ToVector();
  }
  // 2 ops per step, 3 steps.
  EXPECT_NEAR(backend.host_seconds(), 6e-3, 1e-9);
}

TEST(LazyTensorTest, CompileCostPaidOnceOnly) {
  LazyBackend backend;
  const Device lazy = backend.device();
  double after_first = 0.0;
  for (int step = 0; step < 4; ++step) {
    Tensor x = Tensor::Ones(Shape({64}), lazy);
    (void)ReduceSum(Exp(x)).ScalarValue();
    if (step == 0) after_first = backend.compile_seconds();
  }
  EXPECT_GT(after_first, 0.0);
  EXPECT_EQ(backend.compile_seconds(), after_first);
}

// --- Counter-backed cache regression tests. These assert on deltas of the
// process-wide registry counters (obs/metrics.h), which see through every
// layer: if anything on the materialize path starts recompiling per step,
// these fail with an exact count, not a wall-clock hunch.

TEST(LazyCounterTest, IdenticalStepWithFreshDataCompilesNothingNew) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor w = Tensor::FromVector(
      Shape({4, 2}), {0.1f, -0.2f, 0.3f, 0.0f, -0.1f, 0.2f, 0.4f, -0.3f},
      lazy);
  // Step 0 pays the compiles for the forward+backward+update program.
  RunTrainingStep(lazy, w, /*seed=*/1, /*batch=*/8);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    RunTrainingStep(lazy, w, seed, /*batch=*/8);
  }
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(DeltaOf(delta, "xla.cache.misses"), 0)
      << "re-tracing an identical training step must hit the program cache";
  EXPECT_GE(DeltaOf(delta, "xla.cache.hits"), 3);
  EXPECT_EQ(DeltaOf(delta, "lazy.barrier.cuts"), 3);  // one per step
}

TEST(LazyCounterTest, ShapeChangeCompilesExactlyOneNewProgram) {
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor w8 = Tensor::Zeros(Shape({4, 2}), lazy);
  RunTrainingStep(lazy, w8, /*seed=*/1, /*batch=*/8);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  Tensor w16 = Tensor::Zeros(Shape({4, 2}), lazy);
  RunTrainingStep(lazy, w16, /*seed=*/2, /*batch=*/16);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(DeltaOf(delta, "xla.cache.misses"), 1)
      << "a new batch size is a new program: exactly one compile";
}

TEST(LazyCounterTest, BarrierIncrementsCutCounter) {
  LazyBackend backend;
  const Device lazy = backend.device();
  const Tensor x = Tensor::Ones(Shape({8}), lazy);
  const Tensor y = x * 2.0f;
  (void)y;

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  LazyTensorBarrier(lazy);
  LazyTensorBarrier(lazy);  // empty cut still counts as a cut point
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(DeltaOf(delta, "lazy.barrier.cuts"), 2);
}

TEST(LazyCounterTest, OpsTracedCounterMatchesBackendStat) {
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  LazyBackend backend;
  const Device lazy = backend.device();
  Tensor x = Tensor::Ones(Shape({4}), lazy);
  x = Relu(x * 2.0f + 1.0f);
  (void)x.ToVector();
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(DeltaOf(delta, "lazy.ops_traced"), backend.ops_traced());
}

TEST(LazyReplicaDeviceTest, ForReplicaMintsWorkingLazyDevices) {
  const Device r0 = Device::ForReplica(DeviceKind::kLazy, 0);
  const Device r1 = Device::ForReplica(DeviceKind::kLazy, 1);
  EXPECT_EQ(r0, Device::ForReplica(DeviceKind::kLazy, 0));
  EXPECT_NE(r0, r1);
  EXPECT_EQ(r0.kind(), DeviceKind::kLazy);
  const Tensor x = Tensor::Ones(Shape({2}), r1);
  EXPECT_EQ((x * 3.0f).ToVector(), (std::vector<float>{3.0f, 3.0f}));
}

}  // namespace
}  // namespace s4tf
