#include "vs/cow_array.h"

#include <gtest/gtest.h>

#include "vs/inout.h"

namespace s4tf::vs {
namespace {

// Paper Figure 5, third column: Swift arrays have value semantics.
//   var x = [3]; var y = x; x[0] += 1  =>  x == [4], y == [3]
TEST(CowArrayTest, Figure5ValueSemantics) {
  CowArray<int> x{3};
  CowArray<int> y = x;
  x.at_mut(0) += 1;
  EXPECT_EQ(x[0], 4);
  EXPECT_EQ(y[0], 3);  // no spooky action at a distance
}

TEST(CowArrayTest, CopyIsO1BufferShare) {
  CowArray<float> x(1000, 1.0f);
  CowStatsScope stats;
  CowArray<float> y = x;  // no allocation, no element copies
  EXPECT_TRUE(x.SharesStorageWith(y));
  EXPECT_EQ(stats.delta().buffer_allocations, 0);
  EXPECT_EQ(stats.delta().deep_copies, 0);
}

TEST(CowArrayTest, MutationOfSharedValueCopiesLazily) {
  CowArray<float> x(100, 2.0f);
  CowArray<float> y = x;
  CowStatsScope stats;
  y.at_mut(5) = 7.0f;  // shared -> exactly one deep copy
  EXPECT_EQ(stats.delta().deep_copies, 1);
  EXPECT_FALSE(x.SharesStorageWith(y));
  EXPECT_EQ(x[5], 2.0f);
  EXPECT_EQ(y[5], 7.0f);
}

TEST(CowArrayTest, UniqueMutationIsInPlace) {
  CowArray<float> x(100, 0.0f);
  CowStatsScope stats;
  for (int i = 0; i < 10; ++i) x.at_mut(static_cast<std::size_t>(i)) = 1.0f;
  EXPECT_EQ(stats.delta().deep_copies, 0);
  EXPECT_EQ(stats.delta().unique_mutations, 10);
}

TEST(CowArrayTest, IsUniquelyReferencedTracksSharing) {
  CowArray<int> x(3, 0);
  EXPECT_TRUE(x.IsUniquelyReferenced());
  {
    CowArray<int> y = x;
    EXPECT_FALSE(x.IsUniquelyReferenced());
  }
  EXPECT_TRUE(x.IsUniquelyReferenced());
}

TEST(CowArrayTest, RepeatedMutationAfterDivorceStaysInPlace) {
  CowArray<int> x(50, 0);
  CowArray<int> y = x;
  x.at_mut(0) = 1;  // copy happens here
  CowStatsScope stats;
  x.at_mut(1) = 2;  // now unique again: in place
  x.at_mut(2) = 3;
  EXPECT_EQ(stats.delta().deep_copies, 0);
  EXPECT_EQ(y[1], 0);
}

TEST(CowArrayTest, ReadAccessNeverCopies) {
  CowArray<int> x(10, 5);
  CowArray<int> y = x;
  CowStatsScope stats;
  int sum = 0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] + y[i];
  EXPECT_EQ(sum, 100);
  EXPECT_EQ(stats.delta().deep_copies, 0);
  EXPECT_TRUE(x.SharesStorageWith(y));
}

TEST(CowArrayTest, AssignmentReplacesValue) {
  CowArray<int> x{1, 2, 3};
  CowArray<int> y{9};
  y = x;
  EXPECT_EQ(y.size(), 3u);
  EXPECT_EQ(y[2], 3);
  EXPECT_TRUE(x.SharesStorageWith(y));
}

TEST(CowArrayTest, EqualityIsValueEquality) {
  CowArray<int> x{1, 2, 3};
  CowArray<int> y{1, 2, 3};  // distinct buffers, same value
  EXPECT_FALSE(x.SharesStorageWith(y));
  EXPECT_TRUE(x == y);
  y.at_mut(0) = 0;
  EXPECT_FALSE(x == y);
}

TEST(CowArrayTest, PushBackAndResizePreserveValueSemantics) {
  CowArray<int> x{1};
  CowArray<int> y = x;
  x.push_back(2);
  EXPECT_EQ(x.size(), 2u);
  EXPECT_EQ(y.size(), 1u);
  y.resize(5, 7);
  EXPECT_EQ(y.size(), 5u);
  EXPECT_EQ(y[4], 7);
  EXPECT_EQ(x.size(), 2u);
}

TEST(CowArrayTest, DefaultConstructedSharesEmptySingleton) {
  CowArray<int> a;
  CowArray<int> b;
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.SharesStorageWith(b));
  a.push_back(1);  // first mutation divorces the shared empty buffer
  EXPECT_FALSE(a.SharesStorageWith(b));
  EXPECT_TRUE(b.empty());
}

TEST(CowArrayTest, ToVectorRoundTrips) {
  CowArray<float> x{1.0f, 2.0f, 3.0f};
  const std::vector<float> v = x.ToVector();
  EXPECT_EQ(v, (std::vector<float>{1.0f, 2.0f, 3.0f}));
}

// ---------------------------------------------------------------------------
// Figure 8: inout can be rewritten as pass-by-value + reassignment.

bool IncInout(Inout<int> x) {
  x = x + 1;
  return x < 10;
}

TEST(InoutTest, Figure8LeftColumn) {
  int y = 2;
  bool z = IncInout(y);
  EXPECT_EQ(y, 3);
  EXPECT_TRUE(z);
}

TEST(InoutTest, Figure8RewriteEquivalence) {
  // Mechanical check of the paper's equivalence claim: for many inputs the
  // inout form and the rewritten pure form produce identical results.
  auto pure = RewriteInoutAsPure<int, bool>(&IncInout);
  for (int y0 = -5; y0 < 20; ++y0) {
    int y_inout = y0;
    const bool z_inout = IncInout(y_inout);
    const auto [y_pure, z_pure] = pure(y0);
    EXPECT_EQ(y_inout, y_pure);
    EXPECT_EQ(z_inout, z_pure);
  }
}

void ScaleInout(Inout<CowArray<float>> a, float s) {
  float* data = a.mutable_data();
  for (std::size_t i = 0; i < a.size(); ++i) data[i] *= s;
}

TEST(InoutTest, VoidReturningRewriteOnArrays) {
  auto pure = RewriteInoutAsPure<CowArray<float>, float>(&ScaleInout);
  CowArray<float> a{1.0f, 2.0f};
  CowArray<float> b = a;
  ScaleInout(a, 3.0f);
  const CowArray<float> c = pure(b, 3.0f);
  EXPECT_TRUE(a == c);
}

TEST(InoutTest, InoutDoesNotIntroduceReferenceSemantics) {
  // A unique borrow cannot be observed through another variable.
  CowArray<float> a{1.0f, 2.0f};
  CowArray<float> alias = a;
  ScaleInout(a, 2.0f);
  EXPECT_EQ(alias[0], 1.0f);
  EXPECT_EQ(a[0], 2.0f);
}

}  // namespace
}  // namespace s4tf::vs
