#include "ad/operators.h"

#include <cmath>
#include <gtest/gtest.h>

#include "ad/struct_macros.h"
#include "gradient_check.h"

namespace s4tf::ad {
namespace {

// ---------------------------------------------------------------------------
// A hand-rolled model hierarchy exercising the derived conformance.

struct TinyDense {
  Tensor weight;
  Tensor bias;
  S4TF_DIFFERENTIABLE(TinyDense, weight, bias)

  Tensor operator()(const Tensor& x) const { return MatMul(x, weight) + bias; }
};

struct TinyFlatten {
  S4TF_DIFFERENTIABLE_EMPTY(TinyFlatten)
  Tensor operator()(const Tensor& x) const { return FlattenBatch(x); }
};

struct TinyModel {
  TinyDense dense1;
  TinyFlatten flatten;
  TinyDense dense2;
  S4TF_DIFFERENTIABLE(TinyModel, dense1, flatten, dense2)

  Tensor operator()(const Tensor& x) const {
    return dense2(Relu(dense1(flatten(x))));
  }
};

static_assert(Differentiable<TinyDense>);
static_assert(Differentiable<TinyModel>);
static_assert(DifferentiableStruct<TinyModel>);

TinyModel MakeModel() {
  Rng rng(42);
  TinyModel m;
  m.dense1.weight = Tensor::GlorotUniform(Shape({4, 3}), rng);
  m.dense1.bias = Tensor::Zeros(Shape({3}));
  m.dense2.weight = Tensor::GlorotUniform(Shape({3, 2}), rng);
  m.dense2.bias = Tensor::Zeros(Shape({2}));
  return m;
}

TEST(StructMacroTest, VisitParametersFindsAllTensors) {
  TinyModel m = MakeModel();
  int count = 0;
  std::int64_t total = 0;
  m.VisitParameters([&](Tensor& p) {
    ++count;
    total += p.NumElements();
  });
  EXPECT_EQ(count, 4);
  EXPECT_EQ(total, 4 * 3 + 3 + 3 * 2 + 2);
}

TEST(StructMacroTest, TangentVectorArithmetic) {
  TinyDense::TangentVector a;
  a.weight = Tensor::Ones(Shape({2, 2}));
  a.bias = Tensor::Full(Shape({2}), 3.0f);
  TinyDense::TangentVector b;
  b.weight = Tensor::Full(Shape({2, 2}), 2.0f);
  b.bias = Tensor::Full(Shape({2}), -1.0f);
  const auto sum = a + b;
  EXPECT_EQ(sum.weight.ToVector(), std::vector<float>(4, 3.0f));
  EXPECT_EQ(sum.bias.ToVector(), (std::vector<float>{2, 2}));
  const auto diff = a - b;
  EXPECT_EQ(diff.weight.ToVector(), std::vector<float>(4, -1.0f));
}

TEST(StructMacroTest, DefaultTangentIsZero) {
  // Default-constructed tangents are scalar zeros that broadcast — the
  // additive identity.
  TinyDense d;
  d.weight = Tensor::Ones(Shape({2, 2}));
  d.bias = Tensor::Ones(Shape({2}));
  TinyDense::TangentVector zero{};
  d.MoveAlong(zero);
  EXPECT_EQ(d.weight.ToVector(), std::vector<float>(4, 1.0f));
}

TEST(StructMacroTest, MoveAlongIsExponentialMap) {
  TinyDense d;
  d.weight = Tensor::Zeros(Shape({2, 2}));
  d.bias = Tensor::Zeros(Shape({2}));
  TinyDense::TangentVector dir;
  dir.weight = Tensor::Full(Shape({2, 2}), 0.5f);
  dir.bias = Tensor::Full(Shape({2}), -0.5f);
  d.MoveAlong(dir);
  d.MoveAlong(dir);
  EXPECT_EQ(d.weight.ToVector(), std::vector<float>(4, 1.0f));
  EXPECT_EQ(d.bias.ToVector(), (std::vector<float>{-1, -1}));
}

TEST(OperatorsTest, ModelGradientMatchesFiniteDifferences) {
  const TinyModel model = MakeModel();
  Rng rng(7);
  const Tensor x = Tensor::RandomUniform(Shape({2, 2, 2}), rng, -1.0f, 1.0f);
  auto loss_fn = [&x](const TinyModel& m) { return ReduceSum(Square(m(x))); };

  const auto [loss, tangent] = ValueWithGradient(model, loss_fn);
  EXPECT_GT(loss.ScalarValue(), 0.0f);

  // Check one weight matrix entry-by-entry against finite differences.
  const auto analytic = tangent.dense1.weight.ToVector();
  const auto base = model.dense1.weight.ToVector();
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < base.size(); ++i) {
    TinyModel plus = model, minus = model;
    auto wp = base;
    wp[i] += eps;
    plus.dense1.weight = Tensor::FromVector(Shape({4, 3}), wp);
    auto wm = base;
    wm[i] -= eps;
    minus.dense1.weight = Tensor::FromVector(Shape({4, 3}), wm);
    const float numeric = (loss_fn(plus).ScalarValue() -
                           loss_fn(minus).ScalarValue()) /
                          (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                5e-2f * std::max(1.0f, std::fabs(numeric)))
        << "dense1.weight[" << i << "]";
  }
}

TEST(OperatorsTest, StreamedGradientsMatchValueWithGradientBitwise) {
  // ValueWithGradientStreamed is the same reverse sweep as
  // ValueWithGradient with per-parameter delivery; every streamed
  // gradient equals the TangentVector entry bit for bit, each parameter
  // is delivered exactly once, and the delivery order is the reverse of
  // the parameters' first use in the forward pass (dense2.bias's
  // gradient is final first, dense1.weight's last).
  const TinyModel model = MakeModel();
  Rng rng(7);
  const Tensor x = Tensor::RandomUniform(Shape({2, 2, 2}), rng, -1.0f, 1.0f);
  auto loss_fn = [&x](const TinyModel& m) { return ReduceSum(Square(m(x))); };

  const auto [loss, tangent] = ValueWithGradient(model, loss_fn);
  std::vector<std::size_t> order;
  std::vector<std::vector<float>> streamed(4);
  const Tensor streamed_loss = ValueWithGradientStreamed(
      model, loss_fn, [&](std::size_t p, const Tensor* g) {
        order.push_back(p);
        ASSERT_LT(p, streamed.size());
        ASSERT_NE(g, nullptr);
        streamed[p] = g->ToVector();
      });
  EXPECT_EQ(streamed_loss.ScalarValue(), loss.ScalarValue());
  // VisitParameters order: dense1.weight, dense1.bias, dense2.weight,
  // dense2.bias. The reverse sweep finalizes the later-consumed ones
  // first.
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 2, 1, 0}));
  EXPECT_EQ(streamed[0], tangent.dense1.weight.ToVector());
  EXPECT_EQ(streamed[1], tangent.dense1.bias.ToVector());
  EXPECT_EQ(streamed[2], tangent.dense2.weight.ToVector());
  EXPECT_EQ(streamed[3], tangent.dense2.bias.ToVector());
}

TEST(OperatorsTest, GradientLeavesCallerModelUntouched) {
  const TinyModel model = MakeModel();
  const auto before = model.dense1.weight.ToVector();
  Rng rng(8);
  const Tensor x = Tensor::RandomUniform(Shape({1, 2, 2}), rng);
  GradientAt(model,
             [&x](const TinyModel& m) { return ReduceSum(m(x)); });
  EXPECT_EQ(model.dense1.weight.ToVector(), before);
}

TEST(OperatorsTest, TrainingStepReducesLoss) {
  // One hand-rolled SGD step using MoveAlong: the Figure 7 loop in
  // miniature.
  TinyModel model = MakeModel();
  Rng rng(9);
  const Tensor x = Tensor::RandomUniform(Shape({4, 2, 2}), rng);
  const Tensor target = Tensor::RandomUniform(Shape({4, 2}), rng);
  auto loss_fn = [&](const TinyModel& m) {
    return ReduceMean(Square(m(x) - target));
  };
  float previous = loss_fn(model).ScalarValue();
  for (int step = 0; step < 5; ++step) {
    auto [loss, grads] = ValueWithGradient(model, loss_fn);
    // Descend: scale tangent by -lr via visitation.
    model.VisitWithTangent(grads, [](Tensor& p, Tensor& g) {
      if (g.shape() == p.shape()) {
        p.InPlaceAxpy(-0.1f, g);
      } else {
        p = p - g * 0.1f;
      }
    });
    const float now = loss_fn(model).ScalarValue();
    EXPECT_LT(now, previous * 1.001f);
    previous = now;
  }
}

TEST(OperatorsTest, ValueWithPullbackIsReusableAndLinear) {
  const Tensor x = Tensor::FromVector(Shape({3}), {1, 2, 3});
  auto [value, pullback] =
      ValueWithPullback(x, [](const Tensor& t) { return ReduceSum(Square(t)); });
  EXPECT_EQ(value.ScalarValue(), 14.0f);
  EXPECT_EQ(pullback(Tensor(1.0f)).ToVector(), (std::vector<float>{2, 4, 6}));
  // Linearity in the seed.
  EXPECT_EQ(pullback(Tensor(2.0f)).ToVector(),
            (std::vector<float>{4, 8, 12}));
}

// ---------------------------------------------------------------------------
// Bundle-based operators over a non-Tensor Differentiable type: a 2-D
// point on the plane. AD without any Tensor involvement.

struct Point {
  float x = 0.0f;
  float y = 0.0f;
  struct TangentVector {
    float x = 0.0f;
    float y = 0.0f;
    TangentVector operator+(const TangentVector& o) const {
      return {x + o.x, y + o.y};
    }
    TangentVector operator-(const TangentVector& o) const {
      return {x - o.x, y - o.y};
    }
  };
  void MoveAlong(const TangentVector& d) {
    x += d.x;
    y += d.y;
  }
};

static_assert(Differentiable<Point>);

// f(p) = p.x^2 + 3 p.y with hand-written JVP/VJP.
DifferentiableFunction<Point, float> MakePointFunction() {
  DifferentiableFunction<Point, float> f;
  f.original = [](const Point& p) { return p.x * p.x + 3.0f * p.y; };
  f.jvp = [](const Point& p) {
    return std::pair<float, DifferentialFn<Point, float>>{
        p.x * p.x + 3.0f * p.y,
        [px = p.x](const Point::TangentVector& d) {
          return 2.0f * px * d.x + 3.0f * d.y;
        }};
  };
  f.vjp = [](const Point& p) {
    return std::pair<float, PullbackFn<Point, float>>{
        p.x * p.x + 3.0f * p.y, [px = p.x](float dy) {
          return Point::TangentVector{2.0f * px * dy, 3.0f * dy};
        }};
  };
  return f;
}

TEST(BundleTest, GradientOfCustomDifferentiableType) {
  const auto f = MakePointFunction();
  const Point p{2.0f, 5.0f};
  const auto grad = GradientAt(p, f);
  EXPECT_FLOAT_EQ(grad.x, 4.0f);
  EXPECT_FLOAT_EQ(grad.y, 3.0f);
  const auto [value, g2] = ValueWithGradient(p, f);
  EXPECT_FLOAT_EQ(value, 19.0f);
  EXPECT_FLOAT_EQ(g2.x, 4.0f);
}

TEST(BundleTest, JvpAndVjpAgreeOnDirectionalDerivative) {
  const auto f = MakePointFunction();
  const Point p{1.5f, -2.0f};
  const Point::TangentVector dir{0.7f, -0.3f};
  auto [value1, differential] = ValueWithDifferential(p, f);
  const float forward = differential(dir);
  auto [value2, pullback] = ValueWithPullback(p, f);
  const auto cotangent = pullback(1.0f);
  const float reverse = cotangent.x * dir.x + cotangent.y * dir.y;
  EXPECT_FLOAT_EQ(value1, value2);
  EXPECT_NEAR(forward, reverse, 1e-6);
}

TEST(BundleTest, ComposeAppliesChainRule) {
  // g(t) = (t, t^2) as Point; f as above; (f ∘ g)(t) = t^2 + 3 t^2 = 4t^2.
  DifferentiableFunction<float, Point> g;
  g.original = [](const float& t) { return Point{t, t * t}; };
  g.jvp = [](const float& t) {
    return std::pair<Point, DifferentialFn<float, Point>>{
        Point{t, t * t},
        [t](const float& dt) { return Point::TangentVector{dt, 2 * t * dt}; }};
  };
  g.vjp = [](const float& t) {
    return std::pair<Point, PullbackFn<float, Point>>{
        Point{t, t * t}, [t](const Point::TangentVector& d) {
          return d.x + 2 * t * d.y;
        }};
  };
  const auto fg = Compose(MakePointFunction(), g);
  EXPECT_FLOAT_EQ(fg(3.0f), 36.0f);
  EXPECT_FLOAT_EQ(GradientAt(3.0f, fg), 24.0f);  // d/dt 4t^2 = 8t
  auto [value, differential] = ValueWithDifferential(3.0f, fg);
  EXPECT_FLOAT_EQ(value, 36.0f);
  EXPECT_FLOAT_EQ(differential(1.0f), 24.0f);
}

TEST(BundleTest, SumOfBundles) {
  const auto f = MakePointFunction();
  const auto twice = Sum(f, f);
  const Point p{2.0f, 1.0f};
  EXPECT_FLOAT_EQ(twice(p), 2.0f * f(p));
  const auto grad = GradientAt(p, twice);
  EXPECT_FLOAT_EQ(grad.x, 8.0f);
  EXPECT_FLOAT_EQ(grad.y, 6.0f);
}

TEST(BundleTest, IdentityBundle) {
  const auto id = Identity<float>();
  EXPECT_FLOAT_EQ(id(5.0f), 5.0f);
  EXPECT_FLOAT_EQ(GradientAt(5.0f, id), 1.0f);
}

}  // namespace
}  // namespace s4tf::ad
