#include "ad/tape.h"

#include <cmath>
#include <functional>
#include <gtest/gtest.h>

#include "ad/operators.h"
#include "gradient_check.h"

namespace s4tf::ad {
namespace {

using testing::ExpectGradientsClose;
using testing::NumericalGradient;

TEST(TapeTest, GradientOfSquareSum) {
  // f(x) = sum(x^2); df/dx = 2x.
  const Tensor x = Tensor::FromVector(Shape({3}), {1, -2, 3});
  const auto [value, grad] =
      ValueWithGradient(x, [](const Tensor& t) { return ReduceSum(Square(t)); });
  EXPECT_NEAR(value.ScalarValue(), 14.0f, 1e-5);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{2, -4, 6}));
}

TEST(TapeTest, GradientThroughChain) {
  // f(x) = sum(exp(2x)); df/dx = 2 exp(2x).
  const Tensor x = Tensor::FromVector(Shape({2}), {0.0f, 1.0f});
  const Tensor grad =
      GradientAt(x, [](const Tensor& t) { return ReduceSum(Exp(t * 2.0f)); });
  const auto g = grad.ToVector();
  EXPECT_NEAR(g[0], 2.0f, 1e-4);
  EXPECT_NEAR(g[1], 2.0f * std::exp(2.0f), 1e-3);
}

TEST(TapeTest, ConstantsAreNotVaried) {
  // Ops on unwatched tensors are skipped (activity analysis: not varied).
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor c = Tensor::FromVector(Shape({2}), {5, 5});
  GradientTape tape;
  Tensor watched = x;
  tape.Watch(watched);
  Tensor loss;
  {
    RecorderScope scope(&tape);
    Tensor unrelated = c * c;  // must not be recorded
    loss = ReduceSum(watched * c) + ReduceSum(unrelated) * 0.0f;
  }
  const auto grads = tape.ComputeGradients(loss);
  EXPECT_EQ(tape.GradientFor(grads, watched).ToVector(),
            (std::vector<float>{5, 5}));
}

TEST(TapeTest, LossIndependentOfParameterGivesZeros) {
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  const auto [value, grad] = ValueWithGradient(x, [](const Tensor&) {
    return Tensor::Full(Shape({}), 3.0f);
  });
  EXPECT_EQ(value.ScalarValue(), 3.0f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{0, 0}));
}

TEST(TapeTest, StreamingHookFiresOncePerParamInTapeOrder) {
  // The gradient-ready hook fires exactly once per watched parameter,
  // with the final accumulated gradient, as soon as the reverse sweep
  // passes the parameter's lowest-id consumer. `b` is consumed later in
  // the tape than `a`, so its gradient is final earlier in the sweep and
  // its hook fires first — a pure function of the recorded tape.
  GradientTape tape;
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor b = Tensor::FromVector(Shape({2}), {3, 4});
  tape.Watch(a);
  tape.Watch(b);
  Tensor loss;
  {
    RecorderScope scope(&tape);
    const Tensor first = a * 2.0f;   // a's only consumer (early node)
    const Tensor second = first + b;  // b's only consumer (later node)
    loss = ReduceSum(second);
  }
  const auto reference = tape.ComputeGradients(loss);
  std::vector<std::int64_t> order;
  std::vector<std::vector<float>> streamed;
  (void)tape.ComputeGradients(loss,
                              [&](std::int64_t node_id, const Tensor* g) {
                                order.push_back(node_id);
                                ASSERT_NE(g, nullptr);
                                streamed.push_back(g->ToVector());
                              });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], b.grad_node());
  EXPECT_EQ(order[1], a.grad_node());
  EXPECT_EQ(streamed[0], tape.GradientFor(reference, b).ToVector());
  EXPECT_EQ(streamed[1], tape.GradientFor(reference, a).ToVector());
}

TEST(TapeTest, StreamingHookPassesNullForLossIndependentParam) {
  // A watched parameter the loss never consumed has no gradient slot;
  // the hook still fires for it (immediately — nothing can change it),
  // with a null gradient, so streaming callers can keep their explicit
  // zero convention.
  GradientTape tape;
  Tensor used = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor unused = Tensor::FromVector(Shape({2}), {7, 7});
  tape.Watch(used);
  tape.Watch(unused);
  Tensor loss;
  {
    RecorderScope scope(&tape);
    loss = ReduceSum(Square(used));
  }
  std::vector<std::int64_t> order;
  std::vector<bool> has_grad;
  (void)tape.ComputeGradients(loss,
                              [&](std::int64_t node_id, const Tensor* g) {
                                order.push_back(node_id);
                                has_grad.push_back(g != nullptr);
                              });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], unused.grad_node());  // final before the sweep starts
  EXPECT_FALSE(has_grad[0]);
  EXPECT_EQ(order[1], used.grad_node());
  EXPECT_TRUE(has_grad[1]);
}

TEST(TapeTest, FanOutAccumulatesGradients) {
  // f(x) = sum(x * x) where x is used twice through separate paths.
  const Tensor x = Tensor::FromVector(Shape({2}), {3, 4});
  const Tensor grad = GradientAt(x, [](const Tensor& t) {
    const Tensor a = t * 2.0f;
    const Tensor b = t * 3.0f;
    return ReduceSum(a + b);  // d/dx = 5
  });
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{5, 5}));
}

TEST(TapeTest, NonScalarLossRejected) {
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  EXPECT_THROW(ValueWithGradient(x, [](const Tensor& t) { return t * 2.0f; }),
               InternalError);
}

TEST(TapeTest, SecondGradientCallIsIdempotent) {
  GradientTape tape;
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  tape.Watch(x);
  Tensor loss;
  {
    RecorderScope scope(&tape);
    loss = ReduceSum(Square(x));
  }
  const auto g1 = tape.ComputeGradients(loss);
  const auto g2 = tape.ComputeGradients(loss);
  EXPECT_EQ(tape.GradientFor(g1, x).ToVector(),
            tape.GradientFor(g2, x).ToVector());
}

TEST(TapeTest, UnbroadcastReducesCorrectAxes) {
  const Tensor g = Tensor::Ones(Shape({2, 3}));
  EXPECT_EQ(Unbroadcast(g, Shape({3})).ToVector(),
            (std::vector<float>{2, 2, 2}));
  EXPECT_EQ(Unbroadcast(g, Shape({2, 1})).ToVector(),
            (std::vector<float>{3, 3}));
  EXPECT_EQ(Unbroadcast(g, Shape({})).ScalarValue(), 6.0f);
  EXPECT_EQ(Unbroadcast(g, Shape({2, 3})).ToVector(),
            std::vector<float>(6, 1.0f));
}

TEST(TapeTest, BroadcastingOpsGetCorrectGradients) {
  // loss = sum(m + row): d(row) must sum over the broadcast rows.
  const Tensor m = Tensor::Zeros(Shape({4, 3}));
  const Tensor row = Tensor::FromVector(Shape({3}), {1, 2, 3});
  const auto [loss, grad] = ValueWithGradient(row, [&](const Tensor& r) {
    return ReduceSum(m + r);
  });
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{4, 4, 4}));
}

TEST(TapeTest, CustomDerivativeOverridesDecomposition) {
  // Primal computes x^2 but the registered derivative claims 10x; the
  // reverse pass must use the custom rule (base-case termination, §2.1).
  auto f = WithCustomDerivative(
      [](const Tensor& x) { return ReduceSum(Square(x)); },
      [](const Tensor& x, const Tensor&, const Tensor& grad) {
        return grad * x * 10.0f;
      });
  const Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  const Tensor grad = GradientAt(x, f);
  EXPECT_EQ(grad.ToVector(), (std::vector<float>{10, 20}));
}

TEST(TapeTest, CustomDerivativeBodyIsNotRecorded) {
  // The primal body's internal ops must not appear on the tape.
  GradientTape tape;
  Tensor x = Tensor::FromVector(Shape({2}), {1, 2});
  tape.Watch(x);
  auto f = WithCustomDerivative(
      [](const Tensor& t) {
        Tensor acc = t;
        for (int i = 0; i < 20; ++i) acc = acc * 1.0f;  // 20 internal ops
        return ReduceSum(acc);
      },
      [](const Tensor&, const Tensor&, const Tensor& grad) {
        return grad * 1.0f;
      });
  {
    RecorderScope scope(&tape);
    f(x);
  }
  // 1 watch node + 1 custom-call node only.
  EXPECT_EQ(tape.num_nodes(), 2);
}

// ---------------------------------------------------------------------------
// Property test: analytic tape gradients match finite differences for a
// library of composite functions (the AD system's core correctness
// invariant).

struct GradCheckCase {
  const char* name;
  Shape shape;
  std::function<Tensor(const Tensor&)> f;
};

class TapeGradCheckTest : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(TapeGradCheckTest, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  Rng rng(1234);
  // Inputs in (0.3, 1.3) keep log/sqrt/div well-conditioned.
  const Tensor x = Tensor::RandomUniform(c.shape, rng, 0.3f, 1.3f);
  const auto [value, grad] = ValueWithGradient(x, c.f);
  (void)value;
  const auto numeric = NumericalGradient(
      [&](const Tensor& t) { return c.f(t).ScalarValue(); }, x);
  ExpectGradientsClose(grad.ToVector(), numeric);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, TapeGradCheckTest,
    ::testing::Values(
        GradCheckCase{"sum_square", Shape({5}),
                      [](const Tensor& t) { return ReduceSum(Square(t)); }},
        GradCheckCase{"exp_log", Shape({4}),
                      [](const Tensor& t) {
                        return ReduceSum(Exp(t) + Log(t));
                      }},
        GradCheckCase{"tanh_sigmoid", Shape({6}),
                      [](const Tensor& t) {
                        return ReduceSum(Tanh(t) * Sigmoid(t));
                      }},
        GradCheckCase{"sqrt_rsqrt", Shape({4}),
                      [](const Tensor& t) {
                        return ReduceSum(Sqrt(t) + Rsqrt(t));
                      }},
        GradCheckCase{"div_chain", Shape({3}),
                      [](const Tensor& t) {
                        return ReduceSum(t / (t + 1.0f));
                      }},
        GradCheckCase{"relu_leaky", Shape({8}),
                      [](const Tensor& t) {
                        return ReduceSum(Relu(t - 0.8f) +
                                         LeakyRelu(t - 0.8f, 0.1f));
                      }},
        GradCheckCase{"softmax_weighted", Shape({2, 4}),
                      [](const Tensor& t) {
                        const Tensor w = Tensor::FromVector(
                            Shape({2, 4}),
                            {1, 2, 3, 4, 4, 3, 2, 1}, t.device());
                        return ReduceSum(Softmax(t) * w);
                      }},
        GradCheckCase{"log_softmax_pick", Shape({2, 3}),
                      [](const Tensor& t) {
                        const Tensor w = Tensor::FromVector(
                            Shape({2, 3}), {1, 0, 0, 0, 1, 0}, t.device());
                        return ReduceSum(LogSoftmax(t) * w);
                      }},
        GradCheckCase{"matmul_quadratic", Shape({3, 3}),
                      [](const Tensor& t) {
                        return ReduceSum(MatMul(t, Transposed(t)));
                      }},
        GradCheckCase{"reduce_mean_axes", Shape({2, 3}),
                      [](const Tensor& t) {
                        return ReduceSum(Square(ReduceMean(t, {0})));
                      }},
        GradCheckCase{"reduce_max", Shape({2, 3}),
                      [](const Tensor& t) {
                        return ReduceSum(ReduceMax(t * 3.0f, {1}));
                      }},
        GradCheckCase{"slice_pad", Shape({3, 4}),
                      [](const Tensor& t) {
                        return ReduceSum(
                            Square(Slice(t, {1, 1}, {2, 2})));
                      }},
        GradCheckCase{"concat_paths", Shape({2, 2}),
                      [](const Tensor& t) {
                        return ReduceSum(
                            Square(Concat({t, t * 2.0f}, 1)));
                      }},
        GradCheckCase{"transpose_mix", Shape({2, 3}),
                      [](const Tensor& t) {
                        return ReduceSum(Transpose(t, {1, 0}) *
                                         Transpose(Square(t), {1, 0}));
                      }},
        GradCheckCase{"broadcast_mul", Shape({3}),
                      [](const Tensor& t) {
                        const Tensor m = Tensor::Ones(Shape({4, 3}));
                        return ReduceSum(Square(m * t));
                      }},
        GradCheckCase{"maximum_minimum", Shape({6}),
                      [](const Tensor& t) {
                        return ReduceSum(Maximum(t, 0.8f - t) +
                                         Minimum(t * 2.0f, t + 0.1f));
                      }},
        GradCheckCase{"select_mask", Shape({5}),
                      [](const Tensor& t) {
                        const Tensor mask = Greater(t, 0.8f + t * 0.0f);
                        return ReduceSum(Select(mask, Square(t), t * 3.0f));
                      }},
        GradCheckCase{"pow_scalar", Shape({4}),
                      [](const Tensor& t) {
                        return ReduceSum(ApplyOp(OpKind::kPowScalar, {t},
                                                 OpAttrs{.scalar = 3.0f}));
                      }}),
    [](const ::testing::TestParamInfo<GradCheckCase>& info) {
      return info.param.name;
    });

struct ConvGradCase {
  const char* name;
  Shape input;
  std::function<Tensor(const Tensor&)> f;
};

class ConvPoolGradTest : public ::testing::TestWithParam<ConvGradCase> {};

TEST_P(ConvPoolGradTest, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  Rng rng(77);
  const Tensor x = Tensor::RandomUniform(c.input, rng, -1.0f, 1.0f);
  const auto [value, grad] = ValueWithGradient(x, c.f);
  (void)value;
  const auto numeric = NumericalGradient(
      [&](const Tensor& t) { return c.f(t).ScalarValue(); }, x, 1e-2f);
  ExpectGradientsClose(grad.ToVector(), numeric, 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvPoolGradTest,
    ::testing::Values(
        ConvGradCase{"conv_input", Shape({1, 5, 5, 2}),
                     [](const Tensor& t) {
                       Rng wrng(5);
                       const Tensor f = Tensor::RandomUniform(
                           Shape({3, 3, 2, 3}), wrng, -0.5f, 0.5f);
                       return ReduceSum(Square(Conv2D(t, f)));
                     }},
        ConvGradCase{"conv_filter", Shape({3, 3, 2, 2}),
                     [](const Tensor& t) {
                       Rng xrng(6);
                       const Tensor x = Tensor::RandomUniform(
                           Shape({1, 5, 5, 2}), xrng, -0.5f, 0.5f);
                       return ReduceSum(Square(
                           Conv2D(x, t, {.padding = Padding::kSame})));
                     }},
        ConvGradCase{"avg_pool", Shape({1, 4, 4, 2}),
                     [](const Tensor& t) {
                       return ReduceSum(Square(AvgPool2D(t)));
                     }},
        ConvGradCase{"max_pool", Shape({1, 4, 4, 1}),
                     [](const Tensor& t) {
                       return ReduceSum(Square(MaxPool2D(t)));
                     }}),
    [](const ::testing::TestParamInfo<ConvGradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace s4tf::ad
