// Finite-difference gradient checking shared by the AD and NN tests.
//
// Three levels:
//  * NumericalGradient / ExpectGradientsClose — the raw primitives;
//  * CheckInputGradient — tape gradient of a Tensor -> scalar-Tensor
//    function vs central differences, in one call;
//  * CheckModelGradients — walks every parameter of a Differentiable
//    model (VisitWithTangent) and finite-differences each element
//    against the analytic TangentVector, which is how the layer
//    backward paths (Conv2D, pooling, softmax, ...) are validated.
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ad/operators.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace s4tf::ad::testing {

// Central finite differences of a scalar-valued tensor function at x.
inline std::vector<float> NumericalGradient(
    const std::function<float(const Tensor&)>& f, const Tensor& x,
    float eps = 1e-3f) {
  const std::vector<float> base = x.ToVector();
  std::vector<float> grad(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::vector<float> plus = base, minus = base;
    plus[i] += eps;
    minus[i] -= eps;
    const float fp = f(Tensor::FromVector(x.shape(), plus, x.device()));
    const float fm = f(Tensor::FromVector(x.shape(), minus, x.device()));
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

inline void ExpectGradientsClose(const std::vector<float>& analytic,
                                 const std::vector<float>& numeric,
                                 float tol = 2e-2f,
                                 const std::string& context = "") {
  ASSERT_EQ(analytic.size(), numeric.size()) << context;
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    const float scale =
        std::max({1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
        << context << "gradient mismatch at flat index " << i;
  }
}

// Tape gradient of `f` (Tensor -> scalar Tensor) at `x` vs central
// differences, in one call.
template <typename F>
void CheckInputGradient(F&& f, const Tensor& x, float tol = 2e-2f,
                        float eps = 1e-3f) {
  const auto [value, grad] = ValueWithGradient(x, f);
  (void)value;
  const auto numeric = NumericalGradient(
      [&](const Tensor& t) { return f(t).ScalarValue(); }, x, eps);
  ExpectGradientsClose(grad.ToVector(), numeric, tol);
}

// Validates the analytic TangentVector of `loss_fn(model)` against
// element-wise central differences over EVERY trainable parameter. The
// model is taken by value: parameters are perturbed in place through the
// VisitWithTangent traversal and restored after each element. Keep the
// models tiny — cost is two forward passes per parameter element.
template <typename M, typename LossFn>
void CheckModelGradients(M model, LossFn&& loss_fn, float tol = 2e-2f,
                         float eps = 1e-2f) {
  auto [loss, grads] = ValueWithGradient(model, loss_fn);
  (void)loss;
  int slot = 0;
  model.VisitWithTangent(grads, [&](Tensor& param, Tensor& grad) {
    const std::vector<float> base = param.ToVector();
    // A zero TangentVector leaves tangents default-shaped; that means the
    // analytic gradient is zero everywhere for this parameter.
    const std::vector<float> analytic = grad.shape() == param.shape()
                                            ? grad.ToVector()
                                            : std::vector<float>(base.size());
    std::vector<float> numeric(base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      std::vector<float> plus = base, minus = base;
      plus[i] += eps;
      minus[i] -= eps;
      param = Tensor::FromVector(param.shape(), plus, param.device());
      const float fp = loss_fn(std::as_const(model)).ScalarValue();
      param = Tensor::FromVector(param.shape(), minus, param.device());
      const float fm = loss_fn(std::as_const(model)).ScalarValue();
      numeric[i] = (fp - fm) / (2.0f * eps);
    }
    param = Tensor::FromVector(param.shape(), base, param.device());
    ExpectGradientsClose(analytic, numeric, tol,
                         "parameter #" + std::to_string(slot) + ": ");
    ++slot;
  });
}

}  // namespace s4tf::ad::testing
