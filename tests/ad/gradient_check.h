// Finite-difference gradient checking shared by the AD tests.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace s4tf::ad::testing {

// Central finite differences of a scalar-valued tensor function at x.
inline std::vector<float> NumericalGradient(
    const std::function<float(const Tensor&)>& f, const Tensor& x,
    float eps = 1e-3f) {
  const std::vector<float> base = x.ToVector();
  std::vector<float> grad(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::vector<float> plus = base, minus = base;
    plus[i] += eps;
    minus[i] -= eps;
    const float fp = f(Tensor::FromVector(x.shape(), plus, x.device()));
    const float fm = f(Tensor::FromVector(x.shape(), minus, x.device()));
    grad[i] = (fp - fm) / (2.0f * eps);
  }
  return grad;
}

inline void ExpectGradientsClose(const std::vector<float>& analytic,
                                 const std::vector<float>& numeric,
                                 float tol = 2e-2f) {
  ASSERT_EQ(analytic.size(), numeric.size());
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    const float scale =
        std::max({1.0f, std::fabs(analytic[i]), std::fabs(numeric[i])});
    EXPECT_NEAR(analytic[i], numeric[i], tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

}  // namespace s4tf::ad::testing
