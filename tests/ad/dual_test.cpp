#include "ad/dual.h"

#include <cmath>
#include <gtest/gtest.h>

namespace s4tf::ad {
namespace {

using D = Dual<double>;

TEST(DualTest, ArithmeticRules) {
  const D x = D::Variable(3.0);
  EXPECT_DOUBLE_EQ((x + x).tangent, 2.0);
  EXPECT_DOUBLE_EQ((x - x).tangent, 0.0);
  EXPECT_DOUBLE_EQ((x * x).tangent, 6.0);       // d/dx x^2 = 2x
  EXPECT_DOUBLE_EQ((D(1.0) / x).tangent, -1.0 / 9.0);
  EXPECT_DOUBLE_EQ((-x).tangent, -1.0);
}

TEST(DualTest, ConstantsHaveZeroTangent) {
  const D c(5.0);
  EXPECT_DOUBLE_EQ(c.tangent, 0.0);
  const D x = D::Variable(2.0);
  EXPECT_DOUBLE_EQ((c * x).tangent, 5.0);
}

TEST(DualTest, TranscendentalDerivatives) {
  const D x = D::Variable(0.7);
  EXPECT_NEAR(exp(x).tangent, std::exp(0.7), 1e-12);
  EXPECT_NEAR(log(x).tangent, 1.0 / 0.7, 1e-12);
  EXPECT_NEAR(sin(x).tangent, std::cos(0.7), 1e-12);
  EXPECT_NEAR(cos(x).tangent, -std::sin(0.7), 1e-12);
  const double t = std::tanh(0.7);
  EXPECT_NEAR(tanh(x).tangent, 1.0 - t * t, 1e-12);
  EXPECT_NEAR(sqrt(x).tangent, 0.5 / std::sqrt(0.7), 1e-12);
  EXPECT_NEAR(pow(x, 3.0).tangent, 3.0 * 0.7 * 0.7, 1e-12);
}

TEST(DualTest, AbsBranches) {
  EXPECT_DOUBLE_EQ(abs(D::Variable(-2.0)).tangent, -1.0);
  EXPECT_DOUBLE_EQ(abs(D::Variable(2.0)).tangent, 1.0);
}

TEST(DualTest, ScalarDerivativeOperator) {
  // d/dx [x * exp(x)] = (1 + x) exp(x)
  const double d = ScalarDerivative(1.3, [](D x) { return x * exp(x); });
  EXPECT_NEAR(d, (1.0 + 1.3) * std::exp(1.3), 1e-10);
}

TEST(DualTest, ChainThroughControlFlow) {
  // Piecewise function: derivative follows the active branch.
  auto f = [](D x) { return x > D(0.0) ? x * x : -x; };
  EXPECT_DOUBLE_EQ(ScalarDerivative(2.0, f), 4.0);
  EXPECT_DOUBLE_EQ(ScalarDerivative(-2.0, f), -1.0);
}

TEST(DualTest, MatchesFiniteDifferencesOnComposite) {
  auto f = [](D x) { return sin(x * x) / (D(1.0) + exp(-x)); };
  for (double x0 : {-1.5, -0.2, 0.4, 1.1, 2.7}) {
    const double analytic = ScalarDerivative(x0, f);
    const double eps = 1e-6;
    auto fv = [&](double v) {
      return std::sin(v * v) / (1.0 + std::exp(-v));
    };
    const double numeric = (fv(x0 + eps) - fv(x0 - eps)) / (2 * eps);
    EXPECT_NEAR(analytic, numeric, 1e-6) << "at x=" << x0;
  }
}

TEST(DualTest, CompoundAssignment) {
  D acc = D::Variable(1.0);
  acc *= acc;       // x^2: tangent 2
  acc += D(3.0);    // x^2+3: tangent 2
  acc /= D(2.0);    // (x^2+3)/2: tangent 1
  EXPECT_DOUBLE_EQ(acc.value, 2.0);
  EXPECT_DOUBLE_EQ(acc.tangent, 1.0);
}

}  // namespace
}  // namespace s4tf::ad
