#include "ad/subscript_pullback.h"

#include <gtest/gtest.h>

namespace s4tf::ad {
namespace {

FloatArray MakeValues(std::size_t n) {
  FloatArray values(n, 0.0f);
  float* data = values.mutable_data();
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<float>(i) * 0.5f;
  return values;
}

TEST(SubscriptPullbackTest, PrimalValuesAgree) {
  const FloatArray values = MakeValues(10);
  EXPECT_EQ(MyOp(values, 2, 7), 1.0f + 3.5f);
  EXPECT_EQ(MyOpWithFunctionalPullback(values, 2, 7).value,
            MyOp(values, 2, 7));
  EXPECT_EQ(MyOpWithMutablePullback(values, 2, 7).value, MyOp(values, 2, 7));
}

TEST(SubscriptPullbackTest, FunctionalPullbackIsOneHot) {
  const FloatArray values = MakeValues(6);
  auto [value, pullback] = SubscriptWithFunctionalPullback(values, 3);
  EXPECT_EQ(value, 1.5f);
  const FloatArray d = pullback(2.0f);
  EXPECT_EQ(d.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(d[i], i == 3 ? 2.0f : 0.0f);
  }
}

TEST(SubscriptPullbackTest, MutablePullbackAccumulates) {
  const FloatArray values = MakeValues(6);
  auto [value, pullback] = SubscriptWithMutablePullback(values, 3);
  (void)value;
  FloatArray grad(6, 0.0f);
  pullback(2.0f, grad);
  pullback(0.5f, grad);  // accumulation, not overwrite
  EXPECT_EQ(grad[3], 2.5f);
  EXPECT_EQ(grad[0], 0.0f);
}

TEST(SubscriptPullbackTest, FormulationsAgreeOnMyOp) {
  const FloatArray values = MakeValues(16);
  for (std::size_t a = 0; a < 16; a += 3) {
    for (std::size_t b = 1; b < 16; b += 5) {
      auto functional = MyOpWithFunctionalPullback(values, a, b);
      auto mutable_form = MyOpWithMutablePullback(values, a, b);
      const FloatArray df = functional.pullback(1.0f);
      FloatArray dm(16, 0.0f);
      mutable_form.pullback(1.0f, dm);
      EXPECT_TRUE(df == dm) << "a=" << a << " b=" << b;
    }
  }
}

TEST(SubscriptPullbackTest, RepeatedIndexDoublesGradient) {
  // myOp(values, i, i) = 2 * values[i]; gradient at i must be 2.
  const FloatArray values = MakeValues(8);
  auto functional = MyOpWithFunctionalPullback(values, 4, 4);
  auto mutable_form = MyOpWithMutablePullback(values, 4, 4);
  EXPECT_EQ(functional.pullback(1.0f)[4], 2.0f);
  FloatArray dm(8, 0.0f);
  mutable_form.pullback(1.0f, dm);
  EXPECT_EQ(dm[4], 2.0f);
}

TEST(SubscriptPullbackTest, MutablePullbackAllocatesNothing) {
  const FloatArray values = MakeValues(1000);
  auto mutable_form = MyOpWithMutablePullback(values, 10, 20);
  FloatArray grad(1000, 0.0f);
  grad.mutable_data();  // force uniqueness before measuring
  vs::CowStatsScope stats;
  for (int i = 0; i < 100; ++i) mutable_form.pullback(1.0f, grad);
  EXPECT_EQ(stats.delta().buffer_allocations, 0);  // O(1), zero alloc
  EXPECT_EQ(stats.delta().deep_copies, 0);
}

TEST(SubscriptPullbackTest, FunctionalPullbackAllocatesPerCall) {
  const FloatArray values = MakeValues(1000);
  auto functional = MyOpWithFunctionalPullback(values, 10, 20);
  vs::CowStatsScope stats;
  for (int i = 0; i < 10; ++i) functional.pullback(1.0f);
  // 3 arrays per call: two one-hots plus the sum.
  EXPECT_EQ(stats.delta().buffer_allocations, 30);
}

}  // namespace
}  // namespace s4tf::ad
