// ReduceScatter/AllGather acceptance tests: the standalone sharded
// collectives match the canonical tree reference bitwise, compose back
// into the all-reduce exactly, serve the async handle API, survive shard
// geometries that don't divide (empty shards, zero-length buffers), and
// reject malformed shard offsets loudly.
#include "dist/communicator.h"

#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

#include "device/cost_model.h"
#include "device/sim_accelerator.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace s4tf::dist {
namespace {

void RunRanks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&fn, r] { fn(r); });
  }
  for (std::thread& t : threads) t.join();
}

// Deterministic per-rank input with enough digits that reassociation
// would change the low bits (same generator as communicator_test.cpp).
std::vector<float> RankInput(int rank, std::size_t len) {
  std::vector<float> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = 0.001f * static_cast<float>(rank + 1) *
                  static_cast<float>((i * 2654435761u) % 1000) +
              1.0f / static_cast<float>(rank + 2);
  }
  return data;
}

std::vector<std::vector<float>> AllRankInputs(int world, std::size_t len) {
  std::vector<std::vector<float>> parts;
  for (int r = 0; r < world; ++r) parts.push_back(RankInput(r, len));
  return parts;
}

TEST(ShardOffsetsTest, CeilDividedContiguousCover) {
  EXPECT_EQ(ShardOffsets(10, 4), (std::vector<std::int64_t>{0, 3, 6, 9, 10}));
  EXPECT_EQ(ShardOffsets(8, 4), (std::vector<std::int64_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(ShardOffsets(5, 1), (std::vector<std::int64_t>{0, 5}));
  // world > len: trailing shards are empty, never negative.
  EXPECT_EQ(ShardOffsets(3, 6),
            (std::vector<std::int64_t>{0, 1, 2, 3, 3, 3, 3}));
  // Zero-length buffer: every shard is empty.
  EXPECT_EQ(ShardOffsets(0, 3), (std::vector<std::int64_t>{0, 0, 0, 0}));
}

TEST(ReduceScatterTest, OwnShardMatchesTreeReferenceBitwise) {
  for (int world : {1, 2, 3, 4, 8}) {
    const std::size_t len = 173;  // not divisible by any tested world
    const std::vector<float> expected =
        OrderedTreeReduce(AllRankInputs(world, len));
    const std::vector<std::int64_t> offsets =
        ShardOffsets(static_cast<std::int64_t>(len), world);
    RingCommunicator comm(world);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.ReduceScatter(rank, buffers[static_cast<std::size_t>(rank)],
                         ReduceOp::kSum);
    });
    for (int r = 0; r < world; ++r) {
      for (std::int64_t i = offsets[static_cast<std::size_t>(r)];
           i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)]
                         [static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)])
            << "world " << world << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(ReduceScatterTest, MeanMatchesTreeReferenceBitwise) {
  const int world = 4;
  const std::size_t len = 257;
  const std::vector<float> expected =
      OrderedTreeReduceMean(AllRankInputs(world, len));
  const std::vector<std::int64_t> offsets =
      ShardOffsets(static_cast<std::int64_t>(len), world);
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.ReduceScatter(rank, buffers[static_cast<std::size_t>(rank)],
                       ReduceOp::kMean);
  });
  for (int r = 0; r < world; ++r) {
    for (std::int64_t i = offsets[static_cast<std::size_t>(r)];
         i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(i)],
                expected[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(AllGatherTest, BroadcastsEveryOwnersShard) {
  for (int world : {1, 2, 3, 4, 8}) {
    const std::size_t len = 131;
    const std::vector<std::int64_t> offsets =
        ShardOffsets(static_cast<std::int64_t>(len), world);
    // The assembled buffer every rank must end with: shard r comes from
    // rank r's distinctive input.
    std::vector<float> assembled(len, 0.0f);
    for (int r = 0; r < world; ++r) {
      const std::vector<float> input = RankInput(r, len);
      for (std::int64_t i = offsets[static_cast<std::size_t>(r)];
           i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
        assembled[static_cast<std::size_t>(i)] =
            input[static_cast<std::size_t>(i)];
      }
    }
    RingCommunicator comm(world);
    std::vector<std::vector<float>> buffers(
        static_cast<std::size_t>(world));
    for (int r = 0; r < world; ++r) {
      // Only the rank's own shard region is valid on entry; the rest is
      // a sentinel the gather must overwrite (or leave, for world 1).
      buffers[static_cast<std::size_t>(r)].assign(len, -1000.0f);
      const std::vector<float> input = RankInput(r, len);
      for (std::int64_t i = offsets[static_cast<std::size_t>(r)];
           i < offsets[static_cast<std::size_t>(r) + 1]; ++i) {
        buffers[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
            input[static_cast<std::size_t>(i)];
      }
    }
    RunRanks(world, [&](int rank) {
      comm.AllGather(rank, buffers[static_cast<std::size_t>(rank)]);
    });
    for (int r = 0; r < world; ++r) {
      if (world == 1) continue;  // nothing to transport
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)], assembled)
          << "world " << world << " rank " << r;
    }
  }
}

TEST(CollectiveTest, ReduceScatterThenAllGatherEqualsAllReduceBitwise) {
  // The tentpole identity: RS followed by AG over the same shard
  // geometry IS the all-reduce, bit for bit, for every world size,
  // bucket granularity, and reduction.
  for (int world : {1, 2, 3, 4, 8}) {
    const std::size_t len = 211;
    for (const std::int64_t bucket_bytes : {64, 256, 1 << 20}) {
      for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kMean}) {
        CollectiveOptions options;
        options.bucket_bytes = bucket_bytes;

        RingCommunicator ar_comm(world, options);
        std::vector<std::vector<float>> ar = AllRankInputs(world, len);
        RunRanks(world, [&](int rank) {
          ar_comm.AllReduce(rank, ar[static_cast<std::size_t>(rank)], op);
        });

        RingCommunicator comm(world, options);
        std::vector<std::vector<float>> composed =
            AllRankInputs(world, len);
        RunRanks(world, [&](int rank) {
          std::vector<float>& buf = composed[static_cast<std::size_t>(rank)];
          comm.ReduceScatter(rank, buf, op);
          comm.AllGather(rank, buf);
        });
        for (int r = 0; r < world; ++r) {
          ASSERT_EQ(composed[static_cast<std::size_t>(r)],
                    ar[static_cast<std::size_t>(r)])
              << "world " << world << " bucket_bytes " << bucket_bytes
              << " op " << static_cast<int>(op) << " rank " << r;
        }
      }
    }
  }
}

TEST(CollectiveTest, CustomShardOffsetsRespected) {
  // A deliberately skewed partition — including an empty middle shard —
  // behaves exactly like the default one: each owner ends with its
  // reduced shard, and RS∘AG still composes to the all-reduce.
  const int world = 4;
  const std::size_t len = 100;
  const std::vector<std::int64_t> offsets = {0, 70, 70, 90, 100};
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = buffers[static_cast<std::size_t>(rank)];
    comm.ReduceScatter(rank, buf, ReduceOp::kSum, offsets);
    comm.AllGather(rank, buf, offsets);
  });
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(buffers[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(CollectiveTest, MalformedShardOffsetsFailLoudly) {
  const std::size_t len = 16;
  RingCommunicator comm(1);
  std::vector<float> data = RankInput(0, len);
  // Wrong arity (world+1 entries required).
  EXPECT_THROW(comm.ReduceScatter(0, data, ReduceOp::kSum, {0}),
               InternalError);
  // back() must equal the buffer length.
  EXPECT_THROW(comm.ReduceScatter(0, data, ReduceOp::kSum, {0, 15}),
               InternalError);
  // front() must be 0.
  EXPECT_THROW(comm.AllGather(0, data, {1, 16}), InternalError);
  // Offsets must be nondecreasing.
  RingCommunicator comm2(2);
  std::vector<float> data2 = RankInput(0, len);
  EXPECT_THROW(comm2.ReduceScatter(0, data2, ReduceOp::kSum, {0, 12, 8}),
               InternalError);
}

TEST(CollectiveTest, ZeroLengthBufferIsANoOpForEveryKind) {
  const int world = 2;
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers(2);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = buffers[static_cast<std::size_t>(rank)];
    comm.ReduceScatter(rank, buf, ReduceOp::kSum);
    comm.AllGather(rank, buf);
    comm.Barrier(rank);
  });
  EXPECT_TRUE(buffers[0].empty());
  EXPECT_TRUE(buffers[1].empty());
}

TEST(CollectiveTest, WorldLargerThanBufferLeavesTrailingShardsEmpty) {
  // world 8 over 3 elements: shards 3..7 are empty; owners of real
  // shards still reduce them exactly.
  const int world = 8;
  const std::size_t len = 3;
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = buffers[static_cast<std::size_t>(rank)];
    comm.ReduceScatter(rank, buf, ReduceOp::kSum);
    comm.AllGather(rank, buf);
  });
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(buffers[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST(CollectiveTest, AsyncShardedCollectivesMatchSyncBitwise) {
  // ReduceScatterAsync/AllGatherAsync with bucket-at-a-time submission
  // produce exactly the synchronous results.
  const int world = 4;
  const std::size_t len = 300;
  CollectiveOptions options;
  options.bucket_bytes = 256;  // several buckets

  RingCommunicator sync_comm(world, options);
  std::vector<std::vector<float>> sync_bufs = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = sync_bufs[static_cast<std::size_t>(rank)];
    sync_comm.ReduceScatter(rank, buf, ReduceOp::kMean);
    sync_comm.AllGather(rank, buf);
  });

  RingCommunicator comm(world, options);
  std::vector<std::vector<float>> bufs = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = bufs[static_cast<std::size_t>(rank)];
    auto rs = comm.ReduceScatterAsync(rank, buf, ReduceOp::kMean);
    for (std::int64_t b = 0; b < rs->num_buckets(); ++b) {
      rs->SubmitBucket(b);
    }
    rs->Wait();
    auto ag = comm.AllGatherAsync(rank, buf);
    ag->Wait();  // Wait() submits whatever was never handed over
  });
  for (int r = 0; r < world; ++r) {
    ASSERT_EQ(bufs[static_cast<std::size_t>(r)],
              sync_bufs[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(CollectiveTest, LegacyAllReduceWrapperForwardsToRun) {
  // The historical AllReduce(rank, data, op) signature is a pure
  // forwarder: same bytes as the spec-based Run.
  const int world = 3;
  const std::size_t len = 97;
  RingCommunicator via_wrapper(world);
  std::vector<std::vector<float>> wrapped = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    via_wrapper.AllReduce(rank, wrapped[static_cast<std::size_t>(rank)],
                          ReduceOp::kSum);
  });
  RingCommunicator via_run(world);
  std::vector<std::vector<float>> ran = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    const CollectiveResult result = via_run.Run(
        rank, CollectiveSpec::AllReduce(ReduceOp::kSum),
        ran[static_cast<std::size_t>(rank)]);
    EXPECT_EQ(result.bytes,
              static_cast<std::int64_t>(len * sizeof(float)));
    EXPECT_GT(result.buckets, 0);
  });
  EXPECT_EQ(wrapped, ran);
}

TEST(CollectiveTest, ShardedCollectivesCountSeparately) {
  // RS/AG record their own dist.* counters and never touch the
  // all-reduce's call counter (the bench gates key off these).
  const int world = 2;
  const std::size_t len = 64;
  RingCommunicator comm(world);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<std::vector<float>> bufs = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    std::vector<float>& buf = bufs[static_cast<std::size_t>(rank)];
    comm.ReduceScatter(rank, buf, ReduceOp::kSum);
    comm.AllGather(rank, buf);
  });
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("dist.reduce_scatter.calls"), world);
  EXPECT_EQ(delta.at("dist.all_gather.calls"), world);
  EXPECT_EQ(delta.at("dist.reduce_scatter.bytes"),
            static_cast<std::int64_t>(world * len * sizeof(float)));
  EXPECT_EQ(delta.at("dist.all_gather.bytes"),
            static_cast<std::int64_t>(world * len * sizeof(float)));
  EXPECT_GT(delta.at("dist.reduce_scatter.chunks"), 0);
  EXPECT_GT(delta.at("dist.all_gather.chunks"), 0);
  EXPECT_EQ(delta.count("dist.allreduce.calls"), 0u);
}

TEST(CollectiveTest, ShardedCollectivesChargeAttachedAccelerators) {
  // Each phase charges its own (half-ring) cost model entry; the two
  // phases together charge exactly the monolithic all-reduce, because
  // AllReduceSeconds == ReduceScatterSeconds + AllGatherSeconds and the
  // shard partition transports the same chunks.
  const int world = 4;
  const std::size_t len = 256;
  CollectiveOptions options;
  options.bucket_bytes = 1 << 20;  // one bucket
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();

  auto charged = [&](const std::function<void(RingCommunicator&, int,
                                              std::vector<float>&)>& body) {
    RingCommunicator comm(world, options);
    std::vector<std::unique_ptr<SimAccelerator>> accels;
    for (int r = 0; r < world; ++r) {
      accels.push_back(std::make_unique<SimAccelerator>(spec));
      comm.AttachAccelerator(r, accels.back().get());
    }
    std::vector<std::vector<float>> bufs = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      body(comm, rank, bufs[static_cast<std::size_t>(rank)]);
    });
    return accels[0]->elapsed_seconds();
  };

  const double ar = charged([](RingCommunicator& c, int rank,
                               std::vector<float>& buf) {
    c.AllReduce(rank, buf, ReduceOp::kSum);
  });
  const double rs = charged([](RingCommunicator& c, int rank,
                               std::vector<float>& buf) {
    c.ReduceScatter(rank, buf, ReduceOp::kSum);
  });
  const double ag = charged([](RingCommunicator& c, int rank,
                               std::vector<float>& buf) {
    std::vector<float> own = buf;
    c.AllGather(rank, own);
  });
  EXPECT_GT(rs, 0.0);
  EXPECT_GT(ag, 0.0);
  EXPECT_LT(rs, ar);
  EXPECT_LT(ag, ar);
}

TEST(CollectiveTest, HierarchicalTopologyChangesOnlyTheChargedClock) {
  // A hierarchical CollectiveOptions::topology reshapes the simulated
  // all-reduce cost (cheaper at scale) but never the reduced bytes.
  const int world = 8;
  const std::size_t len = 1024;

  auto run = [&](CommTopology topology) {
    CollectiveOptions options;
    options.topology = topology;
    RingCommunicator comm(world, options);
    std::vector<std::unique_ptr<SimAccelerator>> accels;
    for (int r = 0; r < world; ++r) {
      accels.push_back(std::make_unique<SimAccelerator>(
          AcceleratorSpec::TpuV3Core()));
      comm.AttachAccelerator(r, accels.back().get());
    }
    std::vector<std::vector<float>> bufs = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, bufs[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    });
    return std::make_pair(bufs, accels[0]->elapsed_seconds());
  };

  const auto [flat_bufs, flat_seconds] = run(CommTopology{});
  const auto [hier_bufs, hier_seconds] = run(CommTopology{/*rph=*/4});
  EXPECT_EQ(flat_bufs, hier_bufs);
  EXPECT_GT(hier_seconds, 0.0);
  EXPECT_NE(hier_seconds, flat_seconds);
}

}  // namespace
}  // namespace s4tf::dist
