#include "nn/replica_group.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "nn/data_parallel.h"
#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/training.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

struct StepResult {
  float loss = 0.0f;
  std::vector<std::vector<float>> params;
};

// One ReplicaGroup::TrainStep from a fixed initialization, on a fresh
// group configured by `options`.
StepResult RunStep(int replicas, ReplicaGroupOptions options,
                   int steps = 1) {
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  Rng rng(5);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f);
  ReplicaGroup group(replicas, std::move(options));
  StepResult result;
  for (int s = 0; s < steps; ++s) {
    const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
    result.loss = group.TrainStep(model, sgd, ShardBatch(batch, replicas));
  }
  result.params = Parameters(model);
  return result;
}

class ReplicaGroupTest : public ::testing::Test {
 protected:
  ~ReplicaGroupTest() override { SetIntraOpThreads(0); }
};

TEST_F(ReplicaGroupTest, ThreadedMatchesSequentialReferenceBitwise) {
  // The acceptance criterion: for every replica count x intra-op thread
  // count x overlap mode, the threaded collective produces bit-identical
  // weights and loss to the sequential reference.
  for (const int replicas : {1, 2, 4, 8}) {
    ReplicaGroupOptions reference;
    reference.sequential = true;
    SetIntraOpThreads(1);
    const StepResult expected = RunStep(replicas, reference);
    for (const int threads : {1, 2, 4}) {
      SetIntraOpThreads(threads);
      for (const bool overlap : {false, true}) {
        ReplicaGroupOptions threaded;  // worker pool + communicator
        threaded.overlap = overlap;
        const StepResult got = RunStep(replicas, threaded);
        ASSERT_EQ(got.loss, expected.loss)
            << "replicas " << replicas << " threads " << threads
            << " overlap " << overlap;
        ASSERT_EQ(got.params, expected.params)
            << "replicas " << replicas << " threads " << threads
            << " overlap " << overlap;
      }
    }
  }
}

TEST_F(ReplicaGroupTest, ReplicaCountDoesNotChangeTrainingTrajectory) {
  // Multi-step: every replica count walks the same weight trajectory to
  // within float tolerance (exact equality across replica counts is not
  // expected: the tree reduction's shape depends on the rank count).
  SetIntraOpThreads(2);
  const StepResult one = RunStep(1, {}, /*steps=*/3);
  for (const int replicas : {2, 4}) {
    const StepResult many = RunStep(replicas, {}, /*steps=*/3);
    EXPECT_NEAR(many.loss, one.loss, 1e-4f);
    ASSERT_EQ(many.params.size(), one.params.size());
    for (std::size_t p = 0; p < one.params.size(); ++p) {
      for (std::size_t i = 0; i < one.params[p].size(); ++i) {
        ASSERT_NEAR(many.params[p][i], one.params[p][i], 1e-4f)
            << "replicas " << replicas;
      }
    }
  }
}

TEST_F(ReplicaGroupTest, FaultInjectedTrainingIsBitIdenticalAndCounted) {
  const int replicas = 4;
  ReplicaGroupOptions faulty;
  faulty.faults.seed = 23;
  faulty.faults.drop_probability = 0.25;
  faulty.faults.straggler_probability = 0.1;
  faulty.faults.straggler_delay = std::chrono::milliseconds(1);
  faulty.collective.recv_timeout = std::chrono::milliseconds(2000);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const StepResult with_faults = RunStep(replicas, faulty, /*steps=*/2);
  const auto delta = obs::MetricsRegistry::Global()
                         .Snapshot()
                         .CounterDeltaSince(before);
  const StepResult clean = RunStep(replicas, {}, /*steps=*/2);

  // Dropped chunks and stragglers never change the numbers...
  EXPECT_EQ(with_faults.loss, clean.loss);
  EXPECT_EQ(with_faults.params, clean.params);
  // ...but the recovery is visible: drops surfaced as timeouts+retries.
  EXPECT_GT(delta.at("dist.fault.dropped_chunks"), 0);
  EXPECT_GT(delta.at("dist.retry.count"), 0);
  EXPECT_GT(delta.at("dist.fault.straggler_delays"), 0);
  EXPECT_EQ(delta.at("nn.replica.steps"), 2);
}

TEST_F(ReplicaGroupTest, OverlapMatchesSequentialReferenceAcrossBucketSizes) {
  // The tentpole acceptance check: overlapping the bucketed all-reduce
  // with the backward pass changes only the schedule, never the numbers.
  // For every bucket granularity, overlap on == overlap off == the
  // sequential reference, bit for bit.
  const int replicas = 4;
  SetIntraOpThreads(2);
  ReplicaGroupOptions reference;
  reference.sequential = true;
  const StepResult expected = RunStep(replicas, reference);
  for (const std::int64_t bucket_bytes : {256, 65536, 1 << 24}) {
    for (const bool overlap : {false, true}) {
      ReplicaGroupOptions options;
      options.collective.bucket_bytes = bucket_bytes;
      options.overlap = overlap;
      const StepResult got = RunStep(replicas, options);
      ASSERT_EQ(got.loss, expected.loss)
          << "bucket_bytes " << bucket_bytes << " overlap " << overlap;
      ASSERT_EQ(got.params, expected.params)
          << "bucket_bytes " << bucket_bytes << " overlap " << overlap;
    }
  }
}

TEST_F(ReplicaGroupTest, OverlapStreamsEveryBucketEarly) {
  // In the overlapped step every parameter's gradient-ready hook fires,
  // so every bucket is submitted during the backward pass — Wait() never
  // has to flush a leftover. These are logical-event counters, so the
  // values are exact, not timing-dependent.
  const int replicas = 2;
  SetIntraOpThreads(1);
  ReplicaGroupOptions options;  // overlap defaults to on
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const StepResult got = RunStep(replicas, options);
  const auto delta = obs::MetricsRegistry::Global()
                         .Snapshot()
                         .CounterDeltaSince(before);
  EXPECT_TRUE(std::isfinite(got.loss));
  EXPECT_EQ(delta.at("dist.overlap.async_calls"), replicas);
  EXPECT_EQ(delta.at("dist.overlap.wait.calls"), replicas);
  EXPECT_EQ(delta.at("dist.overlap.buckets.early"),
            delta.at("dist.allreduce.buckets") -
                // The scalar loss all-reduce is synchronous: one bucket
                // per rank that never goes through the async path.
                replicas);
  EXPECT_EQ(delta.count("dist.overlap.buckets.flushed_at_wait"), 0u);
}

TEST_F(ReplicaGroupTest, OverlapUnderFaultInjectionStaysBitIdentical) {
  // Satellite: drops and stragglers while buckets are in flight on the
  // comm threads recover to the same weights as the clean run, in both
  // overlap modes.
  const int replicas = 2;
  SetIntraOpThreads(2);
  ReplicaGroupOptions faulty;
  faulty.faults.seed = 31;
  faulty.faults.drop_probability = 0.25;
  faulty.faults.straggler_probability = 0.1;
  faulty.faults.straggler_delay = std::chrono::milliseconds(1);
  faulty.collective.recv_timeout = std::chrono::milliseconds(2000);

  const StepResult clean = RunStep(replicas, {}, /*steps=*/2);
  for (const bool overlap : {false, true}) {
    ReplicaGroupOptions options = faulty;
    options.overlap = overlap;
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    const StepResult got = RunStep(replicas, options, /*steps=*/2);
    const auto delta = obs::MetricsRegistry::Global()
                           .Snapshot()
                           .CounterDeltaSince(before);
    EXPECT_EQ(got.loss, clean.loss) << "overlap " << overlap;
    EXPECT_EQ(got.params, clean.params) << "overlap " << overlap;
    EXPECT_GT(delta.at("dist.fault.dropped_chunks"), 0)
        << "overlap " << overlap;
    if (overlap) {
      EXPECT_GT(delta.at("dist.overlap.buckets.early"), 0);
    }
  }
}

TEST_F(ReplicaGroupTest, ReplicaDeathFailsLoudlyInBothOverlapModes) {
  // A replica seeded to die at the gradient collective surfaces a clean
  // InternalError out of TrainStep (the dying rank's ReplicaDeadError or
  // a survivor's exhausted retry budget, whichever ParallelFor rethrows)
  // — identically whether the collective is overlapped or synchronous.
  const int replicas = 2;
  SetIntraOpThreads(2);
  for (const bool overlap : {false, true}) {
    ReplicaGroupOptions options;
    options.overlap = overlap;
    options.faults.death_rank = 1;
    options.faults.death_seq = 0;
    options.collective.recv_timeout = std::chrono::milliseconds(20);
    options.collective.max_retries = 2;
    EXPECT_THROW(RunStep(replicas, options), InternalError)
        << "overlap " << overlap;
  }
}

TEST_F(ReplicaGroupTest, WithDeviceScopingComposesWithReplicaWorkers) {
  // Each replica worker sees its own device as Device::Current() — the
  // per-replica selection is scoped, not a process-wide global.
  const int replicas = 3;
  ReplicaGroup group(replicas);
  std::vector<Device> seen(static_cast<std::size_t>(replicas));
  group.RunOnReplicas([&](int rank) {
    seen[static_cast<std::size_t>(rank)] = Device::Current();
  });
  for (int r = 0; r < replicas; ++r) {
    EXPECT_EQ(seen[static_cast<std::size_t>(r)], group.device(r));
    EXPECT_EQ(group.device(r).ordinal(), r);
  }
  // Distinct replicas have distinct (un-mixable) devices.
  EXPECT_NE(group.device(0), group.device(1));
  // The caller's own scope is untouched afterwards.
  EXPECT_EQ(Device::Current(), NaiveDevice());
}

TEST_F(ReplicaGroupTest, AttachedAcceleratorsChargeCollectiveTime) {
  ReplicaGroupOptions options;
  options.accelerator = AcceleratorSpec::TpuV3Core();
  const int replicas = 2;
  const auto dataset = SyntheticImageDataset::Mnist(16, 9);
  Rng rng(1);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f);
  ReplicaGroup group(replicas, options);
  const LabeledBatch batch = dataset.Batch(0, 8, NaiveDevice());
  group.TrainStep(model, sgd, ShardBatch(batch, replicas));
  for (int r = 0; r < replicas; ++r) {
    ASSERT_NE(group.accelerator(r), nullptr);
    EXPECT_GT(group.accelerator(r)->elapsed_seconds(), 0.0);
  }
  EXPECT_GT(group.last_step_wall_seconds(), 0.0);
  EXPECT_GT(group.last_step_replica_seconds(0), 0.0);
}

TEST_F(ReplicaGroupTest, DeprecatedWrapperForwardsToReplicaGroup) {
  const auto dataset = SyntheticImageDataset::Mnist(16, 13);
  const LabeledBatch batch = dataset.Batch(0, 8, NaiveDevice());

  Rng rng1(2);
  LeNet via_group(rng1);
  SGD<LeNet> sgd1(0.1f);
  ReplicaGroup group(2);
  const float group_loss =
      group.TrainStep(via_group, sgd1, ShardBatch(batch, 2));

  Rng rng2(2);
  LeNet via_wrapper(rng2);
  SGD<LeNet> sgd2(0.1f);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const float wrapper_loss =
      DataParallelTrainStep(via_wrapper, sgd2, ShardBatch(batch, 2));
#pragma GCC diagnostic pop

  EXPECT_EQ(wrapper_loss, group_loss);
  EXPECT_EQ(Parameters(via_wrapper), Parameters(via_group));
}

}  // namespace
}  // namespace s4tf::nn
