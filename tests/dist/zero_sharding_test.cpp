// ZeRO-style sharded optimizer state acceptance tests: the sharded
// TrainStep (reduce-scatter grads -> per-rank shard update -> all-gather
// params) is bit-identical to the replicated path across world sizes,
// thread counts, and overlap modes; per-rank optimizer state shrinks
// ~1/world; the shard plan survives non-dividing worlds and empty
// shards; faults and replica death behave exactly as in replicated mode.
#include "nn/replica_group.h"

#include <cmath>
#include <gtest/gtest.h>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/training.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

struct StepResult {
  float loss = 0.0f;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> adam_m;  // first-moment state, per slot
  std::int64_t adam_step = 0;
};

// `steps` Adam TrainSteps from a fixed initialization on a fresh group.
// Adam (two state tensors per slot plus a step scalar) is the
// interesting optimizer for sharding: state must partition AND gather
// back for checkpoints.
StepResult RunAdamSteps(int replicas, ReplicaGroupOptions options,
                        int steps = 2) {
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  Rng rng(5);
  LeNet model(rng);
  Adam<LeNet> adam(0.01f);
  ReplicaGroup group(replicas, std::move(options));
  StepResult result;
  for (int s = 0; s < steps; ++s) {
    const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
    result.loss = group.TrainStep(model, adam, ShardBatch(batch, replicas));
  }
  result.params = Parameters(model);
  OptimizerStateRefs refs = OptimizerStateRefs::Of(adam);
  for (const auto& [name, slots] : refs.tensor_slots) {
    if (std::string(name) != "m") continue;
    for (const Tensor& t : *slots) {
      result.adam_m.push_back(t.NumElements() > 0 ? t.ToVector()
                                                  : std::vector<float>{});
    }
  }
  for (const auto& [name, value] : refs.scalars) {
    if (std::string(name) == "step") result.adam_step = *value;
  }
  return result;
}

// Per-rank optimizer-state bytes after `steps` sharded Adam steps.
std::vector<std::int64_t> ShardedStateBytes(int replicas, int steps = 2) {
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  Rng rng(5);
  LeNet model(rng);
  Adam<LeNet> adam(0.01f);
  ReplicaGroupOptions options;
  options.sharded = true;
  ReplicaGroup group(replicas, options);
  for (int s = 0; s < steps; ++s) {
    const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
    group.TrainStep(model, adam, ShardBatch(batch, replicas));
  }
  std::vector<std::int64_t> bytes;
  for (int r = 0; r < replicas; ++r) {
    bytes.push_back(group.zero_opt_state_bytes(r));
  }
  return bytes;
}

class ZeroShardingTest : public ::testing::Test {
 protected:
  ~ZeroShardingTest() override { SetIntraOpThreads(0); }
};

TEST_F(ZeroShardingTest, ShardPlanCoversSlotsForEveryWorld) {
  Rng rng(1);
  LeNet model(rng);
  std::int64_t total = 0;
  std::int64_t slots = 0;
  model.VisitParameters([&](Tensor& p) {
    total += p.NumElements();
    ++slots;
  });
  // Includes worlds that don't divide the element count and worlds
  // larger than the slot count (trailing shards empty).
  for (const int world : {1, 2, 3, 4, 7, 8, 64}) {
    const auto plan = internal::MakeZeroShardPlan(model, world);
    ASSERT_EQ(plan.cuts.size(), static_cast<std::size_t>(world) + 1);
    ASSERT_EQ(plan.elem_offsets.size(), static_cast<std::size_t>(world) + 1);
    EXPECT_EQ(plan.cuts.front(), 0);
    EXPECT_EQ(plan.cuts.back(), slots);
    EXPECT_EQ(plan.elem_offsets.front(), 0);
    EXPECT_EQ(plan.elem_offsets.back(), total);
    std::int64_t elems = 0;
    for (int r = 0; r < world; ++r) {
      ASSERT_LE(plan.cuts[static_cast<std::size_t>(r)],
                plan.cuts[static_cast<std::size_t>(r) + 1])
          << "world " << world;
      ASSERT_LE(plan.elem_offsets[static_cast<std::size_t>(r)],
                plan.elem_offsets[static_cast<std::size_t>(r) + 1]);
      elems += plan.shard_elems(r);
    }
    EXPECT_EQ(elems, total) << "world " << world;
    if (world > static_cast<int>(slots)) {
      // More ranks than slots: shards are whole slots, so by pigeonhole
      // at least world - slots of them are empty — and that is fine; the
      // empty ranks still participate in every collective.
      int empty = 0;
      for (int r = 0; r < world; ++r) {
        if (plan.shard_elems(r) == 0) ++empty;
      }
      EXPECT_GE(empty, world - static_cast<int>(slots))
          << "world " << world;
    }
  }
}

TEST_F(ZeroShardingTest, ShardedMatchesReplicatedBitwiseAcrossGrid) {
  // The tentpole acceptance grid: world x intra-op threads x overlap,
  // sharded == replicated == sequential reference, bit for bit — params,
  // loss, AND gathered optimizer state (so checkpoints agree too).
  for (const int replicas : {1, 2, 4, 8}) {
    ReplicaGroupOptions reference;
    reference.sequential = true;
    SetIntraOpThreads(1);
    const StepResult expected = RunAdamSteps(replicas, reference);
    for (const int threads : {1, 2, 4}) {
      SetIntraOpThreads(threads);
      for (const bool overlap : {false, true}) {
        ReplicaGroupOptions sharded;
        sharded.sharded = true;
        sharded.overlap = overlap;
        const StepResult got = RunAdamSteps(replicas, sharded);
        ASSERT_EQ(got.loss, expected.loss)
            << "replicas " << replicas << " threads " << threads
            << " overlap " << overlap;
        ASSERT_EQ(got.params, expected.params)
            << "replicas " << replicas << " threads " << threads
            << " overlap " << overlap;
        ASSERT_EQ(got.adam_m, expected.adam_m)
            << "replicas " << replicas << " threads " << threads
            << " overlap " << overlap;
        ASSERT_EQ(got.adam_step, expected.adam_step);
      }
    }
  }
}

TEST_F(ZeroShardingTest, ShardedStepsAreCounted) {
  SetIntraOpThreads(1);
  ReplicaGroupOptions options;
  options.sharded = true;
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  RunAdamSteps(2, options, /*steps=*/2);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.zero.sharded_steps"), 2);
  EXPECT_EQ(delta.at("nn.replica.steps"), 2);
  EXPECT_EQ(delta.at("dist.reduce_scatter.calls"), 2 * 2);
  EXPECT_EQ(delta.at("dist.all_gather.calls"), 2 * 2);
}

TEST_F(ZeroShardingTest, PerRankOptimizerStateShrinksWithWorld) {
  // The ZeRO memory claim: each rank's Adam state is ~1/world of the
  // replicated footprint. Slot-aligned cuts mean a rank can exceed the
  // even share by at most one slot, so we assert against
  // replicated/world + the largest slot's bytes.
  SetIntraOpThreads(1);
  Rng rng(5);
  LeNet model(rng);
  Adam<LeNet> adam(0.01f);
  // Materialize full replicated state (one real update).
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  ReplicaGroup seed_group(1);
  seed_group.TrainStep(model, adam,
                       ShardBatch(dataset.Batch(0, 16, NaiveDevice()), 1));
  const std::int64_t replicated = OptimizerStateBytes(adam);
  ASSERT_GT(replicated, 0);
  std::int64_t largest_slot_bytes = 0;
  model.VisitParameters([&](Tensor& p) {
    // Adam holds two float tensors (m, v) per parameter slot.
    largest_slot_bytes =
        std::max(largest_slot_bytes, 2 * 4 * p.NumElements());
  });

  for (const int world : {2, 4, 8}) {
    const std::vector<std::int64_t> bytes = ShardedStateBytes(world);
    std::int64_t sum = 0;
    for (int r = 0; r < world; ++r) {
      ASSERT_GT(bytes[static_cast<std::size_t>(r)], 0) << "rank " << r;
      // Scalars (the step counter) replicate; tensors shard.
      ASSERT_LE(bytes[static_cast<std::size_t>(r)],
                replicated / world + largest_slot_bytes + 64)
          << "world " << world << " rank " << r;
      sum += bytes[static_cast<std::size_t>(r)];
    }
    // Tensor state partitions exactly; only per-rank scalars replicate.
    EXPECT_LE(sum, replicated + 64 * world) << "world " << world;
    EXPECT_GE(sum, replicated) << "world " << world;
  }
}

TEST_F(ZeroShardingTest, WorldLargerThanSlotCountStillBitIdentical) {
  // More ranks than optimizer slots: some shards are empty, yet the
  // sharded step still matches the sequential reference exactly. LeNet
  // has 8 parameter slots; world 12 guarantees empty shards.
  SetIntraOpThreads(1);
  const int replicas = 12;
  ReplicaGroupOptions reference;
  reference.sequential = true;
  const auto dataset = SyntheticImageDataset::Mnist(48, 17);

  auto run = [&](ReplicaGroupOptions options) {
    Rng rng(5);
    LeNet model(rng);
    Adam<LeNet> adam(0.01f);
    ReplicaGroup group(replicas, std::move(options));
    const LabeledBatch batch = dataset.Batch(0, 24, NaiveDevice());
    StepResult result;
    result.loss = group.TrainStep(model, adam, ShardBatch(batch, replicas));
    result.params = Parameters(model);
    return result;
  };

  const StepResult expected = run(reference);
  ReplicaGroupOptions sharded;
  sharded.sharded = true;
  const StepResult got = run(sharded);
  EXPECT_EQ(got.loss, expected.loss);
  EXPECT_EQ(got.params, expected.params);
}

TEST_F(ZeroShardingTest, FaultInjectionUnderShardingStaysBitIdentical) {
  // Drops and stragglers during the reduce-scatter and all-gather
  // recover to the clean sharded (== replicated) weights, both overlap
  // modes.
  const int replicas = 4;
  SetIntraOpThreads(2);
  ReplicaGroupOptions clean_opts;
  clean_opts.sharded = true;
  const StepResult clean = RunAdamSteps(replicas, clean_opts);

  for (const bool overlap : {false, true}) {
    ReplicaGroupOptions faulty;
    faulty.sharded = true;
    faulty.overlap = overlap;
    faulty.faults.seed = 23;
    faulty.faults.drop_probability = 0.25;
    faulty.faults.straggler_probability = 0.1;
    faulty.faults.straggler_delay = std::chrono::milliseconds(1);
    faulty.collective.recv_timeout = std::chrono::milliseconds(2000);
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    const StepResult got = RunAdamSteps(replicas, faulty);
    const auto delta =
        obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
    EXPECT_EQ(got.loss, clean.loss) << "overlap " << overlap;
    EXPECT_EQ(got.params, clean.params) << "overlap " << overlap;
    EXPECT_EQ(got.adam_m, clean.adam_m) << "overlap " << overlap;
    EXPECT_GT(delta.at("dist.fault.dropped_chunks"), 0)
        << "overlap " << overlap;
    EXPECT_GT(delta.at("dist.retry.count"), 0) << "overlap " << overlap;
  }
}

TEST_F(ZeroShardingTest, ReplicaDeathUnderShardingFailsLoudly) {
  // A rank seeded to die at each of the sharded step's collective slots
  // (reduce-scatter = 0, loss all-reduce = 1, all-gather = 2) surfaces a
  // clean InternalError from TrainStep — never a hang.
  const int replicas = 2;
  SetIntraOpThreads(2);
  for (const bool overlap : {false, true}) {
    for (const std::uint32_t seq : {0u, 1u, 2u}) {
      ReplicaGroupOptions options;
      options.sharded = true;
      options.overlap = overlap;
      options.faults.death_rank = 1;
      options.faults.death_seq = seq;
      options.collective.recv_timeout = std::chrono::milliseconds(20);
      options.collective.max_retries = 2;
      EXPECT_THROW(RunAdamSteps(replicas, options, /*steps=*/1),
                   InternalError)
          << "overlap " << overlap << " seq " << seq;
    }
  }
}

TEST_F(ZeroShardingTest, SgdMomentumShardsBitIdenticallyToo) {
  // SGD-with-momentum exercises the single-state-tensor path.
  SetIntraOpThreads(2);
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  auto run = [&](int replicas, ReplicaGroupOptions options) {
    Rng rng(5);
    LeNet model(rng);
    SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
    ReplicaGroup group(replicas, std::move(options));
    float loss = 0.0f;
    for (int s = 0; s < 3; ++s) {
      const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
      loss = group.TrainStep(model, sgd, ShardBatch(batch, replicas));
    }
    return std::make_pair(loss, Parameters(model));
  };
  for (const int replicas : {2, 4}) {
    ReplicaGroupOptions reference;
    reference.sequential = true;
    const auto expected = run(replicas, reference);
    ReplicaGroupOptions sharded;
    sharded.sharded = true;
    const auto got = run(replicas, sharded);
    EXPECT_EQ(got.first, expected.first) << "replicas " << replicas;
    EXPECT_EQ(got.second, expected.second) << "replicas " << replicas;
  }
}

}  // namespace
}  // namespace s4tf::nn
