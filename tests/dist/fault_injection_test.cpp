#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "dist/communicator.h"
#include "dist/fault_injector.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace s4tf::dist {
namespace {

void RunRanks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&fn, r] { fn(r); });
  }
  for (std::thread& t : threads) t.join();
}

std::vector<float> RankInput(int rank, std::size_t len) {
  std::vector<float> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = 0.25f * static_cast<float>(rank + 1) +
              0.001f * static_cast<float>(i % 97);
  }
  return data;
}

std::vector<std::vector<float>> AllRankInputs(int world, std::size_t len) {
  std::vector<std::vector<float>> parts;
  for (int r = 0; r < world; ++r) parts.push_back(RankInput(r, len));
  return parts;
}

TEST(FaultInjectorTest, DecisionsAreSeededAndDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_probability = 0.5;
  plan.straggler_probability = 0.5;
  plan.straggler_delay = std::chrono::microseconds(100);
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  plan.seed = 43;
  const FaultInjector other(plan);
  int drops = 0;
  int differs = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const MessageKey key{MessagePhase::kScatter, i, 0, 1, 2};
    EXPECT_EQ(a.DropsFor(key), b.DropsFor(key));
    EXPECT_EQ(a.DelayFor(key), b.DelayFor(key));
    drops += a.DropsFor(key);
    if (a.DropsFor(key) != other.DropsFor(key)) ++differs;
  }
  // p = 0.5 over 256 draws: both outcomes occur, and a different seed
  // yields a different fault set.
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 256);
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectionTest, EveryMessageDroppedOnceStillReducesExactly) {
  const int world = 4;
  const std::size_t len = 64;
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 1.0;  // every delivery lost exactly once
  plan.drops_per_event = 1;
  CollectiveOptions options;
  options.bucket_bytes = 128;  // several buckets
  options.recv_timeout = std::chrono::milliseconds(2000);

  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  RingCommunicator comm(world, options, plan);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
  });
  const auto delta = obs::MetricsRegistry::Global()
                         .Snapshot()
                         .CounterDeltaSince(before);

  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i]);
    }
  }
  // With p=1 and one drop per event, every sent message times out and is
  // retried exactly once — the counters are exact, not approximate.
  const std::int64_t sent = delta.at("dist.send.messages");
  EXPECT_GT(sent, 0);
  EXPECT_EQ(delta.at("dist.fault.dropped_chunks"), sent);
  EXPECT_EQ(delta.at("dist.recv.timeouts"), sent);
  EXPECT_EQ(delta.at("dist.retry.count"), sent);
}

TEST(FaultInjectionTest, FaultyRunIsBitIdenticalToFaultFreeRun) {
  const int world = 3;
  const std::size_t len = 150;
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_probability = 0.3;
  plan.straggler_probability = 0.2;
  plan.straggler_delay = std::chrono::milliseconds(2);
  CollectiveOptions options;
  options.recv_timeout = std::chrono::milliseconds(2000);

  auto run = [&](FaultPlan run_plan) {
    RingCommunicator comm(world, options, run_plan);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kMean);
    });
    return buffers;
  };
  const auto faulty = run(plan);
  const auto faulty_again = run(plan);
  const auto clean = run(FaultPlan{});
  EXPECT_EQ(faulty, faulty_again);  // same seed -> same run, bit for bit
  EXPECT_EQ(faulty, clean);         // faults never change the numbers
}

TEST(FaultInjectionTest, StragglerDelaysAreRecordedAndRecovered) {
  const int world = 2;
  const std::size_t len = 32;
  FaultPlan plan;
  plan.seed = 3;
  plan.straggler_probability = 1.0;  // every message arrives late
  plan.straggler_delay = std::chrono::milliseconds(1);
  CollectiveOptions options;
  options.recv_timeout = std::chrono::milliseconds(2000);

  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  RingCommunicator comm(world, options, plan);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
    comm.Barrier(rank);
  });
  const auto delta = obs::MetricsRegistry::Global()
                         .Snapshot()
                         .CounterDeltaSince(before);

  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i]);
    }
  }
  // Every sent message was delayed; all were recovered (the delay is far
  // below recv_timeout, so there is no retry-count guarantee to assert).
  EXPECT_EQ(delta.at("dist.fault.straggler_delays"),
            delta.at("dist.send.messages"));
}

TEST(FaultInjectionTest, ExhaustedRetryBudgetFailsLoudlyOnEveryRank) {
  const int world = 2;
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_probability = 1.0;
  plan.drops_per_event = 1000;  // far beyond any retry budget
  CollectiveOptions options;
  options.recv_timeout = std::chrono::milliseconds(5);
  options.max_retries = 2;

  RingCommunicator comm(world, options, plan);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, 16);
  std::atomic<int> failures{0};
  // Every rank's receive exhausts its budget and throws; no rank hangs —
  // the bounded timeout guarantees termination.
  RunRanks(world, [&](int rank) {
    try {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    } catch (const InternalError&) {
      failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), world);
}

// ---------------------------------------------------------------------
// Seeded corruption injection (the guard layer's fault source).
// ---------------------------------------------------------------------

TEST(ApplyCorruptionTest, StrikesAreSeededDeterministicAndGated) {
  FaultPlan plan;
  plan.seed = 9;
  plan.corrupt_rank = 1;
  plan.corrupt_seq = 3;
  plan.corrupt_kind = CorruptKind::kNaN;

  std::vector<float> data(128, 2.0f);
  // Wrong rank, wrong step, wrong phase: no strike, buffer untouched.
  EXPECT_FALSE(ApplyCorruption(plan, CorruptPhase::kLocal, /*rank=*/0,
                               /*step=*/3, data.data(), 128, 0, 128));
  EXPECT_FALSE(ApplyCorruption(plan, CorruptPhase::kLocal, /*rank=*/1,
                               /*step=*/2, data.data(), 128, 0, 128));
  EXPECT_FALSE(ApplyCorruption(plan, CorruptPhase::kAgreement, /*rank=*/1,
                               /*step=*/3, data.data(), 128, 0, 128));
  EXPECT_EQ(data, std::vector<float>(128, 2.0f));

  // The armed (rank, step, phase): exactly one seeded element goes NaN,
  // and the struck index is identical across repeat runs.
  EXPECT_TRUE(ApplyCorruption(plan, CorruptPhase::kLocal, 1, 3, data.data(),
                              128, 0, 128));
  std::int64_t struck = -1;
  for (std::int64_t i = 0; i < 128; ++i) {
    if (std::isnan(data[static_cast<std::size_t>(i)])) {
      EXPECT_EQ(struck, -1) << "more than one element struck";
      struck = i;
    }
  }
  ASSERT_GE(struck, 0);
  std::vector<float> again(128, 2.0f);
  EXPECT_TRUE(ApplyCorruption(plan, CorruptPhase::kLocal, 1, 3, again.data(),
                              128, 0, 128));
  EXPECT_TRUE(std::isnan(again[static_cast<std::size_t>(struck)]));
}

TEST(ApplyCorruptionTest, SlicedApplicationStrikesExactlyOnce) {
  // The overlapped path offers each bucket separately; only the slice
  // containing the seeded index may fire, and the result is bitwise
  // equal to a single whole-buffer application.
  FaultPlan plan;
  plan.seed = 4;
  plan.corrupt_rank = 0;
  plan.corrupt_seq = 0;
  plan.corrupt_kind = CorruptKind::kInf;

  std::vector<float> whole(100, 1.5f);
  ASSERT_TRUE(ApplyCorruption(plan, CorruptPhase::kLocal, 0, 0, whole.data(),
                              100, 0, 100));
  std::vector<float> sliced(100, 1.5f);
  int fired = 0;
  for (std::int64_t begin = 0; begin < 100; begin += 17) {
    if (ApplyCorruption(plan, CorruptPhase::kLocal, 0, 0, sliced.data(), 100,
                        begin, std::min<std::int64_t>(begin + 17, 100))) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    if (std::isinf(whole[i])) {
      EXPECT_TRUE(std::isinf(sliced[i])) << i;
    } else {
      EXPECT_EQ(sliced[i], whole[i]) << i;
    }
  }
}

TEST(ApplyCorruptionTest, BitflipFlipsExactlyOneBitOfOneElement) {
  FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_rank = 2;
  plan.corrupt_seq = 5;
  plan.corrupt_kind = CorruptKind::kBitflip;

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<float> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.125f * static_cast<float>(i);
  }
  const std::vector<float> original = data;
  // kBitflip strikes the agreement phase, never the local one.
  EXPECT_FALSE(ApplyCorruption(plan, CorruptPhase::kLocal, 2, 5, data.data(),
                               64, 0, 64));
  EXPECT_EQ(data, original);
  ASSERT_TRUE(ApplyCorruption(plan, CorruptPhase::kAgreement, 2, 5,
                              data.data(), 64, 0, 64));
  int changed = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint32_t a;
    std::uint32_t b;
    std::memcpy(&a, &data[i], sizeof(a));
    std::memcpy(&b, &original[i], sizeof(b));
    if (a != b) {
      ++changed;
      const std::uint32_t diff = a ^ b;
      EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
    }
  }
  EXPECT_EQ(changed, 1);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("dist.fault.corruptions"), 1);
}

}  // namespace
}  // namespace s4tf::dist
