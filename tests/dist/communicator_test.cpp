#include "dist/communicator.h"

#include <atomic>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

#include "device/cost_model.h"
#include "device/sim_accelerator.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace s4tf::dist {
namespace {

// Runs fn(rank) on one dedicated thread per rank and joins them all —
// the collective calling convention without pulling in ReplicaGroup.
void RunRanks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&fn, r] { fn(r); });
  }
  for (std::thread& t : threads) t.join();
}

// Deterministic per-rank input: rank-dependent, element-dependent, with
// enough digits that reassociation would change the low bits.
std::vector<float> RankInput(int rank, std::size_t len) {
  std::vector<float> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = 0.001f * static_cast<float>(rank + 1) *
                  static_cast<float>((i * 2654435761u) % 1000) +
              1.0f / static_cast<float>(rank + 2);
  }
  return data;
}

std::vector<std::vector<float>> AllRankInputs(int world, std::size_t len) {
  std::vector<std::vector<float>> parts;
  for (int r = 0; r < world; ++r) parts.push_back(RankInput(r, len));
  return parts;
}

TEST(OrderedTreeReduceTest, MatchesManualTree) {
  std::vector<std::vector<float>> parts = {{1.0f}, {2.0f}, {3.0f}, {4.0f},
                                           {5.0f}};
  // ((1+2)+(3+4)) + 5, combined exactly in that order.
  const float expected = ((1.0f + 2.0f) + (3.0f + 4.0f)) + 5.0f;
  const std::vector<float> reduced = OrderedTreeReduce(std::move(parts));
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], expected);
}

TEST(OrderedTreeReduceTest, MeanScalesBySize) {
  std::vector<std::vector<float>> parts = {{2.0f, 4.0f}, {6.0f, 8.0f}};
  const std::vector<float> mean = OrderedTreeReduceMean(std::move(parts));
  EXPECT_EQ(mean[0], (2.0f + 6.0f) * 0.5f);
  EXPECT_EQ(mean[1], (4.0f + 8.0f) * 0.5f);
}

TEST(RingCommunicatorTest, SumMatchesTreeReferenceBitwise) {
  for (int world : {1, 2, 3, 4, 8}) {
    const std::size_t len = 173;  // not divisible by any tested world
    const std::vector<float> expected =
        OrderedTreeReduce(AllRankInputs(world, len));
    RingCommunicator comm(world);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    });
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)].size(), len);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
            << "world " << world << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(RingCommunicatorTest, MeanMatchesTreeReferenceBitwise) {
  const int world = 4;
  const std::size_t len = 257;
  const std::vector<float> expected =
      OrderedTreeReduceMean(AllRankInputs(world, len));
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kMean);
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i]);
    }
  }
}

TEST(RingCommunicatorTest, ResultInvariantToBucketSize) {
  // Bucket/chunk partition must not reassociate anything: every bucket
  // size yields the same bytes.
  const int world = 3;
  const std::size_t len = 301;
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  for (std::int64_t bucket_bytes : {16, 256, 1 << 20}) {
    CollectiveOptions options;
    options.bucket_bytes = bucket_bytes;
    RingCommunicator comm(world, options);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    });
    for (int r = 0; r < world; ++r) {
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
            << "bucket_bytes " << bucket_bytes;
      }
    }
  }
}

TEST(RingCommunicatorTest, WorldOfOneIsIdentityForSum) {
  RingCommunicator comm(1);
  std::vector<float> data = RankInput(0, 57);
  const std::vector<float> original = data;
  comm.AllReduce(0, data, ReduceOp::kSum);
  EXPECT_EQ(data, original);
  comm.AllReduce(0, data, ReduceOp::kMean);  // mean over 1 scales by 1.0f
  EXPECT_EQ(data, original);
  comm.Barrier(0);  // trivially passes
}

TEST(RingCommunicatorTest, BarrierSynchronizesAllRanks) {
  const int world = 4;
  RingCommunicator comm(world);
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  RunRanks(world, [&](int rank) {
    for (int iter = 0; iter < 5; ++iter) {
      arrived.fetch_add(1);
      comm.Barrier(rank);
      // After the barrier, every rank of this iteration must have
      // arrived.
      if (arrived.load() < (iter + 1) * world) violated.store(true);
      comm.Barrier(rank);  // second barrier so no rank laps the check
    }
  });
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(arrived.load(), 5 * world);
}

TEST(RingCommunicatorTest, EmptyBufferIsANoOp) {
  const int world = 2;
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers(2);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
    comm.Barrier(rank);
  });
  EXPECT_TRUE(buffers[0].empty());
  EXPECT_TRUE(buffers[1].empty());
}

TEST(RingCommunicatorTest, ChargesAttachedAcceleratorsPerChunk) {
  const int world = 4;
  const std::size_t len = 256;  // 1024 bytes
  CollectiveOptions options;
  options.bucket_bytes = 512;  // 2 buckets of 128 elems
  RingCommunicator comm(world, options);
  std::vector<std::unique_ptr<SimAccelerator>> accels;
  for (int r = 0; r < world; ++r) {
    accels.push_back(std::make_unique<SimAccelerator>(AcceleratorSpec::TpuV3Core()));
    comm.AttachAccelerator(r, accels.back().get());
  }
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
  });
  // Each bucket of 128 elems splits into 4 chunks of 32 elems = 128
  // bytes; every rank charges each non-empty chunk of each bucket. The
  // SimClock truncates each charge to whole nanoseconds, so the expected
  // value applies the same per-charge truncation.
  const double per_chunk =
      AllReduceSeconds(AcceleratorSpec::TpuV3Core(), 128, world);
  const double expected =
      2 * 4 * static_cast<double>(static_cast<std::int64_t>(per_chunk * 1e9)) *
      1e-9;
  for (int r = 0; r < world; ++r) {
    EXPECT_DOUBLE_EQ(accels[static_cast<std::size_t>(r)]->elapsed_seconds(),
                     expected)
        << "rank " << r;
  }
}

TEST(RingCommunicatorTest, CountersAreDeterministic) {
  const int world = 3;
  const std::size_t len = 100;
  CollectiveOptions options;
  options.bucket_bytes = 160;  // 40 elems/bucket -> 3 buckets (40/40/20)
  auto run_once = [&] {
    RingCommunicator comm(world, options);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
      comm.Barrier(rank);
    });
    const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
    return after.CounterDeltaSince(before);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.at("dist.allreduce.calls"), world);
  EXPECT_EQ(first.at("dist.allreduce.bytes"),
            static_cast<std::int64_t>(world * len * sizeof(float)));
  EXPECT_EQ(first.at("dist.allreduce.buckets"), world * 3);
  EXPECT_EQ(first.at("dist.barrier.count"), world);
  EXPECT_GT(first.at("dist.send.messages"), 0);
  // Fault-free run: no retries, timeouts, drops, or stragglers.
  EXPECT_EQ(first.count("dist.retry.count"), 0u);
  EXPECT_EQ(first.count("dist.recv.timeouts"), 0u);
  EXPECT_EQ(first.count("dist.fault.dropped_chunks"), 0u);
  EXPECT_EQ(first, second);
}

TEST(MessageKeyTest, PackedIsInjectiveAcrossFields) {
  const MessageKey a{MessagePhase::kScatter, 1, 2, 3, 4};
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kGather, 1, 2, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 2, 2, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 3, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 2, 4, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 2, 3, 5}).Packed());
  EXPECT_THROW((MessageKey{MessagePhase::kScatter, 1u << 25, 0, 0, 0}).Packed(),
               InternalError);
}

}  // namespace
}  // namespace s4tf::dist
