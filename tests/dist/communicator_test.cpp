#include "dist/communicator.h"

#include <atomic>
#include <functional>
#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <vector>

#include "device/cost_model.h"
#include "device/sim_accelerator.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace s4tf::dist {
namespace {

// Runs fn(rank) on one dedicated thread per rank and joins them all —
// the collective calling convention without pulling in ReplicaGroup.
void RunRanks(int world, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&fn, r] { fn(r); });
  }
  for (std::thread& t : threads) t.join();
}

// Deterministic per-rank input: rank-dependent, element-dependent, with
// enough digits that reassociation would change the low bits.
std::vector<float> RankInput(int rank, std::size_t len) {
  std::vector<float> data(len);
  for (std::size_t i = 0; i < len; ++i) {
    data[i] = 0.001f * static_cast<float>(rank + 1) *
                  static_cast<float>((i * 2654435761u) % 1000) +
              1.0f / static_cast<float>(rank + 2);
  }
  return data;
}

std::vector<std::vector<float>> AllRankInputs(int world, std::size_t len) {
  std::vector<std::vector<float>> parts;
  for (int r = 0; r < world; ++r) parts.push_back(RankInput(r, len));
  return parts;
}

TEST(OrderedTreeReduceTest, MatchesManualTree) {
  std::vector<std::vector<float>> parts = {{1.0f}, {2.0f}, {3.0f}, {4.0f},
                                           {5.0f}};
  // ((1+2)+(3+4)) + 5, combined exactly in that order.
  const float expected = ((1.0f + 2.0f) + (3.0f + 4.0f)) + 5.0f;
  const std::vector<float> reduced = OrderedTreeReduce(std::move(parts));
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0], expected);
}

TEST(OrderedTreeReduceTest, MeanScalesBySize) {
  std::vector<std::vector<float>> parts = {{2.0f, 4.0f}, {6.0f, 8.0f}};
  const std::vector<float> mean = OrderedTreeReduceMean(std::move(parts));
  EXPECT_EQ(mean[0], (2.0f + 6.0f) * 0.5f);
  EXPECT_EQ(mean[1], (4.0f + 8.0f) * 0.5f);
}

TEST(RingCommunicatorTest, SumMatchesTreeReferenceBitwise) {
  for (int world : {1, 2, 3, 4, 8}) {
    const std::size_t len = 173;  // not divisible by any tested world
    const std::vector<float> expected =
        OrderedTreeReduce(AllRankInputs(world, len));
    RingCommunicator comm(world);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    });
    for (int r = 0; r < world; ++r) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)].size(), len);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
            << "world " << world << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(RingCommunicatorTest, MeanMatchesTreeReferenceBitwise) {
  const int world = 4;
  const std::size_t len = 257;
  const std::vector<float> expected =
      OrderedTreeReduceMean(AllRankInputs(world, len));
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kMean);
  });
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i]);
    }
  }
}

TEST(RingCommunicatorTest, ResultInvariantToBucketSize) {
  // Bucket/chunk partition must not reassociate anything: every bucket
  // size yields the same bytes.
  const int world = 3;
  const std::size_t len = 301;
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  for (std::int64_t bucket_bytes : {16, 256, 1 << 20}) {
    CollectiveOptions options;
    options.bucket_bytes = bucket_bytes;
    RingCommunicator comm(world, options);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
    });
    for (int r = 0; r < world; ++r) {
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
            << "bucket_bytes " << bucket_bytes;
      }
    }
  }
}

TEST(RingCommunicatorTest, WorldOfOneIsIdentityForSum) {
  RingCommunicator comm(1);
  std::vector<float> data = RankInput(0, 57);
  const std::vector<float> original = data;
  comm.AllReduce(0, data, ReduceOp::kSum);
  EXPECT_EQ(data, original);
  comm.AllReduce(0, data, ReduceOp::kMean);  // mean over 1 scales by 1.0f
  EXPECT_EQ(data, original);
  comm.Barrier(0);  // trivially passes
}

TEST(RingCommunicatorTest, BarrierSynchronizesAllRanks) {
  const int world = 4;
  RingCommunicator comm(world);
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  RunRanks(world, [&](int rank) {
    for (int iter = 0; iter < 5; ++iter) {
      arrived.fetch_add(1);
      comm.Barrier(rank);
      // After the barrier, every rank of this iteration must have
      // arrived.
      if (arrived.load() < (iter + 1) * world) violated.store(true);
      comm.Barrier(rank);  // second barrier so no rank laps the check
    }
  });
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(arrived.load(), 5 * world);
}

TEST(RingCommunicatorTest, EmptyBufferIsANoOp) {
  const int world = 2;
  RingCommunicator comm(world);
  std::vector<std::vector<float>> buffers(2);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
    comm.Barrier(rank);
  });
  EXPECT_TRUE(buffers[0].empty());
  EXPECT_TRUE(buffers[1].empty());
}

TEST(RingCommunicatorTest, ChargesAttachedAcceleratorsPerChunk) {
  const int world = 4;
  const std::size_t len = 256;  // 1024 bytes
  CollectiveOptions options;
  options.bucket_bytes = 512;  // 2 buckets of 128 elems
  RingCommunicator comm(world, options);
  std::vector<std::unique_ptr<SimAccelerator>> accels;
  for (int r = 0; r < world; ++r) {
    accels.push_back(std::make_unique<SimAccelerator>(AcceleratorSpec::TpuV3Core()));
    comm.AttachAccelerator(r, accels.back().get());
  }
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                   ReduceOp::kSum);
  });
  // Each bucket of 128 elems splits into 4 chunks of 32 elems = 128
  // bytes; every rank charges each non-empty chunk of each bucket. The
  // SimClock truncates each charge to whole nanoseconds, so the expected
  // value applies the same per-charge truncation.
  const double per_chunk =
      AllReduceSeconds(AcceleratorSpec::TpuV3Core(), 128, world);
  const double expected =
      2 * 4 * static_cast<double>(static_cast<std::int64_t>(per_chunk * 1e9)) *
      1e-9;
  for (int r = 0; r < world; ++r) {
    EXPECT_DOUBLE_EQ(accels[static_cast<std::size_t>(r)]->elapsed_seconds(),
                     expected)
        << "rank " << r;
  }
}

TEST(RingCommunicatorTest, CountersAreDeterministic) {
  const int world = 3;
  const std::size_t len = 100;
  CollectiveOptions options;
  options.bucket_bytes = 160;  // 40 elems/bucket -> 3 buckets (40/40/20)
  auto run_once = [&] {
    RingCommunicator comm(world, options);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
    RunRanks(world, [&](int rank) {
      comm.AllReduce(rank, buffers[static_cast<std::size_t>(rank)],
                     ReduceOp::kSum);
      comm.Barrier(rank);
    });
    const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
    return after.CounterDeltaSince(before);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first.at("dist.allreduce.calls"), world);
  EXPECT_EQ(first.at("dist.allreduce.bytes"),
            static_cast<std::int64_t>(world * len * sizeof(float)));
  EXPECT_EQ(first.at("dist.allreduce.buckets"), world * 3);
  EXPECT_EQ(first.at("dist.barrier.count"), world);
  EXPECT_GT(first.at("dist.send.messages"), 0);
  // Fault-free run: no retries, timeouts, drops, or stragglers.
  EXPECT_EQ(first.count("dist.retry.count"), 0u);
  EXPECT_EQ(first.count("dist.recv.timeouts"), 0u);
  EXPECT_EQ(first.count("dist.fault.dropped_chunks"), 0u);
  EXPECT_EQ(first, second);
}

TEST(AsyncAllReduceTest, MatchesTreeReferenceBitwiseAnySubmissionOrder) {
  // The overlapped collective must be byte-for-byte the synchronous one:
  // same geometry, same canonical tree, regardless of the order the
  // caller hands buckets over (here: reverse).
  for (int world : {1, 2, 4}) {
    const std::size_t len = 173;
    CollectiveOptions options;
    options.bucket_bytes = 64;  // 16 elems/bucket -> 11 buckets
    const std::vector<float> expected =
        OrderedTreeReduce(AllRankInputs(world, len));
    RingCommunicator comm(world, options);
    std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
    RunRanks(world, [&](int rank) {
      auto handle = comm.AllReduceAsync(
          rank, buffers[static_cast<std::size_t>(rank)], ReduceOp::kSum);
      ASSERT_EQ(handle->num_buckets(),
                NumAllReduceBuckets(static_cast<std::int64_t>(len),
                                    options.bucket_bytes));
      for (std::int64_t b = handle->num_buckets() - 1; b >= 0; --b) {
        handle->SubmitBucket(b);
      }
      handle->Wait();
    });
    for (int r = 0; r < world; ++r) {
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i])
            << "world " << world << " rank " << r << " elem " << i;
      }
    }
  }
}

TEST(AsyncAllReduceTest, WaitAloneFlushesEveryBucket) {
  // A caller that never submits anything still gets the full reduce:
  // Wait() flushes the unsubmitted tail (and says so in the counters).
  const int world = 3;
  const std::size_t len = 100;
  CollectiveOptions options;
  options.bucket_bytes = 160;  // 40 elems/bucket -> 3 buckets
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  RingCommunicator comm(world, options);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  RunRanks(world, [&](int rank) {
    auto handle = comm.AllReduceAsync(
        rank, buffers[static_cast<std::size_t>(rank)], ReduceOp::kSum);
    handle->Wait();
  });
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  for (int r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(buffers[static_cast<std::size_t>(r)][i], expected[i]);
    }
  }
  EXPECT_EQ(delta.at("dist.overlap.async_calls"), world);
  EXPECT_EQ(delta.at("dist.overlap.wait.calls"), world);
  EXPECT_EQ(delta.at("dist.overlap.buckets.flushed_at_wait"), world * 3);
  EXPECT_EQ(delta.count("dist.overlap.buckets.early"), 0u);
}

TEST(AsyncAllReduceTest, ConsumesOneSeqAndInteroperatesWithSync) {
  // AllReduceAsync occupies exactly one slot in the per-rank collective
  // sequence, so a following synchronous AllReduce on the same
  // communicator still lines up across ranks.
  const int world = 2;
  const std::size_t len = 50;
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  RingCommunicator comm(world);
  std::vector<std::vector<float>> first = AllRankInputs(world, len);
  std::vector<std::vector<float>> second = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    const std::size_t i = static_cast<std::size_t>(rank);
    auto handle = comm.AllReduceAsync(rank, first[i], ReduceOp::kSum);
    handle->Wait();
    comm.AllReduce(rank, second[i], ReduceOp::kSum);
  });
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(first[static_cast<std::size_t>(r)], expected);
    EXPECT_EQ(second[static_cast<std::size_t>(r)], expected);
  }
}

TEST(AsyncAllReduceTest, RecoversFromInjectedDropsBitwise) {
  // Dropped deliveries under the async path retry exactly like the sync
  // path and never change the numbers.
  const int world = 2;
  const std::size_t len = 64;
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 1.0;
  plan.drops_per_event = 1;
  CollectiveOptions options;
  options.bucket_bytes = 128;
  options.recv_timeout = std::chrono::milliseconds(2000);
  const std::vector<float> expected =
      OrderedTreeReduce(AllRankInputs(world, len));
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  RingCommunicator comm(world, options, plan);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, len);
  RunRanks(world, [&](int rank) {
    auto handle = comm.AllReduceAsync(
        rank, buffers[static_cast<std::size_t>(rank)], ReduceOp::kSum);
    for (std::int64_t b = 0; b < handle->num_buckets(); ++b) {
      handle->SubmitBucket(b);
    }
    handle->Wait();
  });
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  for (int r = 0; r < world; ++r) {
    EXPECT_EQ(buffers[static_cast<std::size_t>(r)], expected);
  }
  EXPECT_GT(delta.at("dist.fault.dropped_chunks"), 0);
  EXPECT_EQ(delta.at("dist.retry.count"),
            delta.at("dist.fault.dropped_chunks"));
}

TEST(AsyncAllReduceTest, AbandonedHandleFailsPeersLoudlyWithoutHanging) {
  // Destroying the handle without Wait() (the exception-unwind path)
  // never submits the remaining buckets — exactly like a rank that threw
  // out of the synchronous AllReduce — so the peer exhausts its bounded
  // retry budget and throws instead of hanging.
  const int world = 2;
  CollectiveOptions options;
  options.recv_timeout = std::chrono::milliseconds(5);
  options.max_retries = 2;
  RingCommunicator comm(world, options);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, 16);
  std::atomic<int> peer_failures{0};
  RunRanks(world, [&](int rank) {
    const std::size_t i = static_cast<std::size_t>(rank);
    if (rank == 0) {
      auto handle = comm.AllReduceAsync(rank, buffers[i], ReduceOp::kSum);
      // Dropped on the floor: simulates the backward pass throwing
      // before any bucket was ready.
    } else {
      try {
        comm.AllReduce(rank, buffers[i], ReduceOp::kSum);
      } catch (const InternalError&) {
        peer_failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(peer_failures.load(), 1);
}

TEST(AsyncAllReduceTest, DyingRankThrowsAtEntryAndPendingWaitFailsLoudly) {
  // Seeded replica death under the async path: the dying rank throws
  // ReplicaDeadError from AllReduceAsync itself (before a handle ever
  // exists, so nothing is ever sent), and the surviving rank's Wait()
  // surfaces the retry-budget failure the sync path would have thrown.
  const int world = 2;
  FaultPlan plan;
  plan.death_rank = 1;
  plan.death_seq = 0;
  CollectiveOptions options;
  options.recv_timeout = std::chrono::milliseconds(5);
  options.max_retries = 2;
  RingCommunicator comm(world, options, plan);
  std::vector<std::vector<float>> buffers = AllRankInputs(world, 32);
  std::atomic<int> dead{0};
  std::atomic<int> survivor_failures{0};
  RunRanks(world, [&](int rank) {
    const std::size_t i = static_cast<std::size_t>(rank);
    if (rank == 1) {
      try {
        auto handle = comm.AllReduceAsync(rank, buffers[i], ReduceOp::kSum);
        handle->Wait();
      } catch (const ReplicaDeadError&) {
        dead.fetch_add(1);
      }
    } else {
      auto handle = comm.AllReduceAsync(rank, buffers[i], ReduceOp::kSum);
      for (std::int64_t b = 0; b < handle->num_buckets(); ++b) {
        handle->SubmitBucket(b);
      }
      try {
        handle->Wait();
      } catch (const InternalError&) {
        survivor_failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(dead.load(), 1);
  EXPECT_EQ(survivor_failures.load(), 1);
}

TEST(AsyncAllReduceTest, BaseClassFallbackRunsSynchronouslyInWait) {
  // A Communicator that doesn't override RunAsync still serves the
  // handle API: one logical bucket, reduced by the synchronous Run when
  // Wait() runs.
  class CountingIdentity final : public Communicator {
   public:
    int world_size() const override { return 1; }
    const char* name() const override { return "counting-identity"; }
    CollectiveResult Run(int, const CollectiveSpec&,
                         std::vector<float>& data) override {
      ++calls;
      return CollectiveResult{
          static_cast<std::int64_t>(data.size() * sizeof(float)), 1};
    }
    void Barrier(int) override {}
    int calls = 0;
  };
  CountingIdentity comm;
  std::vector<float> data = RankInput(0, 8);
  auto handle = comm.AllReduceAsync(0, data, ReduceOp::kSum);
  EXPECT_EQ(handle->num_buckets(), 1);
  handle->SubmitBucket(0);  // accepted; the work still happens in Wait()
  EXPECT_EQ(comm.calls, 0);
  handle->Wait();
  EXPECT_EQ(comm.calls, 1);

  std::vector<float> empty;
  auto empty_handle = comm.AllReduceAsync(0, empty, ReduceOp::kSum);
  EXPECT_EQ(empty_handle->num_buckets(), 0);
  empty_handle->Wait();
  // An empty buffer has no buckets to submit, but the collective call
  // still happens — it occupies a seq slot peers line up against.
  EXPECT_EQ(comm.calls, 2);
}

TEST(MessageKeyTest, PackedIsInjectiveAcrossFields) {
  const MessageKey a{MessagePhase::kScatter, 1, 2, 3, 4};
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kGather, 1, 2, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 2, 2, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 3, 3, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 2, 4, 4}).Packed());
  EXPECT_NE(a.Packed(), (MessageKey{MessagePhase::kScatter, 1, 2, 3, 5}).Packed());
  EXPECT_THROW((MessageKey{MessagePhase::kScatter, 1u << 25, 0, 0, 0}).Packed(),
               InternalError);
}

}  // namespace
}  // namespace s4tf::dist
