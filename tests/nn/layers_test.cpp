#include "nn/layers.h"

#include <gtest/gtest.h>

#include "ad/operators.h"
#include "tests/ad/gradient_check.h"

namespace s4tf::nn {
namespace {

using ad::testing::CheckInputGradient;
using ad::testing::CheckModelGradients;

TEST(DenseTest, ShapeAndAffineMath) {
  Rng rng(1);
  Dense layer(3, 2, Activation::kIdentity, rng);
  layer.weight = Tensor::FromVector(Shape({3, 2}), {1, 0, 0, 1, 1, 1});
  layer.bias = Tensor::FromVector(Shape({2}), {10, 20});
  const Tensor x = Tensor::FromVector(Shape({1, 3}), {1, 2, 3});
  EXPECT_EQ(layer(x).ToVector(), (std::vector<float>{14, 25}));
}

TEST(DenseTest, ActivationApplied) {
  Rng rng(2);
  Dense layer(2, 2, Activation::kRelu, rng);
  layer.weight = Tensor::FromVector(Shape({2, 2}), {1, -1, 0, 0});
  layer.bias = Tensor::Zeros(Shape({2}));
  const Tensor x = Tensor::FromVector(Shape({1, 2}), {5, 0});
  EXPECT_EQ(layer(x).ToVector(), (std::vector<float>{5, 0}));
}

TEST(Conv2DLayerTest, SamePaddingPreservesSpatialDims) {
  Rng rng(3);
  Conv2D layer(3, 3, 1, 4, rng, Padding::kSame, Activation::kRelu);
  const Tensor x = Tensor::Ones(Shape({2, 8, 8, 1}));
  EXPECT_EQ(layer(x).shape(), Shape({2, 8, 8, 4}));
}

TEST(Conv2DLayerTest, StrideHalvesDims) {
  Rng rng(4);
  Conv2D layer(3, 3, 2, 2, rng, Padding::kSame, Activation::kIdentity, 2);
  const Tensor x = Tensor::Ones(Shape({1, 8, 8, 2}));
  EXPECT_EQ(layer(x).shape(), Shape({1, 4, 4, 2}));
}

TEST(Conv2DLayerTest, BiasAdded) {
  Rng rng(5);
  Conv2D layer(1, 1, 1, 1, rng);
  layer.filter = Tensor::FromVector(Shape({1, 1, 1, 1}), {0.0f});
  layer.bias = Tensor::FromVector(Shape({1}), {3.5f});
  const Tensor x = Tensor::Ones(Shape({1, 2, 2, 1}));
  EXPECT_EQ(layer(x).ToVector(), std::vector<float>(4, 3.5f));
}

TEST(PoolLayerTest, AvgAndMax) {
  const Tensor x = Tensor::FromVector(
      Shape({1, 2, 2, 1}), {1, 3, 5, 7});
  AvgPool2D avg;
  MaxPool2D max;
  EXPECT_EQ(avg(x).ToVector(), (std::vector<float>{4}));
  EXPECT_EQ(max(x).ToVector(), (std::vector<float>{7}));
}

TEST(FlattenTest, CollapsesAllButBatch) {
  Flatten flatten;
  EXPECT_EQ(flatten(Tensor::Ones(Shape({3, 4, 5, 2}))).shape(),
            Shape({3, 40}));
}

TEST(DropoutTest, IdentityAtInference) {
  Dropout dropout{0.5f};
  const Tensor x = Tensor::Ones(Shape({100}));
  EXPECT_EQ(dropout(x).ToVector(), x.ToVector());
}

TEST(DropoutTest, MasksAndRescalesInTraining) {
  Dropout dropout{0.5f};
  const Tensor x = Tensor::Ones(Shape({4000}));
  TrainingPhase phase;
  const auto y = dropout(x).ToVector();
  int zeros = 0;
  for (float v : y) {
    EXPECT_TRUE(v == 0.0f || v == 2.0f);  // 1/(1-0.5) scaling
    if (v == 0.0f) ++zeros;
  }
  EXPECT_GT(zeros, 1600);
  EXPECT_LT(zeros, 2400);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  Dropout dropout{0.0f};
  TrainingPhase phase;
  const Tensor x = Tensor::Ones(Shape({16}));
  EXPECT_EQ(dropout(x).ToVector(), x.ToVector());
}

TEST(BatchNormTest, NormalizesPerChannel) {
  BatchNorm bn(2);
  // Channel 0: values {1,3}; channel 1: {10, 30}.
  const Tensor x = Tensor::FromVector(Shape({2, 2}), {1, 10, 3, 30});
  const auto y = bn(x).ToVector();
  // Each channel normalized to approximately +-1.
  EXPECT_NEAR(y[0], -1.0f, 0.01f);
  EXPECT_NEAR(y[2], 1.0f, 0.01f);
  EXPECT_NEAR(y[1], -1.0f, 0.01f);
  EXPECT_NEAR(y[3], 1.0f, 0.01f);
}

TEST(BatchNormTest, ScaleAndOffsetApplied) {
  BatchNorm bn(1);
  bn.scale = Tensor::FromVector(Shape({1}), {2.0f});
  bn.offset = Tensor::FromVector(Shape({1}), {5.0f});
  const Tensor x = Tensor::FromVector(Shape({2, 1}), {-1, 1});
  const auto y = bn(x).ToVector();
  EXPECT_NEAR(y[0], 5.0f - 2.0f, 0.01f);
  EXPECT_NEAR(y[1], 5.0f + 2.0f, 0.01f);
}

TEST(BatchNormTest, GradientFlowsThroughNormalization) {
  BatchNorm bn(1);
  Rng rng(7);
  const Tensor x = Tensor::RandomUniform(Shape({8, 1}), rng, -1, 1);
  const auto [loss, grads] = ad::ValueWithGradient(
      bn, [&x](const BatchNorm& layer) { return ReduceSum(Square(layer(x))); });
  (void)loss;
  // d/d(scale) sum((x_hat*s + b)^2) != 0 generically.
  EXPECT_NE(grads.scale.ToVector()[0], 0.0f);
}

// --- Backward-path gradient checks (finite differences via the shared
// harness in tests/ad/gradient_check.h). Shapes are tiny on purpose:
// the model checker pays two forward passes per parameter element.

TEST(Conv2DLayerTest, GradientsMatchFiniteDifferences) {
  Rng rng(21);
  Conv2D layer(2, 2, 2, 2, rng, Padding::kValid, Activation::kIdentity);
  const Tensor x = Tensor::RandomUniform(Shape({1, 3, 3, 2}), rng, -1, 1);
  CheckModelGradients(layer, [&x](const Conv2D& m) {
    return ReduceSum(Square(m(x)));
  });
}

TEST(Conv2DLayerTest, StridedSamePaddingGradients) {
  Rng rng(22);
  Conv2D layer(3, 3, 1, 2, rng, Padding::kSame, Activation::kIdentity, 2);
  const Tensor x = Tensor::RandomUniform(Shape({1, 4, 4, 1}), rng, -1, 1);
  CheckModelGradients(layer, [&x](const Conv2D& m) {
    return ReduceSum(Square(m(x)));
  });
}

TEST(Conv2DLayerTest, ReluActivationGradients) {
  Rng rng(23);
  Conv2D layer(2, 2, 1, 2, rng, Padding::kValid, Activation::kRelu);
  // Inputs away from the ReLU kink keep finite differences well-defined.
  const Tensor x = Tensor::RandomUniform(Shape({1, 3, 3, 1}), rng, 0.5f, 1.5f);
  CheckModelGradients(layer, [&x](const Conv2D& m) {
    return ReduceSum(Square(m(x)));
  });
}

TEST(Conv2DLayerTest, InputGradientMatchesFiniteDifferences) {
  Rng rng(24);
  Conv2D layer(2, 2, 2, 2, rng, Padding::kValid, Activation::kIdentity);
  const Tensor x = Tensor::RandomUniform(Shape({1, 3, 3, 2}), rng, -1, 1);
  CheckInputGradient(
      [&layer](const Tensor& t) { return ReduceSum(Square(layer(t))); }, x);
}

TEST(PoolLayerTest, AvgPoolInputGradient) {
  Rng rng(25);
  AvgPool2D pool;
  const Tensor x = Tensor::RandomUniform(Shape({1, 4, 4, 2}), rng, -1, 1);
  CheckInputGradient(
      [&pool](const Tensor& t) { return ReduceSum(Square(pool(t))); }, x);
}

TEST(PoolLayerTest, MaxPoolInputGradient) {
  // Hand-picked values with well-separated maxima per window, so the
  // piecewise-constant argmax cannot flip inside the finite-difference
  // stencil.
  MaxPool2D pool;
  const Tensor x = Tensor::FromVector(
      Shape({1, 4, 4, 1}), {0.1f, 0.9f, 0.2f, 0.6f,  //
                            0.4f, 0.3f, 1.4f, 0.2f,  //
                            2.0f, 0.5f, 0.7f, 0.1f,  //
                            0.6f, 1.1f, 0.3f, 1.8f});
  CheckInputGradient(
      [&pool](const Tensor& t) { return ReduceSum(Square(pool(t))); }, x);
}

TEST(SoftmaxTest, InputGradientMatchesFiniteDifferences) {
  Rng rng(26);
  const Tensor x = Tensor::RandomUniform(Shape({2, 5}), rng, -1, 1);
  const Tensor target = Tensor::RandomUniform(Shape({2, 5}), rng, 0, 1);
  CheckInputGradient(
      [&target](const Tensor& t) {
        return ReduceSum(Square(Softmax(t) - target));
      },
      x);
}

TEST(SoftmaxTest, LogSoftmaxInputGradient) {
  Rng rng(27);
  const Tensor x = Tensor::RandomUniform(Shape({2, 4}), rng, -1, 1);
  const Tensor weights = Tensor::RandomUniform(Shape({2, 4}), rng, 0, 1);
  CheckInputGradient(
      [&weights](const Tensor& t) {
        return ReduceSum(LogSoftmax(t) * weights) * -1.0f;
      },
      x);
}

TEST(SequencedTest, AppliesLayersInOrder) {
  Rng rng(8);
  Dense d1(2, 3, Activation::kIdentity, rng);
  Dense d2(3, 1, Activation::kIdentity, rng);
  const Tensor x = Tensor::Ones(Shape({4, 2}));
  const Tensor direct = d2(d1(x));
  const Tensor sequenced = Sequenced(x, d1, d2);
  EXPECT_EQ(direct.ToVector(), sequenced.ToVector());
}

TEST(LayerValueSemanticsTest, CopiedLayerIsIndependent) {
  Rng rng(9);
  Dense a(2, 2, Activation::kIdentity, rng);
  Dense b = a;  // O(1) value copy
  b.weight = b.weight * 2.0f;
  EXPECT_FALSE(AllClose(a.weight, b.weight));
}

}  // namespace
}  // namespace s4tf::nn
