#include "nn/training.h"

#include <cmath>
#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/models/lenet.h"
#include "nn/models/spline.h"

namespace s4tf::nn {
namespace {

TEST(OptimizerTest, SGDStepMovesAgainstGradient) {
  Rng rng(1);
  SplineModel model(4, rng);
  model.control_points = Tensor::FromVector(Shape({4, 1}), {1, 1, 1, 1});
  SGD<SplineModel> sgd(0.5f);
  SplineModel::TangentVector grads;
  grads.control_points = Tensor::FromVector(Shape({4, 1}), {2, 0, -2, 4});
  sgd.Update(model, grads);
  EXPECT_EQ(model.control_points.ToVector(),
            (std::vector<float>{0, 1, 2, -1}));
}

TEST(OptimizerTest, SGDUpdateDoesNotCopyParameters) {
  // The §4.2 claim: the optimizer borrows the model uniquely and updates
  // in place — zero deep copies of parameter buffers.
  Rng rng(2);
  LeNet model(rng);
  const Tensor x = Tensor::RandomUniform(Shape({2, 28, 28, 1}), rng, 0, 1);
  const Tensor labels = OneHot({0, 1}, 10, x.device());
  SGD<LeNet> sgd(0.01f);
  auto [loss, grads] = ad::ValueWithGradient(model, [&](const LeNet& m) {
    return SoftmaxCrossEntropy(m(x), labels);
  });
  (void)loss;
  vs::CowStatsScope stats;
  sgd.Update(model, grads);
  EXPECT_EQ(stats.delta().deep_copies, 0);
  EXPECT_GT(stats.delta().unique_mutations, 0);  // in-place fast path taken
}

TEST(OptimizerTest, MomentumAcceleratesAlongPersistentDirection) {
  Rng rng(3);
  SplineModel model(1, rng);
  model.control_points = Tensor::FromVector(Shape({1, 1}), {0.0f});
  SGD<SplineModel> sgd(0.1f, /*momentum=*/0.9f);
  SplineModel::TangentVector grads;
  grads.control_points = Tensor::FromVector(Shape({1, 1}), {1.0f});
  sgd.Update(model, grads);
  const float after_one = model.control_points.ToVector()[0];
  sgd.Update(model, grads);
  const float after_two = model.control_points.ToVector()[0];
  // Second step is larger than the first (velocity accumulates).
  EXPECT_LT(after_two - after_one, after_one - 0.0f - 1e-6f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  Rng rng(4);
  SplineModel model(4, rng);
  const Tensor basis = BuildSplineBasis({0.0f, 0.33f, 0.67f, 1.0f}, 4);
  const Tensor targets = Tensor::FromVector(Shape({4, 1}), {1, -1, 2, 0});
  Adam<SplineModel> adam(0.1f);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 200; ++i) {
    auto [loss, grads] = ad::ValueWithGradient(
        model, [&](const SplineModel& m) {
          return SplineLoss(m, basis, targets);
        });
    if (i == 0) first = loss.ScalarValue();
    last = loss.ScalarValue();
    adam.Update(model, grads);
  }
  EXPECT_LT(last, first * 0.01f);
}

TEST(OptimizerTest, BacktrackingLineSearchDecreasesLoss) {
  Rng rng(5);
  SplineModel model(8, rng);
  const SplineData data = MakeGlobalSplineData(64, 99);
  const Tensor basis = BuildSplineBasis(data.xs, 8);
  BacktrackingLineSearch<SplineModel> search;
  auto loss_fn = [&](const SplineModel& m) {
    return SplineLoss(m, basis, data.targets);
  };
  float previous = loss_fn(model).ScalarValue();
  for (int i = 0; i < 20; ++i) {
    const float now = search.Step(model, loss_fn);
    EXPECT_LE(now, previous + 1e-6f);
    previous = now;
  }
  EXPECT_LT(previous, 0.02f);  // converged near the noise floor
}

TEST(DatasetTest, BatchesAreDeterministicAndShaped) {
  const auto dataset = SyntheticImageDataset::Mnist(64, 7);
  const auto a = dataset.Batch(0, 8, NaiveDevice());
  const auto b = dataset.Batch(0, 8, NaiveDevice());
  EXPECT_EQ(a.images.shape(), Shape({8, 28, 28, 1}));
  EXPECT_EQ(a.one_hot.shape(), Shape({8, 10}));
  EXPECT_EQ(a.images.ToVector(), b.images.ToVector());
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DatasetTest, DifferentBatchesDiffer) {
  const auto dataset = SyntheticImageDataset::Cifar10(64, 8);
  const auto a = dataset.Batch(0, 8, NaiveDevice());
  const auto b = dataset.Batch(1, 8, NaiveDevice());
  EXPECT_NE(a.images.ToVector(), b.images.ToVector());
}

TEST(DatasetTest, LabelsAreWithinRange) {
  const auto dataset = SyntheticImageDataset::ImageNetScaled(32, 9, 16, 100);
  const auto batch = dataset.Batch(0, 32, NaiveDevice());
  for (int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 100);
  }
}

TEST(DatasetTest, OneHotMatchesLabels) {
  const auto dataset = SyntheticImageDataset::Mnist(16, 10);
  const auto batch = dataset.Batch(0, 16, NaiveDevice());
  const auto one_hot = batch.one_hot.ToVector();
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    for (int c = 0; c < 10; ++c) {
      const float expected =
          c == batch.labels[i] ? 1.0f : 0.0f;
      EXPECT_EQ(one_hot[i * 10 + static_cast<std::size_t>(c)], expected);
    }
  }
}

TEST(LossTest, CrossEntropyOfPerfectPredictionIsSmall) {
  const Tensor confident = Tensor::FromVector(
      Shape({2, 3}), {100, 0, 0, 0, 100, 0});
  const Tensor labels = OneHot({0, 1}, 3, NaiveDevice());
  EXPECT_NEAR(SoftmaxCrossEntropy(confident, labels).ScalarValue(), 0.0f,
              1e-5);
}

TEST(LossTest, CrossEntropyOfUniformIsLogC) {
  const Tensor uniform = Tensor::Zeros(Shape({4, 10}));
  const Tensor labels = OneHot({0, 3, 5, 9}, 10, NaiveDevice());
  EXPECT_NEAR(SoftmaxCrossEntropy(uniform, labels).ScalarValue(),
              std::log(10.0f), 1e-5);
}

TEST(LossTest, AccuracyCountsArgmaxMatches) {
  const Tensor logits = Tensor::FromVector(
      Shape({3, 2}), {5, 1, 1, 5, 5, 1});
  EXPECT_FLOAT_EQ(Accuracy(logits, {0, 1, 0}), 1.0f);
  EXPECT_NEAR(Accuracy(logits, {1, 1, 0}), 2.0f / 3.0f, 1e-6);
}

TEST(TrainingIntegrationTest, LeNetLearnsSyntheticMnist) {
  Rng rng(42);
  LeNet model(rng);
  const auto dataset = SyntheticImageDataset::Mnist(64, 4242);
  SGD<LeNet> sgd(0.05f, 0.9f);
  const float before = Evaluate(model, dataset, 16, 4);
  float loss = 0.0f;
  for (int epoch = 0; epoch < 3; ++epoch) {
    loss = TrainEpoch(model, sgd, dataset, 16);
  }
  const float after = Evaluate(model, dataset, 16, 4);
  EXPECT_LT(loss, std::log(10.0f));
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.6f);  // synthetic classes are easily separable
}

TEST(TrainingIntegrationTest, TrainingOnLazyDeviceMatchesNaive) {
  // The same training program must produce identical-converging behaviour
  // on the naive and lazy devices (§3.3's illusion, end to end).
  const auto dataset = SyntheticImageDataset::Mnist(32, 777);

  Rng rng1(5);
  LeNet naive_model(rng1);
  SGD<LeNet> naive_sgd(0.05f);
  const float naive_loss = TrainEpoch(naive_model, naive_sgd, dataset, 16);

  LazyBackend backend;
  const Device lazy = backend.device();
  Rng rng2(5);
  LeNet lazy_model(rng2);
  MoveModelTo(lazy_model, lazy);
  SGD<LeNet> lazy_sgd(0.05f);
  const float lazy_loss = TrainEpoch(lazy_model, lazy_sgd, dataset, 16);

  EXPECT_NEAR(naive_loss, lazy_loss, 1e-3f);
  EXPECT_GT(backend.cache_hits(), 0);  // steps after the first hit cache
}

TEST(TrainingIntegrationTest, StatefulOptimizersWorkOnLazyDevice) {
  // Regression: optimizer state tensors default-construct on the naive
  // device; for scalar-shaped placeholder parameters (e.g. an unused
  // projection conv) a shape-only check passed while devices differed,
  // producing a cross-device op. Momentum SGD + Adam must run cleanly on
  // a lazy-device model containing such placeholders.
  LazyBackend backend;
  const auto dataset = SyntheticImageDataset::Mnist(16, 44);
  {
    Rng rng(7);
    LeNet model(rng);
    MoveModelTo(model, backend.device());
    SGD<LeNet> sgd(0.05f, /*momentum=*/0.9f);
    for (int step = 0; step < 2; ++step) {
      const auto batch = dataset.Batch(step, 8, backend.device());
      EXPECT_NO_THROW(TrainStep(model, sgd, [&batch](const LeNet& m) {
        return SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
      }));
    }
  }
  {
    Rng rng(8);
    LeNet model(rng);
    MoveModelTo(model, backend.device());
    Adam<LeNet> adam(0.01f);
    const auto batch = dataset.Batch(0, 8, backend.device());
    EXPECT_NO_THROW(TrainStep(model, adam, [&batch](const LeNet& m) {
      return SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
    }));
  }
}

TEST(TrainingIntegrationTest, AutoBarrierBoundsTraceSize) {
  // Without the automatic barrier the whole training loop unrolls into
  // one ever-growing trace (§3.4); with it, each step compiles the same
  // bounded program.
  const auto dataset = SyntheticImageDataset::Mnist(32, 12);

  LazyBackend with_barrier;
  {
    Rng rng(6);
    LeNet model(rng);
    MoveModelTo(model, with_barrier.device());
    SGD<LeNet> sgd(0.05f);
    TrainOptions options;
    options.auto_barrier = true;
    for (int step = 0; step < 3; ++step) {
      const auto batch = dataset.Batch(step, 8, with_barrier.device());
      TrainStep(model, sgd,
                [&batch](const LeNet& m) {
                  return SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
                },
                options);
    }
  }
  // Step 2 and 3 reuse the compiled program: misses stay at 1-2 (first
  // step may compile a second program for evaluation paths).
  EXPECT_LE(with_barrier.cache_misses(), 2);
  EXPECT_GT(with_barrier.cache_hits(), 0);
}

TEST(TrainingIntegrationTest, SplinePersonalizationFineTunes) {
  // The Table 4 scenario end-to-end: fit the global model, then fine-tune
  // on personal data and verify the personal fit improves.
  Rng rng(13);
  SplineModel model(12, rng);
  const SplineData global = MakeGlobalSplineData(128, 1);
  const Tensor global_basis = BuildSplineBasis(global.xs, 12);
  BacktrackingLineSearch<SplineModel> search;
  for (int i = 0; i < 40; ++i) {
    search.Step(model, [&](const SplineModel& m) {
      return SplineLoss(m, global_basis, global.targets);
    });
  }

  const SplineData personal = MakePersonalSplineData(64, 555);
  const Tensor personal_basis = BuildSplineBasis(personal.xs, 12);
  const float before =
      SplineLoss(model, personal_basis, personal.targets).ScalarValue();
  for (int i = 0; i < 40; ++i) {
    search.Step(model, [&](const SplineModel& m) {
      return SplineLoss(m, personal_basis, personal.targets);
    });
  }
  const float after =
      SplineLoss(model, personal_basis, personal.targets).ScalarValue();
  EXPECT_LT(after, before * 0.5f);
}

}  // namespace
}  // namespace s4tf::nn
