// Guard-layer unit tests: digest encoding, scan order-independence,
// verdict logic (finite sentinels, majority vote, world-1 self-check),
// clip/spike math — plus the ReplicaGroup-level detection grid: every
// corruption kind x replicated/sharded x overlap on/off is detected and
// attributed to the injected rank via GradientCorruptionError.
#include "nn/guard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dist/fault_injector.h"
#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/replica_group.h"
#include "nn/training.h"
#include "obs/metrics.h"
#include "support/threadpool.h"

namespace s4tf::nn {
namespace {

using internal::GuardTripReason;
using internal::GuardVerdict;
using internal::kGuardSlots;

TEST(GuardDigestTest, EncodeDecodeRoundTripIsExact) {
  // Each uint16 half is exactly representable in a float, so the round
  // trip must be lossless for every 32-bit pattern we care about.
  for (const std::uint32_t digest :
       {0u, 1u, 0xffffu, 0x10000u, 0xdeadbeefu, 0xffffffffu, 0x8000ffffu}) {
    float hi_lo[2];
    internal::EncodeGuardDigest(digest, hi_lo);
    EXPECT_EQ(internal::DecodeGuardDigest(hi_lo), digest) << digest;
  }
}

TEST(GuardDigestTest, ShardOffsetsCoverOneGuardVectorPerRank) {
  const auto offsets = internal::GuardShardOffsets(4);
  ASSERT_EQ(offsets.size(), 5u);
  for (int r = 0; r <= 4; ++r) {
    EXPECT_EQ(offsets[static_cast<std::size_t>(r)], r * kGuardSlots);
  }
}

TEST(GuardScanTest, BucketOrderDoesNotChangeTheDigest) {
  // The overlapped path scans buckets in backward-completion order, the
  // sync path ascending; both must fold to the identical digest.
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.5f * static_cast<float>(i) - 3.0f;
  }
  const std::int64_t bucket_elems = 96;  // last bucket is ragged
  internal::LocalGuardScan ascending(1000, bucket_elems, true);
  for (std::int64_t b = 0; b < ascending.num_buckets(); ++b) {
    ascending.ScanBucket(data.data(), b);
  }
  internal::LocalGuardScan descending(1000, bucket_elems, true);
  for (std::int64_t b = descending.num_buckets() - 1; b >= 0; --b) {
    descending.ScanBucket(data.data(), b);
  }
  EXPECT_EQ(ascending.Digest(), descending.Digest());
  // And the whole-buffer fold (the agreement-buffer digest) matches the
  // incremental scan of a bitwise-equal buffer.
  EXPECT_EQ(internal::GuardDigestBuckets(data.data(), 1000, bucket_elems),
            ascending.Digest());
  // A single flipped element changes it.
  data[777] = std::nextafter(data[777], 1e30f);
  EXPECT_NE(internal::GuardDigestBuckets(data.data(), 1000, bucket_elems),
            ascending.Digest());
}

TEST(GuardScanTest, FiniteVerdictCatchesNaNInfAndScalars) {
  std::vector<float> data(64, 1.0f);
  {
    internal::LocalGuardScan scan(64, 16, /*check_finite=*/true);
    for (std::int64_t b = 0; b < scan.num_buckets(); ++b) {
      scan.ScanBucket(data.data(), b);
    }
    EXPECT_TRUE(scan.finite());
    scan.NoteScalar(std::numeric_limits<float>::quiet_NaN());
    EXPECT_FALSE(scan.finite());
  }
  for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                          std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity()}) {
    data[37] = bad;
    internal::LocalGuardScan scan(64, 16, /*check_finite=*/true);
    for (std::int64_t b = 0; b < scan.num_buckets(); ++b) {
      scan.ScanBucket(data.data(), b);
    }
    EXPECT_FALSE(scan.finite());
    data[37] = 1.0f;
  }
  // check_finite=false never clears the verdict (digest-only mode).
  data[37] = std::numeric_limits<float>::quiet_NaN();
  internal::LocalGuardScan digest_only(64, 16, /*check_finite=*/false);
  for (std::int64_t b = 0; b < digest_only.num_buckets(); ++b) {
    digest_only.ScanBucket(data.data(), b);
  }
  EXPECT_TRUE(digest_only.finite());
}

// Builds a gathered guard buffer for `world` ranks where every rank
// reports finite with pre/post digests `pre`/`post`.
std::vector<float> GatheredGuards(int world, std::uint32_t pre,
                                  std::uint32_t post) {
  std::vector<float> gathered(static_cast<std::size_t>(world) * kGuardSlots);
  for (int r = 0; r < world; ++r) {
    internal::FillGuardSlots(
        gathered.data() + static_cast<std::size_t>(r) * kGuardSlots,
        /*finite=*/true, pre, post);
  }
  return gathered;
}

TEST(GuardVerdictTest, CleanBufferDoesNotTrip) {
  const GuardVerdict v =
      internal::JudgeGuard(GatheredGuards(4, 0xaaaa5555u, 0x1234abcdu), 4,
                           /*vote=*/true);
  EXPECT_FALSE(v.tripped());
  EXPECT_EQ(v.rank, -1);
}

TEST(GuardVerdictTest, ClearedFiniteFlagAttributesLowestRank) {
  std::vector<float> gathered = GatheredGuards(4, 1u, 2u);
  gathered[static_cast<std::size_t>(3) * kGuardSlots] = 0.0f;
  gathered[static_cast<std::size_t>(1) * kGuardSlots] = 0.0f;
  const GuardVerdict v = internal::JudgeGuard(gathered, 4, /*vote=*/true);
  EXPECT_EQ(v.reason, GuardTripReason::kNonFinite);
  EXPECT_EQ(v.rank, 1);
}

TEST(GuardVerdictTest, MajorityVoteAttributesTheDissentingRank) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<float> gathered = GatheredGuards(4, 1u, 0xfeedu);
  internal::EncodeGuardDigest(
      0xbad0u, gathered.data() + static_cast<std::size_t>(2) * kGuardSlots + 3);
  const GuardVerdict v = internal::JudgeGuard(gathered, 4, /*vote=*/true);
  EXPECT_EQ(v.reason, GuardTripReason::kChecksumVote);
  EXPECT_EQ(v.rank, 2);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.guard.corrupt_votes"), 1);
}

TEST(GuardVerdictTest, NoStrictMajorityDetectsButDoesNotAttribute) {
  // World 2, one dissent: 1-vs-1 has no strict majority. The step is
  // still untrustworthy, so the verdict trips with rank -1.
  std::vector<float> gathered = GatheredGuards(2, 1u, 0xfeedu);
  internal::EncodeGuardDigest(0xbad0u, gathered.data() + kGuardSlots + 3);
  const GuardVerdict v = internal::JudgeGuard(gathered, 2, /*vote=*/true);
  EXPECT_EQ(v.reason, GuardTripReason::kChecksumVote);
  EXPECT_EQ(v.rank, -1);
}

TEST(GuardVerdictTest, WorldOneSelfChecksPreAgainstPost) {
  // No quorum of one: an honest world-1 step has pre == post (every
  // world-1 collective is a bitwise identity), so a mismatch is a trip.
  EXPECT_FALSE(internal::JudgeGuard(GatheredGuards(1, 7u, 7u), 1,
                                    /*vote=*/true)
                   .tripped());
  const GuardVerdict v =
      internal::JudgeGuard(GatheredGuards(1, 7u, 8u), 1, /*vote=*/true);
  EXPECT_EQ(v.reason, GuardTripReason::kChecksumVote);
  EXPECT_EQ(v.rank, 0);
}

TEST(GuardVerdictTest, VoteDisabledSkipsDigestComparison) {
  std::vector<float> gathered = GatheredGuards(2, 1u, 0xfeedu);
  internal::EncodeGuardDigest(0xbad0u, gathered.data() + kGuardSlots + 3);
  EXPECT_FALSE(internal::JudgeGuard(gathered, 2, /*vote=*/false).tripped());
}

TEST(GuardVerdictTest, ThrowOnGuardTripCarriesReasonAndRank) {
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  try {
    internal::ThrowOnGuardTrip(
        GuardVerdict{GuardTripReason::kNonFinite, /*rank=*/3});
    FAIL() << "expected GradientCorruptionError";
  } catch (const GradientCorruptionError& e) {
    EXPECT_EQ(e.reason(), GuardTripReason::kNonFinite);
    EXPECT_EQ(e.rank(), 3);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 3"), std::string::npos);
  }
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.guard.trips"), 1);
  internal::ThrowOnGuardTrip(GuardVerdict{});  // kNone: no throw
}

TEST(GuardClipTest, ScaleIsIdentityBelowTheClipAndExactAboveIt) {
  EXPECT_EQ(internal::GuardClipScale(5.0, /*clip=*/0.0f), 1.0f);
  EXPECT_EQ(internal::GuardClipScale(0.5, /*clip=*/1.0f), 1.0f);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const float scale = internal::GuardClipScale(4.0, /*clip=*/1.0f);
  EXPECT_EQ(scale, 0.25f);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.guard.clip_events"), 1);
}

TEST(GuardClipTest, SqNormAccumulatesSequentiallyInDouble) {
  const std::vector<float> data{1.0f, 2.0f, 3.0f, 4.0f};
  double acc = internal::GuardSqNormAccumulate(data.data(), 0, 2, 0.0);
  acc = internal::GuardSqNormAccumulate(data.data(), 2, 4, acc);
  EXPECT_EQ(acc, internal::GuardSqNormAccumulate(data.data(), 0, 4, 0.0));
  EXPECT_EQ(acc, 30.0);
}

TEST(GuardSpikeTest, WarmupThenTripWithoutPoisoningTheEma) {
  GuardOptions options;
  options.spike_factor = 2.0f;
  options.spike_warmup_steps = 2;
  options.ema_alpha = 0.5;
  internal::GuardEmaState state;
  // Warmup: even a huge jump cannot trip yet.
  EXPECT_FALSE(internal::GuardSpikeCheck(state, options, 1.0, 1.0));
  EXPECT_FALSE(internal::GuardSpikeCheck(state, options, 100.0, 100.0));
  EXPECT_EQ(state.observed, 2);
  // Warm + within threshold: EMAs keep updating.
  EXPECT_FALSE(internal::GuardSpikeCheck(state, options, 50.0, 50.0));
  const double loss_ema = state.loss_ema;
  const double norm_ema = state.norm_ema;
  // A spike on either statistic trips and leaves the EMAs untouched.
  EXPECT_TRUE(
      internal::GuardSpikeCheck(state, options, loss_ema * 3.0, 1.0));
  EXPECT_TRUE(
      internal::GuardSpikeCheck(state, options, 1.0, norm_ema * 3.0));
  EXPECT_EQ(state.loss_ema, loss_ema);
  EXPECT_EQ(state.norm_ema, norm_ema);
  // spike_factor == 0 disables the detector entirely.
  GuardOptions off;
  internal::GuardEmaState fresh;
  EXPECT_FALSE(internal::GuardSpikeCheck(fresh, off, 1e30, 1e30));
  EXPECT_EQ(fresh.observed, 0);
}

// ---------------------------------------------------------------------
// ReplicaGroup-level detection grid.
// ---------------------------------------------------------------------

struct GuardTrip {
  bool tripped = false;
  GuardTripReason reason = GuardTripReason::kNone;
  int rank = -1;
};

// One TrainStep on a fresh world with the given faults/guard config,
// capturing the guard verdict (if any).
GuardTrip RunGuardedStep(int replicas, ReplicaGroupOptions options,
                         int steps = 1) {
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  Rng rng(5);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f);
  ReplicaGroup group(replicas, std::move(options));
  GuardTrip trip;
  for (int s = 0; s < steps; ++s) {
    const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
    try {
      group.TrainStep(model, sgd, ShardBatch(batch, replicas));
    } catch (const GradientCorruptionError& e) {
      trip.tripped = true;
      trip.reason = e.reason();
      trip.rank = e.rank();
      return trip;
    }
  }
  return trip;
}

class GuardReplicaGroupTest : public ::testing::Test {
 protected:
  ~GuardReplicaGroupTest() override { SetIntraOpThreads(0); }
};

TEST_F(GuardReplicaGroupTest, EveryCorruptionKindIsDetectedAndAttributed) {
  // The detection acceptance grid: kind x replicated/sharded x overlap,
  // world 4 so the checksum vote has a strict majority. NaN/Inf strike
  // the local gradients and are caught by the finite sentinels; the bit
  // flip strikes the post-collective agreement buffer and is caught by
  // the digest vote. Attribution lands on the injected rank every time.
  SetIntraOpThreads(2);
  struct Kind {
    dist::CorruptKind kind;
    GuardTripReason reason;
  };
  const Kind kinds[] = {
      {dist::CorruptKind::kNaN, GuardTripReason::kNonFinite},
      {dist::CorruptKind::kInf, GuardTripReason::kNonFinite},
      {dist::CorruptKind::kBitflip, GuardTripReason::kChecksumVote},
  };
  for (const Kind& kind : kinds) {
    for (const bool sharded : {false, true}) {
      for (const bool overlap : {false, true}) {
        const obs::MetricsSnapshot before =
            obs::MetricsRegistry::Global().Snapshot();
        ReplicaGroupOptions options;
        options.sharded = sharded;
        options.overlap = overlap;
        options.guard.enabled = true;
        options.faults.corrupt_rank = 1;
        options.faults.corrupt_seq = 0;
        options.faults.corrupt_kind = kind.kind;
        const GuardTrip trip = RunGuardedStep(4, options);
        const std::string tag =
            "kind " + std::to_string(static_cast<int>(kind.kind)) +
            " sharded " + std::to_string(sharded) + " overlap " +
            std::to_string(overlap);
        ASSERT_TRUE(trip.tripped) << tag;
        EXPECT_EQ(trip.reason, kind.reason) << tag;
        EXPECT_EQ(trip.rank, 1) << tag;
        const auto delta = obs::MetricsRegistry::Global()
                               .Snapshot()
                               .CounterDeltaSince(before);
        EXPECT_EQ(delta.at("nn.guard.trips"), 1) << tag;
        EXPECT_EQ(delta.at("dist.fault.corruptions"), 1) << tag;
        EXPECT_EQ(delta.count("nn.guard.corrupt_votes")
                      ? delta.at("nn.guard.corrupt_votes")
                      : 0,
                  kind.kind == dist::CorruptKind::kBitflip ? 1 : 0)
            << tag;
      }
    }
  }
}

TEST_F(GuardReplicaGroupTest, WorldOneSelfCheckCatchesABitflip) {
  // No quorum of one: the pre-vs-post self-check still catches a flip in
  // the agreement buffer, replicated and sharded alike.
  SetIntraOpThreads(1);
  for (const bool sharded : {false, true}) {
    ReplicaGroupOptions options;
    options.sharded = sharded;
    options.guard.enabled = true;
    options.faults.corrupt_rank = 0;
    options.faults.corrupt_seq = 0;
    options.faults.corrupt_kind = dist::CorruptKind::kBitflip;
    const GuardTrip trip = RunGuardedStep(1, options);
    ASSERT_TRUE(trip.tripped) << "sharded " << sharded;
    EXPECT_EQ(trip.reason, GuardTripReason::kChecksumVote);
    EXPECT_EQ(trip.rank, 0);
  }
}

TEST_F(GuardReplicaGroupTest, CleanGuardedStepMatchesGuardOffBitwise) {
  // Guard on, nothing injected: the extra collective must not perturb
  // the training math in any mode.
  SetIntraOpThreads(2);
  for (const bool sharded : {false, true}) {
    ReplicaGroupOptions off;
    off.sharded = sharded;
    const auto dataset = SyntheticImageDataset::Mnist(32, 17);
    const auto run = [&](bool guard_on) {
      Rng rng(5);
      LeNet model(rng);
      SGD<LeNet> sgd(0.1f);
      ReplicaGroupOptions options;
      options.sharded = sharded;
      options.guard.enabled = guard_on;
      ReplicaGroup group(4, std::move(options));
      for (int s = 0; s < 3; ++s) {
        const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
        group.TrainStep(model, sgd, ShardBatch(batch, 4));
      }
      std::vector<std::vector<float>> params;
      model.VisitParameters(
          [&](const Tensor& p) { params.push_back(p.ToVector()); });
      return params;
    };
    ASSERT_EQ(run(true), run(false)) << "sharded " << sharded;
  }
}

TEST_F(GuardReplicaGroupTest, ClippedStepIsBitwiseEqualAcrossAllModes) {
  // Global-norm clipping runs caller-side after the reduction, so the
  // sequential reference, the threaded replicated path, and the sharded
  // path (which accumulates the norm over per-rank owned regions in rank
  // order) must all produce bit-identical weights.
  const auto dataset = SyntheticImageDataset::Mnist(32, 17);
  const auto run = [&](ReplicaGroupOptions options) {
    Rng rng(5);
    LeNet model(rng);
    SGD<LeNet> sgd(0.1f);
    ReplicaGroup group(4, std::move(options));
    for (int s = 0; s < 2; ++s) {
      const LabeledBatch batch = dataset.Batch(s, 16, NaiveDevice());
      group.TrainStep(model, sgd, ShardBatch(batch, 4));
    }
    std::vector<std::vector<float>> params;
    model.VisitParameters(
        [&](const Tensor& p) { params.push_back(p.ToVector()); });
    return params;
  };
  GuardOptions guard;
  guard.enabled = true;
  guard.clip_global_norm = 0.05f;  // small enough to clip every step

  SetIntraOpThreads(1);
  ReplicaGroupOptions reference;
  reference.sequential = true;
  reference.guard = guard;
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const auto expected = run(reference);
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  EXPECT_EQ(delta.at("nn.guard.clip_events"), 2);

  SetIntraOpThreads(2);
  for (const bool sharded : {false, true}) {
    for (const bool overlap : {false, true}) {
      ReplicaGroupOptions threaded;
      threaded.sharded = sharded;
      threaded.overlap = overlap;
      threaded.guard = guard;
      ASSERT_EQ(run(threaded), expected)
          << "sharded " << sharded << " overlap " << overlap;
    }
  }
}

TEST_F(GuardReplicaGroupTest, SpikeDetectorTripsAfterWarmup) {
  // Identical batches: the gradient norm tracks its own EMA, so a
  // spike_factor below 1 trips on the first warm step — deterministic
  // without having to engineer a genuine loss explosion.
  SetIntraOpThreads(2);
  ReplicaGroupOptions options;
  options.guard.enabled = true;
  options.guard.spike_factor = 0.5f;
  options.guard.spike_warmup_steps = 1;
  const GuardTrip trip = RunGuardedStep(2, options, /*steps=*/2);
  ASSERT_TRUE(trip.tripped);
  EXPECT_EQ(trip.reason, GuardTripReason::kSpike);
  EXPECT_EQ(trip.rank, -1);  // a global statistic, never attributed
}

}  // namespace
}  // namespace s4tf::nn
