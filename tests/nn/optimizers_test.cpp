#include "nn/optimizers.h"

#include <cmath>
#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/models/spline.h"

namespace s4tf::nn {
namespace {

// A fixed quadratic fitting problem used by the optimizer sweeps.
struct Problem {
  SplineModel model;
  Tensor basis;
  Tensor targets;
  float Loss() const { return SplineLoss(model, basis, targets).ScalarValue(); }
};

Problem MakeProblem(std::uint64_t seed = 3) {
  Rng rng(seed);
  Problem p{SplineModel(6, rng),
            BuildSplineBasis({0.0f, 0.2f, 0.4f, 0.6f, 0.8f, 1.0f}, 6),
            Tensor::FromVector(Shape({6, 1}), {1, -1, 2, 0, 1.5f, -0.5f})};
  return p;
}

template <typename Optimizer>
float RunSteps(Problem& p, Optimizer& opt, int steps) {
  float last = 0.0f;
  for (int i = 0; i < steps; ++i) {
    auto [loss, grads] = ad::ValueWithGradient(
        p.model, [&](const SplineModel& m) {
          return SplineLoss(m, p.basis, p.targets);
        });
    last = loss.ScalarValue();
    opt.Update(p.model, grads);
  }
  return last;
}

TEST(RMSPropTest, ConvergesOnQuadratic) {
  Problem p = MakeProblem();
  RMSProp<SplineModel> opt(0.05f);
  const float initial = p.Loss();
  RunSteps(p, opt, 300);
  EXPECT_LT(p.Loss(), initial * 0.01f);
}

TEST(OptimizerSweepTest, AllOptimizersReduceLoss) {
  {
    Problem p = MakeProblem();
    SGD<SplineModel> opt(0.2f);
    const float initial = p.Loss();
    RunSteps(p, opt, 100);
    EXPECT_LT(p.Loss(), initial * 0.2f) << "sgd";
  }
  {
    Problem p = MakeProblem();
    SGD<SplineModel> opt(0.1f, 0.9f);
    const float initial = p.Loss();
    RunSteps(p, opt, 100);
    EXPECT_LT(p.Loss(), initial * 0.2f) << "sgd+momentum";
  }
  {
    Problem p = MakeProblem();
    Adam<SplineModel> opt(0.1f);
    const float initial = p.Loss();
    RunSteps(p, opt, 200);
    EXPECT_LT(p.Loss(), initial * 0.2f) << "adam";
  }
  {
    Problem p = MakeProblem();
    RMSProp<SplineModel> opt(0.05f);
    const float initial = p.Loss();
    RunSteps(p, opt, 200);
    EXPECT_LT(p.Loss(), initial * 0.2f) << "rmsprop";
  }
}

TEST(GradientClippingTest, GlobalNormComputed) {
  Problem p = MakeProblem();
  SplineModel::TangentVector grads;
  grads.control_points = Tensor::FromVector(Shape({6, 1}), {3, 4, 0, 0, 0, 0});
  EXPECT_FLOAT_EQ(GlobalNorm(p.model, grads), 5.0f);
}

TEST(GradientClippingTest, ClipScalesDownOnlyWhenAboveThreshold) {
  Problem p = MakeProblem();
  SplineModel::TangentVector grads;
  grads.control_points = Tensor::FromVector(Shape({6, 1}), {3, 4, 0, 0, 0, 0});
  // Above the threshold: scaled to norm 1.
  const float pre = ClipByGlobalNorm(p.model, grads, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(GlobalNorm(p.model, grads), 1.0f, 1e-5f);
  // Below: untouched.
  const float pre2 = ClipByGlobalNorm(p.model, grads, 10.0f);
  EXPECT_NEAR(pre2, 1.0f, 1e-5f);
  EXPECT_NEAR(GlobalNorm(p.model, grads), 1.0f, 1e-5f);
}

TEST(ScheduleTest, WarmupCosineShape) {
  const WarmupCosineSchedule schedule(1.0f, 10, 110, 0.1f);
  // Warmup is linear and increasing.
  EXPECT_NEAR(schedule.At(0), 0.1f, 1e-5f);
  EXPECT_LT(schedule.At(3), schedule.At(7));
  EXPECT_NEAR(schedule.At(9), 1.0f, 1e-5f);
  // Cosine decay: midpoint halfway between peak and floor, floor at end.
  EXPECT_NEAR(schedule.At(60), 0.55f, 0.01f);
  EXPECT_NEAR(schedule.At(110), 0.1f, 1e-4f);
  // Clamped past the end.
  EXPECT_NEAR(schedule.At(500), 0.1f, 1e-4f);
}

TEST(ScheduleTest, StepDecay) {
  const StepDecaySchedule schedule(0.8f, 0.5f, 100);
  EXPECT_FLOAT_EQ(schedule.At(0), 0.8f);
  EXPECT_FLOAT_EQ(schedule.At(99), 0.8f);
  EXPECT_FLOAT_EQ(schedule.At(100), 0.4f);
  EXPECT_FLOAT_EQ(schedule.At(250), 0.2f);
}

TEST(ScheduleTest, ScheduledSGDConverges) {
  Problem p = MakeProblem();
  SGD<SplineModel> opt(0.0f);
  const WarmupCosineSchedule schedule(0.3f, 5, 100, 0.01f);
  const float initial = p.Loss();
  for (int step = 0; step < 100; ++step) {
    opt.set_learning_rate(schedule.At(step));
    auto [loss, grads] = ad::ValueWithGradient(
        p.model, [&](const SplineModel& m) {
          return SplineLoss(m, p.basis, p.targets);
        });
    (void)loss;
    opt.Update(p.model, grads);
  }
  EXPECT_LT(p.Loss(), initial * 0.05f);
}

TEST(GradientClippingTest, ClippedTrainingStaysStable) {
  // A deliberately huge learning rate diverges unclipped but survives
  // with aggressive global-norm clipping (steps bounded by lr * max_norm).
  Problem unclipped = MakeProblem();
  Problem clipped = MakeProblem();
  SGD<SplineModel> opt_a(50.0f);
  SGD<SplineModel> opt_b(50.0f);
  for (int i = 0; i < 40; ++i) {
    {
      auto [loss, grads] = ad::ValueWithGradient(
          unclipped.model, [&](const SplineModel& m) {
            return SplineLoss(m, unclipped.basis, unclipped.targets);
          });
      (void)loss;
      opt_a.Update(unclipped.model, grads);
    }
    {
      auto [loss, grads] = ad::ValueWithGradient(
          clipped.model, [&](const SplineModel& m) {
            return SplineLoss(m, clipped.basis, clipped.targets);
          });
      (void)loss;
      ClipByGlobalNorm(clipped.model, grads, 0.01f);
      opt_b.Update(clipped.model, grads);
    }
  }
  EXPECT_TRUE(std::isnan(unclipped.Loss()) || std::isinf(unclipped.Loss()) ||
              unclipped.Loss() > 10.0f)
      << "expected divergence without clipping";
  EXPECT_LT(clipped.Loss(), 2.0f);
}

}  // namespace
}  // namespace s4tf::nn
