#include <cmath>
#include <gtest/gtest.h>

#include "ad/operators.h"
#include "nn/losses.h"
#include "nn/models/lenet.h"
#include "nn/models/resnet.h"
#include "nn/models/spline.h"

namespace s4tf::nn {
namespace {

TEST(LeNetTest, Figure6ArchitectureShapes) {
  Rng rng(1);
  const LeNet model(rng);
  EXPECT_EQ(model.conv1.filter.shape(), Shape({5, 5, 1, 6}));
  EXPECT_EQ(model.conv2.filter.shape(), Shape({5, 5, 6, 16}));
  EXPECT_EQ(model.fc1.weight.shape(), Shape({400, 120}));
  EXPECT_EQ(model.fc2.weight.shape(), Shape({120, 84}));
  EXPECT_EQ(model.fc3.weight.shape(), Shape({84, 10}));
  const Tensor x = Tensor::Zeros(Shape({2, 28, 28, 1}));
  EXPECT_EQ(model(x).shape(), Shape({2, 10}));
}

TEST(LeNetTest, ParameterCountMatchesLeCun98Variant) {
  Rng rng(2);
  const LeNet model(rng);
  std::int64_t count = 0;
  model.VisitParameters([&](const Tensor& p) { count += p.NumElements(); });
  // conv1: 5*5*1*6+6; conv2: 5*5*6*16+16; fc1: 400*120+120;
  // fc2: 120*84+84; fc3: 84*10+10.
  EXPECT_EQ(count, 156 + 2416 + 48120 + 10164 + 850);
}

TEST(LeNetTest, GradientsFlowToAllParameters) {
  Rng rng(3);
  const LeNet model(rng);
  Rng xr(4);
  const Tensor x = Tensor::RandomUniform(Shape({2, 28, 28, 1}), xr, 0, 1);
  const Tensor labels = OneHot({3, 7}, 10, x.device());
  const auto [loss, grads] = ad::ValueWithGradient(
      model, [&](const LeNet& m) {
        return SoftmaxCrossEntropy(m(x), labels);
      });
  EXPECT_GT(loss.ScalarValue(), 0.0f);
  // Every parameter gradient is shaped and non-degenerate somewhere.
  EXPECT_EQ(grads.conv1.filter.shape(), Shape({5, 5, 1, 6}));
  EXPECT_EQ(grads.fc3.bias.shape(), Shape({10}));
  float magnitude = 0.0f;
  for (float g : grads.conv1.filter.ToVector()) magnitude += std::fabs(g);
  EXPECT_GT(magnitude, 0.0f);
}

TEST(ResNetTest, Cifar56HasExpectedStructure) {
  Rng rng(5);
  const ResNet model(ResNetConfig::Cifar(56), rng);
  EXPECT_EQ(model.blocks.size(), 27u);  // 3 stages x 9 blocks
  // Projection blocks exactly at stage transitions.
  int projections = 0;
  for (const auto& b : model.blocks) {
    if (b.has_projection) ++projections;
  }
  EXPECT_EQ(projections, 2);
  // ~0.85M parameters for ResNet-56 (He et al. report 0.85M).
  const std::int64_t params = model.ParameterCount();
  EXPECT_GT(params, 800'000);
  EXPECT_LT(params, 900'000);
}

TEST(ResNetTest, ForwardShapesCifar) {
  Rng rng(6);
  const ResNet model(ResNetConfig::Cifar(8), rng);  // tiny depth for speed
  const Tensor x = Tensor::Zeros(Shape({2, 32, 32, 3}));
  EXPECT_EQ(model(x).shape(), Shape({2, 10}));
}

TEST(ResNetTest, ImageNetScaledConfigShapes) {
  Rng rng(7);
  const ResNet model(ResNetConfig::ImageNetScaled(1, 8, 100), rng);
  const Tensor x = Tensor::Zeros(Shape({1, 32, 32, 3}));
  EXPECT_EQ(model(x).shape(), Shape({1, 100}));
}

TEST(ResNetTest, GradientsFlowThroughResidualConnections) {
  Rng rng(8);
  const ResNet model(ResNetConfig::Cifar(8), rng);
  Rng xr(9);
  const Tensor x = Tensor::RandomUniform(Shape({2, 8, 8, 3}), xr, 0, 1);
  const Tensor labels = OneHot({1, 2}, 10, x.device());
  const auto [loss, grads] = ad::ValueWithGradient(
      model, [&](const ResNet& m) {
        return SoftmaxCrossEntropy(m(x), labels);
      });
  (void)loss;
  // The stem only receives gradient through every residual block.
  float stem_grad = 0.0f;
  for (float g : grads.stem.filter.ToVector()) stem_grad += std::fabs(g);
  EXPECT_GT(stem_grad, 0.0f);
  EXPECT_EQ(grads.blocks.elements.size(), model.blocks.size());
}

TEST(ResNetTest, InvalidCifarDepthRejected) {
  EXPECT_THROW(ResNetConfig::Cifar(57), InternalError);
}

TEST(SplineTest, BasisHasLocalSupportAndPartitionLikeShape) {
  const auto basis =
      BuildSplineBasis({0.0f, 0.25f, 0.5f, 0.75f, 1.0f}, 5).ToVector();
  // At a knot position, the matching basis function is 1.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(basis[static_cast<std::size_t>(i * 5 + i)], 1.0f, 1e-5);
  }
  // Basis functions two knots away vanish.
  EXPECT_EQ(basis[2], 0.0f);  // B_2 at x=0
}

TEST(SplineTest, ModelEvaluatesLinearCombination) {
  Rng rng(10);
  SplineModel model(3, rng);
  model.control_points = Tensor::FromVector(Shape({3, 1}), {1, 2, 3});
  const Tensor basis = BuildSplineBasis({0.0f, 0.5f, 1.0f}, 3);
  const auto y = model(basis).ToVector();
  EXPECT_NEAR(y[0], 1.0f, 1e-5);
  EXPECT_NEAR(y[1], 2.0f, 1e-5);
  EXPECT_NEAR(y[2], 3.0f, 1e-5);
}

TEST(SplineTest, LossIsZeroAtExactFit) {
  Rng rng(11);
  SplineModel model(4, rng);
  model.control_points = Tensor::Zeros(Shape({4, 1}));
  const Tensor basis = BuildSplineBasis({0.1f, 0.6f}, 4);
  const Tensor targets = Tensor::Zeros(Shape({2, 1}));
  EXPECT_NEAR(SplineLoss(model, basis, targets).ScalarValue(), 0.0f, 1e-7);
}

TEST(ModelValueSemanticsTest, CopyingModelIsO1AndIndependent) {
  Rng rng(12);
  LeNet a(rng);
  vs::CowStatsScope stats;
  LeNet b = a;  // value copy: no buffer allocations
  EXPECT_EQ(stats.delta().buffer_allocations, 0);
  b.fc3.bias = b.fc3.bias + 1.0f;
  EXPECT_FALSE(AllClose(a.fc3.bias, b.fc3.bias));
}

}  // namespace
}  // namespace s4tf::nn
