#include "nn/models/autoencoder.h"

#include <cmath>
#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/losses.h"
#include "nn/optimizers.h"

namespace s4tf::nn {
namespace {

TEST(AutoencoderTest, ShapesThroughBottleneck) {
  Rng rng(1);
  const Autoencoder model(64, 32, 8, rng);
  const Tensor x = Tensor::Ones(Shape({5, 64}));
  EXPECT_EQ(model.Encode(x).shape(), Shape({5, 8}));
  EXPECT_EQ(model.Decode(model.Encode(x)).shape(), Shape({5, 64}));
  EXPECT_EQ(model(x).shape(), Shape({5, 64}));
}

TEST(AutoencoderTest, ReconstructionLossDecreasesWithTraining) {
  Rng rng(2);
  Autoencoder model(32, 24, 6, rng);
  // Data living on a low-dimensional manifold: mixtures of two patterns.
  Rng data_rng(3);
  std::vector<float> data(16 * 32);
  for (int i = 0; i < 16; ++i) {
    const float a = data_rng.NextFloat();
    const float b = data_rng.NextFloat();
    for (int j = 0; j < 32; ++j) {
      data[static_cast<std::size_t>(i * 32 + j)] =
          a * std::sin(0.3f * static_cast<float>(j)) +
          b * std::cos(0.15f * static_cast<float>(j));
    }
  }
  const Tensor x = Tensor::FromVector(Shape({16, 32}), data);
  Adam<Autoencoder> optimizer(0.01f);
  auto loss_fn = [&](const Autoencoder& m) {
    return MeanSquaredError(m(x), x);
  };
  const float before = loss_fn(model).ScalarValue();
  for (int step = 0; step < 150; ++step) {
    auto [loss, grads] = ad::ValueWithGradient(model, loss_fn);
    (void)loss;
    optimizer.Update(model, grads);
  }
  const float after = loss_fn(model).ScalarValue();
  EXPECT_LT(after, before * 0.05f);  // 2-D manifold fits through 6 dims
}

TEST(AutoencoderTest, LatentCodesDifferForDifferentInputs) {
  Rng rng(4);
  const Autoencoder model(16, 12, 4, rng);
  Rng xr(5);
  const Tensor a = Tensor::RandomUniform(Shape({1, 16}), xr, -1, 1);
  const Tensor b = Tensor::RandomUniform(Shape({1, 16}), xr, -1, 1);
  EXPECT_FALSE(AllClose(model.Encode(a), model.Encode(b)));
}

TEST(AutoencoderTest, GradientsReachEncoderThroughDecoder) {
  Rng rng(6);
  const Autoencoder model(8, 6, 2, rng);
  Rng xr(7);
  const Tensor x = Tensor::RandomUniform(Shape({4, 8}), xr, -1, 1);
  const auto [loss, grads] = ad::ValueWithGradient(
      model, [&](const Autoencoder& m) { return MeanSquaredError(m(x), x); });
  (void)loss;
  float magnitude = 0.0f;
  for (float g : grads.encode1.weight.ToVector()) magnitude += std::fabs(g);
  EXPECT_GT(magnitude, 0.0f);
}

}  // namespace
}  // namespace s4tf::nn
