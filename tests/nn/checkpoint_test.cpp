#include "nn/checkpoint.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "nn/datasets.h"
#include "nn/models/lenet.h"
#include "nn/models/spline.h"
#include "nn/optimizers.h"

namespace s4tf::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string("/tmp/s4tf_ckpt_test_") + name;
}

TEST(CheckpointTest, SnapshotRestoreRoundTripsInMemory) {
  Rng rng(1);
  LeNet original(rng);
  const Checkpoint snapshot = Snapshot(original);
  EXPECT_EQ(snapshot.entries.size(), 10u);  // 5 layers x (weights + bias)
  EXPECT_EQ(snapshot.TotalElements(), 61706);

  Rng rng2(99);
  LeNet other(rng2);
  EXPECT_FALSE(AllClose(other.fc3.weight, original.fc3.weight));
  EXPECT_TRUE(Restore(other, snapshot).ok());
  EXPECT_TRUE(AllClose(other.fc3.weight, original.fc3.weight));
  EXPECT_TRUE(AllClose(other.conv1.filter, original.conv1.filter));
}

TEST(CheckpointTest, SaveLoadFileRoundTrip) {
  Rng rng(2);
  LeNet model(rng);
  const std::string path = TempPath("lenet.bin");
  ASSERT_TRUE(SaveModel(model, path).ok());

  Rng rng2(55);
  LeNet loaded(rng2);
  ASSERT_TRUE(LoadModel(loaded, path).ok());
  model.VisitParameters([&, i = 0](const Tensor& p) mutable {
    (void)i;
    (void)p;
  });
  // Spot-check every parameter tensor.
  std::vector<std::vector<float>> original_params;
  model.VisitParameters([&](const Tensor& p) {
    original_params.push_back(p.ToVector());
  });
  std::size_t index = 0;
  loaded.VisitParameters([&](const Tensor& p) {
    EXPECT_EQ(p.ToVector(), original_params[index++]);
  });
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShapeMismatchRejectedWithoutModification) {
  Rng rng(3);
  SplineModel small(4, rng);
  SplineModel big(8, rng);
  const Checkpoint snapshot = Snapshot(small);
  const auto before = big.control_points.ToVector();
  const Status status = Restore(big, snapshot);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shape mismatch"), std::string::npos);
  EXPECT_EQ(big.control_points.ToVector(), before);  // untouched
}

TEST(CheckpointTest, CountMismatchRejected) {
  Rng rng(4);
  LeNet lenet(rng);
  SplineModel spline(4, rng);
  const Status status = Restore(lenet, Snapshot(spline));
  EXPECT_FALSE(status.ok());
}

TEST(CheckpointTest, LoadRejectsGarbageAndMissingFiles) {
  EXPECT_EQ(LoadCheckpoint("/tmp/s4tf_no_such_file.bin").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a checkpoint", f);
    std::fclose(f);
  }
  EXPECT_EQ(LoadCheckpoint(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileRejected) {
  Rng rng(5);
  SplineModel model(6, rng);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveModel(model, path).ok());
  // Chop the payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 8), 0);
  }
  EXPECT_FALSE(LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, TrainedStateSurvivesRoundTrip) {
  // Pre-train, checkpoint, fine-tune a copy, restore: the restored model
  // reproduces pre-fine-tune behaviour exactly.
  Rng rng(6);
  SplineModel model(8, rng);
  const SplineData data = MakeGlobalSplineData(64, 11);
  const Tensor basis = BuildSplineBasis(data.xs, 8);
  BacktrackingLineSearch<SplineModel> search;
  for (int i = 0; i < 20; ++i) {
    search.Step(model, [&](const SplineModel& m) {
      return SplineLoss(m, basis, data.targets);
    });
  }
  const float trained_loss =
      SplineLoss(model, basis, data.targets).ScalarValue();
  const std::string path = TempPath("spline.bin");
  ASSERT_TRUE(SaveModel(model, path).ok());

  for (int i = 0; i < 10; ++i) {  // keep training (diverge from snapshot)
    search.Step(model, [&](const SplineModel& m) {
      return SplineLoss(m, basis, data.targets);
    });
  }
  ASSERT_TRUE(LoadModel(model, path).ok());
  EXPECT_FLOAT_EQ(SplineLoss(model, basis, data.targets).ScalarValue(),
                  trained_loss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s4tf::nn
