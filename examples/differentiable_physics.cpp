// Differentiable physics (§5: "Beyond machine learning, Swift for
// TensorFlow has been applied to differentiable physics simulations").
//
// A projectile launcher must hit a target: the simulation (semi-implicit
// Euler with quadratic drag, a genuinely iterative, control-flow-heavy
// program) is differentiated end-to-end, two ways:
//   * forward mode with Dual numbers through ordinary C++ control flow,
//   * the mini-SIL AOT transformation for the drag-free special case,
//     verifying both systems agree.
// Gradient descent on (angle, speed) then solves the aiming problem.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ad/dual.h"
#include "sil/autodiff.h"

namespace {

using s4tf::ad::Dual;
using D = Dual<double>;

constexpr double kGravity = 9.81;
constexpr double kDrag = 0.02;
constexpr double kDt = 1.0 / 240.0;

// Horizontal distance travelled when the projectile returns to y=0,
// generic over the scalar type so the same code runs on double and Dual.
//
// Differentiable event handling: terminating at the first integration
// step with y<0 would make the result a sawtooth whose branch derivative
// misleads the optimizer (the landing step changes discretely with the
// parameters). Interpolating the exact ground crossing keeps the result —
// and therefore its dual tangent — smooth in (angle, speed).
template <typename T>
T Range(T angle, T speed) {
  T x{0.0}, y{0.0};
  T vx = speed * cos(angle);
  T vy = speed * sin(angle);
  for (int step = 0; step < 100000; ++step) {
    const T prev_x = x;
    const T prev_y = y;
    const T v = sqrt(vx * vx + vy * vy);
    const T ax = T{-kDrag} * v * vx;
    const T ay = T{-kGravity} - T{kDrag} * v * vy;
    vx += ax * T{kDt};
    vy += ay * T{kDt};
    x += vx * T{kDt};
    y += vy * T{kDt};
    if (y < T{0.0} && step > 2) {
      // Linear interpolation to the y=0 crossing within this step.
      const T frac = prev_y / (prev_y - y);
      return prev_x + (x - prev_x) * frac;
    }
  }
  return x;
}

double RangeValue(double angle, double speed) {
  return Range(D(angle), D(speed)).value;
}

}  // namespace

int main() {
  std::printf("== Differentiable projectile simulation ==\n\n");

  const double target = 35.0;  // meters
  double angle = 0.6, speed = 18.0;

  std::printf("target range: %.1f m; initial guess: angle=%.3f rad, "
              "speed=%.1f m/s -> range %.2f m\n\n",
              target, angle, speed, RangeValue(angle, speed));

  // Damped Gauss-Newton on the scalar residual r = Range - target, with
  // the Jacobian row obtained from forward-mode AD (one dual pass per
  // parameter — the JVP is the right tool for few inputs, Figure 3).
  for (int iter = 0; iter < 150; ++iter) {
    const D r_angle = Range(D::Variable(angle), D(speed));
    const D r_speed = Range(D(angle), D::Variable(speed));
    const double residual = r_angle.value - target;
    if (residual * residual < 1e-8) break;
    const double ja = r_angle.tangent;
    const double jv = r_speed.tangent;
    const double jtj = ja * ja + jv * jv;
    // Minimum-norm Gauss-Newton step, damped so the angle moves at most
    // 0.1 rad and the speed at most 4 m/s per iteration.
    const double da = std::clamp(-residual * ja / jtj, -0.1, 0.1);
    const double dv = std::clamp(-residual * jv / jtj, -4.0, 4.0);
    double scale = 1.0;
    // Backtrack if the damped step does not reduce the residual, and keep
    // the launch physically sensible (the flat-trajectory regime at
    // angle -> 0 is a discontinuity the local model cannot see).
    for (int bt = 0; bt < 12; ++bt) {
      const double trial_angle =
          std::clamp(angle + scale * da, 0.15, 1.2);
      const double trial_speed = std::max(speed + scale * dv, 1.0);
      const double trial = RangeValue(trial_angle, trial_speed) - target;
      if (std::fabs(trial) < std::fabs(residual)) {
        angle = trial_angle;
        speed = trial_speed;
        break;
      }
      scale *= 0.5;
    }
    if (iter % 25 == 0) {
      std::printf("iter %2d: range %.3f m, residual %.4f\n", iter,
                  r_angle.value, residual);
    }
  }
  std::printf("\nsolved: angle=%.4f rad, speed=%.3f m/s, range=%.3f m\n\n",
              angle, speed, RangeValue(angle, speed));

  // Cross-check the AD systems on the drag-free closed form
  // R = v^2 sin(2a)/g, built in mini-SIL and AOT-differentiated.
  using namespace s4tf::sil;
  FunctionBuilder b("ideal_range", 2);  // args: angle, speed
  const ValueId a = b.Arg(0);
  const ValueId v = b.Arg(1);
  const ValueId two = b.Const(2.0);
  const ValueId g = b.Const(kGravity);
  const ValueId sin2a = b.Emit(InstKind::kSin, {b.Emit(InstKind::kMul, {two, a})});
  const ValueId v2 = b.Emit(InstKind::kMul, {v, v});
  b.Return(b.Emit(InstKind::kDiv, {b.Emit(InstKind::kMul, {v2, sin2a}), g}));
  Module module;
  module.AddFunction(std::move(b).Build());

  const auto grads = SilGradient(module, "ideal_range", {angle, speed}).value();
  const double analytic_da =
      speed * speed * 2.0 * std::cos(2.0 * angle) / kGravity;
  const double analytic_dv = 2.0 * speed * std::sin(2.0 * angle) / kGravity;
  std::printf("mini-SIL AOT derivative of the ideal range:\n");
  std::printf("  dR/dangle = %.4f (analytic %.4f)\n", grads[0], analytic_da);
  std::printf("  dR/dspeed = %.4f (analytic %.4f)\n", grads[1], analytic_dv);
  return 0;
}
