// ZeRO-style sharded optimizer state on a replica group.
//
// Runs the same LeNet + Adam training twice — replicated (every rank
// holds the full optimizer state, gradients all-reduce) and sharded
// (gradients reduce-scatter, each rank updates only its slot shard,
// parameters all-gather back) — then verifies the trained weights are
// bit-identical and prints how the collective traffic changed shape
// and how much optimizer state each rank actually holds. Run with
// S4TF_METRICS=1 to see the full dist.reduce_scatter.* /
// dist.all_gather.* / nn.zero.* counter dump at exit.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/replica_group.h"
#include "obs/metrics.h"

using namespace s4tf;
using namespace s4tf::nn;

namespace {

std::vector<std::vector<float>> Parameters(const LeNet& model) {
  std::vector<std::vector<float>> params;
  model.VisitParameters(
      [&](const Tensor& p) { params.push_back(p.ToVector()); });
  return params;
}

}  // namespace

int main() {
  constexpr int kReplicas = 4;
  constexpr int kSteps = 4;
  constexpr int kGlobalBatch = 32;

  const auto dataset = SyntheticImageDataset::Mnist(128, 7);

  struct Run {
    std::vector<std::vector<float>> params;
    float loss = 0.0f;
    std::int64_t max_state_bytes_per_rank = 0;
    std::map<std::string, std::int64_t> traffic;
  };

  auto train = [&](bool sharded) {
    ReplicaGroupOptions options;
    options.sharded = sharded;
    options.accelerator = AcceleratorSpec::TpuV3Core();
    ReplicaGroup group(kReplicas, options);

    Rng rng(12);
    LeNet model(rng);
    Adam<LeNet> adam(0.01f);

    Run run;
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    for (int step = 0; step < kSteps; ++step) {
      const LabeledBatch batch =
          dataset.Batch(step, kGlobalBatch, NaiveDevice());
      run.loss = group.TrainStep(model, adam, ShardBatch(batch, kReplicas));
    }
    run.traffic =
        obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
    run.params = Parameters(model);
    if (sharded) {
      for (int r = 0; r < kReplicas; ++r) {
        run.max_state_bytes_per_rank =
            std::max(run.max_state_bytes_per_rank,
                     group.zero_opt_state_bytes(r));
      }
    } else {
      run.max_state_bytes_per_rank = OptimizerStateBytes(adam);
    }
    return run;
  };

  std::printf("ZeRO sharding demo: LeNet + Adam, %d replicas, %d steps\n\n",
              kReplicas, kSteps);
  const Run replicated = train(/*sharded=*/false);
  const Run sharded = train(/*sharded=*/true);

  const bool identical = sharded.params == replicated.params &&
                         sharded.loss == replicated.loss;
  std::printf("final loss    replicated %.6f  sharded %.6f\n",
              replicated.loss, sharded.loss);
  std::printf("trained weights bit-identical: %s\n\n",
              identical ? "YES" : "NO");

  std::printf("%-28s %12s %12s\n", "collective traffic", "replicated",
              "sharded");
  for (const char* name :
       {"dist.allreduce.bytes", "dist.reduce_scatter.bytes",
        "dist.all_gather.bytes", "dist.send.messages",
        "nn.zero.sharded_steps"}) {
    auto lookup = [&](const Run& run) {
      const auto it = run.traffic.find(name);
      return static_cast<long long>(
          it == run.traffic.end() ? 0 : it->second);
    };
    std::printf("  %-26s %12lld %12lld\n", name, lookup(replicated),
                lookup(sharded));
  }
  std::printf("\noptimizer state held per rank:\n");
  std::printf("  replicated: %lld bytes (full state on every rank)\n",
              static_cast<long long>(replicated.max_state_bytes_per_rank));
  std::printf("  sharded:    %lld bytes (largest shard; slot-aligned cuts)\n",
              static_cast<long long>(sharded.max_state_bytes_per_rank));
  return identical ? 0 : 1;
}
