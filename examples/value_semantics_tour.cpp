// A guided tour of §4: value vs. reference semantics (Figure 5), the
// inout rewrite (Figure 8), and where copies actually happen (CowStats).
#include <cstdio>
#include <memory>
#include <vector>

#include "tensor/ops.h"
#include "vs/cow_array.h"
#include "vs/inout.h"

namespace {

using s4tf::vs::CowArray;
using s4tf::vs::CowStats;
using s4tf::vs::CowStatsScope;
using s4tf::vs::Inout;

// Figure 8, left column.
bool Inc(Inout<int> x) {
  x = x + 1;
  return x < 10;
}

}  // namespace

int main() {
  using s4tf::Shape;
  using s4tf::Tensor;

  std::printf("== Figure 5: value vs reference semantics ==\n\n");

  // Column 2 of Figure 5: Python-style reference semantics.
  auto ref_x = std::make_shared<std::vector<int>>(std::vector<int>{3});
  auto ref_y = ref_x;  // aliases the same storage
  (*ref_x)[0] += 1;
  std::printf("reference semantics: x=[%d]  y=[%d]   <- y changed "
              "('spooky action at a distance')\n",
              (*ref_x)[0], (*ref_y)[0]);

  // Column 3: Swift-style mutable value semantics.
  CowArray<int> val_x{3};
  CowArray<int> val_y = val_x;
  val_x.at_mut(0) += 1;
  std::printf("value semantics:     x=[%d]  y=[%d]   <- y untouched\n\n",
              val_x[0], val_y[0]);

  std::printf("== Copies happen lazily, upon mutation, only when shared ==\n\n");
  CowArray<float> big(1'000'000, 1.0f);
  {
    CowStatsScope stats;
    CowArray<float> copy1 = big;
    CowArray<float> copy2 = big;
    CowArray<float> copy3 = copy2;
    std::printf("3 copies of a 1M-element array: %lld deep copies, %lld "
                "allocations\n",
                static_cast<long long>(stats.delta().deep_copies),
                static_cast<long long>(stats.delta().buffer_allocations));
    copy1.at_mut(0) = 2.0f;  // first mutation of a shared value
    std::printf("first mutation of a shared copy: %lld deep copy\n",
                static_cast<long long>(stats.delta().deep_copies));
    copy1.at_mut(1) = 3.0f;  // now unique: in place
    std::printf("second mutation (now unique):    still %lld deep copy\n\n",
                static_cast<long long>(stats.delta().deep_copies));
  }

  std::printf("== Figure 8: inout is pass-by-value plus reassignment ==\n\n");
  int y = 2;
  const bool z = Inc(y);
  std::printf("inout form:        y=%d z=%s\n", y, z ? "true" : "false");
  auto pure = s4tf::vs::RewriteInoutAsPure<int, bool>(&Inc);
  const auto [y2, z2] = pure(2);
  std::printf("rewritten form:    y=%d z=%s   (identical: inout does not "
              "introduce reference semantics)\n\n",
              y2, z2 ? "true" : "false");

  std::printf("== Tensors are value types too ==\n\n");
  Tensor t = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor u = t;
  t.SetAt({0}, 9.0f);
  std::printf("t=[%.0f %.0f %.0f]  u=[%.0f %.0f %.0f]\n", t.At({0}),
              t.At({1}), t.At({2}), u.At({0}), u.At({1}), u.At({2}));
  return 0;
}
