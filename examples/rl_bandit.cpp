// Reinforcement learning with the platform (§5: "Two recent works used
// Swift for TensorFlow to assist in reinforcement learning research" —
// Jelly Bean World, OpenSpiel).
//
// A REINFORCE policy-gradient agent on a contextual bandit: the context
// determines which of four arms pays out, the policy is a softmax network
// trained through the gradient tape with the standard surrogate loss
// -log pi(a|s) * reward. Shows the AD system handling the sampled-action,
// reward-weighted objectives RL needs — no framework changes required.
#include <cstdio>

#include "ad/operators.h"
#include "nn/layers.h"
#include "nn/losses.h"
#include "nn/optimizers.h"

namespace {

using namespace s4tf;

constexpr int kContexts = 4;
constexpr int kArms = 4;

struct Policy {
  nn::Dense hidden;
  nn::Dense logits;
  S4TF_DIFFERENTIABLE(Policy, hidden, logits)

  Policy() = default;
  explicit Policy(Rng& rng)
      : hidden(kContexts, 16, nn::Activation::kTanh, rng),
        logits(16, kArms, nn::Activation::kIdentity, rng) {}

  Tensor operator()(const Tensor& contexts) const {
    return logits(hidden(contexts));
  }
};

// Bandit: arm (context + 1) % kArms pays 1.0 (noisily); others pay ~0.1.
float Payout(int context, int arm, Rng& rng) {
  const bool best = arm == (context + 1) % kArms;
  const float base = best ? 1.0f : 0.1f;
  return base + 0.05f * static_cast<float>(rng.NextGaussian());
}

}  // namespace

int main() {
  Rng rng(7);
  Policy policy(rng);
  nn::Adam<Policy> optimizer(0.02f);
  Rng env_rng(99);

  const int batch = 32;
  float running_reward = 0.0f;
  for (int episode = 0; episode < 200; ++episode) {
    // Sample contexts and actions from the current policy.
    std::vector<int> contexts(batch), actions(batch);
    std::vector<float> rewards(batch);
    std::vector<float> context_one_hot(batch * kContexts, 0.0f);
    {
      const Tensor ctx_probe = [&] {
        for (int i = 0; i < batch; ++i) {
          contexts[static_cast<std::size_t>(i)] =
              static_cast<int>(env_rng.NextBelow(kContexts));
          context_one_hot[static_cast<std::size_t>(
              i * kContexts + contexts[static_cast<std::size_t>(i)])] = 1.0f;
        }
        return Tensor::FromVector(Shape({batch, kContexts}),
                                  context_one_hot);
      }();
      const Tensor probs = Softmax(policy(ctx_probe));
      const auto p = probs.ToVector();
      for (int i = 0; i < batch; ++i) {
        // Sample an arm from the categorical distribution.
        float u = env_rng.NextFloat();
        int arm = kArms - 1;
        for (int a = 0; a < kArms; ++a) {
          u -= p[static_cast<std::size_t>(i * kArms + a)];
          if (u <= 0) {
            arm = a;
            break;
          }
        }
        actions[static_cast<std::size_t>(i)] = arm;
        rewards[static_cast<std::size_t>(i)] =
            Payout(contexts[static_cast<std::size_t>(i)], arm, env_rng);
      }
    }

    // REINFORCE with a running baseline: loss = -mean(logpi(a|s) * A).
    float mean_reward = 0.0f;
    for (float r : rewards) mean_reward += r;
    mean_reward /= batch;
    running_reward = episode == 0
                         ? mean_reward
                         : 0.95f * running_reward + 0.05f * mean_reward;

    const Tensor ctx =
        Tensor::FromVector(Shape({batch, kContexts}), context_one_hot);
    const Tensor action_mask = nn::OneHot(actions, kArms, ctx.device());
    std::vector<float> advantages(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      advantages[static_cast<std::size_t>(i)] =
          rewards[static_cast<std::size_t>(i)] - running_reward;
    }
    const Tensor advantage =
        Tensor::FromVector(Shape({batch, 1}), advantages);

    auto [loss, grads] = ad::ValueWithGradient(policy, [&](const Policy& p) {
      const Tensor log_probs = LogSoftmax(p(ctx));
      const Tensor chosen = ReduceSum(log_probs * action_mask, {1},
                                      /*keep_dims=*/true);
      return -ReduceMean(chosen * advantage);
    });
    optimizer.Update(policy, grads);

    if (episode % 40 == 0) {
      std::printf("episode %3d: mean reward %.3f (baseline %.3f), "
                  "surrogate loss % .4f\n",
                  episode, mean_reward, running_reward, loss.ScalarValue());
    }
  }

  // Evaluate: greedy policy accuracy at picking the paying arm.
  int correct = 0;
  for (int c = 0; c < kContexts; ++c) {
    std::vector<float> one_hot(kContexts, 0.0f);
    one_hot[static_cast<std::size_t>(c)] = 1.0f;
    const Tensor probe = Tensor::FromVector(Shape({1, kContexts}), one_hot);
    const int greedy = static_cast<int>(ArgMax(policy(probe), 1).At({0}));
    if (greedy == (c + 1) % kArms) ++correct;
  }
  std::printf("\ngreedy policy picks the paying arm in %d/%d contexts\n",
              correct, kContexts);
  return correct == kContexts ? 0 : 1;
}
