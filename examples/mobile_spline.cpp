// The Table 4 scenario as a runnable example: a spline personalization
// model is pre-trained on "server-side" global data, shipped to a
// "device", and fine-tuned on local data with backtracking line search —
// the same Swift code path for both stages ("the same Swift code defined
// and ran model training in both stages").
//
// The model runs entirely on the dependency-free naive Tensor (§3.1): no
// accelerator runtime, no graph serialization — the configuration the
// paper cross-compiled for ARM Android devices.
#include <cstdio>

#include "nn/datasets.h"
#include "nn/models/spline.h"
#include "nn/optimizers.h"

int main() {
  using namespace s4tf;

  constexpr int kKnots = 16;

  // --- Stage 1: global training (the datacenter side).
  const nn::SplineData global = nn::MakeGlobalSplineData(512, 1);
  const Tensor global_basis = nn::BuildSplineBasis(global.xs, kKnots);
  Rng rng(5);
  nn::SplineModel model(kKnots, rng);
  nn::BacktrackingLineSearch<nn::SplineModel> search;
  auto global_loss = [&](const nn::SplineModel& m) {
    return nn::SplineLoss(m, global_basis, global.targets);
  };
  float loss = global_loss(model).ScalarValue();
  std::printf("global model: initial loss %.5f\n", loss);
  for (int i = 0; i < 50; ++i) loss = search.Step(model, global_loss);
  std::printf("global model: fitted loss  %.5f\n\n", loss);

  // --- Stage 2: on-device personalization (same code, local data only).
  for (std::uint64_t user : {101ull, 202ull, 303ull}) {
    const nn::SplineData personal = nn::MakePersonalSplineData(128, user);
    const Tensor basis = nn::BuildSplineBasis(personal.xs, kKnots);
    nn::SplineModel personalized = model;  // value copy of the global fit
    auto personal_loss = [&](const nn::SplineModel& m) {
      return nn::SplineLoss(m, basis, personal.targets);
    };
    const float before = personal_loss(personalized).ScalarValue();
    float after = before;
    int iterations = 0;
    for (; iterations < 60; ++iterations) {
      const float next = search.Step(personalized, personal_loss);
      if (before > 0 && next > after - 1e-7f) {
        after = next;
        break;
      }
      after = next;
    }
    std::printf(
        "user %llu: personalization loss %.5f -> %.5f in %d line-search "
        "iterations\n",
        static_cast<unsigned long long>(user), before, after, iterations + 1);
  }

  std::printf("\nglobal model is untouched by per-user fine-tuning (value "
              "semantics): loss still %.5f\n",
              global_loss(model).ScalarValue());
  return 0;
}
