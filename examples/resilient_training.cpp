// Resilient data-parallel training: a replica dies mid-run and the
// session recovers without losing the run.
//
// Four simulated replicas train LeNet behind a TrainingSession that
// checkpoints every other step (crash-consistent v2 files: temp write +
// fsync + atomic rename, CRC-guarded). A seeded fault kills rank 2 as it
// enters step 3; its peers' receives time out within their bounded
// budgets, the session backs off, shrinks the world to 3, rebuilds the
// communicator and devices, restores the last durable checkpoint, and
// finishes the run. A clean world-3 run resumed from the same checkpoint
// reproduces the exact same final loss — recovery is a detour, not a
// divergence.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "nn/models/lenet.h"
#include "nn/session.h"
#include "obs/metrics.h"

using namespace s4tf;
using namespace s4tf::nn;

namespace {

constexpr int kReplicas = 4;
constexpr std::int64_t kSteps = 8;
constexpr int kGlobalBatch = 24;  // divides every world size in 1..4

SessionOptions MakeOptions(int replicas, const std::string& dir) {
  SessionOptions options;
  options.replicas = replicas;
  options.checkpoint_dir = dir;
  options.checkpoint_every_steps = 2;
  options.keep_checkpoints = 2;
  options.recovery_backoff = std::chrono::milliseconds(2);
  // Death detection: a peer waiting on a dead rank's chunk gives up
  // after (1 + max_retries) * recv_timeout.
  options.replica.collective.recv_timeout = std::chrono::milliseconds(150);
  options.replica.collective.max_retries = 2;
  return options;
}

float RunOnce(SessionOptions options, const char* label) {
  const auto dataset = SyntheticImageDataset::Mnist(64, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
  TrainingSession<LeNet, SGD<LeNet>> session(model, sgd, options);
  const auto report = session.Run(kSteps, [&](std::int64_t step) {
    return dataset.Batch(static_cast<int>(step), kGlobalBatch,
                         NaiveDevice());
  });
  if (!report.ok()) {
    std::printf("%s: FAILED: %s\n", label, report.status().ToString().c_str());
    return -1.0f;
  }
  std::printf("%s: %lld steps, final world %d, %d recoveries, loss %.6f\n",
              label, static_cast<long long>(report->steps_completed),
              report->world_size, report->recoveries, report->last_loss);
  return report->last_loss;
}

}  // namespace

int main() {
  const std::string faulty_dir = "/tmp/s4tf_resilient_example_faulty";
  const std::string clean_dir = "/tmp/s4tf_resilient_example_clean";
  std::filesystem::remove_all(faulty_dir);
  std::filesystem::remove_all(clean_dir);

  std::printf("resilient LeNet training: %d replicas, global batch %d\n\n",
              kReplicas, kGlobalBatch);

  // The run that takes a casualty: rank 2 dies entering step 3.
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  SessionOptions dying = MakeOptions(kReplicas, faulty_dir);
  dying.kill_rank = 2;
  dying.kill_at_step = 3;
  const float survived_loss = RunOnce(dying, "with replica death ");

  // The reference detour, run explicitly: world 4 cleanly to the last
  // checkpoint before the death, then world 3 from that checkpoint.
  SessionOptions head = MakeOptions(kReplicas, clean_dir);
  head.abort_at_step = 2;  // stop right after the step-2 checkpoint
  RunOnce(head, "clean head (w=4)  ");
  const float reference_loss =
      RunOnce(MakeOptions(kReplicas - 1, clean_dir), "clean resume (w=3)");

  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  std::printf("\nwhat the recovery cost, per the nn.session.* counters:\n");
  for (const char* name :
       {"nn.session.recoveries", "nn.session.world_shrinks",
        "nn.session.backoff_ms", "nn.session.checkpoints_written",
        "nn.session.checkpoints_discarded", "nn.session.resumes",
        "dist.fault.replica_deaths", "dist.recv.timeouts"}) {
    const auto it = delta.find(name);
    std::printf("  %-34s %lld\n", name,
                static_cast<long long>(it == delta.end() ? 0 : it->second));
  }

  std::printf("\nfinal loss with death %.6f vs clean detour %.6f -> %s\n",
              survived_loss, reference_loss,
              survived_loss == reference_loss ? "bit-identical"
                                              : "MISMATCH");
  return survived_loss == reference_loss ? 0 : 1;
}
