// ResNet on synthetic CIFAR-10, trained on the LazyTensor device: the
// paper's Table 3 configuration as a runnable example. Demonstrates that
// the eager-looking training loop is transparently traced, fused, and
// JIT-compiled, with the trace cache hitting on every step after the
// first.
#include <cstdio>

#include "nn/models/resnet.h"
#include "nn/training.h"

int main() {
  using namespace s4tf;

  // A shallow member of the ResNet family keeps this example snappy; pass
  // the depth through ResNetConfig::Cifar(56) for the full Table 3 model.
  const int depth = 14;
  Rng rng(31);
  nn::ResNet model(nn::ResNetConfig::Cifar(depth), rng);
  std::printf("ResNet-%d: %lld parameters, %zu residual blocks\n", depth,
              static_cast<long long>(model.ParameterCount()),
              model.blocks.size());

  LazyBackend backend(LazyOptions{.accelerator = AcceleratorSpec::Gtx1080()});
  nn::MoveModelTo(model, backend.device());

  const auto dataset = nn::SyntheticImageDataset::Cifar10(64, 3);
  nn::SGD<nn::ResNet> optimizer(0.05f, 0.9f);

  const int batch_size = 8;
  for (int step = 0; step < 6; ++step) {
    const nn::LabeledBatch batch =
        dataset.Batch(step, batch_size, backend.device());
    const float loss = nn::TrainStep(
        model, optimizer, [&batch](const nn::ResNet& m) {
          return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
        });
    std::printf(
        "step %d: loss %.4f | traced ops (cum) %6lld | compiles %lld | "
        "cache hits %lld\n",
        step + 1, loss, static_cast<long long>(backend.ops_traced()),
        static_cast<long long>(backend.cache_misses()),
        static_cast<long long>(backend.cache_hits()));
  }

  std::printf(
      "\nsimulated accelerator: %.2f ms busy across %lld fused kernels; "
      "JIT spent %.1f ms once\n",
      backend.device_seconds() * 1e3,
      static_cast<long long>(backend.kernels_launched()),
      backend.compile_seconds() * 1e3);
  std::printf("training accuracy: %.1f%%\n",
              100.0f * nn::Evaluate(model, dataset, batch_size, 4));
  return 0;
}
