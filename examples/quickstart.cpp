// Quickstart: gradients and tensors in sixty lines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Shows the three pillars of the platform in miniature:
//   1. the `gradient(at:in:)` differential operator over plain functions,
//   2. mutable value semantics (copies are independent, updates in place),
//   3. device portability (the same code on naive / eager / lazy devices).
#include <cstdio>

#include "ad/operators.h"
#include "eager/eager_backend.h"
#include "lazy/lazy_tensor.h"
#include "tensor/ops.h"

int main() {
  using namespace s4tf;

  // --- 1. Differentiation. f(x) = sum(x^2 + 3x); df/dx = 2x + 3.
  const Tensor x = Tensor::FromVector(Shape({3}), {1.0f, 2.0f, 3.0f});
  const auto [value, grad] = ad::ValueWithGradient(x, [](const Tensor& t) {
    return ReduceSum(Square(t) + 3.0f * t);
  });
  std::printf("f(x)  = %.1f\n", value.ScalarValue());
  std::printf("df/dx = [%.1f, %.1f, %.1f]   (expect [5, 7, 9])\n\n",
              grad.At({0}), grad.At({1}), grad.At({2}));

  // --- 2. Value semantics: y is a logically independent copy of x.
  Tensor a = Tensor::FromVector(Shape({2}), {1.0f, 2.0f});
  Tensor b = a;              // O(1) copy
  a.SetAt({0}, 100.0f);      // mutation through `a` only
  std::printf("a = [%.0f, %.0f], b = [%.0f, %.0f]   (no spooky action)\n\n",
              a.At({0}), a.At({1}), b.At({0}), b.At({1}));

  // --- 3. One program, three devices.
  auto program = [](const Device& device) {
    const Tensor m =
        Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4}, device);
    return ReduceSum(Relu(MatMul(m, m) - 10.0f)).ScalarValue();
  };
  EagerBackend eager;
  LazyBackend lazy;
  std::printf("naive device : %.1f\n", program(NaiveDevice()));
  std::printf("eager device : %.1f\n", program(eager.device()));
  std::printf("lazy device  : %.1f   (traced, JIT-compiled, then run)\n",
              program(lazy.device()));
  std::printf("lazy backend compiled %lld program(s), fused %lld ops into "
              "%lld kernels\n",
              static_cast<long long>(lazy.cache_misses()),
              static_cast<long long>(lazy.ops_traced()),
              static_cast<long long>(lazy.kernels_launched()));
  return 0;
}
