// Serving demo: a compiled model behind a request API.
//
// Hosts the seeded MLP classifier in the multi-tenant serving runtime
// (src/serve): requests are coalesced by the dynamic batcher into padded
// power-of-two batches, each batch runs through one cached XLA
// executable (compile once at warmup, hit forever after), and overload
// is shed with a clean retryable status instead of unbounded queueing.
//
//   1. Threaded serving: concurrent clients against the real Server —
//      every response is bit-identical to single-sample inference.
//   2. Deterministic overload: the open-loop simulator replays a seeded
//      burst at 3x capacity; its shed/served split and latency
//      percentiles are bit-reproducible on any machine.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "serve/mlp.h"
#include "serve/server.h"
#include "serve/simulator.h"
#include "support/rng.h"

using namespace s4tf;

int main() {
  std::printf("== Multi-tenant serving: dynamic batching over one "
              "compiled executable ==\n\n");

  Rng rng(7);
  const serve::MlpModel model = serve::MlpModel::Create(16, 32, 10, rng);
  serve::XlaServable servable("mlp", model.Fn(), model.sample_shape());
  servable.Warmup();
  std::printf("warmup: compiled %lld executables (padded batch shapes "
              "1, 2, 4, 8)\n\n",
              static_cast<long long>(servable.compiles()));

  // --- 1. Threaded serving with concurrent clients. ---
  serve::BatchingOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.batch_timeout_ns = 100'000;  // 100us coalescing window
  {
    serve::Server server(servable, options);
    constexpr int kClients = 3;
    constexpr int kPerClient = 20;
    std::vector<std::thread> clients;
    std::vector<int> mismatches(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Rng client_rng(100 + static_cast<std::uint64_t>(c));
        for (int i = 0; i < kPerClient; ++i) {
          std::vector<float> data(16);
          client_rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
          const Literal sample =
              Literal::FromVector(model.sample_shape(), std::move(data));
          const auto future = server.Submit(sample);
          if (!future->Wait().ok()) {
            mismatches[static_cast<std::size_t>(c)]++;
            continue;
          }
          // Batched serving must equal single-sample inference, bitwise.
          const Literal expected = model.ReferenceForward(sample);
          const Literal& got = future->output();
          for (std::int64_t k = 0; k < expected.size(); ++k) {
            if (expected.data.data()[k] != got.data.data()[k]) {
              mismatches[static_cast<std::size_t>(c)]++;
              break;
            }
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    server.Shutdown();
    const serve::Server::Stats stats = server.stats();
    int bad = 0;
    for (int m : mismatches) bad += m;
    std::printf("threaded: %lld requests -> %lld responses in %lld "
                "batches; %d output mismatches\n",
                static_cast<long long>(stats.submitted),
                static_cast<long long>(stats.responses),
                static_cast<long long>(stats.batches), bad);
    std::printf("steady-state compiles after warmup: %lld (executable "
                "cache hits: %lld)\n\n",
                static_cast<long long>(servable.compiles() - 4),
                static_cast<long long>(servable.executable_hits()));
  }

  // --- 2. Deterministic overload: seeded burst at 3x capacity. ---
  const double capacity_rps = 8.0 / servable.CostSeconds(8);
  serve::ArrivalProcess process;
  process.seed = 42;
  process.num_requests = 256;
  process.mean_interarrival_ns = 1e9 / (3.0 * capacity_rps);
  serve::SimOptions sim;
  sim.batching = options;
  sim.batching.max_queue = 24;
  const serve::SimResult result = serve::SimulateServing(
      servable, serve::GenerateArrivals(process), sim);
  std::printf("simulated overload (3x capacity, queue bound 24):\n");
  std::printf("  served %lld / shed %lld of %d; %lld batches, queue "
              "high-water %lld\n",
              static_cast<long long>(result.completed),
              static_cast<long long>(result.shed), 256,
              static_cast<long long>(result.batches),
              static_cast<long long>(result.max_queue_depth));
  std::printf("  p50 %.3f ms  p99 %.3f ms  throughput %.0f req/s "
              "(logical clock: bit-identical on any machine)\n",
              result.p50_ms, result.p99_ms, result.throughput_rps);
  return 0;
}
