// Figure 4 visualizer: writes the LazyTensor trace of the LeNet-5 forward
// pass (and, optionally, a full training step) as GraphViz DOT files.
//
//   ./build/examples/lazy_trace_viz [output_dir]
//   dot -Tpng lenet_forward.dot -o lenet_forward.png
#include <cstdio>
#include <fstream>
#include <string>

#include "ad/operators.h"
#include "lazy/lazy_tensor.h"
#include "nn/losses.h"
#include "nn/models/lenet.h"
#include "nn/training.h"

int main(int argc, char** argv) {
  using namespace s4tf;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  LazyBackend backend;
  const Device lazy = backend.device();
  Rng rng(1);
  nn::LeNet model(rng);
  nn::MoveModelTo(model, lazy);

  // Forward pass (the paper's Figure 4).
  const Tensor input = Tensor::Zeros(Shape({1, 28, 28, 1}), lazy);
  const Tensor logits = model(input);
  {
    const std::string path = out_dir + "/lenet_forward.dot";
    std::ofstream out(path);
    out << TraceToDot({logits});
    std::printf("wrote %s (%lld recorded ops)\n", path.c_str(),
                static_cast<long long>(backend.ops_traced()));
  }

  // Full training step: forward + backward + SGD update, one DAG.
  const Tensor labels = nn::OneHot({3}, 10, lazy);
  auto [loss, grads] = ad::ValueWithGradient(
      model, [&](const nn::LeNet& m) {
        return nn::SoftmaxCrossEntropy(m(input), labels);
      });
  std::vector<Tensor> roots = {loss};
  model.VisitWithTangent(grads, [&](Tensor& p, Tensor& g) {
    if (g.shape() == p.shape()) roots.push_back(p - g * 0.1f);
  });
  {
    const std::string path = out_dir + "/lenet_train_step.dot";
    std::ofstream out(path);
    out << TraceToDot(roots);
    std::printf("wrote %s (forward+backward+update DAG)\n", path.c_str());
  }

  std::printf("\nop inventory of the forward trace:\n");
  for (const auto& c : SummarizeTrace({logits})) {
    std::printf("  %-20s x%d\n", OpName(c.kind), c.count);
  }
  return 0;
}
