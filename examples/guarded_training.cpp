// Guarded data-parallel training: a NaN gradient strikes mid-run and the
// session rolls back and skips the poisoned batch.
//
// Two simulated replicas train LeNet behind a TrainingSession with the
// training guard enabled (nn/guard.h): every step each rank scans its
// loss and local gradient buckets for NaN/Inf before the all-reduce
// consumes them, and CRC32 digests of the post-collective buffers are
// exchanged through one extra AllGather so the replicas can vote on
// where a silent corruption came from. A seeded fault injects NaN into
// rank 1's gradients at step 3; the finite sentinel trips, the error is
// attributed to rank 1, the session restores the newest durable
// checkpoint, marks batch 3 poisoned, and resumes — skipping it. A
// clean run that never sees batch 3 at all reproduces the exact same
// final loss: recovery is a detour, not a divergence.
//
// The companion failure mode: run the same corruption with the guard
// OFF, and the NaN sails through the all-reduce into the weights with
// no error at all — the silent poisoning the guard exists to catch.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "nn/models/lenet.h"
#include "nn/session.h"
#include "obs/metrics.h"

using namespace s4tf;
using namespace s4tf::nn;

namespace {

constexpr int kReplicas = 2;
constexpr std::int64_t kSteps = 8;
constexpr std::int64_t kPoisonedStep = 3;
constexpr int kGlobalBatch = 24;

SessionOptions MakeOptions(const std::string& dir) {
  SessionOptions options;
  options.replicas = kReplicas;
  options.checkpoint_dir = dir;
  options.checkpoint_every_steps = 2;
  options.recovery_backoff = std::chrono::milliseconds(2);
  options.replica.guard.enabled = true;  // sentinels + checksum voting
  return options;
}

// One full session from the fixed initialization. `skip_batch` >= 0
// builds the clean detour: the batch schedule a rolled-back run is
// specified to reproduce (the poisoned batch simply never exists).
float RunOnce(SessionOptions options, const char* label,
              std::int64_t skip_batch = -1) {
  const auto dataset = SyntheticImageDataset::Mnist(64, 17);
  Rng init_rng(5);
  LeNet model(init_rng);
  SGD<LeNet> sgd(0.1f, /*momentum=*/0.9f);
  TrainingSession<LeNet, SGD<LeNet>> session(model, sgd, options);
  const std::int64_t total = skip_batch >= 0 ? kSteps - 1 : kSteps;
  const auto report = session.Run(total, [&](std::int64_t step) {
    const std::int64_t batch =
        (skip_batch >= 0 && step >= skip_batch) ? step + 1 : step;
    return dataset.Batch(static_cast<int>(batch), kGlobalBatch,
                         NaiveDevice());
  });
  if (!report.ok()) {
    std::printf("%s: FAILED: %s\n", label, report.status().ToString().c_str());
    return -1.0f;
  }
  std::printf(
      "%s: %lld steps, %d rollback(s), %lld batch(es) skipped, loss %.6f\n",
      label, static_cast<long long>(report->steps_completed),
      report->rollbacks, static_cast<long long>(report->steps_skipped),
      report->last_loss);
  return report->last_loss;
}

}  // namespace

int main() {
  const std::string poisoned_dir = "/tmp/s4tf_guarded_example_poisoned";
  const std::string clean_dir = "/tmp/s4tf_guarded_example_clean";
  std::filesystem::remove_all(poisoned_dir);
  std::filesystem::remove_all(clean_dir);

  std::printf(
      "guarded LeNet training: %d replicas, NaN strikes rank 1 at step %lld\n\n",
      kReplicas, static_cast<long long>(kPoisonedStep));

  // The run that takes the hit: rank 1's gradients go NaN at step 3.
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  SessionOptions poisoned = MakeOptions(poisoned_dir);
  poisoned.corrupt_rank = 1;
  poisoned.corrupt_at_step = kPoisonedStep;
  poisoned.corrupt_kind = dist::CorruptKind::kNaN;
  const float recovered_loss = RunOnce(poisoned, "with NaN strike  ");

  // The reference: a clean run over the detour schedule — every batch
  // except the poisoned one.
  const float detour_loss = RunOnce(MakeOptions(clean_dir),
                                    "clean detour     ",
                                    /*skip_batch=*/kPoisonedStep);

  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);
  std::printf("\nwhat the rollback cost, per the nn.guard.* counters:\n");
  for (const char* name :
       {"nn.guard.trips", "nn.guard.rollbacks", "nn.guard.skipped_steps",
        "nn.guard.scans", "dist.fault.corruptions",
        "nn.session.recoveries", "nn.session.backoff_ms"}) {
    const auto it = delta.find(name);
    std::printf("  %-28s %lld\n", name,
                static_cast<long long>(it == delta.end() ? 0 : it->second));
  }

  std::printf("\nfinal loss with rollback %.6f vs clean detour %.6f -> %s\n",
              recovered_loss, detour_loss,
              recovered_loss == detour_loss ? "bit-identical" : "MISMATCH");
  return recovered_loss == detour_loss ? 0 : 1;
}
