// Synchronous data-parallel LeNet training on a replica group — the
// paper's §5.1.1 / Table 1 setup in miniature.
//
// Four simulated replicas each hold a model copy on their own device,
// compute gradients on their own shard on their own worker thread, and
// all-reduce through a bucketed ring collective with a mild fault plan
// (a few dropped chunks and stragglers per step, recovered by retry).
// Run with S4TF_METRICS=1 to see the dist.* counters — allreduce bytes
// and chunks, plus every injected drop, timeout, and retry.
#include <chrono>
#include <cstdio>

#include "nn/models/lenet.h"
#include "nn/replica_group.h"
#include "obs/metrics.h"

using namespace s4tf;
using namespace s4tf::nn;

int main() {
  constexpr int kReplicas = 4;
  constexpr int kSteps = 6;
  constexpr int kGlobalBatch = 32;

  ReplicaGroupOptions options;
  options.collective.bucket_bytes = 1 << 14;
  options.collective.recv_timeout = std::chrono::milliseconds(2000);
  options.faults.seed = 2021;
  options.faults.drop_probability = 0.05;
  options.faults.straggler_probability = 0.02;
  options.faults.straggler_delay = std::chrono::milliseconds(1);
  options.accelerator = AcceleratorSpec::TpuV3Core();
  ReplicaGroup group(kReplicas, options);

  const auto dataset = SyntheticImageDataset::Mnist(128, 7);
  Rng rng(12);
  LeNet model(rng);
  SGD<LeNet> sgd(0.1f);

  std::printf("data-parallel LeNet: %d replicas, global batch %d\n",
              kReplicas, kGlobalBatch);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  for (int step = 0; step < kSteps; ++step) {
    const LabeledBatch batch =
        dataset.Batch(step, kGlobalBatch, NaiveDevice());
    const float loss =
        group.TrainStep(model, sgd, ShardBatch(batch, kReplicas));
    std::printf("step %d  loss %.4f  wall %.1f ms  replica0 %.1f ms\n", step,
                loss, group.last_step_wall_seconds() * 1e3,
                group.last_step_replica_seconds(0) * 1e3);
  }
  const auto delta =
      obs::MetricsRegistry::Global().Snapshot().CounterDeltaSince(before);

  std::printf("\ncollective traffic over %d steps:\n", kSteps);
  for (const char* name :
       {"dist.allreduce.calls", "dist.allreduce.bytes",
        "dist.allreduce.buckets", "dist.allreduce.chunks",
        "dist.send.messages", "dist.barrier.count",
        "dist.fault.dropped_chunks", "dist.fault.straggler_delays",
        "dist.recv.timeouts", "dist.retry.count"}) {
    const auto it = delta.find(name);
    std::printf("  %-28s %lld\n", name,
                static_cast<long long>(it == delta.end() ? 0 : it->second));
  }
  std::printf("\nper-replica simulated collective time:\n");
  for (int r = 0; r < kReplicas; ++r) {
    std::printf("  replica %d: %.3f ms (sim)\n", r,
                group.accelerator(r)->elapsed_seconds() * 1e3);
  }
  std::printf("\n(set S4TF_METRICS=1 to dump every counter at exit)\n");
  return 0;
}
