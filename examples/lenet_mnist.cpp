// Figures 6 & 7 end-to-end: define LeNet-5 as a value struct and train it
// with the explicit gradient/optimizer loop on a synthetic MNIST stand-in.
//
//   var model = LeNet()
//   let optimizer = SGD(for: model, learningRate: 0.1)
//   for batch in dataset {
//     let gradients = gradient(at: model) { model in
//       softmaxCrossEntropy(logits: model(batch.images),
//                           labels: batch.labels) }
//     optimizer.update(&model, along: gradients)
//   }
#include <cstdio>

#include "nn/models/lenet.h"
#include "nn/training.h"

int main() {
  using namespace s4tf;

  Rng rng(2024);
  nn::LeNet model(rng);  // Figure 6: a struct of layer values

  const auto dataset = nn::SyntheticImageDataset::Mnist(256, 7);
  nn::SGD<nn::LeNet> optimizer(0.05f, /*momentum=*/0.9f);

  std::printf("LeNet-5 on synthetic MNIST (%d examples)\n",
              dataset.num_examples());
  std::printf("initial accuracy: %.1f%%\n\n",
              100.0f * nn::Evaluate(model, dataset, 32, 4));

  const int batch_size = 32;
  for (int epoch = 0; epoch < 4; ++epoch) {
    float epoch_loss = 0.0f;
    const int batches = dataset.NumBatches(batch_size);
    for (int b = 0; b < batches; ++b) {
      const nn::LabeledBatch batch =
          dataset.Batch(b, batch_size, NaiveDevice());
      // Figure 7's loop body, verbatim (in C++ spelling).
      auto [loss, gradients] =
          ad::ValueWithGradient(model, [&batch](const nn::LeNet& m) {
            return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
          });
      optimizer.Update(model, gradients);  // borrows `model` uniquely
      epoch_loss += loss.ScalarValue();
    }
    std::printf("epoch %d: mean loss %.4f, accuracy %.1f%%\n", epoch + 1,
                epoch_loss / static_cast<float>(batches),
                100.0f * nn::Evaluate(model, dataset, 32, 4));
  }

  // Both the model and its gradients were first-class values throughout:
  // snapshot the trained model, keep training, and the snapshot is stable.
  const nn::LeNet snapshot = model;
  const nn::LabeledBatch batch = dataset.Batch(0, 32, NaiveDevice());
  auto [loss, gradients] =
      ad::ValueWithGradient(model, [&batch](const nn::LeNet& m) {
        return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
      });
  optimizer.Update(model, gradients);
  std::printf("\nsnapshot accuracy after further training of the original: "
              "%.1f%% (unchanged value)\n",
              100.0f * nn::Evaluate(snapshot, dataset, 32, 4));
  return 0;
}
