// Ablation: the XLA-program cache and the LazyTensorBarrier (§3.4).
//
// Part 1 — trace cache: runs real LeNet training steps on the lazy device
// and reports, per step, the programs compiled vs reused. Step 1 pays the
// JIT; later steps retrace but hit the cache. A shape change (different
// batch size) forces a recompile, as the paper describes.
//
// Part 2 — barrier placement: without the automatic barrier after the
// optimizer step, the whole training loop unrolls into one ever-growing
// trace whose (re)compilation cost grows with the number of steps.
#include <cstdio>

#include "nn/datasets.h"
#include "report.h"
#include "nn/models/lenet.h"
#include "nn/training.h"

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Ablation: trace cache + barrier placement (LeNet, lazy "
              "device) ==\n\n");

  const auto dataset = nn::SyntheticImageDataset::Mnist(64, 9);

  BenchReport report("ablation_trace_cache");
  report.SetConfig("model", std::string("lenet5"));
  report.SetConfig("dataset", std::string("synthetic_mnist_64"));

  // --- Part 1: cache behaviour across steps and shape changes.
  {
    LazyBackend backend;
    Rng rng(4);
    nn::LeNet model(rng);
    nn::MoveModelTo(model, backend.device());
    nn::SGD<nn::LeNet> sgd(0.05f);

    std::printf("step | batch | compiles (cum) | cache hits (cum) | compile "
                "time (cum ms)\n");
    const std::int64_t batches[] = {16, 16, 16, 8, 8, 16};
    for (int step = 0; step < 6; ++step) {
      const auto batch = dataset.Batch(
          step, static_cast<int>(batches[step]), backend.device());
      nn::TrainStep(model, sgd, [&batch](const nn::LeNet& m) {
        return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
      });
      std::printf("%4d | %5lld | %14lld | %16lld | %18.2f\n", step + 1,
                  static_cast<long long>(batches[step]),
                  static_cast<long long>(backend.cache_misses()),
                  static_cast<long long>(backend.cache_hits()),
                  backend.compile_seconds() * 1e3);
      BenchRow& row = report.AddRow("cache/step=" + FormatInt(step + 1));
      row.SetCounter("batch", batches[step]);
      row.SetCounter("compiles_cum", backend.cache_misses());
      row.SetCounter("cache_hits_cum", backend.cache_hits());
      row.SetValue("cost.compile_ms_cum", backend.compile_seconds() * 1e3);
    }
    std::printf("\n-> steps 2-3 hit the cache; the batch-8 shape at step 4 "
                "compiles a new program (shape-keyed cache), after which "
                "both shapes are cached.\n\n");
  }

  // --- Part 2: barrier vs no barrier (trace growth).
  std::printf("steps without barrier | ops in final trace | ops with "
              "per-step barrier\n");
  for (int steps : {1, 2, 4, 8}) {
    // No barrier: the loop unrolls.
    LazyBackend unbounded;
    std::int64_t unbounded_ops = 0;
    {
      Rng rng(5);
      nn::LeNet model(rng);
      nn::MoveModelTo(model, unbounded.device());
      nn::SGD<nn::LeNet> sgd(0.05f);
      nn::TrainOptions options;
      options.auto_barrier = false;
      for (int s = 0; s < steps; ++s) {
        const auto batch = dataset.Batch(s, 8, unbounded.device());
        auto [loss, grads] = ad::ValueWithGradient(
            model, [&batch](const nn::LeNet& m) {
              return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
            });
        sgd.Update(model, grads);
        (void)loss;  // never observed: the trace keeps growing
      }
      unbounded_ops = unbounded.ops_traced();
    }
    // Barrier: per-step bounded program.
    LazyBackend bounded;
    std::int64_t per_step_ops = 0;
    {
      Rng rng(5);
      nn::LeNet model(rng);
      nn::MoveModelTo(model, bounded.device());
      nn::SGD<nn::LeNet> sgd(0.05f);
      for (int s = 0; s < steps; ++s) {
        const std::int64_t before = bounded.ops_traced();
        const auto batch = dataset.Batch(s, 8, bounded.device());
        nn::TrainStep(model, sgd, [&batch](const nn::LeNet& m) {
          return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
        });
        per_step_ops = bounded.ops_traced() - before;
      }
    }
    std::printf("%21d | %18lld | %12lld (bounded)\n", steps,
                static_cast<long long>(unbounded_ops),
                static_cast<long long>(per_step_ops));
    BenchRow& row = report.AddRow("barrier/steps=" + FormatInt(steps));
    row.SetCounter("ops_without_barrier", unbounded_ops);
    row.SetCounter("ops_per_step_with_barrier", per_step_ops);
  }
  std::printf("\n-> without the training-loop library's automatic "
              "LazyTensorBarrier(), the trace grows linearly with the "
              "number of steps (unbounded JIT input); with it, every step "
              "compiles the same fixed-size program.\n");
  return report.Write() ? 0 : 1;
}
