// Ablation: operation fusion (the §3.3 motivation for LazyTensor), now
// with the compiler-depth axes broken out.
//
// Per traced training-step program, four compile variants are priced on
// the simulated GTX 1080:
//   unfused      — enable_fusion off (eager op-by-op cost shape);
//   elementwise  — fusion on, epilogue fusion + buffer reuse off (the
//                  original pass);
//   epilogue     — elementwise + MatMul/Conv2D epilogue fusion;
//   all          — epilogue + liveness-based buffer reuse (the default).
//
// The micro rows are the exact-gated acceptance checks: an epilogue-fused
// MatMul+bias+ReLU really is ONE kernel (vs 3), strictly cheaper on the
// cost model, with a lower arena footprint than the no-reuse baseline —
// and bitwise-identical outputs for any intra-op thread count. A non-"ok"
// verdict fails the run (exit 1), not just the artifact diff.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "device/sim_accelerator.h"
#include "nn/models/lenet.h"
#include "nn/models/resnet.h"
#include "report.h"
#include "step_program.h"
#include "support/rng.h"
#include "tensor/kernels.h"

namespace s4tf::bench {
namespace {

xla::CompileOptions ElementwiseOnly() {
  xla::CompileOptions options;
  options.enable_epilogue_fusion = false;
  options.enable_buffer_reuse = false;
  return options;
}

xla::CompileOptions EpilogueNoReuse() {
  xla::CompileOptions options;
  options.enable_buffer_reuse = false;
  return options;
}

xla::CompileOptions Unfused() {
  xla::CompileOptions options;
  options.enable_fusion = false;
  return options;
}

double DeviceMs(const xla::Executable& exe) {
  SimAccelerator device(AcceleratorSpec::Gtx1080());
  exe.ChargeTo(device);
  return device.elapsed_seconds() * 1e3;
}

Literal RandomLiteral(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<std::size_t>(shape.NumElements()));
  rng.FillUniform(values.data(), values.size(), -1.0f, 1.0f);
  return Literal::FromVector(shape, std::move(values));
}

// FNV-1a over the output's IEEE-754 bytes: a deterministic fingerprint of
// the exact bits, comparable across machines and thread counts.
std::int64_t BitChecksum(const std::vector<float>& values) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const float v : values) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      hash ^= (bits >> shift) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return static_cast<std::int64_t>(hash & 0x7fffffffffffffffull);
}

void ReportModel(const char* name, const StepProgram& program,
                 BenchReport& report) {
  const auto elementwise =
      xla::Compile(program.module, ElementwiseOnly()).executable;
  const auto epilogue =
      xla::Compile(program.module, EpilogueNoReuse()).executable;
  const auto& all = program.fused;  // default options: epilogue + reuse

  const double unfused_ms = DeviceMs(*program.unfused);
  const double elementwise_ms = DeviceMs(*elementwise);
  const double epilogue_ms = DeviceMs(*epilogue);
  const double all_ms = DeviceMs(*all);
  std::printf(
      "%-28s kernels %5lld -> %5lld -> %5lld   device ms %8.3f -> %8.3f -> "
      "%8.3f -> %8.3f (%.2fx)\n",
      name, static_cast<long long>(program.unfused->kernel_count()),
      static_cast<long long>(elementwise->kernel_count()),
      static_cast<long long>(all->kernel_count()), unfused_ms, elementwise_ms,
      epilogue_ms, all_ms, unfused_ms / all_ms);
  std::printf(
      "%-28s epilogue folded %5lld ops   arena %9lld bytes peak (vs %9lld "
      "unreused)\n",
      "", static_cast<long long>(all->epilogue_folded_ops()),
      static_cast<long long>(all->arena_peak_bytes()),
      static_cast<long long>(all->arena_unreused_bytes()));

  BenchRow& row = report.AddRow(std::string("model/") + name);
  row.SetCounter("kernels_unfused", program.unfused->kernel_count());
  row.SetCounter("kernels_elementwise", elementwise->kernel_count());
  row.SetCounter("kernels_fused", all->kernel_count());
  row.SetCounter("epilogue_folded_ops", all->epilogue_folded_ops());
  row.SetCounter("arena_peak_bytes", all->arena_peak_bytes());
  row.SetCounter("arena_unreused_bytes", all->arena_unreused_bytes());
  row.SetCounter("step.trace_ops", program.trace_ops);
  row.SetCounter("step.hlo_instructions", program.program_instructions);
  row.SetValue("cost.device_ms_unfused", unfused_ms);
  row.SetValue("cost.device_ms_elementwise", elementwise_ms);
  row.SetValue("cost.device_ms_epilogue", epilogue_ms);
  row.SetValue("cost.device_ms_fused", all_ms);
  row.SetValue("fusion_speedup", unfused_ms / all_ms);
  row.SetValue("epilogue_speedup", elementwise_ms / all_ms);
}

// Runs `fused` and `unfused` on `inputs` across thread counts 1/2/4 and
// verifies every output is bitwise-identical to the single-thread unfused
// reference. Returns the reference bits' checksum through *checksum.
bool BitwiseAcrossThreads(const xla::Executable& fused,
                          const xla::Executable& unfused,
                          const std::vector<Literal>& inputs,
                          std::int64_t* checksum) {
  SetIntraOpParallelism(1);
  const std::vector<float> reference =
      unfused.Run(inputs)[0].data.ToVector();
  *checksum = BitChecksum(reference);
  bool ok = true;
  for (const int threads : {1, 2, 4}) {
    SetIntraOpParallelism(threads);
    ok = ok && fused.Run(inputs)[0].data.ToVector() == reference;
    ok = ok && unfused.Run(inputs)[0].data.ToVector() == reference;
  }
  SetIntraOpParallelism(0);
  return ok;
}

// The acceptance micro-row: relu(matmul+bias) (or conv) compiled fused vs
// unfused, with every claim in the row exact-gated.
bool ReportEpilogueMicro(const char* label, xla::HloModule module,
                         const std::vector<Literal>& inputs,
                         BenchReport& report) {
  const auto all = xla::Compile(module).executable;
  const auto unfused = xla::Compile(module, Unfused()).executable;
  // "No reuse" baseline for the arena comparison: same fusion groups, no
  // epilogues, every intermediate materialized and kept.
  const auto no_reuse =
      xla::Compile(module, ElementwiseOnly()).executable;

  std::int64_t checksum = 0;
  const bool bitwise = BitwiseAcrossThreads(*all, *unfused, inputs, &checksum);
  const double fused_ms = DeviceMs(*all);
  const double unfused_ms = DeviceMs(*unfused);
  const bool ok = bitwise && all->kernel_count() == 1 &&
                  unfused->kernel_count() == 3 && fused_ms < unfused_ms &&
                  all->arena_charge_bytes() < no_reuse->arena_charge_bytes();

  std::printf(
      "%-28s kernels %lld -> %lld   device ms %8.4f -> %8.4f   arena %6lld "
      "-> %6lld bytes   bitwise(1/2/4 threads): %s\n",
      label, static_cast<long long>(unfused->kernel_count()),
      static_cast<long long>(all->kernel_count()), unfused_ms, fused_ms,
      static_cast<long long>(no_reuse->arena_charge_bytes()),
      static_cast<long long>(all->arena_charge_bytes()),
      bitwise ? "ok" : "MISMATCH");

  BenchRow& row = report.AddRow(label);
  row.SetCounter("kernels_unfused", unfused->kernel_count());
  row.SetCounter("kernels_fused", all->kernel_count());
  row.SetCounter("epilogue_folded_ops", all->epilogue_folded_ops());
  row.SetCounter("arena_peak_bytes", all->arena_charge_bytes());
  row.SetCounter("arena_no_reuse_bytes", no_reuse->arena_charge_bytes());
  row.SetCounter("output_checksum", checksum);
  row.SetValue("cost.device_ms_fused", fused_ms);
  row.SetValue("cost.device_ms_unfused", unfused_ms);
  row.SetText("bitwise_any_threads", bitwise ? "ok" : "MISMATCH");
  row.SetText("verdict", ok ? "ok" : "FAIL");
  return ok;
}

xla::HloModule MatMulBiasReluModule() {
  xla::HloModule m("matmul_bias_relu");
  const xla::HloId a = m.AddParameter(Shape({8, 24}), 0);
  const xla::HloId b = m.AddParameter(Shape({24, 96}), 1);
  const xla::HloId bias = m.AddParameter(Shape({96}), 2);
  const xla::HloId mm = m.AddInstruction(OpKind::kMatMul, {a, b});
  const xla::HloId add = m.AddInstruction(OpKind::kAdd, {mm, bias});
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {add}));
  return m;
}

xla::HloModule ConvBiasReluModule() {
  xla::HloModule m("conv2d_bias_relu");
  const xla::HloId x = m.AddParameter(Shape({2, 8, 8, 4}), 0);
  const xla::HloId f = m.AddParameter(Shape({3, 3, 4, 96}), 1);
  const xla::HloId bias = m.AddParameter(Shape({96}), 2);
  OpAttrs attrs;
  attrs.stride_h = 1;
  attrs.stride_w = 1;
  attrs.padding = Padding::kSame;
  const xla::HloId conv = m.AddInstruction(OpKind::kConv2D, {x, f}, attrs);
  const xla::HloId add = m.AddInstruction(OpKind::kAdd, {conv, bias});
  m.AddRoot(m.AddInstruction(OpKind::kRelu, {add}));
  return m;
}

// Buffer-reuse micro: a 3-layer MLP chain where only two activations are
// ever live at once, so the arena peaks below the unreused sum even with
// the epilogues folding every relu.
bool ReportArenaMicro(BenchReport& report) {
  xla::HloModule m("mlp_chain");
  const xla::HloId x = m.AddParameter(Shape({32, 64}), 0);
  const xla::HloId w1 = m.AddParameter(Shape({64, 64}), 1);
  const xla::HloId w2 = m.AddParameter(Shape({64, 64}), 2);
  const xla::HloId w3 = m.AddParameter(Shape({64, 64}), 3);
  xla::HloId h = x;
  for (const xla::HloId w : {w1, w2, w3}) {
    h = m.AddInstruction(OpKind::kRelu,
                         {m.AddInstruction(OpKind::kMatMul, {h, w})});
  }
  m.AddRoot(h);

  const auto reuse = xla::Compile(m).executable;
  xla::CompileOptions keep_options;
  keep_options.enable_buffer_reuse = false;
  const auto keep = xla::Compile(m, keep_options).executable;
  const std::vector<Literal> inputs = {
      RandomLiteral(Shape({32, 64}), 91), RandomLiteral(Shape({64, 64}), 92),
      RandomLiteral(Shape({64, 64}), 93), RandomLiteral(Shape({64, 64}), 94)};
  const bool bitwise = reuse->Run(inputs)[0].data.ToVector() ==
                       keep->Run(inputs)[0].data.ToVector();
  const bool ok = bitwise &&
                  reuse->arena_peak_bytes() < reuse->arena_unreused_bytes() &&
                  DeviceMs(*reuse) < DeviceMs(*keep);
  std::printf(
      "%-28s arena %6lld bytes peak vs %6lld unreused (%lld slots), "
      "reuse==keep bitwise: %s\n",
      "arena/mlp_chain", static_cast<long long>(reuse->arena_peak_bytes()),
      static_cast<long long>(reuse->arena_unreused_bytes()),
      static_cast<long long>(xla::PlanBuffers(
                                 reuse->module(),
                                 xla::ComputeEpilogueChains(reuse->module()))
                                 .arena_slots),
      bitwise ? "ok" : "MISMATCH");
  BenchRow& row = report.AddRow("arena/mlp_chain");
  row.SetCounter("arena_peak_bytes", reuse->arena_peak_bytes());
  row.SetCounter("arena_unreused_bytes", reuse->arena_unreused_bytes());
  row.SetValue("cost.device_ms_reuse", DeviceMs(*reuse));
  row.SetValue("cost.device_ms_no_reuse", DeviceMs(*keep));
  row.SetText("verdict", ok ? "ok" : "FAIL");
  return ok;
}

// Tiled-kernel micro: the register-blocked MatMul against a plain serial
// triple loop, bitwise, across thread counts and tile-straddling widths.
bool ReportTilingMicro(BenchReport& report) {
  bool ok = true;
  std::uint64_t combined = 1469598103934665603ull;
  for (const auto& [mm, kk, nn] :
       {std::tuple<std::int64_t, std::int64_t, std::int64_t>{5, 9, 63},
        {7, 16, 64},
        {4, 11, 65},
        {1, 1, 130},
        {6, 13, 127}}) {
    const Literal a = RandomLiteral(Shape({mm, kk}), 101 + nn);
    const Literal b = RandomLiteral(Shape({kk, nn}), 102 + nn);
    const std::vector<float> av = a.data.ToVector();
    const std::vector<float> bv = b.data.ToVector();
    std::vector<float> reference(static_cast<std::size_t>(mm * nn), 0.0f);
    for (std::int64_t i = 0; i < mm; ++i) {
      for (std::int64_t j = 0; j < nn; ++j) {
        float acc = 0.0f;
        for (std::int64_t k = 0; k < kk; ++k) {
          const float x = av[static_cast<std::size_t>(i * kk + k)];
          if (x == 0.0f) continue;
          acc += x * bv[static_cast<std::size_t>(k * nn + j)];
        }
        reference[static_cast<std::size_t>(i * nn + j)] = acc;
      }
    }
    for (const int threads : {1, 2, 4}) {
      SetIntraOpParallelism(threads);
      ok = ok &&
           EvalOpLiteral(OpKind::kMatMul, {a, b}, {}).data.ToVector() ==
               reference;
    }
    SetIntraOpParallelism(0);
    combined ^= static_cast<std::uint64_t>(BitChecksum(reference));
    combined *= 1099511628211ull;
  }
  std::printf("%-28s tiled == serial reference, 5 shapes x {1,2,4} threads: "
              "%s\n",
              "tiling/matmul_tile_sweep", ok ? "ok" : "MISMATCH");
  BenchRow& row = report.AddRow("tiling/matmul_tile_sweep");
  row.SetCounter("output_checksum",
                 static_cast<std::int64_t>(combined & 0x7fffffffffffffffull));
  row.SetText("verdict", ok ? "ok" : "FAIL");
  return ok;
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Ablation: fusion depth (elementwise -> epilogue -> buffer "
              "reuse) on traced training steps ==\n\n");

  BenchReport report("ablation_fusion");
  report.SetConfig("accelerator", std::string("gtx1080_sim"));
  report.SetConfig("variants",
                   std::string("unfused,elementwise,epilogue,all"));

  {
    Rng rng(1);
    const nn::LeNet model(rng);
    ReportModel("LeNet-5 (batch 32)",
                BuildStepProgram(model, Shape({32, 28, 28, 1}), 10, 0.1f),
                report);
  }
  {
    Rng rng(2);
    const nn::ResNet model(nn::ResNetConfig::Cifar(20), rng);
    ReportModel("ResNet-20 (batch 32)",
                BuildStepProgram(model, Shape({32, 32, 32, 3}), 10, 0.1f),
                report);
  }
  {
    Rng rng(3);
    const nn::ResNet model(nn::ResNetConfig::Cifar(56), rng);
    ReportModel("ResNet-56 (batch 128)",
                BuildStepProgram(model, Shape({128, 32, 32, 3}), 10, 0.1f),
                report);
  }

  std::printf("\n-- exact-gated micro rows --\n");
  bool ok = true;
  {
    const std::vector<Literal> inputs = {RandomLiteral(Shape({8, 24}), 71),
                                         RandomLiteral(Shape({24, 96}), 72),
                                         RandomLiteral(Shape({96}), 73)};
    ok &= ReportEpilogueMicro("epilogue/matmul_bias_relu",
                              MatMulBiasReluModule(), inputs, report);
  }
  {
    const std::vector<Literal> inputs = {
        RandomLiteral(Shape({2, 8, 8, 4}), 81),
        RandomLiteral(Shape({3, 3, 4, 96}), 82),
        RandomLiteral(Shape({96}), 83)};
    ok &= ReportEpilogueMicro("epilogue/conv2d_bias_relu",
                              ConvBiasReluModule(), inputs, report);
  }
  ok &= ReportArenaMicro(report);
  ok &= ReportTilingMicro(report);

  std::printf(
      "\nEpilogue fusion folds the bias/activation tail of every dense and "
      "conv layer into\nthe producing kernel (one launch, no intermediate "
      "spills); the buffer planner then\nbounds the surviving intermediates "
      "to the live-set peak. Both are bit-exact: the\nfused kernels evaluate "
      "the same float expressions in the same order as the unfused\n"
      "program, for any thread count.\n");
  if (!ok) std::fprintf(stderr, "ablation_fusion: exact gate FAILED\n");
  return (report.Write() && ok) ? 0 : 1;
}
