// Ablation: operation fusion (the §3.3 motivation for LazyTensor).
//
// Compiles the same traced training-step programs with the fusion pass on
// and off, and prices both on the simulated GTX 1080. Reports kernel-count
// reduction and device-time speedup — the quantity separating Table 3's
// lazy row (1827 ex/s) from its eager row (730 ex/s).
#include <cstdio>

#include "device/sim_accelerator.h"
#include "nn/models/lenet.h"
#include "nn/models/resnet.h"
#include "report.h"
#include "step_program.h"

namespace s4tf::bench {
namespace {

void Report(const char* name, const StepProgram& program,
            BenchReport& report) {
  SimAccelerator fused(AcceleratorSpec::Gtx1080());
  SimAccelerator unfused(AcceleratorSpec::Gtx1080());
  program.fused->ChargeTo(fused);
  program.unfused->ChargeTo(unfused);
  std::printf(
      "%-28s kernels %5lld -> %5lld (%.1fx)   device time %8.3f ms -> %8.3f "
      "ms (%.2fx speedup)\n",
      name, static_cast<long long>(program.unfused->kernel_count()),
      static_cast<long long>(program.fused->kernel_count()),
      static_cast<double>(program.unfused->kernel_count()) /
          static_cast<double>(program.fused->kernel_count()),
      unfused.elapsed_seconds() * 1e3, fused.elapsed_seconds() * 1e3,
      unfused.elapsed_seconds() / fused.elapsed_seconds());
  BenchRow& row = report.AddRow(std::string("model/") + name);
  row.SetCounter("kernels_unfused", program.unfused->kernel_count());
  row.SetCounter("kernels_fused", program.fused->kernel_count());
  row.SetCounter("step.trace_ops", program.trace_ops);
  row.SetCounter("step.hlo_instructions", program.program_instructions);
  row.SetValue("cost.device_ms_unfused", unfused.elapsed_seconds() * 1e3);
  row.SetValue("cost.device_ms_fused", fused.elapsed_seconds() * 1e3);
  row.SetValue("fusion_speedup",
               unfused.elapsed_seconds() / fused.elapsed_seconds());
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Ablation: XLA-style elementwise fusion on traced training "
              "steps ==\n\n");

  BenchReport report("ablation_fusion");
  report.SetConfig("accelerator", std::string("gtx1080_sim"));

  {
    Rng rng(1);
    const nn::LeNet model(rng);
    Report("LeNet-5 (batch 32)",
           BuildStepProgram(model, Shape({32, 28, 28, 1}), 10, 0.1f), report);
  }
  {
    Rng rng(2);
    const nn::ResNet model(nn::ResNetConfig::Cifar(20), rng);
    Report("ResNet-20 (batch 32)",
           BuildStepProgram(model, Shape({32, 32, 32, 3}), 10, 0.1f), report);
  }
  {
    Rng rng(3);
    const nn::ResNet model(nn::ResNetConfig::Cifar(56), rng);
    Report("ResNet-56 (batch 128)",
           BuildStepProgram(model, Shape({128, 32, 32, 3}), 10, 0.1f), report);
  }

  std::printf(
      "\nFusion prices each elementwise cluster as ONE kernel launch with "
      "only external\nmemory traffic; convolutions/matmuls are unaffected, "
      "so conv-heavy models see a\nmodest-but-real win (the lazy-vs-eager "
      "gap in Table 3).\n");
  return report.Write() ? 0 : 1;
}
