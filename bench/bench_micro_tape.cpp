// Microbenchmarks of the AD layers: gradient-tape overhead relative to
// the primal computation (the "efficient gradient" goal: the derivative
// should cost a small constant factor over the function), and the mini-SIL
// synthesized VJP against its interpreter baseline.
#include <benchmark/benchmark.h>

#include "ad/dual.h"
#include "ad/operators.h"
#include "gbench_main.h"
#include "sil/autodiff.h"
#include "sil/interpreter.h"

namespace s4tf {
namespace {

Tensor ChainForward(const Tensor& x, int depth) {
  Tensor h = x;
  for (int i = 0; i < depth; ++i) h = Tanh(h * 1.01f);
  return ReduceSum(h);
}

void BM_TensorChainPrimal(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Tensor x = Tensor::Full(Shape({1024}), 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ChainForward(x, depth).ScalarValue());
  }
}
BENCHMARK(BM_TensorChainPrimal)->Arg(4)->Arg(16)->Arg(64);

void BM_TensorChainGradient(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Tensor x = Tensor::Full(Shape({1024}), 0.5f);
  for (auto _ : state) {
    const auto [value, grad] = ad::ValueWithGradient(
        x, [depth](const Tensor& t) { return ChainForward(t, depth); });
    benchmark::DoNotOptimize(grad.impl().get());
  }
}
BENCHMARK(BM_TensorChainGradient)->Arg(4)->Arg(16)->Arg(64);

sil::Module MakeSilChain(int depth) {
  sil::FunctionBuilder b("chain", 1);
  sil::ValueId v = b.Arg(0);
  for (int i = 0; i < depth; ++i) {
    const sil::ValueId c = b.Const(1.01);
    v = b.Emit(sil::InstKind::kTanh, {b.Emit(sil::InstKind::kMul, {v, c})});
  }
  b.Return(v);
  sil::Module m;
  m.AddFunction(std::move(b).Build());
  return m;
}

void BM_SilInterpret(benchmark::State& state) {
  const sil::Module m = MakeSilChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sil::Interpret(m, "chain", {0.5}).value());
  }
}
BENCHMARK(BM_SilInterpret)->Arg(16)->Arg(128);

void BM_SilVjpSynthesis(benchmark::State& state) {
  // The AOT transformation cost (paid once per function).
  const sil::Module m = MakeSilChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto vjp = sil::SynthesizeVJP(m, "chain");
    benchmark::DoNotOptimize(&vjp);
  }
}
BENCHMARK(BM_SilVjpSynthesis)->Arg(16)->Arg(128);

void BM_SilVjpExecute(benchmark::State& state) {
  const sil::Module m = MakeSilChain(static_cast<int>(state.range(0)));
  const auto vjp = sil::SynthesizeVJP(m, "chain").value();
  for (auto _ : state) {
    auto result = vjp.Run({0.5}).value();
    benchmark::DoNotOptimize(result.pullback(1.0)[0]);
  }
}
BENCHMARK(BM_SilVjpExecute)->Arg(16)->Arg(128);

void BM_DualNumberChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ad::Dual<double> v = ad::Dual<double>::Variable(0.5);
    for (int i = 0; i < depth; ++i) v = tanh(v * ad::Dual<double>(1.01));
    benchmark::DoNotOptimize(v.tangent);
  }
}
BENCHMARK(BM_DualNumberChain)->Arg(16)->Arg(128);

// Deterministic artifact: dispatch counts for primal vs gradient of the
// fixed-depth tensor chain (the tape-overhead factor as an exact integer
// ratio), plus the synthesized-VJP vs interpreter agreement on the SIL
// chain. Wall-clock sweeps stay in the google-benchmark suite.
bool EmitArtifact() {
  using namespace s4tf::bench;
  constexpr int kDepth = 16;
  BenchReport report("micro_tape");
  report.SetConfig("chain_depth", static_cast<std::int64_t>(kDepth));
  report.SetConfig("elements", static_cast<std::int64_t>(1024));

  {
    const Tensor x = Tensor::Full(Shape({1024}), 0.5f);
    MetricsDelta primal;
    const double primal_value =
        static_cast<double>(ChainForward(x, kDepth).ScalarValue());
    primal.Capture();
    MetricsDelta gradient;
    const auto [value, grad] = ad::ValueWithGradient(
        x, [](const Tensor& t) { return ChainForward(t, kDepth); });
    gradient.Capture();
    BenchRow& row = report.AddRow("tensor_chain");
    row.SetCounter("dispatches_primal", primal.KernelDispatches());
    row.SetCounter("dispatches_gradient", gradient.KernelDispatches());
    row.SetCounter("bytes_primal", primal.KernelBytes());
    row.SetCounter("bytes_gradient", gradient.KernelBytes());
    row.SetValue("primal_value", primal_value);
    row.SetValue("gradient_value", static_cast<double>(value.ScalarValue()));
    row.SetValue("tape_dispatch_factor",
                 static_cast<double>(gradient.KernelDispatches()) /
                     static_cast<double>(primal.KernelDispatches()));
    (void)grad;
  }

  {
    const sil::Module m = MakeSilChain(kDepth);
    const double interpreted = sil::Interpret(m, "chain", {0.5}).value();
    const auto vjp = sil::SynthesizeVJP(m, "chain").value();
    const auto result = vjp.Run({0.5}).value();
    BenchRow& row = report.AddRow("sil_chain");
    row.SetValue("interpreted_value", interpreted);
    row.SetValue("vjp_value", result.value);
    row.SetValue("vjp_gradient", result.pullback(1.0)[0]);
    row.SetText("vjp_matches_interpreter",
                interpreted == result.value ? "YES" : "NO");
  }

  return report.Write();
}

}  // namespace
}  // namespace s4tf

S4TF_BENCH_MAIN_WITH_ARTIFACT(s4tf::EmitArtifact)
