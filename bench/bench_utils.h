// Shared helpers for the table-reproduction harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace s4tf::bench {

// Fixed-width table printer so every harness emits rows shaped like the
// paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void PrintHeader() const {
    PrintRule();
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], headers_[i].c_str());
    }
    std::printf("|\n");
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("| %-*s ", widths_[i], cells[i].c_str());
    }
    std::printf("|\n");
  }

  void PrintRule() const {
    for (int w : widths_) {
      std::printf("+");
      for (int i = 0; i < w + 2; ++i) std::printf("-");
    }
    std::printf("+\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline std::string FormatF(double value, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

inline std::string FormatInt(long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace s4tf::bench
