// Shared helpers for the table-reproduction harnesses.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace s4tf::bench {

// Fixed-width table printer so every harness emits rows shaped like the
// paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {}

  void PrintHeader() const {
    PrintRule();
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("| %-*s ", widths_[i], headers_[i].c_str());
    }
    std::printf("|\n");
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("| %-*s ", widths_[i], cells[i].c_str());
    }
    std::printf("|\n");
  }

  void PrintRule() const {
    for (int w : widths_) {
      std::printf("+");
      for (int i = 0; i < w + 2; ++i) std::printf("-");
    }
    std::printf("+\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

inline std::string FormatF(double value, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

inline std::string FormatInt(long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Counter columns for the table harnesses: take a snapshot before the
// measured region and read the deltas after. Unlike wall-clock columns,
// these are deterministic — identical on any machine and thread count —
// so regressions show up as an exact diff, not a noisy percentage (see
// EXPERIMENTS.md, "Counter columns").
class MetricsDelta {
 public:
  MetricsDelta() : before_(obs::MetricsRegistry::Global().Snapshot()) {}

  // Cumulative delta of `name` since construction.
  std::int64_t Counter(const std::string& name) const {
    return obs::MetricsRegistry::Global().Snapshot().counter(name) -
           before_.counter(name);
  }

  std::int64_t KernelDispatches() const {
    return Counter("tensor.kernel.dispatches");
  }
  std::int64_t KernelBytes() const { return Counter("tensor.kernel.bytes"); }
  std::int64_t CacheHits() const { return Counter("xla.cache.hits"); }
  std::int64_t CacheMisses() const { return Counter("xla.cache.misses"); }

  // Restarts the window (e.g. after a warm-up phase).
  void Reset() { before_ = obs::MetricsRegistry::Global().Snapshot(); }

  // The standard counter columns every table harness prints alongside its
  // wall-clock numbers, e.g.
  //   counters: ops=1.2K  bytes=38.1M  cache=3 hit / 1 miss
  std::string Summary() const;

 private:
  obs::MetricsSnapshot before_;
};

inline std::string FormatCount(long long value);

inline std::string MetricsDelta::Summary() const {
  std::string out = "counters: ops=" + FormatCount(KernelDispatches()) +
                    "  bytes=" + FormatCount(KernelBytes()) +
                    "  cache=" + FormatCount(CacheHits()) + " hit / " +
                    FormatCount(CacheMisses()) + " miss";
  return out;
}

// "1.2M"-style rendering so counter columns stay narrow. Exact below 10K.
inline std::string FormatCount(long long value) {
  char buf[64];
  if (value < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lld", value);
  } else if (value < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(value) / 1e3);
  } else if (value < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(value) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(value) / 1e9);
  }
  return buf;
}

}  // namespace s4tf::bench
