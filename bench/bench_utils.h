// Compatibility shim: the shared harness helpers (TablePrinter,
// WallTimer, MetricsDelta, Format*) grew into the bench-reporting library
// in report.h/.cpp, which also emits the machine-readable BENCH_*.json
// artifacts. Existing harness includes keep working through this header.
#pragma once

#include "report.h"
