// Artifact comparison for CI regression gating: exact diff of the
// deterministic sections of two BENCH_*.json artifacts (config, counters,
// values, text), drift *warnings* for the noise-bounded sections (wall_ms
// means, noisy scalars). Used by the bench_compare tool and unit-tested
// against injected regressions in tests/bench.
#pragma once

#include <string>
#include <vector>

#include "support/json.h"

namespace s4tf::bench {

struct CompareOptions {
  // Relative drift of wall-clock means (and noisy scalars) tolerated
  // before a warning: |fresh - base| / max(base, epsilon). CI boxes are
  // noisy; 0.5 means "flag >50% swings", which survives runner churn
  // while still catching order-of-magnitude cliffs.
  double wall_tolerance = 0.5;
  // Wall means below this are all noise — never warned about.
  double wall_floor_ms = 0.5;
  // When true, wall drift beyond tolerance is an error, not a warning.
  bool fail_on_wall = false;
};

struct CompareResult {
  // Exact-diff failures in deterministic sections (fails the gate).
  std::vector<std::string> regressions;
  // Noise-bound exceedances in wall_ms/noisy sections (warn by default).
  std::vector<std::string> warnings;

  bool ok(const CompareOptions& options) const {
    return regressions.empty() &&
           (!options.fail_on_wall || warnings.empty());
  }
};

// Compares a committed baseline artifact against a freshly generated one.
// Both must be parsed BENCH_*.json documents. Every deterministic
// key/value present in either artifact must match exactly; rows are
// matched by label and must appear in the same order.
CompareResult CompareReports(const json::JsonValue& baseline,
                             const json::JsonValue& fresh,
                             const CompareOptions& options = {});

// Loads `path` and parses it as JSON. Returns false (and fills `error`)
// on I/O or parse failure.
bool LoadArtifact(const std::string& path, json::JsonValue* out,
                  std::string* error);

}  // namespace s4tf::bench
