// Seeded deterministic knob autotuner -> BENCH_autotune.json.
//
// Sweeps the runtime's user-facing performance knobs and records the full
// sweep plus the winning setting per knob. Every objective is either a
// cost-model quantity (simulated seconds) or a deterministic counter, so
// the artifact is bit-identical on any machine and thread count, and a
// change in a knob's modeled trade-off (or its default) shows up in CI as
// an exact bench_compare diff:
//
//   * bucket_bytes        — dist::CollectiveOptions gradient bucketing,
//                           priced by the overlapped-all-reduce pipeline
//                           model on the real ResNet-20 gradient size;
//   * S4TF_NUM_THREADS    — intra-op pool size under an Amdahl model of
//                           the traced step's kernel work;
//   * auto_flush_threshold— LazyOptions automatic barrier cutoff, priced
//                           by actually running an unrolled (barrier-free)
//                           LeNet training loop on the lazy backend and
//                           reading its modeled host/device/compile clock;
//   * compiler passes     — xla::CompileOptions toggles, priced as fused
//                           device time plus JIT cost amortized over a
//                           fixed step count.
#include <cstdio>
#include <string>
#include <vector>

#include "dist/communicator.h"
#include "lazy/lazy_tensor.h"
#include "nn/datasets.h"
#include "nn/models/lenet.h"
#include "nn/models/resnet.h"
#include "nn/training.h"
#include "report.h"
#include "step_program.h"

namespace s4tf::bench {
namespace {

constexpr std::uint64_t kSeed = 7;  // every model/datum derives from this

// --- Knob 1: dist::CollectiveOptions::bucket_bytes. ------------------------
//
// Objective: communication seconds *exposed* beyond the backward pass when
// the bucketed all-reduce overlaps it (the quantity bench_table1's overlap
// section measures), on the ResNet-20 gradient buffer across 16 replicas.
std::int64_t TuneBucketBytes(BenchReport& report, const StepProgram& program) {
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  // Backward ~ 2/3 of the step's fused device time (forward + backward
  // shares the step program; the paper's overlap hides comm behind it).
  SimAccelerator device(spec);
  program.fused->ChargeTo(device);
  const double backward_seconds = device.elapsed_seconds() * (2.0 / 3.0);

  std::printf("-- bucket_bytes (gradient %lld bytes, 16 replicas) --\n",
              static_cast<long long>(program.parameter_bytes));
  std::int64_t best = 0;
  double best_seconds = 0.0;
  for (std::int64_t bucket = 1 << 12; bucket <= 1 << 22; bucket <<= 1) {
    const double exposed = OverlappedExposedAllReduceSeconds(
        spec, program.parameter_bytes, bucket, /*replicas=*/16,
        backward_seconds);
    const std::int64_t buckets = dist::NumAllReduceBuckets(
        program.parameter_bytes / 4, bucket);
    std::printf("   bucket_bytes %8lld: %3lld buckets, exposed %9.3f us\n",
                static_cast<long long>(bucket),
                static_cast<long long>(buckets), exposed * 1e6);
    BenchRow& row = report.AddRow("bucket_bytes/" + FormatInt(bucket));
    row.SetCounter("buckets", buckets);
    row.SetValue("cost.exposed_comm_seconds", exposed);
    if (best == 0 || exposed < best_seconds) {
      best = bucket;
      best_seconds = exposed;
    }
  }
  const dist::CollectiveOptions defaults;
  std::printf("   winner: %lld (shipped default: %lld)\n\n",
              static_cast<long long>(best),
              static_cast<long long>(defaults.bucket_bytes));
  return best;
}

// --- Knob 2: S4TF_NUM_THREADS. ---------------------------------------------
//
// Amdahl model over the traced step's kernel inventory: per-kernel launch
// bookkeeping is serial, the roofline work shards across the pool, and
// each extra thread adds a fixed fork/join cost. The constants are modeled
// (documented in EXPERIMENTS.md), so the sweep — and therefore the
// recommended setting — is machine-independent.
int TuneThreads(BenchReport& report, const StepProgram& program) {
  const AcceleratorSpec cpu = AcceleratorSpec::MobileCpu();
  SimAccelerator device(cpu);
  program.unfused->ChargeTo(device);
  const double kernel_work = device.elapsed_seconds();
  const double serial = static_cast<double>(program.unfused->kernel_count()) *
                        cpu.kernel_launch_overhead;
  constexpr double kForkJoinSeconds = 20e-6;  // per thread per step

  std::printf("-- S4TF_NUM_THREADS (modeled step: %.3f ms work, "
              "%.3f ms serial) --\n",
              kernel_work * 1e3, serial * 1e3);
  int best = 1;
  double best_seconds = 0.0;
  for (const int threads : {1, 2, 4, 8, 16}) {
    const double step_seconds =
        serial + kernel_work / threads + kForkJoinSeconds * threads;
    std::printf("   threads %2d: modeled step %9.3f ms\n", threads,
                step_seconds * 1e3);
    BenchRow& row = report.AddRow("threads/" + FormatInt(threads));
    row.SetValue("cost.step_seconds", step_seconds);
    if (best == 1 && threads == 1) best_seconds = step_seconds;
    if (step_seconds < best_seconds) {
      best = threads;
      best_seconds = step_seconds;
    }
  }
  std::printf("   winner: %d\n\n", best);
  return best;
}

// --- Knob 3: LazyOptions::auto_flush_threshold. ----------------------------
//
// Runs a real 8-step LeNet training loop with the automatic per-step
// barrier DISABLED (the pathological unrolled-loop case the auto-flush
// exists for) under each threshold, and reads the backend's modeled
// host/device/compile clock. Too small: every flush compiles a tiny
// program. Zero (off): one enormous end-of-loop JIT. The sweet spot
// bounds both.
std::int64_t TuneAutoFlush(BenchReport& report) {
  const auto dataset = nn::SyntheticImageDataset::Mnist(64, 9);
  std::printf("-- lazy auto_flush_threshold (8 unrolled LeNet steps) --\n");
  std::int64_t best = 0;
  double best_seconds = 0.0;
  bool first = true;
  for (const std::int64_t threshold : {0, 64, 256, 1024, 4096}) {
    LazyOptions options;
    options.auto_flush_threshold = threshold;
    LazyBackend backend(options);
    Rng rng(kSeed);
    nn::LeNet model(rng);
    nn::MoveModelTo(model, backend.device());
    nn::SGD<nn::LeNet> sgd(0.05f);
    // No TrainStep here: the manual ValueWithGradient + Update loop skips
    // the per-step LazyTensorBarrier, i.e. the unrolled-loop hazard.
    float last_loss = 0.0f;
    for (int step = 0; step < 8; ++step) {
      const auto batch = dataset.Batch(step, 8, backend.device());
      auto [loss, grads] =
          ad::ValueWithGradient(model, [&batch](const nn::LeNet& m) {
            return nn::SoftmaxCrossEntropy(m(batch.images), batch.one_hot);
          });
      sgd.Update(model, grads);
      last_loss = loss.ScalarValue();  // observes: forces materialization
    }
    const double total = backend.total_seconds();
    std::printf("   threshold %5lld: modeled %8.2f ms (%lld compiles, "
                "%lld auto-flushes), loss %.5f\n",
                static_cast<long long>(threshold), total * 1e3,
                static_cast<long long>(backend.cache_misses()),
                static_cast<long long>(backend.auto_flushes()), last_loss);
    BenchRow& row = report.AddRow("auto_flush/" + FormatInt(threshold));
    row.SetCounter("compiles", backend.cache_misses());
    row.SetCounter("cache_hits", backend.cache_hits());
    row.SetCounter("auto_flushes", backend.auto_flushes());
    row.SetCounter("ops_traced", backend.ops_traced());
    row.SetValue("cost.total_seconds", total);
    row.SetValue("cost.compile_seconds", backend.compile_seconds());
    row.SetValue("final_loss", static_cast<double>(last_loss));
    if (first || total < best_seconds) {
      best = threshold;
      best_seconds = total;
      first = false;
    }
  }
  std::printf("   winner: %lld\n\n", static_cast<long long>(best));
  return best;
}

// --- Knob 4: xla::CompileOptions pass toggles. -----------------------------
//
// Objective: fused device time on the simulated GTX 1080 plus the JIT cost
// amortized over 100 steps (the shape-keyed cache makes compilation
// one-time per shape).
std::string TunePasses(BenchReport& report) {
  Rng rng(kSeed);
  const nn::LeNet model(rng);
  LazyBackend backend;
  const Device lazy = backend.device();
  nn::LeNet staged = model;
  nn::MoveModelTo(staged, lazy);
  const Tensor images = Tensor::Zeros(Shape({32, 28, 28, 1}), lazy);
  const Tensor one_hot = Tensor::Zeros(Shape({32, 10}), lazy);
  auto [loss, grads] =
      ad::ValueWithGradient(staged, [&](const nn::LeNet& m) {
        return nn::SoftmaxCrossEntropy(m(images), one_hot);
      });
  std::vector<std::shared_ptr<LazyNode>> roots;
  auto node_of = [](const Tensor& t) {
    auto* impl = dynamic_cast<LazyImpl*>(t.impl().get());
    S4TF_CHECK(impl != nullptr);
    return impl->node();
  };
  roots.push_back(node_of(loss));
  staged.VisitWithTangent(grads, [&](Tensor& p, Tensor& g) {
    if (g.shape() == p.shape()) roots.push_back(node_of(p - g * 0.1f));
  });
  const xla::HloModule module = LowerTrace(roots, nullptr);

  struct Combo {
    const char* label;
    bool simplify, cse, dce, fusion, epilogue, reuse;
  };
  const Combo combos[] = {
      {"none", false, false, false, false, false, false},
      {"simplify", true, false, false, false, false, false},
      {"simplify+cse+dce", true, true, true, false, false, false},
      {"fusion_only", false, false, false, true, false, false},
      {"fusion+epilogue", false, false, false, true, true, false},
      {"fusion+epilogue+arena", false, false, false, true, true, true},
      {"all", true, true, true, true, true, true},
  };
  constexpr double kAmortizeSteps = 100.0;

  std::printf("-- compiler passes (LeNet step, %lld raw instructions) --\n",
              static_cast<long long>(module.instruction_count()));
  std::string best;
  double best_seconds = 0.0;
  for (const Combo& combo : combos) {
    xla::CompileOptions options;
    options.enable_algebraic_simplify = combo.simplify;
    options.enable_cse = combo.cse;
    options.enable_dce = combo.dce;
    options.enable_fusion = combo.fusion;
    options.enable_epilogue_fusion = combo.epilogue;
    options.enable_buffer_reuse = combo.reuse;
    const xla::CompileResult compiled = xla::Compile(module, options);
    SimAccelerator device(AcceleratorSpec::Gtx1080());
    compiled.executable->ChargeTo(device);
    const double amortized =
        device.elapsed_seconds() + compiled.compile_seconds / kAmortizeSteps;
    std::printf("   %-18s %4lld kernels, device %8.3f ms, amortized "
                "%8.3f ms/step\n",
                combo.label,
                static_cast<long long>(compiled.executable->kernel_count()),
                device.elapsed_seconds() * 1e3, amortized * 1e3);
    BenchRow& row = report.AddRow(std::string("passes/") + combo.label);
    row.SetCounter("kernels", compiled.executable->kernel_count());
    row.SetCounter("epilogue_folded_ops",
                   compiled.executable->epilogue_folded_ops());
    row.SetCounter("arena_charge_bytes",
                   compiled.executable->arena_charge_bytes());
    row.SetValue("cost.device_seconds", device.elapsed_seconds());
    row.SetValue("cost.compile_seconds", compiled.compile_seconds);
    row.SetValue("cost.amortized_step_seconds", amortized);
    if (best.empty() || amortized < best_seconds) {
      best = combo.label;
      best_seconds = amortized;
    }
  }
  std::printf("   winner: %s\n\n", best.c_str());
  return best;
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Autotune: deterministic sweep of the runtime's "
              "performance knobs ==\n\n");

  BenchReport report("autotune");
  report.SetConfig("seed", static_cast<std::int64_t>(kSeed));
  report.SetConfig("objective", std::string("cost_model"));

  Rng rng(kSeed);
  const nn::ResNet resnet(nn::ResNetConfig::Cifar(20), rng);
  const StepProgram program =
      BuildStepProgram(resnet, Shape({32, 32, 32, 3}), 10, 0.1f);

  const std::int64_t bucket = TuneBucketBytes(report, program);
  const int threads = TuneThreads(report, program);
  const std::int64_t flush = TuneAutoFlush(report);
  const std::string passes = TunePasses(report);

  std::printf("recommended settings:\n");
  std::printf("   dist::CollectiveOptions::bucket_bytes = %lld\n",
              static_cast<long long>(bucket));
  std::printf("   S4TF_NUM_THREADS = %d\n", threads);
  std::printf("   LazyOptions::auto_flush_threshold = %lld\n",
              static_cast<long long>(flush));
  std::printf("   xla::CompileOptions passes = %s\n", passes.c_str());

  BenchRow& winner = report.AddRow("winner");
  winner.SetCounter("bucket_bytes", bucket);
  winner.SetCounter("threads", threads);
  winner.SetCounter("auto_flush_threshold", flush);
  winner.SetText("passes", passes);

  return report.Write() ? 0 : 1;
}
