// bench_compare: CI regression gate over BENCH_*.json artifacts.
//
//   bench_compare <baseline_dir> <fresh_dir> [--wall-tol=0.5] [--strict-wall]
//
// Loads every BENCH_*.json in <baseline_dir> (the committed perf
// trajectory), pairs it with the same-named artifact in <fresh_dir> (the
// just-measured run), and:
//   * FAILS (exit 1) on any exact diff in the deterministic sections —
//     config axes, counter deltas, cost-model seconds, text verdicts —
//     or on a missing/unparseable fresh artifact;
//   * WARNS on wall-clock means (and "noisy" scalars) drifting beyond the
//     noise bound (exit 0 unless --strict-wall).
// Fresh artifacts with no committed baseline are listed as NEW (exit 0):
// commit them to start their trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <string>
#include <vector>

#include "compare.h"

namespace {

std::vector<std::string> ListArtifacts(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 + 6 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  using s4tf::bench::CompareOptions;
  using s4tf::bench::CompareReports;
  using s4tf::bench::CompareResult;
  using s4tf::bench::LoadArtifact;

  std::string baseline_dir, fresh_dir;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--wall-tol=", 0) == 0) {
      options.wall_tolerance = std::atof(arg.c_str() + 11);
    } else if (arg == "--strict-wall") {
      options.fail_on_wall = true;
    } else if (baseline_dir.empty()) {
      baseline_dir = arg;
    } else if (fresh_dir.empty()) {
      fresh_dir = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (baseline_dir.empty() || fresh_dir.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline_dir> <fresh_dir> "
                 "[--wall-tol=FRAC] [--strict-wall]\n");
    return 2;
  }

  const std::vector<std::string> baselines = ListArtifacts(baseline_dir);
  if (baselines.empty()) {
    std::fprintf(stderr, "bench_compare: no BENCH_*.json in %s\n",
                 baseline_dir.c_str());
    return 1;
  }

  int failures = 0;
  int warnings = 0;
  for (const std::string& name : baselines) {
    s4tf::json::JsonValue base, fresh;
    std::string error;
    if (!LoadArtifact(baseline_dir + "/" + name, &base, &error)) {
      std::printf("FAIL  %s: baseline unreadable (%s)\n", name.c_str(),
                  error.c_str());
      ++failures;
      continue;
    }
    if (!LoadArtifact(fresh_dir + "/" + name, &fresh, &error)) {
      std::printf("FAIL  %s: fresh artifact missing or unparseable (%s)\n",
                  name.c_str(), error.c_str());
      ++failures;
      continue;
    }
    const CompareResult result = CompareReports(base, fresh, options);
    for (const std::string& message : result.regressions) {
      std::printf("FAIL  %s\n", message.c_str());
    }
    for (const std::string& message : result.warnings) {
      std::printf("WARN  %s\n", message.c_str());
    }
    if (!result.regressions.empty()) {
      ++failures;
    } else if (!result.warnings.empty()) {
      ++warnings;
      std::printf("warn  %s: deterministic sections identical; wall-clock "
                  "drifted (see above)\n",
                  name.c_str());
    } else {
      std::printf("ok    %s\n", name.c_str());
    }
  }
  for (const std::string& name : ListArtifacts(fresh_dir)) {
    if (std::find(baselines.begin(), baselines.end(), name) ==
        baselines.end()) {
      std::printf("NEW   %s: no committed baseline; commit it to start its "
                  "trajectory\n",
                  name.c_str());
    }
  }

  std::printf("bench_compare: %zu artifacts, %d failing, %d warning\n",
              baselines.size(), failures, warnings);
  if (failures > 0) return 1;
  if (options.fail_on_wall && warnings > 0) return 1;
  return 0;
}
