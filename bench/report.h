// The bench-reporting library: every table/figure harness keeps its text
// table but also records its results into a BenchReport that is written as
// a machine-readable artifact `BENCH_<name>.json` (schema below). The
// committed artifacts at the repo root are the perf trajectory the
// re-anchor loop and CI's bench_compare job diff against.
//
// Schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "env":    { "git": "<git describe>", "threads": N },   // provenance
//     "config": { <workload axes: bucket_bytes, batch, ...> },
//     "rows": [
//       { "label": "<row label>",
//         "counters": { "<metric>": <int64 delta>, ... },    // deterministic
//         "values":   { "<metric>": <double>, ... },         // deterministic
//         "text":     { "<key>": "<value>", ... },           // deterministic
//         "wall_ms":  { "<metric>": {"mean":,"min":,"max":,"reps":} },
//         "noisy":    { "<metric>": <double>, ... } }        // machine-dep.
//     ]
//   }
//
// Determinism contract: "config", "counters", "values", and "text" must be
// bit-identical across machines, reruns, and S4TF_NUM_THREADS settings —
// they hold counter deltas and cost-model arithmetic only, never wall
// clock. bench_compare fails CI on any exact diff in those sections and
// only *warns* on "wall_ms"/"noisy" drift beyond the stated noise bound.
// "env" is provenance and never compared.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace s4tf::bench {

// --- Text-table printing (kept for the human-readable output). -------------

// Fixed-width table printer so every harness emits rows shaped like the
// paper's tables. Rows with more cells than configured widths print the
// overflow cells unpadded instead of reading widths_ out of bounds.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths)
      : headers_(std::move(headers)), widths_(std::move(widths)) {
    assert(headers_.size() == widths_.size());
  }

  void PrintHeader() const {
    PrintRule();
    PrintCells(headers_);
    PrintRule();
  }

  void PrintRow(const std::vector<std::string>& cells) const {
    PrintCells(cells);
  }

  void PrintRule() const {
    for (int w : widths_) {
      std::printf("+");
      for (int i = 0; i < w + 2; ++i) std::printf("-");
    }
    std::printf("+\n");
  }

 private:
  void PrintCells(const std::vector<std::string>& cells) const {
    // Clamp the padded loop to the widths we actually have; any overflow
    // cells still print (unpadded) rather than indexing out of bounds.
    const std::size_t padded = std::min(cells.size(), widths_.size());
    for (std::size_t i = 0; i < padded; ++i) {
      std::printf("| %-*s ", widths_[i], cells[i].c_str());
    }
    for (std::size_t i = padded; i < cells.size(); ++i) {
      std::printf("| %s ", cells[i].c_str());
    }
    std::printf("|\n");
  }

  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

// --- Formatting helpers. ----------------------------------------------------

inline std::string FormatF(double value, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

inline std::string FormatInt(long long value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

// "1.2M"-style rendering so counter columns stay narrow. Exact below 10K.
std::string FormatCount(long long value);

// --- Wall-clock measurement. ------------------------------------------------

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Wall-clock statistics over >= 1 repetitions of a measured region. Wall
// values are machine- and load-dependent: they go into the artifact's
// "wall_ms" section, which bench_compare only warns about.
struct WallStats {
  double mean_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  int reps = 0;

  void AddSample(double ms) {
    if (reps == 0) {
      mean_ms = min_ms = max_ms = ms;
    } else {
      mean_ms = (mean_ms * reps + ms) / (reps + 1);
      min_ms = std::min(min_ms, ms);
      max_ms = std::max(max_ms, ms);
    }
    ++reps;
  }
};

// Runs `fn` `reps` times and collects per-repetition wall-clock stats.
template <typename Fn>
WallStats MeasureWall(int reps, Fn&& fn) {
  WallStats stats;
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    stats.AddSample(timer.Milliseconds());
  }
  return stats;
}

// --- Counter windows. -------------------------------------------------------

// Counter columns for the table harnesses: take a snapshot before the
// measured region and read the deltas after. Unlike wall-clock columns,
// these are deterministic — identical on any machine and thread count —
// so regressions show up as an exact diff, not a noisy percentage (see
// EXPERIMENTS.md, "Counter columns").
//
// Reading a counter takes ONE registry snapshot (mutex + O(n) map build).
// Call Capture() right after the measured region to freeze the "after"
// snapshot: every subsequent Counter()/Summary()/AllDeltas() read then
// reuses that single capture instead of re-walking the registry — which
// both avoids skewing dispatch-heavy windows and makes multi-counter
// read-outs mutually consistent.
class MetricsDelta {
 public:
  MetricsDelta();

  // Freezes the measurement window: reads taken after Capture() reflect
  // the registry exactly as it was at the Capture() call.
  void Capture();

  // Cumulative delta of `name` since construction/Reset. Uses the frozen
  // Capture() snapshot when one exists; otherwise takes one fresh
  // snapshot for this read.
  std::int64_t Counter(const std::string& name) const;

  std::int64_t KernelDispatches() const {
    return Counter("tensor.kernel.dispatches");
  }
  std::int64_t KernelBytes() const { return Counter("tensor.kernel.bytes"); }
  std::int64_t CacheHits() const { return Counter("xla.cache.hits"); }
  std::int64_t CacheMisses() const { return Counter("xla.cache.misses"); }

  // Every non-zero counter delta in the window, keyed by name. Skips
  // ".shards"-suffixed counters, which are legitimately thread-count
  // dependent and therefore outside the determinism contract.
  std::map<std::string, std::int64_t> AllDeltas() const;

  // Restarts the window (e.g. after a warm-up phase) and drops any
  // frozen Capture() snapshot.
  void Reset();

  // The standard counter columns every table harness prints alongside its
  // wall-clock numbers, e.g.
  //   counters: ops=1.2K  bytes=38.1M  cache=3 hit / 1 miss
  // Computed from one snapshot (the Capture() one if frozen).
  std::string Summary() const;

 private:
  // The frozen snapshot, or a fresh one when Capture() was not called.
  obs::MetricsSnapshot After() const;

  obs::MetricsSnapshot before_;
  std::optional<obs::MetricsSnapshot> after_;
};

// --- The JSON artifact. -----------------------------------------------------

// One row of a bench artifact (typically one text-table row).
class BenchRow {
 public:
  explicit BenchRow(std::string label) : label_(std::move(label)) {}

  // Deterministic sections (exact-diffed by bench_compare).
  void SetCounter(const std::string& name, std::int64_t delta) {
    counters_[name] = delta;
  }
  // Copies every non-zero (non-".shards") counter delta from `delta`.
  void SetCounters(const MetricsDelta& delta);
  void SetValue(const std::string& name, double value) {
    values_[name] = value;
  }
  void SetText(const std::string& key, const std::string& value) {
    text_[key] = value;
  }

  // Non-deterministic sections (warn-only in bench_compare).
  void SetWall(const std::string& name, const WallStats& stats) {
    wall_[name] = stats;
  }
  void SetNoisy(const std::string& name, double value) {
    noisy_[name] = value;
  }

  const std::string& label() const { return label_; }

 private:
  friend class BenchReport;
  std::string label_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, double> values_;
  std::map<std::string, std::string> text_;
  std::map<std::string, WallStats> wall_;
  std::map<std::string, double> noisy_;
};

class BenchReport {
 public:
  // `name` identifies the harness ("table1_tpu_scaling"); the artifact is
  // written as BENCH_<name>.json.
  explicit BenchReport(std::string name);

  // Workload axes (deterministic; part of the compared schema).
  void SetConfig(const std::string& key, std::int64_t value);
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, bool value);
  void SetConfig(const std::string& key, double value);

  BenchRow& AddRow(std::string label);

  const std::string& name() const { return name_; }

  // Full artifact JSON (env + noisy sections included).
  std::string ToJson() const;

  // Only the deterministic sections (no env / wall_ms / noisy): the
  // string that must be bit-identical across machines, reruns, and
  // thread counts. Unit-tested in tests/bench.
  std::string DeterministicJson() const;

  // Writes the artifact to `path` with full I/O error checking: on any
  // failed write the partial file is removed, an error is printed to
  // stderr, and false is returned.
  bool WriteTo(const std::string& path) const;

  // Writes BENCH_<name>.json into $S4TF_BENCH_OUT_DIR (default: the
  // current directory). Returns false (after printing to stderr) on
  // failure so harness main()s can propagate a non-zero exit.
  bool Write() const;

  // `git describe` of the source tree (burned in at configure time;
  // "unknown" outside a git checkout).
  static std::string GitDescribe();

 private:
  std::string Serialize(bool deterministic_only) const;

  std::string name_;
  // Config values pre-encoded as JSON literals, ordered by key.
  std::map<std::string, std::string> config_;
  std::vector<BenchRow> rows_;
};

}  // namespace s4tf::bench
