// Ablation: copy-on-write value semantics (§4).
//
// Microbenchmarks the claims behind "large values are copied lazily, upon
// mutation, and only when shared":
//   * copying a large CowArray is O(1);
//   * mutating a uniquely-owned value is in place (no copy);
//   * mutating a shared value pays exactly one deep copy;
//   * the in-place optimizer update (§4.2) vs. the pure-functional
//     rebind that would materialize a second copy of the parameters.
#include <benchmark/benchmark.h>

#include "gbench_main.h"
#include "tensor/ops.h"
#include "vs/cow_array.h"

namespace s4tf {
namespace {

// Deterministic artifact: proves the CoW semantics (O(1) copy, in-place
// unique mutation, exactly-one-copy shared mutation, allocation-free
// optimizer update) on a fixed workload; wall_ms records the timed copy.
bool EmitArtifact() {
  using namespace s4tf::bench;
  constexpr std::size_t kN = 1 << 20;
  BenchReport report("ablation_cow");
  report.SetConfig("elements", static_cast<std::int64_t>(kN));

  {
    BenchRow& row = report.AddRow("copy_semantics");
    const vs::CowArray<float> source(kN, 1.0f);
    vs::CowArray<float> copy = source;
    row.SetText("copy_shares_buffer",
                copy.data() == source.data() ? "YES" : "NO");
    vs::CowArray<float> unique(kN, 1.0f);
    const float* before = unique.data();
    unique.at_mut(0) += 1.0f;
    row.SetText("unique_mutation_in_place",
                unique.data() == before ? "YES" : "NO");
    vs::CowArray<float> shared = source;
    shared.at_mut(0) += 1.0f;
    row.SetText("shared_mutation_copies",
                shared.data() != source.data() ? "YES" : "NO");
    row.SetWall("cow_copy", MeasureWall(5, [&] {
                  vs::CowArray<float> c = source;
                  benchmark::DoNotOptimize(c.data());
                }));
    row.SetWall("deep_copy", MeasureWall(5, [&] {
                  std::vector<float> c(source.data(), source.data() + kN);
                  benchmark::DoNotOptimize(c.data());
                }));
  }

  {
    BenchRow& row = report.AddRow("optimizer_update");
    const Shape shape({static_cast<std::int64_t>(kN)});
    const Tensor grad = Tensor::Full(shape, 1e-6f);
    Tensor in_place = Tensor::Ones(shape);
    MetricsDelta in_place_counters;
    for (int i = 0; i < 8; ++i) in_place.InPlaceAxpy(-0.01f, grad);
    in_place_counters.Capture();
    row.SetCounter("dispatches_in_place_8_steps",
                   in_place_counters.KernelDispatches());
    row.SetCounter("bytes_in_place_8_steps", in_place_counters.KernelBytes());
    Tensor functional = Tensor::Ones(shape);
    MetricsDelta functional_counters;
    for (int i = 0; i < 8; ++i) functional = functional - grad * 0.01f;
    functional_counters.Capture();
    row.SetCounter("dispatches_functional_8_steps",
                   functional_counters.KernelDispatches());
    row.SetCounter("bytes_functional_8_steps",
                   functional_counters.KernelBytes());
    row.SetText("in_place_moves_fewer_bytes",
                in_place_counters.KernelBytes() <
                        functional_counters.KernelBytes()
                    ? "YES"
                    : "NO");
  }

  return report.Write();
}

void BM_CowCopy(benchmark::State& state) {
  const vs::CowArray<float> source(static_cast<std::size_t>(state.range(0)),
                                   1.0f);
  for (auto _ : state) {
    vs::CowArray<float> copy = source;  // O(1) regardless of n
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_CowCopy)->Range(1 << 10, 1 << 22);

void BM_EagerDeepCopy(benchmark::State& state) {
  // The eager-copy strategy other value-semantics languages use.
  const std::vector<float> source(static_cast<std::size_t>(state.range(0)),
                                  1.0f);
  for (auto _ : state) {
    std::vector<float> copy = source;  // O(n)
    benchmark::DoNotOptimize(copy.data());
  }
}
BENCHMARK(BM_EagerDeepCopy)->Range(1 << 10, 1 << 22);

void BM_UniqueMutation(benchmark::State& state) {
  vs::CowArray<float> values(static_cast<std::size_t>(state.range(0)), 1.0f);
  values.mutable_data();
  std::size_t i = 0;
  for (auto _ : state) {
    values.at_mut(i % values.size()) += 1.0f;  // in place, no copy
    ++i;
  }
}
BENCHMARK(BM_UniqueMutation)->Range(1 << 10, 1 << 22);

void BM_SharedMutation(benchmark::State& state) {
  const vs::CowArray<float> source(static_cast<std::size_t>(state.range(0)),
                                   1.0f);
  for (auto _ : state) {
    vs::CowArray<float> shared = source;
    shared.at_mut(0) += 1.0f;  // triggers exactly one deep copy
    benchmark::DoNotOptimize(shared.data());
  }
}
BENCHMARK(BM_SharedMutation)->Range(1 << 10, 1 << 22);

// §4.2: (inout Model, Minibatch) -> Void vs (Model, Minibatch) -> Model.
void BM_OptimizerUpdateInPlace(benchmark::State& state) {
  const Shape shape({state.range(0)});
  Tensor param = Tensor::Ones(shape);
  const Tensor grad = Tensor::Full(shape, 1e-6f);
  for (auto _ : state) {
    param.InPlaceAxpy(-0.01f, grad);  // unique borrow: zero allocations
    benchmark::DoNotOptimize(param.impl().get());
  }
}
BENCHMARK(BM_OptimizerUpdateInPlace)->Range(1 << 10, 1 << 22);

void BM_OptimizerUpdateFunctional(benchmark::State& state) {
  const Shape shape({state.range(0)});
  Tensor param = Tensor::Ones(shape);
  const Tensor grad = Tensor::Full(shape, 1e-6f);
  for (auto _ : state) {
    param = param - grad * 0.01f;  // materializes fresh buffers
    benchmark::DoNotOptimize(param.impl().get());
  }
}
BENCHMARK(BM_OptimizerUpdateFunctional)->Range(1 << 10, 1 << 22);

}  // namespace
}  // namespace s4tf

S4TF_BENCH_MAIN_WITH_ARTIFACT(s4tf::EmitArtifact)
