// Table 4: "On-device training statistics for a personalized spline model
// across four different implementations."
//
//   paper:  platform            time     memory   binary
//           TF Mobile           5926 ms  80.0 MB  6.2 MB
//           TFLite (standard)    266 ms  12.3 MB  1.8 MB
//           TFLite (fused op)     63 ms   6.2 MB  1.8 MB
//           S4TF                 128 ms   4.2 MB  3.6 MB
//   shape:  TF Mobile slower and bigger by an order of magnitude; the
//           fused custom op fastest; S4TF between the two TFLite variants
//           on time and lowest on memory.
//
// Method: all four runtimes (src/frameworks/mobile.*) fine-tune the SAME
// spline personalization model to convergence with the SAME backtracking
// line search. Time is real wall-clock over the real computation
// (interpreter overheads are emulated with calibrated deterministic
// bookkeeping work — see the module header); memory is the tracked
// allocator's peak; binary size uses the documented component model
// (the four stacks share this process, so their sizes cannot be measured
// directly).
#include <cstdio>

#include "frameworks/mobile.h"
#include "report.h"
#include "nn/datasets.h"
#include "nn/models/spline.h"
#include "support/memory_meter.h"

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf(
      "== Table 4: on-device spline personalization across four "
      "implementations ==\n\n");

  constexpr int kSamples = 768;
  constexpr int kKnots = 24;
  constexpr int kMaxIterations = 120;
  constexpr int kRepeats = 3;  // median-free small repeat, report min

  BenchReport report("table4_mobile_spline");
  report.SetConfig("samples", static_cast<std::int64_t>(kSamples));
  report.SetConfig("knots", static_cast<std::int64_t>(kKnots));
  report.SetConfig("max_iterations", static_cast<std::int64_t>(kMaxIterations));

  // Global pre-training happens "server-side"; on-device fine-tuning
  // starts from the global fit (the paper's scenario).
  const nn::SplineData global = nn::MakeGlobalSplineData(kSamples, 1);
  const Tensor basis_tensor = nn::BuildSplineBasis(global.xs, kKnots);
  const Literal basis = basis_tensor.ToLiteral();
  auto warm_start = frameworks::MakeTfLiteFusedRuntime();
  warm_start->Initialize(basis, global.targets.ToVector());
  const frameworks::FitResult global_fit = frameworks::BacktrackingFit(
      *warm_start, std::vector<float>(kKnots, 0.0f), kMaxIterations);
  std::printf("global model fit: loss %.5f after %d iterations\n\n",
              global_fit.final_loss, global_fit.iterations);

  const nn::SplineData personal = nn::MakePersonalSplineData(kSamples, 777);
  const Literal personal_basis =
      nn::BuildSplineBasis(personal.xs, kKnots).ToLiteral();

  struct Row {
    std::string platform;
    WallStats wall;
    double best_ms = 1e30;
    std::int64_t peak_bytes = 0;
    std::int64_t kernel_ops = 0;
    int fit_iterations = 0;
    float final_loss = 0.0f;
  };
  std::vector<Row> rows;

  using Factory = std::unique_ptr<frameworks::SplineRuntime> (*)();
  const Factory factories[] = {
      frameworks::MakeTfMobileLikeRuntime, frameworks::MakeTfLiteLikeRuntime,
      frameworks::MakeTfLiteFusedRuntime, frameworks::MakeS4tfMobileRuntime};

  for (Factory factory : factories) {
    Row row;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      auto runtime = factory();
      row.platform = runtime->name();
      MemoryMeter& meter = MemoryMeter::Global();
      const std::int64_t baseline = meter.current_bytes();
      meter.ResetPeak();
      WallTimer timer;
      MetricsDelta counters;
      runtime->Initialize(personal_basis, personal.targets.ToVector());
      const frameworks::FitResult fit = frameworks::BacktrackingFit(
          *runtime, global_fit.control_points, kMaxIterations);
      const double ms = timer.Milliseconds();
      counters.Capture();
      row.wall.AddSample(ms);
      row.best_ms = std::min(row.best_ms, ms);
      // Deterministic per-run dispatch count; identical across repeats.
      row.kernel_ops = counters.KernelDispatches();
      row.peak_bytes =
          std::max(row.peak_bytes, meter.peak_bytes() - baseline);
      row.fit_iterations = fit.iterations;
      row.final_loss = fit.final_loss;
    }
    rows.push_back(row);
  }

  const auto footprints = frameworks::ModeledBinaryFootprints();
  TablePrinter table({"Platform", "Training time (on device)",
                      "Memory usage", "Binary size (modeled)", "Kernel ops"},
                     {20, 26, 14, 22, 10});
  table.PrintHeader();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.PrintRow({rows[i].platform, FormatF(rows[i].best_ms, 1) + " ms",
                    HumanBytes(rows[i].peak_bytes),
                    HumanBytes(footprints[i].total()),
                    FormatCount(rows[i].kernel_ops)});
    BenchRow& artifact_row = report.AddRow("platform/" + rows[i].platform);
    artifact_row.SetCounter("kernel_dispatches", rows[i].kernel_ops);
    artifact_row.SetCounter("fit_iterations", rows[i].fit_iterations);
    artifact_row.SetCounter("binary_bytes_modeled", footprints[i].total());
    artifact_row.SetValue("final_loss",
                          static_cast<double>(rows[i].final_loss));
    artifact_row.SetWall("fit", rows[i].wall);
    // Peak memory depends on allocator behavior, not on the workload's
    // deterministic counters — record it warn-only.
    artifact_row.SetNoisy("peak_bytes",
                          static_cast<double>(rows[i].peak_bytes));
  }
  table.PrintRule();

  std::printf("\nfinal personalization losses (must agree across stacks):");
  for (const Row& row : rows) std::printf(" %.5f", row.final_loss);
  std::printf("\n\npaper reference: tf-mobile 5926ms/80MB/6.2MB | tflite "
              "266ms/12.3MB/1.8MB |\n                 tflite-fused "
              "63ms/6.2MB/1.8MB | s4tf 128ms/4.2MB/3.6MB\n");

  const bool time_shape = rows[0].best_ms > 4 * rows[1].best_ms &&  // mobile >> lite
                          rows[1].best_ms > rows[3].best_ms &&      // lite > s4tf
                          rows[3].best_ms > rows[2].best_ms;        // s4tf > fused
  const bool memory_shape = rows[0].peak_bytes > 4 * rows[1].peak_bytes &&
                            rows[3].peak_bytes < 2 * rows[2].peak_bytes + (1 << 20);
  std::printf("\ntime shape holds   (mobile >> standard > s4tf > fused): %s\n",
              time_shape ? "YES" : "NO");
  std::printf("memory shape holds (mobile dominates; s4tf lean):        %s\n",
              memory_shape ? "YES" : "NO");
  BenchRow& verdicts = report.AddRow("verdicts");
  verdicts.SetText("time_shape_holds", time_shape ? "YES" : "NO");
  verdicts.SetText("memory_shape_holds", memory_shape ? "YES" : "NO");
  const bool artifact_ok = report.Write();
  return (time_shape && memory_shape && artifact_ok) ? 0 : 1;
}
