#include "report.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

#include "support/json.h"
#include "support/threadpool.h"

namespace s4tf::bench {

namespace {

// Deterministic double rendering: %.17g round-trips every IEEE double
// exactly, so equal doubles serialize to equal text on every platform and
// bench_compare can diff cost-model seconds bit-for-bit.
std::string FormatExact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Wall-clock stats are noise-bounded, not exact: 3 decimals of a
// millisecond is plenty and keeps artifacts readable.
std::string FormatWall(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string Quoted(const std::string& s) {
  return "\"" + json::JsonEscape(s) + "\"";
}

template <typename Map, typename Fn>
void AppendSection(std::string& out, const char* key, const Map& map,
                   Fn&& encode_value, bool& first_section) {
  if (map.empty()) return;
  if (!first_section) out += ",\n";
  first_section = false;
  out += "      ";
  out += Quoted(key);
  out += ": {";
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out += ", ";
    first = false;
    out += Quoted(name);
    out += ": ";
    out += encode_value(value);
  }
  out += "}";
}

}  // namespace

std::string FormatCount(long long value) {
  char buf[64];
  if (value < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lld", value);
  } else if (value < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(value) / 1e3);
  } else if (value < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(value) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fG", static_cast<double>(value) / 1e9);
  }
  return buf;
}

// --- MetricsDelta. ----------------------------------------------------------

MetricsDelta::MetricsDelta()
    : before_(obs::MetricsRegistry::Global().Snapshot()) {}

void MetricsDelta::Capture() {
  after_ = obs::MetricsRegistry::Global().Snapshot();
}

void MetricsDelta::Reset() {
  before_ = obs::MetricsRegistry::Global().Snapshot();
  after_.reset();
}

obs::MetricsSnapshot MetricsDelta::After() const {
  return after_.has_value() ? *after_
                            : obs::MetricsRegistry::Global().Snapshot();
}

std::int64_t MetricsDelta::Counter(const std::string& name) const {
  if (after_.has_value()) {
    return after_->counter(name) - before_.counter(name);
  }
  return obs::MetricsRegistry::Global().Snapshot().counter(name) -
         before_.counter(name);
}

std::map<std::string, std::int64_t> MetricsDelta::AllDeltas() const {
  std::map<std::string, std::int64_t> deltas =
      After().CounterDeltaSince(before_);
  for (auto it = deltas.begin(); it != deltas.end();) {
    const std::string& name = it->first;
    constexpr const char kShards[] = ".shards";
    const bool thread_dependent =
        name.size() >= sizeof(kShards) - 1 &&
        name.compare(name.size() - (sizeof(kShards) - 1),
                     sizeof(kShards) - 1, kShards) == 0;
    it = thread_dependent ? deltas.erase(it) : std::next(it);
  }
  return deltas;
}

std::string MetricsDelta::Summary() const {
  // One snapshot for all four columns: the reads are mutually consistent
  // and the registry is walked once, not four times.
  const obs::MetricsSnapshot after = After();
  auto delta = [&](const char* name) {
    return after.counter(name) - before_.counter(name);
  };
  std::string out =
      "counters: ops=" + FormatCount(delta("tensor.kernel.dispatches")) +
      "  bytes=" + FormatCount(delta("tensor.kernel.bytes")) +
      "  cache=" + FormatCount(delta("xla.cache.hits")) + " hit / " +
      FormatCount(delta("xla.cache.misses")) + " miss";
  return out;
}

// --- BenchRow / BenchReport. ------------------------------------------------

void BenchRow::SetCounters(const MetricsDelta& delta) {
  for (const auto& [name, value] : delta.AllDeltas()) {
    counters_[name] = value;
  }
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::SetConfig(const std::string& key, std::int64_t value) {
  config_[key] = FormatInt(value);
}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  config_[key] = Quoted(value);
}

void BenchReport::SetConfig(const std::string& key, bool value) {
  config_[key] = value ? "true" : "false";
}

void BenchReport::SetConfig(const std::string& key, double value) {
  config_[key] = FormatExact(value);
}

BenchRow& BenchReport::AddRow(std::string label) {
  rows_.emplace_back(BenchRow(std::move(label)));
  return rows_.back();
}

std::string BenchReport::GitDescribe() {
#ifdef S4TF_GIT_DESCRIBE
  return S4TF_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string BenchReport::Serialize(bool deterministic_only) const {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"bench\": " + Quoted(name_);
  if (!deterministic_only) {
    out += ",\n  \"env\": {\"git\": " + Quoted(GitDescribe()) +
           ", \"threads\": " + FormatInt(IntraOpThreads()) + "}";
  }
  out += ",\n  \"config\": {";
  bool first = true;
  for (const auto& [key, encoded] : config_) {
    if (!first) out += ", ";
    first = false;
    out += Quoted(key) + ": " + encoded;
  }
  out += "},\n  \"rows\": [";
  bool first_row = true;
  for (const BenchRow& row : rows_) {
    out += first_row ? "\n" : ",\n";
    first_row = false;
    out += "    {\n      \"label\": " + Quoted(row.label_);
    bool first_section = false;  // label already emitted
    AppendSection(
        out, "counters", row.counters_,
        [](std::int64_t v) { return FormatInt(v); }, first_section);
    AppendSection(
        out, "values", row.values_,
        [](double v) { return FormatExact(v); }, first_section);
    AppendSection(
        out, "text", row.text_,
        [](const std::string& v) { return Quoted(v); }, first_section);
    if (!deterministic_only) {
      AppendSection(
          out, "wall_ms", row.wall_,
          [](const WallStats& w) {
            return "{\"mean\": " + FormatWall(w.mean_ms) +
                   ", \"min\": " + FormatWall(w.min_ms) +
                   ", \"max\": " + FormatWall(w.max_ms) +
                   ", \"reps\": " + FormatInt(w.reps) + "}";
          },
          first_section);
      AppendSection(
          out, "noisy", row.noisy_,
          [](double v) { return FormatExact(v); }, first_section);
    }
    out += "\n    }";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string BenchReport::ToJson() const { return Serialize(false); }

std::string BenchReport::DeterministicJson() const { return Serialize(true); }

bool BenchReport::WriteTo(const std::string& path) const {
  const std::string payload = ToJson();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "s4tf bench: cannot open %s for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  bool ok = std::fputs(payload.c_str(), out) >= 0;
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr,
                 "s4tf bench: failed writing %s (disk full?); removing the "
                 "partial artifact\n",
                 path.c_str());
    struct stat st;
    if (stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      std::remove(path.c_str());
    }
    return false;
  }
  return true;
}

bool BenchReport::Write() const {
  const char* dir = std::getenv("S4TF_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : ".";
  if (path.back() != '/') path += '/';
  path += "BENCH_" + name_ + ".json";
  const bool ok = WriteTo(path);
  if (ok) std::fprintf(stderr, "bench artifact: %s\n", path.c_str());
  return ok;
}

}  // namespace s4tf::bench
