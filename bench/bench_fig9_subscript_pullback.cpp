// Figure 9 / Appendix B: array-subscript differentiation cost.
//
// The paper's claim: the pure-functional pullback of `values[index]` is
// O(n) in the array size (it materializes a one-hot array), while the
// mutable-value-semantics (inout) formulation is O(1). This bench sweeps n
// and reports both; the functional series should grow linearly while the
// inout series stays flat.
#include <benchmark/benchmark.h>

#include "ad/subscript_pullback.h"
#include "gbench_main.h"

namespace s4tf::ad {
namespace {

FloatArray MakeValues(std::size_t n) {
  FloatArray values(n, 0.0f);
  float* data = values.mutable_data();
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<float>(i);
  return values;
}

void BM_FunctionalPullback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FloatArray values = MakeValues(n);
  auto op = MyOpWithFunctionalPullback(values, n / 4, n / 2);
  for (auto _ : state) {
    FloatArray grad = op.pullback(1.0f);  // O(n): allocates + sums arrays
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FunctionalPullback)->RangeMultiplier(4)->Range(64, 1 << 18)
    ->Complexity(benchmark::oN);

void BM_MutablePullback(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FloatArray values = MakeValues(n);
  auto op = MyOpWithMutablePullback(values, n / 4, n / 2);
  FloatArray grad(n, 0.0f);
  grad.mutable_data();  // make unique before timing
  for (auto _ : state) {
    op.pullback(1.0f, grad);  // O(1): two in-place accumulations
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MutablePullback)->RangeMultiplier(4)->Range(64, 1 << 18)
    ->Complexity(benchmark::o1);

// The primal op itself, for the "derivative should cost about as much as
// the function" comparison (the efficient-gradient goal, §4.3).
void BM_PrimalOp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const FloatArray values = MakeValues(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MyOp(values, n / 4, n / 2));
  }
}
BENCHMARK(BM_PrimalOp)->RangeMultiplier(4)->Range(64, 1 << 18);

// Deterministic artifact: both pullback formulations must compute the SAME
// gradient at every swept n; the wall_ms section records the measured
// growth (functional grows ~linearly, mutable stays flat — warn-only).
bool EmitArtifact() {
  using namespace s4tf::bench;
  BenchReport report("fig9_subscript_pullback");
  report.SetConfig("indices", std::string("n/4,n/2"));

  for (const std::size_t n : {std::size_t(64), std::size_t(4096),
                              std::size_t(1) << 18}) {
    const FloatArray values = MakeValues(n);
    auto functional = MyOpWithFunctionalPullback(values, n / 4, n / 2);
    const FloatArray functional_grad = functional.pullback(1.0f);
    auto mutable_op = MyOpWithMutablePullback(values, n / 4, n / 2);
    FloatArray mutable_grad(n, 0.0f);
    mutable_op.pullback(1.0f, mutable_grad);
    bool grads_match = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (functional_grad.data()[i] != mutable_grad.data()[i]) {
        grads_match = false;
        break;
      }
    }
    BenchRow& row = report.AddRow("n=" + FormatInt(static_cast<long long>(n)));
    row.SetValue("primal_value", static_cast<double>(MyOp(values, n / 4, n / 2)));
    row.SetValue("grad_at_n_over_4",
                 static_cast<double>(mutable_grad.data()[n / 4]));
    row.SetText("pullbacks_agree", grads_match ? "YES" : "NO");
    row.SetWall("functional_pullback", MeasureWall(3, [&] {
                  FloatArray g = functional.pullback(1.0f);
                  benchmark::DoNotOptimize(g.data());
                }));
    row.SetWall("mutable_pullback", MeasureWall(3, [&] {
                  mutable_op.pullback(1.0f, mutable_grad);
                  benchmark::DoNotOptimize(mutable_grad.data());
                }));
  }

  return report.Write();
}

}  // namespace
}  // namespace s4tf::ad

S4TF_BENCH_MAIN_WITH_ARTIFACT(s4tf::ad::EmitArtifact)
