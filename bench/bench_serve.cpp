// Serving frontier + overload benchmark -> BENCH_serve.json.
//
// Open-loop simulated serving of the seeded MLP through the XLA servable:
//
//  * Batching frontier: max_batch in {1, 2, 4, 8} under saturating
//    arrivals. The modeled service time of a small MLP is dominated by
//    per-kernel launch overhead, so coalescing 8 requests into one padded
//    executable invocation amortizes the launches nearly 8x: the artifact
//    pins batch8 throughput >= 2x batch1 as a text verdict that
//    bench_compare turns into a hard CI gate.
//  * Overload sweep: arrivals at {0.5, 1, 2, 4}x modeled capacity against
//    the bounded queue; shed/served splits and latency percentiles are
//    exact counters/values diffed against the committed baseline.
//
// Everything in the deterministic sections derives from the logical
// int64-nanosecond clock and cost-model arithmetic — no wall clock, no
// thread-count dependence. A final wall-clock row exercises the real
// threaded Server end-to-end (skipped in artifact-only mode); its numbers
// land in the warn-only sections.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "report.h"
#include "serve/mlp.h"
#include "serve/server.h"
#include "serve/simulator.h"
#include "support/rng.h"

namespace s4tf::bench {
namespace {

constexpr std::uint64_t kModelSeed = 7;
constexpr int kIn = 16;
constexpr int kHidden = 32;
constexpr int kOut = 10;
constexpr int kRequests = 512;  // divisible by every max_batch in the sweep

serve::MlpModel MakeModel() {
  Rng rng(kModelSeed);
  return serve::MlpModel::Create(kIn, kHidden, kOut, rng);
}

struct FrontierPoint {
  int max_batch = 0;
  serve::SimResult result;
  double batch_cost_us = 0.0;
};

FrontierPoint RunFrontier(const serve::MlpModel& model, int max_batch) {
  serve::XlaServableOptions xla_options;
  xla_options.max_batch = max_batch;
  serve::XlaServable servable("mlp", model.Fn(), model.sample_shape(),
                              xla_options);
  servable.Warmup();

  // Saturating arrivals: the whole burst is in the queue at t=0, so every
  // dispatch runs a full batch and throughput measures pure service rate.
  serve::ArrivalProcess process;
  process.num_requests = kRequests;
  process.fixed_interarrival_ns = 0;
  serve::SimOptions options;
  options.batching.max_batch = max_batch;
  options.batching.batch_timeout_ns = 100'000;
  options.batching.max_queue = kRequests;
  options.batching.num_workers = 1;

  FrontierPoint point;
  point.max_batch = max_batch;
  point.result = serve::SimulateServing(
      servable, serve::GenerateArrivals(process), options);
  point.batch_cost_us = servable.CostSeconds(max_batch) * 1e6;
  return point;
}

void ReportFrontierRow(BenchReport& report, const FrontierPoint& point) {
  const serve::SimResult& r = point.result;
  std::printf(
      "frontier max_batch=%d  batches %4lld  batch cost %7.2f us  "
      "throughput %10.0f req/s  p50 %7.3f ms  p99 %7.3f ms\n",
      point.max_batch, static_cast<long long>(r.batches),
      point.batch_cost_us, r.throughput_rps, r.p50_ms, r.p99_ms);
  BenchRow& row =
      report.AddRow("frontier/max_batch=" + std::to_string(point.max_batch));
  row.SetCounter("serve.batches", r.batches);
  row.SetCounter("serve.batch.samples", r.batch_samples);
  row.SetCounter("serve.batch.padding", r.padded_samples);
  row.SetCounter("serve.responses", r.completed);
  row.SetValue("cost.batch_us", point.batch_cost_us);
  row.SetValue("throughput_rps", r.throughput_rps);
  row.SetValue("latency.p50_ms", r.p50_ms);
  row.SetValue("latency.p99_ms", r.p99_ms);
  row.SetValue("latency.mean_ms", r.mean_ms);
}

void ReportOverloadRow(BenchReport& report, serve::Servable& servable,
                       double capacity_rps, double load_factor) {
  serve::ArrivalProcess process;
  process.seed = 99;
  process.num_requests = kRequests;
  process.mean_interarrival_ns = 1e9 / (capacity_rps * load_factor);
  serve::SimOptions options;
  options.batching.max_batch = 8;
  options.batching.batch_timeout_ns = 200'000;
  options.batching.max_queue = 32;
  options.batching.num_workers = 1;
  const serve::SimResult r = serve::SimulateServing(
      servable, serve::GenerateArrivals(process), options);

  char label[64];
  std::snprintf(label, sizeof(label), "overload/load=%.1fx", load_factor);
  std::printf(
      "%-18s served %4lld  shed %4lld  queue high-water %3lld  "
      "p99 %8.3f ms  throughput %10.0f req/s\n",
      label, static_cast<long long>(r.completed),
      static_cast<long long>(r.shed),
      static_cast<long long>(r.max_queue_depth), r.p99_ms, r.throughput_rps);
  BenchRow& row = report.AddRow(label);
  row.SetCounter("serve.requests", static_cast<std::int64_t>(kRequests));
  row.SetCounter("serve.responses", r.completed);
  row.SetCounter("serve.shed", r.shed);
  row.SetCounter("serve.batches", r.batches);
  row.SetCounter("serve.queue_depth.max", r.max_queue_depth);
  row.SetValue("throughput_rps", r.throughput_rps);
  row.SetValue("latency.p50_ms", r.p50_ms);
  row.SetValue("latency.p99_ms", r.p99_ms);
}

// End-to-end wall clock through the real threaded Server (warn-only
// sections; schedule-dependent, so never part of the compared schema).
void ReportThreadedRow(BenchReport& report, const serve::MlpModel& model) {
  serve::XlaServableOptions xla_options;
  serve::XlaServable servable("mlp", model.Fn(), model.sample_shape(),
                              xla_options);
  servable.Warmup();

  std::vector<Literal> samples;
  Rng rng(31);
  for (int i = 0; i < kRequests; ++i) {
    std::vector<float> data(kIn);
    rng.FillUniform(data.data(), data.size(), -1.0f, 1.0f);
    samples.push_back(
        Literal::FromVector(model.sample_shape(), std::move(data)));
  }

  serve::BatchingOptions options;
  options.num_workers = 2;
  options.max_batch = 8;
  options.batch_timeout_ns = 50'000;
  options.max_queue = kRequests;

  BenchRow& row = report.AddRow("threaded/max_batch=8");
  const WallStats wall = MeasureWall(3, [&] {
    serve::Server server(servable, options);
    std::vector<std::shared_ptr<serve::ServeFuture>> futures;
    futures.reserve(samples.size());
    for (const Literal& sample : samples) {
      futures.push_back(server.Submit(sample));
    }
    for (const auto& f : futures) f->Wait();
    server.Shutdown();
  });
  row.SetWall("serve_512_requests", wall);
  row.SetNoisy("wall_throughput_rps",
               static_cast<double>(kRequests) / (wall.mean_ms / 1e3));
  std::printf(
      "threaded max_batch=8  %d requests in %.2f ms mean "
      "(~%.0f req/s wall)\n",
      kRequests, wall.mean_ms,
      static_cast<double>(kRequests) / (wall.mean_ms / 1e3));
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Serving: dynamic batching frontier + overload sweep ==\n\n");

  BenchReport report("serve");
  report.SetConfig("model", std::string("mlp"));
  report.SetConfig("model.seed", static_cast<std::int64_t>(kModelSeed));
  report.SetConfig("model.input", static_cast<std::int64_t>(kIn));
  report.SetConfig("model.hidden", static_cast<std::int64_t>(kHidden));
  report.SetConfig("model.output", static_cast<std::int64_t>(kOut));
  report.SetConfig("requests", static_cast<std::int64_t>(kRequests));
  report.SetConfig("accelerator", std::string("gtx1080_sim"));

  const serve::MlpModel model = MakeModel();

  double batch1_rps = 0.0, batch8_rps = 0.0;
  for (int max_batch : {1, 2, 4, 8}) {
    const FrontierPoint point = RunFrontier(model, max_batch);
    ReportFrontierRow(report, point);
    if (max_batch == 1) batch1_rps = point.result.throughput_rps;
    if (max_batch == 8) batch8_rps = point.result.throughput_rps;
  }

  // The CI-gated claim: dynamic batching at 8 buys >= 2x the throughput
  // of unbatched serving. Committed as a text verdict so any regression
  // (cost-model drift, batching bug, cache thrash) trips bench_compare.
  const double speedup = batch8_rps / batch1_rps;
  std::printf("\nbatch8/batch1 throughput: %.2fx (gate: >= 2x)\n\n", speedup);
  {
    BenchRow& row = report.AddRow("gate/batching_speedup");
    row.SetValue("batch8_over_batch1", speedup);
    row.SetText("verdict", speedup >= 2.0 ? "pass" : "fail");
  }

  {
    // Overload sweep at max_batch 8: capacity = batch size / batch cost.
    serve::XlaServableOptions xla_options;
    serve::XlaServable servable("mlp", model.Fn(), model.sample_shape(),
                                xla_options);
    servable.Warmup();
    const double capacity_rps = 8.0 / servable.CostSeconds(8);
    report.SetConfig("capacity_rps", capacity_rps);
    for (double load : {0.5, 1.0, 2.0, 4.0}) {
      ReportOverloadRow(report, servable, capacity_rps, load);
    }
  }

  if (std::getenv("S4TF_BENCH_ARTIFACT_ONLY") == nullptr) {
    std::printf("\n");
    ReportThreadedRow(report, model);
  }

  return report.Write() ? 0 : 1;
}
