// Table 1: "Swift for TensorFlow training performance for ResNet-50 on
// ImageNet on TPUv3 clusters."
//
//   paper:  16 cores: 78.1% acc, 189 min, 10164 ex/s, 635.25 ex/s/core
//           32 cores: 77.7% acc,  96 min, 20015 ex/s, 625.47 ex/s/core
//          128 cores: 77.8% acc,  25 min, 77726 ex/s, 607.23 ex/s/core
//   shape:  per-accelerator throughput largely flat while scaling 16->128
//           cores (a few percent lost to the synchronous all-reduce), and
//           validation accuracy independent of cluster size.
//
// Method: the S4TF LazyTensor strategy prices one per-core SGD step
// (traced at the per-core batch and compiled by the XLA-like JIT), then a
// synchronous data-parallel step on N simulated TPUv3 cores adds the ring
// all-reduce of the gradients. The accuracy column is *measured* by
// actually training the scaled ResNet on the synthetic ImageNet stand-in
// (same model/data for every row — data parallelism does not change the
// math, which is why the paper's accuracies match across cluster sizes).
#include <cstdio>

#include "device/sim_accelerator.h"
#include "report.h"
#include "frameworks/profiles.h"
#include "nn/models/lenet.h"
#include "nn/models/resnet.h"
#include "nn/replica_group.h"
#include "nn/training.h"
#include "step_program.h"

namespace s4tf::bench {
namespace {

constexpr std::int64_t kPerCoreBatch = 32;
constexpr double kImageNetEpochExamples = 1.28e6;

// Real (wall-clock) training of the scaled model on synthetic data to
// produce the accuracy column.
float MeasureAccuracy() {
  Rng rng(11);
  nn::ResNet model(nn::ResNetConfig::ImageNetScaled(1, 8, 10), rng);
  // High-noise variant so the accuracy column is not a trivial 100%.
  const nn::SyntheticImageDataset dataset(Shape({16, 16, 3}), 10, 96, 5,
                                          /*noise=*/1.6f);
  nn::SGD<nn::ResNet> sgd(0.08f, 0.9f);
  for (int epoch = 0; epoch < 4; ++epoch) {
    nn::TrainEpoch(model, sgd, dataset, /*batch_size=*/8);
  }
  return nn::Evaluate(model, dataset, 8, 6);
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf(
      "== Table 1: S4TF ResNet-50-class training on simulated TPUv3 "
      "clusters ==\n\n");

  BenchReport report("table1_tpu_scaling");
  report.SetConfig("per_core_batch", kPerCoreBatch);
  report.SetConfig("model", std::string("resnet50_imagenet_scaled"));

  Rng rng(3);
  const nn::ResNet model(nn::ResNetConfig::ImageNetScaled(2, 16, 100), rng);
  const StepProgram program =
      BuildStepProgram(model, Shape({kPerCoreBatch, 32, 32, 3}), 100, 0.1f);

  const frameworks::FrameworkProfile profile =
      frameworks::Table2S4tfProfile();
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  SimAccelerator device(spec);
  program.fused->ChargeTo(device);
  const double device_seconds =
      device.elapsed_seconds() / profile.device_efficiency;
  const double host_seconds =
      static_cast<double>(program.trace_ops) * profile.per_op_host_seconds;

  std::printf("accuracy run (real training on synthetic stand-in data)...\n");
  WallTimer acc_timer;
  MetricsDelta counters;
  const float accuracy = MeasureAccuracy();
  counters.Capture();  // freeze the window before reading it out
  std::printf("measured accuracy: %.1f%%  (in %.1f s wall)\n%s\n\n",
              100.0f * accuracy, acc_timer.Seconds(),
              counters.Summary().c_str());
  {
    BenchRow& row = report.AddRow("accuracy_run");
    row.SetCounters(counters);
    row.SetValue("accuracy_top1", static_cast<double>(accuracy));
    WallStats acc_wall;
    acc_wall.AddSample(acc_timer.Milliseconds());
    row.SetWall("train_4_epochs", acc_wall);
    row.SetValue("step_program.trace_ops",
                 static_cast<double>(program.trace_ops));
    row.SetValue("step_program.parameter_bytes",
                 static_cast<double>(program.parameter_bytes));
    row.SetValue("cost.device_step_seconds", device_seconds);
    row.SetValue("cost.host_trace_seconds", host_seconds);
  }

  TablePrinter table({"# Cores", "Accuracy (top-1)", "Training time",
                      "Throughput (ex/s)", "Per-core (ex/s/core)"},
                     {8, 17, 16, 18, 20});
  table.PrintHeader();

  double per_core_16 = 0.0, per_core_128 = 0.0;
  for (int cores : {16, 32, 128}) {
    const double allreduce =
        AllReduceSeconds(spec, program.parameter_bytes, cores);
    // Tracing of the next step overlaps device execution (see Table 2
    // harness); the synchronous all-reduce does not overlap.
    const double step_seconds =
        std::max(host_seconds, device_seconds) + allreduce;
    const double throughput =
        static_cast<double>(cores * kPerCoreBatch) / step_seconds;
    const double per_core = throughput / cores;
    const double minutes =
        90.0 * kImageNetEpochExamples / throughput / 60.0;
    if (cores == 16) per_core_16 = per_core;
    if (cores == 128) per_core_128 = per_core;
    table.PrintRow({FormatInt(cores),
                    FormatF(100.0f * accuracy, 1) + "%",
                    FormatF(minutes, 0) + " minutes",
                    FormatF(throughput, 0), FormatF(per_core, 2)});
    // Everything here is cost-model arithmetic: fully deterministic.
    BenchRow& row = report.AddRow("scaling/cores=" + FormatInt(cores));
    row.SetValue("cost.allreduce_seconds", allreduce);
    row.SetValue("cost.step_seconds", step_seconds);
    row.SetValue("throughput_ex_per_s", throughput);
    row.SetValue("per_core_ex_per_s", per_core);
    row.SetValue("training_minutes", minutes);
  }
  table.PrintRule();

  std::printf(
      "\npaper reference:  per-core throughput 635.25 (16) -> 625.47 (32) "
      "-> 607.23 (128): ~4%% decay\n");
  const double decay = 1.0 - per_core_128 / per_core_16;
  std::printf("measured decay 16->128 cores: %.1f%%\n", 100.0 * decay);
  const bool shape_holds = decay > 0.0 && decay < 0.15;
  std::printf("shape holds (flat scaling, small sync cost): %s\n",
              shape_holds ? "YES" : "NO");

  // -- Communication/computation overlap (cost model) ----------------------
  // ReplicaGroup now hands gradient buckets to the communicator as the
  // reverse sweep finalizes them, so early buckets' ring time hides
  // behind the remaining backward compute. Both columns price the same
  // per-bucket ring transfers; only the schedule differs. The backward
  // pass is ~2/3 of device step time (forward 1x, backward 2x).
  std::printf(
      "\n== Exposed gradient-communication time: synchronous vs overlapped "
      "(simulated TPUv3) ==\n\n");
  const std::int64_t bucket_bytes = dist::CollectiveOptions{}.bucket_bytes;
  report.SetConfig("bucket_bytes", bucket_bytes);
  const double backward_seconds = device_seconds * 2.0 / 3.0;
  TablePrinter overlap_table({"# Cores", "Sync comm (ms)",
                              "Overlap exposed (ms)", "Hidden (%)",
                              "Strictly lower"},
                             {8, 15, 21, 11, 15});
  overlap_table.PrintHeader();
  bool overlap_wins = true;
  for (int cores : {2, 16, 32, 128}) {
    double sync_comm = 0.0;
    for (std::int64_t off = 0; off < program.parameter_bytes;
         off += bucket_bytes) {
      sync_comm += AllReduceSeconds(
          spec, std::min<std::int64_t>(bucket_bytes,
                                       program.parameter_bytes - off),
          cores);
    }
    const double exposed = OverlappedExposedAllReduceSeconds(
        spec, program.parameter_bytes, bucket_bytes, cores,
        backward_seconds);
    const bool lower = exposed < sync_comm;
    overlap_wins = overlap_wins && lower;
    overlap_table.PrintRow(
        {FormatInt(cores), FormatF(sync_comm * 1e3, 3),
         FormatF(exposed * 1e3, 3),
         FormatF(100.0 * (1.0 - exposed / sync_comm), 1),
         lower ? "YES" : "NO"});
    BenchRow& row = report.AddRow("overlap/cores=" + FormatInt(cores));
    row.SetValue("cost.sync_comm_seconds", sync_comm);
    row.SetValue("cost.overlap_exposed_seconds", exposed);
    row.SetText("exposed_strictly_lower", lower ? "YES" : "NO");
  }
  overlap_table.PrintRule();
  std::printf("overlap exposed < sync comm for every world size >= 2: %s\n",
              overlap_wins ? "YES" : "NO");

  // -- Measured replica runtime --------------------------------------------
  // The analytic rows above price the collective; this section *runs* it:
  // ReplicaGroup trains LeNet with per-replica worker threads and the
  // bucketed ring all-reduce, reporting real per-replica wall-clock and
  // the collective traffic counters, plus each replica's simulated ring
  // cost on TPUv3 cores. (Wall-clock speedups need a multi-core host.)
  std::printf(
      "\n== Measured in-process replica runtime (LeNet, global batch 32) "
      "==\n\n");
  TablePrinter replica_table(
      {"Replicas", "Overlap", "Loss", "Step wall (ms)", "Replica0 (ms)",
       "Allreduce MB", "Chunks", "Early bkts", "Sim collective (ms)"},
      {9, 8, 9, 15, 14, 13, 9, 11, 20});
  replica_table.PrintHeader();
  bool modes_match = true;
  for (int replicas : {1, 2, 4, 8}) {
    float mode_loss[2] = {0.0f, 0.0f};
    for (int mode = 0; mode < 2; ++mode) {
      const bool overlap_on = mode == 1;
      nn::ReplicaGroupOptions options;
      options.accelerator = spec;
      options.overlap = overlap_on;
      nn::ReplicaGroup group(replicas, options);
      const auto dataset = nn::SyntheticImageDataset::Mnist(64, 7);
      Rng lenet_rng(5);
      nn::LeNet lenet(lenet_rng);
      nn::SGD<nn::LeNet> lenet_sgd(0.1f);
      MetricsDelta dist_counters;
      float loss = 0.0f;
      WallStats step_wall, replica0_wall;
      constexpr int kMeasuredSteps = 3;
      for (int step = 0; step < kMeasuredSteps; ++step) {
        const nn::LabeledBatch batch =
            dataset.Batch(step, 32, NaiveDevice());
        loss = group.TrainStep(lenet, lenet_sgd,
                               nn::ShardBatch(batch, replicas));
        step_wall.AddSample(group.last_step_wall_seconds() * 1e3);
        replica0_wall.AddSample(group.last_step_replica_seconds(0) * 1e3);
      }
      dist_counters.Capture();
      mode_loss[mode] = loss;
      const double wall_ms = step_wall.mean_ms * kMeasuredSteps;
      const double replica0_ms = replica0_wall.mean_ms * kMeasuredSteps;
      replica_table.PrintRow(
          {FormatInt(replicas), overlap_on ? "on" : "off",
           FormatF(loss, 4), FormatF(wall_ms / kMeasuredSteps, 1),
           FormatF(replica0_ms / kMeasuredSteps, 1),
           FormatF(static_cast<double>(
                       dist_counters.Counter("dist.allreduce.bytes")) /
                       1e6,
                   2),
           FormatInt(dist_counters.Counter("dist.allreduce.chunks")),
           FormatInt(dist_counters.Counter("dist.overlap.buckets.early")),
           FormatF(group.accelerator(0)->elapsed_seconds() * 1e3, 3)});
      BenchRow& row =
          report.AddRow("replica/world=" + FormatInt(replicas) +
                        "/overlap=" + (overlap_on ? "on" : "off"));
      row.SetCounters(dist_counters);
      row.SetValue("loss", static_cast<double>(loss));
      row.SetValue("cost.sim_collective_seconds",
                   group.accelerator(0)->elapsed_seconds());
      row.SetWall("train_step", step_wall);
      row.SetWall("replica0_step", replica0_wall);
    }
    modes_match = modes_match && mode_loss[0] == mode_loss[1];
  }
  replica_table.PrintRule();
  std::printf("overlap on/off losses bit-identical at every world size: %s\n",
              modes_match ? "YES" : "NO");

  // -- Hierarchical topology at world 16-256 (cost model) ------------------
  // A flat ring pays 2(N-1) latency hops; with 8 cores per host, the
  // intra-host tree + inter-host ring replaces that with
  // 2*ceil(log2(8)) fast local rounds plus a ring over N/8 hosts —
  // which is what keeps per-core throughput credible at world 64-256.
  std::printf(
      "\n== Hierarchical vs flat all-reduce, world 16-256 (simulated "
      "TPUv3, 8 cores/host) ==\n\n");
  const CommTopology hier_topology{/*replicas_per_host=*/8};
  report.SetConfig("replicas_per_host",
                   static_cast<std::int64_t>(hier_topology.replicas_per_host));
  TablePrinter hier_table({"# Cores", "Flat ring (ms)", "Hierarchical (ms)",
                           "Speedup", "Hier wins"},
                          {8, 15, 18, 9, 10});
  hier_table.PrintHeader();
  bool hierarchy_wins = true;
  for (int cores : {16, 64, 128, 256}) {
    const double flat =
        AllReduceSeconds(spec, program.parameter_bytes, cores);
    const double hier = HierarchicalAllReduceSeconds(
        spec, program.parameter_bytes, cores, hier_topology);
    const bool wins = hier < flat;
    if (cores >= 64) hierarchy_wins = hierarchy_wins && wins;
    hier_table.PrintRow({FormatInt(cores), FormatF(flat * 1e3, 3),
                         FormatF(hier * 1e3, 3),
                         FormatF(flat / hier, 2) + "x",
                         wins ? "YES" : "NO"});
    // Pure cost-model arithmetic: exact-gated in the artifact.
    BenchRow& row = report.AddRow("hierarchical/cores=" + FormatInt(cores));
    row.SetValue("cost.flat_allreduce_seconds", flat);
    row.SetValue("cost.hierarchical_allreduce_seconds", hier);
    row.SetValue("cost.reduce_scatter_seconds",
                 ReduceScatterSeconds(spec, program.parameter_bytes, cores));
    row.SetValue("cost.all_gather_seconds",
                 AllGatherSeconds(spec, program.parameter_bytes, cores));
    row.SetText("hierarchical_faster", wins ? "YES" : "NO");
  }
  hier_table.PrintRule();
  std::printf("hierarchical beats the flat ring at world >= 64: %s\n",
              hierarchy_wins ? "YES" : "NO");

  // -- ZeRO-style sharded optimizer state (measured) -----------------------
  // Runs the sharded TrainStep for real: gradients reduce-scatter, each
  // rank's Adam copy updates only its owned slot range, parameters
  // all-gather. The bitwise column checks sharded == replicated weights
  // and loss after two steps; the state column is each rank's measured
  // optimizer-state footprint (the ZeRO ~1/world memory claim).
  std::printf(
      "\n== ZeRO sharded optimizer state: LeNet + Adam, 2 steps, "
      "replicated vs sharded ==\n\n");
  TablePrinter zero_table({"Replicas", "Mode", "Loss", "State/rank (KB)",
                           "RS MB", "AG MB", "Bitwise =="},
                          {9, 11, 9, 17, 9, 9, 11});
  zero_table.PrintHeader();
  bool sharded_matches = true;
  bool state_shrinks = true;
  for (int replicas : {1, 2, 4, 8}) {
    float zero_loss[2] = {0.0f, 0.0f};
    std::vector<std::vector<float>> zero_params[2];
    std::int64_t state_per_rank[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      const bool sharded_on = mode == 1;
      nn::ReplicaGroupOptions options;
      options.sharded = sharded_on;
      nn::ReplicaGroup group(replicas, options);
      const auto dataset = nn::SyntheticImageDataset::Mnist(64, 7);
      Rng lenet_rng(5);
      nn::LeNet lenet(lenet_rng);
      nn::Adam<nn::LeNet> adam(0.01f);
      MetricsDelta zero_counters;
      float loss = 0.0f;
      for (int step = 0; step < 2; ++step) {
        const nn::LabeledBatch batch = dataset.Batch(step, 32, NaiveDevice());
        loss = group.TrainStep(lenet, adam, nn::ShardBatch(batch, replicas));
      }
      zero_counters.Capture();
      zero_loss[mode] = loss;
      lenet.VisitParameters([&](const Tensor& p) {
        zero_params[mode].push_back(p.ToVector());
      });
      if (sharded_on) {
        for (int r = 0; r < replicas; ++r) {
          state_per_rank[mode] =
              std::max(state_per_rank[mode], group.zero_opt_state_bytes(r));
        }
      } else {
        state_per_rank[mode] = nn::OptimizerStateBytes(adam);
      }
      zero_table.PrintRow(
          {FormatInt(replicas), sharded_on ? "sharded" : "replicated",
           FormatF(loss, 4),
           FormatF(static_cast<double>(state_per_rank[mode]) / 1024.0, 1),
           FormatF(static_cast<double>(zero_counters.Counter(
                       "dist.reduce_scatter.bytes")) /
                       1e6,
                   2),
           FormatF(static_cast<double>(
                       zero_counters.Counter("dist.all_gather.bytes")) /
                       1e6,
                   2),
           sharded_on ? (zero_params[1] == zero_params[0] &&
                                 zero_loss[1] == zero_loss[0]
                             ? "YES"
                             : "NO")
                      : "-"});
      // Losses, per-rank state bytes, and the RS/AG traffic counters are
      // logical quantities — deterministic, hence exact-gated.
      BenchRow& row =
          report.AddRow("zero/world=" + FormatInt(replicas) + "/mode=" +
                        (sharded_on ? "sharded" : "replicated"));
      row.SetCounters(zero_counters);
      row.SetValue("loss", static_cast<double>(loss));
      row.SetValue("opt_state_bytes_per_rank",
                   static_cast<double>(state_per_rank[mode]));
    }
    sharded_matches = sharded_matches &&
                      zero_params[1] == zero_params[0] &&
                      zero_loss[1] == zero_loss[0];
    if (replicas >= 2) {
      state_shrinks =
          state_shrinks && state_per_rank[1] < state_per_rank[0];
    }
  }
  zero_table.PrintRule();
  std::printf(
      "sharded == replicated bitwise at every world size: %s\n"
      "per-rank optimizer state shrinks for world >= 2: %s\n",
      sharded_matches ? "YES" : "NO", state_shrinks ? "YES" : "NO");

  BenchRow& verdicts = report.AddRow("verdicts");
  verdicts.SetText("shape_holds", shape_holds ? "YES" : "NO");
  verdicts.SetText("overlap_wins", overlap_wins ? "YES" : "NO");
  verdicts.SetText("modes_match", modes_match ? "YES" : "NO");
  verdicts.SetText("hierarchy_wins", hierarchy_wins ? "YES" : "NO");
  verdicts.SetText("sharded_matches", sharded_matches ? "YES" : "NO");
  verdicts.SetText("state_shrinks", state_shrinks ? "YES" : "NO");
  const bool artifact_ok = report.Write();
  return (shape_holds && overlap_wins && modes_match && hierarchy_wins &&
          sharded_matches && state_shrinks && artifact_ok)
             ? 0
             : 1;
}
