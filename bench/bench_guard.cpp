// Training-guard bench -> BENCH_guard.json.
//
// Pins the guard layer's contract as exact CI gates (bench_compare diffs
// every deterministic section bit-for-bit):
//
//   * collectives/*: the collective-sequence cost of enabling the guard
//     (one extra AllGather per replicated step, two per sharded step) —
//     any accidental change to the per-step collective count is a
//     schema-level regression, not noise.
//   * clean/guard_on: a healthy guarded run is bitwise-identical to the
//     guard-off run (text verdict), with the exact nn.guard.* counter
//     deltas (scans per step follow the bucket geometry; zero trips).
//   * recover/<kind>: a seeded NaN / Inf / bit flip at step 3 of 6 is
//     detected, rolled back, and skipped, and the recovered weights are
//     bitwise-equal to the clean detour that never saw batch 3 (text
//     verdict + exact trip/rollback/skip counter equalities).
//
// Everything compared derives from logical counters and bit-exact float
// comparisons — no wall clock, no thread-count dependence. The wall_ms
// section (warn-only) records the guard's real overhead per step.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nn/models/lenet.h"
#include "nn/optimizers.h"
#include "nn/session.h"
#include "nn/training.h"
#include "report.h"

namespace s4tf::bench {
namespace {

constexpr int kWorld = 2;
constexpr int kGlobalBatch = 24;
constexpr std::int64_t kTotalSteps = 6;
constexpr std::int64_t kCorruptStep = 3;

struct GuardRunResult {
  nn::SessionReport report;
  std::vector<std::vector<float>> params;
  bool ok = false;
};

// One full in-memory session (no checkpoint directory: recovery falls
// back to the Run-entry baseline, which keeps the bench filesystem-free)
// from the fixed initialization. `skip_batch` >= 0 builds the clean
// detour reference a recovered run must reproduce bitwise.
GuardRunResult RunGuarded(nn::SessionOptions options,
                          std::int64_t total_steps,
                          std::int64_t skip_batch = -1) {
  const auto dataset = nn::SyntheticImageDataset::Mnist(48, 17);
  Rng init_rng(5);
  nn::LeNet model(init_rng);
  nn::SGD<nn::LeNet> sgd(0.1f, /*momentum=*/0.9f);
  Rng data_rng(11);
  nn::TrainingSession<nn::LeNet, nn::SGD<nn::LeNet>> session(
      model, sgd, std::move(options), &data_rng);
  auto report = session.Run(total_steps, [&](std::int64_t step) {
    const std::int64_t batch_index =
        (skip_batch >= 0 && step >= skip_batch) ? step + 1 : step;
    return dataset.Batch(static_cast<int>(batch_index), kGlobalBatch,
                         NaiveDevice());
  });
  GuardRunResult result;
  result.ok = report.ok();
  if (report.ok()) result.report = *report;
  model.VisitParameters(
      [&](const Tensor& p) { result.params.push_back(p.ToVector()); });
  return result;
}

nn::SessionOptions BaseOptions(bool guard) {
  nn::SessionOptions options;
  options.replicas = kWorld;
  options.recovery_backoff = std::chrono::milliseconds(1);
  options.sleep_fn = [](std::chrono::milliseconds) {};  // no real sleeps
  options.replica.guard.enabled = guard;
  return options;
}

const char* Verdict(bool pass) { return pass ? "pass" : "fail"; }

bool EmitArtifact() {
  std::printf("== Guard: numerical fault tolerance gates ==\n\n");
  BenchReport report("guard");
  report.SetConfig("model", std::string("lenet"));
  report.SetConfig("world", static_cast<std::int64_t>(kWorld));
  report.SetConfig("global_batch", static_cast<std::int64_t>(kGlobalBatch));
  report.SetConfig("total_steps", kTotalSteps);
  report.SetConfig("corrupt_step", kCorruptStep);

  // --- Collective-sequence cost of the guard. ---------------------------
  for (const bool sharded : {false, true}) {
    nn::ReplicaGroupOptions off;
    off.sharded = sharded;
    nn::ReplicaGroupOptions on = off;
    on.guard.enabled = true;
    BenchRow& row =
        report.AddRow(std::string("collectives/") +
                      (sharded ? "sharded" : "replicated"));
    row.SetCounter("per_step_guard_off",
                   nn::internal::CollectivesPerStep(off));
    row.SetCounter("per_step_guard_on",
                   nn::internal::CollectivesPerStep(on));
    std::printf("collectives per %s step: %d -> %d with guard\n",
                sharded ? "sharded" : "replicated",
                nn::internal::CollectivesPerStep(off),
                nn::internal::CollectivesPerStep(on));
  }

  // --- Clean guarded run == guard-off run, bitwise. ---------------------
  const GuardRunResult guard_off = RunGuarded(BaseOptions(false), kTotalSteps);
  if (!guard_off.ok) return false;
  {
    MetricsDelta delta;
    const GuardRunResult guard_on =
        RunGuarded(BaseOptions(true), kTotalSteps);
    delta.Capture();
    if (!guard_on.ok) return false;
    const bool match = guard_on.params == guard_off.params &&
                       guard_on.report.last_loss ==
                           guard_off.report.last_loss;
    BenchRow& row = report.AddRow("clean/guard_on");
    row.SetCounter("nn.guard.scans", delta.Counter("nn.guard.scans"));
    row.SetCounter("nn.guard.trips", delta.Counter("nn.guard.trips"));
    row.SetText("bitwise_equal_to_guard_off", Verdict(match));
    std::printf("clean guarded run vs guard-off: %s (%lld scans)\n",
                Verdict(match),
                static_cast<long long>(delta.Counter("nn.guard.scans")));
  }

  // --- Detection + rollback-and-skip per corruption kind. ---------------
  // The detour reference: 5 clean steps over batches {0,1,2,4,5} — with
  // no durable store the rollback restores the Run-entry baseline and
  // re-walks from step 0, so the poisoned batch simply never trains.
  const GuardRunResult detour =
      RunGuarded(BaseOptions(false), kTotalSteps - 1,
                 /*skip_batch=*/kCorruptStep);
  if (!detour.ok) return false;
  struct Kind {
    const char* label;
    dist::CorruptKind kind;
  };
  const Kind kinds[] = {
      {"nan", dist::CorruptKind::kNaN},
      {"inf", dist::CorruptKind::kInf},
      {"bitflip", dist::CorruptKind::kBitflip},
  };
  for (const Kind& kind : kinds) {
    for (const bool sharded : {false, true}) {
      MetricsDelta delta;
      nn::SessionOptions options = BaseOptions(true);
      options.replica.sharded = sharded;
      options.corrupt_rank = 1;
      options.corrupt_at_step = kCorruptStep;
      options.corrupt_kind = kind.kind;
      const GuardRunResult recovered = RunGuarded(options, kTotalSteps);
      delta.Capture();
      if (!recovered.ok) return false;
      const bool match = recovered.params == detour.params;
      BenchRow& row = report.AddRow(
          std::string("recover/") + kind.label +
          (sharded ? "_sharded" : "_replicated"));
      row.SetCounter("nn.guard.trips", delta.Counter("nn.guard.trips"));
      row.SetCounter("nn.guard.rollbacks",
                     delta.Counter("nn.guard.rollbacks"));
      row.SetCounter("nn.guard.skipped_steps",
                     delta.Counter("nn.guard.skipped_steps"));
      row.SetCounter("nn.guard.corrupt_votes",
                     delta.Counter("nn.guard.corrupt_votes"));
      row.SetCounter("dist.fault.corruptions",
                     delta.Counter("dist.fault.corruptions"));
      row.SetCounter("steps_skipped", recovered.report.steps_skipped);
      row.SetText("bitwise_equal_to_detour", Verdict(match));
      std::printf("recover %s (%s): %s\n", kind.label,
                  sharded ? "sharded" : "replicated", Verdict(match));
    }
  }

  // --- Real guard overhead (warn-only wall clock). ----------------------
  if (std::getenv("S4TF_BENCH_ARTIFACT_ONLY") == nullptr) {
    BenchRow& row = report.AddRow("wall/step_overhead");
    row.SetWall("guard_off_run_ms", MeasureWall(3, [&] {
                  RunGuarded(BaseOptions(false), kTotalSteps);
                }));
    row.SetWall("guard_on_run_ms", MeasureWall(3, [&] {
                  RunGuarded(BaseOptions(true), kTotalSteps);
                }));
  }

  std::printf("\n");
  return report.Write();
}

}  // namespace
}  // namespace s4tf::bench

int main() { return s4tf::bench::EmitArtifact() ? 0 : 1; }
