// Builds the complete SGD training-step program for a model at a given
// batch shape, without executing any numerics.
//
// This is how the table harnesses simulate paper-scale workloads: the
// gradient tape runs over *lazy* tensors, so the full forward + backward +
// update computation is recorded as a trace, lowered to the HLO-like IR,
// and compiled — all shape-driven, no floating-point work. The resulting
// executables carry the exact per-kernel flop/byte costs of the real
// program at the real batch size, which the simulated accelerator then
// prices. Numeric correctness of the very same pipeline is covered by the
// test suite at small shapes (tests/frameworks, tests/lazy, tests/nn).
#pragma once

#include <memory>

#include "ad/operators.h"
#include "lazy/lazy_tensor.h"
#include "nn/losses.h"
#include "nn/training.h"
#include "xla/compiler.h"

namespace s4tf::bench {

struct StepProgram {
  std::shared_ptr<xla::Executable> fused;    // XLA-style compilation
  std::shared_ptr<xla::Executable> unfused;  // eager op-by-op cost shape
  // The optimizer-input module, kept so ablations can recompile the same
  // program under other pass combinations (epilogue off, reuse off, ...).
  xla::HloModule module;
  std::int64_t trace_ops = 0;        // host ops recorded per retrace
  double compile_seconds = 0.0;      // modeled JIT cost (fused program)
  std::int64_t parameter_count = 0;  // model parameters (elements)
  std::int64_t parameter_bytes = 0;  // gradient bytes per all-reduce
  std::int64_t program_instructions = 0;
};

template <ad::DifferentiableStruct M>
StepProgram BuildStepProgram(const M& model, const Shape& image_batch_shape,
                             int num_classes, float learning_rate) {
  LazyBackend backend;
  const Device lazy = backend.device();

  M staged = model;
  nn::MoveModelTo(staged, lazy);
  const Tensor images = Tensor::Zeros(image_batch_shape, lazy);
  const Tensor one_hot =
      Tensor::Zeros(Shape({image_batch_shape.dim(0), num_classes}), lazy);

  auto [loss, grads] = ad::ValueWithGradient(staged, [&](const M& m) {
    return nn::SoftmaxCrossEntropy(m(images), one_hot);
  });

  StepProgram program;
  std::vector<Tensor> new_weights;
  staged.VisitWithTangent(grads, [&](Tensor& p, Tensor& g) {
    program.parameter_count += p.NumElements();
    if (g.shape() == p.shape()) {
      new_weights.push_back(p - g * learning_rate);
    } else {
      new_weights.push_back(p);
    }
  });
  program.parameter_bytes = program.parameter_count * 4;

  std::vector<std::shared_ptr<LazyNode>> roots;
  auto node_of = [](const Tensor& t) {
    auto* impl = dynamic_cast<LazyImpl*>(t.impl().get());
    S4TF_CHECK(impl != nullptr);
    return impl->node();
  };
  roots.push_back(node_of(loss));
  for (const Tensor& w : new_weights) roots.push_back(node_of(w));

  const xla::HloModule module = LowerTrace(roots, nullptr);
  program.module = module;
  program.trace_ops = backend.ops_traced();
  program.program_instructions = module.instruction_count();

  xla::CompileOptions fused_options;
  const xla::CompileResult fused = xla::Compile(module, fused_options);
  program.fused = fused.executable;
  program.compile_seconds = fused.compile_seconds;

  xla::CompileOptions unfused_options;
  unfused_options.enable_fusion = false;
  program.unfused = xla::Compile(module, unfused_options).executable;
  return program;
}

}  // namespace s4tf::bench
