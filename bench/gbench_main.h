// Replacement for BENCHMARK_MAIN() in harnesses that also emit a
// machine-readable BENCH_*.json artifact.
//
// The artifact emitter runs FIRST and on a fixed, seeded workload — its
// deterministic sections (counter deltas, modeled costs) must not depend
// on google-benchmark's adaptive iteration counts. The full benchmark
// suite then runs as before, unless S4TF_BENCH_ARTIFACT_ONLY is set to a
// non-zero value (how CI and tools/refresh_bench_artifacts.sh regenerate
// artifacts without paying for the full timing sweeps).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "report.h"

namespace s4tf::bench {

inline bool ArtifactOnlyRun() {
  const char* value = std::getenv("S4TF_BENCH_ARTIFACT_ONLY");
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

}  // namespace s4tf::bench

// `emit_artifact` is a callable returning bool (false = artifact write
// failed, propagated as a non-zero exit so CI notices).
#define S4TF_BENCH_MAIN_WITH_ARTIFACT(emit_artifact)                       \
  int main(int argc, char** argv) {                                        \
    const bool artifact_ok = (emit_artifact)();                            \
    if (!s4tf::bench::ArtifactOnlyRun()) {                                 \
      ::benchmark::Initialize(&argc, argv);                                \
      if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
      ::benchmark::RunSpecifiedBenchmarks();                               \
    }                                                                      \
    return artifact_ok ? 0 : 1;                                            \
  }
