#include "compare.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace s4tf::bench {

namespace {

using json::JsonObject;
using json::JsonValue;

std::string BenchName(const JsonValue& doc) {
  return doc.has("bench") && doc.at("bench").is_string()
             ? doc.at("bench").str()
             : "<unnamed>";
}

// Renders a leaf value for diff messages (numbers exactly, strings quoted).
std::string Render(const JsonValue& v) {
  if (v.is_string()) return "\"" + v.str() + "\"";
  if (v.is_number()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.number());
    return buf;
  }
  if (std::holds_alternative<bool>(v.value)) {
    return std::get<bool>(v.value) ? "true" : "false";
  }
  return "<non-scalar>";
}

bool LeafEqual(const JsonValue& a, const JsonValue& b) {
  if (a.is_number() && b.is_number()) return a.number() == b.number();
  if (a.is_string() && b.is_string()) return a.str() == b.str();
  if (std::holds_alternative<bool>(a.value) &&
      std::holds_alternative<bool>(b.value)) {
    return std::get<bool>(a.value) == std::get<bool>(b.value);
  }
  return false;
}

// Exact comparison of one flat deterministic object ("config", a row's
// "counters"/"values"/"text"). Keys missing on either side are diffs: a
// silently dropped counter is as much a regression as a changed one.
void DiffExactObject(const std::string& where, const JsonObject& base,
                     const JsonObject& fresh,
                     std::vector<std::string>* regressions) {
  for (const auto& [key, base_value] : base) {
    auto it = fresh.find(key);
    if (it == fresh.end()) {
      regressions->push_back(where + "." + key + ": missing in fresh run (baseline " +
                             Render(base_value) + ")");
      continue;
    }
    if (!LeafEqual(base_value, it->second)) {
      regressions->push_back(where + "." + key + ": baseline " +
                             Render(base_value) + " -> fresh " +
                             Render(it->second));
    }
  }
  for (const auto& [key, fresh_value] : fresh) {
    if (base.find(key) == base.end()) {
      regressions->push_back(where + "." + key + ": new in fresh run (" +
                             Render(fresh_value) +
                             "); refresh the committed artifact");
    }
  }
}

void DiffSection(const std::string& where, const JsonValue& base_row,
                 const JsonValue& fresh_row, const char* section,
                 std::vector<std::string>* regressions) {
  const bool in_base = base_row.has(section);
  const bool in_fresh = fresh_row.has(section);
  if (!in_base && !in_fresh) return;
  const JsonObject empty;
  DiffExactObject(where + "." + section,
                  in_base ? base_row.at(section).object() : empty,
                  in_fresh ? fresh_row.at(section).object() : empty,
                  regressions);
}

double RelativeDrift(double base, double fresh) {
  const double denom = std::max(std::abs(base), 1e-9);
  return std::abs(fresh - base) / denom;
}

void WarnOnDrift(const std::string& where, const JsonValue& base_row,
                 const JsonValue& fresh_row, const CompareOptions& options,
                 std::vector<std::string>* warnings) {
  // wall_ms: compare means when both sides have the metric.
  if (base_row.has("wall_ms") && fresh_row.has("wall_ms")) {
    const JsonObject& base = base_row.at("wall_ms").object();
    const JsonObject& fresh = fresh_row.at("wall_ms").object();
    for (const auto& [name, base_stats] : base) {
      auto it = fresh.find(name);
      if (it == fresh.end() || !base_stats.has("mean") ||
          !it->second.has("mean")) {
        continue;
      }
      const double base_mean = base_stats.at("mean").number();
      const double fresh_mean = it->second.at("mean").number();
      if (std::max(base_mean, fresh_mean) < options.wall_floor_ms) continue;
      const double drift = RelativeDrift(base_mean, fresh_mean);
      if (drift > options.wall_tolerance) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s.wall_ms.%s: mean %.3f ms -> %.3f ms (%+.0f%%, "
                      "noise bound %.0f%%)",
                      where.c_str(), name.c_str(), base_mean, fresh_mean,
                      100.0 * (fresh_mean / std::max(base_mean, 1e-9) - 1.0),
                      100.0 * options.wall_tolerance);
        warnings->push_back(buf);
      }
    }
  }
  if (base_row.has("noisy") && fresh_row.has("noisy")) {
    const JsonObject& base = base_row.at("noisy").object();
    const JsonObject& fresh = fresh_row.at("noisy").object();
    for (const auto& [name, base_value] : base) {
      auto it = fresh.find(name);
      if (it == fresh.end()) continue;
      const double drift =
          RelativeDrift(base_value.number(), it->second.number());
      if (drift > options.wall_tolerance) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s.noisy.%s: %.6g -> %.6g (drift beyond %.0f%%)",
                      where.c_str(), name.c_str(), base_value.number(),
                      it->second.number(), 100.0 * options.wall_tolerance);
        warnings->push_back(buf);
      }
    }
  }
}

}  // namespace

CompareResult CompareReports(const JsonValue& baseline,
                             const JsonValue& fresh,
                             const CompareOptions& options) {
  CompareResult result;
  const std::string name = BenchName(baseline);

  if (BenchName(fresh) != name) {
    result.regressions.push_back(name + ": fresh artifact is for bench \"" +
                                 BenchName(fresh) + "\"");
    return result;
  }
  const double base_schema =
      baseline.has("schema_version") ? baseline.at("schema_version").number()
                                     : 0;
  const double fresh_schema =
      fresh.has("schema_version") ? fresh.at("schema_version").number() : 0;
  if (base_schema != fresh_schema) {
    result.regressions.push_back(
        name + ": schema_version mismatch; regenerate the baseline");
    return result;
  }

  const JsonObject empty;
  DiffExactObject(name + ".config",
                  baseline.has("config") ? baseline.at("config").object()
                                         : empty,
                  fresh.has("config") ? fresh.at("config").object() : empty,
                  &result.regressions);

  const json::JsonArray no_rows;
  const json::JsonArray& base_rows =
      baseline.has("rows") ? baseline.at("rows").array() : no_rows;
  const json::JsonArray& fresh_rows =
      fresh.has("rows") ? fresh.at("rows").array() : no_rows;
  if (base_rows.size() != fresh_rows.size()) {
    result.regressions.push_back(
        name + ": row count " + std::to_string(base_rows.size()) + " -> " +
        std::to_string(fresh_rows.size()));
  }
  const std::size_t n = std::min(base_rows.size(), fresh_rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const JsonValue& base_row = base_rows[i];
    const JsonValue& fresh_row = fresh_rows[i];
    const std::string base_label =
        base_row.has("label") ? base_row.at("label").str() : "";
    const std::string fresh_label =
        fresh_row.has("label") ? fresh_row.at("label").str() : "";
    const std::string where = name + ".rows[" + base_label + "]";
    if (base_label != fresh_label) {
      result.regressions.push_back(where + ": row relabeled to \"" +
                                   fresh_label + "\"");
      continue;
    }
    DiffSection(where, base_row, fresh_row, "counters", &result.regressions);
    DiffSection(where, base_row, fresh_row, "values", &result.regressions);
    DiffSection(where, base_row, fresh_row, "text", &result.regressions);
    WarnOnDrift(where, base_row, fresh_row, options, &result.warnings);
  }
  return result;
}

bool LoadArtifact(const std::string& path, json::JsonValue* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  if (!json::ParseJson(text.str(), out, &parse_error)) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return false;
  }
  return true;
}

}  // namespace s4tf::bench
