// Figure 4: "LazyTensor trace of the LeNet-5 model's forward pass."
//
// Builds LeNet on the lazy device, runs one forward pass WITHOUT observing
// the result, and dumps the recorded trace DAG: an op inventory (verified
// against the architecture) and the GraphViz DOT rendering the paper's
// figure shows. Nothing executes until the final materialization — the
// printed kernel counters prove it.
#include <cstdio>

#include "bench_utils.h"
#include "lazy/lazy_tensor.h"
#include "nn/models/lenet.h"
#include "nn/training.h"

int main() {
  using namespace s4tf;

  std::printf("== Figure 4: LazyTensor trace of the LeNet-5 forward pass ==\n\n");

  LazyBackend backend;
  const Device lazy = backend.device();

  Rng rng(1);
  nn::LeNet model(rng);
  nn::MoveModelTo(model, lazy);

  const Tensor input = Tensor::Zeros(Shape({1, 28, 28, 1}), lazy);
  const Tensor logits = model(input);

  std::printf("ops recorded into trace : %lld\n",
              static_cast<long long>(backend.ops_traced()));
  std::printf("kernels executed so far : %lld  (recording only — nothing "
              "ran)\n\n",
              static_cast<long long>(backend.kernels_launched()));

  std::printf("-- trace op inventory (forward pass) --\n");
  const auto counts = SummarizeTrace({logits});
  int total = 0;
  for (const auto& c : counts) {
    std::printf("  %-22s x%d\n", OpName(c.kind), c.count);
    if (c.kind != OpKind::kConstant) total += c.count;
  }
  std::printf("  total non-leaf ops: %d\n\n", total);

  std::printf("-- GraphViz DOT (render with `dot -Tpng`) --\n%s\n",
              TraceToDot({logits}).c_str());

  // Now observe: the trace compiles through the XLA-like JIT and runs.
  const auto values = logits.ToVector();
  std::printf("materialized logits[0..9]:");
  for (float v : values) std::printf(" %.3f", v);
  std::printf("\n\nafter observation: kernels executed = %lld, "
              "programs compiled = %lld\n",
              static_cast<long long>(backend.kernels_launched()),
              static_cast<long long>(backend.cache_misses()));
  return 0;
}
