// Figure 4: "LazyTensor trace of the LeNet-5 model's forward pass."
//
// Builds LeNet on the lazy device, runs one forward pass WITHOUT observing
// the result, and dumps the recorded trace DAG: an op inventory (verified
// against the architecture) and the GraphViz DOT rendering the paper's
// figure shows. Nothing executes until the final materialization — the
// printed kernel counters prove it.
#include <cstdio>

#include "lazy/lazy_tensor.h"
#include "report.h"
#include "nn/models/lenet.h"
#include "nn/training.h"

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf("== Figure 4: LazyTensor trace of the LeNet-5 forward pass ==\n\n");

  BenchReport report("fig4_lenet_trace");
  report.SetConfig("model", std::string("lenet5"));
  report.SetConfig("batch", static_cast<std::int64_t>(1));

  MetricsDelta counters;
  LazyBackend backend;
  const Device lazy = backend.device();

  Rng rng(1);
  nn::LeNet model(rng);
  nn::MoveModelTo(model, lazy);

  const Tensor input = Tensor::Zeros(Shape({1, 28, 28, 1}), lazy);
  const Tensor logits = model(input);

  std::printf("ops recorded into trace : %lld\n",
              static_cast<long long>(backend.ops_traced()));
  std::printf("kernels executed so far : %lld  (recording only — nothing "
              "ran)\n\n",
              static_cast<long long>(backend.kernels_launched()));

  const std::int64_t ops_before_observe = backend.ops_traced();
  const std::int64_t kernels_before_observe = backend.kernels_launched();

  std::printf("-- trace op inventory (forward pass) --\n");
  const auto counts = SummarizeTrace({logits});
  int total = 0;
  BenchRow& inventory = report.AddRow("trace_inventory");
  for (const auto& c : counts) {
    std::printf("  %-22s x%d\n", OpName(c.kind), c.count);
    inventory.SetCounter(std::string("op.") + OpName(c.kind), c.count);
    if (c.kind != OpKind::kConstant) total += c.count;
  }
  std::printf("  total non-leaf ops: %d\n\n", total);
  inventory.SetCounter("total_non_leaf_ops", total);

  std::printf("-- GraphViz DOT (render with `dot -Tpng`) --\n%s\n",
              TraceToDot({logits}).c_str());

  // Now observe: the trace compiles through the XLA-like JIT and runs.
  const auto values = logits.ToVector();
  std::printf("materialized logits[0..9]:");
  for (float v : values) std::printf(" %.3f", v);
  std::printf("\n\nafter observation: kernels executed = %lld, "
              "programs compiled = %lld\n",
              static_cast<long long>(backend.kernels_launched()),
              static_cast<long long>(backend.cache_misses()));

  counters.Capture();
  BenchRow& row = report.AddRow("lazy_execution");
  row.SetCounters(counters);
  row.SetCounter("trace.ops_recorded", ops_before_observe);
  row.SetCounter("trace.kernels_before_observe", kernels_before_observe);
  row.SetCounter("trace.kernels_after_observe", backend.kernels_launched());
  row.SetCounter("trace.programs_compiled", backend.cache_misses());
  row.SetText("laziness_holds", kernels_before_observe == 0 ? "YES" : "NO");
  const bool artifact_ok = report.Write();
  return (kernels_before_observe == 0 && artifact_ok) ? 0 : 1;
}
