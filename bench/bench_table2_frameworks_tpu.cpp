// Table 2: "Training performance for ResNet-50 on ImageNet on a TPUv3-32
// cluster" — JAX+Flax vs TensorFlow vs Swift for TensorFlow.
//
//   paper:  TF 33118 ex/s (59 min) | JAX+Flax 21258 (90 min) |
//           S4TF 20015 (96 min)
//   shape:  TF clearly ahead; JAX and S4TF within a few percent of each
//           other. ("Although each system can notionally produce identical
//           XLA HLO ... some codebases have been better optimized for
//           benchmark purposes.")
//
// Method: one SGD step of a ResNet (ImageNet-scaled stand-in; see
// DESIGN.md substitutions) is traced and compiled per core at the paper's
// per-core batch, then each framework row prices a synchronous
// data-parallel step on 32 simulated TPUv3 cores: host strategy cost +
// fused device time / codebase efficiency + ring all-reduce of the
// gradients. The efficiency knobs are calibrated to the paper's ratios
// and documented in EXPERIMENTS.md.
#include <cstdio>

#include "device/sim_accelerator.h"
#include "report.h"
#include "frameworks/profiles.h"
#include "nn/models/resnet.h"
#include "step_program.h"

namespace s4tf::bench {
namespace {

constexpr int kCores = 32;
constexpr std::int64_t kPerCoreBatch = 32;
constexpr double kImageNetEpochExamples = 1.28e6;

struct Row {
  std::string framework;
  double throughput;       // cluster examples/s
  double training_minutes;  // 90 epochs
};

Row PriceStrategy(const frameworks::FrameworkProfile& profile,
                  const StepProgram& program) {
  const AcceleratorSpec spec = AcceleratorSpec::TpuV3Core();
  SimAccelerator device(spec);
  program.fused->ChargeTo(device);
  const double device_seconds =
      device.elapsed_seconds() / profile.device_efficiency;

  double host_seconds = 0.0;
  double step_seconds = 0.0;
  if (profile.strategy == frameworks::ExecutionStrategy::kLazyRetrace) {
    // On the TPU path the training loop traces step N+1 while the device
    // executes step N (the barrier returns before execution completes), so
    // host tracing overlaps device time — the critical path is the max.
    host_seconds = static_cast<double>(program.trace_ops) *
                   profile.per_op_host_seconds;
    step_seconds = std::max(host_seconds, device_seconds);
  } else {
    host_seconds = profile.per_step_host_seconds;
    step_seconds = host_seconds + device_seconds;
  }
  // Synchronous all-reduce of the gradients across the pod.
  step_seconds += AllReduceSeconds(spec, program.parameter_bytes, kCores);

  Row row;
  row.framework = profile.name;
  row.throughput =
      static_cast<double>(kCores * kPerCoreBatch) / step_seconds;
  row.training_minutes = 90.0 * kImageNetEpochExamples / row.throughput / 60.0;
  return row;
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf(
      "== Table 2: ResNet-50-class training on a (simulated) TPUv3-32 "
      "cluster ==\n\n");

  BenchReport report("table2_frameworks_tpu");
  report.SetConfig("cores", static_cast<std::int64_t>(kCores));
  report.SetConfig("per_core_batch", kPerCoreBatch);
  report.SetConfig("model", std::string("resnet50_imagenet_scaled"));

  Rng rng(2);
  const nn::ResNet model(nn::ResNetConfig::ImageNetScaled(2, 16, 100), rng);
  MetricsDelta counters;
  const StepProgram program =
      BuildStepProgram(model, Shape({kPerCoreBatch, 32, 32, 3}), 100, 0.1f);
  counters.Capture();
  std::printf(
      "per-core step: %lld traced ops, %lld HLO instructions, %lld fused "
      "kernels, %lld parameters\n%s\n\n",
      static_cast<long long>(program.trace_ops),
      static_cast<long long>(program.program_instructions),
      static_cast<long long>(program.fused->kernel_count()),
      static_cast<long long>(program.parameter_count),
      counters.Summary().c_str());
  {
    BenchRow& row = report.AddRow("step_program");
    row.SetCounters(counters);
    row.SetCounter("step.trace_ops", program.trace_ops);
    row.SetCounter("step.hlo_instructions", program.program_instructions);
    row.SetCounter("step.fused_kernels", program.fused->kernel_count());
    row.SetCounter("step.parameters", program.parameter_count);
    row.SetValue("cost.compile_seconds", program.compile_seconds);
    row.SetWall("build_step_program", MeasureWall(3, [&] {
                  BuildStepProgram(model, Shape({kPerCoreBatch, 32, 32, 3}),
                                   100, 0.1f);
                }));
  }

  TablePrinter table(
      {"Framework", "Throughput (examples/s)", "Training time (90 epochs)"},
      {26, 24, 26});
  table.PrintHeader();
  const std::vector<Row> rows = {
      PriceStrategy(frameworks::Table2JaxFlaxProfile(), program),
      PriceStrategy(frameworks::Table2TensorFlowProfile(), program),
      PriceStrategy(frameworks::Table2S4tfProfile(), program),
  };
  for (const Row& row : rows) {
    table.PrintRow({row.framework, FormatF(row.throughput, 0),
                    FormatF(row.training_minutes, 0) + " minutes"});
    BenchRow& artifact_row = report.AddRow("framework/" + row.framework);
    artifact_row.SetValue("throughput_ex_per_s", row.throughput);
    artifact_row.SetValue("training_minutes", row.training_minutes);
  }
  table.PrintRule();

  std::printf(
      "\npaper reference: jax+flax 21258 (90 min) | tensorflow 33118 (59 "
      "min) | s4tf 20015 (96 min)\n");
  std::printf("expected shape:  tensorflow > jax+flax ~ s4tf\n");
  const double jax = rows[0].throughput;
  const double tf = rows[1].throughput;
  const double s4tf_rate = rows[2].throughput;
  const bool shape_holds = tf > 1.2 * jax && tf > 1.2 * s4tf_rate &&
                           std::abs(jax - s4tf_rate) < 0.2 * jax;
  std::printf("shape holds:     %s\n", shape_holds ? "YES" : "NO");
  report.AddRow("verdicts").SetText("shape_holds", shape_holds ? "YES" : "NO");
  const bool artifact_ok = report.Write();
  return (shape_holds && artifact_ok) ? 0 : 1;
}
