// Table 3: "Training performance for ResNet-56 on CIFAR-10 on an Nvidia
// GTX 1080 GPU."
//
//   paper:  PyTorch 2462 ex/s | TensorFlow 2390 | S4TF eager 730 |
//           S4TF LazyTensor 1827
//   shape:  PyTorch ~ TensorFlow > S4TF-Lazy > S4TF-Eager, with fusion
//           closing most (not all) of the eager gap.
//
// Method: the full ResNet-56 SGD training step is traced at the paper's
// batch size (128) through the tape + lazy tracer and compiled by the
// XLA-like JIT — giving the real program's op counts and per-kernel
// flop/byte costs — then each framework row prices one step under its
// execution strategy (per-op dispatch, per-step retrace, or staged
// replay) on the simulated GTX 1080. Numeric equivalence of the four
// strategies is covered by the test suite at small shapes.
#include <cstdio>

#include "device/sim_accelerator.h"
#include "report.h"
#include "frameworks/profiles.h"
#include "nn/models/resnet.h"
#include "step_program.h"

namespace s4tf::bench {
namespace {

struct Row {
  std::string framework;
  double throughput;
};

Row PriceStrategy(const frameworks::FrameworkProfile& profile,
                  const StepProgram& program, std::int64_t batch,
                  const AcceleratorSpec& spec) {
  SimAccelerator device(spec);
  double host_seconds = 0.0;
  // Post-warmup steady state: the one-time JIT compile amortizes to ~zero
  // over a 10-epoch run; the paper also measures post-warmup throughput.
  const double amortized_compile = 0.0;
  switch (profile.strategy) {
    case frameworks::ExecutionStrategy::kEagerOpByOp:
      host_seconds = static_cast<double>(program.trace_ops) *
                     profile.per_op_host_seconds;
      program.unfused->ChargeTo(device);
      break;
    case frameworks::ExecutionStrategy::kLazyRetrace:
      // Re-trace every step; compile amortizes over the (post-warmup)
      // steady state via the program cache, but materialization overhead
      // per step remains.
      host_seconds = static_cast<double>(program.trace_ops) *
                     profile.per_op_host_seconds;
      program.fused->ChargeTo(device);
      break;
    case frameworks::ExecutionStrategy::kStagedGraph:
      host_seconds = profile.per_step_host_seconds;
      program.fused->ChargeTo(device);
      break;
  }
  const double device_seconds =
      device.elapsed_seconds() / profile.device_efficiency;
  // Host tracing/dispatch and device execution cannot fully overlap for a
  // retraced program (the trace must exist before dispatch): lazy pays
  // host + device serially; eager pipelines (max); staged is device-bound.
  double step_seconds = 0.0;
  switch (profile.strategy) {
    case frameworks::ExecutionStrategy::kEagerOpByOp:
      step_seconds = std::max(host_seconds, device_seconds);
      break;
    case frameworks::ExecutionStrategy::kLazyRetrace:
      step_seconds = host_seconds + device_seconds;
      break;
    case frameworks::ExecutionStrategy::kStagedGraph:
      step_seconds = host_seconds + device_seconds;
      break;
  }
  step_seconds += amortized_compile;
  return Row{profile.name, static_cast<double>(batch) / step_seconds};
}

}  // namespace
}  // namespace s4tf::bench

int main() {
  using namespace s4tf;
  using namespace s4tf::bench;

  std::printf(
      "== Table 3: ResNet-56 / CIFAR-10 training throughput on a "
      "(simulated) GTX 1080 ==\n\n");

  const std::int64_t batch = 128;
  Rng rng(1);
  const nn::ResNet model(nn::ResNetConfig::Cifar(56), rng);
  std::printf("model: ResNet-56, %lld parameters\n",
              static_cast<long long>(model.ParameterCount()));

  BenchReport report("table3_gpu_resnet56");
  report.SetConfig("batch", batch);
  report.SetConfig("model", std::string("resnet56_cifar10"));
  report.SetConfig("accelerator", std::string("gtx1080_sim"));

  WallTimer build_timer;
  MetricsDelta counters;
  const StepProgram program = BuildStepProgram(
      model, Shape({batch, 32, 32, 3}), 10, /*learning_rate=*/0.1f);
  counters.Capture();
  std::printf(
      "traced SGD step at batch %lld: %lld ops -> %lld HLO instructions "
      "-> %lld fused kernels (built in %.1f ms)\n%s\n\n",
      static_cast<long long>(batch),
      static_cast<long long>(program.trace_ops),
      static_cast<long long>(program.program_instructions),
      static_cast<long long>(program.fused->kernel_count()),
      build_timer.Milliseconds(), counters.Summary().c_str());
  {
    BenchRow& row = report.AddRow("step_program");
    row.SetCounters(counters);
    row.SetCounter("step.trace_ops", program.trace_ops);
    row.SetCounter("step.hlo_instructions", program.program_instructions);
    row.SetCounter("step.fused_kernels", program.fused->kernel_count());
    row.SetCounter("step.parameters", program.parameter_count);
    row.SetValue("cost.compile_seconds", program.compile_seconds);
    row.SetWall("build_step_program", MeasureWall(3, [&] {
                  BuildStepProgram(model, Shape({batch, 32, 32, 3}), 10,
                                   /*learning_rate=*/0.1f);
                }));
  }

  TablePrinter table({"Framework", "Throughput (examples/s)"}, {34, 24});
  table.PrintHeader();
  const AcceleratorSpec gpu = AcceleratorSpec::Gtx1080();
  std::vector<Row> rows = {
      PriceStrategy(frameworks::PyTorchLikeProfile(), program, batch, gpu),
      PriceStrategy(frameworks::TensorFlowGraphProfile(), program, batch,
                    gpu),
      PriceStrategy(frameworks::S4tfEagerProfile(), program, batch, gpu),
      PriceStrategy(frameworks::S4tfLazyProfile(), program, batch, gpu),
  };
  for (const Row& row : rows) {
    table.PrintRow({row.framework, FormatF(row.throughput, 0)});
    report.AddRow("framework/" + row.framework)
        .SetValue("throughput_ex_per_s", row.throughput);
  }
  table.PrintRule();

  std::printf(
      "\npaper reference:  pytorch 2462 | tensorflow 2390 | s4tf eager 730 "
      "| s4tf lazytensor 1827\n");
  std::printf(
      "expected shape:   pytorch ~ tensorflow > s4tf-lazytensor > "
      "s4tf-eager\n");
  const bool shape_holds = rows[0].throughput > rows[3].throughput &&
                           rows[1].throughput > rows[3].throughput &&
                           rows[3].throughput > rows[2].throughput;
  std::printf("shape holds:      %s\n", shape_holds ? "YES" : "NO");
  report.AddRow("verdicts").SetText("shape_holds", shape_holds ? "YES" : "NO");
  const bool artifact_ok = report.Write();
  return (shape_holds && artifact_ok) ? 0 : 1;
}
