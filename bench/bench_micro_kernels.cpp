// Microbenchmarks of the reference CPU kernels shared by every backend.
//
// The *Threads benchmarks sweep the intra-op pool size (Arg = thread
// count) on fixed hot-kernel workloads, so the threads=1 vs threads=N
// rows measure the speedup from ParallelForRange sharding directly.
// Compare the wall-clock "Time" column (UseRealTime): CPU time stays
// roughly constant while wall time shrinks.
#include <benchmark/benchmark.h>

#include "gbench_main.h"
#include "support/rng.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace s4tf {
namespace {

Literal RandomLiteral(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<std::size_t>(shape.NumElements()));
  rng.FillUniform(values.data(), values.size(), -1.0f, 1.0f);
  return Literal::FromVector(shape, std::move(values));
}

// Deterministic artifact: one fixed evaluation per hot kernel, recording
// counter deltas (dispatches, bytes moved) plus a checksum of the output —
// any change to kernel numerics or bookkeeping shows as an exact diff.
bool EmitArtifact() {
  using namespace s4tf::bench;
  BenchReport report("micro_kernels");

  struct Case {
    const char* label;
    OpKind kind;
    std::vector<Literal> inputs;
    OpAttrs attrs;
  };
  OpAttrs conv_attrs;
  conv_attrs.padding = Padding::kSame;
  OpAttrs reduce_attrs;
  reduce_attrs.axes = {0};
  OpAttrs pool_attrs;
  pool_attrs.window_h = pool_attrs.window_w = 2;
  pool_attrs.stride_h = pool_attrs.stride_w = 2;
  std::vector<Case> cases;
  cases.push_back({"matmul_128", OpKind::kMatMul,
                   {RandomLiteral(Shape({128, 128}), 1),
                    RandomLiteral(Shape({128, 128}), 2)},
                   {}});
  cases.push_back({"conv2d_16x16", OpKind::kConv2D,
                   {RandomLiteral(Shape({1, 16, 16, 8}), 3),
                    RandomLiteral(Shape({3, 3, 8, 8}), 4)},
                   conv_attrs});
  cases.push_back({"softmax_8x1000", OpKind::kSoftmax,
                   {RandomLiteral(Shape({8, 1000}), 5)},
                   {}});
  cases.push_back({"broadcast_add_64x256", OpKind::kAdd,
                   {RandomLiteral(Shape({64, 256}), 6),
                    RandomLiteral(Shape({256}), 7)},
                   {}});
  cases.push_back({"reduce_sum_64x256", OpKind::kReduceSum,
                   {RandomLiteral(Shape({64, 256}), 8)},
                   reduce_attrs});
  cases.push_back({"maxpool_16x16", OpKind::kMaxPool2D,
                   {RandomLiteral(Shape({4, 16, 16, 16}), 9)},
                   pool_attrs});

  for (const Case& c : cases) {
    bench::MetricsDelta counters;
    const Literal out = EvalOpLiteral(c.kind, c.inputs, c.attrs);
    counters.Capture();
    double checksum = 0.0;
    for (float v : out.data) checksum += static_cast<double>(v);
    BenchRow& row = report.AddRow(std::string("kernel/") + c.label);
    row.SetCounters(counters);
    row.SetCounter("out_elements", out.shape.NumElements());
    row.SetValue("out_checksum", checksum);
  }

  // The fused-epilogue entry point: matmul + bias + relu in ONE dispatch.
  // Its checksum must equal the unfused chain's exactly — the epilogue
  // evaluates the same float expressions in the same order.
  {
    const Literal a = RandomLiteral(Shape({64, 64}), 10);
    const Literal b = RandomLiteral(Shape({64, 96}), 11);
    const Literal bias = RandomLiteral(Shape({96}), 12);
    std::vector<kernels::EpilogueOp> epilogue(2);
    epilogue[0].kind = OpKind::kAdd;
    epilogue[0].map = kernels::EpilogueOp::Map::kLastDim;
    epilogue[0].operand = bias.data.data();
    epilogue[0].operand_elements = bias.shape.NumElements();
    epilogue[1].kind = OpKind::kRelu;
    bench::MetricsDelta counters;
    const Literal out = EvalFusedOpLiteral(OpKind::kMatMul, {&a, &b}, {},
                                           epilogue);
    counters.Capture();
    const Literal unfused = EvalOpLiteral(
        OpKind::kRelu,
        {EvalOpLiteral(OpKind::kAdd,
                       {EvalOpLiteral(OpKind::kMatMul, {a, b}, {}), bias},
                       {})},
        {});
    double checksum = 0.0;
    for (float v : out.data) checksum += static_cast<double>(v);
    BenchRow& row = report.AddRow("kernel/matmul_bias_relu_fused");
    row.SetCounters(counters);
    row.SetCounter("out_elements", out.shape.NumElements());
    row.SetCounter("bitwise_equals_unfused",
                   out.data.ToVector() == unfused.data.ToVector() ? 1 : 0);
    row.SetValue("out_checksum", checksum);
  }

  return report.Write();
}

void BM_MatMul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Literal a = RandomLiteral(Shape({n, n}), 1);
  const Literal b = RandomLiteral(Shape({n, n}), 2);
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kMatMul, {a, b}, {});
    benchmark::DoNotOptimize(out.data.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2D(benchmark::State& state) {
  const std::int64_t hw = state.range(0);
  const Literal input = RandomLiteral(Shape({1, hw, hw, 8}), 3);
  const Literal filter = RandomLiteral(Shape({3, 3, 8, 8}), 4);
  OpAttrs attrs;
  attrs.padding = Padding::kSame;
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kConv2D, {input, filter}, attrs);
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_Conv2D)->Arg(8)->Arg(16)->Arg(32);

void BM_MatMul512Threads(benchmark::State& state) {
  SetIntraOpParallelism(static_cast<int>(state.range(0)));
  const std::int64_t n = 512;
  const Literal a = RandomLiteral(Shape({n, n}), 1);
  const Literal b = RandomLiteral(Shape({n, n}), 2);
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kMatMul, {a, b}, {});
    benchmark::DoNotOptimize(out.data.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  SetIntraOpParallelism(0);
}
BENCHMARK(BM_MatMul512Threads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Conv2DBatch8Threads(benchmark::State& state) {
  SetIntraOpParallelism(static_cast<int>(state.range(0)));
  const Literal input = RandomLiteral(Shape({8, 32, 32, 16}), 3);
  const Literal filter = RandomLiteral(Shape({3, 3, 16, 32}), 4);
  OpAttrs attrs;
  attrs.padding = Padding::kSame;
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kConv2D, {input, filter}, attrs);
    benchmark::DoNotOptimize(out.data.data());
  }
  SetIntraOpParallelism(0);
}
BENCHMARK(BM_Conv2DBatch8Threads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Softmax(benchmark::State& state) {
  const Literal x = RandomLiteral(Shape({state.range(0), 1000}), 5);
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kSoftmax, {x}, {});
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(8)->Arg(64);

void BM_ElementwiseBroadcast(benchmark::State& state) {
  const Literal m = RandomLiteral(Shape({state.range(0), 256}), 6);
  const Literal row = RandomLiteral(Shape({256}), 7);
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kAdd, {m, row}, {});
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_ElementwiseBroadcast)->Arg(64)->Arg(512);

void BM_ReduceSumAxis(benchmark::State& state) {
  const Literal m = RandomLiteral(Shape({state.range(0), 256}), 8);
  OpAttrs attrs;
  attrs.axes = {0};
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kReduceSum, {m}, attrs);
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_ReduceSumAxis)->Arg(64)->Arg(512);

void BM_MaxPool(benchmark::State& state) {
  const Literal x = RandomLiteral(Shape({4, state.range(0), state.range(0), 16}), 9);
  OpAttrs attrs;
  attrs.window_h = attrs.window_w = 2;
  attrs.stride_h = attrs.stride_w = 2;
  for (auto _ : state) {
    Literal out = EvalOpLiteral(OpKind::kMaxPool2D, {x}, attrs);
    benchmark::DoNotOptimize(out.data.data());
  }
}
BENCHMARK(BM_MaxPool)->Arg(16)->Arg(32);

}  // namespace
}  // namespace s4tf

S4TF_BENCH_MAIN_WITH_ARTIFACT(s4tf::EmitArtifact)
