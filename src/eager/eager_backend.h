// Eager Tensor (paper §3.2).
//
// "Eager mode ... dispatches the operations of the user's program to
// pre-compiled kernels ... the kernels are dispatched to the accelerator
// to execute asynchronously and control is returned to the user's program
// before the kernel finishes. As long as the user's program does not
// observe the contents of a Tensor, the user's program runs ahead and
// fills a pipeline of accelerator kernel invocations."
//
// Implementation: a FIFO DispatchQueue drained by one executor thread (the
// simulated accelerator stream). Execute() costs the host a configurable
// per-op dispatch overhead and returns immediately with a future-backed
// TensorImpl; observation blocks on the future. The op-by-op structure
// means no fusion is possible — the §3.3 motivation and the source of the
// eager row's slowness in Table 3.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "device/sim_accelerator.h"
#include "support/sim_clock.h"
#include "support/threadpool.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace s4tf {

struct EagerOptions {
  AcceleratorSpec accelerator = AcceleratorSpec::Gtx1080();
  // Host-side cost of dispatching one op (Python/Swift binding + TF eager
  // runtime overhead for S4TF; much lower for the PyTorch-like baseline).
  double dispatch_overhead_seconds = 30e-6;
  std::string name = "eager";
};

// A once-writable buffer the executor thread fulfills.
class EagerBuffer {
 public:
  const Literal& Wait() const;
  void Set(Literal value);
  bool ready() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool ready_ = false;
  Literal value_;
};

class EagerImpl final : public TensorImpl {
 public:
  EagerImpl(Shape shape, Device device, std::shared_ptr<EagerBuffer> buffer)
      : TensorImpl(std::move(shape), std::move(device)),
        buffer_(std::move(buffer)) {}

  const Literal& Materialize() override { return buffer_->Wait(); }
  const std::shared_ptr<EagerBuffer>& buffer() const { return buffer_; }

 private:
  std::shared_ptr<EagerBuffer> buffer_;
};

class EagerBackend final : public Backend {
 public:
  explicit EagerBackend(EagerOptions options = {});

  // The Device handle users pass to WithDevice / tensor factories.
  Device device();

  std::shared_ptr<TensorImpl> Constant(Literal value,
                                       const Device& device) override;
  std::shared_ptr<TensorImpl> Execute(OpKind kind, const OpAttrs& attrs,
                                      const std::vector<Tensor>& inputs,
                                      Shape out_shape,
                                      const Device& device) override;
  void Sync(const Device& device) override;

  // --- Metrics (read after Sync for a consistent snapshot).
  // Simulated host time spent dispatching.
  double host_seconds() const { return host_clock_.now_seconds(); }
  // Simulated accelerator busy time.
  double device_seconds() const { return accelerator_.elapsed_seconds(); }
  // Wall-clock model for a fully-pipelined program: host and device
  // overlap, so the critical path is whichever is longer.
  double total_seconds() const {
    return std::max(host_seconds(), device_seconds());
  }
  std::int64_t ops_dispatched() const { return ops_dispatched_; }
  std::size_t pending_ops() const { return queue_.pending(); }
  // Deepest the pipeline has run ahead of the accelerator (§3.2's "fills a
  // pipeline of accelerator kernel invocations").
  std::size_t max_pipeline_depth() const { return max_pipeline_depth_; }

  void ResetStats();

 private:
  EagerOptions options_;
  DispatchQueue queue_;
  SimAccelerator accelerator_;
  SimClock host_clock_;
  std::int64_t ops_dispatched_ = 0;
  std::size_t max_pipeline_depth_ = 0;
  int ordinal_;
};

}  // namespace s4tf
