#include "eager/eager_backend.h"

#include <atomic>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace s4tf {

namespace {

std::atomic<int> g_next_eager_ordinal{0};

obs::Counter& DispatchCounter() {
  static obs::Counter* counter = obs::GetCounter("eager.ops_dispatched");
  return *counter;
}

// Gauge, not counter: pipeline depth is a high-water mark and depends on
// scheduling, so it is excluded from the cross-thread determinism contract.
obs::Gauge& PipelineDepthGauge() {
  static obs::Gauge* gauge = obs::GetGauge("eager.pipeline_depth.max");
  return *gauge;
}

}  // namespace

const Literal& EagerBuffer::Wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return ready_; });
  return value_;
}

void EagerBuffer::Set(Literal value) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    S4TF_CHECK(!ready_) << "EagerBuffer set twice";
    value_ = std::move(value);
    ready_ = true;
  }
  cv_.notify_all();
}

bool EagerBuffer::ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_;
}

EagerBackend::EagerBackend(EagerOptions options)
    : options_(std::move(options)),
      accelerator_(options_.accelerator),
      ordinal_(g_next_eager_ordinal++) {}

Device EagerBackend::device() {
  return Device(DeviceKind::kEager, ordinal_, this,
                options_.name + ":" + std::to_string(ordinal_));
}

std::shared_ptr<TensorImpl> EagerBackend::Constant(Literal value,
                                                   const Device& device) {
  // Constants are host data: available immediately, no kernel launch.
  auto buffer = std::make_shared<EagerBuffer>();
  Shape shape = value.shape;
  buffer->Set(std::move(value));
  return std::make_shared<EagerImpl>(std::move(shape), device,
                                     std::move(buffer));
}

std::shared_ptr<TensorImpl> EagerBackend::Execute(
    OpKind kind, const OpAttrs& attrs, const std::vector<Tensor>& inputs,
    Shape out_shape, const Device& device) {
  // Host side: pay the dispatch overhead and return immediately.
  obs::TraceSpan dispatch_span("eager.dispatch", "eager");
  host_clock_.AdvanceSeconds(options_.dispatch_overhead_seconds);
  ++ops_dispatched_;
  DispatchCounter().Increment();

  auto buffer = std::make_shared<EagerBuffer>();
  auto result = std::make_shared<EagerImpl>(out_shape, device, buffer);

  // Capture input impls; FIFO ordering guarantees producers retire first,
  // so Materialize() inside the worker never blocks on a later task.
  std::vector<std::shared_ptr<TensorImpl>> input_impls;
  input_impls.reserve(inputs.size());
  std::vector<Shape> input_shapes;
  for (const Tensor& in : inputs) {
    input_impls.push_back(in.impl());
    input_shapes.push_back(in.shape());
  }

  const std::int64_t flops = OpFlops(kind, input_shapes, out_shape, attrs);
  const std::int64_t bytes = OpBytes(input_shapes, out_shape);

  max_pipeline_depth_ = std::max(max_pipeline_depth_, queue_.pending() + 1);
  PipelineDepthGauge().SetMax(
      static_cast<std::int64_t>(max_pipeline_depth_));
  queue_.Submit([this, kind, attrs, flops, bytes,
                 input_impls = std::move(input_impls), buffer]() {
    std::vector<const Literal*> literals;
    literals.reserve(input_impls.size());
    for (const auto& impl : input_impls) {
      literals.push_back(&impl->Materialize());
    }
    Literal value = EvalOpLiteral(kind, literals, attrs);
    accelerator_.ChargeKernel(flops, bytes);
    buffer->Set(std::move(value));
  });
  return result;
}

void EagerBackend::Sync(const Device& device) {
  (void)device;
  queue_.Drain();
}

void EagerBackend::ResetStats() {
  queue_.Drain();
  accelerator_.Reset();
  host_clock_.Reset();
  ops_dispatched_ = 0;
  max_pipeline_depth_ = 0;
}

namespace {

// Device::ForReplica(kEager, ordinal) support: one process-lifetime
// backend (own dispatch queue + simulated accelerator) per replica
// ordinal. The backend self-assigns a global ordinal, so the minted
// Device carries the requested replica ordinal explicitly.
Device EagerReplicaDevice(int ordinal) {
  static std::mutex mutex;
  static std::map<int, EagerBackend*>* backends =
      new std::map<int, EagerBackend*>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = backends->find(ordinal);
  if (it == backends->end()) {
    EagerOptions options;
    options.name = "cpu:eager:replica";
    it = backends->emplace(ordinal, new EagerBackend(options)).first;
  }
  return Device(DeviceKind::kEager, ordinal, it->second,
                "cpu:eager:replica:" + std::to_string(ordinal));
}

[[maybe_unused]] const bool g_eager_replica_factory_registered = [] {
  RegisterReplicaDeviceFactory(DeviceKind::kEager, &EagerReplicaDevice);
  return true;
}();

}  // namespace

}  // namespace s4tf
