// Derived Differentiable conformance for user structs.
//
// In Swift for TensorFlow the compiler synthesizes a `TangentVector`
// struct, `move(along:)`, and parameter traversal for any struct whose
// stored properties are Differentiable (this is how the LeNet struct in
// Figure 6 becomes trainable with no boilerplate). C++ has no such
// derivation, so S4TF_DIFFERENTIABLE(field...) performs the equivalent
// synthesis with a for-each macro:
//
//   struct Dense {
//     Tensor weight, bias;
//     S4TF_DIFFERENTIABLE(Dense, weight, bias)
//     Tensor operator()(const Tensor& x) const;
//   };
//
// generates, inside Dense:
//   * struct TangentVector { Tensor weight, bias; +, -; }   (zero by default)
//   * void MoveAlong(const TangentVector&)                  (exponential map)
//   * VisitParameters / VisitWithTangent                    (KeyPathIterable)
// Fields may themselves be Differentiable structs (models compose layers),
// Tensors, or floats; traversal recurses structurally.
#pragma once

#include <utility>

#include "ad/differentiable.h"

namespace s4tf::ad::detail {

// --- Parameter traversal leaves and recursion.

template <typename V>
void VisitParams(Tensor& t, V&& visitor) {
  visitor(t);
}
template <typename V>
void VisitParams(const Tensor& t, V&& visitor) {
  visitor(t);
}
// Non-tensor scalars are hyperparameters, not trainable parameters.
template <typename V>
void VisitParams(float&, V&&) {}
template <typename V>
void VisitParams(const float&, V&&) {}

template <typename T, typename V>
  requires requires(T& x, V&& v) { x.VisitParameters(std::forward<V>(v)); }
void VisitParams(T& x, V&& visitor) {
  x.VisitParameters(std::forward<V>(visitor));
}
template <typename T, typename V>
  requires requires(const T& x, V&& v) {
    x.VisitParameters(std::forward<V>(v));
  }
void VisitParams(const T& x, V&& visitor) {
  x.VisitParameters(std::forward<V>(visitor));
}

// Arrays of layers traverse element-wise.
template <typename T, typename V>
void VisitParams(std::vector<T>& xs, V&& visitor) {
  for (T& x : xs) VisitParams(x, visitor);
}
template <typename T, typename V>
void VisitParams(const std::vector<T>& xs, V&& visitor) {
  for (const T& x : xs) VisitParams(x, visitor);
}

// --- Paired (parameter, tangent-slot) traversal.

template <typename V>
void VisitPair(Tensor& p, Tensor& g, V&& visitor) {
  visitor(p, g);
}
template <typename V>
void VisitPair(const Tensor& p, Tensor& g, V&& visitor) {
  visitor(p, g);
}
template <typename V>
void VisitPair(float&, float&, V&&) {}
template <typename V>
void VisitPair(const float&, float&, V&&) {}

template <typename T, typename G, typename V>
  requires requires(T& x, G& g, V&& v) {
    x.VisitWithTangent(g, std::forward<V>(v));
  }
void VisitPair(T& x, G& g, V&& visitor) {
  x.VisitWithTangent(g, std::forward<V>(visitor));
}
template <typename T, typename G, typename V>
  requires requires(const T& x, G& g, V&& v) {
    x.VisitWithTangent(g, std::forward<V>(v));
  }
void VisitPair(const T& x, G& g, V&& visitor) {
  x.VisitWithTangent(g, std::forward<V>(visitor));
}

// Arrays of layers: the tangent is resized lazily so a default (zero)
// tangent grows to match the parameter array on first paired traversal.
template <typename T, typename V>
void VisitPair(std::vector<T>& xs,
               typename DifferentiableTraits<std::vector<T>>::TangentVector& g,
               V&& visitor) {
  g.elements.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    VisitPair(xs[i], g.elements[i], visitor);
  }
}
template <typename T, typename V>
void VisitPair(const std::vector<T>& xs,
               typename DifferentiableTraits<std::vector<T>>::TangentVector& g,
               V&& visitor) {
  g.elements.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    VisitPair(xs[i], g.elements[i], visitor);
  }
}

}  // namespace s4tf::ad::detail

// --- for-each preprocessor machinery (up to 16 fields). Each step passes a
// fixed context argument C (the enclosing type's name) plus one field.

#define S4TF_PP_EXPAND(x) x
#define S4TF_PP_FE_1(M, C, a) M(C, a)
#define S4TF_PP_FE_2(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_1(M, C, __VA_ARGS__))
#define S4TF_PP_FE_3(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_2(M, C, __VA_ARGS__))
#define S4TF_PP_FE_4(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_3(M, C, __VA_ARGS__))
#define S4TF_PP_FE_5(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_4(M, C, __VA_ARGS__))
#define S4TF_PP_FE_6(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_5(M, C, __VA_ARGS__))
#define S4TF_PP_FE_7(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_6(M, C, __VA_ARGS__))
#define S4TF_PP_FE_8(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_7(M, C, __VA_ARGS__))
#define S4TF_PP_FE_9(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_8(M, C, __VA_ARGS__))
#define S4TF_PP_FE_10(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_9(M, C, __VA_ARGS__))
#define S4TF_PP_FE_11(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_10(M, C, __VA_ARGS__))
#define S4TF_PP_FE_12(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_11(M, C, __VA_ARGS__))
#define S4TF_PP_FE_13(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_12(M, C, __VA_ARGS__))
#define S4TF_PP_FE_14(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_13(M, C, __VA_ARGS__))
#define S4TF_PP_FE_15(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_14(M, C, __VA_ARGS__))
#define S4TF_PP_FE_16(M, C, a, ...) M(C, a) S4TF_PP_EXPAND(S4TF_PP_FE_15(M, C, __VA_ARGS__))

#define S4TF_PP_GET_FE(_1, _2, _3, _4, _5, _6, _7, _8, _9, _10, _11, _12, \
                       _13, _14, _15, _16, NAME, ...)                      \
  NAME
#define S4TF_PP_FOR_EACH(M, C, ...)                                           \
  S4TF_PP_EXPAND(S4TF_PP_GET_FE(                                              \
      __VA_ARGS__, S4TF_PP_FE_16, S4TF_PP_FE_15, S4TF_PP_FE_14,               \
      S4TF_PP_FE_13, S4TF_PP_FE_12, S4TF_PP_FE_11, S4TF_PP_FE_10,             \
      S4TF_PP_FE_9, S4TF_PP_FE_8, S4TF_PP_FE_7, S4TF_PP_FE_6, S4TF_PP_FE_5,   \
      S4TF_PP_FE_4, S4TF_PP_FE_3, S4TF_PP_FE_2,                               \
      S4TF_PP_FE_1)(M, C, __VA_ARGS__))

// --- per-field expansions. The tangent field's type is named through the
// enclosing class (decltype(Type::f)) so that declaring a member of the
// same name inside TangentVector does not "change the meaning" of an
// unqualified name ([basic.scope.class]).

#define S4TF_AD_TANGENT_FIELD(Type, f) \
  ::s4tf::ad::TangentVectorOf<decltype(Type::f)> f{};
#define S4TF_AD_TANGENT_ADD(Type, f) r.f = this->f + o.f;
#define S4TF_AD_TANGENT_SUB(Type, f) r.f = this->f - o.f;
#define S4TF_AD_MOVE_FIELD(Type, f) ::s4tf::ad::MoveAlong(f, direction.f);
#define S4TF_AD_VISIT_FIELD(Type, f) \
  ::s4tf::ad::detail::VisitParams(f, visitor);
#define S4TF_AD_VISIT_PAIR(Type, f) \
  ::s4tf::ad::detail::VisitPair(f, t.f, visitor);

// The derived-conformance macro. Place inside the struct, after the field
// declarations. `Type` is the enclosing struct's name.
#define S4TF_DIFFERENTIABLE(Type, ...)                                       \
  struct TangentVector {                                                     \
    S4TF_PP_FOR_EACH(S4TF_AD_TANGENT_FIELD, Type, __VA_ARGS__)                     \
    TangentVector operator+(const TangentVector& o) const {                  \
      TangentVector r;                                                       \
      S4TF_PP_FOR_EACH(S4TF_AD_TANGENT_ADD, Type, __VA_ARGS__)                     \
      return r;                                                              \
    }                                                                        \
    TangentVector operator-(const TangentVector& o) const {                  \
      TangentVector r;                                                       \
      S4TF_PP_FOR_EACH(S4TF_AD_TANGENT_SUB, Type, __VA_ARGS__)                     \
      return r;                                                              \
    }                                                                        \
  };                                                                         \
  void MoveAlong(const TangentVector& direction) {                           \
    S4TF_PP_FOR_EACH(S4TF_AD_MOVE_FIELD, Type, __VA_ARGS__)                        \
  }                                                                          \
  template <typename V>                                                      \
  void VisitParameters(V&& visitor) {                                        \
    S4TF_PP_FOR_EACH(S4TF_AD_VISIT_FIELD, Type, __VA_ARGS__)                       \
  }                                                                          \
  template <typename V>                                                      \
  void VisitParameters(V&& visitor) const {                                  \
    S4TF_PP_FOR_EACH(S4TF_AD_VISIT_FIELD, Type, __VA_ARGS__)                       \
  }                                                                          \
  template <typename V>                                                      \
  void VisitWithTangent(TangentVector& t, V&& visitor) {                     \
    S4TF_PP_FOR_EACH(S4TF_AD_VISIT_PAIR, Type, __VA_ARGS__)                        \
  }                                                                          \
  template <typename V>                                                      \
  void VisitWithTangent(TangentVector& t, V&& visitor) const {               \
    S4TF_PP_FOR_EACH(S4TF_AD_VISIT_PAIR, Type, __VA_ARGS__)                        \
  }

// Conformance for stateless structs (e.g. Flatten): the tangent space is
// the zero vector space.
#define S4TF_DIFFERENTIABLE_EMPTY(Type)                                      \
  struct TangentVector {                                                     \
    TangentVector operator+(const TangentVector&) const { return {}; }      \
    TangentVector operator-(const TangentVector&) const { return {}; }      \
  };                                                                         \
  void MoveAlong(const TangentVector&) {}                                    \
  template <typename V>                                                      \
  void VisitParameters(V&&) {}                                               \
  template <typename V>                                                      \
  void VisitParameters(V&&) const {}                                         \
  template <typename V>                                                      \
  void VisitWithTangent(TangentVector&, V&&) {}                              \
  template <typename V>                                                      \
  void VisitWithTangent(TangentVector&, V&&) const {}
