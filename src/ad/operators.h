// Differential operators (paper §2.1, Figure 2).
//
// "Library authors define differential operators, which are ordinary
// higher-order functions that compute derivatives of passed-in
// functions." The analogues here:
//
//   GradientAt(x, f)           — Figure 2's `gradient(at:in:)`
//   ValueWithGradient(x, f)    — value + gradient in one pass
//   ValueWithPullback(x, f)    — value + reverse-mode pullback closure
//   ValueWithDifferential(x,f) — value + forward-mode differential
//
// Each has two forms: one over explicit DifferentiableFunction bundles
// (fully generic over Differentiable types — the decoupled-AD story), and
// one over plain callables on Tensor / Differentiable model structs, where
// the gradient tape plays the role of the compiler synthesis. The
// plain-callable form is the C++ analogue of Swift's implicit promotion
// of closures to @differentiable values at a `gradient` call site.
#pragma once

#include <utility>

#include "ad/diff_function.h"
#include "ad/tape.h"

namespace s4tf::ad {

// --- Bundle-based operators (arbitrary Differentiable types).

template <Differentiable A, Differentiable B>
std::pair<B, PullbackFn<A, B>> ValueWithPullback(
    const A& x, const DifferentiableFunction<A, B>& f) {
  return f.vjp(x);
}

template <Differentiable A, Differentiable B>
PullbackFn<A, B> PullbackAt(const A& x,
                            const DifferentiableFunction<A, B>& f) {
  return f.vjp(x).second;
}

template <Differentiable A, Differentiable B>
std::pair<B, DifferentialFn<A, B>> ValueWithDifferential(
    const A& x, const DifferentiableFunction<A, B>& f) {
  return f.jvp(x);
}

// Figure 2: gradient of a scalar-valued differentiable function.
template <Differentiable A>
TangentVectorOf<A> GradientAt(const A& x,
                              const DifferentiableFunction<A, float>& f) {
  auto [value, pullback] = f.vjp(x);
  (void)value;
  return pullback(1.0f);
}

template <Differentiable A>
std::pair<float, TangentVectorOf<A>> ValueWithGradient(
    const A& x, const DifferentiableFunction<A, float>& f) {
  auto [value, pullback] = f.vjp(x);
  return {value, pullback(1.0f)};
}

// --- Tape-based operators over plain callables.

// A Differentiable struct with derived conformance (struct_macros.h):
// parameters are reachable through VisitParameters.
template <typename M>
concept DifferentiableStruct =
    Differentiable<M> && requires(M m, typename M::TangentVector t) {
      m.VisitParameters([](Tensor&) {});
      m.VisitWithTangent(t, [](Tensor&, Tensor&) {});
    };

// f: (Tensor) -> Tensor with scalar result; returns (f(x), df/dx).
template <typename F>
std::pair<Tensor, Tensor> ValueWithGradient(const Tensor& x, F&& f) {
  GradientTape tape;
  Tensor watched = x;  // value semantics: the caller's x is untouched
  tape.Watch(watched);
  Tensor value;
  {
    RecorderScope scope(&tape);
    value = f(watched);
  }
  S4TF_CHECK_EQ(value.NumElements(), 1)
      << "gradient requires a scalar-valued function; got shape "
      << value.shape();
  const auto grads = tape.ComputeGradients(value);
  return {value, tape.GradientFor(grads, watched)};
}

template <typename F>
Tensor GradientAt(const Tensor& x, F&& f) {
  return ValueWithGradient(x, std::forward<F>(f)).second;
}

// f: (Model) -> Tensor with scalar result; returns the loss and the
// model's TangentVector — exactly the API used by the paper's Figure 7
// training loop.
template <DifferentiableStruct M, typename F>
std::pair<Tensor, typename M::TangentVector> ValueWithGradient(const M& model,
                                                               F&& f) {
  GradientTape tape;
  M working = model;  // O(1): parameters are COW tensor handles
  working.VisitParameters([&tape](Tensor& p) { tape.Watch(p); });
  Tensor loss;
  {
    RecorderScope scope(&tape);
    loss = f(working);
  }
  S4TF_CHECK_EQ(loss.NumElements(), 1)
      << "gradient requires a scalar-valued function; got shape "
      << loss.shape();
  const auto grads = tape.ComputeGradients(loss);
  typename M::TangentVector tangent{};
  working.VisitWithTangent(tangent, [&](Tensor& p, Tensor& g) {
    g = tape.GradientFor(grads, p);
  });
  return {loss, tangent};
}

template <DifferentiableStruct M, typename F>
typename M::TangentVector GradientAt(const M& model, F&& f) {
  return ValueWithGradient(model, std::forward<F>(f)).second;
}

// Streaming variant of the model-struct ValueWithGradient: `on_ready`
// fires once per parameter (index in VisitParameters order) at the
// deterministic point during the reverse sweep where that parameter's
// gradient is final — `grad` is nullptr when the loss does not depend on
// it. This is what lets nn::ReplicaGroup start all-reducing early
// gradient buckets while the rest of the backward pass is still running.
// Returns the loss; the gradients themselves are only surfaced through
// the hook.
template <DifferentiableStruct M, typename F>
Tensor ValueWithGradientStreamed(
    const M& model, F&& f,
    const std::function<void(std::size_t param_index, const Tensor* grad)>&
        on_ready) {
  GradientTape tape;
  M working = model;  // O(1): parameters are COW tensor handles
  std::vector<std::int64_t> param_nodes;
  working.VisitParameters([&](Tensor& p) {
    tape.Watch(p);
    param_nodes.push_back(p.grad_node());
  });
  Tensor loss;
  {
    RecorderScope scope(&tape);
    loss = f(working);
  }
  S4TF_CHECK_EQ(loss.NumElements(), 1)
      << "gradient requires a scalar-valued function; got shape "
      << loss.shape();
  // Parameters are watched first, so node id == watch index; keep the
  // explicit map anyway in case a model ever watches lazily.
  (void)tape.ComputeGradients(
      loss, [&](std::int64_t node_id, const Tensor* grad) {
        for (std::size_t i = 0; i < param_nodes.size(); ++i) {
          if (param_nodes[i] == node_id) {
            on_ready(i, grad);
            return;
          }
        }
        // Hook only fires for watched parameter nodes; an unknown id
        // would mean the tape and the watch list disagree.
        S4TF_CHECK(false) << "gradient-ready hook fired for unwatched node "
                          << node_id;
      });
  return loss;
}

// Differentiates `f` (any Tensor -> Tensor callable) at x, returning the
// value and a reusable pullback closure — the tape-backed analogue of a
// VJP derivative function.
template <typename F>
std::pair<Tensor, std::function<Tensor(const Tensor&)>> ValueWithPullback(
    const Tensor& x, F&& f) {
  auto tape = std::make_shared<GradientTape>();
  Tensor watched = x;
  tape->Watch(watched);
  Tensor value;
  {
    RecorderScope scope(tape.get());
    value = f(watched);
  }
  S4TF_CHECK_EQ(value.NumElements(), 1)
      << "reusable pullback currently supports scalar outputs";
  Tensor captured_value = value;
  auto pullback = [tape, watched, captured_value](const Tensor& seed) {
    // The pullback is linear in its seed, so run the reverse pass with the
    // canonical ones-seed and scale. (ComputeGradients does not mutate the
    // tape, so the closure is reusable — pullbacks are first-class values,
    // §2.1.)
    const auto all = tape->ComputeGradients(captured_value);
    return tape->GradientFor(all, watched) * seed;
  };
  return {value, std::move(pullback)};
}

// --- Custom derivatives (the paper's @derivative(of:) attribute).

// Wraps a unary Tensor function with a user-written pullback. When called
// under an active tape, the reverse pass uses `pullback` as the base case
// instead of decomposing the body — and the body runs unrecorded, so even
// non-differentiable internals (e.g. table lookups) are permitted.
template <typename F, typename PB>
auto WithCustomDerivative(F primal, PB pullback) {
  return [primal = std::move(primal),
          pullback = std::move(pullback)](const Tensor& x) -> Tensor {
    Tensor result;
    {
      NoRecordScope no_record;
      result = primal(x);
    }
    if (auto* recorder = GetRecorder()) {
      if (auto* tape = dynamic_cast<GradientTape*>(recorder)) {
        tape->RecordCustomCall(
            {x}, result,
            [pullback](const std::vector<Tensor>& inputs,
                       const Tensor& output, const Tensor& grad) {
              std::vector<std::optional<Tensor>> gs(1);
              gs[0] = pullback(inputs[0], output, grad);
              return gs;
            });
      }
    }
    return result;
  };
}

// Binary variant.
template <typename F, typename PB>
auto WithCustomDerivative2(F primal, PB pullback) {
  return [primal = std::move(primal), pullback = std::move(pullback)](
             const Tensor& a, const Tensor& b) -> Tensor {
    Tensor result;
    {
      NoRecordScope no_record;
      result = primal(a, b);
    }
    if (auto* recorder = GetRecorder()) {
      if (auto* tape = dynamic_cast<GradientTape*>(recorder)) {
        tape->RecordCustomCall(
            {a, b}, result,
            [pullback](const std::vector<Tensor>& inputs,
                       const Tensor& output, const Tensor& grad) {
              auto [ga, gb] = pullback(inputs[0], inputs[1], output, grad);
              std::vector<std::optional<Tensor>> gs(2);
              gs[0] = std::move(ga);
              gs[1] = std::move(gb);
              return gs;
            });
      }
    }
    return result;
  };
}

}  // namespace s4tf::ad
