#include "ad/tape.h"

#include <algorithm>
#include <cmath>

namespace s4tf::ad {

// Re-expands a reduced gradient to the pre-reduction shape: reshape to the
// keep_dims form, then broadcast.
Tensor BroadcastLikeInput(const Tensor& reduced, const Tensor& input,
                          const OpAttrs& attrs);

namespace {

// Gradient mask for reduce_max: 1 where the input equals the broadcasted
// max. Ties share the gradient (split evenly is not required for
// correctness of subgradients; we give each maximal entry the full share,
// matching XLA's select-and-scatter-free formulation used with distinct
// maxima in practice).
Tensor EqualMask(const Tensor& a, const Tensor& b) {
  const Tensor gt = Greater(a, b);
  const Tensor lt = Greater(b, a);
  return (1.0f - gt) * (1.0f - lt);
}

}  // namespace

Tensor Unbroadcast(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  const auto axes = BroadcastReductionAxes(grad.shape(), target);
  Tensor reduced = ReduceSum(grad, axes, /*keep_dims=*/true);
  return Reshape(reduced, target);
}

std::vector<std::optional<Tensor>> OpPullback(
    OpKind kind, const OpAttrs& attrs, const std::vector<Tensor>& inputs,
    const Tensor& output, const Tensor& grad) {
  std::vector<std::optional<Tensor>> result(inputs.size());
  switch (kind) {
    case OpKind::kAdd:
      result[0] = Unbroadcast(grad, inputs[0].shape());
      result[1] = Unbroadcast(grad, inputs[1].shape());
      break;
    case OpKind::kSub:
      result[0] = Unbroadcast(grad, inputs[0].shape());
      result[1] = Unbroadcast(-grad, inputs[1].shape());
      break;
    case OpKind::kMul:
      result[0] = Unbroadcast(grad * inputs[1], inputs[0].shape());
      result[1] = Unbroadcast(grad * inputs[0], inputs[1].shape());
      break;
    case OpKind::kDiv:
      result[0] = Unbroadcast(grad / inputs[1], inputs[0].shape());
      result[1] = Unbroadcast(-grad * inputs[0] / Square(inputs[1]),
                              inputs[1].shape());
      break;
    case OpKind::kMaximum: {
      const Tensor mask = Greater(inputs[0], inputs[1]);
      result[0] = Unbroadcast(grad * mask, inputs[0].shape());
      result[1] = Unbroadcast(grad * (1.0f - mask), inputs[1].shape());
      break;
    }
    case OpKind::kMinimum: {
      const Tensor mask = Greater(inputs[1], inputs[0]);
      result[0] = Unbroadcast(grad * mask, inputs[0].shape());
      result[1] = Unbroadcast(grad * (1.0f - mask), inputs[1].shape());
      break;
    }
    case OpKind::kPow: {
      // d/da a^b = b a^(b-1);  d/db a^b = a^b ln a  (a > 0 domain).
      result[0] = Unbroadcast(
          grad * inputs[1] * Pow(inputs[0], inputs[1] - 1.0f),
          inputs[0].shape());
      result[1] = Unbroadcast(grad * output * Log(inputs[0]),
                              inputs[1].shape());
      break;
    }
    case OpKind::kGreater:
      // Boolean output: zero derivative everywhere it exists.
      break;
    case OpKind::kSelect: {
      const Tensor& cond = inputs[0];
      result[1] = Unbroadcast(grad * cond, inputs[1].shape());
      result[2] = Unbroadcast(grad * (1.0f - cond), inputs[2].shape());
      break;
    }

    case OpKind::kNeg:
      result[0] = -grad;
      break;
    case OpKind::kExp:
      result[0] = grad * output;
      break;
    case OpKind::kLog:
      result[0] = grad / inputs[0];
      break;
    case OpKind::kTanh:
      result[0] = grad * (1.0f - Square(output));
      break;
    case OpKind::kSqrt:
      result[0] = grad * 0.5f / output;
      break;
    case OpKind::kRsqrt:
      result[0] = grad * (-0.5f) * output * output * output;
      break;
    case OpKind::kSquare:
      result[0] = grad * 2.0f * inputs[0];
      break;
    case OpKind::kRelu:
      result[0] = grad * Greater(inputs[0], Tensor::Zeros(Shape({}),
                                                          inputs[0].device()));
      break;
    case OpKind::kSigmoid:
      result[0] = grad * output * (1.0f - output);
      break;
    case OpKind::kAbs: {
      const Tensor zero = Tensor::Zeros(Shape({}), inputs[0].device());
      result[0] =
          grad * (Greater(inputs[0], zero) - Greater(zero, inputs[0]));
      break;
    }
    case OpKind::kAddScalar:
      result[0] = grad;
      break;
    case OpKind::kMulScalar:
      result[0] = grad * attrs.scalar;
      break;
    case OpKind::kPowScalar:
      result[0] = grad * attrs.scalar *
                  ApplyOp(OpKind::kPowScalar, {inputs[0]},
                          OpAttrs{.scalar = attrs.scalar - 1.0f});
      break;
    case OpKind::kLeakyRelu: {
      const Tensor mask = Greater(inputs[0], Tensor::Zeros(Shape({}),
                                                           inputs[0].device()));
      result[0] = grad * (mask + attrs.scalar * (1.0f - mask));
      break;
    }

    case OpKind::kReshape:
      result[0] = Reshape(grad, inputs[0].shape());
      break;
    case OpKind::kTranspose: {
      std::vector<std::int64_t> inverse(attrs.axes.size());
      for (std::size_t i = 0; i < attrs.axes.size(); ++i) {
        inverse[static_cast<std::size_t>(attrs.axes[i])] =
            static_cast<std::int64_t>(i);
      }
      result[0] = Transpose(grad, std::move(inverse));
      break;
    }
    case OpKind::kBroadcastTo:
      result[0] = Unbroadcast(grad, inputs[0].shape());
      break;
    case OpKind::kSlice: {
      // Scatter the gradient back into a zero tensor of the input shape.
      const Shape& in_shape = inputs[0].shape();
      std::vector<std::int64_t> pads;
      for (int d = 0; d < in_shape.rank(); ++d) {
        const auto sd = static_cast<std::size_t>(d);
        pads.push_back(attrs.starts[sd]);
        pads.push_back(in_shape.dim(d) - attrs.starts[sd] - attrs.shape[sd]);
      }
      result[0] = Pad(grad, std::move(pads), 0.0f);
      break;
    }
    case OpKind::kPad: {
      const Shape& in_shape = inputs[0].shape();
      std::vector<std::int64_t> starts;
      for (int d = 0; d < in_shape.rank(); ++d) {
        starts.push_back(attrs.pads[static_cast<std::size_t>(2 * d)]);
      }
      result[0] = Slice(grad, std::move(starts), in_shape.dims());
      break;
    }
    case OpKind::kConcat: {
      std::int64_t offset = 0;
      const int axis = static_cast<int>(attrs.axis);
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Shape& in_shape = inputs[i].shape();
        std::vector<std::int64_t> starts(
            static_cast<std::size_t>(in_shape.rank()), 0);
        starts[static_cast<std::size_t>(axis)] = offset;
        result[i] = Slice(grad, std::move(starts), in_shape.dims());
        offset += in_shape.dim(axis);
      }
      break;
    }

    case OpKind::kReduceSum: {
      result[0] = Unbroadcast(BroadcastLikeInput(grad, inputs[0], attrs),
                              inputs[0].shape());
      break;
    }
    case OpKind::kReduceMean: {
      const std::int64_t count =
          inputs[0].NumElements() / output.NumElements();
      result[0] = BroadcastLikeInput(grad, inputs[0], attrs) *
                  (1.0f / static_cast<float>(count));
      break;
    }
    case OpKind::kReduceMax: {
      const Tensor max_b = BroadcastLikeInput(output, inputs[0], attrs);
      const Tensor mask = EqualMask(inputs[0], max_b);
      result[0] = mask * BroadcastLikeInput(grad, inputs[0], attrs);
      break;
    }
    case OpKind::kArgMax:
      // Integer-valued output: non-differentiable, no gradient flows.
      break;

    case OpKind::kSoftmax: {
      const Tensor gy = grad * output;
      const Tensor sums = ReduceSum(
          gy, {static_cast<std::int64_t>(output.rank() - 1)},
          /*keep_dims=*/true);
      result[0] = gy - output * sums;
      break;
    }
    case OpKind::kLogSoftmax: {
      const Tensor softmax = Exp(output);
      const Tensor sums = ReduceSum(
          grad, {static_cast<std::int64_t>(output.rank() - 1)},
          /*keep_dims=*/true);
      result[0] = grad - softmax * sums;
      break;
    }

    case OpKind::kMatMul:
      result[0] = MatMul(grad, Transposed(inputs[1]));
      result[1] = MatMul(Transposed(inputs[0]), grad);
      break;

    case OpKind::kConv2D: {
      OpAttrs input_attrs = attrs;
      input_attrs.shape = inputs[0].shape().dims();
      result[0] = ApplyOp(OpKind::kConv2DBackpropInput, {grad, inputs[1]},
                          input_attrs);
      OpAttrs filter_attrs = attrs;
      filter_attrs.shape = inputs[1].shape().dims();
      result[1] = ApplyOp(OpKind::kConv2DBackpropFilter, {inputs[0], grad},
                          filter_attrs);
      break;
    }
    case OpKind::kAvgPool2D: {
      OpAttrs grad_attrs = attrs;
      grad_attrs.shape = inputs[0].shape().dims();
      result[0] = ApplyOp(OpKind::kAvgPool2DGrad, {grad}, grad_attrs);
      break;
    }
    case OpKind::kMaxPool2D:
      result[0] =
          ApplyOp(OpKind::kMaxPool2DGrad, {inputs[0], grad}, attrs);
      break;

    case OpKind::kCrossReplicaSum:
      // The adjoint of an all-reduce sum is an all-reduce sum.
      result[0] = CrossReplicaSum(grad);
      break;

    default:
      S4TF_UNREACHABLE() << "no pullback rule for op " << OpName(kind)
                         << " (non-differentiable instruction reached the "
                            "reverse pass; the differentiability check "
                            "should have rejected it)";
  }
  return result;
}

Tensor BroadcastLikeInput(const Tensor& reduced, const Tensor& input,
                          const OpAttrs& attrs) {
  std::vector<std::int64_t> axes = attrs.axes;
  if (axes.empty()) {
    for (int i = 0; i < input.rank(); ++i) axes.push_back(i);
  }
  Tensor g = reduced;
  if (!attrs.keep_dims) {
    std::vector<bool> is_reduced(static_cast<std::size_t>(input.rank()),
                                 false);
    for (std::int64_t a : axes) is_reduced[static_cast<std::size_t>(a)] = true;
    std::vector<std::int64_t> keep_shape;
    for (int i = 0; i < input.rank(); ++i) {
      keep_shape.push_back(is_reduced[static_cast<std::size_t>(i)]
                               ? 1
                               : input.shape().dim(i));
    }
    g = Reshape(g, Shape(std::move(keep_shape)));
  }
  return BroadcastTo(g, input.shape());
}

void GradientTape::Watch(Tensor& t) {
  const std::int64_t id = static_cast<std::int64_t>(nodes_.size());
  nodes_.push_back(Node{OpKind::kParameter, OpAttrs{}, {}, {}, t});
  t.set_grad_node(id);
}

void GradientTape::RecordOp(OpKind kind, const OpAttrs& attrs,
                            const std::vector<Tensor>& inputs,
                            Tensor& output) {
  // Runtime "varied" check: skip ops with no path from a watched value.
  bool varied = false;
  for (const Tensor& in : inputs) {
    if (in.grad_node() >= 0) {
      varied = true;
      break;
    }
  }
  if (!varied) return;

  Node node;
  node.kind = kind;
  node.attrs = attrs;
  node.inputs = inputs;
  node.output = output;
  node.input_ids.reserve(inputs.size());
  for (const Tensor& in : inputs) node.input_ids.push_back(in.grad_node());
  const std::int64_t id = static_cast<std::int64_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  output.set_grad_node(id);
}

void GradientTape::RecordCustomCall(const std::vector<Tensor>& inputs,
                                    Tensor& output,
                                    CustomPullback pullback) {
  bool varied = false;
  for (const Tensor& in : inputs) {
    if (in.grad_node() >= 0) {
      varied = true;
      break;
    }
  }
  if (!varied) return;
  Node node;
  node.kind = OpKind::kConstant;  // placeholder; custom takes precedence
  node.inputs = inputs;
  node.output = output;
  node.custom = std::move(pullback);
  node.input_ids.reserve(inputs.size());
  for (const Tensor& in : inputs) node.input_ids.push_back(in.grad_node());
  const std::int64_t id = static_cast<std::int64_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  output.set_grad_node(id);
}

std::vector<std::optional<Tensor>> GradientTape::ComputeGradients(
    const Tensor& loss) {
  return ComputeGradients(loss, GradientReadyHook{});
}

std::vector<std::optional<Tensor>> GradientTape::ComputeGradients(
    const Tensor& loss, const GradientReadyHook& on_final) {
  std::vector<std::optional<Tensor>> grads(nodes_.size());
  const std::int64_t loss_node = loss.grad_node();
  if (loss_node < 0) {
    // Loss independent of watched values: every parameter's gradient is
    // (vacuously) final right away.
    if (on_final) {
      for (std::size_t id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == OpKind::kParameter) {
          on_final(static_cast<std::int64_t>(id), nullptr);
        }
      }
    }
    return grads;
  }
  S4TF_CHECK_LT(loss_node, static_cast<std::int64_t>(nodes_.size()));

  // Finalization analysis for the streaming hook: a parameter's gradient
  // slot receives its last accumulation when the reverse sweep processes
  // the *lowest-id* node that consumes it (the sweep walks ids downward,
  // so lower-id consumers run later). Once the sweep moves below that
  // consumer the slot can never change again. Consumers above the loss
  // node are never processed and do not count. The resulting schedule
  // depends only on the recorded tape, never on kernel timing.
  struct Ready {
    std::int64_t min_consumer;  // fire once the sweep has passed this id
    std::int64_t param_id;
  };
  std::vector<Ready> schedule;
  std::size_t next_ready = 0;
  if (on_final) {
    const auto sentinel = static_cast<std::int64_t>(nodes_.size());
    std::vector<std::int64_t> min_consumer(nodes_.size(), sentinel);
    for (std::int64_t n = loss_node; n >= 0; --n) {
      for (const std::int64_t in : nodes_[static_cast<std::size_t>(n)]
                                       .input_ids) {
        // Descending scan: the last write wins, i.e. the minimum id.
        if (in >= 0) min_consumer[static_cast<std::size_t>(in)] = n;
      }
    }
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].kind == OpKind::kParameter) {
        schedule.push_back(
            Ready{min_consumer[id], static_cast<std::int64_t>(id)});
      }
    }
    // Highest min-consumer first (fires earliest); ties in watch order.
    std::sort(schedule.begin(), schedule.end(),
              [](const Ready& a, const Ready& b) {
                if (a.min_consumer != b.min_consumer) {
                  return a.min_consumer > b.min_consumer;
                }
                return a.param_id < b.param_id;
              });
  }
  // Fires every scheduled parameter whose final accumulation has already
  // happened by the time the sweep is about to process `current`.
  const auto fire_ready = [&](std::int64_t current) {
    while (next_ready < schedule.size() &&
           schedule[next_ready].min_consumer > current) {
      const auto pid =
          static_cast<std::size_t>(schedule[next_ready].param_id);
      const auto& slot = grads[pid];
      on_final(schedule[next_ready].param_id,
               slot.has_value() ? &*slot : nullptr);
      ++next_ready;
    }
  };

  // Derivative computation must not be re-recorded onto this tape (§2.3:
  // the transformation does not transform its own output).
  NoRecordScope no_record;

  grads[static_cast<std::size_t>(loss_node)] =
      Tensor::Full(loss.shape(), 1.0f, loss.device());

  for (std::int64_t id = loss_node; id >= 0; --id) {
    if (on_final) fire_ready(id);
    const auto sid = static_cast<std::size_t>(id);
    if (!grads[sid].has_value()) continue;  // not useful: skip
    const Node& node = nodes_[sid];
    if (node.kind == OpKind::kParameter) continue;

    const auto input_grads =
        node.custom
            ? node.custom(node.inputs, node.output, *grads[sid])
            : OpPullback(node.kind, node.attrs, node.inputs, node.output,
                         *grads[sid]);
    S4TF_CHECK_EQ(input_grads.size(), node.input_ids.size())
        << "pullback returned wrong arity";
    for (std::size_t i = 0; i < node.input_ids.size(); ++i) {
      const std::int64_t in_id = node.input_ids[i];
      if (in_id < 0 || !input_grads[i].has_value()) continue;
      auto& slot = grads[static_cast<std::size_t>(in_id)];
      if (!slot.has_value()) {
        slot = *input_grads[i];
      } else {
        // Accumulate in place when storage is unique (§4.3's inout-style
        // accumulation — no zero tensors are materialized on this path).
        Tensor& acc = *slot;
        if (acc.shape() == input_grads[i]->shape()) {
          acc.InPlaceAxpy(1.0f, *input_grads[i]);
        } else {
          acc = acc + *input_grads[i];
        }
      }
    }
    // Release saved values for this node early? Kept: Tensor copies are
    // O(1) handles, actual buffers free when the tape is destroyed.
  }
  if (on_final) fire_ready(-1);  // drain: every remaining slot is final
  return grads;
}

Tensor GradientTape::GradientFor(
    const std::vector<std::optional<Tensor>>& grads,
    const Tensor& watched) const {
  const std::int64_t id = watched.grad_node();
  if (id < 0) return Tensor::Zeros(watched.shape(), watched.device());
  const auto& slot = grads[static_cast<std::size_t>(id)];
  if (!slot.has_value()) {
    return Tensor::Zeros(watched.shape(), watched.device());
  }
  return *slot;
}

}  // namespace s4tf::ad
