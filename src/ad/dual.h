// Forward-mode AD via dual numbers.
//
// The paper's JVP ("forward mode", Figure 3) computes (f(x), df(x)·v) in
// one pass. Dual<T> carries exactly that pair through arithmetic; it is
// how the platform differentiates scalar host computation (e.g. the
// backtracking line-search directional derivative in the mobile spline
// experiment) without any Tensor machinery — demonstrating again that AD
// is decoupled from Tensor.
#pragma once

#include <cmath>

namespace s4tf::ad {

template <typename T = double>
struct Dual {
  T value{};    // primal
  T tangent{};  // derivative along the seeded direction

  constexpr Dual() = default;
  constexpr Dual(T v) : value(v), tangent(T{}) {}  // NOLINT: constants lift
  constexpr Dual(T v, T t) : value(v), tangent(t) {}

  // Seeds the identity direction: d/dx x = 1.
  static constexpr Dual Variable(T v) { return Dual(v, T{1}); }

  friend constexpr Dual operator+(const Dual& a, const Dual& b) {
    return {a.value + b.value, a.tangent + b.tangent};
  }
  friend constexpr Dual operator-(const Dual& a, const Dual& b) {
    return {a.value - b.value, a.tangent - b.tangent};
  }
  friend constexpr Dual operator-(const Dual& a) {
    return {-a.value, -a.tangent};
  }
  friend constexpr Dual operator*(const Dual& a, const Dual& b) {
    return {a.value * b.value, a.tangent * b.value + a.value * b.tangent};
  }
  friend constexpr Dual operator/(const Dual& a, const Dual& b) {
    const T inv = T{1} / b.value;
    return {a.value * inv,
            (a.tangent - a.value * b.tangent * inv) * inv};
  }

  Dual& operator+=(const Dual& o) { return *this = *this + o; }
  Dual& operator-=(const Dual& o) { return *this = *this - o; }
  Dual& operator*=(const Dual& o) { return *this = *this * o; }
  Dual& operator/=(const Dual& o) { return *this = *this / o; }

  friend constexpr bool operator<(const Dual& a, const Dual& b) {
    return a.value < b.value;
  }
  friend constexpr bool operator>(const Dual& a, const Dual& b) {
    return a.value > b.value;
  }
  friend constexpr bool operator==(const Dual& a, const Dual& b) {
    return a.value == b.value;
  }
};

template <typename T>
Dual<T> exp(const Dual<T>& x) {
  const T e = std::exp(x.value);
  return {e, x.tangent * e};
}

template <typename T>
Dual<T> log(const Dual<T>& x) {
  return {std::log(x.value), x.tangent / x.value};
}

template <typename T>
Dual<T> sin(const Dual<T>& x) {
  return {std::sin(x.value), x.tangent * std::cos(x.value)};
}

template <typename T>
Dual<T> cos(const Dual<T>& x) {
  return {std::cos(x.value), -x.tangent * std::sin(x.value)};
}

template <typename T>
Dual<T> tanh(const Dual<T>& x) {
  const T t = std::tanh(x.value);
  return {t, x.tangent * (T{1} - t * t)};
}

template <typename T>
Dual<T> sqrt(const Dual<T>& x) {
  const T s = std::sqrt(x.value);
  return {s, x.tangent / (T{2} * s)};
}

template <typename T>
Dual<T> pow(const Dual<T>& x, T p) {
  return {std::pow(x.value, p),
          x.tangent * p * std::pow(x.value, p - T{1})};
}

template <typename T>
Dual<T> abs(const Dual<T>& x) {
  return x.value < T{0} ? -x : x;
}

// Scalar derivative of f: T -> Dual<T> evaluated at x (the `derivative`
// differential operator specialized to scalars).
template <typename T, typename Fn>
T ScalarDerivative(T x, Fn&& f) {
  return f(Dual<T>::Variable(x)).tangent;
}

}  // namespace s4tf::ad
