// Reverse-mode gradient tape over Tensor programs.
//
// Swift for TensorFlow performs reverse-mode AD by *compile-time code
// transformation on SIL* (§2.2); C++ offers no compiler hook, so this tape
// is the runtime stand-in that synthesizes the same pullback composition
// the Swift compiler would have emitted (the compile-time algorithms
// themselves — activity analysis, differentiability checking, derivative
// synthesis — are reproduced faithfully on an SSA IR in src/sil).
//
// The tape hooks `ApplyOp` through the OpRecorder interface, so it works
// identically on the naïve, eager, and lazy devices — on the lazy device
// the recorded pullback graph itself becomes part of the trace that the
// XLA-like JIT fuses, exactly as in the paper's training benchmarks.
//
// Activity analysis appears here in runtime form: an op is recorded only
// if one of its inputs is *varied* (reaches a watched parameter), and
// pullbacks are propagated only through nodes that are *useful*
// (reached backwards from the loss).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "tensor/ops.h"
#include "tensor/recording.h"
#include "tensor/tensor.h"

namespace s4tf::ad {

// Pullback signature for user-registered derivatives: given the saved
// primal inputs/output and the incoming gradient, produce a gradient per
// input (unset entries mean "no gradient flows to this input").
using CustomPullback = std::function<std::vector<std::optional<Tensor>>(
    const std::vector<Tensor>& inputs, const Tensor& output,
    const Tensor& grad)>;

class GradientTape final : public OpRecorder {
 public:
  GradientTape() = default;

  // Marks `t` as a differentiation root. Subsequent ops consuming it (or
  // values derived from it) are recorded.
  void Watch(Tensor& t);

  // Records a call with a user-specified derivative (the paper's
  // @derivative(of:) attribute): the reverse pass will invoke `pullback`
  // instead of decomposing the call into per-op rules, terminating the
  // derivative-synthesis recursion exactly as in §2.1.
  void RecordCustomCall(const std::vector<Tensor>& inputs, Tensor& output,
                        CustomPullback pullback);

  // OpRecorder: called by ApplyOp while a RecorderScope is active.
  void RecordOp(OpKind kind, const OpAttrs& attrs,
                const std::vector<Tensor>& inputs, Tensor& output) override;

  // Reverse pass: gradients of scalar `loss` with respect to every
  // recorded node. Entry i corresponds to node id i; nodes the loss does
  // not depend on hold nullopt ("not useful" in activity-analysis terms).
  std::vector<std::optional<Tensor>> ComputeGradients(const Tensor& loss);

  // Fires while the reverse sweep is still running, the moment a watched
  // parameter's gradient can no longer change (the sweep has passed the
  // earliest node that consumes it). `grad` is the final accumulated
  // gradient, or nullptr when the loss does not depend on the parameter.
  // The firing order is a pure function of the recorded tape — never of
  // thread scheduling — which is what lets nn::ReplicaGroup overlap
  // gradient communication with the rest of the backward pass while
  // keeping bucket submission deterministic.
  using GradientReadyHook =
      std::function<void(std::int64_t node_id, const Tensor* grad)>;

  // As ComputeGradients(loss), additionally invoking `on_final` once per
  // watched (kParameter) node at the deterministic point described above.
  // Passing a null hook is identical to the plain overload.
  std::vector<std::optional<Tensor>> ComputeGradients(
      const Tensor& loss, const GradientReadyHook& on_final);

  // Gradient of `loss` for a watched tensor, given ComputeGradients'
  // output. Returns zeros of the parameter's shape if the loss did not
  // depend on it.
  Tensor GradientFor(const std::vector<std::optional<Tensor>>& grads,
                     const Tensor& watched) const;

  std::int64_t num_nodes() const {
    return static_cast<std::int64_t>(nodes_.size());
  }

 private:
  struct Node {
    OpKind kind;
    OpAttrs attrs;
    // Tape ids of the inputs; -1 marks a non-varied (constant) input.
    std::vector<std::int64_t> input_ids;
    // Saved primal values needed by the pullback.
    std::vector<Tensor> inputs;
    Tensor output;
    // When set, overrides the per-op rule (custom derivative).
    CustomPullback custom;
  };

  std::vector<Node> nodes_;
};

// Per-op VJP rule: given the node's saved primal values and the incoming
// gradient, produces the gradient for each input (entries for non-varied
// inputs are left unset). Exposed for direct unit testing.
std::vector<std::optional<Tensor>> OpPullback(OpKind kind,
                                              const OpAttrs& attrs,
                                              const std::vector<Tensor>& inputs,
                                              const Tensor& output,
                                              const Tensor& grad);

// Sum-reduces `grad` back to `target` shape after broadcasting (the
// adjoint of NumPy broadcasting).
Tensor Unbroadcast(const Tensor& grad, const Shape& target);

}  // namespace s4tf::ad
