// Array-subscript differentiation (paper §4.3 and Appendix B, Figure 9).
//
// The derivative of `values[index]` violates the efficient-gradient goal
// under the pure-functional pullback formulation: the pullback
// `(T) -> [T]` must materialize an all-zeros array with one non-zero
// entry, making an O(1) operation's derivative O(n). The mutable-value-
// semantics formulation `(T, inout [T]) -> Void` accumulates into an
// existing tangent buffer in O(1).
//
// This header is a line-for-line transcription of Appendix B onto
// vs::CowArray<float> (our Swift-array analogue). bench_fig9 sweeps n for
// both formulations; tests/ad verifies they agree.
#pragma once

#include <functional>
#include <utility>

#include "vs/cow_array.h"
#include "vs/inout.h"

namespace s4tf::ad {

using FloatArray = vs::CowArray<float>;

// ---------------------------------------------------------------------------
// Example operation to differentiate: values[a] + values[b]. O(1).

inline float MyOp(const FloatArray& values, std::size_t a, std::size_t b) {
  return values[a] + values[b];
}

// ---------------------------------------------------------------------------
// Functional representation.

// Pullback type: (T) -> [T]. Allocates O(n) memory per call.
using FunctionalPullback = std::function<FloatArray(float)>;

struct SubscriptFunctionalResult {
  float value;
  FunctionalPullback pullback;
};

inline SubscriptFunctionalResult SubscriptWithFunctionalPullback(
    const FloatArray& values, std::size_t index) {
  // Optimization from the paper: capture only the size, not the array.
  const std::size_t size = values.size();
  return {values[index], [size, index](float dx) {
            FloatArray tmp(size, 0.0f);  // Allocates O(n) memory!
            tmp.at_mut(index) = dx;
            return tmp;
          }};
}

// Elementwise sum helper (O(n)).
inline FloatArray SumArraysHelper(const FloatArray& a, const FloatArray& b) {
  S4TF_CHECK_EQ(a.size(), b.size());
  FloatArray result(a.size(), 0.0f);
  float* r = result.mutable_data();
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return result;
}

struct MyOpFunctionalResult {
  float value;
  FunctionalPullback pullback;
};

inline MyOpFunctionalResult MyOpWithFunctionalPullback(
    const FloatArray& values, std::size_t a, std::size_t b) {
  auto [a_val, a_pb] = SubscriptWithFunctionalPullback(values, a);
  auto [b_val, b_pb] = SubscriptWithFunctionalPullback(values, b);
  const float result = a_val + b_val;
  return {result, [a_pb = std::move(a_pb), b_pb = std::move(b_pb)](float dx) {
            const FloatArray da = a_pb(dx);  // O(n), allocates O(n).
            const FloatArray db = b_pb(dx);  // O(n), allocates O(n).
            return SumArraysHelper(da, db);  // O(n).
          }};
}

// ---------------------------------------------------------------------------
// Value-semantic (inout) representation.

// Pullback type: (T, inout [T]) -> Void. Constant time, zero allocations.
using MutablePullback = std::function<void(float, vs::Inout<FloatArray>)>;

struct SubscriptMutableResult {
  float value;
  MutablePullback pullback;
};

inline SubscriptMutableResult SubscriptWithMutablePullback(
    const FloatArray& values, std::size_t index) {
  return {values[index], [index](float dx, FloatArray& d_values) {
            d_values.at_mut(index) += dx;  // Constant time!
          }};
}

struct MyOpMutableResult {
  float value;
  MutablePullback pullback;
};

inline MyOpMutableResult MyOpWithMutablePullback(const FloatArray& values,
                                                 std::size_t a,
                                                 std::size_t b) {
  auto [a_val, a_pb] = SubscriptWithMutablePullback(values, a);
  auto [b_val, b_pb] = SubscriptWithMutablePullback(values, b);
  return {a_val + b_val,
          [a_pb = std::move(a_pb), b_pb = std::move(b_pb)](
              float dx, FloatArray& d_values) {
            a_pb(dx, d_values);  // Constant time.
            b_pb(dx, d_values);  // Constant time.
          }};
}

}  // namespace s4tf::ad
