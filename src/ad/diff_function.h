// Differentiable function values (paper §2.1, Figure 3).
//
// A `@differentiable (A) -> B` value is a bundle of three functions:
//   original : (A) -> B
//   JVP      : (A) -> (B, (A.TangentVector) -> B.TangentVector)
//   VJP      : (A) -> (B, (B.TangentVector) -> A.TangentVector)
// The JVP implements forward mode; the VJP implements reverse mode. The
// closures returned by JVP/VJP are the *differential* and *pullback*
// respectively.
//
// `Compose` implements the chain rule over bundles — this is exactly the
// recursion the paper's compiler transformation performs over callees,
// expressed as a library combinator. The mini-SIL pass in src/sil performs
// the same construction on IR.
#pragma once

#include <functional>
#include <utility>

#include "ad/differentiable.h"

namespace s4tf::ad {

template <Differentiable B>
using Differential =
    std::function<TangentVectorOf<B>(const TangentVectorOf<B>&)>;

// (A.TangentVector) -> B.TangentVector
template <Differentiable A, Differentiable B>
using DifferentialFn =
    std::function<TangentVectorOf<B>(const TangentVectorOf<A>&)>;

// (B.TangentVector) -> A.TangentVector
template <Differentiable A, Differentiable B>
using PullbackFn = std::function<TangentVectorOf<A>(const TangentVectorOf<B>&)>;

template <Differentiable A, Differentiable B>
struct DifferentiableFunction {
  using Original = std::function<B(const A&)>;
  using Jvp = std::function<std::pair<B, DifferentialFn<A, B>>(const A&)>;
  using Vjp = std::function<std::pair<B, PullbackFn<A, B>>(const A&)>;

  Original original;
  Jvp jvp;
  Vjp vjp;

  B operator()(const A& x) const { return original(x); }
};

// Builds a bundle from an original function and its two derivative
// functions (the explicit form of the paper's @derivative(of:) attribute).
template <Differentiable A, Differentiable B>
DifferentiableFunction<A, B> MakeDifferentiable(
    typename DifferentiableFunction<A, B>::Original original,
    typename DifferentiableFunction<A, B>::Jvp jvp,
    typename DifferentiableFunction<A, B>::Vjp vjp) {
  return DifferentiableFunction<A, B>{std::move(original), std::move(jvp),
                                      std::move(vjp)};
}

// Chain rule: (g ∘ f). The returned bundle's differential composes
// forward (df then dg); its pullback composes backward (g's pullback then
// f's) — the same wiring the compiler transformation emits for a call.
template <Differentiable A, Differentiable B, Differentiable C>
DifferentiableFunction<A, C> Compose(const DifferentiableFunction<B, C>& g,
                                     const DifferentiableFunction<A, B>& f) {
  DifferentiableFunction<A, C> result;
  result.original = [g, f](const A& x) { return g.original(f.original(x)); };
  result.jvp = [g, f](const A& x) {
    auto [y, df] = f.jvp(x);
    auto [z, dg] = g.jvp(y);
    DifferentialFn<A, C> differential =
        [df = std::move(df), dg = std::move(dg)](
            const TangentVectorOf<A>& dx) { return dg(df(dx)); };
    return std::pair<C, DifferentialFn<A, C>>{std::move(z),
                                              std::move(differential)};
  };
  result.vjp = [g, f](const A& x) {
    auto [y, pb_f] = f.vjp(x);
    auto [z, pb_g] = g.vjp(y);
    PullbackFn<A, C> pullback =
        [pb_f = std::move(pb_f), pb_g = std::move(pb_g)](
            const TangentVectorOf<C>& dz) { return pb_f(pb_g(dz)); };
    return std::pair<C, PullbackFn<A, C>>{std::move(z), std::move(pullback)};
  };
  return result;
}

// Pointwise sum of two differentiable functions with the same signature.
template <Differentiable A, Differentiable B>
  requires AdditiveArithmetic<B>
DifferentiableFunction<A, B> Sum(const DifferentiableFunction<A, B>& f,
                                 const DifferentiableFunction<A, B>& g) {
  DifferentiableFunction<A, B> result;
  result.original = [f, g](const A& x) {
    return f.original(x) + g.original(x);
  };
  result.jvp = [f, g](const A& x) {
    auto [y1, d1] = f.jvp(x);
    auto [y2, d2] = g.jvp(x);
    DifferentialFn<A, B> differential =
        [d1 = std::move(d1), d2 = std::move(d2)](
            const TangentVectorOf<A>& dx) { return d1(dx) + d2(dx); };
    return std::pair<B, DifferentialFn<A, B>>{y1 + y2,
                                              std::move(differential)};
  };
  result.vjp = [f, g](const A& x) {
    auto [y1, p1] = f.vjp(x);
    auto [y2, p2] = g.vjp(x);
    PullbackFn<A, B> pullback =
        [p1 = std::move(p1), p2 = std::move(p2)](
            const TangentVectorOf<B>& dy) { return p1(dy) + p2(dy); };
    return std::pair<B, PullbackFn<A, B>>{y1 + y2, std::move(pullback)};
  };
  return result;
}

// Identity bundle, useful as a fold seed.
template <Differentiable A>
DifferentiableFunction<A, A> Identity() {
  DifferentiableFunction<A, A> result;
  result.original = [](const A& x) { return x; };
  result.jvp = [](const A& x) {
    return std::pair<A, DifferentialFn<A, A>>{
        x, [](const TangentVectorOf<A>& dx) { return dx; }};
  };
  result.vjp = [](const A& x) {
    return std::pair<A, PullbackFn<A, A>>{
        x, [](const TangentVectorOf<A>& dy) { return dy; }};
  };
  return result;
}

}  // namespace s4tf::ad
