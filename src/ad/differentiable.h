// The Differentiable protocol (paper Figure 1), as a C++20 concept.
//
// Swift:
//   protocol Differentiable {
//     associatedtype TangentVector: AdditiveArithmetic
//     mutating func move(along direction: TangentVector)
//   }
//
// C++: conformance is expressed through `DifferentiableTraits<T>`, which
// plays the role of the protocol witness table. Types can conform either
// intrinsically (by declaring a nested `TangentVector` and a `MoveAlong`
// member — what the S4TF compiler synthesizes for structs, and what the
// S4TF_DIFFERENTIABLE macro in struct_macros.h generates) or
// retroactively (by specializing the trait — Swift's extension-based
// conformance). float, double, and Tensor conform here.
//
// The AD system in this module is defined ONLY against these concepts; it
// has no knowledge of Tensor. That decoupling is the paper's central AD
// design claim ("The AD system is not coupled with the Tensor
// implementation").
#pragma once

#include <concepts>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace s4tf::ad {

// Swift's AdditiveArithmetic: a zero (default construction here), +, -.
template <typename T>
concept AdditiveArithmetic =
    std::default_initializable<T> && std::copy_constructible<T> &&
    requires(const T& a, const T& b) {
      { a + b } -> std::convertible_to<T>;
      { a - b } -> std::convertible_to<T>;
    };

// Primary template: intrinsic conformance via nested members.
template <typename T>
struct DifferentiableTraits {
  using TangentVector = typename T::TangentVector;
  static void MoveAlong(T& value, const TangentVector& direction) {
    value.MoveAlong(direction);
  }
};

// Retroactive conformances for scalars: TangentVector == Self.
template <>
struct DifferentiableTraits<float> {
  using TangentVector = float;
  static void MoveAlong(float& value, float direction) { value += direction; }
};

template <>
struct DifferentiableTraits<double> {
  using TangentVector = double;
  static void MoveAlong(double& value, double direction) {
    value += direction;
  }
};

// Tensor conforms with TangentVector == Tensor. A default-constructed
// Tensor is scalar zero, which is the additive identity under
// broadcasting — mirroring S4TF's zero tangent optimization.
template <>
struct DifferentiableTraits<Tensor> {
  using TangentVector = Tensor;
  static void MoveAlong(Tensor& value, const Tensor& direction) {
    // Fast path: in-place when storage is uniquely owned and shapes match.
    if (direction.shape() == value.shape()) {
      value.InPlaceAxpy(1.0f, direction);
    } else {
      value = value + direction;
    }
  }
};

template <typename T>
using TangentVectorOf = typename DifferentiableTraits<T>::TangentVector;

// std::vector<T> of Differentiable elements conforms with a per-element
// tangent (Swift's Array conformance, used by models holding stacks of
// layers, e.g. ResNet's block arrays). An empty tangent is the zero of
// any length, mirroring the zero-tangent broadcast convention.
template <typename T>
struct DifferentiableTraits<std::vector<T>> {
  struct TangentVector {
    std::vector<typename DifferentiableTraits<T>::TangentVector> elements;

    TangentVector operator+(const TangentVector& o) const {
      if (elements.empty()) return o;
      if (o.elements.empty()) return *this;
      TangentVector r;
      r.elements.reserve(elements.size());
      for (std::size_t i = 0; i < elements.size(); ++i) {
        r.elements.push_back(elements[i] + o.elements[i]);
      }
      return r;
    }
    TangentVector operator-(const TangentVector& o) const {
      TangentVector r = *this;
      if (o.elements.empty()) return r;
      if (r.elements.empty()) {
        r.elements.resize(o.elements.size());
      }
      for (std::size_t i = 0; i < r.elements.size(); ++i) {
        r.elements[i] = r.elements[i] - o.elements[i];
      }
      return r;
    }
  };

  static void MoveAlong(std::vector<T>& values,
                        const TangentVector& direction) {
    if (direction.elements.empty()) return;  // zero tangent
    for (std::size_t i = 0; i < values.size(); ++i) {
      DifferentiableTraits<T>::MoveAlong(values[i], direction.elements[i]);
    }
  }
};

template <typename T>
concept Differentiable =
    AdditiveArithmetic<TangentVectorOf<T>> &&
    requires(T value, const TangentVectorOf<T>& direction) {
      DifferentiableTraits<T>::MoveAlong(value, direction);
    };

// The exponential map (Figure 1's `move(along:)`), as a free function.
template <Differentiable T>
void MoveAlong(T& value, const TangentVectorOf<T>& direction) {
  DifferentiableTraits<T>::MoveAlong(value, direction);
}

// Zero tangent of a Differentiable value.
template <Differentiable T>
TangentVectorOf<T> ZeroTangent() {
  return TangentVectorOf<T>{};
}

static_assert(Differentiable<float>);
static_assert(Differentiable<double>);
static_assert(Differentiable<Tensor>);

}  // namespace s4tf::ad
