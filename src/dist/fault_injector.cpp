#include "dist/fault_injector.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "support/error.h"
#include "support/hashing.h"

namespace s4tf::dist {

namespace {

obs::Counter* CorruptionCounter() {
  static obs::Counter* counter = obs::GetCounter("dist.fault.corruptions");
  return counter;
}

}  // namespace

std::uint64_t MessageKey::Packed() const {
  S4TF_CHECK_LT(seq, 1u << 25) << "collective sequence number overflow";
  S4TF_CHECK_LT(bucket, 1u << 16) << "bucket index overflow";
  S4TF_CHECK_LT(src, 1u << 10) << "rank overflow";
  S4TF_CHECK_LT(chunk, 1u << 10) << "chunk index overflow";
  // phase(3) | seq(25) | bucket(16) | src(10) | chunk(10) = 64 bits.
  return (static_cast<std::uint64_t>(phase) << 61) |
         (static_cast<std::uint64_t>(seq) << 36) |
         (static_cast<std::uint64_t>(bucket) << 20) |
         (static_cast<std::uint64_t>(src) << 10) |
         static_cast<std::uint64_t>(chunk);
}

double FaultInjector::UnitDraw(const MessageKey& key,
                               std::uint64_t salt) const {
  std::uint64_t h = HashValue(key.Packed(), kFnvOffset ^ plan_.seed);
  h = HashCombine(h, salt);
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int FaultInjector::DropsFor(const MessageKey& key) const {
  if (plan_.drop_probability <= 0.0) return 0;
  if (UnitDraw(key, /*salt=*/0x9d09) >= plan_.drop_probability) return 0;
  return plan_.drops_per_event;
}

bool FaultInjector::DiesAt(int rank, std::uint32_t seq) const {
  return plan_.death_rank >= 0 && rank == plan_.death_rank &&
         seq >= plan_.death_seq;
}

bool ApplyCorruption(const FaultPlan& plan, CorruptPhase phase, int rank,
                     std::int64_t step, float* data, std::int64_t total,
                     std::int64_t begin, std::int64_t end) {
  if (plan.corrupt_kind == CorruptKind::kNone) return false;
  if (rank != plan.corrupt_rank || step != plan.corrupt_seq) return false;
  // kNaN/kInf poison the local gradients; kBitflip poisons the agreement
  // buffer. A site owning the other phase is a no-op.
  const CorruptPhase target = plan.corrupt_kind == CorruptKind::kBitflip
                                  ? CorruptPhase::kAgreement
                                  : CorruptPhase::kLocal;
  if (phase != target) return false;
  if (total <= 0) return false;
  // Struck element: a pure function of (seed, step), independent of how
  // the buffer is sliced across injection calls.
  std::uint64_t h = HashValue(static_cast<std::uint64_t>(step),
                              kFnvOffset ^ plan.seed);
  h = HashCombine(h, /*salt=*/0xc0de);
  const std::int64_t p =
      static_cast<std::int64_t>(h % static_cast<std::uint64_t>(total));
  if (p < begin || p >= end) return false;
  float& slot = data[static_cast<std::size_t>(p)];
  switch (plan.corrupt_kind) {
    case CorruptKind::kNaN:
      slot = std::numeric_limits<float>::quiet_NaN();
      break;
    case CorruptKind::kInf:
      slot = std::numeric_limits<float>::infinity();
      break;
    case CorruptKind::kBitflip: {
      // XOR with a seeded single bit: always changes the stored pattern,
      // and a one-bit difference is always visible to CRC32.
      std::uint32_t bits = 0;
      std::memcpy(&bits, &slot, sizeof(bits));
      bits ^= 1u << (HashCombine(h, /*salt=*/0xb17f) % 32);
      std::memcpy(&slot, &bits, sizeof(bits));
      break;
    }
    case CorruptKind::kNone:
      return false;
  }
  CorruptionCounter()->Increment();
  return true;
}

std::chrono::microseconds FaultInjector::DelayFor(
    const MessageKey& key) const {
  if (plan_.straggler_probability <= 0.0 ||
      plan_.straggler_delay.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  if (UnitDraw(key, /*salt=*/0x57a6) >= plan_.straggler_probability) {
    return std::chrono::microseconds{0};
  }
  return plan_.straggler_delay;
}

}  // namespace s4tf::dist
