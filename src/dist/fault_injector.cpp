#include "dist/fault_injector.h"

#include "support/error.h"
#include "support/hashing.h"

namespace s4tf::dist {

std::uint64_t MessageKey::Packed() const {
  S4TF_CHECK_LT(seq, 1u << 25) << "collective sequence number overflow";
  S4TF_CHECK_LT(bucket, 1u << 16) << "bucket index overflow";
  S4TF_CHECK_LT(src, 1u << 10) << "rank overflow";
  S4TF_CHECK_LT(chunk, 1u << 10) << "chunk index overflow";
  // phase(3) | seq(25) | bucket(16) | src(10) | chunk(10) = 64 bits.
  return (static_cast<std::uint64_t>(phase) << 61) |
         (static_cast<std::uint64_t>(seq) << 36) |
         (static_cast<std::uint64_t>(bucket) << 20) |
         (static_cast<std::uint64_t>(src) << 10) |
         static_cast<std::uint64_t>(chunk);
}

double FaultInjector::UnitDraw(const MessageKey& key,
                               std::uint64_t salt) const {
  std::uint64_t h = HashValue(key.Packed(), kFnvOffset ^ plan_.seed);
  h = HashCombine(h, salt);
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int FaultInjector::DropsFor(const MessageKey& key) const {
  if (plan_.drop_probability <= 0.0) return 0;
  if (UnitDraw(key, /*salt=*/0x9d09) >= plan_.drop_probability) return 0;
  return plan_.drops_per_event;
}

bool FaultInjector::DiesAt(int rank, std::uint32_t seq) const {
  return plan_.death_rank >= 0 && rank == plan_.death_rank &&
         seq >= plan_.death_seq;
}

std::chrono::microseconds FaultInjector::DelayFor(
    const MessageKey& key) const {
  if (plan_.straggler_probability <= 0.0 ||
      plan_.straggler_delay.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  if (UnitDraw(key, /*salt=*/0x57a6) >= plan_.straggler_probability) {
    return std::chrono::microseconds{0};
  }
  return plan_.straggler_delay;
}

}  // namespace s4tf::dist
