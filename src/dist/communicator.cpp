#include "dist/communicator.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"

namespace s4tf::dist {
namespace {

obs::Counter* AllReduceCalls() {
  static obs::Counter* c = obs::GetCounter("dist.allreduce.calls");
  return c;
}
obs::Counter* AllReduceBytes() {
  static obs::Counter* c = obs::GetCounter("dist.allreduce.bytes");
  return c;
}
obs::Counter* AllReduceBuckets() {
  static obs::Counter* c = obs::GetCounter("dist.allreduce.buckets");
  return c;
}
obs::Counter* AllReduceChunks() {
  static obs::Counter* c = obs::GetCounter("dist.allreduce.chunks");
  return c;
}
obs::Counter* BarrierCount() {
  static obs::Counter* c = obs::GetCounter("dist.barrier.count");
  return c;
}
obs::Counter* SendMessages() {
  static obs::Counter* c = obs::GetCounter("dist.send.messages");
  return c;
}
obs::Counter* RetryCount() {
  static obs::Counter* c = obs::GetCounter("dist.retry.count");
  return c;
}
obs::Counter* RecvTimeouts() {
  static obs::Counter* c = obs::GetCounter("dist.recv.timeouts");
  return c;
}
obs::Counter* DroppedChunks() {
  static obs::Counter* c = obs::GetCounter("dist.fault.dropped_chunks");
  return c;
}
obs::Counter* StragglerDelays() {
  static obs::Counter* c = obs::GetCounter("dist.fault.straggler_delays");
  return c;
}
obs::Counter* ReplicaDeaths() {
  static obs::Counter* c = obs::GetCounter("dist.fault.replica_deaths");
  return c;
}
obs::Counter* OverlapAsyncCalls() {
  static obs::Counter* c = obs::GetCounter("dist.overlap.async_calls");
  return c;
}
obs::Counter* OverlapBucketsEarly() {
  static obs::Counter* c = obs::GetCounter("dist.overlap.buckets.early");
  return c;
}
obs::Counter* OverlapBucketsFlushed() {
  static obs::Counter* c =
      obs::GetCounter("dist.overlap.buckets.flushed_at_wait");
  return c;
}
obs::Counter* OverlapWaitCalls() {
  static obs::Counter* c = obs::GetCounter("dist.overlap.wait.calls");
  return c;
}
obs::Counter* ReduceScatterCalls() {
  static obs::Counter* c = obs::GetCounter("dist.reduce_scatter.calls");
  return c;
}
obs::Counter* ReduceScatterBytes() {
  static obs::Counter* c = obs::GetCounter("dist.reduce_scatter.bytes");
  return c;
}
obs::Counter* ReduceScatterChunks() {
  static obs::Counter* c = obs::GetCounter("dist.reduce_scatter.chunks");
  return c;
}
obs::Counter* AllGatherCalls() {
  static obs::Counter* c = obs::GetCounter("dist.all_gather.calls");
  return c;
}
obs::Counter* AllGatherBytes() {
  static obs::Counter* c = obs::GetCounter("dist.all_gather.bytes");
  return c;
}
obs::Counter* AllGatherChunks() {
  static obs::Counter* c = obs::GetCounter("dist.all_gather.chunks");
  return c;
}

// A shard partition must be world+1 ascending offsets spanning exactly
// [0, len] — the shape ShardOffsets produces. Shared by every sharded
// collective entry (sync and async).
void ValidateShardOffsets(const std::vector<std::int64_t>& offsets,
                          std::int64_t len, int world) {
  S4TF_CHECK_EQ(offsets.size(), static_cast<std::size_t>(world) + 1)
      << "shard_offsets must have world+1 entries";
  S4TF_CHECK_EQ(offsets.front(), 0) << "shard_offsets must start at 0";
  S4TF_CHECK_EQ(offsets.back(), len)
      << "shard_offsets must end at the buffer length";
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    S4TF_CHECK_LE(offsets[i - 1], offsets[i])
        << "shard_offsets must be ascending";
  }
}

}  // namespace

std::vector<std::int64_t> ShardOffsets(std::int64_t len, int world) {
  S4TF_CHECK_GE(world, 1);
  S4TF_CHECK_GE(len, 0);
  const std::int64_t per = world > 0 ? (len + world - 1) / world : len;
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(world) + 1);
  for (int r = 0; r <= world; ++r) {
    offsets[static_cast<std::size_t>(r)] = std::min<std::int64_t>(len, r * per);
  }
  return offsets;
}

std::unique_ptr<AsyncCollective> Communicator::RunAsync(
    int rank, const CollectiveSpec& spec, std::vector<float>& data) {
  // Synchronous fallback: the whole buffer is one logical bucket and the
  // collective runs inside Wait(). Keeps the async surface usable on any
  // communicator while consuming the same single collective seq.
  class SyncFallback final : public AsyncCollective {
   public:
    SyncFallback(Communicator* comm, int rank, CollectiveSpec spec,
                 std::vector<float>* data)
        : comm_(comm), rank_(rank), spec_(std::move(spec)), data_(data) {}

    std::int64_t num_buckets() const override {
      return data_->empty() ? 0 : 1;
    }
    void SubmitBucket(std::int64_t b) override {
      S4TF_CHECK_GE(b, 0);
      S4TF_CHECK_LT(b, num_buckets());
    }
    void Wait() override {
      if (done_) return;
      done_ = true;
      comm_->Run(rank_, spec_, *data_);
    }

   private:
    Communicator* comm_;
    int rank_;
    CollectiveSpec spec_;
    std::vector<float>* data_;
    bool done_ = false;
  };
  return std::make_unique<SyncFallback>(this, rank, spec, &data);
}

std::vector<float> OrderedTreeReduce(std::vector<std::vector<float>> parts) {
  S4TF_CHECK(!parts.empty()) << "OrderedTreeReduce needs at least one part";
  for (std::size_t i = 1; i < parts.size(); ++i) {
    S4TF_CHECK_EQ(parts[i].size(), parts[0].size())
        << "OrderedTreeReduce parts must have equal length";
  }
  // Pairwise rounds: (0,1), (2,3), ...; an odd tail carries unchanged to
  // the next round. The combine order per element is a fixed function of
  // parts.size(), never of scheduling.
  while (parts.size() > 1) {
    std::vector<std::vector<float>> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      std::vector<float>& a = parts[i];
      const std::vector<float>& b = parts[i + 1];
      for (std::size_t j = 0; j < a.size(); ++j) a[j] += b[j];
      next.push_back(std::move(a));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return std::move(parts.front());
}

std::vector<float> OrderedTreeReduceMean(
    std::vector<std::vector<float>> parts) {
  const float scale = 1.0f / static_cast<float>(parts.size());
  std::vector<float> out = OrderedTreeReduce(std::move(parts));
  for (float& v : out) v *= scale;
  return out;
}

// Shared state of one in-flight asynchronous collective. The caller's
// thread and the rank's comm thread synchronize exclusively through
// `mutex`/`cv`; `completed == enqueued` with no further enqueues pending
// means no comm-thread access to `data` can happen afterwards.
struct RingCommunicator::AsyncOp {
  int rank = 0;
  std::uint32_t seq = 0;
  std::vector<float>* data = nullptr;
  CollectiveKind kind = CollectiveKind::kAllReduce;
  ReduceOp op = ReduceOp::kSum;
  // Resolved shard partition (kReduceScatter/kAllGather only).
  std::vector<std::int64_t> shard_offsets;
  std::int64_t num_buckets = 0;

  std::mutex mutex;
  std::condition_variable cv;
  std::int64_t enqueued = 0;   // buckets handed to the comm thread
  std::int64_t completed = 0;  // buckets finished (run, failed, or skipped)
  bool abandoned = false;      // handle destroyed without Wait: stop early
  std::exception_ptr error;    // first bucket failure
};

struct RingCommunicator::BucketJob {
  std::shared_ptr<AsyncOp> op;
  std::int64_t bucket = 0;
};

struct RingCommunicator::CommThread {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<BucketJob> queue;
  bool shutdown = false;
  std::thread thread;  // started on the rank's first AllReduceAsync
};

RingCommunicator::RingCommunicator(int world_size, CollectiveOptions options,
                                   FaultPlan faults)
    : world_(world_size),
      options_(options),
      injector_(std::move(faults)),
      states_(static_cast<std::size_t>(std::max(world_size, 1))) {
  S4TF_CHECK_GE(world_, 1) << "world size must be positive";
  S4TF_CHECK_LT(world_, 1 << 10) << "world size exceeds message-key range";
  S4TF_CHECK_GT(options_.bucket_bytes, 0) << "bucket_bytes must be positive";
  S4TF_CHECK_GE(options_.max_retries, 0);
  mailboxes_.reserve(static_cast<std::size_t>(world_));
  comm_threads_.reserve(static_cast<std::size_t>(world_));
  for (int i = 0; i < world_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    comm_threads_.push_back(std::make_unique<CommThread>());
  }
}

RingCommunicator::~RingCommunicator() {
  // All handles must be waited/destroyed before the communicator dies, so
  // the queues are normally empty here; any stragglers are bounded by the
  // per-receive retry budget and drain before the join returns.
  for (auto& ct : comm_threads_) {
    {
      std::lock_guard<std::mutex> lock(ct->mutex);
      ct->shutdown = true;
    }
    ct->cv.notify_all();
    if (ct->thread.joinable()) ct->thread.join();
  }
}

void RingCommunicator::AttachAccelerator(int rank,
                                         SimAccelerator* accelerator) {
  S4TF_CHECK_GE(rank, 0);
  S4TF_CHECK_LT(rank, world_);
  states_[static_cast<std::size_t>(rank)].accelerator = accelerator;
}

void RingCommunicator::Send(int dst, const MessageKey& key,
                            std::vector<float> payload) {
  SendMessages()->Increment();
  Message msg;
  msg.payload = std::move(payload);
  msg.drops_remaining = injector_.DropsFor(key);
  msg.available_at = std::chrono::steady_clock::now();
  const std::chrono::microseconds delay = injector_.DelayFor(key);
  if (delay.count() > 0) {
    msg.available_at += delay;
    StragglerDelays()->Increment();
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    const bool inserted =
        box.slots.emplace(key.Packed(), std::move(msg)).second;
    S4TF_CHECK(inserted) << "duplicate collective message key (collective "
                            "calls out of order across ranks?)";
  }
  box.cv.notify_all();
}

std::vector<float> RingCommunicator::Recv(int rank, const MessageKey& key,
                                          std::size_t expected_len) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  const std::uint64_t slot = key.Packed();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Zero-duration marker so traces show every retry individually.
      obs::TraceSpan retry_span("dist.retry", "dist", "attempt", attempt);
      RetryCount()->Increment();
    }
    const auto deadline =
        std::chrono::steady_clock::now() + options_.recv_timeout;
    std::unique_lock<std::mutex> lock(box.mutex);
    bool timed_out = false;
    while (!timed_out) {
      const auto now = std::chrono::steady_clock::now();
      auto it = box.slots.find(slot);
      if (it == box.slots.end()) {
        if (now >= deadline) {
          timed_out = true;
        } else {
          box.cv.wait_until(lock, deadline);
        }
        continue;
      }
      Message& msg = it->second;
      if (msg.drops_remaining > 0) {
        // This delivery is injected as lost. The receiver's observable
        // behaviour — one timeout, one retry — is charged immediately
        // instead of sleeping out the full recv_timeout, keeping the
        // retry accounting identical while tests stay fast.
        --msg.drops_remaining;
        DroppedChunks()->Increment();
        timed_out = true;
        continue;
      }
      if (msg.available_at > now) {
        // Straggler: deposited but not yet readable.
        if (now >= deadline) {
          timed_out = true;
        } else {
          box.cv.wait_until(lock, std::min(msg.available_at, deadline));
        }
        continue;
      }
      std::vector<float> payload = std::move(msg.payload);
      box.slots.erase(it);
      lock.unlock();
      S4TF_CHECK_EQ(payload.size(), expected_len)
          << "collective payload length mismatch";
      return payload;
    }
    RecvTimeouts()->Increment();
  }
  S4TF_CHECK(false) << "collective receive failed after "
                    << options_.max_retries
                    << " retries (rank " << rank << ", phase "
                    << static_cast<int>(key.phase) << ", seq " << key.seq
                    << ", bucket " << key.bucket << ", src " << key.src
                    << ", chunk " << key.chunk << ")";
  return {};  // unreachable; S4TF_CHECK throws
}

CollectiveResult RingCommunicator::Run(int rank, const CollectiveSpec& spec,
                                       std::vector<float>& data) {
  S4TF_CHECK_GE(rank, 0);
  S4TF_CHECK_LT(rank, world_);
  const std::int64_t bytes =
      static_cast<std::int64_t>(data.size() * sizeof(float));
  obs::TraceSpan span(spec.kind == CollectiveKind::kAllReduce
                          ? "dist.allreduce"
                          : (spec.kind == CollectiveKind::kReduceScatter
                                 ? "dist.reduce_scatter"
                                 : "dist.all_gather"),
                      "dist", "bytes", bytes);
  switch (spec.kind) {
    case CollectiveKind::kAllReduce:
      AllReduceCalls()->Increment();
      AllReduceBytes()->Add(bytes);
      break;
    case CollectiveKind::kReduceScatter:
      ReduceScatterCalls()->Increment();
      ReduceScatterBytes()->Add(bytes);
      break;
    case CollectiveKind::kAllGather:
      AllGatherCalls()->Increment();
      AllGatherBytes()->Add(bytes);
      break;
  }

  RankState& state = states_[static_cast<std::size_t>(rank)];
  const std::uint32_t seq = state.next_seq++;
  if (injector_.DiesAt(rank, seq)) {
    // Permanent death: this rank never sends its chunks, so every peer's
    // receive of them times out and fails loudly within its bounded
    // budget — no hang, by construction.
    ReplicaDeaths()->Increment();
    throw ReplicaDeadError(rank, seq);
  }

  const std::int64_t num_buckets = NumAllReduceBuckets(
      static_cast<std::int64_t>(data.size()), options_.bucket_bytes);
  S4TF_CHECK_LT(num_buckets, 1 << 16) << "too many buckets for message key";

  if (spec.kind == CollectiveKind::kAllReduce) {
    AllReduceBuckets()->Add(num_buckets);
    for (std::int64_t b = 0; b < num_buckets; ++b) {
      RunBucket(rank, seq, b, data, spec.reduce);
    }
  } else {
    const std::vector<std::int64_t> offsets =
        spec.shard_offsets.empty()
            ? ShardOffsets(static_cast<std::int64_t>(data.size()), world_)
            : spec.shard_offsets;
    ValidateShardOffsets(offsets, static_cast<std::int64_t>(data.size()),
                         world_);
    for (std::int64_t b = 0; b < num_buckets; ++b) {
      RunShardBucket(spec.kind, rank, seq, b, data, spec.reduce, offsets);
    }
  }
  CollectiveResult result;
  result.bytes = bytes;
  result.buckets = num_buckets;
  return result;
}

void RingCommunicator::ScatterReducePhase(CollectiveKind kind, int rank,
                                          std::uint32_t seq, std::int64_t b,
                                          std::vector<float>& data,
                                          ReduceOp op,
                                          const std::int64_t* off) {
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const auto chunk_begin = [&](int c) { return off[c]; };
  const auto chunk_len = [&](int c) { return off[c + 1] - off[c]; };

  // Scatter: every raw chunk goes straight to its owner rank.
  for (int c = 0; c < world_; ++c) {
    const std::int64_t clen = chunk_len(c);
    if (clen == 0) continue;
    const std::int64_t cbytes =
        clen * static_cast<std::int64_t>(sizeof(float));
    if (kind == CollectiveKind::kAllReduce) {
      AllReduceChunks()->Increment();
      if (state.accelerator != nullptr) {
        state.accelerator->ChargeAllReduce(cbytes, world_,
                                           options_.topology);
      }
    } else {
      ReduceScatterChunks()->Increment();
      if (state.accelerator != nullptr) {
        state.accelerator->ChargeReduceScatter(cbytes, world_);
      }
    }
    if (c == rank) continue;  // own chunk stays local
    MessageKey key{MessagePhase::kScatter, seq,
                   static_cast<std::uint32_t>(b),
                   static_cast<std::uint16_t>(rank),
                   static_cast<std::uint16_t>(c)};
    Send(c, key,
         std::vector<float>(data.begin() + chunk_begin(c),
                            data.begin() + chunk_begin(c) + clen));
  }

  // Owner-side reduce of this rank's chunk: parts gathered in rank
  // order 0..world-1 and combined by the canonical tree, so the result
  // is independent of arrival order, chunking, and threading.
  const std::int64_t own_len = chunk_len(rank);
  if (own_len > 0) {
    std::vector<std::vector<float>> parts;
    parts.reserve(static_cast<std::size_t>(world_));
    for (int src = 0; src < world_; ++src) {
      if (src == rank) {
        parts.emplace_back(data.begin() + chunk_begin(rank),
                           data.begin() + chunk_begin(rank) + own_len);
      } else {
        MessageKey key{MessagePhase::kScatter, seq,
                       static_cast<std::uint32_t>(b),
                       static_cast<std::uint16_t>(src),
                       static_cast<std::uint16_t>(rank)};
        parts.push_back(Recv(rank, key, static_cast<std::size_t>(own_len)));
      }
    }
    std::vector<float> reduced = op == ReduceOp::kMean
                                     ? OrderedTreeReduceMean(std::move(parts))
                                     : OrderedTreeReduce(std::move(parts));
    std::copy(reduced.begin(), reduced.end(),
              data.begin() + chunk_begin(rank));
  }
}

void RingCommunicator::GatherPhase(CollectiveKind kind, int rank,
                                   std::uint32_t seq, std::int64_t b,
                                   std::vector<float>& data,
                                   const std::int64_t* off) {
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const int next = (rank + 1) % world_;
  const int prev = (rank - 1 + world_) % world_;
  const auto chunk_begin = [&](int c) { return off[c]; };
  const auto chunk_len = [&](int c) { return off[c + 1] - off[c]; };

  // All-gather ring: at step s, send the chunk received at step s-1
  // (own chunk at s=0) to the next rank.
  for (int s = 0; s < world_ - 1; ++s) {
    const int send_chunk = (rank - s + world_) % world_;
    const std::int64_t slen = chunk_len(send_chunk);
    if (slen > 0) {
      if (kind == CollectiveKind::kAllGather) {
        AllGatherChunks()->Increment();
        if (state.accelerator != nullptr) {
          state.accelerator->ChargeAllGather(
              slen * static_cast<std::int64_t>(sizeof(float)), world_);
        }
      }
      MessageKey key{MessagePhase::kGather, seq,
                     static_cast<std::uint32_t>(b),
                     static_cast<std::uint16_t>(rank),
                     static_cast<std::uint16_t>(send_chunk)};
      Send(next, key,
           std::vector<float>(
               data.begin() + chunk_begin(send_chunk),
               data.begin() + chunk_begin(send_chunk) + slen));
    }
    const int recv_chunk = (rank - 1 - s + world_) % world_;
    const std::int64_t rlen = chunk_len(recv_chunk);
    if (rlen > 0) {
      MessageKey key{MessagePhase::kGather, seq,
                     static_cast<std::uint32_t>(b),
                     static_cast<std::uint16_t>(prev),
                     static_cast<std::uint16_t>(recv_chunk)};
      std::vector<float> payload =
          Recv(rank, key, static_cast<std::size_t>(rlen));
      std::copy(payload.begin(), payload.end(),
                data.begin() + chunk_begin(recv_chunk));
    }
  }
}

void RingCommunicator::RunBucket(int rank, std::uint32_t seq,
                                 std::int64_t b, std::vector<float>& data,
                                 ReduceOp op) {
  const std::int64_t len = static_cast<std::int64_t>(data.size());
  const std::int64_t bucket_elems = std::max<std::int64_t>(
      1, options_.bucket_bytes / static_cast<std::int64_t>(sizeof(float)));
  const std::int64_t b_begin = b * bucket_elems;
  const std::int64_t b_len = std::min(len - b_begin, bucket_elems);
  // One chunk per rank; `per`-sized except a short (possibly empty)
  // tail. Every rank derives the same geometry from b_len alone, so
  // empty chunks are skipped consistently on both sides of every send.
  const std::int64_t per = (b_len + world_ - 1) / world_;
  std::vector<std::int64_t> off(static_cast<std::size_t>(world_) + 1);
  for (int c = 0; c <= world_; ++c) {
    off[static_cast<std::size_t>(c)] =
        b_begin + std::min<std::int64_t>(b_len, c * per);
  }
  ScatterReducePhase(CollectiveKind::kAllReduce, rank, seq, b, data, op,
                     off.data());
  GatherPhase(CollectiveKind::kAllReduce, rank, seq, b, data, off.data());
}

void RingCommunicator::RunShardBucket(
    CollectiveKind kind, int rank, std::uint32_t seq, std::int64_t b,
    std::vector<float>& data, ReduceOp op,
    const std::vector<std::int64_t>& shard_offsets) {
  const std::int64_t len = static_cast<std::int64_t>(data.size());
  const std::int64_t bucket_elems = std::max<std::int64_t>(
      1, options_.bucket_bytes / static_cast<std::int64_t>(sizeof(float)));
  const std::int64_t b_begin = b * bucket_elems;
  const std::int64_t b_end = std::min(len, b_begin + bucket_elems);
  // Chunk c = shard c clipped to this bucket's element range; every rank
  // derives the identical partition, so empty chunks are skipped
  // consistently on both sides of every send.
  std::vector<std::int64_t> off(static_cast<std::size_t>(world_) + 1);
  for (int c = 0; c <= world_; ++c) {
    off[static_cast<std::size_t>(c)] = std::min(
        b_end, std::max(b_begin, shard_offsets[static_cast<std::size_t>(c)]));
  }
  if (kind == CollectiveKind::kReduceScatter) {
    ScatterReducePhase(kind, rank, seq, b, data, op, off.data());
  } else {
    GatherPhase(kind, rank, seq, b, data, off.data());
  }
}

RingCommunicator::CommThread& RingCommunicator::EnsureCommThread(int rank) {
  CommThread& ct = *comm_threads_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(ct.mutex);
  if (!ct.thread.joinable()) {
    ct.thread = std::thread([this, rank] { CommThreadMain(rank); });
  }
  return ct;
}

void RingCommunicator::CommThreadMain(int rank) {
  CommThread& ct = *comm_threads_[static_cast<std::size_t>(rank)];
  for (;;) {
    BucketJob job;
    {
      std::unique_lock<std::mutex> lock(ct.mutex);
      ct.cv.wait(lock, [&] { return ct.shutdown || !ct.queue.empty(); });
      if (ct.queue.empty()) return;  // shutdown with nothing left to drain
      job = std::move(ct.queue.front());
      ct.queue.pop_front();
    }
    AsyncOp& op = *job.op;
    bool skip;
    {
      std::lock_guard<std::mutex> lock(op.mutex);
      // Once a bucket fails (or the handle is abandoned), later buckets of
      // the same op are skipped: the op is already lost, and skipping
      // avoids paying a full retry budget per remaining bucket. The queue
      // is FIFO and this thread is the only consumer, so which buckets
      // get skipped is deterministic given the failure point.
      skip = op.abandoned || op.error != nullptr;
    }
    if (!skip) {
      try {
        obs::TraceSpan span("dist.allreduce.bucket", "dist", "bucket",
                            job.bucket);
        if (op.kind == CollectiveKind::kAllReduce) {
          RunBucket(op.rank, op.seq, job.bucket, *op.data, op.op);
        } else {
          RunShardBucket(op.kind, op.rank, op.seq, job.bucket, *op.data,
                         op.op, op.shard_offsets);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(op.mutex);
        if (op.error == nullptr) op.error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(op.mutex);
      ++op.completed;
    }
    op.cv.notify_all();
  }
}

void RingCommunicator::EnqueueBucket(const std::shared_ptr<AsyncOp>& op,
                                     std::int64_t bucket) {
  CommThread& ct = EnsureCommThread(op->rank);
  {
    std::lock_guard<std::mutex> lock(op->mutex);
    ++op->enqueued;
  }
  {
    std::lock_guard<std::mutex> lock(ct.mutex);
    ct.queue.push_back(BucketJob{op, bucket});
  }
  ct.cv.notify_all();
}

class RingCommunicator::RingAsyncCollective final : public AsyncCollective {
 public:
  RingAsyncCollective(RingCommunicator* comm, std::shared_ptr<AsyncOp> op)
      : comm_(comm),
        op_(std::move(op)),
        submitted_(static_cast<std::size_t>(op_->num_buckets), 0) {}

  ~RingAsyncCollective() override {
    // Abandon: unsubmitted buckets are never sent (the synchronous
    // analogue of a rank that threw mid-collective), queued ones are
    // skipped, and we block until nothing is in flight so the comm thread
    // cannot touch the caller's buffer after the handle is gone.
    std::unique_lock<std::mutex> lock(op_->mutex);
    op_->abandoned = true;
    op_->cv.wait(lock, [&] { return op_->completed == op_->enqueued; });
  }

  std::int64_t num_buckets() const override { return op_->num_buckets; }

  void SubmitBucket(std::int64_t b) override {
    S4TF_CHECK_GE(b, 0);
    S4TF_CHECK_LT(b, op_->num_buckets);
    char& flag = submitted_[static_cast<std::size_t>(b)];
    S4TF_CHECK(!flag) << "bucket " << b << " submitted twice";
    flag = 1;
    OverlapBucketsEarly()->Increment();
    comm_->EnqueueBucket(op_, b);
  }

  void Wait() override {
    obs::TraceSpan span("dist.allreduce.wait", "dist");
    OverlapWaitCalls()->Increment();
    for (std::int64_t b = 0; b < op_->num_buckets; ++b) {
      char& flag = submitted_[static_cast<std::size_t>(b)];
      if (!flag) {
        flag = 1;
        OverlapBucketsFlushed()->Increment();
        comm_->EnqueueBucket(op_, b);
      }
    }
    std::unique_lock<std::mutex> lock(op_->mutex);
    op_->cv.wait(lock, [&] { return op_->completed == op_->enqueued; });
    if (op_->error != nullptr) std::rethrow_exception(op_->error);
  }

 private:
  RingCommunicator* comm_;
  std::shared_ptr<AsyncOp> op_;
  std::vector<char> submitted_;  // caller-thread only
};

std::unique_ptr<AsyncCollective> RingCommunicator::RunAsync(
    int rank, const CollectiveSpec& spec, std::vector<float>& data) {
  S4TF_CHECK_GE(rank, 0);
  S4TF_CHECK_LT(rank, world_);
  const std::int64_t bytes =
      static_cast<std::int64_t>(data.size() * sizeof(float));
  obs::TraceSpan span(spec.kind == CollectiveKind::kAllReduce
                          ? "dist.allreduce.async"
                          : (spec.kind == CollectiveKind::kReduceScatter
                                 ? "dist.reduce_scatter.async"
                                 : "dist.all_gather.async"),
                      "dist", "bytes", bytes);
  OverlapAsyncCalls()->Increment();
  switch (spec.kind) {
    case CollectiveKind::kAllReduce:
      AllReduceCalls()->Increment();
      AllReduceBytes()->Add(bytes);
      break;
    case CollectiveKind::kReduceScatter:
      ReduceScatterCalls()->Increment();
      ReduceScatterBytes()->Add(bytes);
      break;
    case CollectiveKind::kAllGather:
      AllGatherCalls()->Increment();
      AllGatherBytes()->Add(bytes);
      break;
  }

  RankState& state = states_[static_cast<std::size_t>(rank)];
  const std::uint32_t seq = state.next_seq++;
  if (injector_.DiesAt(rank, seq)) {
    // Dying at the async entry: no handle is created and nothing is ever
    // sent for this seq, so peers time out on every bucket and fail
    // loudly within their bounded budgets — same as the sync path.
    ReplicaDeaths()->Increment();
    throw ReplicaDeadError(rank, seq);
  }

  const std::int64_t num_buckets = NumAllReduceBuckets(
      static_cast<std::int64_t>(data.size()), options_.bucket_bytes);
  S4TF_CHECK_LT(num_buckets, 1 << 16) << "too many buckets for message key";

  auto async = std::make_shared<AsyncOp>();
  async->rank = rank;
  async->seq = seq;
  async->data = &data;
  async->kind = spec.kind;
  async->op = spec.reduce;
  async->num_buckets = num_buckets;
  if (spec.kind == CollectiveKind::kAllReduce) {
    AllReduceBuckets()->Add(num_buckets);
  } else {
    async->shard_offsets =
        spec.shard_offsets.empty()
            ? ShardOffsets(static_cast<std::int64_t>(data.size()), world_)
            : spec.shard_offsets;
    ValidateShardOffsets(async->shard_offsets,
                         static_cast<std::int64_t>(data.size()), world_);
  }
  return std::make_unique<RingAsyncCollective>(this, std::move(async));
}

void RingCommunicator::Barrier(int rank) {
  S4TF_CHECK_GE(rank, 0);
  S4TF_CHECK_LT(rank, world_);
  obs::TraceSpan span("dist.barrier", "dist");
  BarrierCount()->Increment();
  RankState& state = states_[static_cast<std::size_t>(rank)];
  const std::uint32_t seq = state.next_seq++;
  if (injector_.DiesAt(rank, seq)) {
    ReplicaDeaths()->Increment();
    throw ReplicaDeadError(rank, seq);
  }
  if (world_ == 1) return;

  const int next = (rank + 1) % world_;
  const int prev = (rank - 1 + world_) % world_;
  const auto key_for = [seq](MessagePhase phase, int src) {
    return MessageKey{phase, seq, 0, static_cast<std::uint16_t>(src), 0};
  };
  // Pass 1 (kBarrierIn): a token travels 0 -> 1 -> ... -> world-1 -> 0;
  // rank 0 receiving it proves every rank has entered. Pass 2
  // (kBarrierOut): the release token travels the same ring; no rank
  // exits before rank 0 has observed full arrival.
  if (rank == 0) {
    Send(next, key_for(MessagePhase::kBarrierIn, 0), {});
    Recv(0, key_for(MessagePhase::kBarrierIn, world_ - 1), 0);
    Send(next, key_for(MessagePhase::kBarrierOut, 0), {});
    Recv(0, key_for(MessagePhase::kBarrierOut, world_ - 1), 0);
  } else {
    Recv(rank, key_for(MessagePhase::kBarrierIn, prev), 0);
    Send(next, key_for(MessagePhase::kBarrierIn, rank), {});
    Recv(rank, key_for(MessagePhase::kBarrierOut, prev), 0);
    Send(next, key_for(MessagePhase::kBarrierOut, rank), {});
  }
}

}  // namespace s4tf::dist
