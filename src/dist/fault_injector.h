// Deterministic fault injection for the replica communicator.
//
// The paper's Table 1 runs are synchronous across 8-32 TPU hosts; at that
// scale, dropped packets and straggling replicas are the normal case, not
// the exception. The simulated transport in dist/communicator.h consults a
// FaultInjector on every message send: a message may lose its first k
// deliveries (the receiver times out and retries) or arrive late (a
// straggler delay). All decisions are pure functions of (seed, message
// key), so a faulty run is bit-reproducible and — because message keys do
// not depend on thread scheduling — the injected fault set is identical
// for any worker interleaving.
#pragma once

#include <chrono>
#include <cstdint>

namespace s4tf::dist {

// Phases of the bucketed ring all-reduce plus the ring barrier. Part of
// every message key.
enum class MessagePhase : std::uint8_t {
  kScatter = 0,     // raw gradient chunk, source -> chunk owner
  kGather = 1,      // reduced chunk travelling the all-gather ring
  kBarrierIn = 2,   // barrier pass 1: token accumulates at rank 0
  kBarrierOut = 3,  // barrier pass 2: release travels the ring
};

// Uniquely identifies one logical message of one collective. `seq` is the
// per-communicator collective sequence number (every rank calls the same
// collectives in the same order, so ranks agree on it without
// synchronization).
struct MessageKey {
  MessagePhase phase = MessagePhase::kScatter;
  std::uint32_t seq = 0;     // < 2^25
  std::uint32_t bucket = 0;  // < 2^16
  std::uint16_t src = 0;     // < 2^10
  std::uint16_t chunk = 0;   // < 2^10, == owner rank within the bucket
  // Collision-free bit packing; CHECK-fails when a field is out of range.
  std::uint64_t Packed() const;
};

// Numeric corruption kinds for FaultPlan::corrupt_kind. kNaN/kInf model a
// numerical blowup inside one replica's backward pass; kBitflip models
// silent data corruption (a radiation/DRAM-style single-bit flip) in a
// buffer that every rank is supposed to agree on.
enum class CorruptKind : std::uint8_t {
  kNone = 0,
  kNaN = 1,
  kInf = 2,
  kBitflip = 3,
};

// What to inject. Probabilities are evaluated per message against a
// seeded hash, so "probability 1" means "every message" deterministically.
struct FaultPlan {
  std::uint64_t seed = 0;
  // P(a message loses its first deliveries). The receiver sees a timeout
  // per lost delivery and retries (bounded by CollectiveOptions).
  double drop_probability = 0.0;
  // How many consecutive deliveries a dropped message loses.
  int drops_per_event = 1;
  // P(a message is delayed by straggler_delay before becoming readable).
  double straggler_probability = 0.0;
  std::chrono::microseconds straggler_delay{0};

  // Permanent replica death (the fault drops and stragglers are not):
  // rank `death_rank` aborts every collective whose per-rank sequence
  // number is >= `death_seq` by throwing ReplicaDeadError at the
  // collective's entry, and never sends again. Peers waiting on its
  // messages exhaust their bounded retry budgets and fail loudly — the
  // signal nn::TrainingSession's elastic recovery consumes. Scheduling is
  // by (rank, seq), so the death is deterministic for any thread
  // interleaving, like every other injected fault. -1 = nobody dies.
  int death_rank = -1;
  std::uint32_t death_seq = 0;

  // Seeded numeric corruption (the test vector for the nn/guard.h
  // training guard): rank `corrupt_rank` has one gradient element struck
  // at training step `corrupt_seq`. Unlike death_seq, corrupt_seq is the
  // *group-local training-step index* counted by ReplicaGroup, not a
  // collective sequence number — a corruption poisons buffers, not
  // messages, so it is scheduled per step. The struck element index (and
  // the flipped bit, for kBitflip) are pure functions of (seed, step), so
  // a corrupt run is bit-reproducible for any thread interleaving and the
  // sync/overlap paths corrupt the identical element. kNaN/kInf strike
  // the rank's *local* gradient buffer before reduction (caught by the
  // guard's per-rank finite scan); kBitflip strikes the rank's
  // *post-collective agreement buffer* — the silent-data-corruption case
  // only the cross-replica digest vote can see. -1 = no corruption.
  int corrupt_rank = -1;
  std::int64_t corrupt_seq = -1;
  CorruptKind corrupt_kind = CorruptKind::kNone;

  bool enabled() const {
    return drop_probability > 0.0 || straggler_probability > 0.0 ||
           death_rank >= 0;
  }
};

// Which buffer a corruption strikes. The injection site passes the phase
// it owns; ApplyCorruption only fires when the planned kind targets it.
enum class CorruptPhase : std::uint8_t {
  kLocal = 0,      // local per-rank gradient buffer, before reduction
  kAgreement = 1,  // post-collective buffer every rank must agree on
};

// Applies the planned corruption to the [begin, end) slice of a buffer of
// `total` elements owned by `rank` at training step `step`. The struck
// index p is seeded in [0, total); the write happens only when p lands in
// [begin, end), so overlapped (per-bucket) and synchronous (whole-buffer)
// injection produce the identical final buffer. Returns true when an
// element was actually struck (counted in dist.fault.corruptions).
bool ApplyCorruption(const FaultPlan& plan, CorruptPhase phase, int rank,
                     std::int64_t step, float* data, std::int64_t total,
                     std::int64_t begin, std::int64_t end);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  // Number of deliveries of `key` lost before one gets through.
  int DropsFor(const MessageKey& key) const;

  // Extra latency before `key` becomes readable at the destination.
  std::chrono::microseconds DelayFor(const MessageKey& key) const;

  // True when `rank` is permanently dead for collective `seq` (and every
  // later one).
  bool DiesAt(int rank, std::uint32_t seq) const;

 private:
  // Uniform draw in [0, 1) determined by (seed, key, salt).
  double UnitDraw(const MessageKey& key, std::uint64_t salt) const;

  FaultPlan plan_;
};

}  // namespace s4tf::dist
