// The replica collective layer (paper §5.1.1, Table 1).
//
// Synchronous data-parallel training is where the paper's platform earns
// its scaling claims: K replicas compute gradients on their own shards and
// all-reduce them every step. This header is the redesigned collective
// API behind ReplicaGroup::TrainStep (nn/replica_group.h):
//
//   * Communicator — the abstract collective surface. Every rank calls the
//     same collectives in the same order from its own worker thread.
//   * RingCommunicator — the in-process implementation: gradient buffers
//     are split into configurable-size buckets, each bucket into one chunk
//     per rank; raw chunks are scattered to their owner rank, reduced
//     there in a *canonical* rank-ordered tree (OrderedTreeReduce), and
//     the reduced chunks travel a classic all-gather ring. A per-replica
//     SimAccelerator can be attached to charge the ring's simulated cost
//     per chunk (cost_model.h's AllReduceSeconds).
//
// Determinism contract: the tree reduction order per element depends only
// on the world size — not on thread scheduling, message arrival order, or
// the bucket/chunk partition (elements reduce across ranks independently,
// so chunk boundaries cannot reassociate anything). Hence the threaded,
// bucketed, fault-injected ring is bit-identical to OrderedTreeReduce[Mean]
// applied to the whole per-rank buffers on one thread — the sequential
// reference ReplicaGroup uses.
//
// Fault model: every message consults the seeded FaultInjector; lost
// deliveries and straggler delays surface as receive timeouts, recovered
// by bounded retry (obs counters and trace spans record every retry,
// timeout, and barrier). Because every receive is bounded by
// (1 + max_retries) * recv_timeout, a replica that dies mid-collective
// cannot hang the group: its peers exhaust their budgets and fail loudly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/sim_accelerator.h"
#include "dist/fault_injector.h"
#include "support/error.h"

namespace s4tf::dist {

// Thrown by the *dying* rank itself when FaultPlan::death_rank kills it
// at a collective entry. Peers observe the death indirectly — their
// receives time out and exhaust the retry budget (a plain InternalError).
// Subclasses InternalError so every existing fail-loudly path still
// catches it; nn::TrainingSession treats both as a replica failure and
// runs elastic recovery.
class ReplicaDeadError : public InternalError {
 public:
  ReplicaDeadError(int rank, std::uint32_t seq)
      : InternalError("replica " + std::to_string(rank) +
                      " died entering collective seq " +
                      std::to_string(seq)),
        rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

enum class ReduceOp {
  kSum = 0,
  kMean,  // sum scaled by 1/world_size inside the collective
};

struct CollectiveOptions {
  // Gradient bucketing granularity: each bucket is reduced and charged
  // independently (one ring per bucket, one chunk per rank per bucket).
  std::int64_t bucket_bytes = 1 << 16;
  // Per receive attempt; a lost delivery costs one timeout.
  std::chrono::milliseconds recv_timeout{250};
  // Receive attempts beyond the first before the collective fails loudly.
  int max_retries = 8;
};

// Rank-ordered pairwise tree reduction: parts[0..n) combine as
// ((p0+p1)+(p2+p3))+... regardless of how the caller obtained them. This
// is the one reduction the whole dist layer performs — the ring transports
// chunks but never reassociates — so results are bit-identical between
// the threaded collective and a sequential reference. All parts must have
// equal length.
std::vector<float> OrderedTreeReduce(std::vector<std::vector<float>> parts);
// OrderedTreeReduce followed by scaling with 1.0f / parts.size() — the
// all-reduce-mean every data-parallel step uses, applied inside the
// collective so optimizers always see correctly-scaled tangents.
std::vector<float> OrderedTreeReduceMean(
    std::vector<std::vector<float>> parts);

// Number of buckets the bucketed collective splits a length-`len` float
// buffer into. Exposed so callers (ReplicaGroup's bucket-readiness plan)
// can derive the identical geometry the communicator will use.
inline std::int64_t NumAllReduceBuckets(std::int64_t len,
                                        std::int64_t bucket_bytes) {
  const std::int64_t bucket_elems =
      bucket_bytes / static_cast<std::int64_t>(sizeof(float)) > 0
          ? bucket_bytes / static_cast<std::int64_t>(sizeof(float))
          : 1;
  return len == 0 ? 0 : (len + bucket_elems - 1) / bucket_elems;
}

// Handle to one in-flight asynchronous bucketed all-reduce (one collective
// seq). The owning rank's thread submits buckets as their data becomes
// final — in any order, each at most once — while the communicator reduces
// already-submitted buckets in the background; Wait() submits whatever
// remains, blocks until every bucket has completed, and rethrows the first
// failure (retry-budget exhaustion, ReplicaDeadError) exactly as the
// synchronous AllReduce would have thrown it. Destroying the handle
// without Wait() (exception unwind) *abandons* the op: unsubmitted buckets
// are never sent — matching the synchronous path, where a throwing rank
// sends nothing further and peers fail loudly within their bounded retry
// budgets — and the destructor drains in-flight buckets so no communicator
// thread touches the gradient buffer afterwards.
class AsyncAllReduce {
 public:
  virtual ~AsyncAllReduce() = default;

  virtual std::int64_t num_buckets() const = 0;
  // Hands bucket `b` (in the geometry of NumAllReduceBuckets) to the
  // communicator. Caller thread only; at most once per bucket.
  virtual void SubmitBucket(std::int64_t b) = 0;
  // Submits all remaining buckets, blocks until the whole reduce is done,
  // rethrows the first bucket failure. The buffer holds the reduced
  // result afterwards. Call at most once.
  virtual void Wait() = 0;
};

// The collective surface. All methods are collective calls: every rank in
// [0, world_size) must invoke them with its own rank, in the same order.
// Implementations are safe for one concurrent caller per rank.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int world_size() const = 0;
  virtual const char* name() const = 0;

  // In-place all-reduce of `data`; every rank passes a buffer of the same
  // length and returns with the identical reduced contents.
  virtual void AllReduce(int rank, std::vector<float>& data,
                         ReduceOp op) = 0;

  // Starts an asynchronous all-reduce of `data` (which must stay alive
  // and untouched-by-the-caller per bucket until the handle completes
  // it). Counts as exactly one collective call in the per-rank sequence —
  // a peer may serve it with a plain AllReduce. The base implementation
  // is a synchronous fallback that runs AllReduce inside Wait().
  virtual std::unique_ptr<AsyncAllReduce> AllReduceAsync(
      int rank, std::vector<float>& data, ReduceOp op);

  // Blocks until every rank has arrived.
  virtual void Barrier(int rank) = 0;
};

// In-process communicator over per-rank mailboxes (see file header for
// the algorithm and its contracts).
class RingCommunicator final : public Communicator {
 public:
  explicit RingCommunicator(int world_size, CollectiveOptions options = {},
                            FaultPlan faults = {});
  ~RingCommunicator() override;

  int world_size() const override { return world_; }
  const char* name() const override { return "ring"; }

  void AllReduce(int rank, std::vector<float>& data, ReduceOp op) override;
  // True async implementation: buckets run on a dedicated per-rank comm
  // thread with a condition-variable-driven job queue (no polling), so
  // submitted buckets reduce while the caller keeps computing. Counters,
  // accelerator charges, and results are identical to AllReduce.
  std::unique_ptr<AsyncAllReduce> AllReduceAsync(int rank,
                                                 std::vector<float>& data,
                                                 ReduceOp op) override;
  void Barrier(int rank) override;

  // Attaches a simulated accelerator for `rank`; every non-empty chunk the
  // rank participates in charges ChargeAllReduce(chunk_bytes, world) there.
  // Pass nullptr to detach. Not thread-safe against in-flight collectives.
  void AttachAccelerator(int rank, SimAccelerator* accelerator);

  const CollectiveOptions& options() const { return options_; }

 private:
  struct Message {
    std::vector<float> payload;
    // Straggler injection: readable only once this instant has passed.
    std::chrono::steady_clock::time_point available_at;
    // Drop injection: deliveries still to be lost before one gets through.
    int drops_remaining = 0;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Message> slots;
  };

  // Per-rank state touched only by that rank's worker thread.
  struct RankState {
    std::uint32_t next_seq = 0;
    SimAccelerator* accelerator = nullptr;
  };

  // Shared state of one asynchronous all-reduce; defined in the .cpp.
  struct AsyncOp;
  struct BucketJob;
  // Per-rank background communication thread (lazily started) with a
  // cv-driven FIFO bucket-job queue; defined in the .cpp.
  struct CommThread;
  class RingAsyncAllReduce;

  // Asynchronous deposit into dst's mailbox (never blocks).
  void Send(int dst, const MessageKey& key, std::vector<float> payload);
  // Blocking receive with timeout + bounded retry; CHECK-fails (throws
  // InternalError) once the retry budget is exhausted.
  std::vector<float> Recv(int rank, const MessageKey& key,
                          std::size_t expected_len);
  // Scatter/reduce/all-gather of one bucket — the shared per-bucket body
  // of both the synchronous and the asynchronous all-reduce paths.
  void RunBucket(int rank, std::uint32_t seq, std::int64_t bucket,
                 std::vector<float>& data, ReduceOp op);
  CommThread& EnsureCommThread(int rank);
  void CommThreadMain(int rank);
  void EnqueueBucket(const std::shared_ptr<AsyncOp>& op, std::int64_t bucket);

  int world_;
  CollectiveOptions options_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankState> states_;
  std::vector<std::unique_ptr<CommThread>> comm_threads_;
};

}  // namespace s4tf::dist
