// The replica collective layer (paper §5.1.1, Table 1).
//
// Synchronous data-parallel training is where the paper's platform earns
// its scaling claims: K replicas compute gradients on their own shards and
// all-reduce them every step. This header is the redesigned collective
// API behind ReplicaGroup::TrainStep (nn/replica_group.h):
//
//   * CollectiveSpec / CollectiveResult — the single options/result
//     vocabulary shared by every collective, sync and async: which
//     collective (all-reduce, reduce-scatter, all-gather), which
//     reduction, and which per-rank shard geometry.
//   * Communicator — the abstract collective surface. Every rank calls
//     Run/RunAsync with the same specs in the same order from its own
//     worker thread. The historical AllReduce/AllReduceAsync signatures
//     remain as thin non-virtual forwarding wrappers.
//   * RingCommunicator — the in-process implementation: gradient buffers
//     are split into configurable-size buckets, each bucket into one chunk
//     per rank; raw chunks are scattered to their owner rank, reduced
//     there in a *canonical* rank-ordered tree (OrderedTreeReduce), and
//     the reduced chunks travel a classic all-gather ring. A per-replica
//     SimAccelerator can be attached to charge the ring's simulated cost
//     per chunk (cost_model.h's AllReduceSeconds, topology-aware via
//     CollectiveOptions::topology).
//
// ReduceScatter and AllGather are the all-reduce's own two phases made
// public (ZeRO-style sharded optimizers consume them): ReduceScatter
// leaves each rank holding the fully-reduced values of *its own shard*
// (the rest of the buffer is unspecified), and AllGather broadcasts each
// rank's shard until every rank holds the full buffer. Composing them
// over the same shard geometry is the all-reduce — and because every
// element reduces through the canonical rank-ordered tree regardless of
// how the buffer is partitioned, the composition is bit-identical to the
// monolithic all-reduce and to the sequential reference.
//
// Determinism contract: the tree reduction order per element depends only
// on the world size — not on thread scheduling, message arrival order, or
// the bucket/chunk partition (elements reduce across ranks independently,
// so chunk boundaries cannot reassociate anything). Hence the threaded,
// bucketed, fault-injected ring is bit-identical to OrderedTreeReduce[Mean]
// applied to the whole per-rank buffers on one thread — the sequential
// reference ReplicaGroup uses.
//
// Fault model: every message consults the seeded FaultInjector; lost
// deliveries and straggler delays surface as receive timeouts, recovered
// by bounded retry (obs counters and trace spans record every retry,
// timeout, and barrier). Because every receive is bounded by
// (1 + max_retries) * recv_timeout, a replica that dies mid-collective
// cannot hang the group: its peers exhaust their budgets and fail loudly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "device/sim_accelerator.h"
#include "dist/fault_injector.h"
#include "support/error.h"

namespace s4tf::dist {

// Thrown by the *dying* rank itself when FaultPlan::death_rank kills it
// at a collective entry. Peers observe the death indirectly — their
// receives time out and exhaust the retry budget (a plain InternalError).
// Subclasses InternalError so every existing fail-loudly path still
// catches it; nn::TrainingSession treats both as a replica failure and
// runs elastic recovery.
class ReplicaDeadError : public InternalError {
 public:
  ReplicaDeadError(int rank, std::uint32_t seq)
      : InternalError("replica " + std::to_string(rank) +
                      " died entering collective seq " +
                      std::to_string(seq)),
        rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

enum class ReduceOp {
  kSum = 0,
  kMean,  // sum scaled by 1/world_size inside the collective
};

struct CollectiveOptions {
  // Gradient bucketing granularity: each bucket is reduced and charged
  // independently (one ring per bucket, one chunk per rank per bucket).
  std::int64_t bucket_bytes = 1 << 16;
  // Per receive attempt; a lost delivery costs one timeout.
  std::chrono::milliseconds recv_timeout{250};
  // Receive attempts beyond the first before the collective fails loudly.
  int max_retries = 8;
  // Communication topology attached accelerators are charged under. The
  // default (flat) charges the classic single-level ring, identical to
  // the pre-topology cost model.
  CommTopology topology;
};

// Which collective a CollectiveSpec requests.
enum class CollectiveKind : std::uint8_t {
  kAllReduce = 0,      // every rank ends with the full reduced buffer
  kReduceScatter = 1,  // every rank ends with its own reduced shard
  kAllGather = 2,      // every rank contributes its shard, ends with all
};

// Default contiguous shard partition of a length-`len` buffer across
// `world` ranks: world+1 ascending element offsets, shard r spanning
// [offsets[r], offsets[r+1]). Ceil-divided, so trailing shards may be
// empty when world > len.
std::vector<std::int64_t> ShardOffsets(std::int64_t len, int world);

// The one options vocabulary every collective entry point shares. A spec
// names the collective kind, the reduction (ignored by all-gather), and —
// for the sharded collectives — the per-rank shard geometry.
struct CollectiveSpec {
  CollectiveKind kind = CollectiveKind::kAllReduce;
  ReduceOp reduce = ReduceOp::kSum;
  // Shard geometry for kReduceScatter/kAllGather: world+1 ascending
  // element offsets with front() == 0 and back() == buffer length (the
  // shape ShardOffsets produces). Empty = the ShardOffsets default.
  // Ignored by kAllReduce, whose bucket-internal chunking is an
  // implementation detail of the communicator.
  std::vector<std::int64_t> shard_offsets;

  static CollectiveSpec AllReduce(ReduceOp op) {
    CollectiveSpec spec;
    spec.kind = CollectiveKind::kAllReduce;
    spec.reduce = op;
    return spec;
  }
  static CollectiveSpec ReduceScatter(ReduceOp op,
                                      std::vector<std::int64_t> offsets = {}) {
    CollectiveSpec spec;
    spec.kind = CollectiveKind::kReduceScatter;
    spec.reduce = op;
    spec.shard_offsets = std::move(offsets);
    return spec;
  }
  static CollectiveSpec AllGather(std::vector<std::int64_t> offsets = {}) {
    CollectiveSpec spec;
    spec.kind = CollectiveKind::kAllGather;
    spec.shard_offsets = std::move(offsets);
    return spec;
  }
};

// What one collective moved, in the communicator's own accounting — the
// same numbers the dist.* counters record.
struct CollectiveResult {
  std::int64_t bytes = 0;    // caller buffer bytes entering the collective
  std::int64_t buckets = 0;  // buckets the buffer split into
};

// Rank-ordered pairwise tree reduction: parts[0..n) combine as
// ((p0+p1)+(p2+p3))+... regardless of how the caller obtained them. This
// is the one reduction the whole dist layer performs — the ring transports
// chunks but never reassociates — so results are bit-identical between
// the threaded collective and a sequential reference. All parts must have
// equal length.
std::vector<float> OrderedTreeReduce(std::vector<std::vector<float>> parts);
// OrderedTreeReduce followed by scaling with 1.0f / parts.size() — the
// all-reduce-mean every data-parallel step uses, applied inside the
// collective so optimizers always see correctly-scaled tangents.
std::vector<float> OrderedTreeReduceMean(
    std::vector<std::vector<float>> parts);

// Number of buckets the bucketed collective splits a length-`len` float
// buffer into. Exposed so callers (ReplicaGroup's bucket-readiness plan)
// can derive the identical geometry the communicator will use.
inline std::int64_t NumAllReduceBuckets(std::int64_t len,
                                        std::int64_t bucket_bytes) {
  const std::int64_t bucket_elems =
      bucket_bytes / static_cast<std::int64_t>(sizeof(float)) > 0
          ? bucket_bytes / static_cast<std::int64_t>(sizeof(float))
          : 1;
  return len == 0 ? 0 : (len + bucket_elems - 1) / bucket_elems;
}

// Handle to one in-flight asynchronous bucketed collective (one collective
// seq). The owning rank's thread submits buckets as their data becomes
// final — in any order, each at most once — while the communicator runs
// already-submitted buckets in the background; Wait() submits whatever
// remains, blocks until every bucket has completed, and rethrows the first
// failure (retry-budget exhaustion, ReplicaDeadError) exactly as the
// synchronous Run would have thrown it. Destroying the handle without
// Wait() (exception unwind) *abandons* the op: unsubmitted buckets are
// never sent — matching the synchronous path, where a throwing rank sends
// nothing further and peers fail loudly within their bounded retry
// budgets — and the destructor drains in-flight buckets so no communicator
// thread touches the gradient buffer afterwards.
class AsyncCollective {
 public:
  virtual ~AsyncCollective() = default;

  virtual std::int64_t num_buckets() const = 0;
  // Hands bucket `b` (in the geometry of NumAllReduceBuckets) to the
  // communicator. Caller thread only; at most once per bucket.
  virtual void SubmitBucket(std::int64_t b) = 0;
  // Submits all remaining buckets, blocks until the whole collective is
  // done, rethrows the first bucket failure. The buffer holds the result
  // afterwards. Call at most once.
  virtual void Wait() = 0;
};

// Historical name from when the only async collective was the all-reduce.
using AsyncAllReduce = AsyncCollective;

// The collective surface. All methods are collective calls: every rank in
// [0, world_size) must invoke them with the same spec, in the same order,
// each with its own rank. Implementations are safe for one concurrent
// caller per rank.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int world_size() const = 0;
  virtual const char* name() const = 0;

  // Runs one synchronous collective in place over `data`:
  //   kAllReduce     — every rank passes same-length buffers and returns
  //                    with the identical fully-reduced contents.
  //   kReduceScatter — on return the caller's *own shard* region holds
  //                    the reduced values; the rest of the buffer is
  //                    unspecified.
  //   kAllGather     — on entry the caller's own shard region is valid;
  //                    on return the whole buffer is.
  virtual CollectiveResult Run(int rank, const CollectiveSpec& spec,
                               std::vector<float>& data) = 0;

  // Starts an asynchronous collective over `data` (which must stay alive
  // and untouched-by-the-caller per bucket until the handle completes
  // it). Counts as exactly one collective call in the per-rank sequence —
  // a peer may serve it with the synchronous Run. The base implementation
  // is a synchronous fallback that runs Run inside Wait().
  virtual std::unique_ptr<AsyncCollective> RunAsync(
      int rank, const CollectiveSpec& spec, std::vector<float>& data);

  // Blocks until every rank has arrived.
  virtual void Barrier(int rank) = 0;

  // --- Thin forwarding wrappers (the pre-redesign signatures). --------

  void AllReduce(int rank, std::vector<float>& data, ReduceOp op) {
    Run(rank, CollectiveSpec::AllReduce(op), data);
  }
  void ReduceScatter(int rank, std::vector<float>& data, ReduceOp op,
                     std::vector<std::int64_t> offsets = {}) {
    Run(rank, CollectiveSpec::ReduceScatter(op, std::move(offsets)), data);
  }
  void AllGather(int rank, std::vector<float>& data,
                 std::vector<std::int64_t> offsets = {}) {
    Run(rank, CollectiveSpec::AllGather(std::move(offsets)), data);
  }
  std::unique_ptr<AsyncCollective> AllReduceAsync(int rank,
                                                  std::vector<float>& data,
                                                  ReduceOp op) {
    return RunAsync(rank, CollectiveSpec::AllReduce(op), data);
  }
  std::unique_ptr<AsyncCollective> ReduceScatterAsync(
      int rank, std::vector<float>& data, ReduceOp op,
      std::vector<std::int64_t> offsets = {}) {
    return RunAsync(rank, CollectiveSpec::ReduceScatter(op, std::move(offsets)),
                    data);
  }
  std::unique_ptr<AsyncCollective> AllGatherAsync(
      int rank, std::vector<float>& data,
      std::vector<std::int64_t> offsets = {}) {
    return RunAsync(rank, CollectiveSpec::AllGather(std::move(offsets)), data);
  }
};

// In-process communicator over per-rank mailboxes (see file header for
// the algorithm and its contracts).
class RingCommunicator final : public Communicator {
 public:
  explicit RingCommunicator(int world_size, CollectiveOptions options = {},
                            FaultPlan faults = {});
  ~RingCommunicator() override;

  int world_size() const override { return world_; }
  const char* name() const override { return "ring"; }

  CollectiveResult Run(int rank, const CollectiveSpec& spec,
                       std::vector<float>& data) override;
  // True async implementation: buckets run on a dedicated per-rank comm
  // thread with a condition-variable-driven job queue (no polling), so
  // submitted buckets run while the caller keeps computing. Counters,
  // accelerator charges, and results are identical to the synchronous Run.
  std::unique_ptr<AsyncCollective> RunAsync(int rank,
                                            const CollectiveSpec& spec,
                                            std::vector<float>& data) override;
  void Barrier(int rank) override;

  // Attaches a simulated accelerator for `rank`; every non-empty chunk the
  // rank participates in charges ChargeAllReduce(chunk_bytes, world) there.
  // Pass nullptr to detach. Not thread-safe against in-flight collectives.
  void AttachAccelerator(int rank, SimAccelerator* accelerator);

  const CollectiveOptions& options() const { return options_; }

 private:
  struct Message {
    std::vector<float> payload;
    // Straggler injection: readable only once this instant has passed.
    std::chrono::steady_clock::time_point available_at;
    // Drop injection: deliveries still to be lost before one gets through.
    int drops_remaining = 0;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::unordered_map<std::uint64_t, Message> slots;
  };

  // Per-rank state touched only by that rank's worker thread.
  struct RankState {
    std::uint32_t next_seq = 0;
    SimAccelerator* accelerator = nullptr;
  };

  // Shared state of one asynchronous collective; defined in the .cpp.
  struct AsyncOp;
  struct BucketJob;
  // Per-rank background communication thread (lazily started) with a
  // cv-driven FIFO bucket-job queue; defined in the .cpp.
  struct CommThread;
  class RingAsyncCollective;

  // Asynchronous deposit into dst's mailbox (never blocks).
  void Send(int dst, const MessageKey& key, std::vector<float> payload);
  // Blocking receive with timeout + bounded retry; CHECK-fails (throws
  // InternalError) once the retry budget is exhausted.
  std::vector<float> Recv(int rank, const MessageKey& key,
                          std::size_t expected_len);

  // The all-reduce's two phases over an explicit chunk partition
  // (`chunk_offsets`: world+1 ascending element offsets into `data`).
  // `kind` only selects which counters/charges each phase records — the
  // message keys and transported bytes are a pure function of the
  // partition, which is how the standalone ReduceScatter/AllGather and
  // the composed all-reduce stay one algorithm.
  void ScatterReducePhase(CollectiveKind kind, int rank, std::uint32_t seq,
                          std::int64_t bucket, std::vector<float>& data,
                          ReduceOp op, const std::int64_t* chunk_offsets);
  void GatherPhase(CollectiveKind kind, int rank, std::uint32_t seq,
                   std::int64_t bucket, std::vector<float>& data,
                   const std::int64_t* chunk_offsets);
  // Scatter/reduce/all-gather of one bucket — the shared per-bucket body
  // of both the synchronous and the asynchronous all-reduce paths.
  void RunBucket(int rank, std::uint32_t seq, std::int64_t bucket,
                 std::vector<float>& data, ReduceOp op);
  // One bucket of a standalone ReduceScatter/AllGather: the global shard
  // partition clipped to the bucket's element range.
  void RunShardBucket(CollectiveKind kind, int rank, std::uint32_t seq,
                      std::int64_t bucket, std::vector<float>& data,
                      ReduceOp op,
                      const std::vector<std::int64_t>& shard_offsets);
  CommThread& EnsureCommThread(int rank);
  void CommThreadMain(int rank);
  void EnqueueBucket(const std::shared_ptr<AsyncOp>& op, std::int64_t bucket);

  int world_;
  CollectiveOptions options_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<RankState> states_;
  std::vector<std::unique_ptr<CommThread>> comm_threads_;
};

}  // namespace s4tf::dist
