#include "sil/passes.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "sil/interpreter.h"

namespace s4tf::sil {

PassResult RunDCE(Function& fn) {
  std::vector<bool> live(static_cast<std::size_t>(fn.num_values), false);

  // Seed: terminator uses.
  for (const BasicBlock& bb : fn.blocks) {
    const Terminator& t = bb.terminator;
    if (t.value >= 0) live[static_cast<std::size_t>(t.value)] = true;
    for (ValueId v : t.true_args) live[static_cast<std::size_t>(v)] = true;
    for (ValueId v : t.false_args) live[static_cast<std::size_t>(v)] = true;
  }

  // Fixpoint: operands of live instructions are live. Branch args are
  // conservatively live (refining them requires per-edge liveness, which
  // DCE of straight-line adjoint code does not need).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instruction& inst : bb.insts) {
        if (!live[static_cast<std::size_t>(inst.result)]) continue;
        for (ValueId op : inst.operands) {
          if (!live[static_cast<std::size_t>(op)]) {
            live[static_cast<std::size_t>(op)] = true;
            changed = true;
          }
        }
      }
    }
  }

  PassResult result;
  for (BasicBlock& bb : fn.blocks) {
    auto removed = std::remove_if(
        bb.insts.begin(), bb.insts.end(), [&](const Instruction& inst) {
          return !live[static_cast<std::size_t>(inst.result)];
        });
    result.removed_instructions +=
        static_cast<int>(bb.insts.end() - removed);
    bb.insts.erase(removed, bb.insts.end());
  }
  return result;
}

PassResult RunConstantFolding(Function& fn) {
  PassResult result;
  // value -> constant, when the defining instruction is kConst.
  std::map<ValueId, double> constants;
  bool changed = true;
  while (changed) {
    changed = false;
    constants.clear();
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instruction& inst : bb.insts) {
        if (inst.kind == InstKind::kConst) {
          constants[inst.result] = inst.constant;
        }
      }
    }
    for (BasicBlock& bb : fn.blocks) {
      for (Instruction& inst : bb.insts) {
        if (inst.kind == InstKind::kConst || inst.kind == InstKind::kCall) {
          continue;
        }
        bool all_const = !inst.operands.empty();
        for (ValueId op : inst.operands) {
          if (constants.count(op) == 0) {
            all_const = false;
            break;
          }
        }
        if (!all_const) continue;
        const double a = constants[inst.operands[0]];
        const double b =
            inst.operands.size() > 1 ? constants[inst.operands[1]] : 0.0;
        const double value = EvalInst(inst.kind, a, b, 0.0);
        inst.kind = InstKind::kConst;
        inst.operands.clear();
        inst.constant = value;
        ++result.folded_constants;
        changed = true;
      }
    }
  }
  return result;
}

namespace {
// Rewrites every use of the ids in `replace` (operands and terminators).
void RewriteUses(Function& fn, const std::map<ValueId, ValueId>& replace) {
  auto fix = [&](ValueId& v) {
    auto it = replace.find(v);
    if (it != replace.end()) v = it->second;
  };
  for (BasicBlock& bb : fn.blocks) {
    for (Instruction& inst : bb.insts) {
      for (ValueId& op : inst.operands) fix(op);
    }
    Terminator& t = bb.terminator;
    if (t.value >= 0) fix(t.value);
    for (ValueId& v : t.true_args) fix(v);
    for (ValueId& v : t.false_args) fix(v);
  }
}
}  // namespace

PassResult RunCSE(Function& fn) {
  PassResult result;
  std::map<ValueId, ValueId> replace;
  for (BasicBlock& bb : fn.blocks) {
    // Key: kind, operands, constant bits, callee.
    std::map<std::tuple<int, std::vector<ValueId>, double, std::string>,
             ValueId>
        seen;
    for (auto it = bb.insts.begin(); it != bb.insts.end();) {
      auto key = std::make_tuple(static_cast<int>(it->kind), it->operands,
                                 it->constant, it->callee);
      auto found = seen.find(key);
      if (found != seen.end()) {
        replace[it->result] = found->second;
        it = bb.insts.erase(it);
        ++result.deduplicated;
      } else {
        seen.emplace(std::move(key), it->result);
        ++it;
      }
    }
  }
  if (!replace.empty()) RewriteUses(fn, replace);
  return result;
}

namespace {

// Inlines the call at fn.blocks[block].insts[index]; returns false when
// the callee is (mutually) recursive or unknown.
bool InlineOneCall(Module& module, Function& fn, std::size_t block_index,
                   std::size_t inst_index) {
  const Instruction call = fn.blocks[block_index].insts[inst_index];
  const Function* callee = module.FindFunction(call.callee);
  if (callee == nullptr) return false;
  // Refuse recursion (direct or through the callee's own calls — a simple
  // conservative check: the callee must not call the caller or itself).
  for (const BasicBlock& bb : callee->blocks) {
    for (const Instruction& inst : bb.insts) {
      if (inst.kind == InstKind::kCall &&
          (inst.callee == fn.name || inst.callee == callee->name)) {
        return false;
      }
    }
  }

  // Value-id remapping for imported callee values: argument i flows in
  // through a fresh block argument of the imported entry block; every
  // other callee value is offset into fresh caller ids.
  // Callee value v maps to base + v (arguments become the imported entry
  // block's arguments, at the same offsets); the continuation's result
  // argument gets the first id past the imported range.
  const ValueId base = fn.num_values;
  std::vector<ValueId> entry_args(static_cast<std::size_t>(callee->num_args));
  for (std::size_t i = 0; i < entry_args.size(); ++i) {
    entry_args[i] = base + static_cast<ValueId>(i);
  }
  auto remap = [&](ValueId v) { return base + v; };

  // Continuation block: receives the call result as its block argument and
  // inherits the tail of the caller block (instructions after the call and
  // the terminator).
  BasicBlock continuation;
  const ValueId result_arg = base + callee->num_values;
  continuation.arg_ids.push_back(result_arg);
  {
    BasicBlock& caller_block = fn.blocks[block_index];
    continuation.insts.assign(
        caller_block.insts.begin() +
            static_cast<std::ptrdiff_t>(inst_index + 1),
        caller_block.insts.end());
    continuation.terminator = caller_block.terminator;
    caller_block.insts.erase(
        caller_block.insts.begin() + static_cast<std::ptrdiff_t>(inst_index),
        caller_block.insts.end());
    caller_block.terminator = Terminator{};
  }

  const int callee_block_base = static_cast<int>(fn.blocks.size());
  const int continuation_index =
      callee_block_base + static_cast<int>(callee->blocks.size());

  // The caller block now branches into the imported entry, passing the
  // call operands as the entry's fresh block arguments.
  {
    Terminator& t = fn.blocks[block_index].terminator;
    t.kind = Terminator::Kind::kBranch;
    t.true_block = callee_block_base;
    t.true_args = call.operands;
  }

  // Import callee blocks with remapped values, block indices, and returns
  // turned into branches to the continuation.
  for (std::size_t b = 0; b < callee->blocks.size(); ++b) {
    const BasicBlock& src = callee->blocks[b];
    BasicBlock imported;
    if (b == 0) {
      imported.arg_ids = entry_args;
    }
    for (ValueId a : src.arg_ids) imported.arg_ids.push_back(remap(a));
    for (const Instruction& inst : src.insts) {
      Instruction copy = inst;
      copy.result = remap(copy.result);
      for (ValueId& op : copy.operands) op = remap(op);
      imported.insts.push_back(std::move(copy));
    }
    const Terminator& st = src.terminator;
    Terminator& dt = imported.terminator;
    switch (st.kind) {
      case Terminator::Kind::kReturn:
        dt.kind = Terminator::Kind::kBranch;
        dt.true_block = continuation_index;
        dt.true_args = {remap(st.value)};
        break;
      case Terminator::Kind::kBranch:
        dt.kind = Terminator::Kind::kBranch;
        dt.true_block = callee_block_base + st.true_block;
        for (ValueId v : st.true_args) dt.true_args.push_back(remap(v));
        break;
      case Terminator::Kind::kCondBranch:
        dt.kind = Terminator::Kind::kCondBranch;
        dt.value = remap(st.value);
        dt.true_block = callee_block_base + st.true_block;
        dt.false_block = callee_block_base + st.false_block;
        for (ValueId v : st.true_args) dt.true_args.push_back(remap(v));
        for (ValueId v : st.false_args) dt.false_args.push_back(remap(v));
        break;
      case Terminator::Kind::kNone:
        break;
    }
    fn.blocks.push_back(std::move(imported));
  }
  fn.blocks.push_back(std::move(continuation));
  fn.num_values = base + callee->num_values + 1;

  // The call's result now flows through the continuation's block argument.
  std::map<ValueId, ValueId> replace{{call.result, result_arg}};
  RewriteUses(fn, replace);
  return true;
}

}  // namespace

int RunInlining(Module& module, const std::string& fn_name) {
  Function* fn = module.FindFunction(fn_name);
  S4TF_CHECK(fn != nullptr) << "RunInlining: no function " << fn_name;
  int inlined = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = 0; b < fn->blocks.size() && !changed; ++b) {
      for (std::size_t i = 0; i < fn->blocks[b].insts.size(); ++i) {
        if (fn->blocks[b].insts[i].kind != InstKind::kCall) continue;
        if (InlineOneCall(module, *fn, b, i)) {
          ++inlined;
          changed = true;  // block structure changed: restart the scan
          break;
        }
      }
    }
  }
  VerifyFunction(*fn).ValueOrDie();
  return inlined;
}

PassResult OptimizeFunction(Function& fn, int max_iterations) {
  PassResult total;
  for (int i = 0; i < max_iterations; ++i) {
    PassResult round;
    const PassResult fold = RunConstantFolding(fn);
    const PassResult cse = RunCSE(fn);
    const PassResult dce = RunDCE(fn);
    round.folded_constants = fold.folded_constants;
    round.deduplicated = cse.deduplicated;
    round.removed_instructions = dce.removed_instructions;
    total.folded_constants += round.folded_constants;
    total.deduplicated += round.deduplicated;
    total.removed_instructions += round.removed_instructions;
    if (!round.changed()) break;
  }
  return total;
}

}  // namespace s4tf::sil
