// Activity analysis (paper §2.2, after Hascoët & Pascual's Tapenade).
//
// "Activity analysis determines instructions of the original function that
// are both varied (depend on the inputs) and useful (contribute to the
// output). Such instructions are active and need a derivative."
//
// Varied is a forward data-flow property seeded at the wrt-arguments;
// useful is a backward property seeded at return values. Both iterate to a
// fixpoint so loops (back edges through block arguments) are handled.
#pragma once

#include <vector>

#include "sil/ir.h"

namespace s4tf::sil {

struct ActivityInfo {
  // Indexed by ValueId.
  std::vector<bool> varied;
  std::vector<bool> useful;

  bool IsActiveValue(ValueId v) const {
    return varied[static_cast<std::size_t>(v)] &&
           useful[static_cast<std::size_t>(v)];
  }
};

// Analyzes `fn` with respect to the argument indices in `wrt` (empty means
// all arguments). `module` resolves calls: a call's result is varied if any
// varied operand feeds it, and a call's operands are useful if its result
// is (conservative interprocedural treatment, matching a transformation
// that recurses into callees).
ActivityInfo AnalyzeActivity(const Module& module, const Function& fn,
                             std::vector<int> wrt = {});

}  // namespace s4tf::sil
