// Reference interpreter for mini-SIL, used by the tests and by the AD
// transformation's correctness checks ("original" semantics).
#pragma once

#include <vector>

#include "sil/ir.h"

namespace s4tf::sil {

struct InterpreterOptions {
  // Guards against runaway loops in malformed test programs.
  std::int64_t max_steps = 1'000'000;
};

// Executes `fn` in `module` on scalar arguments; returns the returned
// value or an error (unterminated path, step-limit exceeded).
StatusOr<double> Interpret(const Module& module, const std::string& fn,
                           const std::vector<double>& args,
                           const InterpreterOptions& options = {});

// Single-instruction semantics, shared with the JVP/VJP executors.
double EvalInst(InstKind kind, double a, double b, double constant);

}  // namespace s4tf::sil
