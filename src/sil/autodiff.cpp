#include "sil/autodiff.h"

#include <cmath>

#include "sil/interpreter.h"

namespace s4tf::sil {

void DerivativeRegistry::Register(const std::string& name,
                                  CustomScalarDerivative derivative) {
  derivatives_[name] = std::move(derivative);
}

const CustomScalarDerivative* DerivativeRegistry::Find(
    const std::string& name) const {
  auto it = derivatives_.find(name);
  return it == derivatives_.end() ? nullptr : &it->second;
}

CustomDerivativeSet DerivativeRegistry::Names() const {
  CustomDerivativeSet set;
  for (const auto& [name, d] : derivatives_) set.Add(name);
  return set;
}

// ---------------------------------------------------------------------------
// VJP synthesis.

StatusOr<SynthesizedVJP> SynthesizeVJP(const Module& module,
                                       const std::string& fn_name,
                                       std::vector<int> wrt,
                                       const DerivativeRegistry& registry) {
  const Function* fn = module.FindFunction(fn_name);
  if (fn == nullptr) return Status::NotFound("no function " + fn_name);

  // Step 1+2 of the transformation: activity analysis + checking.
  const DiffCheckResult check =
      CheckDifferentiability(module, *fn, wrt, registry.Names());
  if (!check.ok()) return check.status();

  SynthesizedVJP vjp;
  vjp.module_ = &module;
  vjp.fn_ = fn;
  vjp.wrt_ = wrt;
  if (vjp.wrt_.empty()) {
    for (int i = 0; i < fn->num_args; ++i) vjp.wrt_.push_back(i);
  }
  vjp.activity_ = AnalyzeActivity(module, *fn, wrt);

  // Step 3: synthesize per-block adjoint code. Only active instructions
  // receive derivative instructions (activity pruning).
  vjp.adjoints_.resize(fn->blocks.size());
  for (std::size_t b = 0; b < fn->blocks.size(); ++b) {
    const BasicBlock& bb = fn->blocks[b];
    auto& adjoint = vjp.adjoints_[b];
    for (ValueId a : bb.arg_ids) adjoint.defined.push_back(a);
    for (const Instruction& inst : bb.insts) {
      adjoint.defined.push_back(inst.result);
    }
    for (auto it = bb.insts.rbegin(); it != bb.insts.rend(); ++it) {
      bool operand_varied = false;
      for (ValueId op : it->operands) {
        if (vjp.activity_.varied[static_cast<std::size_t>(op)]) {
          operand_varied = true;
          break;
        }
      }
      if (operand_varied &&
          vjp.activity_.useful[static_cast<std::size_t>(it->result)]) {
        adjoint.reversed_active.push_back(&*it);
      }
    }
  }

  // Capture callee derivatives (recursive transformation / base cases).
  for (const BasicBlock& bb : fn->blocks) {
    for (const Instruction& inst : bb.insts) {
      if (inst.kind != InstKind::kCall) continue;
      if (vjp.callees_.count(inst.callee) > 0) continue;
      SynthesizedVJP::CalleeDerivative derivative;
      if (const CustomScalarDerivative* custom = registry.Find(inst.callee)) {
        derivative.custom =
            std::make_shared<CustomScalarDerivative>(*custom);
      } else {
        auto inner = SynthesizeVJP(module, inst.callee, {}, registry);
        if (!inner.ok()) return inner.status();
        derivative.synthesized =
            std::make_shared<SynthesizedVJP>(std::move(inner).value());
      }
      vjp.callees_.emplace(inst.callee, std::move(derivative));
    }
  }
  return vjp;
}

std::vector<int> SynthesizedVJP::AdjointInstructionCounts() const {
  std::vector<int> counts;
  counts.reserve(adjoints_.size());
  for (const auto& a : adjoints_) {
    counts.push_back(static_cast<int>(a.reversed_active.size()));
  }
  return counts;
}

namespace {

// One executed basic block (paper: "statically-typed records corresponding
// to the basic blocks of the control flow graph that store intermediate
// state used in derivative calculations").
struct BlockRecord {
  int block = 0;
  // Values live at the end of this block's execution (saved primal state).
  std::vector<double> env;
  // For each block argument: the predecessor value that fed it (gradient
  // transfer edges).
  std::vector<ValueId> arg_sources;
  // Pullbacks captured from calls made in this block, keyed by the
  // instruction's result id.
  std::map<ValueId, std::function<std::vector<double>(double)>> call_pullbacks;
};

}  // namespace

StatusOr<SynthesizedVJP::Result> SynthesizedVJP::Run(
    const std::vector<double>& args) const {
  const Function& fn = *fn_;
  if (static_cast<int>(args.size()) != fn.num_args) {
    return Status::InvalidArgument("arg count mismatch for " + fn.name);
  }

  // --- Forward pass: interpret, recording one BlockRecord per executed
  // block (each loop iteration gets its own record).
  std::vector<double> env(static_cast<std::size_t>(fn.num_values), 0.0);
  for (int i = 0; i < fn.num_args; ++i) {
    env[static_cast<std::size_t>(i)] = args[static_cast<std::size_t>(i)];
  }

  auto records = std::make_shared<std::vector<BlockRecord>>();
  std::vector<ValueId> pending_arg_sources;  // set by the previous branch
  int block = 0;
  std::int64_t steps = 0;
  double return_value = 0.0;
  ValueId return_id = kNoValue;

  while (true) {
    const BasicBlock& bb = fn.blocks[static_cast<std::size_t>(block)];
    BlockRecord record;
    record.block = block;
    record.arg_sources = pending_arg_sources;

    for (const Instruction& inst : bb.insts) {
      if (++steps > 1'000'000) {
        return Status::OutOfRange("step limit exceeded in " + fn.name);
      }
      double value = 0.0;
      if (inst.kind == InstKind::kCall) {
        std::vector<double> callee_args;
        callee_args.reserve(inst.operands.size());
        for (ValueId v : inst.operands) {
          callee_args.push_back(env[static_cast<std::size_t>(v)]);
        }
        const auto& derivative = callees_.at(inst.callee);
        if (derivative.custom != nullptr) {
          auto [v, pb] = derivative.custom->vjp(callee_args);
          value = v;
          record.call_pullbacks[inst.result] = std::move(pb);
        } else {
          auto inner = derivative.synthesized->Run(callee_args);
          if (!inner.ok()) return inner.status();
          value = inner->value;
          record.call_pullbacks[inst.result] = inner->pullback;
        }
      } else {
        const double a = inst.operands.size() > 0
                             ? env[static_cast<std::size_t>(inst.operands[0])]
                             : 0.0;
        const double b = inst.operands.size() > 1
                             ? env[static_cast<std::size_t>(inst.operands[1])]
                             : 0.0;
        value = EvalInst(inst.kind, a, b, inst.constant);
      }
      env[static_cast<std::size_t>(inst.result)] = value;
    }

    record.env = env;  // snapshot the primal state for the reverse pass
    records->push_back(std::move(record));

    const Terminator& t = bb.terminator;
    if (t.kind == Terminator::Kind::kReturn) {
      return_value = env[static_cast<std::size_t>(t.value)];
      return_id = t.value;
      break;
    }
    const bool taken = t.kind == Terminator::Kind::kBranch ||
                       env[static_cast<std::size_t>(t.value)] != 0.0;
    const int next = taken ? t.true_block : t.false_block;
    const auto& pass_args = taken ? t.true_args : t.false_args;
    const BasicBlock& target = fn.blocks[static_cast<std::size_t>(next)];
    for (std::size_t i = 0; i < pass_args.size(); ++i) {
      env[static_cast<std::size_t>(target.arg_ids[i])] =
          env[static_cast<std::size_t>(pass_args[i])];
    }
    pending_arg_sources = pass_args;
    block = next;
  }

  // --- Build the pullback closure over the recorded trace.
  Result result;
  result.value = return_value;
  const auto* adjoints = &adjoints_;
  const auto* callees = &callees_;
  const Function* fn_ptr = fn_;
  const std::vector<int> wrt = wrt_;
  result.pullback = [records, adjoints, callees, fn_ptr, return_id,
                     wrt](double seed) {
    const Function& f = *fn_ptr;
    std::vector<double> grads(static_cast<std::size_t>(f.num_values), 0.0);
    grads[static_cast<std::size_t>(return_id)] = seed;

    for (auto rit = records->rbegin(); rit != records->rend(); ++rit) {
      const BlockRecord& record = *rit;
      const auto& adjoint =
          (*adjoints)[static_cast<std::size_t>(record.block)];
      const std::vector<double>& saved = record.env;

      for (const Instruction* inst : adjoint.reversed_active) {
        const double g = grads[static_cast<std::size_t>(inst->result)];
        if (g == 0.0) continue;
        auto acc = [&grads](ValueId v, double delta) {
          grads[static_cast<std::size_t>(v)] += delta;
        };
        const double a =
            inst->operands.size() > 0
                ? saved[static_cast<std::size_t>(inst->operands[0])]
                : 0.0;
        const double b =
            inst->operands.size() > 1
                ? saved[static_cast<std::size_t>(inst->operands[1])]
                : 0.0;
        const double out = saved[static_cast<std::size_t>(inst->result)];
        switch (inst->kind) {
          case InstKind::kAdd:
            acc(inst->operands[0], g);
            acc(inst->operands[1], g);
            break;
          case InstKind::kSub:
            acc(inst->operands[0], g);
            acc(inst->operands[1], -g);
            break;
          case InstKind::kMul:
            acc(inst->operands[0], g * b);
            acc(inst->operands[1], g * a);
            break;
          case InstKind::kDiv:
            acc(inst->operands[0], g / b);
            acc(inst->operands[1], -g * a / (b * b));
            break;
          case InstKind::kNeg:
            acc(inst->operands[0], -g);
            break;
          case InstKind::kSin:
            acc(inst->operands[0], g * std::cos(a));
            break;
          case InstKind::kCos:
            acc(inst->operands[0], -g * std::sin(a));
            break;
          case InstKind::kExp:
            acc(inst->operands[0], g * out);
            break;
          case InstKind::kLog:
            acc(inst->operands[0], g / a);
            break;
          case InstKind::kTanh:
            acc(inst->operands[0], g * (1.0 - out * out));
            break;
          case InstKind::kSqrt:
            acc(inst->operands[0], g / (2.0 * out));
            break;
          case InstKind::kCmpGT:
          case InstKind::kCmpLT:
          case InstKind::kConst:
            break;  // zero derivative
          case InstKind::kCall: {
            const auto& pullback = record.call_pullbacks.at(inst->result);
            const std::vector<double> arg_grads = pullback(g);
            for (std::size_t i = 0; i < inst->operands.size(); ++i) {
              acc(inst->operands[i], arg_grads[i]);
            }
            break;
          }
          case InstKind::kFloor:
          case InstKind::kRound:
            S4TF_UNREACHABLE()
                << "non-differentiable instruction in adjoint code";
        }
      }

      // Gradient transfer across the block-argument edge, then clear this
      // iteration's definitions so earlier iterations start clean.
      const BasicBlock& bb = f.blocks[static_cast<std::size_t>(record.block)];
      for (std::size_t i = 0; i < bb.arg_ids.size(); ++i) {
        const double g = grads[static_cast<std::size_t>(bb.arg_ids[i])];
        if (g != 0.0 && i < record.arg_sources.size()) {
          grads[static_cast<std::size_t>(record.arg_sources[i])] += g;
        }
      }
      for (ValueId v : adjoint.defined) {
        grads[static_cast<std::size_t>(v)] = 0.0;
      }
    }

    std::vector<double> wrt_grads;
    wrt_grads.reserve(wrt.size());
    for (int i : wrt) wrt_grads.push_back(grads[static_cast<std::size_t>(i)]);
    return wrt_grads;
  };
  return result;
}

// ---------------------------------------------------------------------------
// JVP synthesis.

StatusOr<SynthesizedJVP> SynthesizeJVP(const Module& module,
                                       const std::string& fn_name,
                                       std::vector<int> wrt,
                                       const DerivativeRegistry& registry) {
  const Function* fn = module.FindFunction(fn_name);
  if (fn == nullptr) return Status::NotFound("no function " + fn_name);
  const DiffCheckResult check =
      CheckDifferentiability(module, *fn, wrt, registry.Names());
  if (!check.ok()) return check.status();

  SynthesizedJVP jvp;
  jvp.module_ = &module;
  jvp.fn_ = fn;
  jvp.wrt_ = wrt;
  if (jvp.wrt_.empty()) {
    for (int i = 0; i < fn->num_args; ++i) jvp.wrt_.push_back(i);
  }
  for (const BasicBlock& bb : fn->blocks) {
    for (const Instruction& inst : bb.insts) {
      if (inst.kind != InstKind::kCall) continue;
      if (jvp.callees_.count(inst.callee) > 0) continue;
      SynthesizedJVP::CalleeDerivative derivative;
      if (const CustomScalarDerivative* custom = registry.Find(inst.callee)) {
        derivative.custom = std::make_shared<CustomScalarDerivative>(*custom);
      } else {
        auto inner = SynthesizeJVP(module, inst.callee, {}, registry);
        if (!inner.ok()) return inner.status();
        derivative.synthesized =
            std::make_shared<SynthesizedJVP>(std::move(inner).value());
      }
      jvp.callees_.emplace(inst.callee, std::move(derivative));
    }
  }
  return jvp;
}

StatusOr<SynthesizedJVP::Result> SynthesizedJVP::Run(
    const std::vector<double>& args,
    const std::vector<double>& direction) const {
  const Function& fn = *fn_;
  if (static_cast<int>(args.size()) != fn.num_args) {
    return Status::InvalidArgument("arg count mismatch for " + fn.name);
  }
  if (direction.size() != wrt_.size()) {
    return Status::InvalidArgument("direction size must match wrt count");
  }

  std::vector<double> env(static_cast<std::size_t>(fn.num_values), 0.0);
  std::vector<double> tan(static_cast<std::size_t>(fn.num_values), 0.0);
  for (int i = 0; i < fn.num_args; ++i) {
    env[static_cast<std::size_t>(i)] = args[static_cast<std::size_t>(i)];
  }
  for (std::size_t i = 0; i < wrt_.size(); ++i) {
    tan[static_cast<std::size_t>(wrt_[i])] = direction[i];
  }

  std::int64_t steps = 0;
  int block = 0;
  while (true) {
    const BasicBlock& bb = fn.blocks[static_cast<std::size_t>(block)];
    for (const Instruction& inst : bb.insts) {
      if (++steps > 1'000'000) {
        return Status::OutOfRange("step limit exceeded in " + fn.name);
      }
      const double a = inst.operands.size() > 0
                           ? env[static_cast<std::size_t>(inst.operands[0])]
                           : 0.0;
      const double b = inst.operands.size() > 1
                           ? env[static_cast<std::size_t>(inst.operands[1])]
                           : 0.0;
      const double da = inst.operands.size() > 0
                            ? tan[static_cast<std::size_t>(inst.operands[0])]
                            : 0.0;
      const double db = inst.operands.size() > 1
                            ? tan[static_cast<std::size_t>(inst.operands[1])]
                            : 0.0;
      double value = 0.0, tangent = 0.0;
      switch (inst.kind) {
        case InstKind::kCall: {
          std::vector<double> callee_args, callee_dir;
          for (ValueId v : inst.operands) {
            callee_args.push_back(env[static_cast<std::size_t>(v)]);
            callee_dir.push_back(tan[static_cast<std::size_t>(v)]);
          }
          const auto& derivative = callees_.at(inst.callee);
          if (derivative.custom != nullptr) {
            auto [v, dv] = derivative.custom->jvp(callee_args, callee_dir);
            value = v;
            tangent = dv;
          } else {
            auto inner = derivative.synthesized->Run(callee_args, callee_dir);
            if (!inner.ok()) return inner.status();
            value = inner->value;
            tangent = inner->tangent;
          }
          break;
        }
        case InstKind::kConst:
          value = inst.constant;
          break;
        case InstKind::kAdd:
          value = a + b;
          tangent = da + db;
          break;
        case InstKind::kSub:
          value = a - b;
          tangent = da - db;
          break;
        case InstKind::kMul:
          value = a * b;
          tangent = da * b + a * db;
          break;
        case InstKind::kDiv:
          value = a / b;
          tangent = da / b - a * db / (b * b);
          break;
        case InstKind::kNeg:
          value = -a;
          tangent = -da;
          break;
        case InstKind::kSin:
          value = std::sin(a);
          tangent = std::cos(a) * da;
          break;
        case InstKind::kCos:
          value = std::cos(a);
          tangent = -std::sin(a) * da;
          break;
        case InstKind::kExp:
          value = std::exp(a);
          tangent = value * da;
          break;
        case InstKind::kLog:
          value = std::log(a);
          tangent = da / a;
          break;
        case InstKind::kTanh:
          value = std::tanh(a);
          tangent = (1.0 - value * value) * da;
          break;
        case InstKind::kSqrt:
          value = std::sqrt(a);
          tangent = da / (2.0 * value);
          break;
        case InstKind::kCmpGT:
          value = a > b ? 1.0 : 0.0;
          break;
        case InstKind::kCmpLT:
          value = a < b ? 1.0 : 0.0;
          break;
        case InstKind::kFloor:
        case InstKind::kRound:
          // Allowed only on inactive paths (the check guarantees it).
          value = EvalInst(inst.kind, a, b, inst.constant);
          break;
      }
      env[static_cast<std::size_t>(inst.result)] = value;
      tan[static_cast<std::size_t>(inst.result)] = tangent;
    }

    const Terminator& t = bb.terminator;
    if (t.kind == Terminator::Kind::kReturn) {
      return Result{env[static_cast<std::size_t>(t.value)],
                    tan[static_cast<std::size_t>(t.value)]};
    }
    const bool taken = t.kind == Terminator::Kind::kBranch ||
                       env[static_cast<std::size_t>(t.value)] != 0.0;
    const int next = taken ? t.true_block : t.false_block;
    const auto& pass_args = taken ? t.true_args : t.false_args;
    const BasicBlock& target = fn.blocks[static_cast<std::size_t>(next)];
    for (std::size_t i = 0; i < pass_args.size(); ++i) {
      env[static_cast<std::size_t>(target.arg_ids[i])] =
          env[static_cast<std::size_t>(pass_args[i])];
      tan[static_cast<std::size_t>(target.arg_ids[i])] =
          tan[static_cast<std::size_t>(pass_args[i])];
    }
    block = next;
  }
}

StatusOr<std::vector<double>> SilGradient(const Module& module,
                                          const std::string& fn,
                                          const std::vector<double>& args,
                                          const DerivativeRegistry& registry) {
  auto vjp = SynthesizeVJP(module, fn, {}, registry);
  if (!vjp.ok()) return vjp.status();
  auto run = vjp->Run(args);
  if (!run.ok()) return run.status();
  return run->pullback(1.0);
}

}  // namespace s4tf::sil
