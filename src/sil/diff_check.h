// Differentiability checking (paper §2.2).
//
// "Differentiability checking detects non-differentiable instructions and
// emits errors and warnings (e.g. a differentiable function whose return
// value does not depend on differentiable arguments) that help users catch
// errors before execution."
//
// Errors: an *active* instruction (varied and useful) whose kind has no
// derivative (floor/round here), or an active call to a function that is
// itself non-differentiable and has no registered custom derivative.
// Warnings: the paper's example — the return value does not depend on any
// wrt argument.
#pragma once

#include <string>
#include <vector>

#include "sil/activity.h"
#include "sil/ir.h"

namespace s4tf::sil {

struct Diagnostic {
  enum class Severity { kError, kWarning };
  Severity severity;
  std::string message;
};

struct DiffCheckResult {
  std::vector<Diagnostic> diagnostics;

  bool ok() const {
    for (const auto& d : diagnostics) {
      if (d.severity == Diagnostic::Severity::kError) return false;
    }
    return true;
  }
  // First error as a Status (Ok when none).
  Status status() const;
  int error_count() const;
  int warning_count() const;
};

// Names of functions with registered custom derivatives: calls to these
// terminate the recursion and are never checked internally (§2.1 base
// case).
class CustomDerivativeSet {
 public:
  void Add(const std::string& name) { names_.push_back(name); }
  bool Contains(const std::string& name) const;

 private:
  std::vector<std::string> names_;
};

DiffCheckResult CheckDifferentiability(
    const Module& module, const Function& fn, std::vector<int> wrt = {},
    const CustomDerivativeSet& custom = {});

}  // namespace s4tf::sil
