#include "sil/ir.h"

#include <set>
#include <sstream>

namespace s4tf::sil {

const char* InstKindName(InstKind kind) {
  switch (kind) {
    case InstKind::kConst: return "const";
    case InstKind::kAdd: return "add";
    case InstKind::kSub: return "sub";
    case InstKind::kMul: return "mul";
    case InstKind::kDiv: return "div";
    case InstKind::kNeg: return "neg";
    case InstKind::kSin: return "sin";
    case InstKind::kCos: return "cos";
    case InstKind::kExp: return "exp";
    case InstKind::kLog: return "log";
    case InstKind::kTanh: return "tanh";
    case InstKind::kSqrt: return "sqrt";
    case InstKind::kCmpGT: return "cmp_gt";
    case InstKind::kCmpLT: return "cmp_lt";
    case InstKind::kFloor: return "floor";
    case InstKind::kRound: return "round";
    case InstKind::kCall: return "call";
  }
  return "?";
}

int InstArity(InstKind kind) {
  switch (kind) {
    case InstKind::kConst:
      return 0;
    case InstKind::kNeg:
    case InstKind::kSin:
    case InstKind::kCos:
    case InstKind::kExp:
    case InstKind::kLog:
    case InstKind::kTanh:
    case InstKind::kSqrt:
    case InstKind::kFloor:
    case InstKind::kRound:
      return 1;
    case InstKind::kAdd:
    case InstKind::kSub:
    case InstKind::kMul:
    case InstKind::kDiv:
    case InstKind::kCmpGT:
    case InstKind::kCmpLT:
      return 2;
    case InstKind::kCall:
      return -1;
  }
  return -1;
}

bool IsDifferentiableInst(InstKind kind) {
  switch (kind) {
    case InstKind::kFloor:
    case InstKind::kRound:
      return false;
    default:
      return true;
  }
}

std::int64_t Function::InstructionCount() const {
  std::int64_t n = 0;
  for (const BasicBlock& bb : blocks) {
    n += static_cast<std::int64_t>(bb.insts.size());
  }
  return n;
}

Function& Module::AddFunction(Function fn) {
  const std::string name = fn.name;
  auto [it, inserted] = functions_.emplace(name, std::move(fn));
  S4TF_CHECK(inserted) << "duplicate function " << name;
  return it->second;
}

const Function* Module::FindFunction(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

Function* Module::FindFunction(const std::string& name) {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

FunctionBuilder::FunctionBuilder(std::string name, int num_args) {
  fn_.name = std::move(name);
  fn_.num_args = num_args;
  fn_.num_values = num_args;
  fn_.blocks.emplace_back();
}

ValueId FunctionBuilder::Arg(int i) const {
  S4TF_CHECK_GE(i, 0);
  S4TF_CHECK_LT(i, fn_.num_args);
  return static_cast<ValueId>(i);
}

int FunctionBuilder::CreateBlock(int num_args) {
  BasicBlock bb;
  for (int i = 0; i < num_args; ++i) bb.arg_ids.push_back(NewValue());
  fn_.blocks.push_back(std::move(bb));
  return static_cast<int>(fn_.blocks.size()) - 1;
}

void FunctionBuilder::SetInsertionPoint(int block) {
  S4TF_CHECK_GE(block, 0);
  S4TF_CHECK_LT(block, static_cast<int>(fn_.blocks.size()));
  current_block_ = block;
}

ValueId FunctionBuilder::BlockArg(int block, int i) const {
  const auto& args = fn_.blocks[static_cast<std::size_t>(block)].arg_ids;
  S4TF_CHECK_LT(static_cast<std::size_t>(i), args.size());
  return args[static_cast<std::size_t>(i)];
}

ValueId FunctionBuilder::NewValue() { return fn_.num_values++; }

ValueId FunctionBuilder::Const(double value) {
  Instruction inst;
  inst.kind = InstKind::kConst;
  inst.constant = value;
  inst.result = NewValue();
  fn_.blocks[static_cast<std::size_t>(current_block_)].insts.push_back(inst);
  return inst.result;
}

ValueId FunctionBuilder::Emit(InstKind kind, std::vector<ValueId> operands) {
  S4TF_CHECK(kind != InstKind::kConst) << "use Const()";
  S4TF_CHECK(kind != InstKind::kCall) << "use Call()";
  const int arity = InstArity(kind);
  S4TF_CHECK_EQ(static_cast<int>(operands.size()), arity)
      << InstKindName(kind);
  Instruction inst;
  inst.kind = kind;
  inst.operands = std::move(operands);
  inst.result = NewValue();
  fn_.blocks[static_cast<std::size_t>(current_block_)].insts.push_back(inst);
  return inst.result;
}

ValueId FunctionBuilder::Call(const std::string& callee,
                              std::vector<ValueId> operands) {
  Instruction inst;
  inst.kind = InstKind::kCall;
  inst.callee = callee;
  inst.operands = std::move(operands);
  inst.result = NewValue();
  fn_.blocks[static_cast<std::size_t>(current_block_)].insts.push_back(inst);
  return inst.result;
}

void FunctionBuilder::Return(ValueId value) {
  Terminator& t =
      fn_.blocks[static_cast<std::size_t>(current_block_)].terminator;
  S4TF_CHECK(t.kind == Terminator::Kind::kNone) << "block already terminated";
  t.kind = Terminator::Kind::kReturn;
  t.value = value;
}

void FunctionBuilder::Branch(int target, std::vector<ValueId> args) {
  Terminator& t =
      fn_.blocks[static_cast<std::size_t>(current_block_)].terminator;
  S4TF_CHECK(t.kind == Terminator::Kind::kNone) << "block already terminated";
  t.kind = Terminator::Kind::kBranch;
  t.true_block = target;
  t.true_args = std::move(args);
}

void FunctionBuilder::CondBranch(ValueId condition, int true_block,
                                 std::vector<ValueId> true_args,
                                 int false_block,
                                 std::vector<ValueId> false_args) {
  Terminator& t =
      fn_.blocks[static_cast<std::size_t>(current_block_)].terminator;
  S4TF_CHECK(t.kind == Terminator::Kind::kNone) << "block already terminated";
  t.kind = Terminator::Kind::kCondBranch;
  t.value = condition;
  t.true_block = true_block;
  t.true_args = std::move(true_args);
  t.false_block = false_block;
  t.false_args = std::move(false_args);
}

Function FunctionBuilder::Build() && {
  VerifyFunction(fn_).ValueOrDie();
  return std::move(fn_);
}

namespace {
Status CheckValue(const Function& fn, ValueId v, const char* what) {
  if (v < 0 || v >= fn.num_values) {
    return Status::FailedPrecondition(
        std::string(what) + ": value id out of range in " + fn.name);
  }
  return Status::Ok();
}

Status CheckBranchTarget(const Function& fn, int target,
                         const std::vector<ValueId>& args) {
  if (target < 0 || target >= static_cast<int>(fn.blocks.size())) {
    return Status::FailedPrecondition("branch target out of range in " +
                                      fn.name);
  }
  const auto& bb = fn.blocks[static_cast<std::size_t>(target)];
  if (args.size() != bb.arg_ids.size()) {
    return Status::FailedPrecondition(
        "branch argument count mismatch in " + fn.name);
  }
  for (ValueId v : args) S4TF_RETURN_IF_ERROR(CheckValue(fn, v, "branch arg"));
  return Status::Ok();
}
}  // namespace

Status VerifyFunction(const Function& fn) {
  if (fn.blocks.empty()) {
    return Status::FailedPrecondition("function has no blocks: " + fn.name);
  }
  std::set<ValueId> defined;
  for (ValueId i = 0; i < fn.num_args; ++i) defined.insert(i);
  for (const BasicBlock& bb : fn.blocks) {
    for (ValueId a : bb.arg_ids) {
      if (!defined.insert(a).second) {
        return Status::FailedPrecondition("duplicate value definition in " +
                                          fn.name);
      }
    }
    for (const Instruction& inst : bb.insts) {
      if (!defined.insert(inst.result).second) {
        return Status::FailedPrecondition("duplicate value definition in " +
                                          fn.name);
      }
    }
  }
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instruction& inst : bb.insts) {
      const int arity = InstArity(inst.kind);
      if (arity >= 0 && static_cast<int>(inst.operands.size()) != arity) {
        return Status::FailedPrecondition(
            std::string("bad arity for ") + InstKindName(inst.kind) + " in " +
            fn.name);
      }
      for (ValueId v : inst.operands) {
        S4TF_RETURN_IF_ERROR(CheckValue(fn, v, "operand"));
      }
    }
    const Terminator& t = bb.terminator;
    switch (t.kind) {
      case Terminator::Kind::kNone:
        return Status::FailedPrecondition("unterminated block in " + fn.name);
      case Terminator::Kind::kReturn:
        S4TF_RETURN_IF_ERROR(CheckValue(fn, t.value, "return value"));
        break;
      case Terminator::Kind::kBranch:
        S4TF_RETURN_IF_ERROR(CheckBranchTarget(fn, t.true_block, t.true_args));
        break;
      case Terminator::Kind::kCondBranch:
        S4TF_RETURN_IF_ERROR(CheckValue(fn, t.value, "condition"));
        S4TF_RETURN_IF_ERROR(CheckBranchTarget(fn, t.true_block, t.true_args));
        S4TF_RETURN_IF_ERROR(
            CheckBranchTarget(fn, t.false_block, t.false_args));
        break;
    }
  }
  return Status::Ok();
}

Status VerifyModule(const Module& module) {
  for (const auto& [name, fn] : module.functions()) {
    S4TF_RETURN_IF_ERROR(VerifyFunction(fn));
    // Calls must resolve and match arity.
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instruction& inst : bb.insts) {
        if (inst.kind != InstKind::kCall) continue;
        const Function* callee = module.FindFunction(inst.callee);
        if (callee == nullptr) {
          return Status::NotFound("unresolved callee " + inst.callee +
                                  " in " + name);
        }
        if (static_cast<int>(inst.operands.size()) != callee->num_args) {
          return Status::FailedPrecondition("call arity mismatch to " +
                                            inst.callee + " in " + name);
        }
      }
    }
  }
  return Status::Ok();
}

std::string PrintFunction(const Function& fn) {
  std::ostringstream out;
  out << "func @" << fn.name << "(";
  for (int i = 0; i < fn.num_args; ++i) {
    if (i > 0) out << ", ";
    out << "%" << i;
  }
  out << ") {\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const BasicBlock& bb = fn.blocks[b];
    out << "bb" << b << "(";
    for (std::size_t i = 0; i < bb.arg_ids.size(); ++i) {
      if (i > 0) out << ", ";
      out << "%" << bb.arg_ids[i];
    }
    out << "):\n";
    for (const Instruction& inst : bb.insts) {
      out << "  %" << inst.result << " = " << InstKindName(inst.kind);
      if (inst.kind == InstKind::kConst) {
        out << " " << inst.constant;
      } else if (inst.kind == InstKind::kCall) {
        out << " @" << inst.callee;
      }
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        out << (i == 0 && inst.kind != InstKind::kCall ? " %" : ", %")
            << inst.operands[i];
      }
      out << "\n";
    }
    const Terminator& t = bb.terminator;
    switch (t.kind) {
      case Terminator::Kind::kNone:
        out << "  <unterminated>\n";
        break;
      case Terminator::Kind::kReturn:
        out << "  return %" << t.value << "\n";
        break;
      case Terminator::Kind::kBranch:
        out << "  br bb" << t.true_block << "\n";
        break;
      case Terminator::Kind::kCondBranch:
        out << "  cond_br %" << t.value << ", bb" << t.true_block << ", bb"
            << t.false_block << "\n";
        break;
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace s4tf::sil
