#include "sil/activity.h"

namespace s4tf::sil {

ActivityInfo AnalyzeActivity(const Module& module, const Function& fn,
                             std::vector<int> wrt) {
  (void)module;
  ActivityInfo info;
  info.varied.assign(static_cast<std::size_t>(fn.num_values), false);
  info.useful.assign(static_cast<std::size_t>(fn.num_values), false);

  if (wrt.empty()) {
    for (int i = 0; i < fn.num_args; ++i) wrt.push_back(i);
  }
  for (int i : wrt) {
    S4TF_CHECK_GE(i, 0);
    S4TF_CHECK_LT(i, fn.num_args);
    info.varied[static_cast<std::size_t>(i)] = true;
  }

  // --- Varied: forward fixpoint. Instructions propagate operand->result;
  // terminators propagate branch args -> block args (covers loops).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instruction& inst : bb.insts) {
        if (info.varied[static_cast<std::size_t>(inst.result)]) continue;
        bool v = false;
        for (ValueId op : inst.operands) {
          if (info.varied[static_cast<std::size_t>(op)]) {
            v = true;
            break;
          }
        }
        if (v) {
          info.varied[static_cast<std::size_t>(inst.result)] = true;
          changed = true;
        }
      }
      const Terminator& t = bb.terminator;
      auto propagate_args = [&](int target, const std::vector<ValueId>& args) {
        if (target < 0) return;
        const BasicBlock& dst = fn.blocks[static_cast<std::size_t>(target)];
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (info.varied[static_cast<std::size_t>(args[i])] &&
              !info.varied[static_cast<std::size_t>(dst.arg_ids[i])]) {
            info.varied[static_cast<std::size_t>(dst.arg_ids[i])] = true;
            changed = true;
          }
        }
      };
      if (t.kind == Terminator::Kind::kBranch) {
        propagate_args(t.true_block, t.true_args);
      } else if (t.kind == Terminator::Kind::kCondBranch) {
        propagate_args(t.true_block, t.true_args);
        propagate_args(t.false_block, t.false_args);
      }
    }
  }

  // --- Useful: backward fixpoint seeded at returns.
  for (const BasicBlock& bb : fn.blocks) {
    if (bb.terminator.kind == Terminator::Kind::kReturn) {
      info.useful[static_cast<std::size_t>(bb.terminator.value)] = true;
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const BasicBlock& bb : fn.blocks) {
      // Block args useful => the values passed by predecessors are useful.
      const Terminator& t = bb.terminator;
      auto back_propagate = [&](int target, const std::vector<ValueId>& args) {
        if (target < 0) return;
        const BasicBlock& dst = fn.blocks[static_cast<std::size_t>(target)];
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (info.useful[static_cast<std::size_t>(dst.arg_ids[i])] &&
              !info.useful[static_cast<std::size_t>(args[i])]) {
            info.useful[static_cast<std::size_t>(args[i])] = true;
            changed = true;
          }
        }
      };
      if (t.kind == Terminator::Kind::kBranch) {
        back_propagate(t.true_block, t.true_args);
      } else if (t.kind == Terminator::Kind::kCondBranch) {
        back_propagate(t.true_block, t.true_args);
        back_propagate(t.false_block, t.false_args);
      }
      for (auto it = bb.insts.rbegin(); it != bb.insts.rend(); ++it) {
        if (!info.useful[static_cast<std::size_t>(it->result)]) continue;
        for (ValueId op : it->operands) {
          if (!info.useful[static_cast<std::size_t>(op)]) {
            info.useful[static_cast<std::size_t>(op)] = true;
            changed = true;
          }
        }
      }
    }
  }

  return info;
}

}  // namespace s4tf::sil
