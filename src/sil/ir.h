// A miniature Swift Intermediate Language (SIL).
//
// The paper's AD transformation "operates on the Swift Intermediate
// Language (SIL), an intermediate representation in static single
// assignment form" (§2.2). This module reproduces the IR properties the
// transformation depends on:
//   * SSA values with one definition each,
//   * basic blocks with *block arguments* (SIL's phi replacement),
//   * unconditional/conditional branches and returns — enough control flow
//     for branches and loops,
//   * calls between functions in a module (the transformation recurses
//     into callees),
//   * a scalar (double) value domain: the transformation is about code
//     structure, not linear algebra, and the paper's AD is explicitly
//     independent of Tensor.
//
// src/sil/activity.h, diff_check.h, autodiff.h and passes.h implement the
// paper's analysis/checking/synthesis steps and the "ordinary
// optimizations run on AD output" claim over this IR.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"

namespace s4tf::sil {

// Index into a function's value space. Function arguments occupy
// [0, num_args); block arguments and instruction results are assigned
// increasing ids by the builder.
using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

enum class InstKind : std::uint8_t {
  kConst,  // defines a literal; no operands
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  // Transcendental.
  kSin,
  kCos,
  kExp,
  kLog,
  kTanh,
  kSqrt,
  // Comparisons: produce 1.0 / 0.0. Differentiable a.e. with zero
  // derivative; legal as *control* inputs.
  kCmpGT,
  kCmpLT,
  // Non-differentiable data operations (exercise the diagnostics).
  kFloor,
  kRound,
  // Call of another function in the module (single scalar result).
  kCall,
};

const char* InstKindName(InstKind kind);
int InstArity(InstKind kind);  // kCall returns -1 (variadic)

// True when d(result)/d(operand) exists and is propagated by AD. Floor and
// round are the deliberately non-differentiable citizens.
bool IsDifferentiableInst(InstKind kind);

struct Instruction {
  ValueId result = kNoValue;
  InstKind kind = InstKind::kConst;
  std::vector<ValueId> operands;
  double constant = 0.0;  // kConst payload
  std::string callee;     // kCall target
};

struct Terminator {
  enum class Kind : std::uint8_t { kNone, kReturn, kBranch, kCondBranch };
  Kind kind = Kind::kNone;
  // kReturn: the returned value. kCondBranch: the condition (!= 0 is true).
  ValueId value = kNoValue;
  int true_block = -1;               // kBranch target too
  std::vector<ValueId> true_args;    // values passed to target block args
  int false_block = -1;
  std::vector<ValueId> false_args;
};

struct BasicBlock {
  std::vector<ValueId> arg_ids;  // this block's SSA block arguments
  std::vector<Instruction> insts;
  Terminator terminator;
};

struct Function {
  std::string name;
  int num_args = 0;
  int num_values = 0;  // total SSA values (args + block args + results)
  std::vector<BasicBlock> blocks;  // entry is blocks[0]

  // Total instruction count (used by the pass tests / ablations).
  std::int64_t InstructionCount() const;
};

class Module {
 public:
  Function& AddFunction(Function fn);
  const Function* FindFunction(const std::string& name) const;
  Function* FindFunction(const std::string& name);
  const std::map<std::string, Function>& functions() const {
    return functions_;
  }

 private:
  std::map<std::string, Function> functions_;
};

// Structured construction of SSA functions. Example:
//
//   FunctionBuilder b("square_plus_one", /*num_args=*/1);
//   ValueId x = b.Arg(0);
//   ValueId sq = b.Emit(InstKind::kMul, {x, x});
//   ValueId one = b.Const(1.0);
//   b.Return(b.Emit(InstKind::kAdd, {sq, one}));
//   Function f = std::move(b).Build();
class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, int num_args);

  ValueId Arg(int i) const;

  // Creates a new block (with `num_args` block arguments) and returns its
  // index. The entry block 0 exists on construction.
  int CreateBlock(int num_args = 0);
  // Redirects instruction emission to `block`.
  void SetInsertionPoint(int block);
  int current_block() const { return current_block_; }
  ValueId BlockArg(int block, int i) const;

  ValueId Const(double value);
  ValueId Emit(InstKind kind, std::vector<ValueId> operands);
  ValueId Call(const std::string& callee, std::vector<ValueId> operands);

  void Return(ValueId value);
  void Branch(int target, std::vector<ValueId> args = {});
  void CondBranch(ValueId condition, int true_block,
                  std::vector<ValueId> true_args, int false_block,
                  std::vector<ValueId> false_args);

  Function Build() &&;

 private:
  ValueId NewValue();
  Function fn_;
  int current_block_ = 0;
};

// Structural verification: every operand defined, terminators present,
// branch argument counts match target block arguments, results unique.
Status VerifyFunction(const Function& fn);
Status VerifyModule(const Module& module);

// Human-readable SIL-ish dump, e.g.
//   bb0(%0):
//     %1 = mul %0, %0
//     return %1
std::string PrintFunction(const Function& fn);

}  // namespace s4tf::sil
