// Derivative synthesis on mini-SIL (paper §2.2, third step).
//
// "Derivative synthesis creates the derivative functions, applies AD rules
// to active SIL instructions, and builds the corresponding derivative SIL
// instructions. This step also generates code that captures callee
// derivatives and the control flow path."
//
// SynthesizeVJP/SynthesizeJVP perform the transformation once, ahead of
// execution (the AOT analogue):
//   * the differentiability check runs first and rejects invalid requests
//     with diagnostics (errors before execution);
//   * activity analysis prunes the adjoint code: only *active*
//     instructions receive derivative instructions;
//   * calls are handled by recursively transforming callees, terminating
//     at functions with registered custom derivatives (§2.1's
//     @derivative(of:) base case).
//
// Control flow follows the paper's design: execution of the synthesized
// VJP records statically-shaped *block records* — one per executed basic
// block, holding the values that block defined, which predecessor entered
// it, and the pullbacks of calls it made. The reverse pass walks the
// records backwards, running each block's (pre-synthesized) adjoint code.
// Loops work because each iteration has its own record.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sil/activity.h"
#include "sil/diff_check.h"
#include "sil/ir.h"

namespace s4tf::sil {

// A user-registered derivative for a named function: the base case of the
// recursive transformation.
struct CustomScalarDerivative {
  // Reverse: args -> (value, pullback(seed) -> per-arg gradients).
  std::function<std::pair<double, std::function<std::vector<double>(double)>>(
      const std::vector<double>&)>
      vjp;
  // Forward: (args, arg tangents) -> (value, value tangent).
  std::function<std::pair<double, double>(const std::vector<double>&,
                                          const std::vector<double>&)>
      jvp;
};

class DerivativeRegistry {
 public:
  void Register(const std::string& name, CustomScalarDerivative derivative);
  const CustomScalarDerivative* Find(const std::string& name) const;
  CustomDerivativeSet Names() const;

 private:
  std::map<std::string, CustomScalarDerivative> derivatives_;
};

// --- VJP ------------------------------------------------------------------

class SynthesizedVJP {
 public:
  struct Result {
    double value = 0.0;
    // Pullback over the wrt arguments (first-class, reusable closure).
    std::function<std::vector<double>(double seed)> pullback;
  };

  // Runs the primal while recording block records, returns the value and
  // the pullback.
  StatusOr<Result> Run(const std::vector<double>& args) const;

  // Introspection for tests/ablations: per-block adjoint instruction
  // counts after activity pruning.
  std::vector<int> AdjointInstructionCounts() const;
  const Function& primal() const { return *fn_; }
  const std::vector<int>& wrt() const { return wrt_; }

 private:
  friend StatusOr<SynthesizedVJP> SynthesizeVJP(const Module&,
                                                const std::string&,
                                                std::vector<int>,
                                                const DerivativeRegistry&);
  struct BlockAdjoint {
    // Active instructions of this block, in reverse order (the adjoint
    // code synthesized at transform time).
    std::vector<const Instruction*> reversed_active;
    // All values defined in this block (results + block args): cleared
    // after the block's adjoint runs so loop iterations don't leak.
    std::vector<ValueId> defined;
  };

  // Either a recursively synthesized VJP or a registered custom one.
  struct CalleeDerivative {
    std::shared_ptr<SynthesizedVJP> synthesized;
    std::shared_ptr<CustomScalarDerivative> custom;
  };

  const Module* module_ = nullptr;
  const Function* fn_ = nullptr;
  std::vector<int> wrt_;
  std::vector<BlockAdjoint> adjoints_;
  ActivityInfo activity_;
  // Captured callee derivatives, resolved at transform time.
  std::map<std::string, CalleeDerivative> callees_;
};

// Performs the AOT transformation. Fails with the differentiability
// checker's first error if the function cannot be differentiated.
StatusOr<SynthesizedVJP> SynthesizeVJP(
    const Module& module, const std::string& fn, std::vector<int> wrt = {},
    const DerivativeRegistry& registry = {});

// --- JVP ------------------------------------------------------------------

class SynthesizedJVP {
 public:
  struct Result {
    double value = 0.0;
    double tangent = 0.0;  // directional derivative along `direction`
  };
  StatusOr<Result> Run(const std::vector<double>& args,
                       const std::vector<double>& direction) const;

 private:
  friend StatusOr<SynthesizedJVP> SynthesizeJVP(const Module&,
                                                const std::string&,
                                                std::vector<int>,
                                                const DerivativeRegistry&);
  struct CalleeDerivative {
    std::shared_ptr<SynthesizedJVP> synthesized;
    std::shared_ptr<CustomScalarDerivative> custom;
  };

  const Module* module_ = nullptr;
  const Function* fn_ = nullptr;
  std::vector<int> wrt_;
  std::map<std::string, CalleeDerivative> callees_;
};

StatusOr<SynthesizedJVP> SynthesizeJVP(
    const Module& module, const std::string& fn, std::vector<int> wrt = {},
    const DerivativeRegistry& registry = {});

// Convenience: gradient of a scalar function via the synthesized VJP.
StatusOr<std::vector<double>> SilGradient(
    const Module& module, const std::string& fn,
    const std::vector<double>& args, const DerivativeRegistry& registry = {});

}  // namespace s4tf::sil
