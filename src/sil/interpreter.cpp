#include "sil/interpreter.h"

#include <cmath>

namespace s4tf::sil {

double EvalInst(InstKind kind, double a, double b, double constant) {
  switch (kind) {
    case InstKind::kConst: return constant;
    case InstKind::kAdd: return a + b;
    case InstKind::kSub: return a - b;
    case InstKind::kMul: return a * b;
    case InstKind::kDiv: return a / b;
    case InstKind::kNeg: return -a;
    case InstKind::kSin: return std::sin(a);
    case InstKind::kCos: return std::cos(a);
    case InstKind::kExp: return std::exp(a);
    case InstKind::kLog: return std::log(a);
    case InstKind::kTanh: return std::tanh(a);
    case InstKind::kSqrt: return std::sqrt(a);
    case InstKind::kCmpGT: return a > b ? 1.0 : 0.0;
    case InstKind::kCmpLT: return a < b ? 1.0 : 0.0;
    case InstKind::kFloor: return std::floor(a);
    case InstKind::kRound: return std::round(a);
    case InstKind::kCall:
      break;
  }
  S4TF_UNREACHABLE() << "EvalInst on " << InstKindName(kind);
}

StatusOr<double> Interpret(const Module& module, const std::string& fn_name,
                           const std::vector<double>& args,
                           const InterpreterOptions& options) {
  const Function* fn = module.FindFunction(fn_name);
  if (fn == nullptr) return Status::NotFound("no function " + fn_name);
  if (static_cast<int>(args.size()) != fn->num_args) {
    return Status::InvalidArgument("arg count mismatch for " + fn_name);
  }

  std::vector<double> env(static_cast<std::size_t>(fn->num_values), 0.0);
  for (int i = 0; i < fn->num_args; ++i) {
    env[static_cast<std::size_t>(i)] = args[static_cast<std::size_t>(i)];
  }

  std::int64_t steps = 0;
  int block = 0;
  while (true) {
    const BasicBlock& bb = fn->blocks[static_cast<std::size_t>(block)];
    for (const Instruction& inst : bb.insts) {
      if (++steps > options.max_steps) {
        return Status::OutOfRange("step limit exceeded in " + fn_name);
      }
      double value = 0.0;
      if (inst.kind == InstKind::kCall) {
        std::vector<double> callee_args;
        callee_args.reserve(inst.operands.size());
        for (ValueId v : inst.operands) {
          callee_args.push_back(env[static_cast<std::size_t>(v)]);
        }
        auto result = Interpret(module, inst.callee, callee_args, options);
        if (!result.ok()) return result.status();
        value = result.value();
      } else {
        const double a = inst.operands.size() > 0
                             ? env[static_cast<std::size_t>(inst.operands[0])]
                             : 0.0;
        const double b = inst.operands.size() > 1
                             ? env[static_cast<std::size_t>(inst.operands[1])]
                             : 0.0;
        value = EvalInst(inst.kind, a, b, inst.constant);
      }
      env[static_cast<std::size_t>(inst.result)] = value;
    }

    const Terminator& t = bb.terminator;
    switch (t.kind) {
      case Terminator::Kind::kReturn:
        return env[static_cast<std::size_t>(t.value)];
      case Terminator::Kind::kBranch: {
        const BasicBlock& target =
            fn->blocks[static_cast<std::size_t>(t.true_block)];
        for (std::size_t i = 0; i < t.true_args.size(); ++i) {
          env[static_cast<std::size_t>(target.arg_ids[i])] =
              env[static_cast<std::size_t>(t.true_args[i])];
        }
        block = t.true_block;
        break;
      }
      case Terminator::Kind::kCondBranch: {
        const bool taken = env[static_cast<std::size_t>(t.value)] != 0.0;
        const int next = taken ? t.true_block : t.false_block;
        const auto& pass_args = taken ? t.true_args : t.false_args;
        const BasicBlock& target =
            fn->blocks[static_cast<std::size_t>(next)];
        for (std::size_t i = 0; i < pass_args.size(); ++i) {
          env[static_cast<std::size_t>(target.arg_ids[i])] =
              env[static_cast<std::size_t>(pass_args[i])];
        }
        block = next;
        break;
      }
      case Terminator::Kind::kNone:
        return Status::Internal("unterminated block reached in " + fn_name);
    }
  }
}

}  // namespace s4tf::sil
