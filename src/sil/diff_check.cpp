#include "sil/diff_check.h"

#include <algorithm>

#include "support/strings.h"

namespace s4tf::sil {

Status DiffCheckResult::status() const {
  for (const auto& d : diagnostics) {
    if (d.severity == Diagnostic::Severity::kError) {
      return Status::InvalidArgument(d.message);
    }
  }
  return Status::Ok();
}

int DiffCheckResult::error_count() const {
  int n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Diagnostic::Severity::kError) ++n;
  }
  return n;
}

int DiffCheckResult::warning_count() const {
  return static_cast<int>(diagnostics.size()) - error_count();
}

bool CustomDerivativeSet::Contains(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

DiffCheckResult CheckDifferentiability(const Module& module,
                                       const Function& fn,
                                       std::vector<int> wrt,
                                       const CustomDerivativeSet& custom) {
  DiffCheckResult result;
  const ActivityInfo activity = AnalyzeActivity(module, fn, wrt);

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const BasicBlock& bb = fn.blocks[b];
    for (const Instruction& inst : bb.insts) {
      // An instruction needs a derivative iff its result is useful and one
      // of its operands is varied (i.e. a derivative must flow through it).
      bool operand_varied = false;
      for (ValueId op : inst.operands) {
        if (activity.varied[static_cast<std::size_t>(op)]) {
          operand_varied = true;
          break;
        }
      }
      const bool needs_derivative =
          operand_varied && activity.useful[static_cast<std::size_t>(inst.result)];
      if (!needs_derivative) continue;

      if (inst.kind == InstKind::kCall) {
        if (custom.Contains(inst.callee)) continue;  // base case: fine
        const Function* callee = module.FindFunction(inst.callee);
        if (callee == nullptr) {
          result.diagnostics.push_back(
              {Diagnostic::Severity::kError,
               StrCat("function '", fn.name, "': call to unknown function '",
                      inst.callee, "' cannot be differentiated")});
          continue;
        }
        // Recurse: the callee must itself be differentiable (w.r.t. all
        // arguments, conservatively).
        const DiffCheckResult inner =
            CheckDifferentiability(module, *callee, {}, custom);
        if (!inner.ok()) {
          result.diagnostics.push_back(
              {Diagnostic::Severity::kError,
               StrCat("function '", fn.name, "': callee '", inst.callee,
                      "' is not differentiable (", inner.error_count(),
                      " error(s) inside)")});
        }
        continue;
      }

      if (!IsDifferentiableInst(inst.kind)) {
        result.diagnostics.push_back(
            {Diagnostic::Severity::kError,
             StrCat("function '", fn.name, "': instruction '%", inst.result,
                    " = ", InstKindName(inst.kind),
                    "' is active but has no derivative; mark the enclosing ",
                    "function with a custom derivative to differentiate ",
                    "through it")});
      }
    }
  }

  // The paper's example warning: return value independent of the inputs.
  bool any_return_varied = false;
  bool has_return = false;
  for (const BasicBlock& bb : fn.blocks) {
    if (bb.terminator.kind == Terminator::Kind::kReturn) {
      has_return = true;
      if (activity.varied[static_cast<std::size_t>(bb.terminator.value)]) {
        any_return_varied = true;
      }
    }
  }
  if (has_return && !any_return_varied) {
    result.diagnostics.push_back(
        {Diagnostic::Severity::kWarning,
         StrCat("function '", fn.name,
                "': result does not depend on differentiable arguments; ",
                "the derivative is always zero")});
  }

  return result;
}

}  // namespace s4tf::sil
