#include "xla/hlo.h"

#include <sstream>

#include "support/hashing.h"

namespace s4tf::xla {

HloId HloModule::AddParameter(const Shape& shape, int index) {
  HloInstruction inst;
  inst.id = static_cast<HloId>(instructions_.size());
  inst.kind = OpKind::kParameter;
  inst.shape = shape;
  inst.parameter_index = index;
  inst.attrs.shape = shape.dims();
  instructions_.push_back(std::move(inst));
  num_parameters_ = std::max(num_parameters_, index + 1);
  return instructions_.back().id;
}

HloId HloModule::AddConstant(Literal value) {
  HloInstruction inst;
  inst.id = static_cast<HloId>(instructions_.size());
  inst.kind = OpKind::kConstant;
  inst.shape = value.shape;
  inst.attrs.shape = value.shape.dims();
  inst.literal = std::move(value);
  instructions_.push_back(std::move(inst));
  return instructions_.back().id;
}

HloId HloModule::AddInstruction(OpKind kind, std::vector<HloId> operands,
                                OpAttrs attrs) {
  std::vector<Shape> input_shapes;
  input_shapes.reserve(operands.size());
  for (HloId op : operands) {
    S4TF_CHECK_GE(op, 0);
    S4TF_CHECK_LT(op, static_cast<HloId>(instructions_.size()))
        << "operand must precede instruction (topological construction)";
    input_shapes.push_back(instructions_[static_cast<std::size_t>(op)].shape);
  }
  HloInstruction inst;
  inst.id = static_cast<HloId>(instructions_.size());
  inst.kind = kind;
  inst.attrs = std::move(attrs);
  inst.shape = InferShape(kind, input_shapes, inst.attrs);
  inst.operands = std::move(operands);
  instructions_.push_back(std::move(inst));
  return instructions_.back().id;
}

void HloModule::AddRoot(HloId id) {
  S4TF_CHECK_GE(id, 0);
  S4TF_CHECK_LT(id, static_cast<HloId>(instructions_.size()));
  roots_.push_back(id);
}

std::uint64_t HloModule::Fingerprint() const {
  std::uint64_t h = kFnvOffset;
  for (const HloInstruction& inst : instructions_) {
    h = HashCombine(h, static_cast<std::uint64_t>(inst.kind));
    h = inst.attrs.Hash(h);
    h = HashShape(inst.shape, h);
    h = HashCombine(h, static_cast<std::uint64_t>(inst.parameter_index));
    for (HloId op : inst.operands) {
      h = HashCombine(h, static_cast<std::uint64_t>(op));
    }
  }
  for (HloId r : roots_) h = HashCombine(h, static_cast<std::uint64_t>(r));
  return h;
}

std::vector<int> HloModule::UseCounts() const {
  std::vector<int> uses(instructions_.size(), 0);
  for (const HloInstruction& inst : instructions_) {
    for (HloId op : inst.operands) {
      ++uses[static_cast<std::size_t>(op)];
    }
  }
  for (HloId r : roots_) ++uses[static_cast<std::size_t>(r)];
  return uses;
}

std::string HloModule::ToString() const {
  std::ostringstream out;
  out << "HloModule " << name_ << " {\n";
  for (const HloInstruction& inst : instructions_) {
    out << "  %" << inst.id << " = " << OpName(inst.kind) << inst.shape;
    if (inst.kind == OpKind::kParameter) {
      out << " param(" << inst.parameter_index << ")";
    }
    if (!inst.operands.empty()) {
      out << " (";
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        if (i > 0) out << ", ";
        out << "%" << inst.operands[i];
      }
      out << ")";
    }
    out << "\n";
  }
  out << "  roots:";
  for (HloId r : roots_) out << " %" << r;
  out << "\n}\n";
  return out.str();
}

}  // namespace s4tf::xla
