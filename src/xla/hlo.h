// An HLO-like graph IR for the domain-specific JIT (paper §3.3).
//
// "Domain-specific optimizing compilers ... can take complete models as
// programs in their own domain-specific IR and generate optimized
// hardware-specific machine code. The ability to observe the complete
// program provides a wide horizon for optimizations such as
// operation-fusion."
//
// HloModule is the destination of LazyTensor traces: a flat, topologically
// ordered instruction list with parameters, embedded constants, and
// explicit roots — close in spirit to XLA HLO. The compiler in compiler.h
// runs CSE/DCE/fusion over it and produces an Executable whose fused
// kernels are charged to the simulated accelerator as single launches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/op.h"

namespace s4tf::xla {

using HloId = std::int32_t;

struct HloInstruction {
  HloId id = -1;
  OpKind kind = OpKind::kConstant;
  OpAttrs attrs;
  std::vector<HloId> operands;
  Shape shape;
  // kConstant payload (values embedded in the program).
  Literal literal;
  // kParameter index.
  int parameter_index = -1;
};

class HloModule {
 public:
  explicit HloModule(std::string name = "hlo_module")
      : name_(std::move(name)) {}

  HloId AddParameter(const Shape& shape, int index);
  HloId AddConstant(Literal value);
  // Shape is inferred; operands must already exist (topological order by
  // construction).
  HloId AddInstruction(OpKind kind, std::vector<HloId> operands,
                       OpAttrs attrs = {});
  void AddRoot(HloId id);

  const std::string& name() const { return name_; }
  const std::vector<HloInstruction>& instructions() const {
    return instructions_;
  }
  const HloInstruction& instruction(HloId id) const {
    return instructions_[static_cast<std::size_t>(id)];
  }
  const std::vector<HloId>& roots() const { return roots_; }
  int num_parameters() const { return num_parameters_; }
  std::int64_t instruction_count() const {
    return static_cast<std::int64_t>(instructions_.size());
  }

  // Structural fingerprint: op kinds, attributes, shapes, topology and
  // parameter indices — but NOT constant payloads' values, so a program
  // re-traced with different data hashes identically (the paper's
  // XLA-program cache keys work across training steps).
  std::uint64_t Fingerprint() const;

  // Number of users of each instruction (used by the fusion pass).
  std::vector<int> UseCounts() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<HloInstruction> instructions_;
  std::vector<HloId> roots_;
  int num_parameters_ = 0;
};

}  // namespace s4tf::xla
